//! Head-to-head convergence: DeepSpeed's static replication vs FlexMoE's
//! interval rebalancing vs SYMI's per-iteration adaptation, on the same
//! drifting-topic corpus — the Figure 7/8 story at example scale.
//!
//! Run: `cargo run --release -p symi-examples --bin train_compare [iters]`

use symi::SymiPolicy;
use symi_baselines::FlexMoePolicy;
use symi_model::{ModelConfig, PlacementPolicy, Trainer, UniformPolicy};
use symi_workload::{CorpusConfig, DriftingCorpus};

fn corpus(cfg: &ModelConfig) -> DriftingCorpus {
    DriftingCorpus::new(CorpusConfig {
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        batch_size: cfg.batch_size,
        topics: 8,
        coherence: 0.85,
        topic_zipf: 1.1,
        ..CorpusConfig::default()
    })
}

fn main() {
    let iters: usize = std::env::args().nth(1).and_then(|v| v.parse().ok()).unwrap_or(150);
    let cfg = ModelConfig::small_sim();

    let systems: Vec<(&str, Box<dyn PlacementPolicy>)> = vec![
        (
            "DeepSpeed ",
            Box::new(UniformPolicy { experts: cfg.experts, total_slots: cfg.total_slots }),
        ),
        ("FlexMoE-10", Box::new(FlexMoePolicy::new(cfg.total_slots, 10))),
        ("SYMI      ", Box::new(SymiPolicy { total_slots: cfg.total_slots })),
    ];

    println!(
        "Training {} iterations per system (GPT-MoE stand-in, 16 experts / 64 slots)…\n",
        iters
    );
    let mut summaries = Vec::new();
    for (name, policy) in systems {
        let mut trainer = Trainer::new(cfg, policy);
        let mut c = corpus(&cfg);
        trainer.train(&mut c, iters);
        let rec = &trainer.record;
        let tail = &rec.losses[rec.losses.len().saturating_sub(15)..];
        let final_loss: f32 = tail.iter().sum::<f32>() / tail.len() as f32;
        summaries.push((
            name,
            rec.mean_survival(),
            final_loss,
            rec.moved_replicas.iter().sum::<usize>(),
        ));
    }

    println!(
        "{:<11} {:>14} {:>12} {:>16}",
        "system", "survival (%)", "final loss", "replica moves"
    );
    for (name, survival, loss, moves) in &summaries {
        println!("{name:<11} {:>14.2} {loss:>12.3} {moves:>16}", survival * 100.0);
    }
    println!(
        "\nExpected shape: SYMI survives the most tokens (it re-places every\n\
         iteration for free); FlexMoE-10 sits between; DeepSpeed drops the most.\n\
         In a coupled system every replica move above would cost a blocking\n\
         weight+optimizer migration — see `cargo run -p symi-bench --bin rebalance_traffic`."
    );
}
