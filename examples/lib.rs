//! Shared helpers for the runnable examples (kept intentionally minimal —
//! each example is a self-contained demonstration of the public API).
