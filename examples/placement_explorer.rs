//! Placement explorer: feed Algorithm 1 a popularity vector from the
//! command line (or watch it track a synthetic drifting trace) and inspect
//! replica counts, rank layout, EDP ring sizes, and what a *coupled* system
//! would have to migrate for the same transition.
//!
//! Run: `cargo run -p symi-examples --bin placement_explorer 900 50 30 10`
//! or:  `cargo run -p symi-examples --bin placement_explorer` (drift demo)

use symi::{compute_placement, ExpertPlacement};
use symi_workload::SyntheticTraceConfig;

const SLOTS_PER_RANK: usize = 4;
const RANKS: usize = 4;

fn describe(counts: &[usize], previous: Option<&ExpertPlacement>) -> ExpertPlacement {
    let placement = ExpertPlacement::from_counts(counts, SLOTS_PER_RANK);
    println!("replica counts : {counts:?}");
    for rank in 0..placement.ranks() {
        let classes: Vec<String> = placement
            .classes_on_rank(rank)
            .into_iter()
            .map(|(class, slots)| format!("e{class}x{}", slots.len()))
            .collect();
        println!("  rank {rank}: [{}]", classes.join(", "));
    }
    let rings: Vec<String> = (0..placement.expert_classes())
        .map(|c| format!("e{c}:{}", placement.host_ranks(c).len()))
        .collect();
    println!("EDP ring sizes : {}  (1 = intra-rank only, zero network)", rings.join(" "));
    if let Some(prev) = previous {
        let moved = prev.diff_slots(&placement);
        println!("transition     : {moved} slot(s) changed class -> SYMI pays 0 extra bytes;");
        println!("                 a coupled design would migrate {moved} x (W + O)");
    }
    placement
}

fn main() {
    let args: Vec<u64> = std::env::args().skip(1).filter_map(|a| a.parse().ok()).collect();

    if !args.is_empty() {
        println!("== Placement for popularity {args:?} ({} slots) ==\n", RANKS * SLOTS_PER_RANK);
        let counts = compute_placement(&args, RANKS * SLOTS_PER_RANK);
        describe(&counts, None);
        return;
    }

    println!("== Watching Algorithm 1 track a drifting synthetic trace ==\n");
    let trace = SyntheticTraceConfig {
        expert_classes: 4,
        iterations: 6,
        tokens_per_iteration: 1024,
        drift_sigma: 0.6,
        jolt_prob: 0.5,
        ..Default::default()
    }
    .generate();
    let mut prev: Option<ExpertPlacement> = None;
    for (t, popularity) in trace.iterations.iter().enumerate() {
        println!("-- iteration {t}: popularity {popularity:?}");
        let counts = compute_placement(popularity, RANKS * SLOTS_PER_RANK);
        let placement = describe(&counts, prev.as_ref());
        prev = Some(placement);
        println!();
    }
    println!(
        "Every transition above is free under SYMI: the optimizer ships fresh\n\
         weights to every slot anyway, so it simply ships *different experts'*\n\
         weights (§3.3). Pass popularity numbers as arguments to explore."
    );
}
