//! Quickstart: the SYMI public API in three short acts.
//!
//! 1. Feed a popularity vector to the Expert Placement Scheduler
//!    (Algorithm 1) and inspect the resulting contiguous placement.
//! 2. Train a small GPT-MoE for a handful of iterations with SYMI's
//!    per-iteration adaptive replication and watch loss / survival /
//!    placement evolve.
//! 3. Run one fully distributed iteration (4 rank threads, real
//!    collectives) and print the traffic it generated.
//!
//! Run: `cargo run -p symi-examples --bin quickstart`

use symi::{compute_placement, EngineConfig, ExpertPlacement, MoeLayerEngine, SymiPolicy};
use symi_collectives::{Cluster, ClusterSpec};
use symi_model::{ModelConfig, Trainer};
use symi_tensor::{AdamConfig, Matrix};
use symi_workload::{CorpusConfig, DriftingCorpus};

fn main() {
    // ---- Act 1: the scheduler. ----
    println!("== Act 1: Expert Placement Scheduler (Algorithm 1) ==\n");
    let popularity = [900u64, 50, 30, 10, 5, 3, 1, 1];
    let counts = compute_placement(&popularity, 16);
    println!("popularity = {popularity:?}");
    println!("replicas   = {counts:?}  (16 slots, min 1 per class)\n");
    let placement = ExpertPlacement::from_counts(&counts, 4);
    for rank in 0..placement.ranks() {
        let classes: Vec<String> = placement
            .classes_on_rank(rank)
            .into_iter()
            .map(|(class, slots)| format!("e{class}x{}", slots.len()))
            .collect();
        println!("rank {rank}: [{}]", classes.join(", "));
    }

    // ---- Act 2: adaptive training. ----
    println!("\n== Act 2: training with per-iteration adaptive replication ==\n");
    let cfg = ModelConfig::tiny();
    let mut corpus = DriftingCorpus::new(CorpusConfig {
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        batch_size: cfg.batch_size,
        topics: 4,
        ..CorpusConfig::default()
    });
    let mut trainer = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    for step in 0..15 {
        let batch = corpus.next_batch();
        let stats = trainer.step(&batch);
        println!(
            "iter {step:>2}: loss {:.3}  survival {:>5.1}%  replicas(layer 0) {:?}",
            stats.ce_loss,
            stats.survival_rate() * 100.0,
            trainer.replicas()[0]
        );
    }

    // ---- Act 3: the distributed engine. ----
    println!("\n== Act 3: one distributed iteration over 4 rank threads ==\n");
    let engine_cfg = EngineConfig {
        d_model: 8,
        d_ff: 16,
        expert_classes: 4,
        slots_per_rank: 2,
        slot_capacity: 64,
        adam: AdamConfig::default(),
        seed: 42,
        layer_id: 0,
    };
    let (results, traffic) = Cluster::run(ClusterSpec::flat(4), |ctx| {
        let mut engine = MoeLayerEngine::new(ctx.rank(), 4, engine_cfg);
        let x = Matrix::from_fn(8, 8, |r, c| (((ctx.rank() * 8 + r) * 8 + c) as f32 * 0.137).sin());
        let target = Matrix::zeros(8, 8);
        let stats = engine.iteration(ctx, &x, &target).unwrap();
        (stats.loss, stats.popularity, engine.placement.replica_counts())
    });
    let (loss, popularity, replicas) = &results[0];
    println!("global loss       : {loss:.5}");
    println!("global popularity : {popularity:?}");
    println!("next placement    : {replicas:?}");
    println!(
        "traffic           : {} B inter-node, {} B intra-node, {} B host<->device",
        traffic.inter_node_bytes, traffic.intra_node_bytes, traffic.host_device_bytes
    );
    println!("\nDone. Explore `cargo run -p symi-bench --bin fig7_loss` next.");
}
