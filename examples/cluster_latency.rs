//! Cluster latency exploration: prices one training iteration of each
//! system on the paper's 16×A100 testbed (and the §3.3 worked example) via
//! the analytic cost model and the iteration simulator — no training runs,
//! instant output.
//!
//! Run: `cargo run -p symi-examples --bin cluster_latency`

use symi_netsim::iteration::{RebalanceSpec, SimSystem};
use symi_netsim::topology::HardwareSpec;
use symi_netsim::{CommCostModel, IterationSim, ModelCostConfig, SystemKind};
use symi_workload::SyntheticTraceConfig;

fn main() {
    // A synthetic skewed-and-drifting popularity trace stands in for the
    // router (use `symi-bench` binaries for measured traces).
    let trace = SyntheticTraceConfig {
        expert_classes: 16,
        iterations: 50,
        tokens_per_iteration: 512 * 64,
        ..Default::default()
    }
    .generate();

    println!("== Per-iteration latency on the paper's 16xA100 cluster ==\n");
    println!("{:<12} {:>12} {:>12} {:>12}", "system", "GPT-Small", "GPT-Medium", "GPT-Large");
    for (label, system, moved) in [
        ("DeepSpeed", SimSystem::DeepSpeedStatic, 0usize),
        ("SYMI", SimSystem::Symi, 0),
        ("FlexMoE*", SimSystem::FlexMoE, 2),
    ] {
        let mut cells = Vec::new();
        for model in [
            ModelCostConfig::gpt_small(),
            ModelCostConfig::gpt_medium(),
            ModelCostConfig::gpt_large(),
        ] {
            let sim = IterationSim::paper_eval(model);
            let avg: f64 = trace
                .iterations
                .iter()
                .map(|pop| {
                    let total: u64 = pop.iter().sum();
                    let tokens: Vec<f64> = pop
                        .iter()
                        .map(|&p| p as f64 / total as f64 * model.tokens_per_batch as f64)
                        .collect();
                    sim.simulate(
                        &tokens,
                        &sim.uniform_replicas(),
                        system,
                        RebalanceSpec { moved_replicas_per_layer: moved },
                    )
                    .total_seconds()
                })
                .sum::<f64>()
                / trace.iterations.len() as f64;
            cells.push(format!("{avg:>10.3}s"));
        }
        println!("{label:<12} {}", cells.join(" "));
    }
    println!("(* FlexMoE shown on a rebalancing iteration, 2 replicas moved per layer)\n");

    println!("== §3.3 worked example: GPT3-175B layer, N=2048, 400 Gb/s IB ==\n");
    let gb = 1.0e9f64; // the paper's worked example uses decimal GB
    let model = CommCostModel {
        nodes: 2048,
        expert_classes: 64,
        slots_per_rank: 2,
        grad_bytes: 3.375 * gb,
        weight_bytes: 3.375 * gb,
        optimizer_bytes: 27.0 * gb,
        hw: HardwareSpec::paper_analysis_example(),
    };
    println!(
        "optimizer footprint : {:.2} TB per layer (both systems)",
        model.optimizer_footprint_bytes() / 1e12
    );
    println!(
        "data per iteration  : {:.1} TB (invariant in the placement)",
        (model.grad_data_bytes() + model.weight_data_bytes()) / 1e12
    );
    println!(
        "per-rank comm cost  : static {:.4} s vs SYMI {:.4} s  (+{:.2}%)",
        model.costs(SystemKind::StaticBaseline).total(),
        model.costs(SystemKind::Symi).total(),
        model.symi_overhead_ratio() * 100.0
    );
    println!(
        "coupled migration   : {:.3} s to move ONE expert's weights+optimizer\n\
                       (vs zero extra for SYMI's re-placement)",
        model.coupled_migration_seconds()
    );
}
