//! Internal pseudo-random number generation: SplitMix64 seeding, an
//! xorshift64* generator, and Box–Muller normal sampling.
//!
//! This replaces the external `rand`/`rand_distr` crates so the workspace
//! builds fully offline. The API mirrors the subset the workspace used —
//! `StdRng::seed_from_u64`, `Rng::gen`, `Rng::gen_range`,
//! `Normal::new(..).sample(..)`, `Uniform::new_inclusive` — so call sites
//! are import swaps. Sequences are deterministic per seed (and stable across
//! platforms) but intentionally *not* identical to the `rand` crate's.

/// SplitMix64: used to expand a `u64` seed into generator state. Passes
/// through every 64-bit value exactly once; good avalanche behaviour.
#[derive(Clone, Debug)]
pub struct SplitMix64 {
    state: u64,
}

impl SplitMix64 {
    pub fn new(seed: u64) -> Self {
        Self { state: seed }
    }

    #[inline]
    pub fn next_u64(&mut self) -> u64 {
        self.state = self.state.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.state;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }
}

/// The workspace's standard generator: xorshift64* with SplitMix64-expanded
/// seeding (so nearby seeds produce uncorrelated streams and seed 0 is
/// valid).
#[derive(Clone, Debug)]
pub struct StdRng {
    state: u64,
}

impl StdRng {
    pub fn seed_from_u64(seed: u64) -> Self {
        let mut sm = SplitMix64::new(seed);
        // xorshift state must be non-zero; SplitMix64 output is zero for at
        // most one input, so loop at most twice.
        let mut state = sm.next_u64();
        if state == 0 {
            state = sm.next_u64() | 1;
        }
        Self { state }
    }
}

impl Rng for StdRng {
    #[inline]
    fn next_u64(&mut self) -> u64 {
        let mut x = self.state;
        x ^= x >> 12;
        x ^= x << 25;
        x ^= x >> 27;
        self.state = x;
        x.wrapping_mul(0x2545f4914f6cdd1d)
    }
}

/// Random-value source. Implemented by [`StdRng`]; generic code takes
/// `&mut impl Rng` exactly as it did with the external crate.
pub trait Rng {
    fn next_u64(&mut self) -> u64;

    /// Uniform sample of a primitive: `f32`/`f64` in `[0, 1)`, integers over
    /// their full range, `bool` fair coin.
    #[inline]
    fn gen<T: SampleUnit>(&mut self) -> T
    where
        Self: Sized,
    {
        T::from_rng(self)
    }

    /// Uniform sample from a half-open (`a..b`) or inclusive (`a..=b`)
    /// range. Panics on empty ranges, like `rand`.
    #[inline]
    fn gen_range<R: SampleRange>(&mut self, range: R) -> R::Output
    where
        Self: Sized,
    {
        range.sample_from(self)
    }
}

/// Types [`Rng::gen`] can produce.
pub trait SampleUnit {
    fn from_rng(rng: &mut impl Rng) -> Self;
}

impl SampleUnit for f64 {
    #[inline]
    fn from_rng(rng: &mut impl Rng) -> f64 {
        // 53 mantissa bits -> [0, 1)
        (rng.next_u64() >> 11) as f64 * (1.0 / (1u64 << 53) as f64)
    }
}

impl SampleUnit for f32 {
    #[inline]
    fn from_rng(rng: &mut impl Rng) -> f32 {
        // 24 mantissa bits -> [0, 1)
        (rng.next_u64() >> 40) as f32 * (1.0 / (1u64 << 24) as f32)
    }
}

impl SampleUnit for u64 {
    #[inline]
    fn from_rng(rng: &mut impl Rng) -> u64 {
        rng.next_u64()
    }
}

impl SampleUnit for u32 {
    #[inline]
    fn from_rng(rng: &mut impl Rng) -> u32 {
        (rng.next_u64() >> 32) as u32
    }
}

impl SampleUnit for bool {
    #[inline]
    fn from_rng(rng: &mut impl Rng) -> bool {
        rng.next_u64() & 1 == 1
    }
}

/// Unbiased-enough bounded sample via 128-bit widening multiply.
#[inline]
fn bounded(rng: &mut impl Rng, span: u64) -> u64 {
    debug_assert!(span > 0);
    ((rng.next_u64() as u128 * span as u128) >> 64) as u64
}

/// Ranges [`Rng::gen_range`] accepts.
pub trait SampleRange {
    type Output;
    fn sample_from(self, rng: &mut impl Rng) -> Self::Output;
}

macro_rules! impl_int_range {
    ($($t:ty),*) => {$(
        impl SampleRange for std::ops::Range<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                assert!(self.start < self.end, "gen_range called with empty range");
                let span = (self.end as i128 - self.start as i128) as u64;
                (self.start as i128 + bounded(rng, span) as i128) as $t
            }
        }
        impl SampleRange for std::ops::RangeInclusive<$t> {
            type Output = $t;
            #[inline]
            fn sample_from(self, rng: &mut impl Rng) -> $t {
                let (start, end) = (*self.start(), *self.end());
                assert!(start <= end, "gen_range called with empty range");
                let span = (end as i128 - start as i128) as u64;
                if span == u64::MAX {
                    return rng.next_u64() as $t;
                }
                (start as i128 + bounded(rng, span + 1) as i128) as $t
            }
        }
    )*};
}

impl_int_range!(usize, u64, u32, i64, i32);

impl SampleRange for std::ops::Range<f64> {
    type Output = f64;
    #[inline]
    fn sample_from(self, rng: &mut impl Rng) -> f64 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + rng.gen::<f64>() * (self.end - self.start)
    }
}

impl SampleRange for std::ops::Range<f32> {
    type Output = f32;
    #[inline]
    fn sample_from(self, rng: &mut impl Rng) -> f32 {
        assert!(self.start < self.end, "gen_range called with empty range");
        self.start + rng.gen::<f32>() * (self.end - self.start)
    }
}

/// Distributions that can be sampled with an [`Rng`] — mirrors
/// `rand_distr::Distribution`.
pub trait Distribution<T> {
    fn sample(&self, rng: &mut impl Rng) -> T;
}

/// Float scalar abstraction so [`Normal`] and [`Uniform`] work for both
/// `f32` and `f64`.
pub trait Float: Copy + PartialOrd {
    fn from_f64(v: f64) -> Self;
    fn to_f64(self) -> f64;
    fn is_finite_scalar(self) -> bool;
    fn unit(rng: &mut impl Rng) -> Self;
}

impl Float for f64 {
    fn from_f64(v: f64) -> f64 {
        v
    }
    fn to_f64(self) -> f64 {
        self
    }
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
    fn unit(rng: &mut impl Rng) -> f64 {
        rng.gen::<f64>()
    }
}

impl Float for f32 {
    fn from_f64(v: f64) -> f32 {
        v as f32
    }
    fn to_f64(self) -> f64 {
        self as f64
    }
    fn is_finite_scalar(self) -> bool {
        self.is_finite()
    }
    fn unit(rng: &mut impl Rng) -> f32 {
        rng.gen::<f32>()
    }
}

/// Error for invalid [`Normal`] parameters (mirrors `rand_distr`).
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct NormalError;

impl std::fmt::Display for NormalError {
    fn fmt(&self, f: &mut std::fmt::Formatter<'_>) -> std::fmt::Result {
        write!(f, "normal distribution requires finite mean and std >= 0")
    }
}

impl std::error::Error for NormalError {}

/// Gaussian distribution sampled with the Box–Muller transform.
#[derive(Clone, Copy, Debug)]
pub struct Normal<T: Float> {
    mean: T,
    std: T,
}

impl<T: Float> Normal<T> {
    pub fn new(mean: T, std: T) -> Result<Self, NormalError> {
        if !mean.is_finite_scalar() || !std.is_finite_scalar() || std.to_f64() < 0.0 {
            return Err(NormalError);
        }
        Ok(Self { mean, std })
    }
}

impl<T: Float> Distribution<T> for Normal<T> {
    #[inline]
    fn sample(&self, rng: &mut impl Rng) -> T {
        // Box–Muller, cosine branch. u1 is nudged away from 0 so ln() is
        // finite; draws stay deterministic per seed.
        let u1 = f64::from_rng(rng).max(f64::MIN_POSITIVE);
        let u2 = f64::from_rng(rng);
        let mag = (-2.0 * u1.ln()).sqrt();
        let z = mag * (2.0 * std::f64::consts::PI * u2).cos();
        T::from_f64(self.mean.to_f64() + self.std.to_f64() * z)
    }
}

/// Uniform distribution over a closed interval `[low, high]`.
#[derive(Clone, Copy, Debug)]
pub struct Uniform<T: Float> {
    low: T,
    span: f64,
}

impl<T: Float> Uniform<T> {
    pub fn new_inclusive(low: T, high: T) -> Self {
        assert!(low <= high, "Uniform::new_inclusive requires low <= high");
        Self { low, span: high.to_f64() - low.to_f64() }
    }
}

impl<T: Float> Distribution<T> for Uniform<T> {
    #[inline]
    fn sample(&self, rng: &mut impl Rng) -> T {
        T::from_f64(self.low.to_f64() + f64::from_rng(rng) * self.span)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn deterministic_per_seed() {
        let mut a = StdRng::seed_from_u64(42);
        let mut b = StdRng::seed_from_u64(42);
        for _ in 0..100 {
            assert_eq!(a.next_u64(), b.next_u64());
        }
        let mut c = StdRng::seed_from_u64(43);
        assert_ne!(StdRng::seed_from_u64(42).next_u64(), c.next_u64());
    }

    #[test]
    fn seed_zero_is_valid() {
        let mut rng = StdRng::seed_from_u64(0);
        let x = rng.next_u64();
        let y = rng.next_u64();
        assert_ne!(x, y);
    }

    #[test]
    fn unit_floats_in_range() {
        let mut rng = StdRng::seed_from_u64(1);
        for _ in 0..10_000 {
            let f: f64 = rng.gen();
            assert!((0.0..1.0).contains(&f));
            let g: f32 = rng.gen();
            assert!((0.0..1.0).contains(&g));
        }
    }

    #[test]
    fn gen_range_hits_all_values() {
        let mut rng = StdRng::seed_from_u64(2);
        let mut seen = [false; 7];
        for _ in 0..1000 {
            seen[rng.gen_range(0..7usize)] = true;
        }
        assert!(seen.iter().all(|&s| s));
        // Inclusive upper bound is reachable.
        let mut top = false;
        for _ in 0..200 {
            if rng.gen_range(0..=3usize) == 3 {
                top = true;
            }
        }
        assert!(top);
    }

    #[test]
    fn uniform_mean_is_centered() {
        let mut rng = StdRng::seed_from_u64(3);
        let d = Uniform::new_inclusive(-2.0f32, 2.0f32);
        let n = 20_000;
        let sum: f64 = (0..n).map(|_| d.sample(&mut rng) as f64).sum();
        assert!((sum / n as f64).abs() < 0.05);
    }

    #[test]
    fn normal_moments_match() {
        let mut rng = StdRng::seed_from_u64(4);
        let d = Normal::new(1.0f64, 2.0).unwrap();
        let n = 50_000;
        let samples: Vec<f64> = (0..n).map(|_| d.sample(&mut rng)).collect();
        let mean = samples.iter().sum::<f64>() / n as f64;
        let var = samples.iter().map(|s| (s - mean) * (s - mean)).sum::<f64>() / n as f64;
        assert!((mean - 1.0).abs() < 0.05, "mean {mean}");
        assert!((var.sqrt() - 2.0).abs() < 0.05, "std {}", var.sqrt());
        assert!(Normal::new(f64::NAN, 1.0).is_err());
        assert!(Normal::new(0.0, -1.0).is_err());
    }

    #[test]
    fn negative_int_ranges() {
        let mut rng = StdRng::seed_from_u64(5);
        for _ in 0..1000 {
            let v = rng.gen_range(-5i64..5);
            assert!((-5..5).contains(&v));
        }
    }
}
