//! Fixed worker pool for data-parallel kernel execution.
//!
//! A std-only thread pool sized from `SYMI_THREADS` (falling back to the
//! machine's available parallelism). Work is dispatched as *indexed shares*:
//! a parallel region asks for `p` participants and every participant `w`
//! receives the pair `(w, p)`, from which it derives its own deterministic
//! contiguous chunk via [`chunk_range`]. Two invariants make threaded
//! results bit-exact against the sequential path:
//!
//! 1. **Disjoint outputs.** Every helper in this module hands each
//!    participant an exclusive, contiguous slice of the output; no output
//!    element is ever written by two participants.
//! 2. **No cross-participant reductions.** Kernels accumulate each output
//!    element locally in ascending index order; the pool never merges
//!    partial sums, so floating-point accumulation order is independent of
//!    the worker count.
//!
//! Consequently a kernel run with 1, 2, or 64 threads produces identical
//! bits — the worker count only decides *who* computes each chunk.
//!
//! The submitting thread always participates as share 0, so a pool of `t`
//! threads spawns `t - 1` OS workers. Workers are spawned lazily on first
//! use and then parked on a condvar; steady-state dispatch allocates
//! nothing. Nested parallel regions (a pool op issued from inside a worker
//! share) degrade to inline sequential execution rather than deadlocking.
//!
//! This module contains the workspace's only `unsafe` code: the classic
//! scoped-dispatch lifetime erasure. [`ThreadPool::run`] lends workers a
//! reference to a stack closure and **does not return until every share has
//! finished**, so the erased borrow never outlives the frame it points into.

use std::ops::Range;
use std::sync::atomic::{AtomicU64, AtomicUsize, Ordering};
use std::sync::{Condvar, Mutex, MutexGuard, OnceLock};
use std::time::Instant;

/// Hard cap on pool participants; stack-allocated split tables use it.
pub const MAX_WORKERS: usize = 16;

/// Boundaries of chunk `i` when splitting `len` items into `parts`
/// near-equal contiguous chunks (remainder spread over the first chunks).
/// Mirrors `symi_collectives::coll::chunk_range` (tensor sits below the
/// collectives crate and cannot import it).
pub fn chunk_range(len: usize, parts: usize, i: usize) -> (usize, usize) {
    debug_assert!(i < parts);
    let base = len / parts;
    let rem = len % parts;
    let start = i * base + i.min(rem);
    let size = base + usize::from(i < rem);
    (start, start + size)
}

/// A job lent to the workers for the duration of one `run` call.
///
/// The pointer is a lifetime-erased borrow of the submitting frame's
/// closure; see the module docs for why that is sound.
#[derive(Clone, Copy)]
struct Job {
    f: *const (dyn Fn(usize) + Sync),
    /// Total participants (submitter = share 0, workers take 1..shares).
    shares: usize,
}
// SAFETY: the closure behind `f` is `Sync` (shared calls from many threads
// are fine) and the submitter keeps it alive until every share completes.
unsafe impl Send for Job {}

struct Slot {
    /// Bumped once per job so parked workers can tell "new work" apart
    /// from spurious wakeups.
    seq: u64,
    job: Option<Job>,
    /// Worker shares still running for the current job.
    remaining: usize,
}

struct Shared {
    slot: Mutex<Slot>,
    work_cv: Condvar,
    done_cv: Condvar,
}

/// Cumulative pool counters (monotonic; consumers diff between reads).
#[derive(Clone, Copy, Debug, Default)]
pub struct PoolStats {
    /// Threads that can currently participate (including the submitter).
    pub threads: usize,
    /// Parallel regions dispatched through the pool.
    pub jobs: u64,
    /// Nanoseconds of share execution summed over all participants.
    pub busy_ns: u64,
    /// `SYMI_THREADS` was set but unparseable when the pool was created;
    /// the value was ignored (with a one-time stderr warning) and the pool
    /// fell back to available parallelism.
    pub env_invalid: bool,
}

/// The fixed worker pool. Use [`global`]; constructing private pools is
/// intentionally unsupported so every subsystem shares one set of threads.
pub struct ThreadPool {
    shared: &'static Shared,
    /// OS workers spawned so far (grown lazily up to `threads() - 1`).
    spawned: Mutex<usize>,
    /// Serializes submissions from different threads.
    submit: Mutex<()>,
    /// Current participant budget (submitter + workers).
    threads: AtomicUsize,
    jobs: AtomicU64,
    busy_ns: AtomicU64,
    /// Set at creation when `SYMI_THREADS` held garbage (see `env_threads`).
    env_invalid: bool,
}

thread_local! {
    /// Set while this thread is executing a pool share; nested parallel
    /// regions check it and run inline instead of re-entering the pool.
    static IN_SHARE: std::cell::Cell<bool> = const { std::cell::Cell::new(false) };
}

/// Parses a `SYMI_THREADS` value: a positive integer, surrounding
/// whitespace tolerated. Returns a description of the problem otherwise.
pub fn parse_threads(raw: &str) -> Result<usize, String> {
    let trimmed = raw.trim();
    if trimmed.is_empty() {
        return Err("empty value".to_string());
    }
    match trimmed.parse::<usize>() {
        Ok(0) => Err("thread count must be at least 1".to_string()),
        Ok(t) => Ok(t),
        Err(e) => Err(format!("not a positive integer: {e}")),
    }
}

/// Reads `SYMI_THREADS`. The second element reports whether the variable
/// was set but invalid — a misconfiguration that must not pass silently,
/// because the pool then sizes itself from the machine instead of the
/// operator's intent.
fn env_threads() -> (Option<usize>, bool) {
    let Ok(raw) = std::env::var("SYMI_THREADS") else {
        return (None, false);
    };
    match parse_threads(&raw) {
        Ok(t) => (Some(t), false),
        Err(why) => {
            eprintln!(
                "symi: ignoring invalid SYMI_THREADS={raw:?} ({why}); \
                 falling back to available parallelism"
            );
            (None, true)
        }
    }
}

/// The process-wide pool, created on first use with `SYMI_THREADS` threads
/// (default: available parallelism), capped at [`MAX_WORKERS`].
pub fn global() -> &'static ThreadPool {
    static POOL: OnceLock<ThreadPool> = OnceLock::new();
    POOL.get_or_init(|| {
        let (requested, env_invalid) = env_threads();
        let threads = requested
            .unwrap_or_else(|| std::thread::available_parallelism().map_or(1, |n| n.get()))
            .min(MAX_WORKERS);
        let shared: &'static Shared = Box::leak(Box::new(Shared {
            slot: Mutex::new(Slot { seq: 0, job: None, remaining: 0 }),
            work_cv: Condvar::new(),
            done_cv: Condvar::new(),
        }));
        ThreadPool {
            shared,
            spawned: Mutex::new(0),
            submit: Mutex::new(()),
            threads: AtomicUsize::new(threads),
            jobs: AtomicU64::new(0),
            busy_ns: AtomicU64::new(0),
            env_invalid,
        }
    })
}

/// Current participant budget of the global pool.
pub fn current_threads() -> usize {
    global().threads()
}

/// Overrides the participant budget (clamped to `1..=MAX_WORKERS`).
/// Intended for benches and tests that sweep thread counts; results are
/// bit-identical across budgets by construction.
pub fn set_threads(threads: usize) {
    global().threads.store(threads.clamp(1, MAX_WORKERS), Ordering::Relaxed);
}

/// Serializes in-crate tests that temporarily rewire the global budget via
/// [`set_threads`] (the pool is process-global, so concurrent sweeps race).
#[cfg(test)]
pub(crate) static TEST_POOL_LOCK: Mutex<()> = Mutex::new(());

/// Snapshot of the global pool's counters.
pub fn stats() -> PoolStats {
    let p = global();
    PoolStats {
        threads: p.threads(),
        jobs: p.jobs.load(Ordering::Relaxed),
        busy_ns: p.busy_ns.load(Ordering::Relaxed),
        env_invalid: p.env_invalid,
    }
}

impl ThreadPool {
    pub fn threads(&self) -> usize {
        self.threads.load(Ordering::Relaxed).clamp(1, MAX_WORKERS)
    }

    fn worker_loop(shared: &'static Shared, id: usize) {
        let mut seen = 0u64;
        loop {
            let job = {
                let mut slot = shared.slot.lock().expect("pool mutex");
                loop {
                    if slot.seq != seen {
                        seen = slot.seq;
                        if let Some(job) = slot.job {
                            if id < job.shares {
                                break job;
                            }
                        }
                    }
                    slot = shared.work_cv.wait(slot).expect("pool mutex");
                }
            };
            let t0 = Instant::now();
            IN_SHARE.with(|f| f.set(true));
            // SAFETY: the submitter blocks in `run` until `remaining`
            // reaches zero, so the borrowed closure is alive here.
            (unsafe { &*job.f })(id);
            IN_SHARE.with(|f| f.set(false));
            let elapsed = t0.elapsed().as_nanos() as u64;
            global().busy_ns.fetch_add(elapsed, Ordering::Relaxed);
            let mut slot = shared.slot.lock().expect("pool mutex");
            slot.remaining -= 1;
            if slot.remaining == 0 {
                shared.done_cv.notify_all();
            }
        }
    }

    fn ensure_spawned(&self, workers: usize) {
        let mut spawned = self.spawned.lock().expect("pool spawn mutex");
        while *spawned < workers {
            let id = *spawned + 1; // worker ids are 1-based; 0 is the submitter
            let shared = self.shared;
            std::thread::Builder::new()
                .name(format!("symi-pool-{id}"))
                .spawn(move || Self::worker_loop(shared, id))
                .expect("spawn pool worker");
            *spawned += 1;
        }
    }

    /// Runs `f(share)` for every `share in 0..shares`, distributing shares
    /// `1..` to pool workers and running share 0 on the calling thread.
    /// Returns only after every share has completed.
    pub fn run(&self, shares: usize, f: &(dyn Fn(usize) + Sync)) {
        let shares = shares.clamp(1, self.threads());
        if shares == 1 || IN_SHARE.with(|s| s.get()) {
            // Sequential fallback — also the nested-region path, keeping the
            // pool deadlock-free. Callers have already partitioned their work
            // into `shares` chunks, so every share must still execute; doing
            // so in ascending order on one thread produces the same bits as
            // the parallel dispatch (disjoint outputs, per-element folds).
            let t0 = Instant::now();
            for w in 0..shares {
                f(w);
            }
            self.busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
            return;
        }
        let _serial: MutexGuard<'_, ()> = self.submit.lock().expect("pool submit mutex");
        self.ensure_spawned(shares - 1);
        self.jobs.fetch_add(1, Ordering::Relaxed);
        // SAFETY: lifetime erasure for scoped dispatch — the borrow is only
        // reachable through `Slot.job`, and this function does not return
        // until every worker share has finished (the `remaining == 0` wait
        // below), after which no worker dereferences the pointer again.
        let erased: &'static (dyn Fn(usize) + Sync) = unsafe { std::mem::transmute(f) };
        {
            let mut slot = self.shared.slot.lock().expect("pool mutex");
            slot.seq += 1;
            slot.job = Some(Job { f: erased, shares });
            slot.remaining = shares - 1;
            self.shared.work_cv.notify_all();
        }
        let t0 = Instant::now();
        IN_SHARE.with(|s| s.set(true));
        f(0);
        IN_SHARE.with(|s| s.set(false));
        self.busy_ns.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
        let mut slot = self.shared.slot.lock().expect("pool mutex");
        while slot.remaining > 0 {
            slot = self.shared.done_cv.wait(slot).expect("pool mutex");
        }
        slot.job = None;
    }
}

/// How many participants a region of `items` work items deserves, keeping
/// at least `min_per_share` items per participant.
fn shares_for(items: usize, min_per_share: usize) -> usize {
    let budget = current_threads();
    let useful = items / min_per_share.max(1);
    budget.min(useful.max(1))
}

/// Parallel iteration over `0..items`: each participant receives one
/// contiguous [`chunk_range`] sub-range. Outputs written through captured
/// state must be disjoint per index (all helpers below guarantee this
/// structurally).
pub fn parallel_for(items: usize, min_per_share: usize, f: impl Fn(Range<usize>) + Sync) {
    if items == 0 {
        return;
    }
    let p = shares_for(items, min_per_share);
    if p == 1 {
        f(0..items);
        return;
    }
    global().run(p, &|w| {
        let (a, b) = chunk_range(items, p, w);
        if a < b {
            f(a..b);
        }
    });
}

/// A split table: per-share mutable sub-slices of one buffer, stored on the
/// stack. Shares lock only their own entry (uncontended by construction),
/// which is what lets safe code hand disjoint `&mut` chunks to the pool.
pub struct Parts<'a, T>([Option<Mutex<&'a mut [T]>>; MAX_WORKERS]);

impl<'a, T> Parts<'a, T> {
    /// Splits `data` so share `w` owns `bounds[w]` (item ranges scaled by
    /// `width` elements per item).
    pub fn split(mut data: &'a mut [T], bounds: &[(usize, usize)], width: usize) -> Self {
        let mut parts: [Option<Mutex<&'a mut [T]>>; MAX_WORKERS] = std::array::from_fn(|_| None);
        for (w, &(a, b)) in bounds.iter().enumerate() {
            let (head, tail) = data.split_at_mut((b - a) * width);
            parts[w] = Some(Mutex::new(head));
            data = tail;
        }
        Self(parts)
    }

    /// Exclusive access to share `w`'s chunk.
    pub fn lock(&self, w: usize) -> MutexGuard<'_, &'a mut [T]> {
        self.0[w].as_ref().expect("share index within split").lock().expect("parts mutex")
    }
}

/// The per-share bounds table for `items` split `p` ways.
pub fn share_bounds(items: usize, p: usize) -> ([(usize, usize); MAX_WORKERS], usize) {
    let mut bounds = [(0usize, 0usize); MAX_WORKERS];
    for (w, bound) in bounds.iter_mut().enumerate().take(p) {
        *bound = chunk_range(items, p, w);
    }
    (bounds, p)
}

/// Row bounds for `rows` rows split `shares` ways at `block`-row granularity:
/// every share boundary is a multiple of `block` (except the final `rows`
/// cap), so a kernel that tiles rows in `block`-high strips sees the *same
/// global tile decomposition* no matter how many shares execute it. That is
/// what keeps SIMD kernels — whose full-tile and edge-tile code round
/// differently (FMA vs mul-then-add) — bit-identical across worker counts.
fn block_share_bounds(
    rows: usize,
    block: usize,
    shares: usize,
) -> ([(usize, usize); MAX_WORKERS], usize) {
    let nblocks = rows.div_ceil(block.max(1));
    let p = shares.clamp(1, nblocks.max(1)).min(MAX_WORKERS);
    let mut bounds = [(0usize, 0usize); MAX_WORKERS];
    for (w, bound) in bounds.iter_mut().enumerate().take(p) {
        let (ba, bb) = chunk_range(nblocks, p, w);
        *bound = ((ba * block).min(rows), (bb * block).min(rows));
    }
    (bounds, p)
}

/// [`par_rows`] with an explicit share count (the caller's cost model
/// decides, e.g. `kernels::plan_shares`) and `block`-aligned boundaries.
/// `shares <= 1` runs inline on the calling thread with zero dispatch.
pub fn par_rows_planned(
    rows: usize,
    width: usize,
    block: usize,
    shares: usize,
    out: &mut [f32],
    f: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * width);
    if rows == 0 {
        return;
    }
    // `run` executes at most `threads()` shares; planning more would leave
    // bounds unvisited, so cap here rather than trusting the caller's model.
    let (bounds, p) = block_share_bounds(rows, block, shares.min(current_threads()));
    if p == 1 {
        f(0..rows, out);
        return;
    }
    let parts = Parts::split(out, &bounds[..p], width);
    global().run(p, &|w| {
        let (a, b) = bounds[w];
        if a < b {
            f(a..b, &mut parts.lock(w));
        }
    });
}

/// Like [`par_rows_planned`] with two output buffers sharing the same row
/// geometry (pre-activation + activation for the fused GEMM epilogue).
pub fn par_rows2_planned(
    rows: usize,
    width: usize,
    block: usize,
    shares: usize,
    out_a: &mut [f32],
    out_b: &mut [f32],
    f: impl Fn(Range<usize>, &mut [f32], &mut [f32]) + Sync,
) {
    debug_assert_eq!(out_a.len(), rows * width);
    debug_assert_eq!(out_b.len(), rows * width);
    if rows == 0 {
        return;
    }
    let (bounds, p) = block_share_bounds(rows, block, shares.min(current_threads()));
    if p == 1 {
        f(0..rows, out_a, out_b);
        return;
    }
    let parts_a = Parts::split(out_a, &bounds[..p], width);
    let parts_b = Parts::split(out_b, &bounds[..p], width);
    global().run(p, &|w| {
        let (a, b) = bounds[w];
        if a < b {
            f(a..b, &mut parts_a.lock(w), &mut parts_b.lock(w));
        }
    });
}

/// Parallel "rows" map: splits `out` into per-share row ranges (each row is
/// `width` elements) and calls `f(rows, out_rows)` per share. Disjointness
/// is structural, so this is a fully safe parallel-mutation primitive.
pub fn par_rows(
    rows: usize,
    width: usize,
    min_rows_per_share: usize,
    out: &mut [f32],
    f: impl Fn(Range<usize>, &mut [f32]) + Sync,
) {
    debug_assert_eq!(out.len(), rows * width);
    if rows == 0 {
        return;
    }
    let p = shares_for(rows, min_rows_per_share);
    if p == 1 {
        f(0..rows, out);
        return;
    }
    let (bounds, p) = share_bounds(rows, p);
    let parts = Parts::split(out, &bounds[..p], width);
    global().run(p, &|w| {
        let (a, b) = bounds[w];
        if a < b {
            f(a..b, &mut parts.lock(w));
        }
    });
}

/// Like [`par_rows`] with two output buffers sharing the same row geometry
/// (e.g. a pre-activation and its activation for a fused epilogue).
pub fn par_rows2(
    rows: usize,
    width: usize,
    min_rows_per_share: usize,
    out_a: &mut [f32],
    out_b: &mut [f32],
    f: impl Fn(Range<usize>, &mut [f32], &mut [f32]) + Sync,
) {
    debug_assert_eq!(out_a.len(), rows * width);
    debug_assert_eq!(out_b.len(), rows * width);
    if rows == 0 {
        return;
    }
    let p = shares_for(rows, min_rows_per_share);
    if p == 1 {
        f(0..rows, out_a, out_b);
        return;
    }
    let (bounds, p) = share_bounds(rows, p);
    let parts_a = Parts::split(out_a, &bounds[..p], width);
    let parts_b = Parts::split(out_b, &bounds[..p], width);
    global().run(p, &|w| {
        let (a, b) = bounds[w];
        if a < b {
            f(a..b, &mut parts_a.lock(w), &mut parts_b.lock(w));
        }
    });
}

/// Parallel element conversion `src -> dst` (fp16 wire encode/decode, gelu
/// sweeps, quantization): both slices are split at identical boundaries and
/// `f` maps each chunk pair.
pub fn par_convert<S: Sync, D: Send>(
    src: &[S],
    dst: &mut [D],
    min_per_share: usize,
    f: impl Fn(&[S], &mut [D]) + Sync,
) {
    assert_eq!(src.len(), dst.len(), "par_convert length mismatch");
    let n = src.len();
    if n == 0 {
        return;
    }
    let p = shares_for(n, min_per_share);
    if p == 1 {
        f(src, dst);
        return;
    }
    let (bounds, p) = share_bounds(n, p);
    let parts = Parts::split(dst, &bounds[..p], 1);
    global().run(p, &|w| {
        let (a, b) = bounds[w];
        if a < b {
            f(&src[a..b], &mut parts.lock(w));
        }
    });
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn chunk_ranges_partition() {
        for len in [0usize, 1, 7, 64, 103] {
            for parts in 1..=8 {
                let mut next = 0usize;
                for i in 0..parts {
                    let (a, b) = chunk_range(len, parts, i);
                    assert_eq!(a, next);
                    next = b;
                }
                assert_eq!(next, len);
            }
        }
    }

    #[test]
    fn parallel_for_covers_every_index_once() {
        let n = 1003;
        let hits: Vec<std::sync::atomic::AtomicU64> =
            (0..n).map(|_| std::sync::atomic::AtomicU64::new(0)).collect();
        parallel_for(n, 1, |range| {
            for i in range {
                hits[i].fetch_add(1, Ordering::Relaxed);
            }
        });
        assert!(hits.iter().all(|h| h.load(Ordering::Relaxed) == 1));
    }

    #[test]
    fn par_rows_writes_disjoint_rows() {
        let rows = 37;
        let width = 5;
        let mut out = vec![0.0f32; rows * width];
        par_rows(rows, width, 1, &mut out, |range, chunk| {
            for (local, r) in range.clone().enumerate() {
                for c in 0..width {
                    chunk[local * width + c] = (r * width + c) as f32;
                }
            }
        });
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32);
        }
    }

    #[test]
    fn par_convert_maps_all_elements() {
        let src: Vec<f32> = (0..257).map(|i| i as f32).collect();
        let mut dst = vec![0.0f32; 257];
        par_convert(&src, &mut dst, 8, |s, d| {
            for (x, y) in s.iter().zip(d.iter_mut()) {
                *y = x * 2.0;
            }
        });
        for (i, v) in dst.iter().enumerate() {
            assert_eq!(*v, i as f32 * 2.0);
        }
    }

    #[test]
    fn nested_regions_run_inline() {
        let outer = std::sync::atomic::AtomicU64::new(0);
        parallel_for(4, 1, |range| {
            for _ in range {
                // A nested region must not deadlock; it runs inline.
                parallel_for(8, 1, |inner| {
                    outer.fetch_add(inner.len() as u64, Ordering::Relaxed);
                });
            }
        });
        assert_eq!(outer.load(Ordering::Relaxed), 32);
    }

    #[test]
    fn block_aligned_bounds_partition_and_align() {
        for rows in [1usize, 4, 5, 23, 64, 101] {
            for block in [1usize, 4, 6, 8] {
                for shares in 1..=8 {
                    let (bounds, p) = block_share_bounds(rows, block, shares);
                    let mut next = 0usize;
                    for &(a, b) in bounds.iter().take(p) {
                        assert_eq!(a, next, "rows={rows} block={block} shares={shares}");
                        assert!(b == rows || b % block == 0, "interior boundary not aligned");
                        next = b;
                    }
                    assert_eq!(next, rows);
                }
            }
        }
    }

    #[test]
    fn par_rows_planned_covers_every_row_once() {
        let _g = crate::pool::TEST_POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = current_threads();
        set_threads(4);
        let rows = 29;
        let width = 3;
        let mut out = vec![0.0f32; rows * width];
        par_rows_planned(rows, width, 4, 8, &mut out, |range, chunk| {
            for (local, r) in range.clone().enumerate() {
                for c in 0..width {
                    chunk[local * width + c] += (r * width + c) as f32 + 1.0;
                }
            }
        });
        set_threads(prev);
        for (i, v) in out.iter().enumerate() {
            assert_eq!(*v, i as f32 + 1.0, "row element written exactly once");
        }
    }

    #[test]
    fn parse_threads_accepts_positive_integers() {
        assert_eq!(parse_threads("1"), Ok(1));
        assert_eq!(parse_threads(" 8 "), Ok(8));
        assert_eq!(parse_threads("64"), Ok(64));
    }

    #[test]
    fn parse_threads_rejects_garbage_loudly() {
        assert!(parse_threads("abc").is_err());
        assert!(parse_threads("0").is_err(), "zero threads cannot run anything");
        assert!(parse_threads("").is_err());
        assert!(parse_threads("-2").is_err());
        assert!(parse_threads("4.5").is_err());
    }

    #[test]
    fn stats_accumulate() {
        let before = stats();
        parallel_for(1024, 1, |_| {});
        let after = stats();
        assert!(after.threads >= 1);
        assert!(after.jobs >= before.jobs);
    }
}
