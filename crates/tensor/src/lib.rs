//! # symi-tensor
//!
//! Dense `f32` linear-algebra kernels and optimizer math for the SYMI
//! Mixture-of-Experts training stack.
//!
//! This crate is the numeric substrate underneath `symi-model`: a small,
//! deterministic, CPU-only matrix library with exactly the operations a
//! GPT-style MoE transformer needs (blocked matmul in the three layouts used
//! by forward/backward passes, row softmax, LayerNorm, GELU, cross-entropy)
//! plus a from-scratch Adam optimizer that keeps fp32 *master* state separate
//! from the working weights — mirroring the mixed-precision layout whose byte
//! sizes (2 B/param weights vs 16 B/param optimizer state) drive the SYMI
//! paper's cost analysis.
//!
//! Design notes:
//! - Everything accumulates in `f32`, row-major, allocation-explicit; expert
//!   weights can optionally *live* in binary16 ([`half::HalfMatrix`]) with
//!   the f16-storage/f32-accumulate GEMMs streaming 2-byte panels. The hot
//!   GEMM paths are cache-blocked and register-tiled ([`kernels`]), dispatch
//!   to AVX2+FMA microkernels when the CPU has them ([`simd`], scalar
//!   fallback otherwise, `SYMI_SIMD` override) and run on a std-only fixed
//!   worker pool ([`pool`]) behind a cost-model gate; within one process a
//!   GEMM's result is bit-identical for **any** worker count (see the
//!   determinism contract in [`kernels`]), and the scalar path is
//!   additionally bit-exact vs the naive oracle. The workspace's `unsafe` is
//!   confined to this crate: the pool's scoped-dispatch lifetime erasure
//!   (documented in [`pool`]) and the feature-gated `std::arch` intrinsics
//!   in [`simd`] behind safe runtime-detected wrappers.
//! - All stochastic initialization takes a caller-provided RNG so experiments
//!   are reproducible bit-for-bit.
//! - [`gradcheck`] provides the numerical-differentiation harness used by the
//!   model crate's per-layer gradient tests.

pub mod adam;
pub mod gradcheck;
pub mod half;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod rng;
#[cfg(target_arch = "x86_64")]
pub mod simd;

pub use adam::{AdamConfig, AdamShard, AdamState};
pub use half::HalfMatrix;
pub use kernels::{kernel_stats, KernelStats};
pub use matrix::Matrix;
pub use pool::PoolStats;
pub use rng::{Distribution, Normal, Rng, SplitMix64, StdRng, Uniform};
