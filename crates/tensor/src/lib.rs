//! # symi-tensor
//!
//! Dense `f32` linear-algebra kernels and optimizer math for the SYMI
//! Mixture-of-Experts training stack.
//!
//! This crate is the numeric substrate underneath `symi-model`: a small,
//! deterministic, CPU-only matrix library with exactly the operations a
//! GPT-style MoE transformer needs (blocked matmul in the three layouts used
//! by forward/backward passes, row softmax, LayerNorm, GELU, cross-entropy)
//! plus a from-scratch Adam optimizer that keeps fp32 *master* state separate
//! from the working weights — mirroring the mixed-precision layout whose byte
//! sizes (2 B/param weights vs 16 B/param optimizer state) drive the SYMI
//! paper's cost analysis.
//!
//! Design notes:
//! - Everything is `f32`, row-major, and allocation-explicit. The hot GEMM
//!   paths are cache-blocked and register-tiled ([`kernels`]) and run on a
//!   std-only fixed worker pool ([`pool`]); results are bit-identical to the
//!   sequential naive oracle for **any** worker count (see the determinism
//!   contract in [`kernels`]). The only `unsafe` in the workspace is the
//!   pool's scoped-dispatch lifetime erasure, documented in [`pool`].
//! - All stochastic initialization takes a caller-provided RNG so experiments
//!   are reproducible bit-for-bit.
//! - [`gradcheck`] provides the numerical-differentiation harness used by the
//!   model crate's per-layer gradient tests.

pub mod adam;
pub mod gradcheck;
pub mod init;
pub mod kernels;
pub mod matrix;
pub mod ops;
pub mod pool;
pub mod rng;

pub use adam::{AdamConfig, AdamShard, AdamState};
pub use kernels::{kernel_stats, KernelStats};
pub use matrix::Matrix;
pub use pool::PoolStats;
pub use rng::{Distribution, Normal, Rng, SplitMix64, StdRng, Uniform};
