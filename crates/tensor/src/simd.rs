//! AVX2 + FMA GEMM microkernels (x86_64 only).
//!
//! The drivers in [`crate::kernels`] dispatch here when [`have_avx2_fma`]
//! holds (or `SYMI_SIMD=avx2` forces it). Every public function is a *safe*
//! wrapper that `debug_assert!`s the feature set and then calls a
//! `#[target_feature(enable = "avx2", enable = "fma")]` implementation — the
//! `unsafe` is confined to those implementations plus the intrinsic calls,
//! and is sound exactly because the drivers never pick this path without
//! runtime detection.
//!
//! Tile shapes (chosen for 16 architectural YMM registers):
//!
//! - `nn`: 6×16 — 12 accumulator registers, 2 B-strip loads and one `a`
//!   broadcast per k step. B is read in place (contiguous [`NR_NN`] = 16
//!   wide strips at B's row stride), cache-blocked k-chunk → strip → row
//!   tile, so there is no packing pass at all.
//! - `nt`: 2×4 register tile of independent dot products; each dot splits
//!   `k` into 8-lane octets folded by FMA, reduced by a *fixed* pairwise
//!   horizontal sum, plus a scalar tail. Because every dot product — full
//!   tile, edge, or remainder — runs the identical octet/hsum/tail
//!   sequence, `nt` results do not depend on how rows are grouped.
//! - `tn`: 4×16 over a k-major packed A strip (stride [`TN_MR`]).
//!
//! `*_f16` variants take the B operand as binary16 bits and widen inside
//! the kernel with F16C `vcvtph2ps`, so panel traffic stays at 2 B/element.
//!
//! Numerics: accumulation is f32 throughout. FMA keeps the infinitely
//! precise product before each add, so results differ from the scalar
//! mul-then-add kernels by bounded rounding — the oracle property tests
//! gate this at an explicit ULP / forward-error bound
//! (`tests/simd_oracle.rs`) instead of bit equality. Within *this* path,
//! the decomposition-invariance rules from [`crate::kernels`] still hold:
//! share boundaries are tile-aligned, so worker count never changes which
//! elements go through full vs edge kernels.

use crate::half::f16_to_f32;
use crate::kernels::{kern_nn_edge, kern_nn_edge_f16, pack_a_strip};
use crate::matrix::Matrix;
use core::arch::x86_64::*;
use std::ops::Range;

/// nn microkernel row tile.
pub const MR_NN: usize = 6;
/// nn packed-panel width (two YMM vectors).
pub const NR_NN: usize = 16;
/// k-chunk length for the nn drivers: a KC×[`NR_NN`] f32 panel chunk is
/// 16 KB, sized to stay L1-resident while every row tile sweeps it.
const KC: usize = 256;
/// tn microkernel row tile (packed A strip stride).
pub const TN_MR: usize = 4;
/// tn column tile.
pub const TN_NR: usize = 16;

/// Runtime check for the f32 kernels.
pub fn have_avx2_fma() -> bool {
    is_x86_feature_detected!("avx2") && is_x86_feature_detected!("fma")
}

/// Runtime check for the binary16-streaming kernels (in addition to
/// [`have_avx2_fma`]).
pub fn have_f16c() -> bool {
    is_x86_feature_detected!("f16c")
}

// ---------------------------------------------------------------------------
// nn: A·B over packed 16-wide B panels
// ---------------------------------------------------------------------------

/// AVX2 worker for a row range of `out (+)= a·B` (+ optional bias). B is
/// read in place (`bs` row-major, row stride `bstride`): the kernels load
/// contiguous [`NR_NN`]-wide strips per k step, so packing would only add
/// a full extra read+write pass over B.
#[allow(clippy::too_many_arguments)]
pub fn nn_rows(
    a: &Matrix,
    rows: Range<usize>,
    k: usize,
    n: usize,
    bs: &[f32],
    bstride: usize,
    out: &mut [f32],
    acc: bool,
    bias: Option<&[f32]>,
) {
    debug_assert!(have_avx2_fma());
    // SAFETY: drivers dispatch here only after runtime AVX2+FMA detection.
    unsafe { nn_rows_impl(a, rows, k, n, bs, bstride, out, acc, bias) }
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn nn_rows_impl(
    a: &Matrix,
    rows: Range<usize>,
    k: usize,
    n: usize,
    bs: &[f32],
    bstride: usize,
    out: &mut [f32],
    acc: bool,
    bias: Option<&[f32]>,
) {
    let asl = a.as_slice();
    let lda = a.cols();
    let m = rows.len();
    let panels = n.div_ceil(NR_NN);
    // Cache-blocked loop nest: k-chunk outer (the m×KC slab of A becomes
    // L2-resident after the first panel sweeps it), panel next (one KC×16
    // panel chunk — 16 KB — stays L1-resident across the row tiles), row
    // tiles inner. Results are unchanged: each C element still folds its
    // k terms in ascending order — later chunks resume from the spilled
    // f32 partial, and an f32 round-trips memory exactly.
    let mut kc = 0;
    while kc < k.max(1) {
        let klen = KC.min(k - kc);
        let tile_acc = acc || kc > 0;
        for p in 0..panels {
            let j0 = p * NR_NN;
            let w = NR_NN.min(n - j0);
            let chunk = &bs[kc * bstride + j0..];
            let mut i = 0;
            while i < m {
                let rows_here = MR_NN.min(m - i);
                let arow = &asl[(rows.start + i) * lda + kc..];
                let oblock = &mut out[i * n + j0..];
                if rows_here == MR_NN && w == NR_NN {
                    kern_nn_6x16(arow, lda, klen, chunk, bstride, oblock, n, tile_acc);
                } else if w == NR_NN {
                    kern_nn_edge_rows(
                        arow, lda, klen, rows_here, chunk, bstride, oblock, n, tile_acc,
                    );
                } else {
                    kern_nn_edge(
                        arow, lda, klen, rows_here, chunk, w, bstride, oblock, n, tile_acc,
                    );
                }
                i += rows_here;
            }
        }
        kc += klen.max(1);
    }
    if let Some(bias) = bias {
        for r in 0..m {
            for (o, b) in out[r * n..(r + 1) * n].iter_mut().zip(bias) {
                *o += b;
            }
        }
    }
}

/// Full 6×16 nn tile: 12 YMM accumulators live across the whole k sweep.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kern_nn_6x16(
    a: &[f32],
    lda: usize,
    k: usize,
    panel: &[f32],
    pstride: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    debug_assert!(k == 0 || panel.len() >= (k - 1) * pstride + NR_NN);
    debug_assert!(a.len() >= (MR_NN - 1) * lda + k);
    debug_assert!(out.len() >= (MR_NN - 1) * ldc + NR_NN);
    let ap = a.as_ptr();
    let pp = panel.as_ptr();
    let op = out.as_mut_ptr();
    let (
        mut c00,
        mut c01,
        mut c10,
        mut c11,
        mut c20,
        mut c21,
        mut c30,
        mut c31,
        mut c40,
        mut c41,
        mut c50,
        mut c51,
    );
    if acc {
        c00 = _mm256_loadu_ps(op);
        c01 = _mm256_loadu_ps(op.add(8));
        c10 = _mm256_loadu_ps(op.add(ldc));
        c11 = _mm256_loadu_ps(op.add(ldc + 8));
        c20 = _mm256_loadu_ps(op.add(2 * ldc));
        c21 = _mm256_loadu_ps(op.add(2 * ldc + 8));
        c30 = _mm256_loadu_ps(op.add(3 * ldc));
        c31 = _mm256_loadu_ps(op.add(3 * ldc + 8));
        c40 = _mm256_loadu_ps(op.add(4 * ldc));
        c41 = _mm256_loadu_ps(op.add(4 * ldc + 8));
        c50 = _mm256_loadu_ps(op.add(5 * ldc));
        c51 = _mm256_loadu_ps(op.add(5 * ldc + 8));
    } else {
        let z = _mm256_setzero_ps();
        c00 = z;
        c01 = z;
        c10 = z;
        c11 = z;
        c20 = z;
        c21 = z;
        c30 = z;
        c31 = z;
        c40 = z;
        c41 = z;
        c50 = z;
        c51 = z;
    }
    for kk in 0..k {
        // B rows sit a full matrix row apart (`pstride`), a stride the
        // hardware prefetcher won't track — fetch a few k-steps ahead.
        if kk + 4 < k {
            _mm_prefetch::<_MM_HINT_T0>(pp.add((kk + 4) * pstride) as *const i8);
        }
        let b0 = _mm256_loadu_ps(pp.add(kk * pstride));
        let b1 = _mm256_loadu_ps(pp.add(kk * pstride + 8));
        let a0 = _mm256_set1_ps(*ap.add(kk));
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        let a1 = _mm256_set1_ps(*ap.add(lda + kk));
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        let a2 = _mm256_set1_ps(*ap.add(2 * lda + kk));
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        let a3 = _mm256_set1_ps(*ap.add(3 * lda + kk));
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
        let a4 = _mm256_set1_ps(*ap.add(4 * lda + kk));
        c40 = _mm256_fmadd_ps(a4, b0, c40);
        c41 = _mm256_fmadd_ps(a4, b1, c41);
        let a5 = _mm256_set1_ps(*ap.add(5 * lda + kk));
        c50 = _mm256_fmadd_ps(a5, b0, c50);
        c51 = _mm256_fmadd_ps(a5, b1, c51);
    }
    _mm256_storeu_ps(op, c00);
    _mm256_storeu_ps(op.add(8), c01);
    _mm256_storeu_ps(op.add(ldc), c10);
    _mm256_storeu_ps(op.add(ldc + 8), c11);
    _mm256_storeu_ps(op.add(2 * ldc), c20);
    _mm256_storeu_ps(op.add(2 * ldc + 8), c21);
    _mm256_storeu_ps(op.add(3 * ldc), c30);
    _mm256_storeu_ps(op.add(3 * ldc + 8), c31);
    _mm256_storeu_ps(op.add(4 * ldc), c40);
    _mm256_storeu_ps(op.add(4 * ldc + 8), c41);
    _mm256_storeu_ps(op.add(5 * ldc), c50);
    _mm256_storeu_ps(op.add(5 * ldc + 8), c51);
}

/// Row-remainder nn tile: `R` (< 6) rows × full 16 cols, same ascending-k
/// FMA schedule as [`kern_nn_6x16`] with `R` accumulator pairs. Keeps the
/// m-edge on SIMD throughput — a 2-row edge at m = 128 was ~30% of wall
/// time on the GPT-Small ffn shapes when it fell back to the scalar edge.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kern_nn_rx16<const R: usize>(
    a: &[f32],
    lda: usize,
    k: usize,
    panel: &[f32],
    pstride: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    debug_assert!(k == 0 || panel.len() >= (k - 1) * pstride + NR_NN);
    debug_assert!(a.len() >= (R - 1) * lda + k);
    debug_assert!(out.len() >= (R - 1) * ldc + NR_NN);
    let ap = a.as_ptr();
    let pp = panel.as_ptr();
    let op = out.as_mut_ptr();
    let mut c0 = [_mm256_setzero_ps(); R];
    let mut c1 = [_mm256_setzero_ps(); R];
    if acc {
        for r in 0..R {
            c0[r] = _mm256_loadu_ps(op.add(r * ldc));
            c1[r] = _mm256_loadu_ps(op.add(r * ldc + 8));
        }
    }
    for kk in 0..k {
        let b0 = _mm256_loadu_ps(pp.add(kk * pstride));
        let b1 = _mm256_loadu_ps(pp.add(kk * pstride + 8));
        for r in 0..R {
            let av = _mm256_set1_ps(*ap.add(r * lda + kk));
            c0[r] = _mm256_fmadd_ps(av, b0, c0[r]);
            c1[r] = _mm256_fmadd_ps(av, b1, c1[r]);
        }
    }
    for r in 0..R {
        _mm256_storeu_ps(op.add(r * ldc), c0[r]);
        _mm256_storeu_ps(op.add(r * ldc + 8), c1[r]);
    }
}

/// Dispatches a full-width row-remainder tile to the monomorphized
/// [`kern_nn_rx16`] for 1–5 rows.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kern_nn_edge_rows(
    a: &[f32],
    lda: usize,
    k: usize,
    rows: usize,
    panel: &[f32],
    pstride: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    match rows {
        1 => kern_nn_rx16::<1>(a, lda, k, panel, pstride, out, ldc, acc),
        2 => kern_nn_rx16::<2>(a, lda, k, panel, pstride, out, ldc, acc),
        3 => kern_nn_rx16::<3>(a, lda, k, panel, pstride, out, ldc, acc),
        4 => kern_nn_rx16::<4>(a, lda, k, panel, pstride, out, ldc, acc),
        5 => kern_nn_rx16::<5>(a, lda, k, panel, pstride, out, ldc, acc),
        _ => unreachable!("row remainder must be 1..6"),
    }
}

/// [`nn_rows`] with B packed as binary16 bits, widened in-register (F16C).
#[allow(clippy::too_many_arguments)]
pub fn nn_rows_f16(
    a: &Matrix,
    rows: Range<usize>,
    k: usize,
    n: usize,
    bs: &[u16],
    bstride: usize,
    out: &mut [f32],
    acc: bool,
    bias: Option<&[f32]>,
) {
    debug_assert!(have_avx2_fma() && have_f16c());
    // SAFETY: drivers dispatch here only after runtime AVX2+FMA+F16C detection.
    unsafe { nn_rows_f16_impl(a, rows, k, n, bs, bstride, out, acc, bias) }
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
unsafe fn nn_rows_f16_impl(
    a: &Matrix,
    rows: Range<usize>,
    k: usize,
    n: usize,
    bs: &[u16],
    bstride: usize,
    out: &mut [f32],
    acc: bool,
    bias: Option<&[f32]>,
) {
    let asl = a.as_slice();
    let lda = a.cols();
    let m = rows.len();
    let panels = n.div_ceil(NR_NN);
    // Cache-blocked k-chunk → panel → row-tile nest — see `nn_rows_impl`.
    let mut kc = 0;
    while kc < k.max(1) {
        let klen = KC.min(k - kc);
        let tile_acc = acc || kc > 0;
        for p in 0..panels {
            let j0 = p * NR_NN;
            let w = NR_NN.min(n - j0);
            let chunk = &bs[kc * bstride + j0..];
            let mut i = 0;
            while i < m {
                let rows_here = MR_NN.min(m - i);
                let arow = &asl[(rows.start + i) * lda + kc..];
                let oblock = &mut out[i * n + j0..];
                if rows_here == MR_NN && w == NR_NN {
                    kern_nn_f16_6x16(arow, lda, klen, chunk, bstride, oblock, n, tile_acc);
                } else if w == NR_NN {
                    kern_nn_f16_edge_rows(
                        arow, lda, klen, rows_here, chunk, bstride, oblock, n, tile_acc,
                    );
                } else {
                    kern_nn_edge_f16(
                        arow, lda, klen, rows_here, chunk, w, bstride, oblock, n, tile_acc,
                    );
                }
                i += rows_here;
            }
        }
        kc += klen.max(1);
    }
    if let Some(bias) = bias {
        for r in 0..m {
            for (o, b) in out[r * n..(r + 1) * n].iter_mut().zip(bias) {
                *o += b;
            }
        }
    }
}

/// Widens 8 packed binary16 values to a YMM of f32 (`vcvtph2ps`).
#[target_feature(enable = "avx2", enable = "f16c")]
unsafe fn load_f16x8(p: *const u16) -> __m256 {
    _mm256_cvtph_ps(_mm_loadu_si128(p as *const __m128i))
}

/// Full 6×16 nn tile over a binary16 panel: identical FMA schedule to
/// [`kern_nn_6x16`], the B loads just widen on the way in (decode is
/// exact, so values match the widen-at-pack fallback bit-for-bit).
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
unsafe fn kern_nn_f16_6x16(
    a: &[f32],
    lda: usize,
    k: usize,
    panel: &[u16],
    pstride: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    debug_assert!(k == 0 || panel.len() >= (k - 1) * pstride + NR_NN);
    debug_assert!(a.len() >= (MR_NN - 1) * lda + k);
    debug_assert!(out.len() >= (MR_NN - 1) * ldc + NR_NN);
    let ap = a.as_ptr();
    let pp = panel.as_ptr();
    let op = out.as_mut_ptr();
    let (
        mut c00,
        mut c01,
        mut c10,
        mut c11,
        mut c20,
        mut c21,
        mut c30,
        mut c31,
        mut c40,
        mut c41,
        mut c50,
        mut c51,
    );
    if acc {
        c00 = _mm256_loadu_ps(op);
        c01 = _mm256_loadu_ps(op.add(8));
        c10 = _mm256_loadu_ps(op.add(ldc));
        c11 = _mm256_loadu_ps(op.add(ldc + 8));
        c20 = _mm256_loadu_ps(op.add(2 * ldc));
        c21 = _mm256_loadu_ps(op.add(2 * ldc + 8));
        c30 = _mm256_loadu_ps(op.add(3 * ldc));
        c31 = _mm256_loadu_ps(op.add(3 * ldc + 8));
        c40 = _mm256_loadu_ps(op.add(4 * ldc));
        c41 = _mm256_loadu_ps(op.add(4 * ldc + 8));
        c50 = _mm256_loadu_ps(op.add(5 * ldc));
        c51 = _mm256_loadu_ps(op.add(5 * ldc + 8));
    } else {
        let z = _mm256_setzero_ps();
        c00 = z;
        c01 = z;
        c10 = z;
        c11 = z;
        c20 = z;
        c21 = z;
        c30 = z;
        c31 = z;
        c40 = z;
        c41 = z;
        c50 = z;
        c51 = z;
    }
    for kk in 0..k {
        let b0 = load_f16x8(pp.add(kk * pstride));
        let b1 = load_f16x8(pp.add(kk * pstride + 8));
        let a0 = _mm256_set1_ps(*ap.add(kk));
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        let a1 = _mm256_set1_ps(*ap.add(lda + kk));
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        let a2 = _mm256_set1_ps(*ap.add(2 * lda + kk));
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        let a3 = _mm256_set1_ps(*ap.add(3 * lda + kk));
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
        let a4 = _mm256_set1_ps(*ap.add(4 * lda + kk));
        c40 = _mm256_fmadd_ps(a4, b0, c40);
        c41 = _mm256_fmadd_ps(a4, b1, c41);
        let a5 = _mm256_set1_ps(*ap.add(5 * lda + kk));
        c50 = _mm256_fmadd_ps(a5, b0, c50);
        c51 = _mm256_fmadd_ps(a5, b1, c51);
    }
    _mm256_storeu_ps(op, c00);
    _mm256_storeu_ps(op.add(8), c01);
    _mm256_storeu_ps(op.add(ldc), c10);
    _mm256_storeu_ps(op.add(ldc + 8), c11);
    _mm256_storeu_ps(op.add(2 * ldc), c20);
    _mm256_storeu_ps(op.add(2 * ldc + 8), c21);
    _mm256_storeu_ps(op.add(3 * ldc), c30);
    _mm256_storeu_ps(op.add(3 * ldc + 8), c31);
    _mm256_storeu_ps(op.add(4 * ldc), c40);
    _mm256_storeu_ps(op.add(4 * ldc + 8), c41);
    _mm256_storeu_ps(op.add(5 * ldc), c50);
    _mm256_storeu_ps(op.add(5 * ldc + 8), c51);
}

/// Row-remainder f16 nn tile — [`kern_nn_rx16`] with widening B loads.
/// Same FMA schedule as the f32 variant so the widen-at-pack fallback
/// stays bit-identical.
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
unsafe fn kern_nn_f16_rx16<const R: usize>(
    a: &[f32],
    lda: usize,
    k: usize,
    panel: &[u16],
    pstride: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    debug_assert!(k == 0 || panel.len() >= (k - 1) * pstride + NR_NN);
    debug_assert!(a.len() >= (R - 1) * lda + k);
    debug_assert!(out.len() >= (R - 1) * ldc + NR_NN);
    let ap = a.as_ptr();
    let pp = panel.as_ptr();
    let op = out.as_mut_ptr();
    let mut c0 = [_mm256_setzero_ps(); R];
    let mut c1 = [_mm256_setzero_ps(); R];
    if acc {
        for r in 0..R {
            c0[r] = _mm256_loadu_ps(op.add(r * ldc));
            c1[r] = _mm256_loadu_ps(op.add(r * ldc + 8));
        }
    }
    for kk in 0..k {
        let b0 = load_f16x8(pp.add(kk * pstride));
        let b1 = load_f16x8(pp.add(kk * pstride + 8));
        for r in 0..R {
            let av = _mm256_set1_ps(*ap.add(r * lda + kk));
            c0[r] = _mm256_fmadd_ps(av, b0, c0[r]);
            c1[r] = _mm256_fmadd_ps(av, b1, c1[r]);
        }
    }
    for r in 0..R {
        _mm256_storeu_ps(op.add(r * ldc), c0[r]);
        _mm256_storeu_ps(op.add(r * ldc + 8), c1[r]);
    }
}

/// f16 counterpart of [`kern_nn_edge_rows`].
#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
unsafe fn kern_nn_f16_edge_rows(
    a: &[f32],
    lda: usize,
    k: usize,
    rows: usize,
    panel: &[u16],
    pstride: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    match rows {
        1 => kern_nn_f16_rx16::<1>(a, lda, k, panel, pstride, out, ldc, acc),
        2 => kern_nn_f16_rx16::<2>(a, lda, k, panel, pstride, out, ldc, acc),
        3 => kern_nn_f16_rx16::<3>(a, lda, k, panel, pstride, out, ldc, acc),
        4 => kern_nn_f16_rx16::<4>(a, lda, k, panel, pstride, out, ldc, acc),
        5 => kern_nn_f16_rx16::<5>(a, lda, k, panel, pstride, out, ldc, acc),
        _ => unreachable!("row remainder must be 1..6"),
    }
}

// ---------------------------------------------------------------------------
// nt: A·Bᵀ as independent contiguous dot products
// ---------------------------------------------------------------------------

/// Fixed pairwise horizontal sum of a YMM: `(lo+hi)` 128-bit halves, then
/// two pairwise 128-bit steps. Every nt dot product reduces through this
/// exact tree, so grouping of rows/columns never changes a result.
#[target_feature(enable = "avx2")]
unsafe fn hsum(v: __m256) -> f32 {
    let lo = _mm256_castps256_ps128(v);
    let hi = _mm256_extractf128_ps::<1>(v);
    let q = _mm_add_ps(lo, hi);
    let h = _mm_add_ps(q, _mm_movehl_ps(q, q));
    _mm_cvtss_f32(_mm_add_ss(h, _mm_movehdup_ps(h)))
}

/// One dot product: FMA over 8-lane octets in ascending k, [`hsum`], then
/// a scalar mul-add tail — the canonical per-element fold of the AVX2 nt
/// path (full tiles replay this schedule per accumulator).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn dot_f32(a: *const f32, b: *const f32, k: usize) -> f32 {
    let k8 = k & !7usize;
    let mut acc = _mm256_setzero_ps();
    let mut kk = 0;
    while kk < k8 {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(kk)), _mm256_loadu_ps(b.add(kk)), acc);
        kk += 8;
    }
    let mut s = hsum(acc);
    for t in k8..k {
        s += *a.add(t) * *b.add(t);
    }
    s
}

/// Binary16-B variant of [`dot_f32`] (widens the B octets with F16C).
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
unsafe fn dot_f16(a: *const f32, b: *const u16, k: usize) -> f32 {
    let k8 = k & !7usize;
    let mut acc = _mm256_setzero_ps();
    let mut kk = 0;
    while kk < k8 {
        acc = _mm256_fmadd_ps(_mm256_loadu_ps(a.add(kk)), load_f16x8(b.add(kk)), acc);
        kk += 8;
    }
    let mut s = hsum(acc);
    for t in k8..k {
        s += *a.add(t) * f16_to_f32(*b.add(t));
    }
    s
}

/// AVX2 worker for a row range of `out (+)= a·bᵀ` (`b` row-major `n×k`).
#[allow(clippy::too_many_arguments)]
pub fn nt_rows(
    a: &Matrix,
    bsl: &[f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
) {
    debug_assert!(have_avx2_fma());
    // SAFETY: drivers dispatch here only after runtime AVX2+FMA detection.
    unsafe { nt_rows_impl(a, bsl, rows, k, n, chunk, acc) }
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn nt_rows_impl(
    a: &Matrix,
    bsl: &[f32],
    rows: Range<usize>,
    k: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
) {
    const TI: usize = 2;
    const TJ: usize = 4;
    let asl = a.as_slice();
    let mlocal = rows.len();
    let mut i = 0;
    while i < mlocal {
        let ih = TI.min(mlocal - i);
        let mut j = 0;
        while j < n {
            let jh = TJ.min(n - j);
            if ih == TI && jh == TJ {
                kern_nt_2x4(
                    asl.as_ptr().add((rows.start + i) * k),
                    bsl.as_ptr().add(j * k),
                    k,
                    chunk.as_mut_ptr().add(i * n + j),
                    n,
                    acc,
                );
            } else {
                for ii in 0..ih {
                    let ap = asl.as_ptr().add((rows.start + i + ii) * k);
                    for jj in 0..jh {
                        let d = dot_f32(ap, bsl.as_ptr().add((j + jj) * k), k);
                        let o = &mut chunk[(i + ii) * n + j + jj];
                        *o = if acc { *o + d } else { d };
                    }
                }
            }
            j += jh;
        }
        i += ih;
    }
}

/// 2×4 tile of dot products: 8 YMM accumulators, 6 loads / 8 FMAs per
/// octet. Each accumulator's fold is exactly [`dot_f32`]'s schedule.
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kern_nt_2x4(
    ap: *const f32,
    bp: *const f32,
    k: usize,
    op: *mut f32,
    ldc: usize,
    acc: bool,
) {
    let k8 = k & !7usize;
    let z = _mm256_setzero_ps();
    let (mut c00, mut c01, mut c02, mut c03) = (z, z, z, z);
    let (mut c10, mut c11, mut c12, mut c13) = (z, z, z, z);
    let a1 = ap.add(k);
    let (b0, b1, b2, b3) = (bp, bp.add(k), bp.add(2 * k), bp.add(3 * k));
    let mut kk = 0;
    while kk < k8 {
        let va0 = _mm256_loadu_ps(ap.add(kk));
        let va1 = _mm256_loadu_ps(a1.add(kk));
        let vb0 = _mm256_loadu_ps(b0.add(kk));
        let vb1 = _mm256_loadu_ps(b1.add(kk));
        let vb2 = _mm256_loadu_ps(b2.add(kk));
        let vb3 = _mm256_loadu_ps(b3.add(kk));
        c00 = _mm256_fmadd_ps(va0, vb0, c00);
        c01 = _mm256_fmadd_ps(va0, vb1, c01);
        c02 = _mm256_fmadd_ps(va0, vb2, c02);
        c03 = _mm256_fmadd_ps(va0, vb3, c03);
        c10 = _mm256_fmadd_ps(va1, vb0, c10);
        c11 = _mm256_fmadd_ps(va1, vb1, c11);
        c12 = _mm256_fmadd_ps(va1, vb2, c12);
        c13 = _mm256_fmadd_ps(va1, vb3, c13);
        kk += 8;
    }
    let mut s = [
        [hsum(c00), hsum(c01), hsum(c02), hsum(c03)],
        [hsum(c10), hsum(c11), hsum(c12), hsum(c13)],
    ];
    for t in k8..k {
        let (x0, x1) = (*ap.add(t), *a1.add(t));
        let (y0, y1, y2, y3) = (*b0.add(t), *b1.add(t), *b2.add(t), *b3.add(t));
        s[0][0] += x0 * y0;
        s[0][1] += x0 * y1;
        s[0][2] += x0 * y2;
        s[0][3] += x0 * y3;
        s[1][0] += x1 * y0;
        s[1][1] += x1 * y1;
        s[1][2] += x1 * y2;
        s[1][3] += x1 * y3;
    }
    for (ii, si) in s.iter().enumerate() {
        for (jj, &sv) in si.iter().enumerate() {
            let o = op.add(ii * ldc + jj);
            *o = if acc { *o + sv } else { sv };
        }
    }
}

/// [`nt_rows`] with `b` stored as binary16 bits (no pack, no decode pass —
/// the octets widen in-register).
#[allow(clippy::too_many_arguments)]
pub fn nt_rows_f16(
    a: &Matrix,
    bh: &[u16],
    rows: Range<usize>,
    k: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
) {
    debug_assert!(have_avx2_fma() && have_f16c());
    // SAFETY: drivers dispatch here only after runtime AVX2+FMA+F16C detection.
    unsafe { nt_rows_f16_impl(a, bh, rows, k, n, chunk, acc) }
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma", enable = "f16c")]
unsafe fn nt_rows_f16_impl(
    a: &Matrix,
    bh: &[u16],
    rows: Range<usize>,
    k: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
) {
    let asl = a.as_slice();
    let mlocal = rows.len();
    for i in 0..mlocal {
        let ap = asl.as_ptr().add((rows.start + i) * k);
        for j in 0..n {
            let d = dot_f16(ap, bh.as_ptr().add(j * k), k);
            let o = &mut chunk[i * n + j];
            *o = if acc { *o + d } else { d };
        }
    }
}

// ---------------------------------------------------------------------------
// tn: Aᵀ·B over a k-major packed A strip
// ---------------------------------------------------------------------------

/// AVX2 worker for a row range of `out (+)= aᵀ·b` (`a` is `r×m`, `b` is
/// `r×n`; `rows` are *output* rows = columns of `a`). `strip` is the
/// caller's per-thread pack scratch.
#[allow(clippy::too_many_arguments)]
pub fn tn_rows(
    asl: &[f32],
    bsl: &[f32],
    rows: Range<usize>,
    r: usize,
    m: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
    strip: &mut Vec<f32>,
) {
    debug_assert!(have_avx2_fma());
    // SAFETY: drivers dispatch here only after runtime AVX2+FMA detection.
    unsafe { tn_rows_impl(asl, bsl, rows, r, m, n, chunk, acc, strip) }
}

#[allow(clippy::too_many_arguments)]
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn tn_rows_impl(
    asl: &[f32],
    bsl: &[f32],
    rows: Range<usize>,
    r: usize,
    m: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
    strip: &mut Vec<f32>,
) {
    let mlocal = rows.len();
    let mut i = 0;
    while i < mlocal {
        let ih = TN_MR.min(mlocal - i);
        pack_a_strip(asl, m, r, rows.start + i, ih, strip);
        let mut j = 0;
        while j < n {
            let jh = TN_NR.min(n - j);
            if ih == TN_MR && jh == TN_NR {
                kern_tn_4x16(
                    strip.as_ptr(),
                    bsl.as_ptr().add(j),
                    r,
                    n,
                    chunk.as_mut_ptr().add(i * n + j),
                    n,
                    acc,
                );
            } else {
                for ii in 0..ih {
                    for jj in 0..jh {
                        let mut s = if acc { chunk[(i + ii) * n + j + jj] } else { 0.0 };
                        for kk in 0..r {
                            s = strip[kk * ih + ii].mul_add(bsl[kk * n + j + jj], s);
                        }
                        chunk[(i + ii) * n + j + jj] = s;
                    }
                }
            }
            j += jh;
        }
        i += ih;
    }
}

/// Full 4×16 tn tile: 8 YMM accumulators, B rows loaded unaligned at
/// stride `ldb`, A broadcast from the packed strip (stride [`TN_MR`]).
#[target_feature(enable = "avx2", enable = "fma")]
unsafe fn kern_tn_4x16(
    sp: *const f32,
    bp: *const f32,
    r: usize,
    ldb: usize,
    op: *mut f32,
    ldc: usize,
    acc: bool,
) {
    let (mut c00, mut c01, mut c10, mut c11, mut c20, mut c21, mut c30, mut c31);
    if acc {
        c00 = _mm256_loadu_ps(op);
        c01 = _mm256_loadu_ps(op.add(8));
        c10 = _mm256_loadu_ps(op.add(ldc));
        c11 = _mm256_loadu_ps(op.add(ldc + 8));
        c20 = _mm256_loadu_ps(op.add(2 * ldc));
        c21 = _mm256_loadu_ps(op.add(2 * ldc + 8));
        c30 = _mm256_loadu_ps(op.add(3 * ldc));
        c31 = _mm256_loadu_ps(op.add(3 * ldc + 8));
    } else {
        let z = _mm256_setzero_ps();
        c00 = z;
        c01 = z;
        c10 = z;
        c11 = z;
        c20 = z;
        c21 = z;
        c30 = z;
        c31 = z;
    }
    for kk in 0..r {
        let b0 = _mm256_loadu_ps(bp.add(kk * ldb));
        let b1 = _mm256_loadu_ps(bp.add(kk * ldb + 8));
        let a0 = _mm256_set1_ps(*sp.add(kk * TN_MR));
        c00 = _mm256_fmadd_ps(a0, b0, c00);
        c01 = _mm256_fmadd_ps(a0, b1, c01);
        let a1 = _mm256_set1_ps(*sp.add(kk * TN_MR + 1));
        c10 = _mm256_fmadd_ps(a1, b0, c10);
        c11 = _mm256_fmadd_ps(a1, b1, c11);
        let a2 = _mm256_set1_ps(*sp.add(kk * TN_MR + 2));
        c20 = _mm256_fmadd_ps(a2, b0, c20);
        c21 = _mm256_fmadd_ps(a2, b1, c21);
        let a3 = _mm256_set1_ps(*sp.add(kk * TN_MR + 3));
        c30 = _mm256_fmadd_ps(a3, b0, c30);
        c31 = _mm256_fmadd_ps(a3, b1, c31);
    }
    _mm256_storeu_ps(op, c00);
    _mm256_storeu_ps(op.add(8), c01);
    _mm256_storeu_ps(op.add(ldc), c10);
    _mm256_storeu_ps(op.add(ldc + 8), c11);
    _mm256_storeu_ps(op.add(2 * ldc), c20);
    _mm256_storeu_ps(op.add(2 * ldc + 8), c21);
    _mm256_storeu_ps(op.add(3 * ldc), c30);
    _mm256_storeu_ps(op.add(3 * ldc + 8), c31);
}
