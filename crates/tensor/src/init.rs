//! Deterministic parameter initialization.
//!
//! All functions take a caller-provided RNG; the training stack threads one
//! seeded `StdRng` through every component so runs are reproducible.

use crate::matrix::Matrix;
use crate::rng::{Distribution, Normal, Rng, Uniform};

/// Gaussian init with the given standard deviation (GPT-style, e.g. 0.02).
pub fn normal(rows: usize, cols: usize, std: f32, rng: &mut impl Rng) -> Matrix {
    let dist = Normal::new(0.0f32, std).expect("std must be finite and positive");
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

/// Xavier/Glorot uniform init: `U(±sqrt(6/(fan_in+fan_out)))`.
pub fn xavier_uniform(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let limit = (6.0 / (rows + cols) as f32).sqrt();
    let dist = Uniform::new_inclusive(-limit, limit);
    Matrix::from_fn(rows, cols, |_, _| dist.sample(rng))
}

/// Kaiming/He normal init for GELU/ReLU-style fan-in layers.
pub fn kaiming_normal(rows: usize, cols: usize, rng: &mut impl Rng) -> Matrix {
    let std = (2.0 / rows as f32).sqrt();
    normal(rows, cols, std, rng)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::StdRng;

    #[test]
    fn init_is_deterministic_for_same_seed() {
        let a = normal(8, 8, 0.02, &mut StdRng::seed_from_u64(7));
        let b = normal(8, 8, 0.02, &mut StdRng::seed_from_u64(7));
        assert_eq!(a, b);
    }

    #[test]
    fn xavier_respects_limit() {
        let m = xavier_uniform(20, 30, &mut StdRng::seed_from_u64(1));
        let limit = (6.0 / 50.0f32).sqrt();
        assert!(m.as_slice().iter().all(|v| v.abs() <= limit + 1e-6));
    }

    #[test]
    fn normal_std_is_approximately_right() {
        let m = normal(100, 100, 0.5, &mut StdRng::seed_from_u64(3));
        let mean: f32 = m.as_slice().iter().sum::<f32>() / m.len() as f32;
        let var: f32 =
            m.as_slice().iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / m.len() as f32;
        assert!(mean.abs() < 0.02, "mean {mean}");
        assert!((var.sqrt() - 0.5).abs() < 0.02, "std {}", var.sqrt());
    }
}
