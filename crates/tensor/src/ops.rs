//! Nonlinearities and normalization kernels with explicit backward passes.
//!
//! Each `*_backward` takes exactly the values its forward pass produced (no
//! hidden caches), so the model crate's layer objects decide what to retain.

use crate::matrix::Matrix;
use crate::pool::par_rows;

/// Row granularity for parallel elementwise/row-local ops: rows are cheap,
/// so only split when each participant gets a meaningful batch.
const MIN_ROWS_PER_SHARE: usize = 8;

/// Row-wise softmax. Numerically stabilized by subtracting the row max.
pub fn softmax_rows(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    softmax_rows_into(x, &mut out);
    out
}

/// `out = softmax_rows(x)`, reusing `out`'s allocation. Each row is
/// computed independently (row-local reductions only), so the result is
/// bit-identical for any worker count.
pub fn softmax_rows_into(x: &Matrix, out: &mut Matrix) {
    let (rows, cols) = (x.rows(), x.cols());
    out.resize_to(rows, cols);
    par_rows(rows, cols, MIN_ROWS_PER_SHARE, out.as_mut_slice(), |range, chunk| {
        for (local, r) in range.enumerate() {
            let row = &mut chunk[local * cols..(local + 1) * cols];
            row.copy_from_slice(x.row(r));
            let max = row.iter().cloned().fold(f32::NEG_INFINITY, f32::max);
            let mut sum = 0.0;
            for v in row.iter_mut() {
                *v = (*v - max).exp();
                sum += *v;
            }
            let inv = 1.0 / sum;
            for v in row.iter_mut() {
                *v *= inv;
            }
        }
    });
}

/// Backward of row softmax: `dx = y ⊙ (dy − (dy·y) 1ᵀ)` per row, where `y`
/// is the softmax output.
pub fn softmax_rows_backward(y: &Matrix, dy: &Matrix) -> Matrix {
    let mut dx = Matrix::zeros(0, 0);
    softmax_rows_backward_into(y, dy, &mut dx);
    dx
}

/// `dx = softmax_rows_backward(y, dy)`, reusing `dx`'s allocation.
pub fn softmax_rows_backward_into(y: &Matrix, dy: &Matrix, dx: &mut Matrix) {
    assert_eq!((y.rows(), y.cols()), (dy.rows(), dy.cols()), "softmax backward shape mismatch");
    let (rows, cols) = (y.rows(), y.cols());
    dx.resize_to(rows, cols);
    par_rows(rows, cols, MIN_ROWS_PER_SHARE, dx.as_mut_slice(), |range, chunk| {
        for (local, r) in range.enumerate() {
            let yr = y.row(r);
            let dyr = dy.row(r);
            let dot: f32 = yr.iter().zip(dyr).map(|(a, b)| a * b).sum();
            let dxr = &mut chunk[local * cols..(local + 1) * cols];
            for c in 0..cols {
                dxr[c] = yr[c] * (dyr[c] - dot);
            }
        }
    });
}

/// GELU activation (tanh approximation, as used by GPT-2/GPT-3).
pub fn gelu(x: &Matrix) -> Matrix {
    let mut out = Matrix::zeros(0, 0);
    gelu_into(x, &mut out);
    out
}

/// `out = gelu(x)`, reusing `out`'s allocation.
pub fn gelu_into(x: &Matrix, out: &mut Matrix) {
    let (rows, cols) = (x.rows(), x.cols());
    out.resize_to(rows, cols);
    par_rows(rows, cols, MIN_ROWS_PER_SHARE, out.as_mut_slice(), |range, chunk| {
        let src = &x.as_slice()[range.start * cols..range.end * cols];
        for (o, &v) in chunk.iter_mut().zip(src) {
            *o = gelu_scalar(v);
        }
    });
}

#[inline]
pub(crate) fn gelu_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6; // sqrt(2/pi)
    0.5 * x * (1.0 + (C * (x + 0.044715 * x * x * x)).tanh())
}

#[inline]
fn gelu_grad_scalar(x: f32) -> f32 {
    const C: f32 = 0.797_884_6;
    let x3 = x * x * x;
    let inner = C * (x + 0.044715 * x3);
    let t = inner.tanh();
    let sech2 = 1.0 - t * t;
    0.5 * (1.0 + t) + 0.5 * x * sech2 * C * (1.0 + 3.0 * 0.044715 * x * x)
}

/// Backward of GELU given the forward *input* `x`.
pub fn gelu_backward(x: &Matrix, dy: &Matrix) -> Matrix {
    let mut dx = Matrix::zeros(0, 0);
    gelu_backward_into(x, dy, &mut dx);
    dx
}

/// `dx = gelu'(x) ⊙ dy`, reusing `dx`'s allocation.
pub fn gelu_backward_into(x: &Matrix, dy: &Matrix, dx: &mut Matrix) {
    assert_eq!((x.rows(), x.cols()), (dy.rows(), dy.cols()), "gelu backward shape mismatch");
    let (rows, cols) = (x.rows(), x.cols());
    dx.resize_to(rows, cols);
    par_rows(rows, cols, MIN_ROWS_PER_SHARE, dx.as_mut_slice(), |range, chunk| {
        let xs = &x.as_slice()[range.start * cols..range.end * cols];
        let dys = &dy.as_slice()[range.start * cols..range.end * cols];
        for ((o, &xv), &dyv) in chunk.iter_mut().zip(xs).zip(dys) {
            *o = dyv * gelu_grad_scalar(xv);
        }
    });
}

/// Fused linear layer: `out = x·w + bias` with the bias applied in the
/// GEMM epilogue (bit-identical to `matmul` + `add_bias`).
pub fn linear_into(x: &Matrix, w: &Matrix, bias: &Matrix, out: &mut Matrix) {
    x.matmul_bias_into(w, bias, out);
}

/// Fused FFN first half: `pre = x·w + bias`, `act = gelu(pre)`, with the
/// activation applied per completed row range inside the GEMM's parallel
/// region (bit-identical to the unfused sequence).
pub fn linear_gelu_into(x: &Matrix, w: &Matrix, bias: &Matrix, pre: &mut Matrix, act: &mut Matrix) {
    crate::kernels::gemm_nn_bias_gelu(x, w, bias, pre, act);
}

/// Cached statistics from a LayerNorm forward pass, needed by its backward.
#[derive(Clone, Debug)]
pub struct LayerNormCache {
    /// Normalized input `(x - mean) / std`, one row per token.
    pub xhat: Matrix,
    /// Per-row inverse standard deviation.
    pub inv_std: Vec<f32>,
}

/// LayerNorm over the last dimension with learned `gamma`/`beta`
/// (`1 × cols` row vectors). Returns the output and a cache for backward.
pub fn layernorm(x: &Matrix, gamma: &Matrix, beta: &Matrix, eps: f32) -> (Matrix, LayerNormCache) {
    assert_eq!(gamma.cols(), x.cols(), "gamma width mismatch");
    assert_eq!(beta.cols(), x.cols(), "beta width mismatch");
    let n = x.cols();
    let mut out = Matrix::zeros(x.rows(), n);
    let mut xhat = Matrix::zeros(x.rows(), n);
    let mut inv_std = Vec::with_capacity(x.rows());
    for r in 0..x.rows() {
        let row = x.row(r);
        let mean = row.iter().sum::<f32>() / n as f32;
        let var = row.iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / n as f32;
        let istd = 1.0 / (var + eps).sqrt();
        inv_std.push(istd);
        let xh = xhat.row_mut(r);
        let o = out.row_mut(r);
        for c in 0..n {
            let h = (row[c] - mean) * istd;
            xh[c] = h;
            o[c] = h * gamma[(0, c)] + beta[(0, c)];
        }
    }
    (out, LayerNormCache { xhat, inv_std })
}

/// Backward of [`layernorm`]. Returns `(dx, dgamma, dbeta)`.
pub fn layernorm_backward(
    dy: &Matrix,
    gamma: &Matrix,
    cache: &LayerNormCache,
) -> (Matrix, Matrix, Matrix) {
    let n = dy.cols();
    let nf = n as f32;
    let mut dx = Matrix::zeros(dy.rows(), n);
    let mut dgamma = Matrix::zeros(1, n);
    let mut dbeta = Matrix::zeros(1, n);
    for r in 0..dy.rows() {
        let dyr = dy.row(r);
        let xh = cache.xhat.row(r);
        let istd = cache.inv_std[r];
        // dxhat = dy * gamma
        let mut sum_dxhat = 0.0f32;
        let mut sum_dxhat_xhat = 0.0f32;
        for c in 0..n {
            let dxh = dyr[c] * gamma[(0, c)];
            sum_dxhat += dxh;
            sum_dxhat_xhat += dxh * xh[c];
            dgamma[(0, c)] += dyr[c] * xh[c];
            dbeta[(0, c)] += dyr[c];
        }
        let dxr = dx.row_mut(r);
        for c in 0..n {
            let dxh = dyr[c] * gamma[(0, c)];
            dxr[c] = istd * (dxh - sum_dxhat / nf - xh[c] * sum_dxhat_xhat / nf);
        }
    }
    (dx, dgamma, dbeta)
}

/// Mean cross-entropy loss over rows of `logits` against integer `targets`,
/// with the gradient w.r.t. the logits (already divided by the row count).
///
/// Rows whose target is `usize::MAX` are masked out (used for padding).
pub fn cross_entropy(logits: &Matrix, targets: &[usize]) -> (f32, Matrix) {
    assert_eq!(logits.rows(), targets.len(), "one target per logits row");
    let probs = softmax_rows(logits);
    let mut grad = probs.clone();
    let mut loss = 0.0f64;
    let mut counted = 0usize;
    for (r, &t) in targets.iter().enumerate() {
        if t == usize::MAX {
            grad.row_mut(r).iter_mut().for_each(|v| *v = 0.0);
            continue;
        }
        assert!(t < logits.cols(), "target {t} out of vocab {}", logits.cols());
        loss -= (probs[(r, t)].max(1e-12) as f64).ln();
        grad[(r, t)] -= 1.0;
        counted += 1;
    }
    let denom = counted.max(1) as f32;
    grad.scale(1.0 / denom);
    ((loss / counted.max(1) as f64) as f32, grad)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::gradcheck::numerical_grad;

    #[test]
    fn softmax_rows_sum_to_one() {
        let x = Matrix::from_fn(4, 6, |r, c| (r as f32 - c as f32) * 0.7);
        let y = softmax_rows(&x);
        for r in 0..4 {
            let s: f32 = y.row(r).iter().sum();
            assert!((s - 1.0).abs() < 1e-5, "row {r} sums to {s}");
        }
    }

    #[test]
    fn softmax_is_shift_invariant() {
        let x = Matrix::from_fn(2, 5, |r, c| (r + c) as f32 * 0.3);
        let mut shifted = x.clone();
        for v in shifted.as_mut_slice() {
            *v += 100.0;
        }
        assert!(softmax_rows(&x).max_abs_diff(&softmax_rows(&shifted)) < 1e-5);
    }

    #[test]
    fn softmax_backward_matches_numeric() {
        let x = Matrix::from_fn(3, 4, |r, c| ((r * 4 + c) as f32).sin());
        let dy = Matrix::from_fn(3, 4, |r, c| ((r + 2 * c) as f32).cos());
        let analytic = {
            let y = softmax_rows(&x);
            softmax_rows_backward(&y, &dy)
        };
        let numeric = numerical_grad(&x, &dy, softmax_rows);
        assert!(analytic.max_abs_diff(&numeric) < 1e-2);
    }

    #[test]
    fn gelu_backward_matches_numeric() {
        let x = Matrix::from_fn(2, 8, |r, c| (r as f32 - 1.0) + c as f32 * 0.3 - 1.0);
        let dy = Matrix::from_fn(2, 8, |_, c| 1.0 + c as f32 * 0.1);
        let analytic = gelu_backward(&x, &dy);
        let numeric = numerical_grad(&x, &dy, gelu);
        assert!(analytic.max_abs_diff(&numeric) < 1e-2);
    }

    #[test]
    fn layernorm_output_is_normalized_when_identity_affine() {
        let x = Matrix::from_fn(3, 16, |r, c| (r as f32 + 1.0) * ((c as f32 * 0.7).sin() + 0.2));
        let gamma = Matrix::from_vec(1, 16, vec![1.0; 16]);
        let beta = Matrix::zeros(1, 16);
        let (y, _) = layernorm(&x, &gamma, &beta, 1e-5);
        for r in 0..3 {
            let mean: f32 = y.row(r).iter().sum::<f32>() / 16.0;
            let var: f32 = y.row(r).iter().map(|v| (v - mean) * (v - mean)).sum::<f32>() / 16.0;
            assert!(mean.abs() < 1e-4);
            assert!((var - 1.0).abs() < 1e-2);
        }
    }

    #[test]
    fn layernorm_backward_matches_numeric() {
        let x = Matrix::from_fn(2, 6, |r, c| ((r * 6 + c) as f32 * 0.37).sin());
        let gamma = Matrix::from_fn(1, 6, |_, c| 1.0 + 0.1 * c as f32);
        let beta = Matrix::from_fn(1, 6, |_, c| 0.05 * c as f32);
        let dy = Matrix::from_fn(2, 6, |r, c| ((r + c) as f32).cos());

        let (_, cache) = layernorm(&x, &gamma, &beta, 1e-5);
        let (dx, dgamma, dbeta) = layernorm_backward(&dy, &gamma, &cache);

        let ndx = numerical_grad(&x, &dy, |m| layernorm(m, &gamma, &beta, 1e-5).0);
        assert!(dx.max_abs_diff(&ndx) < 1e-2, "dx diff {}", dx.max_abs_diff(&ndx));

        let ndgamma = numerical_grad(&gamma, &dy, |g| layernorm(&x, g, &beta, 1e-5).0);
        assert!(dgamma.max_abs_diff(&ndgamma) < 1e-2);

        let ndbeta = numerical_grad(&beta, &dy, |b| layernorm(&x, &gamma, b, 1e-5).0);
        assert!(dbeta.max_abs_diff(&ndbeta) < 1e-2);
    }

    #[test]
    fn cross_entropy_perfect_prediction_is_near_zero() {
        let mut logits = Matrix::zeros(2, 3);
        logits[(0, 1)] = 50.0;
        logits[(1, 2)] = 50.0;
        let (loss, _) = cross_entropy(&logits, &[1, 2]);
        assert!(loss < 1e-4);
    }

    #[test]
    fn cross_entropy_uniform_is_log_vocab() {
        let logits = Matrix::zeros(4, 8);
        let (loss, _) = cross_entropy(&logits, &[0, 1, 2, 3]);
        assert!((loss - (8.0f32).ln()).abs() < 1e-4);
    }

    #[test]
    fn cross_entropy_grad_matches_numeric() {
        let logits = Matrix::from_fn(3, 5, |r, c| ((r * 5 + c) as f32 * 0.21).sin());
        let targets = [2usize, 0, 4];
        let (_, grad) = cross_entropy(&logits, &targets);

        let mut numeric = Matrix::zeros(3, 5);
        let eps = 1e-3;
        let mut probe = logits.clone();
        for i in 0..probe.len() {
            let orig = probe.as_slice()[i];
            probe.as_mut_slice()[i] = orig + eps;
            let (lp, _) = cross_entropy(&probe, &targets);
            probe.as_mut_slice()[i] = orig - eps;
            let (lm, _) = cross_entropy(&probe, &targets);
            probe.as_mut_slice()[i] = orig;
            numeric.as_mut_slice()[i] = (lp - lm) / (2.0 * eps);
        }
        assert!(grad.max_abs_diff(&numeric) < 1e-2);
    }

    #[test]
    fn cross_entropy_masks_padding() {
        let logits = Matrix::from_fn(2, 4, |r, c| (r + c) as f32);
        let (loss_all, _) = cross_entropy(&logits, &[1, usize::MAX]);
        let first_only = logits.gather_rows(&[0]);
        let (loss_first, _) = cross_entropy(&first_only, &[1]);
        assert!((loss_all - loss_first).abs() < 1e-6);
    }
}
