//! Row-major dense `f32` matrix with the matmul layouts needed by manual
//! backpropagation.
//!
//! Forward passes need `A·B`; backward passes need `A·Bᵀ` (input gradients)
//! and `Aᵀ·B` (parameter gradients). Implementing all three directly avoids
//! materializing transposes in the hot loop.

use std::fmt;
use std::ops::{Index, IndexMut};

/// A dense, row-major `f32` matrix.
///
/// ```
/// use symi_tensor::Matrix;
///
/// let a = Matrix::from_vec(2, 2, vec![1.0, 2.0, 3.0, 4.0]);
/// let b = Matrix::from_vec(2, 2, vec![1.0, 0.0, 0.0, 1.0]);
/// assert_eq!(a.matmul(&b), a);                       // identity
/// assert_eq!(a.matmul_nt(&b), a);                    // A · Iᵀ
/// assert_eq!(a.transpose()[(0, 1)], a[(1, 0)]);
/// ```
#[derive(Clone, PartialEq)]
pub struct Matrix {
    rows: usize,
    cols: usize,
    data: Vec<f32>,
}

impl fmt::Debug for Matrix {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "Matrix({}x{})", self.rows, self.cols)?;
        if self.rows * self.cols <= 64 {
            write!(f, " {:?}", self.data)?;
        }
        Ok(())
    }
}

impl Matrix {
    /// A `rows × cols` matrix of zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0.0; rows * cols] }
    }

    /// Builds a matrix from a flat row-major buffer.
    ///
    /// # Panics
    /// Panics if `data.len() != rows * cols`.
    pub fn from_vec(rows: usize, cols: usize, data: Vec<f32>) -> Self {
        assert_eq!(data.len(), rows * cols, "buffer length {} != {rows}x{cols}", data.len());
        Self { rows, cols, data }
    }

    /// Builds a matrix by evaluating `f(row, col)` at every position.
    pub fn from_fn(rows: usize, cols: usize, mut f: impl FnMut(usize, usize) -> f32) -> Self {
        let mut data = Vec::with_capacity(rows * cols);
        for r in 0..rows {
            for c in 0..cols {
                data.push(f(r, c));
            }
        }
        Self { rows, cols, data }
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    /// Total number of elements.
    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    pub fn as_slice(&self) -> &[f32] {
        &self.data
    }

    pub fn as_mut_slice(&mut self) -> &mut [f32] {
        &mut self.data
    }

    pub fn into_vec(self) -> Vec<f32> {
        self.data
    }

    /// Borrow of row `r` as a slice.
    pub fn row(&self, r: usize) -> &[f32] {
        debug_assert!(r < self.rows);
        &self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Mutable borrow of row `r`.
    pub fn row_mut(&mut self, r: usize) -> &mut [f32] {
        debug_assert!(r < self.rows);
        &mut self.data[r * self.cols..(r + 1) * self.cols]
    }

    /// Copies row `src` of `other` into row `dst` of `self`.
    ///
    /// # Panics
    /// Panics if column counts differ.
    pub fn copy_row_from(&mut self, dst: usize, other: &Matrix, src: usize) {
        assert_eq!(self.cols, other.cols, "column mismatch in copy_row_from");
        self.row_mut(dst).copy_from_slice(other.row(src));
    }

    /// Adds row `src` of `other` (scaled by `alpha`) into row `dst` of `self`.
    pub fn axpy_row_from(&mut self, dst: usize, alpha: f32, other: &Matrix, src: usize) {
        assert_eq!(self.cols, other.cols, "column mismatch in axpy_row_from");
        let d = dst * self.cols;
        let s = src * other.cols;
        for c in 0..self.cols {
            self.data[d + c] += alpha * other.data[s + c];
        }
    }

    /// Reshapes the matrix to `rows × cols`, reusing the existing
    /// allocation when capacity suffices. Contents are unspecified until
    /// overwritten (the blocked kernels are pure stores for their `!acc`
    /// paths, so pre-zeroing would be wasted work).
    pub fn resize_to(&mut self, rows: usize, cols: usize) {
        self.rows = rows;
        self.cols = cols;
        self.data.resize(rows * cols, 0.0);
    }

    /// Makes `self` an exact copy of `other`, reusing the allocation.
    pub fn copy_from(&mut self, other: &Matrix) {
        self.resize_to(other.rows, other.cols);
        self.data.copy_from_slice(&other.data);
    }

    /// `self · other` — the forward-pass layout
    /// (blocked/register-tiled, see [`crate::kernels`]).
    pub fn matmul(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_into(other, &mut out);
        out
    }

    /// `out = self · other`, reusing `out`'s allocation.
    pub fn matmul_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::gemm_nn(self, other, out, false, None);
    }

    /// `out = self · other + bias` with the bias fused into the kernel
    /// epilogue (bit-identical to `matmul_into` followed by `add_bias`).
    pub fn matmul_bias_into(&self, other: &Matrix, bias: &Matrix, out: &mut Matrix) {
        crate::kernels::gemm_nn(self, other, out, false, Some(bias));
    }

    /// `out += self · other` (accumulating variant; `out` keeps its shape).
    pub fn matmul_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (self.rows, other.cols), "matmul_acc shape mismatch");
        crate::kernels::gemm_nn(self, other, out, true, None);
    }

    /// `self · otherᵀ` — used for input gradients (`dX = dY · Wᵀ`) and
    /// attention scores (`Q · Kᵀ`).
    pub fn matmul_nt(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_nt_into(other, &mut out);
        out
    }

    /// `out = self · otherᵀ`, reusing `out`'s allocation.
    pub fn matmul_nt_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::gemm_nt(self, other, out, false);
    }

    /// `out += self · otherᵀ`.
    pub fn matmul_nt_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (self.rows, other.rows), "matmul_nt_acc shape mismatch");
        crate::kernels::gemm_nt(self, other, out, true);
    }

    /// `selfᵀ · other` — used for parameter gradients (`dW = Xᵀ · dY`).
    pub fn matmul_tn(&self, other: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.matmul_tn_into(other, &mut out);
        out
    }

    /// `out = selfᵀ · other`, reusing `out`'s allocation.
    pub fn matmul_tn_into(&self, other: &Matrix, out: &mut Matrix) {
        crate::kernels::gemm_tn(self, other, out, false);
    }

    /// `out += selfᵀ · other`.
    pub fn matmul_tn_acc(&self, other: &Matrix, out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (self.cols, other.cols), "matmul_tn_acc shape mismatch");
        crate::kernels::gemm_tn(self, other, out, true);
    }

    /// `out = self · w` with `w` stored as binary16 (f32 accumulation; the
    /// weight panels stream at 2 B/element — see `kernels::gemm_nn_f16`).
    pub fn matmul_f16_into(&self, w: &crate::half::HalfMatrix, out: &mut Matrix) {
        crate::kernels::gemm_nn_f16(self, w, out, false, None);
    }

    /// `out = self · w + bias` with `w` stored as binary16.
    pub fn matmul_f16_bias_into(
        &self,
        w: &crate::half::HalfMatrix,
        bias: &Matrix,
        out: &mut Matrix,
    ) {
        crate::kernels::gemm_nn_f16(self, w, out, false, Some(bias));
    }

    /// `out = self · wᵀ` with `w` stored as binary16 — the input-gradient
    /// GEMM (`dX = dY · Wᵀ`) against half-precision weights.
    pub fn matmul_nt_f16_into(&self, w: &crate::half::HalfMatrix, out: &mut Matrix) {
        crate::kernels::gemm_nt_f16(self, w, out, false);
    }

    /// Materialized transpose.
    pub fn transpose(&self) -> Matrix {
        let mut out = Matrix::zeros(self.cols, self.rows);
        for r in 0..self.rows {
            for c in 0..self.cols {
                out.data[c * self.rows + r] = self.data[r * self.cols + c];
            }
        }
        out
    }

    /// Element-wise sum; shapes must match.
    pub fn add(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "add shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a + b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// In-place `self += alpha * other`.
    pub fn axpy(&mut self, alpha: f32, other: &Matrix) {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "axpy shape mismatch");
        for (a, b) in self.data.iter_mut().zip(&other.data) {
            *a += alpha * b;
        }
    }

    /// In-place multiply by a scalar.
    pub fn scale(&mut self, alpha: f32) {
        for v in &mut self.data {
            *v *= alpha;
        }
    }

    /// Adds a row-vector bias (`1 × cols`) to every row.
    pub fn add_bias(&mut self, bias: &Matrix) {
        assert_eq!(bias.rows, 1, "bias must be a row vector");
        assert_eq!(bias.cols, self.cols, "bias width mismatch");
        for r in 0..self.rows {
            let row = &mut self.data[r * self.cols..(r + 1) * self.cols];
            for (v, b) in row.iter_mut().zip(&bias.data) {
                *v += b;
            }
        }
    }

    /// Column-wise sum collapsed to a `1 × cols` row vector (bias gradient).
    pub fn sum_rows(&self) -> Matrix {
        let mut out = Matrix::zeros(1, self.cols);
        self.sum_rows_into(&mut out);
        out
    }

    /// `out = column-wise sum of self` (`1 × cols`), reusing `out`.
    ///
    /// Deliberately sequential: this is a cross-row reduction, and the
    /// determinism contract forbids splitting reductions across pool
    /// participants. It is O(rows·cols) against the GEMMs' O(rows·cols·k).
    pub fn sum_rows_into(&self, out: &mut Matrix) {
        out.resize_to(1, self.cols);
        out.fill_zero();
        self.sum_rows_acc(out);
    }

    /// `out += column-wise sum of self` (bias-gradient accumulation).
    pub fn sum_rows_acc(&self, out: &mut Matrix) {
        assert_eq!((out.rows, out.cols), (1, self.cols), "sum_rows_acc shape mismatch");
        for r in 0..self.rows {
            for (o, v) in out.data.iter_mut().zip(self.row(r)) {
                *o += v;
            }
        }
    }

    /// Element-wise (Hadamard) product.
    pub fn hadamard(&self, other: &Matrix) -> Matrix {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "hadamard shape mismatch");
        let data = self.data.iter().zip(&other.data).map(|(a, b)| a * b).collect();
        Matrix { rows: self.rows, cols: self.cols, data }
    }

    /// Fills the matrix with zeros, keeping the allocation.
    pub fn fill_zero(&mut self) {
        self.data.iter_mut().for_each(|v| *v = 0.0);
    }

    /// Frobenius norm.
    pub fn frobenius_norm(&self) -> f32 {
        self.data.iter().map(|v| v * v).sum::<f32>().sqrt()
    }

    /// Maximum absolute difference to `other`; shapes must match.
    pub fn max_abs_diff(&self, other: &Matrix) -> f32 {
        assert_eq!((self.rows, self.cols), (other.rows, other.cols), "shape mismatch");
        self.data.iter().zip(&other.data).map(|(a, b)| (a - b).abs()).fold(0.0, f32::max)
    }

    /// Selects the given rows into a new matrix (gather).
    pub fn gather_rows(&self, indices: &[usize]) -> Matrix {
        let mut out = Matrix::zeros(0, 0);
        self.gather_rows_into(indices, &mut out);
        out
    }

    /// Gather into a reusable buffer: `out.row(i) = self.row(indices[i])`.
    pub fn gather_rows_into(&self, indices: &[usize], out: &mut Matrix) {
        out.resize_to(indices.len(), self.cols);
        for (dst, &src) in indices.iter().enumerate() {
            out.copy_row_from(dst, self, src);
        }
    }
}

impl Index<(usize, usize)> for Matrix {
    type Output = f32;
    fn index(&self, (r, c): (usize, usize)) -> &f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &self.data[r * self.cols + c]
    }
}

impl IndexMut<(usize, usize)> for Matrix {
    fn index_mut(&mut self, (r, c): (usize, usize)) -> &mut f32 {
        debug_assert!(r < self.rows && c < self.cols);
        &mut self.data[r * self.cols + c]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn naive_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut acc = 0.0;
                for k in 0..a.cols() {
                    acc += a[(i, k)] * b[(k, j)];
                }
                out[(i, j)] = acc;
            }
        }
        out
    }

    #[test]
    fn matmul_matches_naive() {
        let a = Matrix::from_fn(3, 4, |r, c| (r * 4 + c) as f32 * 0.3 - 1.0);
        let b = Matrix::from_fn(4, 5, |r, c| (r as f32 - c as f32) * 0.1);
        assert!(a.matmul(&b).max_abs_diff(&naive_matmul(&a, &b)) < 1e-5);
    }

    #[test]
    fn matmul_nt_is_matmul_with_transpose() {
        let a = Matrix::from_fn(3, 4, |r, c| (r + c) as f32 * 0.25);
        let b = Matrix::from_fn(5, 4, |r, c| (r as f32 * 0.5 - c as f32 * 0.2).sin());
        assert!(a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose())) < 1e-5);
    }

    #[test]
    fn matmul_tn_is_transpose_matmul() {
        let a = Matrix::from_fn(4, 3, |r, c| (r * c) as f32 * 0.1 + 0.5);
        let b = Matrix::from_fn(4, 5, |r, c| r as f32 - 0.3 * c as f32);
        assert!(a.matmul_tn(&b).max_abs_diff(&a.transpose().matmul(&b)) < 1e-5);
    }

    #[test]
    fn transpose_is_involution() {
        let a = Matrix::from_fn(3, 7, |r, c| (r * 7 + c) as f32);
        assert_eq!(a.transpose().transpose(), a);
    }

    #[test]
    fn bias_and_sum_rows_round_trip() {
        let mut x = Matrix::zeros(4, 3);
        let bias = Matrix::from_vec(1, 3, vec![1.0, -2.0, 0.5]);
        x.add_bias(&bias);
        let summed = x.sum_rows();
        assert_eq!(summed.as_slice(), &[4.0, -8.0, 2.0]);
    }

    #[test]
    fn gather_rows_selects() {
        let a = Matrix::from_fn(4, 2, |r, c| (r * 2 + c) as f32);
        let g = a.gather_rows(&[3, 1]);
        assert_eq!(g.as_slice(), &[6.0, 7.0, 2.0, 3.0]);
    }

    #[test]
    fn axpy_accumulates() {
        let mut a = Matrix::from_vec(1, 3, vec![1.0, 2.0, 3.0]);
        let b = Matrix::from_vec(1, 3, vec![10.0, 10.0, 10.0]);
        a.axpy(0.5, &b);
        assert_eq!(a.as_slice(), &[6.0, 7.0, 8.0]);
    }

    #[test]
    #[should_panic(expected = "matmul shape mismatch")]
    fn matmul_shape_mismatch_panics() {
        let a = Matrix::zeros(2, 3);
        let b = Matrix::zeros(4, 2);
        let _ = a.matmul(&b);
    }
}
