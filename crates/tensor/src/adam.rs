//! Adam optimizer with sharding support and mixed-precision semantics.
//!
//! SYMI's whole design revolves around *where optimizer state lives*: each
//! expert's Adam state (fp32 master weights + first/second moments, 16 B per
//! parameter with fp32 gradients counted) is statically sharded across nodes,
//! while the working fp16 weights (2 B/param) move freely. [`AdamShard`]
//! models exactly one contiguous shard of one parameter group: it consumes a
//! gradient shard and emits an updated fp16-quantized weight shard, which is
//! the unit of communication in both the paper's *Grad Communication Phase*
//! and *Weight Communication Phase*.

/// Adam hyperparameters.
#[derive(Clone, Copy, Debug)]
pub struct AdamConfig {
    pub lr: f32,
    pub beta1: f32,
    pub beta2: f32,
    pub eps: f32,
    pub weight_decay: f32,
}

impl Default for AdamConfig {
    fn default() -> Self {
        Self { lr: 1e-3, beta1: 0.9, beta2: 0.999, eps: 1e-8, weight_decay: 0.0 }
    }
}

/// Full (unsharded) Adam state over a flat parameter vector. Used for the
/// dense (non-expert) parameters and as the reference implementation the
/// sharded path is tested against.
#[derive(Clone, Debug)]
pub struct AdamState {
    cfg: AdamConfig,
    /// fp32 master copy of the parameters.
    master: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl AdamState {
    /// Initializes master state from the current working weights.
    pub fn new(cfg: AdamConfig, params: &[f32]) -> Self {
        Self {
            cfg,
            master: params.to_vec(),
            m: vec![0.0; params.len()],
            v: vec![0.0; params.len()],
            t: 0,
        }
    }

    pub fn len(&self) -> usize {
        self.master.len()
    }

    pub fn is_empty(&self) -> bool {
        self.master.is_empty()
    }

    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// One Adam step. Writes fp16-quantized updated weights into `params_out`.
    ///
    /// # Panics
    /// Panics if slice lengths disagree with the state length.
    pub fn step(&mut self, grads: &[f32], params_out: &mut [f32]) {
        assert_eq!(grads.len(), self.master.len(), "gradient length mismatch");
        assert_eq!(params_out.len(), self.master.len(), "param length mismatch");
        self.t += 1;
        step_kernel(
            &self.cfg,
            self.t,
            &mut self.master,
            &mut self.m,
            &mut self.v,
            grads,
            params_out,
        );
    }

    /// fp32 master weights (what the optimizer believes the model is).
    pub fn master_weights(&self) -> &[f32] {
        &self.master
    }

    /// First and second moment vectors (aligned with
    /// [`AdamState::master_weights`]) — the checkpoint payload.
    pub fn moments(&self) -> (&[f32], &[f32]) {
        (&self.m, &self.v)
    }

    /// The hyperparameters this state steps with.
    pub fn config(&self) -> AdamConfig {
        self.cfg
    }

    /// Rebuilds a state from explicit parts — the checkpoint restore path.
    ///
    /// # Panics
    /// Panics if the moment vectors disagree with the master length.
    pub fn from_parts(cfg: AdamConfig, master: Vec<f32>, m: Vec<f32>, v: Vec<f32>, t: u64) -> Self {
        assert_eq!(m.len(), master.len(), "first-moment length mismatch");
        assert_eq!(v.len(), master.len(), "second-moment length mismatch");
        Self { cfg, master, m, v, t }
    }
}

/// One contiguous shard of Adam state for one parameter group.
///
/// A shard owns parameters `[offset, offset + len)` of the group's flat
/// parameter vector. SYMI constructs `N` of these per expert (one per node);
/// the static baseline constructs `r` per expert (one per EDP replica rank).
#[derive(Clone, Debug)]
pub struct AdamShard {
    cfg: AdamConfig,
    offset: usize,
    master: Vec<f32>,
    m: Vec<f32>,
    v: Vec<f32>,
    t: u64,
}

impl AdamShard {
    /// Creates a shard covering `params[offset..offset+len]` of the group.
    pub fn new(cfg: AdamConfig, offset: usize, shard_params: &[f32]) -> Self {
        Self {
            cfg,
            offset,
            master: shard_params.to_vec(),
            m: vec![0.0; shard_params.len()],
            v: vec![0.0; shard_params.len()],
            t: 0,
        }
    }

    /// Rebuilds a shard from explicit state — the elastic re-shard path,
    /// where a survivor assembles its new slice from kept state, peer
    /// transfers, and reseeded segments.
    ///
    /// # Panics
    /// Panics if the moment vectors disagree with the master length.
    pub fn from_parts(
        cfg: AdamConfig,
        offset: usize,
        master: Vec<f32>,
        m: Vec<f32>,
        v: Vec<f32>,
        t: u64,
    ) -> Self {
        assert_eq!(m.len(), master.len(), "first-moment length mismatch");
        assert_eq!(v.len(), master.len(), "second-moment length mismatch");
        Self { cfg, offset, master, m, v, t }
    }

    /// Start of this shard within the parameter group.
    pub fn offset(&self) -> usize {
        self.offset
    }

    /// First and second moment vectors (aligned with
    /// [`AdamShard::master_weights`]).
    pub fn moments(&self) -> (&[f32], &[f32]) {
        (&self.m, &self.v)
    }

    pub fn len(&self) -> usize {
        self.master.len()
    }

    pub fn is_empty(&self) -> bool {
        self.master.is_empty()
    }

    pub fn step_count(&self) -> u64 {
        self.t
    }

    /// One Adam step over this shard: consumes the matching gradient shard,
    /// returns the updated fp16-quantized weight shard.
    pub fn step(&mut self, grad_shard: &[f32]) -> Vec<f32> {
        let mut out = vec![0.0f32; self.master.len()];
        self.step_into(grad_shard, &mut out);
        out
    }

    /// [`AdamShard::step`] into a caller-provided buffer (resized to the
    /// shard length), so the steady-state loop reuses its allocation.
    pub fn step_into(&mut self, grad_shard: &[f32], out: &mut Vec<f32>) {
        assert_eq!(grad_shard.len(), self.master.len(), "gradient shard length mismatch");
        self.t += 1;
        out.resize(self.master.len(), 0.0);
        step_kernel(&self.cfg, self.t, &mut self.master, &mut self.m, &mut self.v, grad_shard, out);
    }

    /// fp32 master weights of this shard.
    pub fn master_weights(&self) -> &[f32] {
        &self.master
    }

    /// Serializes the mutable optimizer state as `[master | m | v]` — what
    /// a *coupled* system (FlexMoE-style) must physically move when an
    /// expert is re-placed. SYMI never calls this on the rebalance path.
    pub fn export_state(&self) -> Vec<f32> {
        let mut out = Vec::with_capacity(3 * self.master.len());
        out.extend_from_slice(&self.master);
        out.extend_from_slice(&self.m);
        out.extend_from_slice(&self.v);
        out
    }

    /// Restores state exported by [`AdamShard::export_state`]; the step
    /// counter is carried in `t`.
    pub fn import_state(&mut self, state: &[f32], t: u64) {
        let len = self.master.len();
        assert_eq!(state.len(), 3 * len, "state blob length mismatch");
        self.master.copy_from_slice(&state[..len]);
        self.m.copy_from_slice(&state[len..2 * len]);
        self.v.copy_from_slice(&state[2 * len..]);
        self.t = t;
    }

    /// Optimizer-state bytes this shard occupies under the paper's
    /// accounting (16 B per parameter: fp32 master weight, fp32 m, fp32 v,
    /// fp32 gradient staging).
    pub fn state_bytes(&self) -> u64 {
        self.master.len() as u64 * 16
    }
}

/// Per-element Adam update on one chunk; the math is purely elementwise,
/// so chunking it across the pool cannot change any result bit.
#[allow(clippy::too_many_arguments)]
fn step_chunk(
    cfg: &AdamConfig,
    bc1: f32,
    bc2: f32,
    master: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grads: &[f32],
    params_out: &mut [f32],
) {
    for i in 0..master.len() {
        let g = grads[i] + cfg.weight_decay * master[i];
        m[i] = cfg.beta1 * m[i] + (1.0 - cfg.beta1) * g;
        v[i] = cfg.beta2 * v[i] + (1.0 - cfg.beta2) * g * g;
        let mhat = m[i] / bc1;
        let vhat = v[i] / bc2;
        master[i] -= cfg.lr * mhat / (vhat.sqrt() + cfg.eps);
        params_out[i] = quantize_f16(master[i]);
    }
}

/// Elements below which the Adam step is not worth splitting across shares.
const MIN_ADAM_ELEMS_PER_SHARE: usize = 4096;

fn step_kernel(
    cfg: &AdamConfig,
    t: u64,
    master: &mut [f32],
    m: &mut [f32],
    v: &mut [f32],
    grads: &[f32],
    params_out: &mut [f32],
) {
    use crate::pool::{self, share_bounds, Parts};
    let bc1 = 1.0 - cfg.beta1.powi(t as i32);
    let bc2 = 1.0 - cfg.beta2.powi(t as i32);
    let n = master.len();
    let p = pool::current_threads().min((n / MIN_ADAM_ELEMS_PER_SHARE).max(1));
    if p == 1 {
        step_chunk(cfg, bc1, bc2, master, m, v, grads, params_out);
        return;
    }
    let (bounds, p) = share_bounds(n, p);
    let master = Parts::split(master, &bounds[..p], 1);
    let m = Parts::split(m, &bounds[..p], 1);
    let v = Parts::split(v, &bounds[..p], 1);
    let out = Parts::split(params_out, &bounds[..p], 1);
    pool::global().run(p, &|w| {
        let (a, b) = bounds[w];
        if a < b {
            step_chunk(
                cfg,
                bc1,
                bc2,
                &mut master.lock(w),
                &mut m.lock(w),
                &mut v.lock(w),
                &grads[a..b],
                &mut out.lock(w),
            );
        }
    });
}

// The canonical binary16 conversions now live in [`crate::half`]; they are
// re-exported here because the wire codec, baselines, and older tests import
// them through the `adam` path.
pub use crate::half::{f16_to_f32, f32_to_f16, quantize_f16};

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn adam_decreases_quadratic_loss() {
        // Minimize f(w) = |w - target|^2 / 2; gradient = w - target.
        let target = [3.0f32, -2.0, 0.5];
        let mut w = vec![0.0f32; 3];
        let mut opt = AdamState::new(AdamConfig { lr: 0.05, ..Default::default() }, &w);
        for _ in 0..2000 {
            let grads: Vec<f32> =
                opt.master_weights().iter().zip(&target).map(|(w, t)| w - t).collect();
            opt.step(&grads, &mut w);
        }
        for (wv, tv) in w.iter().zip(&target) {
            assert!((wv - tv).abs() < 1e-2, "{wv} != {tv}");
        }
    }

    #[test]
    fn sharded_step_equals_unsharded_step() {
        let cfg = AdamConfig::default();
        let params: Vec<f32> = (0..64).map(|i| (i as f32 * 0.37).sin()).collect();
        let grads: Vec<f32> = (0..64).map(|i| (i as f32 * 0.11).cos()).collect();

        let mut full = AdamState::new(cfg, &params);
        let mut full_out = vec![0.0f32; 64];

        let mut shards: Vec<AdamShard> =
            (0..4).map(|s| AdamShard::new(cfg, s * 16, &params[s * 16..(s + 1) * 16])).collect();

        for _ in 0..5 {
            full.step(&grads, &mut full_out);
            let mut shard_out = vec![0.0f32; 64];
            for shard in &mut shards {
                let o = shard.offset();
                let upd = shard.step(&grads[o..o + shard.len()]);
                shard_out[o..o + upd.len()].copy_from_slice(&upd);
            }
            assert_eq!(full_out, shard_out, "sharded Adam diverged from reference");
        }
    }

    #[test]
    fn f16_round_trip_exact_for_representable() {
        for v in [0.0f32, -0.0, 1.0, -1.0, 0.5, 2.0, 65504.0, -65504.0, 0.25] {
            assert_eq!(quantize_f16(v), v, "{v} should be exactly representable");
        }
    }

    #[test]
    fn f16_quantization_error_is_bounded() {
        for i in 0..1000 {
            let v = (i as f32 * 0.013).sin() * 10.0;
            let q = quantize_f16(v);
            // Relative error of binary16 is at most 2^-11 for normal values.
            assert!((q - v).abs() <= v.abs() * 0.0005 + 1e-7, "{v} -> {q}");
        }
    }

    #[test]
    fn f16_overflow_saturates_to_inf() {
        assert!(f16_to_f32(f32_to_f16(1e6)).is_infinite());
        assert!(f16_to_f32(f32_to_f16(-1e6)).is_infinite());
    }

    #[test]
    fn f16_handles_subnormals() {
        let tiny = 3.0e-7f32; // subnormal in f16
        let q = quantize_f16(tiny);
        assert!(q > 0.0 && (q - tiny).abs() < 1e-7);
    }

    #[test]
    fn f16_nan_stays_nan() {
        assert!(f16_to_f32(f32_to_f16(f32::NAN)).is_nan());
    }

    #[test]
    fn state_bytes_is_16_per_param() {
        let shard = AdamShard::new(AdamConfig::default(), 0, &[0.0; 100]);
        assert_eq!(shard.state_bytes(), 1600);
    }

    #[test]
    fn weight_decay_pulls_towards_zero() {
        let mut w = vec![1.0f32];
        let mut opt =
            AdamState::new(AdamConfig { lr: 0.01, weight_decay: 0.1, ..Default::default() }, &w);
        for _ in 0..500 {
            opt.step(&[0.0], &mut w); // zero data gradient, only decay
        }
        assert!(w[0].abs() < 0.5, "weight decay should shrink weights, got {}", w[0]);
    }
}
