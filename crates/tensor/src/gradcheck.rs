//! Numerical differentiation harness for gradient tests.
//!
//! Manual backprop is the highest-risk code in this reproduction; every layer
//! in `symi-model` pins its backward pass against central differences through
//! these helpers.

use crate::matrix::Matrix;

/// Central-difference gradient of `sum(f(x) ⊙ dy)` w.r.t. `x`.
///
/// `dy` plays the role of the upstream gradient; contracting against it turns
/// a matrix-valued function into the scalar that analytic backward passes
/// differentiate.
pub fn numerical_grad(x: &Matrix, dy: &Matrix, mut f: impl FnMut(&Matrix) -> Matrix) -> Matrix {
    let eps = 1e-2f32;
    let mut probe = x.clone();
    let mut grad = Matrix::zeros(x.rows(), x.cols());
    for i in 0..probe.len() {
        let orig = probe.as_slice()[i];
        probe.as_mut_slice()[i] = orig + eps;
        let plus = contract(&f(&probe), dy);
        probe.as_mut_slice()[i] = orig - eps;
        let minus = contract(&f(&probe), dy);
        probe.as_mut_slice()[i] = orig;
        grad.as_mut_slice()[i] = ((plus - minus) / (2.0 * eps as f64)) as f32;
    }
    grad
}

/// Central-difference gradient of a scalar-valued function.
pub fn numerical_grad_scalar(x: &Matrix, mut f: impl FnMut(&Matrix) -> f32) -> Matrix {
    let eps = 1e-2f32;
    let mut probe = x.clone();
    let mut grad = Matrix::zeros(x.rows(), x.cols());
    for i in 0..probe.len() {
        let orig = probe.as_slice()[i];
        probe.as_mut_slice()[i] = orig + eps;
        let plus = f(&probe) as f64;
        probe.as_mut_slice()[i] = orig - eps;
        let minus = f(&probe) as f64;
        probe.as_mut_slice()[i] = orig;
        grad.as_mut_slice()[i] = ((plus - minus) / (2.0 * eps as f64)) as f32;
    }
    grad
}

fn contract(y: &Matrix, dy: &Matrix) -> f64 {
    assert_eq!((y.rows(), y.cols()), (dy.rows(), dy.cols()), "contract shape mismatch");
    y.as_slice().iter().zip(dy.as_slice()).map(|(a, b)| *a as f64 * *b as f64).sum()
}

/// Relative error between analytic and numeric gradients, scaled by the
/// larger of the two norms; convenient single-number check for tests.
pub fn relative_error(analytic: &Matrix, numeric: &Matrix) -> f32 {
    let diff = {
        let mut d = analytic.clone();
        d.axpy(-1.0, numeric);
        d.frobenius_norm()
    };
    let denom = analytic.frobenius_norm().max(numeric.frobenius_norm()).max(1e-8);
    diff / denom
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn numeric_grad_of_identity_is_dy() {
        let x = Matrix::from_fn(2, 3, |r, c| (r + c) as f32);
        let dy = Matrix::from_fn(2, 3, |r, c| (r as f32 + 1.0) * (c as f32 - 1.0));
        let g = numerical_grad(&x, &dy, |m| m.clone());
        assert!(g.max_abs_diff(&dy) < 1e-3);
    }

    #[test]
    fn numeric_grad_of_square_is_2x_dy() {
        let x = Matrix::from_fn(2, 2, |r, c| (r * 2 + c) as f32 + 0.5);
        let dy = Matrix::from_vec(2, 2, vec![1.0; 4]);
        let g = numerical_grad(&x, &dy, |m| m.hadamard(m));
        let mut expect = x.clone();
        expect.scale(2.0);
        assert!(g.max_abs_diff(&expect) < 1e-2);
    }

    #[test]
    fn relative_error_zero_for_equal() {
        let a = Matrix::from_fn(3, 3, |r, c| (r * c) as f32);
        assert!(relative_error(&a, &a) < 1e-9);
    }
}
