//! Cache-blocked, register-tiled GEMM kernels behind [`crate::Matrix`].
//!
//! Three specialized layouts cover everything manual backprop needs without
//! materializing transposes:
//!
//! - `nn` (`A·B`, forward): B is packed once into column panels of
//!   [`NR`] values laid out k-major, so the microkernel streams both the A
//!   row values and the packed panel contiguously. Each microkernel
//!   invocation holds an `MR×NR` block of outputs in registers for the whole
//!   k sweep.
//! - `nt` (`A·Bᵀ`, input gradients / attention scores): both operands are
//!   walked along contiguous rows; a 4×4 register tile of independent dot
//!   products provides the instruction-level parallelism.
//! - `tn` (`Aᵀ·B`, parameter gradients): the A column block is packed into a
//!   k-major strip per output row block, then the kernel runs like `nn`.
//!
//! # Determinism contract
//!
//! Every output element is produced by a **single accumulator folded over
//! `k` in ascending order**, regardless of tile shape, edge handling, or
//! worker count. Partial sums never cross participants and are never split
//! within an element, so the blocked kernels are bit-identical to the
//! [`naive`] oracle (classic i-j-k loop) and to themselves under any
//! `SYMI_THREADS` setting. Fused epilogues (`+ bias`, then activation) apply
//! *after* the fold completes, matching the unfused `matmul` →
//! `add_bias` → `gelu` sequence bit-for-bit.
//!
//! Parallelism: work splits over contiguous output row ranges via
//! [`crate::pool::par_rows`]; each participant owns a disjoint output chunk.

use crate::matrix::Matrix;
use crate::pool::{par_rows, par_rows2};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, Ordering};
use std::time::Instant;

/// Microkernel row tile.
pub const MR: usize = 4;
/// Microkernel column tile / packed panel width.
pub const NR: usize = 8;
/// Row granularity below which a GEMM is not worth splitting across shares.
const MIN_ROWS_PER_SHARE: usize = 4;

static GEMM_NS: AtomicU64 = AtomicU64::new(0);
static GEMM_FLOPS: AtomicU64 = AtomicU64::new(0);

/// Cumulative kernel counters (monotonic; consumers diff between reads).
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Wall nanoseconds spent inside GEMM drivers (submitting thread).
    pub gemm_ns: u64,
    /// Multiply-add FLOPs issued (2·m·n·k per GEMM).
    pub gemm_flops: u64,
}

/// Snapshot of the process-wide kernel counters.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        gemm_ns: GEMM_NS.load(Ordering::Relaxed),
        gemm_flops: GEMM_FLOPS.load(Ordering::Relaxed),
    }
}

fn record(t0: Instant, m: usize, n: usize, k: usize) {
    GEMM_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    GEMM_FLOPS.fetch_add(2 * (m as u64) * (n as u64) * (k as u64), Ordering::Relaxed);
}

thread_local! {
    /// Packed-B scratch for `nn` (reused across calls; grows monotonically).
    static PACK_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Packed-A column-strip scratch for `tn` (per worker thread).
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Packs `b` (k×n) into `ceil(n/NR)` k-major panels of width [`NR`],
/// zero-padding the last panel. Panel `p` occupies
/// `pack[p·k·NR .. (p+1)·k·NR]`, element `(kk, j)` at `kk·NR + j`.
fn pack_b(b: &Matrix, pack: &mut Vec<f32>) {
    let k = b.rows();
    let n = b.cols();
    let panels = n.div_ceil(NR);
    pack.clear();
    pack.resize(panels * k * NR, 0.0);
    let bs = b.as_slice();
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let dst = &mut pack[p * k * NR..(p + 1) * k * NR];
        for kk in 0..k {
            dst[kk * NR..kk * NR + w].copy_from_slice(&bs[kk * n + j0..kk * n + j0 + w]);
        }
    }
}

/// Full `MR×NR` nn microkernel: `out_block (+)= a_block · panel` with the
/// `MR·NR` accumulators held in registers across the whole ascending-k
/// sweep. `a` holds `MR` rows of length ≥ `k` at stride `lda`; `out` points
/// at the block's first element with row stride `ldc`.
fn kern_nn_full(
    a: &[f32],
    lda: usize,
    k: usize,
    panel: &[f32],
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    let mut c = [[0.0f32; NR]; MR];
    if acc {
        for (i, ci) in c.iter_mut().enumerate() {
            ci.copy_from_slice(&out[i * ldc..i * ldc + NR]);
        }
    }
    for (kk, pb) in panel.chunks_exact(NR).take(k).enumerate() {
        for (i, ci) in c.iter_mut().enumerate() {
            let av = a[i * lda + kk];
            for (cv, &bv) in ci.iter_mut().zip(pb) {
                *cv += av * bv;
            }
        }
    }
    for (i, ci) in c.iter().enumerate() {
        out[i * ldc..i * ldc + NR].copy_from_slice(ci);
    }
}

/// Edge nn microkernel for partial tiles (`rows ≤ MR`, `w ≤ NR`): same
/// single-accumulator ascending-k fold, scalar loops.
#[allow(clippy::too_many_arguments)]
fn kern_nn_edge(
    a: &[f32],
    lda: usize,
    k: usize,
    rows: usize,
    panel: &[f32],
    w: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    for i in 0..rows {
        for j in 0..w {
            let mut s = if acc { out[i * ldc + j] } else { 0.0 };
            for kk in 0..k {
                s += a[i * lda + kk] * panel[kk * NR + j];
            }
            out[i * ldc + j] = s;
        }
    }
}

/// Row-range worker for nn: computes `out_chunk (+)= A[rows]·B` from the
/// packed panels, then applies the optional bias epilogue.
#[allow(clippy::too_many_arguments)]
fn nn_rows(
    a: &Matrix,
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    pack: &[f32],
    out: &mut [f32],
    acc: bool,
    bias: Option<&[f32]>,
) {
    let asl = a.as_slice();
    let lda = a.cols();
    let m = rows.len();
    let panels = n.div_ceil(NR);
    let mut i = 0;
    while i < m {
        let rows_here = MR.min(m - i);
        let arow = &asl[(rows.start + i) * lda..];
        for p in 0..panels {
            let j0 = p * NR;
            let w = NR.min(n - j0);
            let panel = &pack[p * k * NR..(p + 1) * k * NR];
            let oblock = &mut out[i * n + j0..];
            if rows_here == MR && w == NR {
                kern_nn_full(arow, lda, k, panel, oblock, n, acc);
            } else {
                kern_nn_edge(arow, lda, k, rows_here, panel, w, oblock, n, acc);
            }
        }
        i += rows_here;
    }
    if let Some(bias) = bias {
        for r in 0..m {
            for (o, b) in out[r * n..(r + 1) * n].iter_mut().zip(bias) {
                *o += b;
            }
        }
    }
}

/// `out (+)= a · b`, optional fused `+ bias` epilogue.
pub fn gemm_nn(a: &Matrix, b: &Matrix, out: &mut Matrix, acc: bool, bias: Option<&Matrix>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if let Some(bias) = bias {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), n, "bias width mismatch");
    }
    let t0 = Instant::now();
    out.resize_to(m, n);
    if n == 0 || m == 0 {
        record(t0, m, n, k);
        return;
    }
    PACK_B.with(|p| {
        let mut p = p.borrow_mut();
        pack_b(b, &mut p);
        let pack: &[f32] = &p;
        let bias = bias.map(|bm| bm.as_slice());
        par_rows(m, n, MIN_ROWS_PER_SHARE, out.as_mut_slice(), |rows, chunk| {
            nn_rows(a, rows, k, n, pack, chunk, acc, bias);
        });
    });
    record(t0, m, n, k);
}

/// `pre = a·b + bias`, `act = gelu(pre)` — the fused FFN epilogue. The
/// activation is applied per completed row range inside the same parallel
/// region, so `pre` rows are still cache-hot when `act` is produced.
pub fn gemm_nn_bias_gelu(
    a: &Matrix,
    b: &Matrix,
    bias: &Matrix,
    pre: &mut Matrix,
    act: &mut Matrix,
) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), b.cols(), "bias width mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let t0 = Instant::now();
    pre.resize_to(m, n);
    act.resize_to(m, n);
    if n == 0 || m == 0 {
        record(t0, m, n, k);
        return;
    }
    PACK_B.with(|p| {
        let mut p = p.borrow_mut();
        pack_b(b, &mut p);
        let pack: &[f32] = &p;
        let bias = bias.as_slice();
        par_rows2(
            m,
            n,
            MIN_ROWS_PER_SHARE,
            pre.as_mut_slice(),
            act.as_mut_slice(),
            |rows, pre_chunk, act_chunk| {
                nn_rows(a, rows, k, n, pack, pre_chunk, false, Some(bias));
                for (av, pv) in act_chunk.iter_mut().zip(pre_chunk.iter()) {
                    *av = crate::ops::gelu_scalar(*pv);
                }
            },
        );
    });
    record(t0, m, n, k);
}

/// `out (+)= a · bᵀ` (`b` is `n×k`): independent contiguous dot products,
/// tiled 4×4 for ILP. Each dot is one accumulator over ascending k.
pub fn gemm_nt(a: &Matrix, b: &Matrix, out: &mut Matrix, acc: bool) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let t0 = Instant::now();
    out.resize_to(m, n);
    if m == 0 || n == 0 {
        record(t0, m, n, k);
        return;
    }
    let asl = a.as_slice();
    let bsl = b.as_slice();
    par_rows(m, n, MIN_ROWS_PER_SHARE, out.as_mut_slice(), |rows, chunk| {
        const TI: usize = 4;
        const TJ: usize = 4;
        let mlocal = rows.len();
        let mut i = 0;
        while i < mlocal {
            let ih = TI.min(mlocal - i);
            let mut j = 0;
            while j < n {
                let jh = TJ.min(n - j);
                if ih == TI && jh == TJ {
                    let mut c = [[0.0f32; TJ]; TI];
                    if acc {
                        for (ii, ci) in c.iter_mut().enumerate() {
                            ci.copy_from_slice(&chunk[(i + ii) * n + j..(i + ii) * n + j + TJ]);
                        }
                    }
                    let ar0 = (rows.start + i) * k;
                    let br0 = j * k;
                    for kk in 0..k {
                        for (ii, ci) in c.iter_mut().enumerate() {
                            let av = asl[ar0 + ii * k + kk];
                            for (jj, cv) in ci.iter_mut().enumerate() {
                                *cv += av * bsl[br0 + jj * k + kk];
                            }
                        }
                    }
                    for (ii, ci) in c.iter().enumerate() {
                        chunk[(i + ii) * n + j..(i + ii) * n + j + TJ].copy_from_slice(ci);
                    }
                } else {
                    for ii in 0..ih {
                        let arow = &asl[(rows.start + i + ii) * k..(rows.start + i + ii + 1) * k];
                        for jj in 0..jh {
                            let brow = &bsl[(j + jj) * k..(j + jj + 1) * k];
                            let mut s = if acc { chunk[(i + ii) * n + j + jj] } else { 0.0 };
                            for (av, bv) in arow.iter().zip(brow) {
                                s += av * bv;
                            }
                            chunk[(i + ii) * n + j + jj] = s;
                        }
                    }
                }
                j += jh;
            }
            i += ih;
        }
    });
    record(t0, m, n, k);
}

/// `out (+)= aᵀ · b` (`a` is `r×m`, `b` is `r×n`, `out` is `m×n`).
/// Parallelized over *output* rows (columns of `a`), so no participant ever
/// touches another's accumulators; `r` is folded in ascending order within
/// each element. The A column block is packed into a k-major strip so the
/// inner loop streams contiguously.
pub fn gemm_tn(a: &Matrix, b: &Matrix, out: &mut Matrix, acc: bool) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (r, m, n) = (a.rows(), a.cols(), b.cols());
    let t0 = Instant::now();
    out.resize_to(m, n);
    if m == 0 || n == 0 {
        record(t0, m, n, r);
        return;
    }
    let asl = a.as_slice();
    let bsl = b.as_slice();
    par_rows(m, n, 1, out.as_mut_slice(), |rows, chunk| {
        PACK_A.with(|p| {
            let mut strip = p.borrow_mut();
            let mlocal = rows.len();
            let mut i = 0;
            while i < mlocal {
                let ih = MR.min(mlocal - i);
                // Pack columns `rows.start+i .. +ih` of `a` k-major:
                // strip[kk·ih + ii] = a[kk][rows.start + i + ii].
                strip.clear();
                strip.resize(r * ih, 0.0);
                for kk in 0..r {
                    for ii in 0..ih {
                        strip[kk * ih + ii] = asl[kk * m + rows.start + i + ii];
                    }
                }
                let mut j = 0;
                while j < n {
                    let jh = NR.min(n - j);
                    if ih == MR && jh == NR {
                        let mut c = [[0.0f32; NR]; MR];
                        if acc {
                            for (ii, ci) in c.iter_mut().enumerate() {
                                ci.copy_from_slice(&chunk[(i + ii) * n + j..(i + ii) * n + j + NR]);
                            }
                        }
                        for kk in 0..r {
                            let av = &strip[kk * MR..kk * MR + MR];
                            let bv = &bsl[kk * n + j..kk * n + j + NR];
                            for (ii, ci) in c.iter_mut().enumerate() {
                                let a_ik = av[ii];
                                for (cv, &b_kj) in ci.iter_mut().zip(bv) {
                                    *cv += a_ik * b_kj;
                                }
                            }
                        }
                        for (ii, ci) in c.iter().enumerate() {
                            chunk[(i + ii) * n + j..(i + ii) * n + j + NR].copy_from_slice(ci);
                        }
                    } else {
                        for ii in 0..ih {
                            for jj in 0..jh {
                                let mut s = if acc { chunk[(i + ii) * n + j + jj] } else { 0.0 };
                                for kk in 0..r {
                                    s += strip[kk * ih + ii] * bsl[kk * n + j + jj];
                                }
                                chunk[(i + ii) * n + j + jj] = s;
                            }
                        }
                    }
                    j += jh;
                }
                i += ih;
            }
        });
    });
    record(t0, m, n, r);
}

/// Reference kernels: the classic textbook loops, kept as the correctness
/// oracle for property tests and the bench baseline. Each output element is
/// a single accumulator folded over ascending k — the exact contract the
/// blocked kernels reproduce, so comparisons are `==`, not tolerance-based.
pub mod naive {
    use crate::matrix::Matrix;

    /// i-j-k triple loop `a · b`.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for kk in 0..a.cols() {
                    s += a[(i, kk)] * b[(kk, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// `a · bᵀ`.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut s = 0.0f32;
                for kk in 0..a.cols() {
                    s += a[(i, kk)] * b[(j, kk)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// `aᵀ · b`.
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for kk in 0..a.rows() {
                    s += a[(kk, i)] * b[(kk, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// `x·w + bias` with the bias added after the fold (the epilogue order
    /// the fused kernels use).
    pub fn linear(x: &Matrix, w: &Matrix, bias: &Matrix) -> Matrix {
        let mut out = matmul(x, w);
        out.add_bias(bias);
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, StdRng};

    fn random(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 2.0 - 1.0)
    }

    #[test]
    fn blocked_nn_is_bit_exact_vs_naive() {
        let mut rng = StdRng::seed_from_u64(7);
        for &(m, k, n) in
            &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (13, 17, 19), (64, 64, 64), (2, 100, 3)]
        {
            let a = random(m, k, &mut rng);
            let b = random(k, n, &mut rng);
            let mut out = Matrix::zeros(0, 0);
            gemm_nn(&a, &b, &mut out, false, None);
            assert_eq!(out, naive::matmul(&a, &b), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_nt_is_bit_exact_vs_naive() {
        let mut rng = StdRng::seed_from_u64(8);
        for &(m, k, n) in &[(1, 1, 1), (5, 3, 9), (12, 16, 4), (33, 65, 31)] {
            let a = random(m, k, &mut rng);
            let b = random(n, k, &mut rng);
            let mut out = Matrix::zeros(0, 0);
            gemm_nt(&a, &b, &mut out, false);
            assert_eq!(out, naive::matmul_nt(&a, &b), "shape {m}x{k}x{n}");
        }
    }

    #[test]
    fn blocked_tn_is_bit_exact_vs_naive() {
        let mut rng = StdRng::seed_from_u64(9);
        for &(r, m, n) in &[(1, 1, 1), (6, 5, 3), (17, 13, 23), (50, 9, 40)] {
            let a = random(r, m, &mut rng);
            let b = random(r, n, &mut rng);
            let mut out = Matrix::zeros(0, 0);
            gemm_tn(&a, &b, &mut out, false);
            assert_eq!(out, naive::matmul_tn(&a, &b), "shape {r}x{m}x{n}");
        }
    }

    #[test]
    fn acc_mode_adds_on_top() {
        let mut rng = StdRng::seed_from_u64(10);
        let a = random(9, 11, &mut rng);
        let b = random(11, 7, &mut rng);
        let seed = random(9, 7, &mut rng);
        let mut out = seed.clone();
        gemm_nn(&a, &b, &mut out, true, None);
        let plain = naive::matmul(&a, &b);
        for i in 0..out.len() {
            let expect = seed.as_slice()[i] + plain.as_slice()[i];
            // acc seeds the fold with the prior value instead of 0.0; the
            // fold order within k is unchanged, so this stays exact.
            let mut s = seed.as_slice()[i];
            let (r, c) = (i / 7, i % 7);
            for kk in 0..11 {
                s += a[(r, kk)] * b[(kk, c)];
            }
            assert_eq!(out.as_slice()[i], s);
            let _ = expect;
        }
    }

    #[test]
    fn fused_bias_gelu_matches_unfused() {
        let mut rng = StdRng::seed_from_u64(11);
        let x = random(10, 6, &mut rng);
        let w = random(6, 14, &mut rng);
        let bias = random(1, 14, &mut rng);
        let mut pre = Matrix::zeros(0, 0);
        let mut act = Matrix::zeros(0, 0);
        gemm_nn_bias_gelu(&x, &w, &bias, &mut pre, &mut act);
        let expect_pre = naive::linear(&x, &w, &bias);
        assert_eq!(pre, expect_pre);
        let expect_act = crate::ops::gelu(&expect_pre);
        assert_eq!(act, expect_act);
    }

    #[test]
    fn empty_shapes_are_fine() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut out = Matrix::zeros(1, 1);
        gemm_nn(&a, &b, &mut out, false, None);
        assert_eq!((out.rows(), out.cols()), (0, 3));
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        gemm_nn(&a, &b, &mut out, false, None);
        assert_eq!(out, Matrix::zeros(4, 3), "k=0 means a zero fold");
    }

    #[test]
    fn counters_advance() {
        let before = kernel_stats();
        let a = Matrix::zeros(8, 8);
        let b = Matrix::zeros(8, 8);
        let mut out = Matrix::zeros(0, 0);
        gemm_nn(&a, &b, &mut out, false, None);
        let after = kernel_stats();
        assert!(after.gemm_flops >= before.gemm_flops + 2 * 8 * 8 * 8);
    }
}
