//! Cache-blocked, register-tiled GEMM kernels behind [`crate::Matrix`].
//!
//! Three specialized layouts cover everything manual backprop needs without
//! materializing transposes:
//!
//! - `nn` (`A·B`, forward): B is read **in place** — row-major B already
//!   stores the microkernel's column strips contiguously, so the kernels
//!   take B's row stride as a parameter and there is no packing pass at
//!   all. Each microkernel invocation holds an `MR×NR` block of outputs in
//!   registers; the AVX2 drivers additionally cache-block the k extent
//!   (exact f32 spill/reload between chunks).
//! - `nt` (`A·Bᵀ`, input gradients / attention scores): both operands are
//!   walked along contiguous rows; a register tile of independent dot
//!   products provides the instruction-level parallelism.
//! - `tn` (`Aᵀ·B`, parameter gradients): the A column block is packed into a
//!   k-major strip per output row block, then the kernel runs like `nn`.
//!
//! # SIMD dispatch
//!
//! Each layout has two microkernel families selected once per process by
//! [`active_path`]: a portable scalar family (the original kernels, kept as
//! the fallback and the forced-`SYMI_SIMD=scalar` CI path) and an AVX2+FMA
//! family ([`crate::simd`], x86_64 only, runtime feature detection). The
//! scalar family is **bit-exact** against the [`naive`] oracle (single
//! accumulator folded over ascending `k`, mul-then-add). The AVX2 family
//! keeps f32 accumulation and the same *global* tile decomposition but uses
//! fused multiply-add (and, for `nt`, fixed 8-lane k-splitting), so it is
//! held to the oracle by a ULP/error-bound gate instead of `==` — see
//! `tests/simd_oracle.rs`. `SYMI_SIMD=scalar|avx2` overrides detection.
//!
//! # f16 storage / f32 accumulate
//!
//! `gemm_nn_f16` / `gemm_nt_f16` take the weight operand as a
//! [`crate::half::HalfMatrix`]: with F16C the microkernels stream the
//! 2-byte binary16 strips in place and widen with `vcvtph2ps` on the way
//! into the FMA (half the B traffic per k step); without it, B is decoded
//! to f32 **once per call** into a thread-local scratch and the f32
//! drivers run — both conversions are exact, so the paths agree on values.
//! Accumulation is always f32.
//!
//! # Determinism contract
//!
//! Within one process (one resolved SIMD path), every GEMM is a pure
//! function of its operands — independent of worker count and repeatable
//! across runs. Work splits only across *output* elements, never across the
//! `k` reduction, and share boundaries are aligned to the active path's row
//! tile ([`crate::pool::par_rows_planned`]), so the full-tile/edge-tile
//! decomposition — which decides where FMA vs scalar rounding applies — is a
//! global property of the shape, not of the split. The scalar path is
//! additionally bit-exact against [`naive`]. Fused epilogues (`+ bias`, then
//! activation) apply *after* the fold completes, matching the unfused
//! `matmul` → `add_bias` → `gelu` sequence bit-for-bit on every path.
//!
//! # Cost-model gate
//!
//! Dispatching a parallel region costs wake-ups, cache re-warming, and (on
//! oversubscribed hosts) context switches, so small GEMMs lose by
//! splitting: the seed benchmark showed 64×64×128 *dropping* from 19.3 to
//! 13.6 GFLOP/s going 1→8 threads. [`plan_shares`] therefore caps the share
//! count so each share keeps at least `SYMI_GEMM_FLOPS_PER_SHARE` FLOPs
//! (default 128 M ≈ a couple of milliseconds of SIMD work) **and** never
//! exceeds the machine's `available_parallelism` — extra shares beyond
//! cores cannot run concurrently, they only pay dispatch and cache-handoff
//! cost. Gated calls run sequentially on the submitting thread with zero
//! dispatch and bump the `kernel.seq_fallback` counter.

use crate::half::HalfMatrix;
use crate::matrix::Matrix;
use crate::pool::{par_rows2_planned, par_rows_planned};
use std::cell::RefCell;
use std::sync::atomic::{AtomicU64, AtomicU8, Ordering};
use std::time::Instant;

/// Scalar-path microkernel row tile.
pub const MR: usize = 4;
/// Scalar-path microkernel column tile / packed panel width.
pub const NR: usize = 8;

/// Default minimum FLOPs a share must amortize before the cost model grants
/// it a pool dispatch (override: `SYMI_GEMM_FLOPS_PER_SHARE`). ~2 ms of
/// work at the AVX2 kernels' measured single-thread throughput — an order
/// of magnitude above dispatch + cache-rewarm cost even on oversubscribed
/// single-core hosts.
pub const DEFAULT_FLOPS_PER_SHARE: u64 = 128_000_000;

static GEMM_NS: AtomicU64 = AtomicU64::new(0);
static GEMM_FLOPS: AtomicU64 = AtomicU64::new(0);
static SEQ_FALLBACK: AtomicU64 = AtomicU64::new(0);
static B_PACKS: AtomicU64 = AtomicU64::new(0);

/// Cumulative kernel counters (monotonic; consumers diff between reads).
#[derive(Clone, Copy, Debug, Default)]
pub struct KernelStats {
    /// Wall nanoseconds spent inside GEMM drivers (submitting thread).
    pub gemm_ns: u64,
    /// Multiply-add FLOPs issued (2·m·n·k per GEMM).
    pub gemm_flops: u64,
    /// GEMM calls the cost model ran sequentially although the pool had
    /// threads to offer (parallelism could not amortize dispatch).
    pub seq_fallback: u64,
    /// B-operand preparation passes. The f32 nn family reads B in place
    /// (never counts); only the no-F16C f16 fallback decodes B, exactly
    /// once per call — preparation is never repeated per share.
    pub b_packs: u64,
}

/// Snapshot of the process-wide kernel counters.
pub fn kernel_stats() -> KernelStats {
    KernelStats {
        gemm_ns: GEMM_NS.load(Ordering::Relaxed),
        gemm_flops: GEMM_FLOPS.load(Ordering::Relaxed),
        seq_fallback: SEQ_FALLBACK.load(Ordering::Relaxed),
        b_packs: B_PACKS.load(Ordering::Relaxed),
    }
}

fn record(t0: Instant, m: usize, n: usize, k: usize) {
    GEMM_NS.fetch_add(t0.elapsed().as_nanos() as u64, Ordering::Relaxed);
    GEMM_FLOPS.fetch_add(2 * (m as u64) * (n as u64) * (k as u64), Ordering::Relaxed);
}

// ---------------------------------------------------------------------------
// SIMD path selection
// ---------------------------------------------------------------------------

/// Which microkernel family the drivers dispatch to.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SimdPath {
    /// Portable scalar kernels: bit-exact vs [`naive`], run anywhere.
    Scalar,
    /// AVX2 + FMA microkernels (x86_64, runtime-detected).
    Avx2,
}

/// 0 = undecided, 1 = scalar, 2 = avx2.
static PATH: AtomicU8 = AtomicU8::new(0);

fn detect_path() -> SimdPath {
    #[cfg(target_arch = "x86_64")]
    {
        if crate::simd::have_avx2_fma() {
            return SimdPath::Avx2;
        }
    }
    SimdPath::Scalar
}

fn decide_path() -> SimdPath {
    match std::env::var("SYMI_SIMD") {
        Ok(v) => match v.trim().to_ascii_lowercase().as_str() {
            "scalar" | "0" | "off" => SimdPath::Scalar,
            "avx2" => {
                let detected = detect_path();
                assert!(
                    detected == SimdPath::Avx2,
                    "SYMI_SIMD=avx2 requested but this CPU lacks AVX2+FMA"
                );
                SimdPath::Avx2
            }
            other => {
                eprintln!(
                    "symi: ignoring unknown SYMI_SIMD={other:?} \
                     (expected scalar|avx2); auto-detecting"
                );
                detect_path()
            }
        },
        Err(_) => detect_path(),
    }
}

/// The microkernel family in use, resolved once per process from
/// `SYMI_SIMD` (else CPU feature detection) on first GEMM.
pub fn active_path() -> SimdPath {
    match PATH.load(Ordering::Relaxed) {
        1 => SimdPath::Scalar,
        2 => SimdPath::Avx2,
        _ => {
            let p = decide_path();
            force_simd_path(p);
            p
        }
    }
}

/// Overrides the dispatch path. Intended for tests and benches that must
/// exercise a specific family (mirrors `pool::set_threads`); results differ
/// *between* paths at the documented ULP bound, so test binaries that
/// switch paths serialize around it.
pub fn force_simd_path(p: SimdPath) {
    PATH.store(
        match p {
            SimdPath::Scalar => 1,
            SimdPath::Avx2 => 2,
        },
        Ordering::Relaxed,
    );
}

/// Human-readable name of the active path (telemetry / bench metadata).
pub fn simd_path_name() -> &'static str {
    match active_path() {
        SimdPath::Scalar => "scalar",
        SimdPath::Avx2 => "avx2",
    }
}

/// Whether the f16-storage GEMMs can stream binary16 panels directly
/// (AVX2 path + F16C). Otherwise they widen at pack time and run the f32
/// microkernels — same values, full-width panel traffic.
pub fn f16_fast_path() -> bool {
    #[cfg(target_arch = "x86_64")]
    {
        return active_path() == SimdPath::Avx2 && crate::simd::have_f16c();
    }
    #[allow(unreachable_code)]
    false
}

/// `(row tile, panel width)` of the nn/tn-family kernels for `path`.
fn nn_tile(path: SimdPath) -> (usize, usize) {
    match path {
        SimdPath::Scalar => (MR, NR),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => (crate::simd::MR_NN, crate::simd::NR_NN),
        #[cfg(not(target_arch = "x86_64"))]
        SimdPath::Avx2 => unreachable!("avx2 path selected on non-x86_64"),
    }
}

fn tn_tile(path: SimdPath) -> (usize, usize) {
    match path {
        SimdPath::Scalar => (MR, NR),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => (crate::simd::TN_MR, crate::simd::TN_NR),
        #[cfg(not(target_arch = "x86_64"))]
        SimdPath::Avx2 => unreachable!("avx2 path selected on non-x86_64"),
    }
}

// ---------------------------------------------------------------------------
// Cost model
// ---------------------------------------------------------------------------

/// 0 = uninitialized (resolve from env on first use).
static MIN_FLOPS: AtomicU64 = AtomicU64::new(0);

fn min_flops_per_share() -> u64 {
    let v = MIN_FLOPS.load(Ordering::Relaxed);
    if v != 0 {
        return v;
    }
    let init = match std::env::var("SYMI_GEMM_FLOPS_PER_SHARE") {
        Ok(raw) => match raw.trim().parse::<u64>() {
            Ok(v) if v > 0 => v,
            _ => {
                eprintln!(
                    "symi: ignoring invalid SYMI_GEMM_FLOPS_PER_SHARE={raw:?} \
                     (expected a positive integer); using {DEFAULT_FLOPS_PER_SHARE}"
                );
                DEFAULT_FLOPS_PER_SHARE
            }
        },
        Err(_) => DEFAULT_FLOPS_PER_SHARE,
    };
    MIN_FLOPS.store(init, Ordering::Relaxed);
    init
}

/// Overrides the cost-model minimum (mirrors `pool::set_threads`: for tests
/// and benches that must exercise multi-share execution on shapes the gate
/// would otherwise run sequentially). Pass [`DEFAULT_FLOPS_PER_SHARE`] to
/// restore the default.
pub fn set_flops_per_share(v: u64) {
    MIN_FLOPS.store(v.max(1), Ordering::Relaxed);
}

/// Hardware parallelism, cached: the most workers that can make a
/// CPU-bound kernel faster. A thread budget above this (oversubscribed
/// `SYMI_THREADS` on a small container) only adds handoff overhead — the
/// seed regression this gate exists to prevent.
fn hardware_parallelism() -> usize {
    let v = HW_PARALLELISM.load(Ordering::Relaxed);
    if v != 0 {
        return v as usize;
    }
    let n = std::thread::available_parallelism().map_or(1, |n| n.get());
    HW_PARALLELISM.store(n as u64, Ordering::Relaxed);
    n
}

static HW_PARALLELISM: AtomicU64 = AtomicU64::new(0);

/// Overrides the detected hardware parallelism (mirrors
/// [`set_flops_per_share`]: for tests that must exercise multi-share
/// execution on hosts with fewer cores than the scenario under test).
/// Pass 0 to restore detection.
pub fn set_hardware_parallelism(v: usize) {
    HW_PARALLELISM.store(v as u64, Ordering::Relaxed);
}

/// How many pool shares a GEMM over `rows` output rows (tiled in
/// `block`-high strips) and `flops` total work deserves. Returns 1 — a
/// zero-dispatch sequential run — unless every share can amortize the
/// dispatch cost; such gated calls count as `seq_fallback`. The share
/// count is also capped at the machine's physical parallelism: extra
/// shares beyond cores cannot run concurrently, so they pay dispatch and
/// cache-handoff cost for zero speedup.
fn plan_shares(rows: usize, block: usize, flops: u64) -> usize {
    let budget = crate::pool::current_threads().min(hardware_parallelism());
    if budget <= 1 {
        if crate::pool::current_threads() > 1 {
            SEQ_FALLBACK.fetch_add(1, Ordering::Relaxed);
        }
        return 1;
    }
    let by_blocks = rows.div_ceil(block.max(1));
    let by_cost = (flops / min_flops_per_share().max(1)).max(1) as usize;
    let p = budget.min(by_blocks).min(by_cost);
    if p == 1 {
        SEQ_FALLBACK.fetch_add(1, Ordering::Relaxed);
    }
    p
}

// ---------------------------------------------------------------------------
// Packing
// ---------------------------------------------------------------------------

thread_local! {
    /// Decoded-B scratch for the f16 fallback paths (no F16C): B widened
    /// to f32 once per call, shared read-only across workers.
    static DEC_B: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
    /// Packed-A column-strip scratch for `tn` (per worker thread).
    static PACK_A: RefCell<Vec<f32>> = const { RefCell::new(Vec::new()) };
}

/// Decodes a binary16 B to f32 once per call (exact — binary16 ⊂ f32), so
/// fallback paths without F16C compute the same function of the decoded B
/// as the in-register-widening fast path. Counted in
/// [`KernelStats::b_packs`]: per-call B preparation work, shared
/// read-only across workers — never repeated per share.
fn decode_b_f16(bh: &[u16], dec: &mut Vec<f32>) {
    B_PACKS.fetch_add(1, Ordering::Relaxed);
    dec.clear();
    dec.extend(bh.iter().map(|&h| crate::half::f16_to_f32(h)));
}

/// Packs columns `col0 .. col0+ih` of the `r×m` matrix `a` k-major:
/// `strip[kk·ih + ii] = a[kk][col0 + ii]` (shared by scalar and AVX2 tn).
pub(crate) fn pack_a_strip(
    asl: &[f32],
    m: usize,
    r: usize,
    col0: usize,
    ih: usize,
    strip: &mut Vec<f32>,
) {
    strip.clear();
    strip.resize(r * ih, 0.0);
    for kk in 0..r {
        for ii in 0..ih {
            strip[kk * ih + ii] = asl[kk * m + col0 + ii];
        }
    }
}

// ---------------------------------------------------------------------------
// Scalar microkernels
// ---------------------------------------------------------------------------

/// Full `MR×NR` nn microkernel: `out_block (+)= a_block · panel` with the
/// `MR·NR` accumulators held in registers across the whole ascending-k
/// sweep. `a` holds `MR` rows of length ≥ `k` at stride `lda`; `panel`
/// points at B's `(0, j0)` element with row stride `pstride` (B is read in
/// place — no packing); `out` points at the block's first element with row
/// stride `ldc`.
#[allow(clippy::too_many_arguments)]
fn kern_nn_full(
    a: &[f32],
    lda: usize,
    k: usize,
    panel: &[f32],
    pstride: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    let mut c = [[0.0f32; NR]; MR];
    if acc {
        for (i, ci) in c.iter_mut().enumerate() {
            ci.copy_from_slice(&out[i * ldc..i * ldc + NR]);
        }
    }
    for kk in 0..k {
        let pb = &panel[kk * pstride..kk * pstride + NR];
        for (i, ci) in c.iter_mut().enumerate() {
            let av = a[i * lda + kk];
            for (cv, &bv) in ci.iter_mut().zip(pb) {
                *cv += av * bv;
            }
        }
    }
    for (i, ci) in c.iter().enumerate() {
        out[i * ldc..i * ldc + NR].copy_from_slice(ci);
    }
}

/// Edge nn microkernel for partial tiles (`rows ≤ mr`, `w ≤ nr`): same
/// single-accumulator ascending-k fold, scalar loops. `nr` is the panel
/// stride of the *caller's* pack layout (8 scalar, 16 AVX2).
#[allow(clippy::too_many_arguments)]
pub(crate) fn kern_nn_edge(
    a: &[f32],
    lda: usize,
    k: usize,
    rows: usize,
    panel: &[f32],
    w: usize,
    nr: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    for i in 0..rows {
        for j in 0..w {
            let mut s = if acc { out[i * ldc + j] } else { 0.0 };
            for kk in 0..k {
                s += a[i * lda + kk] * panel[kk * nr + j];
            }
            out[i * ldc + j] = s;
        }
    }
}

/// [`kern_nn_edge`] over a binary16 panel (widened per element; exact).
#[allow(clippy::too_many_arguments)]
pub(crate) fn kern_nn_edge_f16(
    a: &[f32],
    lda: usize,
    k: usize,
    rows: usize,
    panel: &[u16],
    w: usize,
    nr: usize,
    out: &mut [f32],
    ldc: usize,
    acc: bool,
) {
    for i in 0..rows {
        for j in 0..w {
            let mut s = if acc { out[i * ldc + j] } else { 0.0 };
            for kk in 0..k {
                s += a[i * lda + kk] * crate::half::f16_to_f32(panel[kk * nr + j]);
            }
            out[i * ldc + j] = s;
        }
    }
}

/// Row-range worker for scalar nn: computes `out_chunk (+)= A[rows]·B`
/// reading B in place (`bs` row-major with stride `bstride` — the kernel
/// loads a contiguous `NR`-wide strip per k-step, so packing would only
/// add traffic), then applies the optional bias epilogue.
#[allow(clippy::too_many_arguments)]
fn nn_rows(
    a: &Matrix,
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    bs: &[f32],
    bstride: usize,
    out: &mut [f32],
    acc: bool,
    bias: Option<&[f32]>,
) {
    let asl = a.as_slice();
    let lda = a.cols();
    let m = rows.len();
    let panels = n.div_ceil(NR);
    // Panel-outer so one column strip of B stays cache-hot across all row
    // tiles (matches the SIMD workers; visit order is result-neutral —
    // every C tile still folds its full k sweep in registers).
    for p in 0..panels {
        let j0 = p * NR;
        let w = NR.min(n - j0);
        let panel = &bs[j0..];
        let mut i = 0;
        while i < m {
            let rows_here = MR.min(m - i);
            let arow = &asl[(rows.start + i) * lda..];
            let oblock = &mut out[i * n + j0..];
            if rows_here == MR && w == NR {
                kern_nn_full(arow, lda, k, panel, bstride, oblock, n, acc);
            } else {
                kern_nn_edge(arow, lda, k, rows_here, panel, w, bstride, oblock, n, acc);
            }
            i += rows_here;
        }
    }
    if let Some(bias) = bias {
        for r in 0..m {
            for (o, b) in out[r * n..(r + 1) * n].iter_mut().zip(bias) {
                *o += b;
            }
        }
    }
}

/// Row-range worker for scalar nt: 4×4 register tile of independent
/// contiguous dot products, each one accumulator over ascending k.
fn nt_rows(
    a: &Matrix,
    bsl: &[f32],
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
) {
    const TI: usize = 4;
    const TJ: usize = 4;
    let asl = a.as_slice();
    let mlocal = rows.len();
    let mut i = 0;
    while i < mlocal {
        let ih = TI.min(mlocal - i);
        let mut j = 0;
        while j < n {
            let jh = TJ.min(n - j);
            if ih == TI && jh == TJ {
                let mut c = [[0.0f32; TJ]; TI];
                if acc {
                    for (ii, ci) in c.iter_mut().enumerate() {
                        ci.copy_from_slice(&chunk[(i + ii) * n + j..(i + ii) * n + j + TJ]);
                    }
                }
                let ar0 = (rows.start + i) * k;
                let br0 = j * k;
                for kk in 0..k {
                    for (ii, ci) in c.iter_mut().enumerate() {
                        let av = asl[ar0 + ii * k + kk];
                        for (jj, cv) in ci.iter_mut().enumerate() {
                            *cv += av * bsl[br0 + jj * k + kk];
                        }
                    }
                }
                for (ii, ci) in c.iter().enumerate() {
                    chunk[(i + ii) * n + j..(i + ii) * n + j + TJ].copy_from_slice(ci);
                }
            } else {
                for ii in 0..ih {
                    let arow = &asl[(rows.start + i + ii) * k..(rows.start + i + ii + 1) * k];
                    for jj in 0..jh {
                        let brow = &bsl[(j + jj) * k..(j + jj + 1) * k];
                        let mut s = if acc { chunk[(i + ii) * n + j + jj] } else { 0.0 };
                        for (av, bv) in arow.iter().zip(brow) {
                            s += av * bv;
                        }
                        chunk[(i + ii) * n + j + jj] = s;
                    }
                }
            }
            j += jh;
        }
        i += ih;
    }
}

/// Row-range worker for scalar tn (`rows` are *output* rows = A columns).
#[allow(clippy::too_many_arguments)]
fn tn_rows(
    asl: &[f32],
    bsl: &[f32],
    rows: std::ops::Range<usize>,
    r: usize,
    m: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
) {
    PACK_A.with(|p| {
        let mut strip = p.borrow_mut();
        let mlocal = rows.len();
        let mut i = 0;
        while i < mlocal {
            let ih = MR.min(mlocal - i);
            pack_a_strip(asl, m, r, rows.start + i, ih, &mut strip);
            let mut j = 0;
            while j < n {
                let jh = NR.min(n - j);
                if ih == MR && jh == NR {
                    let mut c = [[0.0f32; NR]; MR];
                    if acc {
                        for (ii, ci) in c.iter_mut().enumerate() {
                            ci.copy_from_slice(&chunk[(i + ii) * n + j..(i + ii) * n + j + NR]);
                        }
                    }
                    for kk in 0..r {
                        let av = &strip[kk * MR..kk * MR + MR];
                        let bv = &bsl[kk * n + j..kk * n + j + NR];
                        for (ii, ci) in c.iter_mut().enumerate() {
                            let a_ik = av[ii];
                            for (cv, &b_kj) in ci.iter_mut().zip(bv) {
                                *cv += a_ik * b_kj;
                            }
                        }
                    }
                    for (ii, ci) in c.iter().enumerate() {
                        chunk[(i + ii) * n + j..(i + ii) * n + j + NR].copy_from_slice(ci);
                    }
                } else {
                    for ii in 0..ih {
                        for jj in 0..jh {
                            let mut s = if acc { chunk[(i + ii) * n + j + jj] } else { 0.0 };
                            for kk in 0..r {
                                s += strip[kk * ih + ii] * bsl[kk * n + j + jj];
                            }
                            chunk[(i + ii) * n + j + jj] = s;
                        }
                    }
                }
                j += jh;
            }
            i += ih;
        }
    });
}

// ---------------------------------------------------------------------------
// Dispatchers
// ---------------------------------------------------------------------------

#[allow(clippy::too_many_arguments)]
fn nn_rows_dispatch(
    path: SimdPath,
    a: &Matrix,
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    bs: &[f32],
    bstride: usize,
    out: &mut [f32],
    acc: bool,
    bias: Option<&[f32]>,
) {
    match path {
        SimdPath::Scalar => nn_rows(a, rows, k, n, bs, bstride, out, acc, bias),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => crate::simd::nn_rows(a, rows, k, n, bs, bstride, out, acc, bias),
        #[cfg(not(target_arch = "x86_64"))]
        SimdPath::Avx2 => unreachable!("avx2 path selected on non-x86_64"),
    }
}

#[allow(clippy::too_many_arguments)]
fn nt_rows_dispatch(
    path: SimdPath,
    a: &Matrix,
    bsl: &[f32],
    rows: std::ops::Range<usize>,
    k: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
) {
    match path {
        SimdPath::Scalar => nt_rows(a, bsl, rows, k, n, chunk, acc),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => crate::simd::nt_rows(a, bsl, rows, k, n, chunk, acc),
        #[cfg(not(target_arch = "x86_64"))]
        SimdPath::Avx2 => unreachable!("avx2 path selected on non-x86_64"),
    }
}

#[allow(clippy::too_many_arguments)]
fn tn_rows_dispatch(
    path: SimdPath,
    asl: &[f32],
    bsl: &[f32],
    rows: std::ops::Range<usize>,
    r: usize,
    m: usize,
    n: usize,
    chunk: &mut [f32],
    acc: bool,
) {
    match path {
        SimdPath::Scalar => tn_rows(asl, bsl, rows, r, m, n, chunk, acc),
        #[cfg(target_arch = "x86_64")]
        SimdPath::Avx2 => {
            PACK_A.with(|p| {
                crate::simd::tn_rows(asl, bsl, rows, r, m, n, chunk, acc, &mut p.borrow_mut())
            });
        }
        #[cfg(not(target_arch = "x86_64"))]
        SimdPath::Avx2 => unreachable!("avx2 path selected on non-x86_64"),
    }
}

// ---------------------------------------------------------------------------
// Drivers
// ---------------------------------------------------------------------------

/// `out (+)= a · b`, optional fused `+ bias` epilogue.
pub fn gemm_nn(a: &Matrix, b: &Matrix, out: &mut Matrix, acc: bool, bias: Option<&Matrix>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul shape mismatch: {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if let Some(bias) = bias {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), n, "bias width mismatch");
    }
    let t0 = Instant::now();
    out.resize_to(m, n);
    if n == 0 || m == 0 {
        record(t0, m, n, k);
        return;
    }
    let path = active_path();
    let (mr, _) = nn_tile(path);
    let shares = plan_shares(m, mr, 2 * (m as u64) * (n as u64) * (k as u64));
    let bsl = b.as_slice();
    let bias = bias.map(|bm| bm.as_slice());
    par_rows_planned(m, n, mr, shares, out.as_mut_slice(), |rows, chunk| {
        nn_rows_dispatch(path, a, rows, k, n, bsl, n, chunk, acc, bias);
    });
    record(t0, m, n, k);
}

/// `pre = a·b + bias`, `act = gelu(pre)` — the fused FFN epilogue. The
/// activation is applied per completed row range inside the same parallel
/// region, so `pre` rows are still cache-hot when `act` is produced.
pub fn gemm_nn_bias_gelu(
    a: &Matrix,
    b: &Matrix,
    bias: &Matrix,
    pre: &mut Matrix,
    act: &mut Matrix,
) {
    assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
    assert_eq!(bias.rows(), 1, "bias must be a row vector");
    assert_eq!(bias.cols(), b.cols(), "bias width mismatch");
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    let t0 = Instant::now();
    pre.resize_to(m, n);
    act.resize_to(m, n);
    if n == 0 || m == 0 {
        record(t0, m, n, k);
        return;
    }
    let path = active_path();
    let (mr, _) = nn_tile(path);
    let shares = plan_shares(m, mr, 2 * (m as u64) * (n as u64) * (k as u64));
    let bsl = b.as_slice();
    let bias = bias.as_slice();
    par_rows2_planned(
        m,
        n,
        mr,
        shares,
        pre.as_mut_slice(),
        act.as_mut_slice(),
        |rows, pre_chunk, act_chunk| {
            nn_rows_dispatch(path, a, rows, k, n, bsl, n, pre_chunk, false, Some(bias));
            for (av, pv) in act_chunk.iter_mut().zip(pre_chunk.iter()) {
                *av = crate::ops::gelu_scalar(*pv);
            }
        },
    );
    record(t0, m, n, k);
}

/// `out (+)= a · bᵀ` (`b` is `n×k`): independent contiguous dot products.
/// Each dot is one accumulator chain over ascending k (8-lane k-splitting
/// with a fixed reduction order on the AVX2 path).
pub fn gemm_nt(a: &Matrix, b: &Matrix, out: &mut Matrix, acc: bool) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt shape mismatch: {}x{} · ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let t0 = Instant::now();
    out.resize_to(m, n);
    if m == 0 || n == 0 {
        record(t0, m, n, k);
        return;
    }
    let path = active_path();
    let shares = plan_shares(m, MR, 2 * (m as u64) * (n as u64) * (k as u64));
    let bsl = b.as_slice();
    par_rows_planned(m, n, MR, shares, out.as_mut_slice(), |rows, chunk| {
        nt_rows_dispatch(path, a, bsl, rows, k, n, chunk, acc);
    });
    record(t0, m, n, k);
}

/// `out (+)= aᵀ · b` (`a` is `r×m`, `b` is `r×n`, `out` is `m×n`).
/// Parallelized over *output* rows (columns of `a`), so no participant ever
/// touches another's accumulators; `r` is folded in ascending order within
/// each element. The A column block is packed into a k-major strip so the
/// inner loop streams contiguously.
pub fn gemm_tn(a: &Matrix, b: &Matrix, out: &mut Matrix, acc: bool) {
    assert_eq!(
        a.rows(),
        b.rows(),
        "matmul_tn shape mismatch: ({}x{})ᵀ · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (r, m, n) = (a.rows(), a.cols(), b.cols());
    let t0 = Instant::now();
    out.resize_to(m, n);
    if m == 0 || n == 0 {
        record(t0, m, n, r);
        return;
    }
    let path = active_path();
    let (mr, _) = tn_tile(path);
    let shares = plan_shares(m, mr, 2 * (m as u64) * (n as u64) * (r as u64));
    let asl = a.as_slice();
    let bsl = b.as_slice();
    par_rows_planned(m, n, mr, shares, out.as_mut_slice(), |rows, chunk| {
        tn_rows_dispatch(path, asl, bsl, rows, r, m, n, chunk, acc);
    });
    record(t0, m, n, r);
}

// ---------------------------------------------------------------------------
// f16-storage drivers
// ---------------------------------------------------------------------------

/// `out (+)= a · b` where `b` is stored as binary16, optional fused
/// `+ bias`. Accumulation is f32; panels stream as 2 bytes/element on the
/// F16C fast path and are widened exactly at pack time otherwise, so both
/// variants compute the same function of the *decoded* B.
pub fn gemm_nn_f16(a: &Matrix, b: &HalfMatrix, out: &mut Matrix, acc: bool, bias: Option<&Matrix>) {
    assert_eq!(
        a.cols(),
        b.rows(),
        "matmul_f16 shape mismatch: {}x{} · {}x{}",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.cols());
    if let Some(bias) = bias {
        assert_eq!(bias.rows(), 1, "bias must be a row vector");
        assert_eq!(bias.cols(), n, "bias width mismatch");
    }
    let t0 = Instant::now();
    out.resize_to(m, n);
    if n == 0 || m == 0 {
        record(t0, m, n, k);
        return;
    }
    let path = active_path();
    let (mr, _) = nn_tile(path);
    let shares = plan_shares(m, mr, 2 * (m as u64) * (n as u64) * (k as u64));
    let bias = bias.map(|bm| bm.as_slice());
    #[cfg(target_arch = "x86_64")]
    if f16_fast_path() {
        let bh = b.as_bits();
        par_rows_planned(m, n, mr, shares, out.as_mut_slice(), |rows, chunk| {
            crate::simd::nn_rows_f16(a, rows, k, n, bh, n, chunk, acc, bias);
        });
        record(t0, m, n, k);
        return;
    }
    DEC_B.with(|p| {
        let mut p = p.borrow_mut();
        decode_b_f16(b.as_bits(), &mut p);
        let bsl: &[f32] = &p;
        par_rows_planned(m, n, mr, shares, out.as_mut_slice(), |rows, chunk| {
            nn_rows_dispatch(path, a, rows, k, n, bsl, n, chunk, acc, bias);
        });
    });
    record(t0, m, n, k);
}

/// `out (+)= a · bᵀ` where `b` (`n×k`) is stored as binary16 — the
/// input-gradient GEMM against half-precision weights.
pub fn gemm_nt_f16(a: &Matrix, b: &HalfMatrix, out: &mut Matrix, acc: bool) {
    assert_eq!(
        a.cols(),
        b.cols(),
        "matmul_nt_f16 shape mismatch: {}x{} · ({}x{})ᵀ",
        a.rows(),
        a.cols(),
        b.rows(),
        b.cols()
    );
    let (m, k, n) = (a.rows(), a.cols(), b.rows());
    let t0 = Instant::now();
    out.resize_to(m, n);
    if m == 0 || n == 0 {
        record(t0, m, n, k);
        return;
    }
    let path = active_path();
    let shares = plan_shares(m, MR, 2 * (m as u64) * (n as u64) * (k as u64));
    #[cfg(target_arch = "x86_64")]
    if f16_fast_path() {
        let bh = b.as_bits();
        par_rows_planned(m, n, MR, shares, out.as_mut_slice(), |rows, chunk| {
            crate::simd::nt_rows_f16(a, bh, rows, k, n, chunk, acc);
        });
        record(t0, m, n, k);
        return;
    }
    DEC_B.with(|p| {
        let mut p = p.borrow_mut();
        decode_b_f16(b.as_bits(), &mut p);
        let bsl: &[f32] = &p;
        par_rows_planned(m, n, MR, shares, out.as_mut_slice(), |rows, chunk| {
            nt_rows_dispatch(path, a, bsl, rows, k, n, chunk, acc);
        });
    });
    record(t0, m, n, k);
}

// ---------------------------------------------------------------------------
// ULP distance (test support for the SIMD/f16 tolerance gates)
// ---------------------------------------------------------------------------

/// Distance between two f32s in units of last place: 0 for equal values
/// (including `-0.0 == 0.0`), `u64::MAX` if either is NaN. The SIMD oracle
/// tests gate on this plus the classic `k·ε·(|A||B|)ᵢⱼ` forward error
/// bound.
pub fn ulp_diff(a: f32, b: f32) -> u64 {
    fn ordered(x: f32) -> i64 {
        let bits = x.to_bits();
        if bits & 0x8000_0000 != 0 {
            -((bits & 0x7fff_ffff) as i64)
        } else {
            bits as i64
        }
    }
    if a == b {
        return 0;
    }
    if a.is_nan() || b.is_nan() {
        return u64::MAX;
    }
    (ordered(a) - ordered(b)).unsigned_abs()
}

/// Reference kernels: the classic textbook loops, kept as the correctness
/// oracle for property tests and the bench baseline. Each output element is
/// a single accumulator folded over ascending k — the exact contract the
/// scalar blocked kernels reproduce bitwise (the AVX2 kernels are held to a
/// ULP gate instead; see the module docs).
pub mod naive {
    use crate::matrix::Matrix;

    /// i-j-k triple loop `a · b`.
    pub fn matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for kk in 0..a.cols() {
                    s += a[(i, kk)] * b[(kk, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// `a · bᵀ`.
    pub fn matmul_nt(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.cols(), "matmul_nt shape mismatch");
        let mut out = Matrix::zeros(a.rows(), b.rows());
        for i in 0..a.rows() {
            for j in 0..b.rows() {
                let mut s = 0.0f32;
                for kk in 0..a.cols() {
                    s += a[(i, kk)] * b[(j, kk)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// `aᵀ · b`.
    pub fn matmul_tn(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.rows(), b.rows(), "matmul_tn shape mismatch");
        let mut out = Matrix::zeros(a.cols(), b.cols());
        for i in 0..a.cols() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for kk in 0..a.rows() {
                    s += a[(kk, i)] * b[(kk, j)];
                }
                out[(i, j)] = s;
            }
        }
        out
    }

    /// `x·w + bias` with the bias added after the fold (the epilogue order
    /// the fused kernels use).
    pub fn linear(x: &Matrix, w: &Matrix, bias: &Matrix) -> Matrix {
        let mut out = matmul(x, w);
        out.add_bias(bias);
        out
    }

    /// Entry-wise `|a|·|b|` — the scale factor of the GEMM forward error
    /// bound `|computed − exact| ≤ k·ε·(|A||B|)ᵢⱼ` the SIMD gates use.
    pub fn abs_matmul(a: &Matrix, b: &Matrix) -> Matrix {
        assert_eq!(a.cols(), b.rows(), "matmul shape mismatch");
        let mut out = Matrix::zeros(a.rows(), b.cols());
        for i in 0..a.rows() {
            for j in 0..b.cols() {
                let mut s = 0.0f32;
                for kk in 0..a.cols() {
                    s += (a[(i, kk)] * b[(kk, j)]).abs();
                }
                out[(i, j)] = s;
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::rng::{Rng, StdRng};
    use std::sync::Mutex;

    fn random(rows: usize, cols: usize, rng: &mut StdRng) -> Matrix {
        Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 2.0 - 1.0)
    }

    /// Serializes tests that pin the dispatch path (results differ between
    /// paths, so concurrent tests must not flip it mid-GEMM).
    fn with_path(p: SimdPath, f: impl FnOnce()) {
        static LOCK: Mutex<()> = Mutex::new(());
        let _g = LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let prev = active_path();
        force_simd_path(p);
        f();
        force_simd_path(prev);
    }

    #[test]
    fn scalar_nn_is_bit_exact_vs_naive() {
        with_path(SimdPath::Scalar, || {
            let mut rng = StdRng::seed_from_u64(7);
            for &(m, k, n) in
                &[(1, 1, 1), (3, 5, 7), (4, 8, 8), (13, 17, 19), (64, 64, 64), (2, 100, 3)]
            {
                let a = random(m, k, &mut rng);
                let b = random(k, n, &mut rng);
                let mut out = Matrix::zeros(0, 0);
                gemm_nn(&a, &b, &mut out, false, None);
                assert_eq!(out, naive::matmul(&a, &b), "shape {m}x{k}x{n}");
            }
        });
    }

    #[test]
    fn scalar_nt_is_bit_exact_vs_naive() {
        with_path(SimdPath::Scalar, || {
            let mut rng = StdRng::seed_from_u64(8);
            for &(m, k, n) in &[(1, 1, 1), (5, 3, 9), (12, 16, 4), (33, 65, 31)] {
                let a = random(m, k, &mut rng);
                let b = random(n, k, &mut rng);
                let mut out = Matrix::zeros(0, 0);
                gemm_nt(&a, &b, &mut out, false);
                assert_eq!(out, naive::matmul_nt(&a, &b), "shape {m}x{k}x{n}");
            }
        });
    }

    #[test]
    fn scalar_tn_is_bit_exact_vs_naive() {
        with_path(SimdPath::Scalar, || {
            let mut rng = StdRng::seed_from_u64(9);
            for &(r, m, n) in &[(1, 1, 1), (6, 5, 3), (17, 13, 23), (50, 9, 40)] {
                let a = random(r, m, &mut rng);
                let b = random(r, n, &mut rng);
                let mut out = Matrix::zeros(0, 0);
                gemm_tn(&a, &b, &mut out, false);
                assert_eq!(out, naive::matmul_tn(&a, &b), "shape {r}x{m}x{n}");
            }
        });
    }

    #[test]
    fn acc_mode_adds_on_top() {
        with_path(SimdPath::Scalar, || {
            let mut rng = StdRng::seed_from_u64(10);
            let a = random(9, 11, &mut rng);
            let b = random(11, 7, &mut rng);
            let seed = random(9, 7, &mut rng);
            let mut out = seed.clone();
            gemm_nn(&a, &b, &mut out, true, None);
            for i in 0..out.len() {
                // acc seeds the fold with the prior value instead of 0.0; the
                // fold order within k is unchanged, so this stays exact.
                let mut s = seed.as_slice()[i];
                let (r, c) = (i / 7, i % 7);
                for kk in 0..11 {
                    s += a[(r, kk)] * b[(kk, c)];
                }
                assert_eq!(out.as_slice()[i], s);
            }
        });
    }

    #[test]
    fn fused_bias_gelu_matches_unfused() {
        with_path(SimdPath::Scalar, || {
            let mut rng = StdRng::seed_from_u64(11);
            let x = random(10, 6, &mut rng);
            let w = random(6, 14, &mut rng);
            let bias = random(1, 14, &mut rng);
            let mut pre = Matrix::zeros(0, 0);
            let mut act = Matrix::zeros(0, 0);
            gemm_nn_bias_gelu(&x, &w, &bias, &mut pre, &mut act);
            let expect_pre = naive::linear(&x, &w, &bias);
            assert_eq!(pre, expect_pre);
            let expect_act = crate::ops::gelu(&expect_pre);
            assert_eq!(act, expect_act);
        });
    }

    #[test]
    fn empty_shapes_are_fine() {
        let a = Matrix::zeros(0, 5);
        let b = Matrix::zeros(5, 3);
        let mut out = Matrix::zeros(1, 1);
        gemm_nn(&a, &b, &mut out, false, None);
        assert_eq!((out.rows(), out.cols()), (0, 3));
        let a = Matrix::zeros(4, 0);
        let b = Matrix::zeros(0, 3);
        gemm_nn(&a, &b, &mut out, false, None);
        assert_eq!(out, Matrix::zeros(4, 3), "k=0 means a zero fold");
    }

    #[test]
    fn counters_advance() {
        // Under the path lock: b_packs is process-global and the only other
        // writers are f16 fallback calls, which all run under `with_path`.
        with_path(SimdPath::Scalar, || {
            let before = kernel_stats();
            let a = Matrix::zeros(8, 8);
            let b = Matrix::zeros(8, 8);
            let mut out = Matrix::zeros(0, 0);
            gemm_nn(&a, &b, &mut out, false, None);
            let after = kernel_stats();
            assert!(after.gemm_flops >= before.gemm_flops + 2 * 8 * 8 * 8);
            assert_eq!(after.b_packs, before.b_packs, "f32 nn reads B in place — no prep pass");
            // The f16 fallback is the one path that still prepares B (a
            // decode pass, exactly once per call).
            let bh = crate::half::HalfMatrix::from_matrix(&b);
            gemm_nn_f16(&a, &bh, &mut out, false, None);
            assert_eq!(kernel_stats().b_packs, after.b_packs + 1, "f16 fallback decodes B once");
        });
    }

    #[test]
    fn cost_model_gates_small_shapes_sequential() {
        // 64×64×128 = 1 MFLOP — far below any sane per-share minimum; with a
        // multi-thread budget the gate must still choose 1 share and count
        // the fallback.
        let _g = crate::pool::TEST_POOL_LOCK.lock().unwrap_or_else(|e| e.into_inner());
        let before = crate::pool::current_threads();
        crate::pool::set_threads(8);
        set_hardware_parallelism(8);
        let small = plan_shares(64, MR, 2 * 64 * 64 * 128);
        assert_eq!(small, 1, "tiny GEMM must not be split");
        let fell_back = kernel_stats().seq_fallback;
        let _ = plan_shares(64, MR, 2 * 64 * 64 * 128);
        assert!(kernel_stats().seq_fallback > fell_back, "gated call counts as seq_fallback");
        // A big GEMM gets more shares, but never more than the budget or
        // what the per-share minimum allows.
        let big_flops = 2u64 * 128 * 768 * 3072;
        let big = plan_shares(128, MR, big_flops);
        assert!(big > 1, "large GEMM should parallelize");
        assert!(big as u64 <= big_flops / min_flops_per_share() + 1);
        // On a host with a single core the hardware cap wins regardless of
        // the thread budget: oversubscribed shares can't run concurrently.
        set_hardware_parallelism(1);
        assert_eq!(plan_shares(128, MR, big_flops), 1, "1-core host never splits");
        set_hardware_parallelism(0);
        crate::pool::set_threads(before);
    }

    #[test]
    fn ulp_diff_basics() {
        assert_eq!(ulp_diff(1.0, 1.0), 0);
        assert_eq!(ulp_diff(0.0, -0.0), 0);
        assert_eq!(ulp_diff(1.0, f32::from_bits(1.0f32.to_bits() + 1)), 1);
        assert_eq!(ulp_diff(-1.0, f32::from_bits((-1.0f32).to_bits() + 1)), 1);
        assert_eq!(ulp_diff(f32::NAN, 1.0), u64::MAX);
        // Straddling zero: distance is the sum of distances to zero.
        let tiny = f32::from_bits(1);
        assert_eq!(ulp_diff(tiny, -tiny), 2);
    }

    #[test]
    fn f16_gemm_matches_decoded_oracle_on_scalar_path() {
        // On the widen-at-pack path the f16 GEMM is *bitwise* the f32 GEMM
        // over the decoded B (decode is exact, fold identical).
        with_path(SimdPath::Scalar, || {
            let mut rng = StdRng::seed_from_u64(12);
            for &(m, k, n) in &[(1usize, 1usize, 1usize), (5, 7, 9), (13, 20, 17)] {
                let a = random(m, k, &mut rng);
                let b = random(k, n, &mut rng);
                let bh = HalfMatrix::from_matrix(&b);
                let bdec = bh.to_matrix();
                let mut got = Matrix::zeros(0, 0);
                gemm_nn_f16(&a, &bh, &mut got, false, None);
                assert_eq!(got, naive::matmul(&a, &bdec), "nn f16 {m}x{k}x{n}");
                let bt = random(n, k, &mut rng);
                let bth = HalfMatrix::from_matrix(&bt);
                let btdec = bth.to_matrix();
                gemm_nt_f16(&a, &bth, &mut got, false);
                assert_eq!(got, naive::matmul_nt(&a, &btdec), "nt f16 {m}x{k}x{n}");
            }
        });
    }
}
