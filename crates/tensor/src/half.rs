//! IEEE-754 binary16 ("f16") storage: scalar conversions and a half-precision
//! matrix container for the f16-storage / f32-accumulate GEMM path.
//!
//! SYMI's wire protocol already ships expert weights as fp16 (2 B/param), and
//! the Adam optimizer publishes parameters *on the fp16 grid* (each published
//! value round-trips f32→f16→f32 losslessly). [`HalfMatrix`] lets those
//! weights also *live* in half precision on the compute side: the GEMM
//! kernels stream 2-byte weight panels and widen to f32 only inside the
//! microkernel registers (see `kernels::gemm_nn_f16` / `gemm_nt_f16`),
//! halving the memory traffic of the bandwidth-bound weight-stationary GEMMs
//! while every accumulation still happens in f32.
//!
//! The scalar conversions here are the canonical ones for the whole
//! workspace (the wire codec and baselines re-use them through the `adam`
//! re-exports): round-to-nearest-even on encode, exact on decode.

use crate::matrix::Matrix;

/// Rounds an `f32` through IEEE-754 binary16 and back — the model weights in
/// SYMI live in fp16 on the accelerator while the optimizer keeps fp32
/// masters, and this models that quantization loss.
pub fn quantize_f16(x: f32) -> f32 {
    f16_to_f32(f32_to_f16(x))
}

/// `f32` → IEEE-754 binary16 bits, round-to-nearest-even.
pub fn f32_to_f16(x: f32) -> u16 {
    let bits = x.to_bits();
    let sign = ((bits >> 16) & 0x8000) as u16;
    let exp = ((bits >> 23) & 0xff) as i32;
    let mant = bits & 0x007f_ffff;

    if exp == 0xff {
        // Inf or NaN.
        let nan_bit = if mant != 0 { 0x0200 } else { 0 };
        return sign | 0x7c00 | nan_bit;
    }
    let unbiased = exp - 127;
    if unbiased > 15 {
        return sign | 0x7c00; // overflow → inf
    }
    if unbiased >= -14 {
        // Normal half.
        let half_exp = ((unbiased + 15) as u16) << 10;
        let half_mant = (mant >> 13) as u16;
        let round_bit = (mant >> 12) & 1;
        let sticky = mant & 0x0fff;
        let mut h = sign | half_exp | half_mant;
        if round_bit == 1 && (sticky != 0 || (half_mant & 1) == 1) {
            h += 1; // may carry into the exponent, which is correct behaviour
        }
        return h;
    }
    if unbiased >= -24 {
        // Subnormal half.
        let full_mant = mant | 0x0080_0000;
        let shift = (-unbiased - 14 + 13) as u32;
        let half_mant = (full_mant >> shift) as u16;
        let round = (full_mant >> (shift - 1)) & 1;
        let sticky = full_mant & ((1u32 << (shift - 1)) - 1);
        let mut h = sign | half_mant;
        if round == 1 && (sticky != 0 || (half_mant & 1) == 1) {
            h += 1;
        }
        return h;
    }
    sign // underflow → signed zero
}

/// IEEE-754 binary16 bits → `f32`.
pub fn f16_to_f32(h: u16) -> f32 {
    let sign = ((h & 0x8000) as u32) << 16;
    let exp = ((h >> 10) & 0x1f) as u32;
    let mant = (h & 0x03ff) as u32;
    let bits = if exp == 0 {
        if mant == 0 {
            sign
        } else {
            // Subnormal: renormalize. After s left-shifts the value is
            // 1.f x 2^(-14 - s), i.e. e = -s below the minimum normal.
            let mut e = 0i32;
            let mut m = mant;
            while m & 0x0400 == 0 {
                m <<= 1;
                e -= 1;
            }
            m &= 0x03ff;
            sign | (((127 - 15 + e + 1) as u32) << 23) | (m << 13)
        }
    } else if exp == 0x1f {
        sign | 0x7f80_0000 | (mant << 13)
    } else {
        sign | ((exp + 127 - 15) << 23) | (mant << 13)
    };
    f32::from_bits(bits)
}

/// A dense, row-major matrix stored as IEEE-754 binary16 bits.
///
/// This is a *storage* format: arithmetic always widens to f32 (decode is
/// exact), so a `HalfMatrix` built from weights that already sit on the fp16
/// grid — everything the SYMI optimizer publishes — reproduces the same f32
/// values bit-for-bit. Values off the grid round-to-nearest-even on encode.
#[derive(Clone, PartialEq, Debug)]
pub struct HalfMatrix {
    rows: usize,
    cols: usize,
    data: Vec<u16>,
}

impl HalfMatrix {
    /// A `rows × cols` matrix of (+0.0) zeros.
    pub fn zeros(rows: usize, cols: usize) -> Self {
        Self { rows, cols, data: vec![0u16; rows * cols] }
    }

    /// Encodes an f32 matrix (round-to-nearest-even per element).
    pub fn from_matrix(m: &Matrix) -> Self {
        let mut out = Self::zeros(0, 0);
        out.encode_from(m);
        out
    }

    /// Re-encodes `m` into `self`, reusing the allocation.
    pub fn encode_from(&mut self, m: &Matrix) {
        self.rows = m.rows();
        self.cols = m.cols();
        self.data.clear();
        self.data.extend(m.as_slice().iter().map(|&v| f32_to_f16(v)));
    }

    /// Decodes to an f32 matrix (exact).
    pub fn to_matrix(&self) -> Matrix {
        Matrix::from_vec(self.rows, self.cols, self.data.iter().map(|&h| f16_to_f32(h)).collect())
    }

    pub fn rows(&self) -> usize {
        self.rows
    }

    pub fn cols(&self) -> usize {
        self.cols
    }

    pub fn len(&self) -> usize {
        self.data.len()
    }

    pub fn is_empty(&self) -> bool {
        self.data.is_empty()
    }

    /// Raw binary16 bits, row-major.
    pub fn as_bits(&self) -> &[u16] {
        &self.data
    }

    /// Element `(r, c)` widened to f32.
    pub fn get(&self, r: usize, c: usize) -> f32 {
        debug_assert!(r < self.rows && c < self.cols);
        f16_to_f32(self.data[r * self.cols + c])
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn encode_decode_round_trip_is_quantize() {
        let m = Matrix::from_fn(7, 5, |r, c| ((r * 5 + c) as f32 * 0.137).sin() * 3.0);
        let h = HalfMatrix::from_matrix(&m);
        let back = h.to_matrix();
        for (a, b) in m.as_slice().iter().zip(back.as_slice()) {
            assert_eq!(*b, quantize_f16(*a));
        }
    }

    #[test]
    fn grid_values_round_trip_exactly() {
        // Values already on the fp16 grid (what the optimizer publishes)
        // must survive storage bit-for-bit.
        let m = Matrix::from_fn(4, 4, |r, c| quantize_f16((r as f32 - 1.5) * 0.31 + c as f32));
        let h = HalfMatrix::from_matrix(&m);
        assert_eq!(h.to_matrix(), m);
    }

    #[test]
    fn encode_from_reuses_and_resizes() {
        let mut h = HalfMatrix::zeros(2, 2);
        let m = Matrix::from_fn(3, 5, |r, c| (r + c) as f32);
        h.encode_from(&m);
        assert_eq!((h.rows(), h.cols()), (3, 5));
        assert_eq!(h.get(2, 4), 6.0);
    }
}
