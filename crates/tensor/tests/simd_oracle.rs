//! SIMD-vs-naive-oracle accuracy gate.
//!
//! The scalar kernel family is bitwise-equal to the naive oracle (pinned in
//! `kernel_properties.rs`). The AVX2 family uses FMA and, for `nt`, 8-lane
//! k-splitting, so its results legitimately differ from the oracle — but
//! only within classical floating-point error bounds. These tests hold the
//! *active* path (whatever the host resolves to) to an explicit gate:
//!
//! > an element passes if it is within [`MAX_ULPS`] ULPs of the oracle, OR
//! > within the forward error bound `C·k·ε·(|A||B|)ᵢⱼ`.
//!
//! The sweep covers random shapes plus deliberate microkernel remainder
//! edges (row counts around the 6-row MR, widths around the 16-wide NR),
//! `k = 0`, accumulate mode, operand aliasing (`x·x` with the bias taken
//! from `x` itself), and the f16-storage GEMMs against an oracle over the
//! exactly-decoded weights. A forced-scalar test keeps the fallback family
//! exercised in this binary on every host (CI additionally runs the whole
//! suite under `SYMI_SIMD=scalar`).

use std::sync::{Mutex, MutexGuard};
use symi_tensor::kernels::{self, naive, ulp_diff, SimdPath};
use symi_tensor::pool;
use symi_tensor::rng::{Rng, StdRng};
use symi_tensor::{HalfMatrix, Matrix};

/// ULP slack before falling back to the analytic error bound. FMA vs
/// mul-then-add perturbs each partial sum by at most half an ULP, so real
/// differences concentrate at 0–2 ULPs; 8 keeps the gate meaningfully tight.
const MAX_ULPS: u64 = 8;

static GLOBALS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 4.0 - 2.0)
}

/// Gate: every element within `MAX_ULPS` of the oracle or within the
/// componentwise GEMM forward error bound scaled by `(|A||B|)ᵢⱼ`.
fn assert_within_gate(got: &Matrix, oracle: &Matrix, absbound: &Matrix, k: usize, label: &str) {
    assert_eq!((got.rows(), got.cols()), (oracle.rows(), oracle.cols()), "{label}: shape");
    for (i, ((&g, &w), &ab)) in
        got.as_slice().iter().zip(oracle.as_slice()).zip(absbound.as_slice()).enumerate()
    {
        let ulps = ulp_diff(g, w);
        if ulps <= MAX_ULPS {
            continue;
        }
        let bound = 4.0 * (k.max(1) as f32) * f32::EPSILON * ab + f32::MIN_POSITIVE;
        assert!(
            (g - w).abs() <= bound,
            "{label}: element {i} off by {} (got {g}, oracle {w}, {ulps} ulps, bound {bound})",
            (g - w).abs()
        );
    }
}

/// Shape list: microkernel remainder edges around MR=6 rows / NR=16 panel
/// width (and the scalar 4/8 tiles), k = 0, primes, plus k around the
/// nt octet width 8.
fn edge_shapes() -> Vec<(usize, usize, usize)> {
    let mut shapes = vec![
        (1, 1, 1),
        (6, 8, 16),    // exact AVX2 nn tile
        (5, 8, 16),    // row remainder under MR
        (7, 8, 16),    // one row over MR
        (12, 9, 32),   // multiple full tiles
        (13, 9, 31),   // row + column remainder
        (6, 8, 15),    // column remainder under NR
        (6, 8, 17),    // one column over NR
        (4, 7, 8),     // exact scalar tile
        (3, 0, 5),     // k = 0: zero fold
        (9, 1, 9),     // k = 1
        (8, 7, 8),     // k just under the nt octet
        (8, 8, 8),     // k exactly one octet
        (8, 9, 8),     // k one past an octet
        (23, 129, 19), // prime-ish, k crosses many octets
    ];
    let mut rng = StdRng::seed_from_u64(42);
    for _ in 0..25 {
        shapes.push((
            1 + (rng.gen::<u32>() as usize) % 64,
            (rng.gen::<u32>() as usize) % 96,
            1 + (rng.gen::<u32>() as usize) % 48,
        ));
    }
    shapes
}

#[test]
fn active_path_nn_within_ulp_gate_of_oracle() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(601);
    for (m, k, n) in edge_shapes() {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let got = a.matmul(&b);
        let oracle = naive::matmul(&a, &b);
        let absb = naive::abs_matmul(&a, &b);
        assert_within_gate(&got, &oracle, &absb, k, &format!("nn {m}x{k}x{n}"));
    }
}

#[test]
fn active_path_nt_within_ulp_gate_of_oracle() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(602);
    for (m, k, n) in edge_shapes() {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, n, k);
        let got = a.matmul_nt(&b);
        let oracle = naive::matmul_nt(&a, &b);
        let absb = naive::abs_matmul(&a, &b.transpose());
        assert_within_gate(&got, &oracle, &absb, k, &format!("nt {m}x{k}x{n}"));
    }
}

#[test]
fn active_path_tn_within_ulp_gate_of_oracle() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(603);
    for (m, k, n) in edge_shapes() {
        // Here k plays the reduction role r: a is r×m, b is r×n.
        let a = random_matrix(&mut rng, k, m);
        let b = random_matrix(&mut rng, k, n);
        let got = a.matmul_tn(&b);
        let oracle = naive::matmul_tn(&a, &b);
        let absb = naive::abs_matmul(&a.transpose(), &b);
        assert_within_gate(&got, &oracle, &absb, k, &format!("tn {m}x{k}x{n}"));
    }
}

#[test]
fn accumulate_mode_within_gate() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(604);
    for &(m, k, n) in &[(6usize, 8usize, 16usize), (13, 21, 17), (5, 8, 33)] {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let seed = random_matrix(&mut rng, m, n);
        let mut got = seed.clone();
        kernels::gemm_nn(&a, &b, &mut got, true, None);
        // Oracle: seed + naive product, with the seed folded first (the
        // kernels start the accumulator at the prior value).
        let oracle = Matrix::from_fn(m, n, |i, j| {
            let mut s = seed[(i, j)];
            for kk in 0..k {
                s += a[(i, kk)] * b[(kk, j)];
            }
            s
        });
        let mut absb = naive::abs_matmul(&a, &b);
        for (abv, sv) in absb.as_mut_slice().iter_mut().zip(seed.as_slice()) {
            *abv += sv.abs();
        }
        assert_within_gate(&got, &oracle, &absb, k + 1, &format!("acc {m}x{k}x{n}"));
    }
}

#[test]
fn aliased_operands_and_bias_within_gate() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(605);
    // x·x with bias taken from x's own first row: operand aliasing must not
    // disturb packing (B is snapshotted into the pack before any writes).
    for &d in &[6usize, 16, 31] {
        let x = random_matrix(&mut rng, d, d);
        let bias = Matrix::from_fn(1, d, |_, j| x[(0, j)]);
        let mut got = Matrix::zeros(0, 0);
        kernels::gemm_nn(&x, &x, &mut got, false, Some(&bias));
        let mut oracle = naive::matmul(&x, &x);
        oracle.add_bias(&bias);
        let mut absb = naive::abs_matmul(&x, &x);
        for (abv, j) in absb.as_mut_slice().iter_mut().zip((0..d).cycle()) {
            *abv += x[(0, j)].abs();
        }
        assert_within_gate(&got, &oracle, &absb, d + 1, &format!("aliased {d}x{d}"));
    }
}

#[test]
fn f16_storage_gemms_within_gate_of_decoded_oracle() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(606);
    for (m, k, n) in edge_shapes() {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let bh = HalfMatrix::from_matrix(&b);
        let bdec = bh.to_matrix();
        let mut got = Matrix::zeros(0, 0);
        kernels::gemm_nn_f16(&a, &bh, &mut got, false, None);
        let oracle = naive::matmul(&a, &bdec);
        let absb = naive::abs_matmul(&a, &bdec);
        assert_within_gate(&got, &oracle, &absb, k, &format!("f16 nn {m}x{k}x{n}"));

        let bt = random_matrix(&mut rng, n, k);
        let bth = HalfMatrix::from_matrix(&bt);
        let btdec = bth.to_matrix();
        kernels::gemm_nt_f16(&a, &bth, &mut got, false);
        let oracle = naive::matmul_nt(&a, &btdec);
        let absb = naive::abs_matmul(&a, &btdec.transpose());
        assert_within_gate(&got, &oracle, &absb, k, &format!("f16 nt {m}x{k}x{n}"));
    }
}

#[test]
fn f16_bias_epilogue_matches_f32_bias_epilogue() {
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(607);
    let a = random_matrix(&mut rng, 11, 14);
    let b = random_matrix(&mut rng, 14, 19);
    let bias = random_matrix(&mut rng, 1, 19);
    let bh = HalfMatrix::from_matrix(&b);
    let bdec = bh.to_matrix();
    let mut got = Matrix::zeros(0, 0);
    kernels::gemm_nn_f16(&a, &bh, &mut got, false, Some(&bias));
    let mut plain = Matrix::zeros(0, 0);
    kernels::gemm_nn(&a, &bdec, &mut plain, false, Some(&bias));
    // Same path, same decoded values → identical epilogue and fold.
    assert_eq!(got.as_slice(), plain.as_slice(), "f16+bias vs f32-over-decoded+bias");
}

#[test]
fn gate_holds_when_pool_actually_splits() {
    // Re-run a mid shape with a floor-level cost gate and a multi-thread
    // budget so the parallel dispatch path (not just inline p=1) is gated.
    let _g = lock();
    let before = pool::current_threads();
    kernels::set_flops_per_share(1);
    pool::set_threads(8);
    let mut rng = StdRng::seed_from_u64(608);
    let a = random_matrix(&mut rng, 61, 33);
    let b = random_matrix(&mut rng, 33, 47);
    let got = a.matmul(&b);
    kernels::set_flops_per_share(kernels::DEFAULT_FLOPS_PER_SHARE);
    pool::set_threads(before);
    let oracle = naive::matmul(&a, &b);
    let absb = naive::abs_matmul(&a, &b);
    assert_within_gate(&got, &oracle, &absb, 33, "split nn 61x33x47");
}

#[test]
fn forced_scalar_fallback_is_bitwise_exact() {
    // Guarantees the non-AVX2 family is exercised on every host: force the
    // scalar path and require full bit equality with the oracle.
    let _g = lock();
    let prev = kernels::active_path();
    kernels::force_simd_path(SimdPath::Scalar);
    let mut rng = StdRng::seed_from_u64(609);
    for &(m, k, n) in &[(6usize, 8usize, 16usize), (13, 29, 17), (1, 1, 1), (3, 0, 5)] {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        assert_eq!(
            a.matmul(&b).as_slice(),
            naive::matmul(&a, &b).as_slice(),
            "forced scalar nn {m}x{k}x{n}"
        );
    }
    kernels::force_simd_path(prev);
}
