//! Randomized property tests for the tensor kernels, driven by the internal
//! `symi_tensor::rng` generator (fixed seeds, so failures reproduce).

use symi_tensor::adam::{f16_to_f32, f32_to_f16, quantize_f16};
use symi_tensor::ops::{cross_entropy, softmax_rows};
use symi_tensor::rng::{Rng, StdRng};
use symi_tensor::Matrix;

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 20.0 - 10.0)
}

#[test]
fn matmul_is_distributive_over_addition() {
    let mut rng = StdRng::seed_from_u64(101);
    for _ in 0..64 {
        let a = random_matrix(&mut rng, 3, 4);
        let b = random_matrix(&mut rng, 4, 5);
        let c = random_matrix(&mut rng, 4, 5);
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        assert!(left.max_abs_diff(&right) < 1e-2);
    }
}

#[test]
fn matmul_nt_agrees_with_explicit_transpose() {
    let mut rng = StdRng::seed_from_u64(102);
    for _ in 0..64 {
        let a = random_matrix(&mut rng, 4, 6);
        let b = random_matrix(&mut rng, 3, 6);
        assert!(a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose())) < 1e-3);
    }
}

#[test]
fn matmul_tn_agrees_with_explicit_transpose() {
    let mut rng = StdRng::seed_from_u64(103);
    for _ in 0..64 {
        let a = random_matrix(&mut rng, 5, 3);
        let b = random_matrix(&mut rng, 5, 4);
        assert!(a.matmul_tn(&b).max_abs_diff(&a.transpose().matmul(&b)) < 1e-3);
    }
}

#[test]
fn softmax_rows_are_probability_distributions() {
    let mut rng = StdRng::seed_from_u64(104);
    for _ in 0..64 {
        let m = random_matrix(&mut rng, 4, 7);
        let y = softmax_rows(&m);
        for r in 0..y.rows() {
            let sum: f32 = y.row(r).iter().sum();
            assert!((sum - 1.0).abs() < 1e-4);
            assert!(y.row(r).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }
}

#[test]
fn softmax_preserves_argmax() {
    let mut rng = StdRng::seed_from_u64(105);
    for _ in 0..64 {
        let m = random_matrix(&mut rng, 3, 6);
        let y = softmax_rows(&m);
        for r in 0..m.rows() {
            let arg_in =
                m.row(r).iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            let arg_out =
                y.row(r).iter().enumerate().max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            assert_eq!(arg_in, arg_out);
        }
    }
}

#[test]
fn cross_entropy_is_nonnegative() {
    let mut rng = StdRng::seed_from_u64(106);
    for _ in 0..64 {
        let m = random_matrix(&mut rng, 5, 8);
        let targets: Vec<usize> = (0..5).map(|_| rng.gen_range(0..8usize)).collect();
        let (loss, grad) = cross_entropy(&m, &targets);
        assert!(loss >= 0.0);
        // Softmax-CE gradient rows each sum to ~0 (prob mass minus one-hot).
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            assert!(s.abs() < 1e-4);
        }
    }
}

#[test]
fn f16_round_trip_is_idempotent() {
    let mut rng = StdRng::seed_from_u64(107);
    for _ in 0..512 {
        let x = rng.gen::<f32>() * 140_000.0 - 70_000.0;
        let once = quantize_f16(x);
        let twice = quantize_f16(once);
        assert_eq!(once.to_bits(), twice.to_bits());
    }
}

#[test]
fn f16_bits_round_trip() {
    // Every f16 bit pattern (except NaNs, which keep NaN-ness) must survive
    // f16 -> f32 -> f16 unchanged. Small enough to test exhaustively.
    for bits in 0..=u16::MAX {
        let f = f16_to_f32(bits);
        let back = f32_to_f16(f);
        if f.is_nan() {
            assert!(f16_to_f32(back).is_nan());
        } else {
            assert_eq!(bits, back);
        }
    }
}

#[test]
fn transpose_preserves_frobenius_norm() {
    let mut rng = StdRng::seed_from_u64(108);
    for _ in 0..64 {
        let m = random_matrix(&mut rng, 4, 5);
        assert!((m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-3);
    }
}
