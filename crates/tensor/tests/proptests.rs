//! Property-based tests for the tensor kernels.

use proptest::prelude::*;
use symi_tensor::adam::{f16_to_f32, f32_to_f16, quantize_f16};
use symi_tensor::ops::{cross_entropy, softmax_rows};
use symi_tensor::Matrix;

fn small_matrix(rows: usize, cols: usize) -> impl Strategy<Value = Matrix> {
    prop::collection::vec(-10.0f32..10.0, rows * cols)
        .prop_map(move |v| Matrix::from_vec(rows, cols, v))
}

proptest! {
    #[test]
    fn matmul_is_distributive_over_addition(
        a in small_matrix(3, 4),
        b in small_matrix(4, 5),
        c in small_matrix(4, 5),
    ) {
        let left = a.matmul(&b.add(&c));
        let right = a.matmul(&b).add(&a.matmul(&c));
        prop_assert!(left.max_abs_diff(&right) < 1e-2);
    }

    #[test]
    fn matmul_nt_agrees_with_explicit_transpose(
        a in small_matrix(4, 6),
        b in small_matrix(3, 6),
    ) {
        prop_assert!(a.matmul_nt(&b).max_abs_diff(&a.matmul(&b.transpose())) < 1e-3);
    }

    #[test]
    fn matmul_tn_agrees_with_explicit_transpose(
        a in small_matrix(5, 3),
        b in small_matrix(5, 4),
    ) {
        prop_assert!(a.matmul_tn(&b).max_abs_diff(&a.transpose().matmul(&b)) < 1e-3);
    }

    #[test]
    fn softmax_rows_are_probability_distributions(m in small_matrix(4, 7)) {
        let y = softmax_rows(&m);
        for r in 0..y.rows() {
            let sum: f32 = y.row(r).iter().sum();
            prop_assert!((sum - 1.0).abs() < 1e-4);
            prop_assert!(y.row(r).iter().all(|&p| (0.0..=1.0 + 1e-6).contains(&p)));
        }
    }

    #[test]
    fn softmax_preserves_argmax(m in small_matrix(3, 6)) {
        let y = softmax_rows(&m);
        for r in 0..m.rows() {
            let arg_in = m.row(r).iter().enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            let arg_out = y.row(r).iter().enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).unwrap()).unwrap().0;
            prop_assert_eq!(arg_in, arg_out);
        }
    }

    #[test]
    fn cross_entropy_is_nonnegative(
        m in small_matrix(5, 8),
        targets in prop::collection::vec(0usize..8, 5),
    ) {
        let (loss, grad) = cross_entropy(&m, &targets);
        prop_assert!(loss >= 0.0);
        // Softmax-CE gradient rows each sum to ~0 (prob mass minus one-hot).
        for r in 0..grad.rows() {
            let s: f32 = grad.row(r).iter().sum();
            prop_assert!(s.abs() < 1e-4);
        }
    }

    #[test]
    fn f16_round_trip_is_idempotent(x in -70000.0f32..70000.0) {
        let once = quantize_f16(x);
        let twice = quantize_f16(once);
        prop_assert_eq!(once.to_bits(), twice.to_bits());
    }

    #[test]
    fn f16_bits_round_trip(bits in any::<u16>()) {
        // Every f16 bit pattern (except NaNs, which keep NaN-ness) must
        // survive f16 -> f32 -> f16 unchanged.
        let f = f16_to_f32(bits);
        let back = f32_to_f16(f);
        if f.is_nan() {
            prop_assert!(f16_to_f32(back).is_nan());
        } else {
            prop_assert_eq!(bits, back);
        }
    }

    #[test]
    fn transpose_preserves_frobenius_norm(m in small_matrix(4, 5)) {
        prop_assert!((m.frobenius_norm() - m.transpose().frobenius_norm()).abs() < 1e-3);
    }
}
