//! Regression test for silent `SYMI_THREADS` misconfiguration: an invalid
//! value used to be swallowed by `.ok()?`, leaving the operator convinced
//! they had pinned the thread count when the pool had actually sized
//! itself from the machine.
//!
//! This file deliberately holds exactly ONE test: the global pool latches
//! its configuration on first use, and a process-wide env var cannot be
//! raced by sibling tests. A dedicated integration binary gives us a fresh
//! process whose first pool touch happens below.

#[test]
fn invalid_symi_threads_is_flagged_and_falls_back() {
    std::env::set_var("SYMI_THREADS", "abc");
    let stats = symi_tensor::pool::stats();
    assert!(
        stats.env_invalid,
        "an unparseable SYMI_THREADS must be surfaced via PoolStats, not ignored"
    );
    assert!(stats.threads >= 1, "the pool still comes up on the fallback size");

    // The pool stays usable after the misconfiguration.
    let mut out = vec![0.0f32; 64];
    symi_tensor::pool::par_rows(8, 8, 1, &mut out, |rows, chunk| {
        for (local, r) in rows.clone().enumerate() {
            for c in 0..8 {
                chunk[local * 8 + c] = (r * 8 + c) as f32;
            }
        }
    });
    for (i, v) in out.iter().enumerate() {
        assert_eq!(*v, i as f32);
    }
}
