//! Determinism properties of the blocked/threaded GEMM kernels.
//!
//! Two contracts (see `symi_tensor::kernels`):
//!
//! 1. The **scalar** kernel family equals the naive i-j-k oracle *bitwise* —
//!    every output element is one accumulator folded over `k` ascending, for
//!    every shape, tile-edge case, and worker count. Those tests pin
//!    `SimdPath::Scalar`.
//! 2. Whatever family is **active** (AVX2 on capable hosts), results are
//!    bit-identical across worker counts and across repeated runs: the
//!    tile decomposition is a global property of the shape (block-aligned
//!    share bounds), never of the split. Those tests run the detected path
//!    and force the cost-model gate low so the pool really splits.
//!
//! Path pinning and `set_threads`/`set_flops_per_share` rewire process
//! globals, so every test in this binary serializes on one mutex.
//! (SIMD-vs-oracle *accuracy* is gated separately in `simd_oracle.rs`.)

use std::sync::{Mutex, MutexGuard};
use symi_tensor::kernels::{self, naive, SimdPath};
use symi_tensor::ops::{gelu, softmax_rows};
use symi_tensor::pool;
use symi_tensor::rng::{Rng, StdRng};
use symi_tensor::{HalfMatrix, Matrix};

static GLOBALS: Mutex<()> = Mutex::new(());

fn lock() -> MutexGuard<'static, ()> {
    GLOBALS.lock().unwrap_or_else(|e| e.into_inner())
}

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 4.0 - 2.0)
}

/// Shapes chosen to hit every tile-edge path: unit, sub-tile, exact-tile,
/// prime (never tile-aligned), tall/thin, short/wide, and empty extents.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (2, 3, 5),
    (3, 1, 7),
    (4, 8, 8),
    (5, 5, 5),
    (6, 16, 16),
    (7, 11, 13),
    (17, 19, 23),
    (97, 3, 5),
    (2, 3, 89),
    (61, 1, 1),
    (1, 64, 1),
    (0, 4, 4),
    (4, 0, 4),
    (4, 4, 0),
];

fn with_scalar(f: impl FnOnce()) {
    let _g = lock();
    let prev = kernels::active_path();
    kernels::force_simd_path(SimdPath::Scalar);
    f();
    kernels::force_simd_path(prev);
}

#[test]
fn scalar_gemm_nn_is_bitwise_equal_to_naive_oracle() {
    with_scalar(|| {
        let mut rng = StdRng::seed_from_u64(501);
        for &(m, k, n) in SHAPES {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let blocked = a.matmul(&b);
            let oracle = naive::matmul(&a, &b);
            assert_eq!(blocked.as_slice(), oracle.as_slice(), "nn mismatch at {m}x{k}x{n}");
        }
    });
}

#[test]
fn scalar_gemm_nt_is_bitwise_equal_to_naive_oracle() {
    with_scalar(|| {
        let mut rng = StdRng::seed_from_u64(502);
        for &(m, k, n) in SHAPES {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, n, k);
            let blocked = a.matmul_nt(&b);
            let oracle = naive::matmul_nt(&a, &b);
            assert_eq!(blocked.as_slice(), oracle.as_slice(), "nt mismatch at {m}x{k}x{n}");
        }
    });
}

#[test]
fn scalar_gemm_tn_is_bitwise_equal_to_naive_oracle() {
    with_scalar(|| {
        let mut rng = StdRng::seed_from_u64(503);
        for &(m, k, n) in SHAPES {
            let a = random_matrix(&mut rng, k, m);
            let b = random_matrix(&mut rng, k, n);
            let blocked = a.matmul_tn(&b);
            let oracle = naive::matmul_tn(&a, &b);
            assert_eq!(blocked.as_slice(), oracle.as_slice(), "tn mismatch at {m}x{k}x{n}");
        }
    });
}

#[test]
fn scalar_fused_linear_gelu_is_bitwise_equal_to_unfused_pipeline() {
    with_scalar(|| {
        let mut rng = StdRng::seed_from_u64(504);
        for &(m, k, n) in &[(1usize, 1usize, 1usize), (7, 11, 13), (33, 17, 9)] {
            let x = random_matrix(&mut rng, m, k);
            let w = random_matrix(&mut rng, k, n);
            let bias = random_matrix(&mut rng, 1, n);
            let mut pre = Matrix::zeros(0, 0);
            let mut act = Matrix::zeros(0, 0);
            symi_tensor::ops::linear_gelu_into(&x, &w, &bias, &mut pre, &mut act);
            let unfused_pre = naive::linear(&x, &w, &bias);
            let unfused_act = gelu(&unfused_pre);
            assert_eq!(pre.as_slice(), unfused_pre.as_slice(), "pre mismatch at {m}x{k}x{n}");
            assert_eq!(act.as_slice(), unfused_act.as_slice(), "act mismatch at {m}x{k}x{n}");
        }
    });
}

#[test]
fn scalar_f16_gemm_equals_f32_gemm_over_decoded_weights() {
    // With the widen-at-pack fallback, the f16 GEMMs are the f32 GEMMs over
    // the exactly-decoded B — bitwise.
    with_scalar(|| {
        let mut rng = StdRng::seed_from_u64(508);
        for &(m, k, n) in SHAPES {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let bh = HalfMatrix::from_matrix(&b);
            let bdec = bh.to_matrix();
            let mut got = Matrix::zeros(0, 0);
            kernels::gemm_nn_f16(&a, &bh, &mut got, false, None);
            assert_eq!(
                got.as_slice(),
                naive::matmul(&a, &bdec).as_slice(),
                "f16 nn mismatch at {m}x{k}x{n}"
            );
            let bt = random_matrix(&mut rng, n, k);
            let bth = HalfMatrix::from_matrix(&bt);
            let btdec = bth.to_matrix();
            kernels::gemm_nt_f16(&a, &bth, &mut got, false);
            assert_eq!(
                got.as_slice(),
                naive::matmul_nt(&a, &btdec).as_slice(),
                "f16 nt mismatch at {m}x{k}x{n}"
            );
        }
    });
}

/// Runs `f` with the pool really splitting: multi-thread budget, a
/// floor-level cost gate, and the hardware-parallelism cap lifted (so the
/// multi-share paths are exercised even on single-core CI hosts), all
/// restored afterwards.
fn with_split_pool(f: impl FnOnce()) {
    let _g = lock();
    let before = pool::current_threads();
    kernels::set_flops_per_share(1);
    kernels::set_hardware_parallelism(8);
    f();
    kernels::set_hardware_parallelism(0);
    kernels::set_flops_per_share(kernels::DEFAULT_FLOPS_PER_SHARE);
    pool::set_threads(before);
}

#[test]
fn active_path_gemm_is_invariant_across_worker_counts() {
    // Whatever family is active (AVX2 here if the host has it), the result
    // must not depend on how many workers executed: share bounds are
    // tile-aligned, so the full/edge decomposition is split-invariant.
    with_split_pool(|| {
        let mut rng = StdRng::seed_from_u64(505);
        for &(m, k, n) in &[(64usize, 37usize, 53usize), (13, 29, 17), (127, 65, 33)] {
            let a = random_matrix(&mut rng, m, k);
            let b = random_matrix(&mut rng, k, n);
            let bt = b.transpose();
            let bh = HalfMatrix::from_matrix(&b);
            pool::set_threads(1);
            let nn_ref = a.matmul(&b);
            let nt_ref = a.matmul_nt(&bt);
            let tn_ref = a.matmul_tn(&nn_ref);
            let mut f16_ref = Matrix::zeros(0, 0);
            kernels::gemm_nn_f16(&a, &bh, &mut f16_ref, false, None);
            for &t in &[2usize, 3, 4, 8, 16] {
                pool::set_threads(t);
                assert_eq!(
                    a.matmul(&b).as_slice(),
                    nn_ref.as_slice(),
                    "nn {m}x{k}x{n} differs at {t} threads"
                );
                assert_eq!(
                    a.matmul_nt(&bt).as_slice(),
                    nt_ref.as_slice(),
                    "nt {m}x{k}x{n} differs at {t} threads"
                );
                assert_eq!(
                    a.matmul_tn(&nn_ref).as_slice(),
                    tn_ref.as_slice(),
                    "tn {m}x{k}x{n} differs at {t} threads"
                );
                let mut f16_got = Matrix::zeros(0, 0);
                kernels::gemm_nn_f16(&a, &bh, &mut f16_got, false, None);
                assert_eq!(
                    f16_got.as_slice(),
                    f16_ref.as_slice(),
                    "f16 nn {m}x{k}x{n} differs at {t} threads"
                );
            }
        }
    });
}

#[test]
fn repeated_runs_are_deterministic_at_every_worker_count() {
    with_split_pool(|| {
        let mut rng = StdRng::seed_from_u64(506);
        let x = random_matrix(&mut rng, 48, 40);
        for &t in &[1usize, 2, 4, 8] {
            pool::set_threads(t);
            let first = (x.matmul(&x.transpose()), softmax_rows(&x), gelu(&x));
            for _ in 0..5 {
                let again = (x.matmul(&x.transpose()), softmax_rows(&x), gelu(&x));
                assert_eq!(first.0.as_slice(), again.0.as_slice(), "matmul flaky at {t} threads");
                assert_eq!(first.1.as_slice(), again.1.as_slice(), "softmax flaky at {t} threads");
                assert_eq!(first.2.as_slice(), again.2.as_slice(), "gelu flaky at {t} threads");
            }
        }
    });
}

#[test]
fn adam_step_is_invariant_across_worker_counts() {
    use symi_tensor::{AdamConfig, AdamState};
    let _g = lock();
    let mut rng = StdRng::seed_from_u64(507);
    let len = 40_000; // crosses the pool's per-share threshold
    let params: Vec<f32> = (0..len).map(|_| rng.gen::<f32>() - 0.5).collect();
    let grads: Vec<f32> = (0..len).map(|_| rng.gen::<f32>() * 0.1 - 0.05).collect();
    let before = pool::current_threads();

    pool::set_threads(1);
    let mut reference_state = AdamState::new(AdamConfig::default(), &params);
    let mut reference = vec![0.0f32; len];
    reference_state.step(&grads, &mut reference);

    for &t in &[2usize, 4, 8] {
        pool::set_threads(t);
        let mut state = AdamState::new(AdamConfig::default(), &params);
        let mut out = vec![0.0f32; len];
        state.step(&grads, &mut out);
        assert_eq!(out, reference, "adam step differs at {t} threads");
    }
    pool::set_threads(before);
}

#[test]
fn b_prep_work_is_independent_of_share_count() {
    // Regression for the per-share re-packing bug class: B preparation must
    // be a per-call property, never a per-share one. After the zero-copy
    // rework the f32 nn family reads B in place (b_packs stays flat at any
    // worker count), and the f16 *fallback* path decodes B exactly once per
    // call — again at any worker count.
    with_split_pool(|| {
        let mut rng = StdRng::seed_from_u64(509);
        let a = random_matrix(&mut rng, 64, 32);
        let b = random_matrix(&mut rng, 32, 48);
        let bh = HalfMatrix::from_matrix(&b);
        let bias = random_matrix(&mut rng, 1, 48);
        let prev = kernels::active_path();
        kernels::force_simd_path(SimdPath::Scalar);
        for &t in &[1usize, 8] {
            pool::set_threads(t);
            let before = kernels::kernel_stats().b_packs;
            let _ = a.matmul(&b);
            let mut pre = Matrix::zeros(0, 0);
            let mut act = Matrix::zeros(0, 0);
            symi_tensor::ops::linear_gelu_into(&a, &b, &bias, &mut pre, &mut act);
            assert_eq!(
                kernels::kernel_stats().b_packs,
                before,
                "f32 nn reads B in place — no prep pass at {t} threads"
            );
            let mut out = Matrix::zeros(64, 48);
            a.matmul_f16_into(&bh, &mut out);
            assert_eq!(
                kernels::kernel_stats().b_packs,
                before + 1,
                "f16 fallback decodes B exactly once per call at {t} threads"
            );
        }
        kernels::force_simd_path(prev);
    });
}
