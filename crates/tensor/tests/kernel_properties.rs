//! Bit-exactness properties of the blocked/threaded GEMM kernels.
//!
//! The contract (see `symi_tensor::kernels`): every output element is one
//! accumulator folded over `k` in ascending order, so the blocked kernels
//! must equal the naive i-j-k oracle *bitwise* — for every shape, tile-edge
//! case, and worker count. These tests sweep deliberately awkward shapes
//! (1×1, primes, tall/thin, short/wide, empty) and repeat runs across
//! thread counts, comparing with `==` rather than a tolerance.

use symi_tensor::kernels::naive;
use symi_tensor::ops::{gelu, softmax_rows};
use symi_tensor::pool;
use symi_tensor::rng::{Rng, StdRng};
use symi_tensor::Matrix;

fn random_matrix(rng: &mut StdRng, rows: usize, cols: usize) -> Matrix {
    Matrix::from_fn(rows, cols, |_, _| rng.gen::<f32>() * 4.0 - 2.0)
}

/// Shapes chosen to hit every tile-edge path: unit, sub-tile, exact-tile,
/// prime (never tile-aligned), tall/thin, short/wide, and empty extents.
const SHAPES: &[(usize, usize, usize)] = &[
    (1, 1, 1),
    (2, 3, 5),
    (3, 1, 7),
    (4, 8, 8),
    (5, 5, 5),
    (7, 11, 13),
    (17, 19, 23),
    (97, 3, 5),
    (2, 3, 89),
    (61, 1, 1),
    (1, 64, 1),
    (0, 4, 4),
    (4, 0, 4),
    (4, 4, 0),
];

#[test]
fn blocked_gemm_nn_is_bitwise_equal_to_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(501);
    for &(m, k, n) in SHAPES {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, k, n);
        let blocked = a.matmul(&b);
        let oracle = naive::matmul(&a, &b);
        assert_eq!(blocked.as_slice(), oracle.as_slice(), "nn mismatch at {m}x{k}x{n}");
    }
}

#[test]
fn blocked_gemm_nt_is_bitwise_equal_to_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(502);
    for &(m, k, n) in SHAPES {
        let a = random_matrix(&mut rng, m, k);
        let b = random_matrix(&mut rng, n, k);
        let blocked = a.matmul_nt(&b);
        let oracle = naive::matmul_nt(&a, &b);
        assert_eq!(blocked.as_slice(), oracle.as_slice(), "nt mismatch at {m}x{k}x{n}");
    }
}

#[test]
fn blocked_gemm_tn_is_bitwise_equal_to_naive_oracle() {
    let mut rng = StdRng::seed_from_u64(503);
    for &(m, k, n) in SHAPES {
        let a = random_matrix(&mut rng, k, m);
        let b = random_matrix(&mut rng, k, n);
        let blocked = a.matmul_tn(&b);
        let oracle = naive::matmul_tn(&a, &b);
        assert_eq!(blocked.as_slice(), oracle.as_slice(), "tn mismatch at {m}x{k}x{n}");
    }
}

#[test]
fn fused_linear_gelu_is_bitwise_equal_to_unfused_pipeline() {
    let mut rng = StdRng::seed_from_u64(504);
    for &(m, k, n) in &[(1usize, 1usize, 1usize), (7, 11, 13), (33, 17, 9)] {
        let x = random_matrix(&mut rng, m, k);
        let w = random_matrix(&mut rng, k, n);
        let bias = random_matrix(&mut rng, 1, n);
        let mut pre = Matrix::zeros(0, 0);
        let mut act = Matrix::zeros(0, 0);
        symi_tensor::ops::linear_gelu_into(&x, &w, &bias, &mut pre, &mut act);
        let unfused_pre = naive::linear(&x, &w, &bias);
        let unfused_act = gelu(&unfused_pre);
        assert_eq!(pre.as_slice(), unfused_pre.as_slice(), "pre mismatch at {m}x{k}x{n}");
        assert_eq!(act.as_slice(), unfused_act.as_slice(), "act mismatch at {m}x{k}x{n}");
    }
}

#[test]
fn gemm_results_are_invariant_across_worker_counts() {
    let mut rng = StdRng::seed_from_u64(505);
    // Large enough that parallel_for actually splits at every count.
    let a = random_matrix(&mut rng, 64, 37);
    let b = random_matrix(&mut rng, 37, 53);
    let before = pool::current_threads();
    pool::set_threads(1);
    let reference = a.matmul(&b);
    for &t in &[2usize, 3, 4, 8, 16] {
        pool::set_threads(t);
        let got = a.matmul(&b);
        assert_eq!(got.as_slice(), reference.as_slice(), "nn differs at {t} threads");
        let nt = a.matmul_nt(&b.transpose());
        pool::set_threads(1);
        let nt_ref = a.matmul_nt(&b.transpose());
        assert_eq!(nt.as_slice(), nt_ref.as_slice(), "nt differs at {t} threads");
    }
    pool::set_threads(before);
}

#[test]
fn repeated_runs_are_deterministic_at_every_worker_count() {
    let mut rng = StdRng::seed_from_u64(506);
    let x = random_matrix(&mut rng, 48, 40);
    let before = pool::current_threads();
    for &t in &[1usize, 2, 4, 8] {
        pool::set_threads(t);
        let first = (x.matmul(&x.transpose()), softmax_rows(&x), gelu(&x));
        for _ in 0..5 {
            let again = (x.matmul(&x.transpose()), softmax_rows(&x), gelu(&x));
            assert_eq!(first.0.as_slice(), again.0.as_slice(), "matmul flaky at {t} threads");
            assert_eq!(first.1.as_slice(), again.1.as_slice(), "softmax flaky at {t} threads");
            assert_eq!(first.2.as_slice(), again.2.as_slice(), "gelu flaky at {t} threads");
        }
    }
    pool::set_threads(before);
}

#[test]
fn adam_step_is_invariant_across_worker_counts() {
    use symi_tensor::{AdamConfig, AdamState};
    let mut rng = StdRng::seed_from_u64(507);
    let len = 40_000; // crosses the pool's per-share threshold
    let params: Vec<f32> = (0..len).map(|_| rng.gen::<f32>() - 0.5).collect();
    let grads: Vec<f32> = (0..len).map(|_| rng.gen::<f32>() * 0.1 - 0.05).collect();
    let before = pool::current_threads();

    pool::set_threads(1);
    let mut reference_state = AdamState::new(AdamConfig::default(), &params);
    let mut reference = vec![0.0f32; len];
    reference_state.step(&grads, &mut reference);

    for &t in &[2usize, 4, 8] {
        pool::set_threads(t);
        let mut state = AdamState::new(AdamConfig::default(), &params);
        let mut out = vec![0.0f32; len];
        state.step(&grads, &mut out);
        assert_eq!(out, reference, "adam step differs at {t} threads");
    }
    pool::set_threads(before);
}
