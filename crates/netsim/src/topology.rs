//! Hardware and model-scale descriptions used by the cost model and the
//! latency simulator.

/// Bandwidths, latencies, and compute throughputs of one cluster flavour.
///
/// Bandwidths are bytes/second; latencies are seconds; throughputs are
/// FLOP/s. Two presets matter for the reproduction:
/// [`HardwareSpec::paper_eval_cluster`] (the 16×A100 Azure testbed of §5)
/// and [`HardwareSpec::paper_analysis_example`] (the GPT3-175B/H100-class
/// example that §3.3 uses to instantiate its formulas).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareSpec {
    /// GPU↔host interconnect bandwidth (PCIe), bytes/s.
    pub bw_pci: f64,
    /// Cross-node GPU↔GPU network bandwidth, bytes/s.
    pub bw_net: f64,
    /// Per-message network latency (the α in the α–β model), seconds.
    pub net_latency: f64,
    /// Per-transfer PCIe latency, seconds.
    pub pci_latency: f64,
    /// Achievable GPU throughput, FLOP/s (peak × efficiency).
    pub gpu_flops: f64,
    /// Host-side throughput for the offloaded optimizer step, bytes/s of
    /// optimizer state processed (memory-bandwidth-bound).
    pub host_opt_bytes_per_s: f64,
    /// GPU HBM capacity per rank, bytes (used for FlexMoE's OOM check).
    pub hbm_bytes: f64,
    /// Fixed framework overhead per transformer layer per forward pass
    /// (kernel launches, router bookkeeping, Python dispatch, offload
    /// synchronization), seconds. The backward pass pays twice this. This is
    /// what makes measured DeepSpeed iterations ~1.5 s for a 125M model on
    /// A100s — far above the raw FLOP/byte time.
    pub framework_layer_overhead: f64,
    /// Cost of constructing one NCCL-style communicator group, per member
    /// rank, seconds. Group creation is a blocking, single-threaded
    /// synchronization (§4.2 cites >1000 s to regroup an N=2048 cluster);
    /// FlexMoE pays it on every rebalance, SYMI pre-registers all contiguous
    /// groups at init and never pays it again.
    pub group_init_per_rank: f64,
}

impl HardwareSpec {
    /// §5's evaluation testbed: Azure NC24ads-v4 — one A100 80GB per node,
    /// PCIe 4.0 ×16 (~32 GB/s), 100 Gbps ConnectX-5.
    pub fn paper_eval_cluster() -> Self {
        Self {
            bw_pci: 32.0e9,
            bw_net: 100.0e9 / 8.0,
            net_latency: 10.0e-6,
            pci_latency: 5.0e-6,
            // A100 dense fp16 peak is 312 TFLOP/s; ~40% achieved efficiency
            // is typical for moderate-size MoE GEMMs.
            gpu_flops: 312.0e12 * 0.4,
            host_opt_bytes_per_s: 50.0e9,
            hbm_bytes: 80.0e9,
            framework_layer_overhead: 25.0e-3,
            group_init_per_rank: 10.0e-3,
        }
    }

    /// §3.3's large-scale analysis example: 64 GB/s GPU–CPU interconnect and
    /// 400 Gbps InfiniBand.
    pub fn paper_analysis_example() -> Self {
        Self {
            bw_pci: 64.0e9,
            bw_net: 400.0e9 / 8.0,
            net_latency: 5.0e-6,
            pci_latency: 5.0e-6,
            gpu_flops: 989.0e12 * 0.4,
            host_opt_bytes_per_s: 100.0e9,
            hbm_bytes: 80.0e9,
            framework_layer_overhead: 2.0e-3,
            group_init_per_rank: 10.0e-3,
        }
    }
}

/// Byte/FLOP scale of one model configuration — everything the latency
/// simulator needs to know about a GPT variant without running it.
///
/// Sizes follow the paper's accounting: weights and gradients are fp16
/// (2 B/param), optimizer state is 16 B/param (fp32 master + two Adam
/// moments + fp32 gradient staging, as in ZeRO/mixed-precision training).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelCostConfig {
    /// Human-readable name ("GPT-Small", …).
    pub name: &'static str,
    /// Transformer layers (each carrying one MoE block).
    pub layers: usize,
    /// Model (hidden) dimension.
    pub d_model: usize,
    /// Expert FFN inner dimension (usually 4 × d_model).
    pub d_ff: usize,
    /// Tokens per global batch (sequence length × global batch size).
    pub tokens_per_batch: usize,
}

impl ModelCostConfig {
    /// GPT-Small (125M dense): 12 layers, d_model 768; the paper trains it
    /// with sequence length 512 and global batch 64.
    pub fn gpt_small() -> Self {
        Self {
            name: "GPT-Small",
            layers: 12,
            d_model: 768,
            d_ff: 4 * 768,
            tokens_per_batch: 512 * 64,
        }
    }

    /// GPT-Medium (350M dense): 24 layers, d_model 1024.
    pub fn gpt_medium() -> Self {
        Self {
            name: "GPT-Medium",
            layers: 24,
            d_model: 1024,
            d_ff: 4 * 1024,
            tokens_per_batch: 512 * 64,
        }
    }

    /// GPT-Large (760M dense): 24 layers, d_model 1536.
    pub fn gpt_large() -> Self {
        Self {
            name: "GPT-Large",
            layers: 24,
            d_model: 1536,
            d_ff: 4 * 1536,
            tokens_per_batch: 512 * 64,
        }
    }

    /// The GPT3-175B-scale layer of §3.3's worked example (d_model 12288):
    /// per-expert weights 3.375 GB, optimizer 27 GB.
    pub fn gpt3_layer_example() -> Self {
        Self {
            name: "GPT3-175B-layer",
            layers: 1,
            d_model: 12288,
            d_ff: 4 * 12288,
            tokens_per_batch: 2048 * 1024,
        }
    }

    /// Parameters in one expert FFN (two projection matrices + biases).
    pub fn expert_params(&self) -> u64 {
        (2 * self.d_model * self.d_ff + self.d_ff + self.d_model) as u64
    }

    /// fp16 weight bytes for one expert instance (the paper's `W`).
    pub fn expert_weight_bytes(&self) -> f64 {
        self.expert_params() as f64 * 2.0
    }

    /// fp16 gradient bytes for one expert instance (the paper's `G`).
    pub fn expert_grad_bytes(&self) -> f64 {
        self.expert_params() as f64 * 2.0
    }

    /// Optimizer-state bytes for one expert class (the paper's `O`,
    /// 16 B/param).
    pub fn expert_optimizer_bytes(&self) -> f64 {
        self.expert_params() as f64 * 16.0
    }

    /// FLOPs to push one token through one expert FFN (forward): two GEMVs.
    pub fn expert_flops_per_token(&self) -> f64 {
        2.0 * 2.0 * (self.d_model * self.d_ff) as f64
    }

    /// FLOPs per token per layer for the dense (attention + projections)
    /// part of the layer. Approximated as the standard 12·d² attention-block
    /// cost plus 2·L·d of score computation amortized per token.
    pub fn dense_flops_per_token(&self, seq_len: usize) -> f64 {
        let d = self.d_model as f64;
        2.0 * 12.0 * d * d + 2.0 * 2.0 * seq_len as f64 * d
    }

    /// Activation bytes for one token's embedding in fp16.
    pub fn token_embedding_bytes(&self) -> f64 {
        self.d_model as f64 * 2.0
    }
}

/// One level of a hierarchical interconnect.
///
/// A level-`t` *cell* groups `arity` cells of the level below (ranks, at
/// level 0). Crossing the boundary between two level-(t−1) cells inside the
/// same level-`t` cell uses this level's link class: `bw` bytes/s available
/// to each rank across the tier and `latency` seconds per message.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct TierSpec {
    /// Human-readable tier name ("node", "rack", "pod", "cluster").
    pub name: &'static str,
    /// Sub-cells (ranks at level 0) per cell of this level.
    pub arity: usize,
    /// Per-rank bandwidth across this tier, bytes/s. Outer tiers are
    /// typically oversubscribed, so this shrinks going outward.
    pub bw: f64,
    /// Per-message latency across this tier, seconds.
    pub latency: f64,
}

/// A multi-tier cluster topology: ranks addressed by tier coordinates.
///
/// Tiers are listed innermost first; the rank count is the product of the
/// arities, and the cells of the outermost tier jointly cover the whole
/// world. Two ranks communicate over the link class of the *narrowest tier
/// they cross* — the innermost level at which they share a cell
/// ([`Topology::tier_between`]). A flat world is the one-level special case
/// ([`Topology::flat`]), which reproduces the single-`bw_net` pricing of
/// [`HardwareSpec`] exactly.
#[derive(Clone, Debug, PartialEq)]
pub struct Topology {
    name: &'static str,
    levels: Vec<TierSpec>,
}

impl Topology {
    /// A topology from explicit tier levels (innermost first).
    ///
    /// # Panics
    /// Panics on an empty level list, a zero arity, or a non-finite /
    /// non-positive bandwidth.
    pub fn new(name: &'static str, levels: Vec<TierSpec>) -> Self {
        assert!(!levels.is_empty(), "topology needs at least one tier");
        for l in &levels {
            assert!(l.arity >= 1, "tier {} has zero arity", l.name);
            assert!(l.bw.is_finite() && l.bw > 0.0, "tier {} bandwidth must be positive", l.name);
            assert!(l.latency.is_finite() && l.latency >= 0.0, "tier {} latency invalid", l.name);
        }
        Self { name, levels }
    }

    /// Single-tier world pricing every cross-rank transfer at `hw.bw_net` —
    /// the pre-hierarchy behaviour, kept as the compatibility baseline.
    pub fn flat(ranks: usize, hw: &HardwareSpec) -> Self {
        Self::new(
            "flat",
            vec![TierSpec { name: "net", arity: ranks, bw: hw.bw_net, latency: hw.net_latency }],
        )
    }

    /// Two-tier preset: 8-GPU NVLink nodes under one oversubscribed
    /// network tier.
    pub fn rack_cluster(ranks: usize) -> Self {
        Self::from_template(
            "rack_cluster",
            ranks,
            &[("node", 8, 250.0e9, 1.5e-6)],
            ("cluster", 12.5e9, 10.0e-6),
        )
    }

    /// Four-tier "superpod" preset: 8-GPU NVLink nodes, 4-node racks on
    /// 400 Gbps IB, 8-rack pods at half that, and an oversubscribed
    /// cluster spine. Outer tiers are dropped when `ranks` is small.
    pub fn superpod(ranks: usize) -> Self {
        Self::from_template(
            "superpod",
            ranks,
            &[
                ("node", 8, 250.0e9, 1.5e-6),
                ("rack", 4, 50.0e9, 5.0e-6),
                ("pod", 8, 25.0e9, 7.0e-6),
            ],
            ("cluster", 12.5e9, 10.0e-6),
        )
    }

    /// Builds a topology by filling the template innermost-out: each entry
    /// takes `min(template arity, remaining)` ranks, and whatever is left
    /// becomes the outermost tier. `ranks` must be a power of two so every
    /// split divides evenly.
    fn from_template(
        name: &'static str,
        ranks: usize,
        inner: &[(&'static str, usize, f64, f64)],
        outer: (&'static str, f64, f64),
    ) -> Self {
        assert!(ranks >= 2 && ranks.is_power_of_two(), "preset needs a power-of-two rank count");
        let mut levels = Vec::new();
        let mut rem = ranks;
        for &(tier_name, arity, bw, latency) in inner {
            if rem == 1 {
                break;
            }
            let a = arity.min(rem);
            levels.push(TierSpec { name: tier_name, arity: a, bw, latency });
            rem /= a;
        }
        if rem > 1 {
            let (tier_name, bw, latency) = outer;
            levels.push(TierSpec { name: tier_name, arity: rem, bw, latency });
        }
        Self::new(name, levels)
    }

    pub fn name(&self) -> &'static str {
        self.name
    }

    pub fn levels(&self) -> &[TierSpec] {
        &self.levels
    }

    pub fn num_tiers(&self) -> usize {
        self.levels.len()
    }

    /// Total ranks: the product of tier arities.
    pub fn ranks(&self) -> usize {
        self.levels.iter().map(|l| l.arity).product()
    }

    /// Ranks per cell of tier `level` (product of arities 0..=level).
    pub fn cell_size(&self, level: usize) -> usize {
        self.levels[..=level].iter().map(|l| l.arity).product()
    }

    /// Index of the tier-`level` cell containing `rank`.
    pub fn cell_of(&self, rank: usize, level: usize) -> usize {
        rank / self.cell_size(level)
    }

    /// Tier coordinates of `rank`, innermost digit first.
    pub fn coords(&self, rank: usize) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.levels.len());
        let mut rem = rank;
        for l in &self.levels {
            out.push(rem % l.arity);
            rem /= l.arity;
        }
        out
    }

    /// Inverse of [`Topology::coords`].
    pub fn rank_of(&self, coords: &[usize]) -> usize {
        assert_eq!(coords.len(), self.levels.len(), "one coordinate per tier");
        let mut rank = 0;
        let mut stride = 1;
        for (c, l) in coords.iter().zip(&self.levels) {
            assert!(*c < l.arity, "coordinate {c} out of arity {}", l.arity);
            rank += c * stride;
            stride *= l.arity;
        }
        rank
    }

    /// The narrowest tier crossed between two ranks: the innermost level at
    /// which they share a cell. `None` when `a == b` (no link crossed).
    pub fn tier_between(&self, a: usize, b: usize) -> Option<usize> {
        if a == b {
            return None;
        }
        let mut size = 1;
        for (t, l) in self.levels.iter().enumerate() {
            size *= l.arity;
            if a / size == b / size {
                return Some(t);
            }
        }
        panic!("ranks {a}/{b} outside the {}-rank world", self.ranks());
    }

    /// For any rank: how many peers sit at each tier distance
    /// (`cell_size(t) − cell_size(t−1)` — position-independent because the
    /// topology is a full product of arities). Sums to `ranks() − 1`.
    pub fn tier_census(&self) -> Vec<usize> {
        let mut out = Vec::with_capacity(self.levels.len());
        let mut inner = 1;
        for l in &self.levels {
            let size = inner * l.arity;
            out.push(size - inner);
            inner = size;
        }
        out
    }

    /// Bandwidth of tier `level`, bytes/s.
    pub fn bw(&self, level: usize) -> f64 {
        self.levels[level].bw
    }

    /// Per-message latency of tier `level`, seconds.
    pub fn latency(&self, level: usize) -> f64 {
        self.levels[level].latency
    }

    /// The slowest (narrowest) bandwidth across any tier.
    pub fn narrowest_bw(&self) -> f64 {
        self.levels.iter().map(|l| l.bw).fold(f64::INFINITY, f64::min)
    }

    /// The largest per-message latency across any tier.
    pub fn max_latency(&self) -> f64 {
        self.levels.iter().map(|l| l.latency).fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_example_byte_accounting() {
        // Our accounting (two d×4d GEMMs) gives 8d² params → 2.25 GiB of
        // fp16 weights per expert at d_model = 12288. The paper's worked
        // example states G = W = 3.375 GB / O = 27 GB, i.e. 12d² params per
        // expert (it folds in the expert's share of surrounding dense
        // projections); the §3.3 validation bench therefore instantiates the
        // formulas with the paper's literal values. What must always hold is
        // the 16:2 optimizer-to-weight byte ratio.
        let cfg = ModelCostConfig::gpt3_layer_example();
        let gib = 1024.0 * 1024.0 * 1024.0;
        assert!((cfg.expert_weight_bytes() / gib - 2.25).abs() < 0.01);
        assert!((cfg.expert_optimizer_bytes() / gib - 18.0).abs() < 0.1);
    }

    #[test]
    fn optimizer_is_8x_weights() {
        let cfg = ModelCostConfig::gpt_small();
        let ratio = cfg.expert_optimizer_bytes() / cfg.expert_weight_bytes();
        assert!((ratio - 8.0).abs() < 1e-9, "§2.1: optimizer is 8× model weights");
    }

    #[test]
    fn model_sizes_are_ordered() {
        let s = ModelCostConfig::gpt_small().expert_params();
        let m = ModelCostConfig::gpt_medium().expert_params();
        let l = ModelCostConfig::gpt_large().expert_params();
        assert!(s < m && m < l);
    }

    #[test]
    fn presets_have_sane_bandwidth_ordering() {
        for hw in [HardwareSpec::paper_eval_cluster(), HardwareSpec::paper_analysis_example()] {
            assert!(hw.bw_pci > hw.bw_net, "PCIe beats the network in both presets");
            assert!(hw.gpu_flops > 1e13);
        }
    }

    #[test]
    fn flat_topology_is_one_tier_at_net_bandwidth() {
        let hw = HardwareSpec::paper_eval_cluster();
        let t = Topology::flat(16, &hw);
        assert_eq!(t.num_tiers(), 1);
        assert_eq!(t.ranks(), 16);
        assert_eq!(t.bw(0), hw.bw_net);
        assert_eq!(t.tier_between(0, 15), Some(0));
        assert_eq!(t.tier_between(3, 3), None);
        assert_eq!(t.tier_census(), vec![15]);
    }

    #[test]
    fn superpod_factorizations_cover_the_sweep_grid() {
        for n in [16usize, 64, 256, 1024, 4096] {
            let t = Topology::superpod(n);
            assert_eq!(t.ranks(), n, "n = {n}");
            assert_eq!(t.tier_census().iter().sum::<usize>(), n - 1);
            // Bandwidth must shrink going outward (oversubscription).
            for w in t.levels().windows(2) {
                assert!(w[0].bw > w[1].bw, "n = {n}: outer tiers are narrower");
                assert!(w[0].latency < w[1].latency);
            }
        }
        // 4096 = 8 × 4 × 8 × 16: the full four-tier shape.
        assert_eq!(Topology::superpod(4096).num_tiers(), 4);
        // 16 = 8 × 2: small worlds drop the outer tiers.
        assert_eq!(Topology::superpod(16).num_tiers(), 2);
    }

    #[test]
    fn coords_round_trip_and_tier_between_is_the_first_shared_cell() {
        let t = Topology::superpod(256); // 8 × 4 × 8
        for rank in [0usize, 1, 7, 8, 31, 32, 255] {
            assert_eq!(t.rank_of(&t.coords(rank)), rank);
        }
        assert_eq!(t.tier_between(0, 1), Some(0), "same node");
        assert_eq!(t.tier_between(0, 8), Some(1), "same rack, different node");
        assert_eq!(t.tier_between(0, 32), Some(2), "same pod, different rack");
        assert_eq!(t.tier_between(0, 255), Some(2), "256 ranks = one pod");
        let big = Topology::superpod(1024);
        assert_eq!(big.tier_between(0, 256), Some(3), "different pod crosses the spine");
        assert!(big.narrowest_bw() < big.bw(0));
    }

    #[test]
    fn census_counts_peers_per_tier() {
        let t = Topology::superpod(1024); // 8 × 4 × 8 × 4
        assert_eq!(t.tier_census(), vec![7, 24, 224, 768]);
        assert_eq!(t.cell_size(2), 256);
        assert_eq!(t.cell_of(255, 2), 0);
        assert_eq!(t.cell_of(256, 2), 1);
    }

    #[test]
    #[should_panic(expected = "zero arity")]
    fn zero_arity_rejected() {
        let _ = Topology::new("bad", vec![TierSpec { name: "x", arity: 0, bw: 1.0, latency: 0.0 }]);
    }
}
