//! Hardware and model-scale descriptions used by the cost model and the
//! latency simulator.

/// Bandwidths, latencies, and compute throughputs of one cluster flavour.
///
/// Bandwidths are bytes/second; latencies are seconds; throughputs are
/// FLOP/s. Two presets matter for the reproduction:
/// [`HardwareSpec::paper_eval_cluster`] (the 16×A100 Azure testbed of §5)
/// and [`HardwareSpec::paper_analysis_example`] (the GPT3-175B/H100-class
/// example that §3.3 uses to instantiate its formulas).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct HardwareSpec {
    /// GPU↔host interconnect bandwidth (PCIe), bytes/s.
    pub bw_pci: f64,
    /// Cross-node GPU↔GPU network bandwidth, bytes/s.
    pub bw_net: f64,
    /// Per-message network latency (the α in the α–β model), seconds.
    pub net_latency: f64,
    /// Per-transfer PCIe latency, seconds.
    pub pci_latency: f64,
    /// Achievable GPU throughput, FLOP/s (peak × efficiency).
    pub gpu_flops: f64,
    /// Host-side throughput for the offloaded optimizer step, bytes/s of
    /// optimizer state processed (memory-bandwidth-bound).
    pub host_opt_bytes_per_s: f64,
    /// GPU HBM capacity per rank, bytes (used for FlexMoE's OOM check).
    pub hbm_bytes: f64,
    /// Fixed framework overhead per transformer layer per forward pass
    /// (kernel launches, router bookkeeping, Python dispatch, offload
    /// synchronization), seconds. The backward pass pays twice this. This is
    /// what makes measured DeepSpeed iterations ~1.5 s for a 125M model on
    /// A100s — far above the raw FLOP/byte time.
    pub framework_layer_overhead: f64,
    /// Cost of constructing one NCCL-style communicator group, per member
    /// rank, seconds. Group creation is a blocking, single-threaded
    /// synchronization (§4.2 cites >1000 s to regroup an N=2048 cluster);
    /// FlexMoE pays it on every rebalance, SYMI pre-registers all contiguous
    /// groups at init and never pays it again.
    pub group_init_per_rank: f64,
}

impl HardwareSpec {
    /// §5's evaluation testbed: Azure NC24ads-v4 — one A100 80GB per node,
    /// PCIe 4.0 ×16 (~32 GB/s), 100 Gbps ConnectX-5.
    pub fn paper_eval_cluster() -> Self {
        Self {
            bw_pci: 32.0e9,
            bw_net: 100.0e9 / 8.0,
            net_latency: 10.0e-6,
            pci_latency: 5.0e-6,
            // A100 dense fp16 peak is 312 TFLOP/s; ~40% achieved efficiency
            // is typical for moderate-size MoE GEMMs.
            gpu_flops: 312.0e12 * 0.4,
            host_opt_bytes_per_s: 50.0e9,
            hbm_bytes: 80.0e9,
            framework_layer_overhead: 25.0e-3,
            group_init_per_rank: 10.0e-3,
        }
    }

    /// §3.3's large-scale analysis example: 64 GB/s GPU–CPU interconnect and
    /// 400 Gbps InfiniBand.
    pub fn paper_analysis_example() -> Self {
        Self {
            bw_pci: 64.0e9,
            bw_net: 400.0e9 / 8.0,
            net_latency: 5.0e-6,
            pci_latency: 5.0e-6,
            gpu_flops: 989.0e12 * 0.4,
            host_opt_bytes_per_s: 100.0e9,
            hbm_bytes: 80.0e9,
            framework_layer_overhead: 2.0e-3,
            group_init_per_rank: 10.0e-3,
        }
    }
}

/// Byte/FLOP scale of one model configuration — everything the latency
/// simulator needs to know about a GPT variant without running it.
///
/// Sizes follow the paper's accounting: weights and gradients are fp16
/// (2 B/param), optimizer state is 16 B/param (fp32 master + two Adam
/// moments + fp32 gradient staging, as in ZeRO/mixed-precision training).
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct ModelCostConfig {
    /// Human-readable name ("GPT-Small", …).
    pub name: &'static str,
    /// Transformer layers (each carrying one MoE block).
    pub layers: usize,
    /// Model (hidden) dimension.
    pub d_model: usize,
    /// Expert FFN inner dimension (usually 4 × d_model).
    pub d_ff: usize,
    /// Tokens per global batch (sequence length × global batch size).
    pub tokens_per_batch: usize,
}

impl ModelCostConfig {
    /// GPT-Small (125M dense): 12 layers, d_model 768; the paper trains it
    /// with sequence length 512 and global batch 64.
    pub fn gpt_small() -> Self {
        Self {
            name: "GPT-Small",
            layers: 12,
            d_model: 768,
            d_ff: 4 * 768,
            tokens_per_batch: 512 * 64,
        }
    }

    /// GPT-Medium (350M dense): 24 layers, d_model 1024.
    pub fn gpt_medium() -> Self {
        Self {
            name: "GPT-Medium",
            layers: 24,
            d_model: 1024,
            d_ff: 4 * 1024,
            tokens_per_batch: 512 * 64,
        }
    }

    /// GPT-Large (760M dense): 24 layers, d_model 1536.
    pub fn gpt_large() -> Self {
        Self {
            name: "GPT-Large",
            layers: 24,
            d_model: 1536,
            d_ff: 4 * 1536,
            tokens_per_batch: 512 * 64,
        }
    }

    /// The GPT3-175B-scale layer of §3.3's worked example (d_model 12288):
    /// per-expert weights 3.375 GB, optimizer 27 GB.
    pub fn gpt3_layer_example() -> Self {
        Self {
            name: "GPT3-175B-layer",
            layers: 1,
            d_model: 12288,
            d_ff: 4 * 12288,
            tokens_per_batch: 2048 * 1024,
        }
    }

    /// Parameters in one expert FFN (two projection matrices + biases).
    pub fn expert_params(&self) -> u64 {
        (2 * self.d_model * self.d_ff + self.d_ff + self.d_model) as u64
    }

    /// fp16 weight bytes for one expert instance (the paper's `W`).
    pub fn expert_weight_bytes(&self) -> f64 {
        self.expert_params() as f64 * 2.0
    }

    /// fp16 gradient bytes for one expert instance (the paper's `G`).
    pub fn expert_grad_bytes(&self) -> f64 {
        self.expert_params() as f64 * 2.0
    }

    /// Optimizer-state bytes for one expert class (the paper's `O`,
    /// 16 B/param).
    pub fn expert_optimizer_bytes(&self) -> f64 {
        self.expert_params() as f64 * 16.0
    }

    /// FLOPs to push one token through one expert FFN (forward): two GEMVs.
    pub fn expert_flops_per_token(&self) -> f64 {
        2.0 * 2.0 * (self.d_model * self.d_ff) as f64
    }

    /// FLOPs per token per layer for the dense (attention + projections)
    /// part of the layer. Approximated as the standard 12·d² attention-block
    /// cost plus 2·L·d of score computation amortized per token.
    pub fn dense_flops_per_token(&self, seq_len: usize) -> f64 {
        let d = self.d_model as f64;
        2.0 * 12.0 * d * d + 2.0 * 2.0 * seq_len as f64 * d
    }

    /// Activation bytes for one token's embedding in fp16.
    pub fn token_embedding_bytes(&self) -> f64 {
        self.d_model as f64 * 2.0
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn gpt3_example_byte_accounting() {
        // Our accounting (two d×4d GEMMs) gives 8d² params → 2.25 GiB of
        // fp16 weights per expert at d_model = 12288. The paper's worked
        // example states G = W = 3.375 GB / O = 27 GB, i.e. 12d² params per
        // expert (it folds in the expert's share of surrounding dense
        // projections); the §3.3 validation bench therefore instantiates the
        // formulas with the paper's literal values. What must always hold is
        // the 16:2 optimizer-to-weight byte ratio.
        let cfg = ModelCostConfig::gpt3_layer_example();
        let gib = 1024.0 * 1024.0 * 1024.0;
        assert!((cfg.expert_weight_bytes() / gib - 2.25).abs() < 0.01);
        assert!((cfg.expert_optimizer_bytes() / gib - 18.0).abs() < 0.1);
    }

    #[test]
    fn optimizer_is_8x_weights() {
        let cfg = ModelCostConfig::gpt_small();
        let ratio = cfg.expert_optimizer_bytes() / cfg.expert_weight_bytes();
        assert!((ratio - 8.0).abs() < 1e-9, "§2.1: optimizer is 8× model weights");
    }

    #[test]
    fn model_sizes_are_ordered() {
        let s = ModelCostConfig::gpt_small().expert_params();
        let m = ModelCostConfig::gpt_medium().expert_params();
        let l = ModelCostConfig::gpt_large().expert_params();
        assert!(s < m && m < l);
    }

    #[test]
    fn presets_have_sane_bandwidth_ordering() {
        for hw in [HardwareSpec::paper_eval_cluster(), HardwareSpec::paper_analysis_example()] {
            assert!(hw.bw_pci > hw.bw_net, "PCIe beats the network in both presets");
            assert!(hw.gpu_flops > 1e13);
        }
    }
}
