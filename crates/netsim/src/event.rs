//! A small deterministic task-graph simulator.
//!
//! Latency phases of a training iteration form a DAG (per-rank work joins at
//! collective barriers, phases chain serially). [`TaskGraph`] schedules such
//! a DAG under infinite parallelism — every task starts the moment its
//! dependencies finish — which is the right abstraction once contention is
//! already folded into task durations (as the α–β collective costs do).
//! It reports finish times, the makespan, the critical path, and a
//! per-category breakdown along that path (Figure 12's latency breakdown).

use std::collections::HashMap;
use std::fmt;

/// Opaque handle to a task in a [`TaskGraph`].
#[derive(Clone, Copy, Debug, PartialEq, Eq, Hash)]
pub struct TaskId(usize);

/// Rejected [`TaskGraph::try_add`] insertion.
///
/// `schedule` computes finish times in one pass over insertion order, so a
/// dependency on a not-yet-inserted task would silently read a finish time
/// of 0.0 and produce a bogus makespan — insertions are validated instead.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum GraphError {
    /// Duration was NaN, infinite, or negative.
    BadDuration { duration: f64 },
    /// A dependency referenced `task` itself or a task not yet inserted.
    ForwardDependency { dep: TaskId, task: TaskId },
}

impl fmt::Display for GraphError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            GraphError::BadDuration { duration } => {
                write!(f, "duration {duration} must be finite and >= 0")
            }
            GraphError::ForwardDependency { dep, task } => {
                write!(f, "dependency {dep:?} must precede task {task:?}")
            }
        }
    }
}

impl std::error::Error for GraphError {}

#[derive(Clone, Debug)]
struct Task {
    /// Index into [`TaskGraph::categories`] — categories are interned so a
    /// 4k-rank sweep's graphs don't clone a `String` per task per query.
    category: u32,
    duration: f64,
    deps: Vec<TaskId>,
}

/// A DAG of fixed-duration tasks.
#[derive(Clone, Debug, Default)]
pub struct TaskGraph {
    tasks: Vec<Task>,
    categories: Vec<String>,
    category_index: HashMap<String, u32>,
}

/// Finish times of a scheduled graph.
#[derive(Clone, Debug)]
pub struct Schedule {
    start: Vec<f64>,
    finish: Vec<f64>,
}

impl TaskGraph {
    pub fn new() -> Self {
        Self::default()
    }

    /// Adds a task. Dependencies must already exist (ids are handed out in
    /// topological order by construction).
    ///
    /// # Panics
    /// Panics on negative/NaN durations or forward-referencing deps; use
    /// [`TaskGraph::try_add`] for a typed error instead.
    pub fn add(&mut self, category: impl Into<String>, duration: f64, deps: &[TaskId]) -> TaskId {
        match self.try_add(category, duration, deps) {
            Ok(id) => id,
            Err(GraphError::BadDuration { .. }) => {
                panic!("duration must be finite and >= 0")
            }
            Err(GraphError::ForwardDependency { dep, task }) => {
                panic!("dependency {:?} must precede task {:?}", dep, task)
            }
        }
    }

    /// Adds a task, validating topological order at insertion.
    pub fn try_add(
        &mut self,
        category: impl Into<String>,
        duration: f64,
        deps: &[TaskId],
    ) -> Result<TaskId, GraphError> {
        if !(duration.is_finite() && duration >= 0.0) {
            return Err(GraphError::BadDuration { duration });
        }
        let id = TaskId(self.tasks.len());
        for &d in deps {
            if d.0 >= id.0 {
                return Err(GraphError::ForwardDependency { dep: d, task: id });
            }
        }
        let category = self.intern(category.into());
        self.tasks.push(Task { category, duration, deps: deps.to_vec() });
        Ok(id)
    }

    fn intern(&mut self, name: String) -> u32 {
        if let Some(&i) = self.category_index.get(&name) {
            return i;
        }
        let i = u32::try_from(self.categories.len()).expect("fewer than 2^32 categories");
        self.category_index.insert(name.clone(), i);
        self.categories.push(name);
        i
    }

    /// The category a task was inserted under (borrowed, not cloned).
    pub fn category(&self, id: TaskId) -> &str {
        &self.categories[self.tasks[id.0].category as usize]
    }

    /// Distinct categories interned so far.
    pub fn num_categories(&self) -> usize {
        self.categories.len()
    }

    pub fn len(&self) -> usize {
        self.tasks.len()
    }

    pub fn is_empty(&self) -> bool {
        self.tasks.is_empty()
    }

    /// Computes start/finish times: `start = max(finish(deps))`,
    /// `finish = start + duration`.
    pub fn schedule(&self) -> Schedule {
        let mut start = vec![0.0f64; self.tasks.len()];
        let mut finish = vec![0.0f64; self.tasks.len()];
        for (i, t) in self.tasks.iter().enumerate() {
            let s = t.deps.iter().map(|d| finish[d.0]).fold(0.0f64, f64::max);
            start[i] = s;
            finish[i] = s + t.duration;
        }
        Schedule { start, finish }
    }

    /// Walks the critical path of a schedule (from the globally latest
    /// finisher back to a source), returning task ids in execution order.
    pub fn critical_path(&self, schedule: &Schedule) -> Vec<TaskId> {
        if self.tasks.is_empty() {
            return vec![];
        }
        let mut cur = (0..self.tasks.len())
            .max_by(|&a, &b| schedule.finish[a].total_cmp(&schedule.finish[b]))
            .expect("non-empty");
        let mut path = vec![TaskId(cur)];
        loop {
            let task = &self.tasks[cur];
            // The binding dependency is the one whose finish equals our start.
            let Some(&binding) = task
                .deps
                .iter()
                .max_by(|a, b| schedule.finish[a.0].total_cmp(&schedule.finish[b.0]))
            else {
                break;
            };
            if schedule.finish[binding.0] < schedule.start[cur] - 1e-15 {
                break; // started at t=0 independently of deps (all-zero deps)
            }
            path.push(binding);
            cur = binding.0;
        }
        path.reverse();
        path
    }

    /// Sums task durations per category along the critical path — the
    /// latency breakdown of the makespan. Accumulates over interned
    /// category ids, cloning one `String` per *distinct* category in the
    /// result rather than one per task.
    pub fn breakdown(&self, schedule: &Schedule) -> HashMap<String, f64> {
        let mut by_cat = vec![0.0f64; self.categories.len()];
        let mut seen = vec![false; self.categories.len()];
        for id in self.critical_path(schedule) {
            let t = &self.tasks[id.0];
            by_cat[t.category as usize] += t.duration;
            seen[t.category as usize] = true;
        }
        self.categories
            .iter()
            .enumerate()
            .filter(|&(i, _)| seen[i])
            .map(|(i, name)| (name.clone(), by_cat[i]))
            .collect()
    }
}

impl Schedule {
    pub fn finish(&self, id: TaskId) -> f64 {
        self.finish[id.0]
    }

    pub fn start(&self, id: TaskId) -> f64 {
        self.start[id.0]
    }

    /// Latest finish time across all tasks.
    pub fn makespan(&self) -> f64 {
        self.finish.iter().copied().fold(0.0, f64::max)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn serial_chain_sums_durations() {
        let mut g = TaskGraph::new();
        let a = g.add("x", 1.0, &[]);
        let b = g.add("y", 2.0, &[a]);
        let _c = g.add("z", 3.0, &[b]);
        let s = g.schedule();
        assert_eq!(s.makespan(), 6.0);
    }

    #[test]
    fn parallel_fanout_takes_max() {
        let mut g = TaskGraph::new();
        let root = g.add("r", 1.0, &[]);
        let f1 = g.add("p", 5.0, &[root]);
        let f2 = g.add("p", 2.0, &[root]);
        let sink = g.add("s", 1.0, &[f1, f2]);
        let s = g.schedule();
        assert_eq!(s.makespan(), 7.0);
        assert_eq!(s.finish(sink), 7.0);
        assert_eq!(s.start(f2), 1.0);
    }

    #[test]
    fn critical_path_follows_slowest_branch() {
        let mut g = TaskGraph::new();
        let root = g.add("root", 1.0, &[]);
        let slow = g.add("slow", 5.0, &[root]);
        let _fast = g.add("fast", 1.0, &[root]);
        let sink = g.add("sink", 1.0, &[slow, _fast]);
        let s = g.schedule();
        let path = g.critical_path(&s);
        assert_eq!(path, vec![root, slow, sink]);
    }

    #[test]
    fn breakdown_accounts_critical_path_only() {
        let mut g = TaskGraph::new();
        let root = g.add("comm", 2.0, &[]);
        let slow = g.add("compute", 6.0, &[root]);
        let _fast = g.add("compute", 1.0, &[root]);
        let _sink = g.add("comm", 1.0, &[slow, _fast]);
        let s = g.schedule();
        let b = g.breakdown(&s);
        assert_eq!(b["comm"], 3.0);
        assert_eq!(b["compute"], 6.0, "only the slow branch counts");
        let total: f64 = b.values().sum();
        assert!((total - s.makespan()).abs() < 1e-12);
    }

    #[test]
    fn independent_roots_run_in_parallel() {
        let mut g = TaskGraph::new();
        g.add("a", 4.0, &[]);
        g.add("b", 3.0, &[]);
        assert_eq!(g.schedule().makespan(), 4.0);
    }

    #[test]
    fn empty_graph_has_zero_makespan() {
        let g = TaskGraph::new();
        assert_eq!(g.schedule().makespan(), 0.0);
        assert!(g.critical_path(&g.schedule()).is_empty());
    }

    #[test]
    #[should_panic(expected = "must precede")]
    fn forward_reference_rejected() {
        let mut g = TaskGraph::new();
        let _a = g.add("a", 1.0, &[TaskId(5)]);
    }

    #[test]
    fn try_add_reports_typed_errors() {
        let mut g = TaskGraph::new();
        let a = g.try_add("a", 1.0, &[]).expect("valid");
        // Forward and self references are rejected with the offending ids.
        assert_eq!(
            g.try_add("b", 1.0, &[TaskId(7)]),
            Err(GraphError::ForwardDependency { dep: TaskId(7), task: TaskId(1) })
        );
        assert!(matches!(
            g.try_add("b", f64::NAN, &[a]),
            Err(GraphError::BadDuration { duration }) if duration.is_nan()
        ));
        assert!(g.try_add("b", -1.0, &[a]).is_err());
        assert!(g.try_add("b", f64::INFINITY, &[a]).is_err());
        // Rejected insertions must not have grown the graph.
        assert_eq!(g.len(), 1);
        let b = g.try_add("b", 2.0, &[a]).expect("valid");
        assert_eq!(g.schedule().finish(b), 3.0);
        let err = GraphError::ForwardDependency { dep: TaskId(7), task: TaskId(1) };
        assert!(err.to_string().contains("must precede"));
    }

    #[test]
    #[should_panic(expected = "duration must be finite and >= 0")]
    fn negative_duration_rejected() {
        let mut g = TaskGraph::new();
        let _ = g.add("a", -0.5, &[]);
    }

    #[test]
    fn categories_are_interned_once() {
        let mut g = TaskGraph::new();
        let a = g.add("comm", 1.0, &[]);
        let b = g.add("compute", 2.0, &[a]);
        let c = g.add("comm", 3.0, &[b]);
        assert_eq!(g.num_categories(), 2, "repeated categories share one entry");
        assert_eq!(g.category(a), "comm");
        assert_eq!(g.category(c), "comm");
        let s = g.schedule();
        let bd = g.breakdown(&s);
        assert_eq!(bd.len(), 2);
        assert_eq!(bd["comm"], 4.0);
        assert_eq!(bd["compute"], 2.0);
    }

    #[test]
    fn zero_duration_tasks_are_fine() {
        let mut g = TaskGraph::new();
        let a = g.add("a", 0.0, &[]);
        let b = g.add("b", 1.0, &[a]);
        let s = g.schedule();
        assert_eq!(s.finish(b), 1.0);
    }
}
