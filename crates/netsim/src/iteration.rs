//! Per-iteration latency simulation for the three systems under study.
//!
//! The simulator composes one training iteration as a task graph whose
//! durations come from byte/FLOP accounting (α–β model for communication,
//! throughput model for compute). It produces the makespan (Figure 11's
//! iteration latency), the per-component breakdown (Figure 12), the token
//! survival fraction (Table 1 / Figure 8's analytic counterpart), and the
//! per-rank GPU memory footprint used for FlexMoE's OOM check (§5.3).
//!
//! The straggler effect is modeled faithfully: expert compute and
//! all-to-all phases take the **max over ranks**, driven by the actual
//! placement (contiguous slot assignment, as Algorithm 1 produces).

use crate::event::TaskGraph;
use crate::topology::{HardwareSpec, ModelCostConfig};

/// Which system's iteration to simulate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimSystem {
    /// DeepSpeed: static uniform replication, replicas of one class on
    /// distinct ranks, optimizer sharded across the EDP group (ZeRO-1).
    DeepSpeedStatic,
    /// SYMI: per-iteration adaptive replication, hierarchical all-reduce,
    /// optimizer uniformly sharded across all nodes.
    Symi,
    /// FlexMoE: adaptive replication with optimizer state *coupled* to the
    /// instances; pays a blocking migration on rebalancing iterations.
    FlexMoE,
}

/// Extra work performed on a FlexMoE rebalancing iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RebalanceSpec {
    /// Expert replicas moved per layer this iteration (0 ⇒ plain iteration).
    pub moved_replicas_per_layer: usize,
}

/// One component of the simulated iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    pub name: &'static str,
    pub seconds: f64,
}

/// Result of simulating one iteration.
#[derive(Clone, Debug)]
pub struct IterationBreakdown {
    pub components: Vec<Component>,
    /// Fraction of routed tokens that fit under capacity.
    pub survived_fraction: f64,
    /// Peak GPU bytes on the most loaded rank.
    pub gpu_peak_bytes: f64,
}

impl IterationBreakdown {
    /// Iteration latency: sum of components (the phases chain serially; the
    /// per-rank parallelism inside each phase is already folded into its
    /// duration via rank maxima).
    pub fn total_seconds(&self) -> f64 {
        self.components.iter().map(|c| c.seconds).sum()
    }

    /// Forward-pass latency only (Table 1's latency column).
    pub fn forward_seconds(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| matches!(c.name, "dense_fwd" | "a2a_fwd" | "expert_fwd" | "router_meta"))
            .map(|c| c.seconds)
            .sum()
    }

    pub fn component(&self, name: &str) -> f64 {
        self.components.iter().filter(|c| c.name == name).map(|c| c.seconds).sum()
    }
}

/// Iteration simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct IterationSim {
    pub model: ModelCostConfig,
    pub hw: HardwareSpec,
    /// Nodes (= ranks; one GPU per node as in the paper's testbed).
    pub nodes: usize,
    /// Expert slots per rank (`s`).
    pub slots_per_rank: usize,
    /// Expert classes (`E`).
    pub expert_classes: usize,
    /// Capacity factor (the paper evaluates 1.0).
    pub capacity_factor: f64,
    /// Sequence length (attention cost term).
    pub seq_len: usize,
}

impl IterationSim {
    /// The paper's evaluation setup for a given model: 16 ranks, 16 expert
    /// classes, 4 slots per GPU, capacity factor 1.0, sequence length 512.
    pub fn paper_eval(model: ModelCostConfig) -> Self {
        Self {
            model,
            hw: HardwareSpec::paper_eval_cluster(),
            nodes: 16,
            slots_per_rank: 4,
            expert_classes: 16,
            capacity_factor: 1.0,
            seq_len: 512,
        }
    }

    fn total_slots(&self) -> usize {
        self.nodes * self.slots_per_rank
    }

    /// Per-slot token capacity (§3.4): `cf × tokens_per_batch / (sN)`.
    pub fn slot_capacity(&self) -> f64 {
        self.capacity_factor * self.model.tokens_per_batch as f64 / self.total_slots() as f64
    }

    /// Simulates one iteration.
    ///
    /// `tokens_per_class[i]` is the router's global assignment for class
    /// `i`; `replicas_per_class[i]` its replica count this iteration
    /// (uniform `sN/E` for the static baseline). Replica counts must sum to
    /// `sN`.
    pub fn simulate(
        &self,
        tokens_per_class: &[f64],
        replicas_per_class: &[usize],
        system: SimSystem,
        rebalance: RebalanceSpec,
    ) -> IterationBreakdown {
        assert_eq!(tokens_per_class.len(), self.expert_classes, "one token count per class");
        assert_eq!(replicas_per_class.len(), self.expert_classes, "one replica count per class");
        let total_replicas: usize = replicas_per_class.iter().sum();
        assert_eq!(total_replicas, self.total_slots(), "replicas must fill all slots");
        assert!(replicas_per_class.iter().all(|&r| r >= 1), "every class needs ≥1 replica");

        let hw = &self.hw;
        let m = &self.model;
        let n = self.nodes;
        let s = self.slots_per_rank;
        let e = self.expert_classes;
        let layers = m.layers as f64;
        let g_bytes = m.expert_grad_bytes();
        let w_bytes = m.expert_weight_bytes();
        let o_bytes = m.expert_optimizer_bytes();

        // ---- Token survival under per-class capacity (§3.4). ----
        let slot_cap = self.slot_capacity();
        let survived: Vec<f64> = tokens_per_class
            .iter()
            .zip(replicas_per_class)
            .map(|(&t, &r)| t.min(slot_cap * r as f64))
            .collect();
        let total_tokens: f64 = tokens_per_class.iter().sum();
        let total_survived: f64 = survived.iter().sum();
        let survived_fraction =
            if total_tokens > 0.0 { total_survived / total_tokens } else { 1.0 };

        // ---- Placement: slot k hosts `slot_class[k]`. ----
        // SYMI packs each class's replicas contiguously (Algorithm 1);
        // DeepSpeed stripes classes round-robin so replicas land on distinct
        // ranks (it has no intra-rank EDP, §4.1); FlexMoE likewise spreads
        // replicas across ranks, greedily.
        let slot_class: Vec<usize> = match system {
            SimSystem::Symi => {
                let mut v = Vec::with_capacity(self.total_slots());
                for (class, &r) in replicas_per_class.iter().enumerate() {
                    v.extend(std::iter::repeat_n(class, r));
                }
                v
            }
            SimSystem::DeepSpeedStatic => (0..self.total_slots()).map(|k| k % e).collect(),
            SimSystem::FlexMoE => {
                // Greedy spread: replicas of each class go to the currently
                // emptiest ranks, avoiding ranks already hosting the class.
                let mut free = vec![s; n];
                let mut hosts: Vec<Vec<bool>> = vec![vec![false; e]; n];
                let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); n];
                let mut order: Vec<usize> = (0..e).collect();
                order.sort_by_key(|&c| std::cmp::Reverse(replicas_per_class[c]));
                for &class in &order {
                    for _ in 0..replicas_per_class[class] {
                        let rank = (0..n)
                            .filter(|&r| free[r] > 0)
                            .max_by_key(|&r| (free[r], !hosts[r][class], std::cmp::Reverse(r)))
                            .expect("slots available by the sum invariant");
                        free[rank] -= 1;
                        hosts[rank][class] = true;
                        assignment[rank].push(class);
                    }
                }
                assignment.into_iter().flatten().collect()
            }
        };
        debug_assert_eq!(slot_class.len(), self.total_slots());

        // Per-class distinct host ranks (EDP ring sizes) and per-rank load.
        let mut host_ranks: Vec<Vec<usize>> = vec![Vec::new(); e];
        let mut rank_tokens = vec![0.0f64; n];
        let mut rank_classes: Vec<Vec<usize>> = vec![Vec::new(); n];
        for (slot, &class) in slot_class.iter().enumerate() {
            let rank = slot / s;
            rank_tokens[rank] += survived[class] / replicas_per_class[class] as f64;
            if !rank_classes[rank].contains(&class) {
                rank_classes[rank].push(class);
            }
            if !host_ranks[class].contains(&rank) {
                host_ranks[class].push(rank);
            }
        }
        let ranks_hosting: Vec<usize> = host_ranks.iter().map(Vec::len).collect();
        let static_ring = self.total_slots() / e;

        // ---- Phase durations. ----
        let tokens_per_rank = m.tokens_per_batch as f64 / n as f64;
        let emb = m.token_embedding_bytes();
        let gpu = hw.gpu_flops;

        let dense_fwd = layers
            * (tokens_per_rank * m.dense_flops_per_token(self.seq_len) / gpu
                + hw.framework_layer_overhead);
        let dense_bwd = 2.0 * dense_fwd;

        // All-to-all: every rank sends its local survived tokens; the busiest
        // rank receives `max(rank_tokens)`; α per peer message.
        let max_recv_tokens = rank_tokens.iter().copied().fold(0.0, f64::max);
        let sent_tokens = total_survived / n as f64;
        let a2a_once =
            max_recv_tokens.max(sent_tokens) * emb / hw.bw_net + hw.net_latency * (n as f64 - 1.0);
        let a2a_fwd = layers * 2.0 * a2a_once; // dispatch + combine
        let a2a_bwd = layers * 2.0 * a2a_once; // grad scatter + gather

        let max_rank_flops = max_recv_tokens * m.expert_flops_per_token();
        let expert_fwd = layers * max_rank_flops / gpu;
        let expert_bwd = 2.0 * expert_fwd;

        // Expert-data-parallel gradient synchronization (ring all-reduce,
        // volume 2(m−1)/m · G per participating rank). SYMI's hierarchical
        // variant rings over *ranks hosting the class* (fewer when packed);
        // DeepSpeed rings over all r replicas (each on its own rank);
        // FlexMoE inherits the spread-out placement constraint as well.
        let ring = |mm: usize| {
            if mm <= 1 {
                0.0
            } else {
                2.0 * (mm as f64 - 1.0) / mm as f64 * g_bytes / hw.bw_net
                    + 2.0 * hw.net_latency * (mm as f64 - 1.0)
            }
        };
        // The ring size is the number of distinct host ranks per class —
        // this is where SYMI's intra-rank packing pays off (rings shrink to
        // 1 when a whole class fits on one rank) while DeepSpeed/FlexMoE
        // ring over every replica.
        let edp_sync = layers
            * (0..n)
                .map(|rank| rank_classes[rank].iter().map(|&c| ring(ranks_hosting[c])).sum::<f64>())
                .fold(0.0, f64::max);

        // Grad Communication Phase (§3.3/A.2): shards → optimizer.
        let (grad_net, grad_pcie) = match system {
            SimSystem::Symi => (
                // Shards of non-local classes fetched over the network,
                // round-robin balanced (Algorithm 2).
                (0..n)
                    .map(|rank| {
                        (e - rank_classes[rank].len()) as f64 * g_bytes / n as f64 / hw.bw_net
                    })
                    .fold(0.0, f64::max),
                e as f64 * g_bytes / n as f64 / hw.bw_pci,
            ),
            // Coupled designs: the shard is local after the EDP all-reduce.
            SimSystem::DeepSpeedStatic | SimSystem::FlexMoE => {
                (0.0, s as f64 * g_bytes / static_ring as f64 / hw.bw_pci)
            }
        };
        let grad_comm = layers * (grad_net + grad_pcie);

        // Offloaded optimizer step over this rank's share of state:
        // E·O/N bytes for every system (footprints are equal, §3.3-I).
        let opt_step = layers * (e as f64 * o_bytes / n as f64) / hw.host_opt_bytes_per_s;

        // Weight Communication Phase: updated weights → slots (new placement
        // for SYMI — same volume either way, §3.3-II).
        let (weight_net, weight_pcie) = match system {
            SimSystem::Symi => (
                (s as f64 * n as f64 - s as f64) / n as f64 * w_bytes / hw.bw_net,
                e as f64 * w_bytes / n as f64 / hw.bw_pci,
            ),
            SimSystem::DeepSpeedStatic | SimSystem::FlexMoE => (
                s as f64 * (static_ring as f64 - 1.0) / static_ring as f64 * w_bytes / hw.bw_net,
                s as f64 * w_bytes / static_ring as f64 / hw.bw_pci,
            ),
        };
        let weight_comm = layers * (weight_net + weight_pcie);

        // SYMI's new components: popularity all-reduce + placement scheduler
        // + metadata updates (§5.3 reports ~1% of iteration in aggregate).
        let router_meta = match system {
            SimSystem::Symi => {
                let pop_ar =
                    2.0 * (n as f64).log2().ceil() * hw.net_latency + e as f64 * 8.0 / hw.bw_net;
                let scheduler = e as f64 * 2.0e-6 + 1.0e-4;
                let metadata = 5.0e-5;
                layers * (pop_ar + scheduler + metadata)
            }
            _ => 0.0,
        };

        // FlexMoE's blocking rebalancing shuffle: each moved replica drags
        // its weights AND coupled optimizer state across the network and
        // through PCIe (§2.2), and the affected expert's communicator group
        // must be re-created — a blocking synchronization (§4.2).
        let migration = match system {
            SimSystem::FlexMoE => {
                let state_move = rebalance.moved_replicas_per_layer as f64
                    * ((w_bytes + o_bytes) / hw.bw_net + (w_bytes + o_bytes) / hw.bw_pci);
                let group_rebuild = rebalance.moved_replicas_per_layer as f64
                    * hw.group_init_per_rank
                    * (static_ring as f64 + 1.0);
                layers * (state_move + group_rebuild)
            }
            _ => 0.0,
        };

        // ---- GPU memory on the most loaded rank. ----
        // Weights+grads of the hosted slots, dense parameters, activations,
        // plus FlexMoE's transient double-buffer of migrated coupled state.
        let dense_params_bytes = layers * 12.0 * (m.d_model * m.d_model) as f64 * 2.0;
        let activations = tokens_per_rank * m.d_model as f64 * layers * 34.0 * 2.0;
        let expert_mem = layers * s as f64 * (w_bytes + g_bytes);
        let coupled_opt_on_gpu = match system {
            // FlexMoE couples optimizer state to the instance's device slot.
            SimSystem::FlexMoE => layers * s as f64 * o_bytes / static_ring as f64,
            _ => 0.0,
        };
        let migration_transient = match system {
            SimSystem::FlexMoE if rebalance.moved_replicas_per_layer > 0 => {
                // Current AND future state co-located during the move (§5.3).
                layers * (w_bytes + o_bytes)
            }
            _ => 0.0,
        };
        let gpu_peak_bytes = dense_params_bytes
            + activations
            + expert_mem
            + coupled_opt_on_gpu
            + migration_transient;

        // ---- Assemble the iteration as a serial task chain and read the
        // breakdown back from the graph (keeps the graph machinery honest).
        let phases: [(&'static str, f64); 11] = [
            ("dense_fwd", dense_fwd),
            ("router_meta", router_meta),
            ("a2a_fwd", a2a_fwd),
            ("expert_fwd", expert_fwd),
            ("dense_bwd", dense_bwd),
            ("a2a_bwd", a2a_bwd),
            ("expert_bwd", expert_bwd),
            ("edp_sync", edp_sync),
            ("grad_comm", grad_comm),
            ("opt_step", opt_step),
            ("weight_comm", weight_comm),
        ];
        let mut graph = TaskGraph::new();
        let mut prev = None;
        for (name, dur) in phases {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(graph.add(name, dur, &deps));
        }
        if migration > 0.0 {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(graph.add("migration", migration, &deps));
        }
        let schedule = graph.schedule();
        let _ = prev;

        let mut components: Vec<Component> =
            phases.iter().map(|&(name, seconds)| Component { name, seconds }).collect();
        if migration > 0.0 {
            components.push(Component { name: "migration", seconds: migration });
        }
        debug_assert!(
            (schedule.makespan() - components.iter().map(|c| c.seconds).sum::<f64>()).abs() < 1e-9
        );

        IterationBreakdown { components, survived_fraction, gpu_peak_bytes }
    }

    /// Uniform static replication vector (`r = sN/E` each).
    pub fn uniform_replicas(&self) -> Vec<usize> {
        let r = self.total_slots() / self.expert_classes;
        assert_eq!(r * self.expert_classes, self.total_slots(), "sN must divide by E");
        vec![r; self.expert_classes]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> IterationSim {
        IterationSim::paper_eval(ModelCostConfig::gpt_small())
    }

    fn uniform_tokens(sim: &IterationSim) -> Vec<f64> {
        vec![sim.model.tokens_per_batch as f64 / sim.expert_classes as f64; sim.expert_classes]
    }

    fn skewed_tokens(sim: &IterationSim) -> Vec<f64> {
        // Zipf-ish: class 0 gets half the tokens.
        let e = sim.expert_classes;
        let total = sim.model.tokens_per_batch as f64;
        let mut t = vec![total * 0.5 / (e as f64 - 1.0); e];
        t[0] = total * 0.5;
        t
    }

    /// Popularity-proportional replicas for the skewed distribution (half
    /// the slots to class 0), respecting the ≥1 minimum.
    fn proportional_replicas(sim: &IterationSim, tokens: &[f64]) -> Vec<usize> {
        let slots = sim.nodes * sim.slots_per_rank;
        let total: f64 = tokens.iter().sum();
        let mut r: Vec<usize> =
            tokens.iter().map(|t| ((t / total * slots as f64).round() as usize).max(1)).collect();
        // Fix rounding drift.
        while r.iter().sum::<usize>() > slots {
            let i = (0..r.len()).max_by_key(|&i| r[i]).unwrap();
            r[i] -= 1;
        }
        while r.iter().sum::<usize>() < slots {
            let i = (0..r.len()).max_by_key(|&i| r[i]).unwrap();
            r[i] += 1;
        }
        r
    }

    #[test]
    fn uniform_load_survives_fully_at_cf1() {
        let s = sim();
        let b = s.simulate(
            &uniform_tokens(&s),
            &s.uniform_replicas(),
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
        );
        assert!((b.survived_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_load_drops_tokens_under_static_replication() {
        let s = sim();
        let b = s.simulate(
            &skewed_tokens(&s),
            &s.uniform_replicas(),
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
        );
        assert!(b.survived_fraction < 0.7, "got {}", b.survived_fraction);
    }

    #[test]
    fn proportional_replication_rescues_dropped_tokens() {
        let s = sim();
        let tokens = skewed_tokens(&s);
        let static_b = s.simulate(
            &tokens,
            &s.uniform_replicas(),
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
        );
        let r = proportional_replicas(&s, &tokens);
        let symi_b = s.simulate(&tokens, &r, SimSystem::Symi, RebalanceSpec::default());
        assert!(
            symi_b.survived_fraction > static_b.survived_fraction + 0.2,
            "symi {} vs static {}",
            symi_b.survived_fraction,
            static_b.survived_fraction
        );
    }

    #[test]
    fn higher_capacity_factor_raises_survival_and_latency() {
        let mut s = sim();
        let tokens = skewed_tokens(&s);
        let mut prev_surv = 0.0;
        let mut prev_lat = 0.0;
        for cf in [1.0, 2.0, 4.0] {
            s.capacity_factor = cf;
            let b = s.simulate(
                &tokens,
                &s.uniform_replicas(),
                SimSystem::DeepSpeedStatic,
                RebalanceSpec::default(),
            );
            assert!(b.survived_fraction >= prev_surv);
            assert!(b.forward_seconds() >= prev_lat, "cf {cf}");
            prev_surv = b.survived_fraction;
            prev_lat = b.forward_seconds();
        }
        // Even ×4 capacity cannot absorb a class holding half the batch
        // (Table 1 tops out at ~75% survival too).
        assert!(prev_surv > 0.7 && prev_surv < 1.0, "cf=4 survival {prev_surv}");
    }

    #[test]
    fn flexmoe_rebalance_iteration_is_much_slower() {
        let s = sim();
        let tokens = skewed_tokens(&s);
        let r = s.uniform_replicas();
        let plain = s.simulate(&tokens, &r, SimSystem::FlexMoE, RebalanceSpec::default());
        let rebal = s.simulate(
            &tokens,
            &r,
            SimSystem::FlexMoE,
            RebalanceSpec { moved_replicas_per_layer: 2 },
        );
        let ratio = rebal.total_seconds() / plain.total_seconds();
        assert!(ratio > 1.5, "migration must dominate, got ratio {ratio}");
        assert!(rebal.component("migration") > 0.0);
        assert_eq!(plain.component("migration"), 0.0);
    }

    #[test]
    fn symi_router_meta_overhead_is_small() {
        let s = sim();
        let tokens = uniform_tokens(&s);
        let b =
            s.simulate(&tokens, &s.uniform_replicas(), SimSystem::Symi, RebalanceSpec::default());
        let frac = b.component("router_meta") / b.total_seconds();
        assert!(frac < 0.03, "router/scheduler/metadata must stay ~1%, got {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    fn symi_iteration_beats_deepspeed_on_uniform_load() {
        // §5.3: SYMI is slightly faster than DeepSpeed thanks to the packed
        // hierarchical all-reduce (intra-rank replicas shrink the rings).
        let s = sim();
        let tokens = uniform_tokens(&s);
        let symi =
            s.simulate(&tokens, &s.uniform_replicas(), SimSystem::Symi, RebalanceSpec::default());
        let ds = s.simulate(
            &tokens,
            &s.uniform_replicas(),
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
        );
        assert!(
            symi.total_seconds() < ds.total_seconds(),
            "symi {} vs deepspeed {}",
            symi.total_seconds(),
            ds.total_seconds()
        );
        let gain = 1.0 - symi.total_seconds() / ds.total_seconds();
        assert!(
            (0.005..0.2).contains(&gain),
            "the win must be modest (paper: 2.8–9.3%), got {gain}"
        );
    }

    #[test]
    fn flexmoe_migration_transient_raises_memory() {
        let s = IterationSim::paper_eval(ModelCostConfig::gpt_large());
        let tokens = uniform_tokens(&s);
        let r = s.uniform_replicas();
        let plain = s.simulate(&tokens, &r, SimSystem::FlexMoE, RebalanceSpec::default());
        let rebal = s.simulate(
            &tokens,
            &r,
            SimSystem::FlexMoE,
            RebalanceSpec { moved_replicas_per_layer: 1 },
        );
        assert!(rebal.gpu_peak_bytes > plain.gpu_peak_bytes);
        let symi = s.simulate(&tokens, &r, SimSystem::Symi, RebalanceSpec::default());
        assert!(symi.gpu_peak_bytes < plain.gpu_peak_bytes, "decoupled state uses less HBM");
    }

    #[test]
    fn larger_models_take_longer() {
        let tokens_of = |s: &IterationSim| uniform_tokens(s);
        let mut prev = 0.0;
        for cfg in [
            ModelCostConfig::gpt_small(),
            ModelCostConfig::gpt_medium(),
            ModelCostConfig::gpt_large(),
        ] {
            let s = IterationSim::paper_eval(cfg);
            let b = s.simulate(
                &tokens_of(&s),
                &s.uniform_replicas(),
                SimSystem::Symi,
                RebalanceSpec::default(),
            );
            assert!(b.total_seconds() > prev, "{}", cfg.name);
            prev = b.total_seconds();
        }
    }

    #[test]
    #[should_panic(expected = "replicas must fill all slots")]
    fn replica_sum_mismatch_panics() {
        let s = sim();
        let mut r = s.uniform_replicas();
        r[0] += 1;
        let _ = s.simulate(&uniform_tokens(&s), &r, SimSystem::Symi, RebalanceSpec::default());
    }
}
