//! Per-iteration latency simulation for the three systems under study.
//!
//! The simulator composes one training iteration as a task graph whose
//! durations come from byte/FLOP accounting (α–β model for communication,
//! throughput model for compute). It produces the makespan (Figure 11's
//! iteration latency), the per-component breakdown (Figure 12), the token
//! survival fraction (Table 1 / Figure 8's analytic counterpart), and the
//! per-rank GPU memory footprint used for FlexMoE's OOM check (§5.3).
//!
//! The straggler effect is modeled faithfully: expert compute and
//! all-to-all phases take the **max over ranks**, driven by the actual
//! placement (contiguous slot assignment, as Algorithm 1 produces).

use crate::costmodel::{CommCostModel, ShardScope, TierPhase, TieredCostModel};
use crate::event::TaskGraph;
use crate::placement::SlotPlacement;
use crate::topology::{HardwareSpec, ModelCostConfig, Topology};

/// Which system's iteration to simulate.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum SimSystem {
    /// DeepSpeed: static uniform replication, replicas of one class on
    /// distinct ranks, optimizer sharded across the EDP group (ZeRO-1).
    DeepSpeedStatic,
    /// SYMI: per-iteration adaptive replication, hierarchical all-reduce,
    /// optimizer uniformly sharded across all nodes.
    Symi,
    /// FlexMoE: adaptive replication with optimizer state *coupled* to the
    /// instances; pays a blocking migration on rebalancing iterations.
    FlexMoE,
}

/// Extra work performed on a FlexMoE rebalancing iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq)]
pub struct RebalanceSpec {
    /// Expert replicas moved per layer this iteration (0 ⇒ plain iteration).
    pub moved_replicas_per_layer: usize,
}

/// One component of the simulated iteration.
#[derive(Clone, Debug, PartialEq)]
pub struct Component {
    pub name: &'static str,
    pub seconds: f64,
}

/// Result of simulating one iteration.
#[derive(Clone, Debug)]
pub struct IterationBreakdown {
    pub components: Vec<Component>,
    /// Fraction of routed tokens that fit under capacity.
    pub survived_fraction: f64,
    /// Peak GPU bytes on the most loaded rank.
    pub gpu_peak_bytes: f64,
    /// Cluster-wide network bytes attributed to each topology tier
    /// (innermost first). Empty for the flat [`IterationSim::simulate`],
    /// which has no tiers to attribute to.
    pub comm_bytes_by_tier: Vec<f64>,
}

impl IterationBreakdown {
    /// Iteration latency: sum of components (the phases chain serially; the
    /// per-rank parallelism inside each phase is already folded into its
    /// duration via rank maxima).
    pub fn total_seconds(&self) -> f64 {
        self.components.iter().map(|c| c.seconds).sum()
    }

    /// Forward-pass latency only (Table 1's latency column).
    pub fn forward_seconds(&self) -> f64 {
        self.components
            .iter()
            .filter(|c| matches!(c.name, "dense_fwd" | "a2a_fwd" | "expert_fwd" | "router_meta"))
            .map(|c| c.seconds)
            .sum()
    }

    pub fn component(&self, name: &str) -> f64 {
        self.components.iter().filter(|c| c.name == name).map(|c| c.seconds).sum()
    }
}

/// Iteration simulator configuration.
#[derive(Clone, Copy, Debug)]
pub struct IterationSim {
    pub model: ModelCostConfig,
    pub hw: HardwareSpec,
    /// Nodes (= ranks; one GPU per node as in the paper's testbed).
    pub nodes: usize,
    /// Expert slots per rank (`s`).
    pub slots_per_rank: usize,
    /// Expert classes (`E`).
    pub expert_classes: usize,
    /// Capacity factor (the paper evaluates 1.0).
    pub capacity_factor: f64,
    /// Sequence length (attention cost term).
    pub seq_len: usize,
}

impl IterationSim {
    /// The paper's evaluation setup for a given model: 16 ranks, 16 expert
    /// classes, 4 slots per GPU, capacity factor 1.0, sequence length 512.
    pub fn paper_eval(model: ModelCostConfig) -> Self {
        Self {
            model,
            hw: HardwareSpec::paper_eval_cluster(),
            nodes: 16,
            slots_per_rank: 4,
            expert_classes: 16,
            capacity_factor: 1.0,
            seq_len: 512,
        }
    }

    fn total_slots(&self) -> usize {
        self.nodes * self.slots_per_rank
    }

    /// Per-slot token capacity (§3.4): `cf × tokens_per_batch / (sN)`.
    pub fn slot_capacity(&self) -> f64 {
        self.capacity_factor * self.model.tokens_per_batch as f64 / self.total_slots() as f64
    }

    /// Simulates one iteration.
    ///
    /// `tokens_per_class[i]` is the router's global assignment for class
    /// `i`; `replicas_per_class[i]` its replica count this iteration
    /// (uniform `sN/E` for the static baseline). Replica counts must sum to
    /// `sN`.
    pub fn simulate(
        &self,
        tokens_per_class: &[f64],
        replicas_per_class: &[usize],
        system: SimSystem,
        rebalance: RebalanceSpec,
    ) -> IterationBreakdown {
        assert_eq!(tokens_per_class.len(), self.expert_classes, "one token count per class");
        assert_eq!(replicas_per_class.len(), self.expert_classes, "one replica count per class");
        let total_replicas: usize = replicas_per_class.iter().sum();
        assert_eq!(total_replicas, self.total_slots(), "replicas must fill all slots");
        assert!(replicas_per_class.iter().all(|&r| r >= 1), "every class needs ≥1 replica");

        let hw = &self.hw;
        let m = &self.model;
        let n = self.nodes;
        let s = self.slots_per_rank;
        let e = self.expert_classes;
        let layers = m.layers as f64;
        let g_bytes = m.expert_grad_bytes();
        let w_bytes = m.expert_weight_bytes();
        let o_bytes = m.expert_optimizer_bytes();

        // ---- Token survival under per-class capacity (§3.4). ----
        let slot_cap = self.slot_capacity();
        let survived: Vec<f64> = tokens_per_class
            .iter()
            .zip(replicas_per_class)
            .map(|(&t, &r)| t.min(slot_cap * r as f64))
            .collect();
        let total_tokens: f64 = tokens_per_class.iter().sum();
        let total_survived: f64 = survived.iter().sum();
        let survived_fraction =
            if total_tokens > 0.0 { total_survived / total_tokens } else { 1.0 };

        // ---- Placement: slot k hosts `slot_class[k]`. ----
        // SYMI packs each class's replicas contiguously (Algorithm 1);
        // DeepSpeed stripes classes round-robin so replicas land on distinct
        // ranks (it has no intra-rank EDP, §4.1); FlexMoE likewise spreads
        // replicas across ranks, greedily.
        let placement = self.placement(replicas_per_class, system);
        debug_assert_eq!(placement.total_slots(), self.total_slots());

        // Per-class distinct host ranks (EDP ring sizes) and per-rank load.
        let host_ranks = placement.host_ranks(e);
        let rank_classes = placement.rank_classes(e);
        let mut rank_tokens = vec![0.0f64; n];
        for slot in 0..placement.total_slots() {
            let class = placement.class_of_slot(slot);
            rank_tokens[placement.rank_of_slot(slot)] +=
                survived[class] / replicas_per_class[class] as f64;
        }
        let ranks_hosting: Vec<usize> = host_ranks.iter().map(Vec::len).collect();
        let static_ring = self.total_slots() / e;

        // ---- Phase durations. ----
        let tokens_per_rank = m.tokens_per_batch as f64 / n as f64;
        let emb = m.token_embedding_bytes();
        let gpu = hw.gpu_flops;

        let dense_fwd = layers
            * (tokens_per_rank * m.dense_flops_per_token(self.seq_len) / gpu
                + hw.framework_layer_overhead);
        let dense_bwd = 2.0 * dense_fwd;

        // All-to-all: every rank sends its local survived tokens; the busiest
        // rank receives `max(rank_tokens)`; α per peer message.
        let max_recv_tokens = rank_tokens.iter().copied().fold(0.0, f64::max);
        let sent_tokens = total_survived / n as f64;
        let a2a_once =
            max_recv_tokens.max(sent_tokens) * emb / hw.bw_net + hw.net_latency * (n as f64 - 1.0);
        let a2a_fwd = layers * 2.0 * a2a_once; // dispatch + combine
        let a2a_bwd = layers * 2.0 * a2a_once; // grad scatter + gather

        let max_rank_flops = max_recv_tokens * m.expert_flops_per_token();
        let expert_fwd = layers * max_rank_flops / gpu;
        let expert_bwd = 2.0 * expert_fwd;

        // Expert-data-parallel gradient synchronization (ring all-reduce,
        // volume 2(m−1)/m · G per participating rank). SYMI's hierarchical
        // variant rings over *ranks hosting the class* (fewer when packed);
        // DeepSpeed rings over all r replicas (each on its own rank);
        // FlexMoE inherits the spread-out placement constraint as well.
        let ring = |mm: usize| {
            if mm <= 1 {
                0.0
            } else {
                2.0 * (mm as f64 - 1.0) / mm as f64 * g_bytes / hw.bw_net
                    + 2.0 * hw.net_latency * (mm as f64 - 1.0)
            }
        };
        // The ring size is the number of distinct host ranks per class —
        // this is where SYMI's intra-rank packing pays off (rings shrink to
        // 1 when a whole class fits on one rank) while DeepSpeed/FlexMoE
        // ring over every replica.
        let edp_sync = layers
            * (0..n)
                .map(|rank| rank_classes[rank].iter().map(|&c| ring(ranks_hosting[c])).sum::<f64>())
                .fold(0.0, f64::max);

        // Grad Communication Phase (§3.3/A.2): shards → optimizer.
        let (grad_net, grad_pcie) = match system {
            SimSystem::Symi => (
                // Shards of non-local classes fetched over the network,
                // round-robin balanced (Algorithm 2).
                (0..n)
                    .map(|rank| {
                        (e - rank_classes[rank].len()) as f64 * g_bytes / n as f64 / hw.bw_net
                    })
                    .fold(0.0, f64::max),
                e as f64 * g_bytes / n as f64 / hw.bw_pci,
            ),
            // Coupled designs: the shard is local after the EDP all-reduce.
            SimSystem::DeepSpeedStatic | SimSystem::FlexMoE => {
                (0.0, s as f64 * g_bytes / static_ring as f64 / hw.bw_pci)
            }
        };
        let grad_comm = layers * (grad_net + grad_pcie);

        // Offloaded optimizer step over this rank's share of state:
        // E·O/N bytes for every system (footprints are equal, §3.3-I).
        let opt_step = layers * (e as f64 * o_bytes / n as f64) / hw.host_opt_bytes_per_s;

        // Weight Communication Phase: updated weights → slots (new placement
        // for SYMI — same volume either way, §3.3-II).
        let (weight_net, weight_pcie) = match system {
            SimSystem::Symi => (
                (s as f64 * n as f64 - s as f64) / n as f64 * w_bytes / hw.bw_net,
                e as f64 * w_bytes / n as f64 / hw.bw_pci,
            ),
            SimSystem::DeepSpeedStatic | SimSystem::FlexMoE => (
                s as f64 * (static_ring as f64 - 1.0) / static_ring as f64 * w_bytes / hw.bw_net,
                s as f64 * w_bytes / static_ring as f64 / hw.bw_pci,
            ),
        };
        let weight_comm = layers * (weight_net + weight_pcie);

        // SYMI's new components: popularity all-reduce + placement scheduler
        // + metadata updates (§5.3 reports ~1% of iteration in aggregate).
        let router_meta = match system {
            SimSystem::Symi => {
                let pop_ar =
                    2.0 * (n as f64).log2().ceil() * hw.net_latency + e as f64 * 8.0 / hw.bw_net;
                let scheduler = e as f64 * 2.0e-6 + 1.0e-4;
                let metadata = 5.0e-5;
                layers * (pop_ar + scheduler + metadata)
            }
            _ => 0.0,
        };

        // FlexMoE's blocking rebalancing shuffle: each moved replica drags
        // its weights AND coupled optimizer state across the network and
        // through PCIe (§2.2), and the affected expert's communicator group
        // must be re-created — a blocking synchronization (§4.2).
        let migration = match system {
            SimSystem::FlexMoE => {
                let state_move = rebalance.moved_replicas_per_layer as f64
                    * ((w_bytes + o_bytes) / hw.bw_net + (w_bytes + o_bytes) / hw.bw_pci);
                let group_rebuild = rebalance.moved_replicas_per_layer as f64
                    * hw.group_init_per_rank
                    * (static_ring as f64 + 1.0);
                layers * (state_move + group_rebuild)
            }
            _ => 0.0,
        };

        // ---- GPU memory on the most loaded rank. ----
        // Weights+grads of the hosted slots, dense parameters, activations,
        // plus FlexMoE's transient double-buffer of migrated coupled state.
        let dense_params_bytes = layers * 12.0 * (m.d_model * m.d_model) as f64 * 2.0;
        let activations = tokens_per_rank * m.d_model as f64 * layers * 34.0 * 2.0;
        let expert_mem = layers * s as f64 * (w_bytes + g_bytes);
        let coupled_opt_on_gpu = match system {
            // FlexMoE couples optimizer state to the instance's device slot.
            SimSystem::FlexMoE => layers * s as f64 * o_bytes / static_ring as f64,
            _ => 0.0,
        };
        let migration_transient = match system {
            SimSystem::FlexMoE if rebalance.moved_replicas_per_layer > 0 => {
                // Current AND future state co-located during the move (§5.3).
                layers * (w_bytes + o_bytes)
            }
            _ => 0.0,
        };
        let gpu_peak_bytes = dense_params_bytes
            + activations
            + expert_mem
            + coupled_opt_on_gpu
            + migration_transient;

        // ---- Assemble the iteration as a serial task chain and read the
        // breakdown back from the graph (keeps the graph machinery honest).
        let phases: [(&'static str, f64); 11] = [
            ("dense_fwd", dense_fwd),
            ("router_meta", router_meta),
            ("a2a_fwd", a2a_fwd),
            ("expert_fwd", expert_fwd),
            ("dense_bwd", dense_bwd),
            ("a2a_bwd", a2a_bwd),
            ("expert_bwd", expert_bwd),
            ("edp_sync", edp_sync),
            ("grad_comm", grad_comm),
            ("opt_step", opt_step),
            ("weight_comm", weight_comm),
        ];
        let mut graph = TaskGraph::new();
        let mut prev = None;
        for (name, dur) in phases {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(graph.add(name, dur, &deps));
        }
        if migration > 0.0 {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(graph.add("migration", migration, &deps));
        }
        let schedule = graph.schedule();
        let _ = prev;

        let mut components: Vec<Component> =
            phases.iter().map(|&(name, seconds)| Component { name, seconds }).collect();
        if migration > 0.0 {
            components.push(Component { name: "migration", seconds: migration });
        }
        debug_assert!(
            (schedule.makespan() - components.iter().map(|c| c.seconds).sum::<f64>()).abs() < 1e-9
        );

        IterationBreakdown {
            components,
            survived_fraction,
            gpu_peak_bytes,
            comm_bytes_by_tier: Vec::new(),
        }
    }

    /// The slot placement each system's scheduler would produce.
    pub fn placement(&self, replicas_per_class: &[usize], system: SimSystem) -> SlotPlacement {
        match system {
            SimSystem::Symi => {
                SlotPlacement::symi_contiguous(replicas_per_class, self.slots_per_rank)
            }
            SimSystem::DeepSpeedStatic => {
                SlotPlacement::striped(self.expert_classes, self.nodes, self.slots_per_rank)
            }
            SimSystem::FlexMoE => {
                SlotPlacement::greedy_spread(replicas_per_class, self.nodes, self.slots_per_rank)
            }
        }
    }

    /// Simulates one iteration on a hierarchical topology, pricing every
    /// network phase by the narrowest tier each transfer crosses.
    ///
    /// `symi_scope` selects SYMI's optimizer-sharding domain for the grad
    /// and weight phases — [`ShardScope::Cluster`] is the paper's uniform
    /// `k = 1` point, [`ShardScope::TierCell`] the pod-aligned k-group
    /// variant of Appendix A.1. It is ignored for the coupled baselines,
    /// whose shard lives inside the EDP group by construction.
    ///
    /// The flat [`IterationSim::simulate`] remains the 16-rank oracle; on a
    /// single-tier [`Topology::flat`] with zero latency the two agree on the
    /// phases they price identically (see tests).
    pub fn simulate_hier(
        &self,
        topo: &Topology,
        tokens_per_class: &[f64],
        replicas_per_class: &[usize],
        system: SimSystem,
        rebalance: RebalanceSpec,
        symi_scope: ShardScope,
    ) -> IterationBreakdown {
        assert_eq!(topo.ranks(), self.nodes, "topology must cover exactly the simulated ranks");
        assert_eq!(tokens_per_class.len(), self.expert_classes, "one token count per class");
        assert_eq!(replicas_per_class.len(), self.expert_classes, "one replica count per class");
        let total_replicas: usize = replicas_per_class.iter().sum();
        assert_eq!(total_replicas, self.total_slots(), "replicas must fill all slots");

        let hw = &self.hw;
        let m = &self.model;
        let n = self.nodes;
        let s = self.slots_per_rank;
        let e = self.expert_classes;
        let layers = m.layers as f64;
        let g_bytes = m.expert_grad_bytes();
        let w_bytes = m.expert_weight_bytes();
        let o_bytes = m.expert_optimizer_bytes();
        let tiers = topo.num_tiers();
        let census = topo.tier_census();
        let flat_model = CommCostModel {
            nodes: n,
            expert_classes: e,
            slots_per_rank: s,
            grad_bytes: g_bytes,
            weight_bytes: w_bytes,
            optimizer_bytes: o_bytes,
            hw: *hw,
        };
        let tiered = TieredCostModel::from_flat(&flat_model, topo);
        let mut bytes_by_tier = vec![0.0f64; tiers];

        // ---- Token survival (identical to the flat path). ----
        let slot_cap = self.slot_capacity();
        let survived: Vec<f64> = tokens_per_class
            .iter()
            .zip(replicas_per_class)
            .map(|(&t, &r)| t.min(slot_cap * r as f64))
            .collect();
        let total_tokens: f64 = tokens_per_class.iter().sum();
        let total_survived: f64 = survived.iter().sum();
        let survived_fraction =
            if total_tokens > 0.0 { total_survived / total_tokens } else { 1.0 };

        let placement = self.placement(replicas_per_class, system);
        let host_ranks = placement.host_ranks(e);
        let rank_classes = placement.rank_classes(e);
        let mut rank_tokens = vec![0.0f64; n];
        for slot in 0..placement.total_slots() {
            let class = placement.class_of_slot(slot);
            rank_tokens[placement.rank_of_slot(slot)] +=
                survived[class] / replicas_per_class[class] as f64;
        }

        // ---- Compute phases: topology-independent. ----
        let tokens_per_rank = m.tokens_per_batch as f64 / n as f64;
        let emb = m.token_embedding_bytes();
        let gpu = hw.gpu_flops;
        let dense_fwd = layers
            * (tokens_per_rank * m.dense_flops_per_token(self.seq_len) / gpu
                + hw.framework_layer_overhead);
        let dense_bwd = 2.0 * dense_fwd;
        let max_recv_tokens = rank_tokens.iter().copied().fold(0.0, f64::max);
        let max_rank_flops = max_recv_tokens * m.expert_flops_per_token();
        let expert_fwd = layers * max_rank_flops / gpu;
        let expert_bwd = 2.0 * expert_fwd;

        // ---- All-to-all: token routing is uniform over peers, so the
        // busiest rank's bytes split across tiers in census proportion —
        // the tier census says how many of its n−1 peers sit behind each
        // bandwidth class.
        let sent_tokens = total_survived / n as f64;
        let a2a_bytes = max_recv_tokens.max(sent_tokens) * emb;
        let mut a2a_once = 0.0;
        for t in 0..tiers {
            let share = a2a_bytes * census[t] as f64 / (n as f64 - 1.0);
            a2a_once += share / topo.bw(t) + census[t] as f64 * topo.latency(t);
            // dispatch+combine, forward and backward: 4 traversals/layer.
            bytes_by_tier[t] += layers * 4.0 * n as f64 * share;
        }
        let a2a_fwd = layers * 2.0 * a2a_once;
        let a2a_bwd = layers * 2.0 * a2a_once;

        // ---- EDP gradient sync, priced per class over its host ranks.
        // The packed contiguous groups SYMI produces ring over fast inner
        // tiers; the striped/spread baselines ring across the spine. SYMI's
        // runtime picks the cheaper of ring and tier-tree per group (§4.1's
        // hierarchical all-reduce generalized to the topology).
        let mut class_sync: Vec<TierPhase> = Vec::with_capacity(e);
        for hosts in &host_ranks {
            let ring = tiered.ring_allreduce(hosts, g_bytes);
            let phase = match system {
                SimSystem::Symi => {
                    let tree = tiered.tree_allreduce(hosts, g_bytes);
                    if tree.seconds < ring.seconds {
                        tree
                    } else {
                        ring
                    }
                }
                _ => ring,
            };
            class_sync.push(phase);
        }
        let edp_sync = layers
            * (0..n)
                .map(|rank| rank_classes[rank].iter().map(|&c| class_sync[c].seconds).sum::<f64>())
                .fold(0.0, f64::max);
        for phase in &class_sync {
            for (acc, b) in bytes_by_tier.iter_mut().zip(&phase.bytes_by_tier) {
                *acc += layers * b;
            }
        }

        // ---- Grad and weight phases via the tiered shard exchange. ----
        let static_ring = self.total_slots() / e;
        let (grad_phase, weight_phase) = match system {
            SimSystem::Symi => {
                // Decoupled: every instance pushes shards to the owners
                // (§3.3's (sN−s)/N identity), owners push weights back.
                let grad = tiered.shard_exchange(&placement, symi_scope, g_bytes);
                let weight = tiered.shard_exchange(&placement, symi_scope, w_bytes);
                (grad, weight)
            }
            SimSystem::DeepSpeedStatic | SimSystem::FlexMoE => {
                // Coupled: the grad shard is local after the EDP all-reduce
                // (PCIe staging only); the weight all-gather spans the EDP
                // group wherever the stripe scattered it.
                let mut grad = TierPhase::zero(tiers);
                grad.pci_bytes_per_rank = s as f64 * g_bytes / static_ring as f64;
                grad.seconds = grad.pci_bytes_per_rank / hw.bw_pci;
                let weight = tiered.shard_exchange(&placement, ShardScope::EdpGroup, w_bytes);
                (grad, weight)
            }
        };
        let grad_comm = layers * grad_phase.seconds;
        let weight_comm = layers * weight_phase.seconds;
        for (t, acc) in bytes_by_tier.iter_mut().enumerate() {
            *acc += layers * (grad_phase.bytes_by_tier[t] + weight_phase.bytes_by_tier[t]);
        }

        let opt_step = layers * (e as f64 * o_bytes / n as f64) / hw.host_opt_bytes_per_s;

        // ---- SYMI's control plane: the popularity all-reduce crosses the
        // whole cluster, so it pays the outermost tier's α and β.
        let router_meta = match system {
            SimSystem::Symi => {
                let pop_ar = 2.0 * (n as f64).log2().ceil() * topo.max_latency()
                    + e as f64 * 8.0 / topo.narrowest_bw();
                let scheduler = e as f64 * 2.0e-6 + 1.0e-4;
                let metadata = 5.0e-5;
                layers * (pop_ar + scheduler + metadata)
            }
            _ => 0.0,
        };

        // ---- FlexMoE migration: coupled state drags across whatever tier
        // separates source and destination — worst case, the spine.
        let migration = match system {
            SimSystem::FlexMoE => {
                let moved = rebalance.moved_replicas_per_layer as f64;
                let state_move = moved
                    * ((w_bytes + o_bytes) / topo.narrowest_bw() + (w_bytes + o_bytes) / hw.bw_pci);
                let group_rebuild = moved * hw.group_init_per_rank * (static_ring as f64 + 1.0);
                bytes_by_tier[tiers - 1] += layers * moved * (w_bytes + o_bytes);
                layers * (state_move + group_rebuild)
            }
            _ => 0.0,
        };

        // ---- GPU memory: same accounting as the flat path. ----
        let dense_params_bytes = layers * 12.0 * (m.d_model * m.d_model) as f64 * 2.0;
        let activations = tokens_per_rank * m.d_model as f64 * layers * 34.0 * 2.0;
        let expert_mem = layers * s as f64 * (w_bytes + g_bytes);
        let coupled_opt_on_gpu = match system {
            SimSystem::FlexMoE => layers * s as f64 * o_bytes / static_ring as f64,
            _ => 0.0,
        };
        let migration_transient = match system {
            SimSystem::FlexMoE if rebalance.moved_replicas_per_layer > 0 => {
                layers * (w_bytes + o_bytes)
            }
            _ => 0.0,
        };
        let gpu_peak_bytes = dense_params_bytes
            + activations
            + expert_mem
            + coupled_opt_on_gpu
            + migration_transient;

        let mut components = vec![
            Component { name: "dense_fwd", seconds: dense_fwd },
            Component { name: "router_meta", seconds: router_meta },
            Component { name: "a2a_fwd", seconds: a2a_fwd },
            Component { name: "expert_fwd", seconds: expert_fwd },
            Component { name: "dense_bwd", seconds: dense_bwd },
            Component { name: "a2a_bwd", seconds: a2a_bwd },
            Component { name: "expert_bwd", seconds: expert_bwd },
            Component { name: "edp_sync", seconds: edp_sync },
            Component { name: "grad_comm", seconds: grad_comm },
            Component { name: "opt_step", seconds: opt_step },
            Component { name: "weight_comm", seconds: weight_comm },
        ];
        if migration > 0.0 {
            components.push(Component { name: "migration", seconds: migration });
        }

        IterationBreakdown {
            components,
            survived_fraction,
            gpu_peak_bytes,
            comm_bytes_by_tier: bytes_by_tier,
        }
    }

    /// Uniform static replication vector (`r = sN/E` each).
    pub fn uniform_replicas(&self) -> Vec<usize> {
        let r = self.total_slots() / self.expert_classes;
        assert_eq!(r * self.expert_classes, self.total_slots(), "sN must divide by E");
        vec![r; self.expert_classes]
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn sim() -> IterationSim {
        IterationSim::paper_eval(ModelCostConfig::gpt_small())
    }

    fn uniform_tokens(sim: &IterationSim) -> Vec<f64> {
        vec![sim.model.tokens_per_batch as f64 / sim.expert_classes as f64; sim.expert_classes]
    }

    fn skewed_tokens(sim: &IterationSim) -> Vec<f64> {
        // Zipf-ish: class 0 gets half the tokens.
        let e = sim.expert_classes;
        let total = sim.model.tokens_per_batch as f64;
        let mut t = vec![total * 0.5 / (e as f64 - 1.0); e];
        t[0] = total * 0.5;
        t
    }

    /// Popularity-proportional replicas for the skewed distribution (half
    /// the slots to class 0), respecting the ≥1 minimum.
    fn proportional_replicas(sim: &IterationSim, tokens: &[f64]) -> Vec<usize> {
        let slots = sim.nodes * sim.slots_per_rank;
        let total: f64 = tokens.iter().sum();
        let mut r: Vec<usize> =
            tokens.iter().map(|t| ((t / total * slots as f64).round() as usize).max(1)).collect();
        // Fix rounding drift.
        while r.iter().sum::<usize>() > slots {
            let i = (0..r.len()).max_by_key(|&i| r[i]).unwrap();
            r[i] -= 1;
        }
        while r.iter().sum::<usize>() < slots {
            let i = (0..r.len()).max_by_key(|&i| r[i]).unwrap();
            r[i] += 1;
        }
        r
    }

    #[test]
    fn uniform_load_survives_fully_at_cf1() {
        let s = sim();
        let b = s.simulate(
            &uniform_tokens(&s),
            &s.uniform_replicas(),
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
        );
        assert!((b.survived_fraction - 1.0).abs() < 1e-9);
    }

    #[test]
    fn skewed_load_drops_tokens_under_static_replication() {
        let s = sim();
        let b = s.simulate(
            &skewed_tokens(&s),
            &s.uniform_replicas(),
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
        );
        assert!(b.survived_fraction < 0.7, "got {}", b.survived_fraction);
    }

    #[test]
    fn proportional_replication_rescues_dropped_tokens() {
        let s = sim();
        let tokens = skewed_tokens(&s);
        let static_b = s.simulate(
            &tokens,
            &s.uniform_replicas(),
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
        );
        let r = proportional_replicas(&s, &tokens);
        let symi_b = s.simulate(&tokens, &r, SimSystem::Symi, RebalanceSpec::default());
        assert!(
            symi_b.survived_fraction > static_b.survived_fraction + 0.2,
            "symi {} vs static {}",
            symi_b.survived_fraction,
            static_b.survived_fraction
        );
    }

    #[test]
    fn higher_capacity_factor_raises_survival_and_latency() {
        let mut s = sim();
        let tokens = skewed_tokens(&s);
        let mut prev_surv = 0.0;
        let mut prev_lat = 0.0;
        for cf in [1.0, 2.0, 4.0] {
            s.capacity_factor = cf;
            let b = s.simulate(
                &tokens,
                &s.uniform_replicas(),
                SimSystem::DeepSpeedStatic,
                RebalanceSpec::default(),
            );
            assert!(b.survived_fraction >= prev_surv);
            assert!(b.forward_seconds() >= prev_lat, "cf {cf}");
            prev_surv = b.survived_fraction;
            prev_lat = b.forward_seconds();
        }
        // Even ×4 capacity cannot absorb a class holding half the batch
        // (Table 1 tops out at ~75% survival too).
        assert!(prev_surv > 0.7 && prev_surv < 1.0, "cf=4 survival {prev_surv}");
    }

    #[test]
    fn flexmoe_rebalance_iteration_is_much_slower() {
        let s = sim();
        let tokens = skewed_tokens(&s);
        let r = s.uniform_replicas();
        let plain = s.simulate(&tokens, &r, SimSystem::FlexMoE, RebalanceSpec::default());
        let rebal = s.simulate(
            &tokens,
            &r,
            SimSystem::FlexMoE,
            RebalanceSpec { moved_replicas_per_layer: 2 },
        );
        let ratio = rebal.total_seconds() / plain.total_seconds();
        assert!(ratio > 1.5, "migration must dominate, got ratio {ratio}");
        assert!(rebal.component("migration") > 0.0);
        assert_eq!(plain.component("migration"), 0.0);
    }

    #[test]
    fn symi_router_meta_overhead_is_small() {
        let s = sim();
        let tokens = uniform_tokens(&s);
        let b =
            s.simulate(&tokens, &s.uniform_replicas(), SimSystem::Symi, RebalanceSpec::default());
        let frac = b.component("router_meta") / b.total_seconds();
        assert!(frac < 0.03, "router/scheduler/metadata must stay ~1%, got {frac}");
        assert!(frac > 0.0);
    }

    #[test]
    fn symi_iteration_beats_deepspeed_on_uniform_load() {
        // §5.3: SYMI is slightly faster than DeepSpeed thanks to the packed
        // hierarchical all-reduce (intra-rank replicas shrink the rings).
        let s = sim();
        let tokens = uniform_tokens(&s);
        let symi =
            s.simulate(&tokens, &s.uniform_replicas(), SimSystem::Symi, RebalanceSpec::default());
        let ds = s.simulate(
            &tokens,
            &s.uniform_replicas(),
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
        );
        assert!(
            symi.total_seconds() < ds.total_seconds(),
            "symi {} vs deepspeed {}",
            symi.total_seconds(),
            ds.total_seconds()
        );
        let gain = 1.0 - symi.total_seconds() / ds.total_seconds();
        assert!(
            (0.005..0.2).contains(&gain),
            "the win must be modest (paper: 2.8–9.3%), got {gain}"
        );
    }

    #[test]
    fn flexmoe_migration_transient_raises_memory() {
        let s = IterationSim::paper_eval(ModelCostConfig::gpt_large());
        let tokens = uniform_tokens(&s);
        let r = s.uniform_replicas();
        let plain = s.simulate(&tokens, &r, SimSystem::FlexMoE, RebalanceSpec::default());
        let rebal = s.simulate(
            &tokens,
            &r,
            SimSystem::FlexMoE,
            RebalanceSpec { moved_replicas_per_layer: 1 },
        );
        assert!(rebal.gpu_peak_bytes > plain.gpu_peak_bytes);
        let symi = s.simulate(&tokens, &r, SimSystem::Symi, RebalanceSpec::default());
        assert!(symi.gpu_peak_bytes < plain.gpu_peak_bytes, "decoupled state uses less HBM");
    }

    #[test]
    fn larger_models_take_longer() {
        let tokens_of = |s: &IterationSim| uniform_tokens(s);
        let mut prev = 0.0;
        for cfg in [
            ModelCostConfig::gpt_small(),
            ModelCostConfig::gpt_medium(),
            ModelCostConfig::gpt_large(),
        ] {
            let s = IterationSim::paper_eval(cfg);
            let b = s.simulate(
                &tokens_of(&s),
                &s.uniform_replicas(),
                SimSystem::Symi,
                RebalanceSpec::default(),
            );
            assert!(b.total_seconds() > prev, "{}", cfg.name);
            prev = b.total_seconds();
        }
    }

    #[test]
    #[should_panic(expected = "replicas must fill all slots")]
    fn replica_sum_mismatch_panics() {
        let s = sim();
        let mut r = s.uniform_replicas();
        r[0] += 1;
        let _ = s.simulate(&uniform_tokens(&s), &r, SimSystem::Symi, RebalanceSpec::default());
    }

    #[test]
    fn hier_on_flat_topology_matches_flat_simulate_for_deepspeed() {
        // On a single-tier topology the tiered pricing must collapse to the
        // flat formulas. DeepSpeed's phases are priced identically in both
        // paths (the flat weight phase carries no α term, so zero latency).
        let mut s = sim();
        s.hw.net_latency = 0.0;
        let topo = crate::topology::Topology::flat(s.nodes, &s.hw);
        let tokens = uniform_tokens(&s);
        let r = s.uniform_replicas();
        let flat = s.simulate(&tokens, &r, SimSystem::DeepSpeedStatic, RebalanceSpec::default());
        let hier = s.simulate_hier(
            &topo,
            &tokens,
            &r,
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
            ShardScope::Cluster,
        );
        for c in &flat.components {
            let h = hier.component(c.name);
            assert!(
                (h - c.seconds).abs() <= 1e-9 * c.seconds.max(1.0),
                "{}: hier {} vs flat {}",
                c.name,
                h,
                c.seconds
            );
        }
        assert_eq!(hier.comm_bytes_by_tier.len(), 1);
        assert!(hier.comm_bytes_by_tier[0].is_finite() && hier.comm_bytes_by_tier[0] > 0.0);
        assert!(flat.comm_bytes_by_tier.is_empty());
    }

    #[test]
    fn hier_symi_beats_deepspeed_on_a_superpod_too() {
        // The packed-placement win survives (and grows) once the striped
        // baseline's EDP rings have to cross real tier boundaries.
        let s = sim();
        let topo = crate::topology::Topology::superpod(s.nodes);
        let tokens = uniform_tokens(&s);
        let r = s.uniform_replicas();
        let symi = s.simulate_hier(
            &topo,
            &tokens,
            &r,
            SimSystem::Symi,
            RebalanceSpec::default(),
            ShardScope::Cluster,
        );
        let ds = s.simulate_hier(
            &topo,
            &tokens,
            &r,
            SimSystem::DeepSpeedStatic,
            RebalanceSpec::default(),
            ShardScope::Cluster,
        );
        assert!(
            symi.component("edp_sync") < ds.component("edp_sync"),
            "packed rings must be cheaper: symi {} vs ds {}",
            symi.component("edp_sync"),
            ds.component("edp_sync")
        );
        for b in symi.comm_bytes_by_tier.iter().chain(&ds.comm_bytes_by_tier) {
            assert!(b.is_finite() && *b >= 0.0);
        }
        assert_eq!(symi.comm_bytes_by_tier.len(), topo.num_tiers());
    }
}
