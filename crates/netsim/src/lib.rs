//! # symi-netsim
//!
//! Performance modeling for the SYMI reproduction: the cluster/hardware
//! descriptions, the paper's analytic communication-cost formulas (§3.3
//! items I–III, Appendix A.1 and A.2), and a task-graph latency simulator
//! that turns byte and FLOP counts into the per-iteration latencies and
//! component breakdowns reported in Table 1, Table 3, Figure 11 and
//! Figure 12.
//!
//! Everything here is deterministic arithmetic over `f64` seconds and bytes;
//! no wall-clock time is ever consulted. The real data movement happens in
//! `symi-collectives`, whose traffic reports this crate prices.

pub mod costmodel;
pub mod event;
pub mod iteration;
pub mod placement;
pub mod topology;

pub use costmodel::{CommCostModel, CommCosts, ShardScope, SystemKind, TierPhase, TieredCostModel};
pub use event::{GraphError, TaskGraph, TaskId};
pub use iteration::{IterationBreakdown, IterationSim, RebalanceSpec, SimSystem};
pub use placement::SlotPlacement;
pub use topology::{HardwareSpec, ModelCostConfig, TierSpec, Topology};
