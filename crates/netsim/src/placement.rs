//! Slot-to-class placements for the simulated systems.
//!
//! The three systems under study differ in *where* expert replicas land:
//! SYMI packs each class's replicas contiguously (Algorithm 1), DeepSpeed
//! stripes classes round-robin so replicas sit on distinct ranks, and
//! FlexMoE spreads replicas greedily onto the emptiest ranks. The latency
//! simulator and the tiered cost model both price traffic off the same
//! placement, so the assignment logic lives here rather than in either.

/// A full assignment of `slots_per_rank × ranks` expert slots to classes.
/// Slot `k` lives on rank `k / slots_per_rank`.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct SlotPlacement {
    slots_per_rank: usize,
    slot_class: Vec<usize>,
}

impl SlotPlacement {
    /// SYMI's contiguous packing: class `c`'s replicas occupy consecutive
    /// slots (Algorithm 1's output shape).
    pub fn symi_contiguous(replicas_per_class: &[usize], slots_per_rank: usize) -> Self {
        let mut slot_class = Vec::with_capacity(replicas_per_class.iter().sum());
        for (class, &r) in replicas_per_class.iter().enumerate() {
            slot_class.extend(std::iter::repeat_n(class, r));
        }
        Self::checked(slots_per_rank, slot_class)
    }

    /// DeepSpeed's static stripe: slot `k` hosts class `k mod E`, so each
    /// class's replicas land on maximally spread-out ranks.
    pub fn striped(expert_classes: usize, ranks: usize, slots_per_rank: usize) -> Self {
        let slot_class = (0..ranks * slots_per_rank).map(|k| k % expert_classes).collect();
        Self::checked(slots_per_rank, slot_class)
    }

    /// FlexMoE's greedy spread: replicas of each class (most-replicated
    /// first) go to the currently emptiest ranks, avoiding ranks already
    /// hosting the class.
    pub fn greedy_spread(
        replicas_per_class: &[usize],
        ranks: usize,
        slots_per_rank: usize,
    ) -> Self {
        let e = replicas_per_class.len();
        let mut free = vec![slots_per_rank; ranks];
        let mut hosts: Vec<Vec<bool>> = vec![vec![false; e]; ranks];
        let mut assignment: Vec<Vec<usize>> = vec![Vec::new(); ranks];
        let mut order: Vec<usize> = (0..e).collect();
        order.sort_by_key(|&c| std::cmp::Reverse(replicas_per_class[c]));
        for &class in &order {
            for _ in 0..replicas_per_class[class] {
                let rank = (0..ranks)
                    .filter(|&r| free[r] > 0)
                    .max_by_key(|&r| (free[r], !hosts[r][class], std::cmp::Reverse(r)))
                    .expect("slots available by the sum invariant");
                free[rank] -= 1;
                hosts[rank][class] = true;
                assignment[rank].push(class);
            }
        }
        Self::checked(slots_per_rank, assignment.into_iter().flatten().collect())
    }

    fn checked(slots_per_rank: usize, slot_class: Vec<usize>) -> Self {
        assert!(slots_per_rank >= 1, "need at least one slot per rank");
        assert!(
            slot_class.len().is_multiple_of(slots_per_rank),
            "slot count {} must fill whole ranks of {} slots",
            slot_class.len(),
            slots_per_rank,
        );
        Self { slots_per_rank, slot_class }
    }

    pub fn slots_per_rank(&self) -> usize {
        self.slots_per_rank
    }

    pub fn total_slots(&self) -> usize {
        self.slot_class.len()
    }

    pub fn ranks(&self) -> usize {
        self.slot_class.len() / self.slots_per_rank
    }

    /// Class hosted by slot `k`.
    pub fn class_of_slot(&self, slot: usize) -> usize {
        self.slot_class[slot]
    }

    /// Rank hosting slot `k`.
    pub fn rank_of_slot(&self, slot: usize) -> usize {
        slot / self.slots_per_rank
    }

    /// Per-class distinct host ranks, in first-seen order (the EDP ring
    /// membership).
    pub fn host_ranks(&self, expert_classes: usize) -> Vec<Vec<usize>> {
        let mut hosts: Vec<Vec<usize>> = vec![Vec::new(); expert_classes];
        for (slot, &class) in self.slot_class.iter().enumerate() {
            let rank = slot / self.slots_per_rank;
            if hosts[class].last() != Some(&rank) && !hosts[class].contains(&rank) {
                hosts[class].push(rank);
            }
        }
        hosts
    }

    /// Per-class `(host rank, local replica count)` pairs.
    pub fn hosts_with_counts(&self, expert_classes: usize) -> Vec<Vec<(usize, usize)>> {
        let mut hosts: Vec<Vec<(usize, usize)>> = vec![Vec::new(); expert_classes];
        for (slot, &class) in self.slot_class.iter().enumerate() {
            let rank = slot / self.slots_per_rank;
            match hosts[class].iter_mut().find(|(r, _)| *r == rank) {
                Some((_, n)) => *n += 1,
                None => hosts[class].push((rank, 1)),
            }
        }
        hosts
    }

    /// Per-rank distinct classes hosted, in first-seen order.
    pub fn rank_classes(&self, expert_classes: usize) -> Vec<Vec<usize>> {
        let _ = expert_classes;
        let mut out: Vec<Vec<usize>> = vec![Vec::new(); self.ranks()];
        for (slot, &class) in self.slot_class.iter().enumerate() {
            let rank = slot / self.slots_per_rank;
            if !out[rank].contains(&class) {
                out[rank].push(class);
            }
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn contiguous_packing_minimizes_distinct_hosts() {
        // 4 ranks × 2 slots, classes with replicas [4, 2, 1, 1].
        let p = SlotPlacement::symi_contiguous(&[4, 2, 1, 1], 2);
        assert_eq!(p.ranks(), 4);
        let hosts = p.host_ranks(4);
        assert_eq!(hosts[0], vec![0, 1], "4 replicas pack onto 2 ranks");
        assert_eq!(hosts[1], vec![2]);
        assert_eq!(hosts[2], vec![3]);
        assert_eq!(hosts[3], vec![3]);
    }

    #[test]
    fn stripe_spreads_replicas_to_distinct_ranks() {
        // 4 ranks × 2 slots, 4 classes → r = 2, each class on 2 ranks.
        let p = SlotPlacement::striped(4, 4, 2);
        for hosts in p.host_ranks(4) {
            assert_eq!(hosts.len(), 2, "each replica on its own rank");
        }
    }

    #[test]
    fn greedy_spread_avoids_co_locating_a_class() {
        let p = SlotPlacement::greedy_spread(&[4, 2, 1, 1], 4, 2);
        assert_eq!(p.total_slots(), 8);
        let hosts = p.host_ranks(4);
        assert_eq!(hosts[0].len(), 4, "4 replicas of class 0 on 4 distinct ranks");
    }

    #[test]
    fn hosts_with_counts_tracks_multiplicity() {
        let p = SlotPlacement::symi_contiguous(&[4, 2, 1, 1], 2);
        let hc = p.hosts_with_counts(4);
        assert_eq!(hc[0], vec![(0, 2), (1, 2)]);
        assert_eq!(hc[3], vec![(3, 1)]);
        let total: usize = hc.iter().flatten().map(|&(_, n)| n).sum();
        assert_eq!(total, 8);
    }
}
