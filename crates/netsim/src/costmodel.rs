//! The paper's analytic communication-cost model: §3.3 items (I)–(III),
//! Appendix A.2's full derivation, and Appendix A.1's k-group partitioning
//! bound.
//!
//! Variables follow Table 2/4 of the paper:
//! `N` nodes, `E` expert classes, `s` expert slots per rank, `r` replicas
//! per expert (static baseline), `r_i` replicas of expert *i* (SYMI),
//! `G`/`W` gradient/weight bytes per expert instance, `O` optimizer bytes
//! per expert class.

use crate::placement::SlotPlacement;
use crate::topology::{HardwareSpec, Topology};

/// Which system's cost expression to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// Static uniform replication with the optimizer sharded across each
    /// expert's EDP group (DeepSpeed + ZeRO-1 offload).
    StaticBaseline,
    /// SYMI: optimizer uniformly sharded across all N nodes.
    Symi,
}

/// Inputs of the analytic model.
///
/// ```
/// use symi_netsim::{CommCostModel, SystemKind};
/// use symi_netsim::topology::HardwareSpec;
///
/// // §3.3's GPT3-175B worked example:
/// let m = CommCostModel {
///     nodes: 2048, expert_classes: 64, slots_per_rank: 2,
///     grad_bytes: 3.375e9, weight_bytes: 3.375e9, optimizer_bytes: 27.0e9,
///     hw: HardwareSpec::paper_analysis_example(),
/// };
/// // The adaptive system costs only ~1.52% more communication per rank…
/// assert!((m.symi_overhead_ratio() - 0.0152).abs() < 2e-4);
/// // …while the footprint and data volume are identical by construction.
/// assert_eq!(m.optimizer_footprint_bytes(), 64.0 * 27.0e9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCostModel {
    /// Nodes in the cluster (`N`). One GPU per node, as in the paper's model.
    pub nodes: usize,
    /// Expert classes (`E`).
    pub expert_classes: usize,
    /// Expert slots per rank (`s`).
    pub slots_per_rank: usize,
    /// Gradient bytes per expert instance (`G`).
    pub grad_bytes: f64,
    /// Weight bytes per expert instance (`W`).
    pub weight_bytes: f64,
    /// Optimizer bytes per expert class (`O`).
    pub optimizer_bytes: f64,
    /// Hardware bandwidths.
    pub hw: HardwareSpec,
}

/// Evaluated per-phase costs, in seconds per rank, plus totals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCosts {
    /// Grad Communication Phase cost per rank (`T_G`).
    pub t_grad: f64,
    /// Weight Communication Phase cost per rank (`T_W`).
    pub t_weight: f64,
}

impl CommCosts {
    pub fn total(&self) -> f64 {
        self.t_grad + self.t_weight
    }
}

impl CommCostModel {
    /// Total expert instances in the system: `sN` (equations (1)/(2)).
    pub fn total_instances(&self) -> usize {
        self.slots_per_rank * self.nodes
    }

    /// Uniform replication degree of the static baseline: `r = sN / E`.
    ///
    /// # Panics
    /// Panics if `sN` is not divisible by `E` (the static baseline requires
    /// uniform replication).
    pub fn static_replicas(&self) -> usize {
        let total = self.total_instances();
        assert_eq!(
            total % self.expert_classes,
            0,
            "static baseline needs sN divisible by E ({total} vs {})",
            self.expert_classes
        );
        total / self.expert_classes
    }

    /// (I) Total optimizer memory footprint — identical for both systems:
    /// `M = E · O`.
    pub fn optimizer_footprint_bytes(&self) -> f64 {
        self.expert_classes as f64 * self.optimizer_bytes
    }

    /// (II) Total data transferred in the Grad Communication Phase —
    /// `D_G = sNG` for both systems.
    pub fn grad_data_bytes(&self) -> f64 {
        self.total_instances() as f64 * self.grad_bytes
    }

    /// (II) Total data transferred in the Weight Communication Phase —
    /// `D_W = sNW` for both systems.
    pub fn weight_data_bytes(&self) -> f64 {
        self.total_instances() as f64 * self.weight_bytes
    }

    /// (III) Per-rank communication cost of both phases (Appendix A.2).
    ///
    /// Static baseline:
    /// `T_X = (E/N)·X/BW_pci + ((sN−E)/N)·X/BW_net`
    ///
    /// SYMI:
    /// `T_X = (E/N)·X/BW_pci + ((sN−s)/N)·X/BW_net`
    pub fn costs(&self, system: SystemKind) -> CommCosts {
        let n = self.nodes as f64;
        let e = self.expert_classes as f64;
        let s = self.slots_per_rank as f64;
        let net_fraction = match system {
            SystemKind::StaticBaseline => (s * n - e) / n,
            SystemKind::Symi => (s * n - s) / n,
        };
        let pci_fraction = e / n;
        let per_phase =
            |x: f64| pci_fraction * x / self.hw.bw_pci + net_fraction * x / self.hw.bw_net;
        CommCosts { t_grad: per_phase(self.grad_bytes), t_weight: per_phase(self.weight_bytes) }
    }

    /// §3.3's closed-form relative overhead of SYMI over the static
    /// baseline:
    /// `ΔT/T_static = (E − s) / (sN − E(1 − BW_net/BW_pci))`.
    pub fn symi_overhead_ratio(&self) -> f64 {
        let n = self.nodes as f64;
        let e = self.expert_classes as f64;
        let s = self.slots_per_rank as f64;
        (e - s) / (s * n - e * (1.0 - self.hw.bw_net / self.hw.bw_pci))
    }

    /// Appendix A.1's upper bound on the per-rank cost when the optimizer is
    /// partitioned into `k` groups of `N/k` nodes each (each group owning
    /// `E/k` experts):
    /// `T_X ≤ (E/N)·X/BW_pci + k·((sN−s)/N)·X/BW_net`.
    ///
    /// The bound is attained by groups holding maximally popular experts;
    /// SYMI is the `k = 1` point, proving uniform partitioning optimal.
    pub fn kpart_cost_bound(&self, k: usize, phase_bytes: f64) -> f64 {
        assert!(k >= 1 && self.nodes.is_multiple_of(k), "k must divide N");
        let n = self.nodes as f64;
        let e = self.expert_classes as f64;
        let s = self.slots_per_rank as f64;
        e / n * phase_bytes / self.hw.bw_pci
            + k as f64 * (s * n - s) / n * phase_bytes / self.hw.bw_net
    }

    /// Exact k-group per-rank cost for a *given* replica distribution
    /// (Appendix A.1's pre-bound expression), for the group `g` owning
    /// experts `group_experts`, where `remote_instances[i]` is the number of
    /// instances of expert `i` hosted outside the nodes of group `g`.
    ///
    /// `T_X^g = (E/k)·(X/(N/k))/BW_pci + (X/(N/k))·Σ_{e_i∈g} remote_i /BW_net`
    pub fn kpart_cost_exact(
        &self,
        k: usize,
        group_experts: usize,
        remote_instances_sum: usize,
        phase_bytes: f64,
    ) -> f64 {
        assert!(k >= 1 && self.nodes.is_multiple_of(k), "k must divide N");
        let nodes_per_group = (self.nodes / k) as f64;
        let shard = phase_bytes / nodes_per_group;
        group_experts as f64 * shard / self.hw.bw_pci
            + remote_instances_sum as f64 * shard / self.hw.bw_net
    }

    /// Cost of migrating one expert's *coupled* state (weights + optimizer)
    /// across the network — what FlexMoE pays per moved replica (§2.2's
    /// rebalancing-cost discussion).
    pub fn coupled_migration_seconds(&self) -> f64 {
        (self.weight_bytes + self.optimizer_bytes) / self.hw.bw_net
    }
}

/// Where the optimizer state of each expert class is sharded.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ShardScope {
    /// Uniformly over all `N` ranks — SYMI's `k = 1` point.
    Cluster,
    /// Appendix A.1's k-group partitioning aligned to the cells of tier
    /// `level`: cell `g` owns classes `[g·E/k, (g+1)·E/k)` and shards them
    /// over its own ranks. Footprint-preserving (`E·O` total), but traffic
    /// stays inside a cell whenever placement co-locates a class's replicas
    /// with its owner cell.
    TierCell {
        /// Tier whose cells form the partitioning groups.
        level: usize,
    },
    /// Coupled/ZeRO-style: each class's state is sharded across its own
    /// host ranks (the EDP group), so the gradient shard is local after the
    /// EDP all-reduce and only the weight all-gather crosses links.
    EdpGroup,
}

/// Per-tier byte attribution plus the bottleneck-rank α–β time of one
/// communication phase on a hierarchical topology.
#[derive(Clone, Debug, PartialEq)]
pub struct TierPhase {
    /// Cluster-wide bytes crossing each tier (innermost first).
    pub bytes_by_tier: Vec<f64>,
    /// PCIe staging bytes on the busiest rank.
    pub pci_bytes_per_rank: f64,
    /// α–β seconds on the busiest rank (tier bytes over tier bandwidth,
    /// plus per-peer-message latency, plus the PCIe term).
    pub seconds: f64,
}

impl TierPhase {
    /// An all-zero phase over `tiers` bandwidth classes.
    pub fn zero(tiers: usize) -> Self {
        Self { bytes_by_tier: vec![0.0; tiers], pci_bytes_per_rank: 0.0, seconds: 0.0 }
    }

    /// Total network bytes across all tiers.
    pub fn total_bytes(&self) -> f64 {
        self.bytes_by_tier.iter().sum()
    }

    /// Element-wise accumulation (phases chain serially).
    pub fn accumulate(&mut self, other: &TierPhase) {
        assert_eq!(self.bytes_by_tier.len(), other.bytes_by_tier.len());
        for (a, b) in self.bytes_by_tier.iter_mut().zip(&other.bytes_by_tier) {
            *a += b;
        }
        self.pci_bytes_per_rank += other.pci_bytes_per_rank;
        self.seconds += other.seconds;
    }
}

/// §3.3's cost expressions generalized to a multi-tier [`Topology`]: every
/// transfer is priced by the narrowest tier it crosses, and the result
/// carries per-tier byte attribution. On a one-tier [`Topology::flat`] with
/// zero latency this reproduces [`CommCostModel::costs`] exactly.
#[derive(Clone, Debug)]
pub struct TieredCostModel<'a> {
    pub topo: &'a Topology,
    /// Expert classes (`E`).
    pub expert_classes: usize,
    /// GPU↔host staging bandwidth, bytes/s.
    pub bw_pci: f64,
}

impl<'a> TieredCostModel<'a> {
    /// Wraps a flat [`CommCostModel`]'s parameters around a topology.
    ///
    /// # Panics
    /// Panics when the topology's rank count differs from the model's.
    pub fn from_flat(flat: &CommCostModel, topo: &'a Topology) -> Self {
        assert_eq!(flat.nodes, topo.ranks(), "topology must match the model's rank count");
        Self { topo, expert_classes: flat.expert_classes, bw_pci: flat.hw.bw_pci }
    }

    /// One shard-exchange phase: every instance moves `phase_bytes / |owners|`
    /// to (grad) or from (weight) each owner of its class's state. The two
    /// directions have identical per-pair volumes, so one routine prices
    /// both; the bottleneck rank is the owner side either way.
    ///
    /// `ShardScope::EdpGroup` models the *weight all-gather* of a coupled
    /// system (each host assembles the class from the other hosts' shards);
    /// its gradient phase is link-free after the EDP sync and should be
    /// priced as [`TierPhase::zero`] plus PCIe.
    pub fn shard_exchange(
        &self,
        placement: &SlotPlacement,
        scope: ShardScope,
        phase_bytes: f64,
    ) -> TierPhase {
        let n = self.topo.ranks();
        assert_eq!(placement.ranks(), n, "placement must cover the topology");
        let tiers = self.topo.num_tiers();
        let e = self.expert_classes;
        let mut out = TierPhase::zero(tiers);

        match scope {
            ShardScope::Cluster => {
                // Owners = all ranks, shard = X/N; every rank hosts
                // `s` instances, so the exchange is rank-symmetric and the
                // census gives the per-tier split in closed form.
                let shard = phase_bytes / n as f64;
                let s = placement.slots_per_rank() as f64;
                let census = self.topo.tier_census();
                let mut secs = 0.0;
                for (t, &peers) in census.iter().enumerate() {
                    let per_rank = peers as f64 * s * shard;
                    out.bytes_by_tier[t] = n as f64 * per_rank;
                    secs += per_rank / self.topo.bw(t) + peers as f64 * self.topo.latency(t);
                }
                out.pci_bytes_per_rank = e as f64 * shard;
                out.seconds = secs + out.pci_bytes_per_rank / self.bw_pci;
            }
            ShardScope::TierCell { level } => {
                let cell = self.topo.cell_size(level);
                let k = n / cell;
                assert!(
                    e.is_multiple_of(k),
                    "tier-cell sharding needs E ({e}) divisible by the {k} cells"
                );
                let shard = phase_bytes / cell as f64;
                let classes_per_cell = e / k;
                self.pairwise(
                    placement,
                    |class| {
                        let owner_cell = class / classes_per_cell;
                        (owner_cell * cell, cell, shard)
                    },
                    &mut out,
                );
                out.pci_bytes_per_rank = classes_per_cell as f64 * shard;
                out.seconds += out.pci_bytes_per_rank / self.bw_pci;
            }
            ShardScope::EdpGroup => {
                // Owners = the class's own host ranks; used for the weight
                // all-gather (see the doc comment). Host sets are not
                // contiguous in general, so fall through to the host list.
                let hosts = placement.host_ranks(e);
                let hw_counts = placement.hosts_with_counts(e);
                let n_ranks = placement.ranks();
                let mut per_rank_bytes = vec![vec![0.0f64; tiers]; n_ranks];
                let mut per_rank_msgs = vec![vec![0.0f64; tiers]; n_ranks];
                let mut pci = vec![0.0f64; n_ranks];
                for class in 0..e {
                    let owners = &hosts[class];
                    if owners.is_empty() {
                        continue;
                    }
                    let shard = phase_bytes / owners.len() as f64;
                    for &(h, count) in &hw_counts[class] {
                        for &o in owners {
                            if o == h {
                                continue;
                            }
                            let t = self.topo.tier_between(h, o).expect("h != o");
                            out.bytes_by_tier[t] += count as f64 * shard;
                            per_rank_bytes[o][t] += count as f64 * shard;
                            per_rank_msgs[o][t] += 1.0;
                        }
                    }
                    for &o in owners {
                        pci[o] += shard;
                    }
                }
                out.seconds = self.busiest(&per_rank_bytes, &per_rank_msgs);
                out.pci_bytes_per_rank = pci.iter().copied().fold(0.0, f64::max);
                out.seconds += out.pci_bytes_per_rank / self.bw_pci;
            }
        }
        out
    }

    /// Pairwise accumulation for contiguous owner ranges: for each instance
    /// of each class, `owner_of(class)` yields `(first_owner, owner_count,
    /// shard_bytes)` and every (host, owner) pair is attributed to the tier
    /// it crosses.
    fn pairwise(
        &self,
        placement: &SlotPlacement,
        owner_of: impl Fn(usize) -> (usize, usize, f64),
        out: &mut TierPhase,
    ) {
        let tiers = self.topo.num_tiers();
        let n = placement.ranks();
        let mut per_rank_bytes = vec![vec![0.0f64; tiers]; n];
        let mut per_rank_msgs = vec![vec![0.0f64; tiers]; n];
        let hw_counts = placement.hosts_with_counts(self.expert_classes);
        for (class, hosts) in hw_counts.iter().enumerate() {
            let (first, count, shard) = owner_of(class);
            for &(h, mult) in hosts {
                for o in first..first + count {
                    if o == h {
                        continue;
                    }
                    let t = self.topo.tier_between(h, o).expect("h != o");
                    out.bytes_by_tier[t] += mult as f64 * shard;
                    per_rank_bytes[o][t] += mult as f64 * shard;
                    per_rank_msgs[o][t] += 1.0;
                }
            }
        }
        out.seconds += self.busiest(&per_rank_bytes, &per_rank_msgs);
    }

    fn busiest(&self, bytes: &[Vec<f64>], msgs: &[Vec<f64>]) -> f64 {
        bytes
            .iter()
            .zip(msgs)
            .map(|(b, m)| {
                b.iter()
                    .zip(m)
                    .enumerate()
                    .map(|(t, (bb, mm))| bb / self.topo.bw(t) + mm * self.topo.latency(t))
                    .sum::<f64>()
            })
            .fold(0.0, f64::max)
    }

    /// α–β cost and per-tier bytes of a flat ring all-reduce over `hosts`.
    /// Every step is gated by the slowest link in the ring, so one strided
    /// hop across the spine poisons all `2(m−1)` steps — the failure mode
    /// the tree collective removes.
    pub fn ring_allreduce(&self, hosts: &[usize], bytes: f64) -> TierPhase {
        let tiers = self.topo.num_tiers();
        let m = hosts.len();
        let mut out = TierPhase::zero(tiers);
        if m <= 1 || bytes <= 0.0 {
            return out;
        }
        let per_rank = 2.0 * (m as f64 - 1.0) / m as f64 * bytes;
        let mut slowest_bw = f64::INFINITY;
        let mut worst_lat = 0.0f64;
        for i in 0..m {
            let next = hosts[(i + 1) % m];
            if hosts[i] == next {
                continue;
            }
            let t = self.topo.tier_between(hosts[i], next).expect("distinct hosts");
            out.bytes_by_tier[t] += per_rank;
            slowest_bw = slowest_bw.min(self.topo.bw(t));
            worst_lat = worst_lat.max(self.topo.latency(t));
        }
        out.seconds = 2.0 * (m as f64 - 1.0) * (bytes / m as f64 / slowest_bw + worst_lat);
        out
    }

    /// α–β cost and per-tier bytes of the topology-aware tree all-reduce
    /// (ring within each tier cell, representatives recurse up, fan back
    /// down — the collective implemented in `symi-collectives::tree`).
    /// Moves `3(m_c−1)` buffers per cell instead of the flat ring's
    /// `2(m−1)`, but each stays on the fastest tier that contains it.
    pub fn tree_allreduce(&self, hosts: &[usize], bytes: f64) -> TierPhase {
        let tiers = self.topo.num_tiers();
        let mut out = TierPhase::zero(tiers);
        if hosts.len() <= 1 || bytes <= 0.0 {
            return out;
        }
        let mut active: Vec<usize> = hosts.to_vec();
        active.sort_unstable();
        for level in 0..tiers {
            if active.len() <= 1 {
                break;
            }
            // Partition the actives by their tier-`level` cell.
            let mut cells: Vec<Vec<usize>> = Vec::new();
            let mut cur_cell = usize::MAX;
            for &r in &active {
                let c = self.topo.cell_of(r, level);
                if c != cur_cell {
                    cells.push(Vec::new());
                    cur_cell = c;
                }
                cells.last_mut().expect("just pushed").push(r);
            }
            let mut level_secs = 0.0f64;
            let mut next_active = Vec::with_capacity(cells.len());
            for members in &cells {
                next_active.push(members[0]);
                let mc = members.len();
                if mc <= 1 {
                    continue;
                }
                // Ring among cell members (all cross exactly this tier)
                // plus the representative's fan-down of the final buffer.
                let ring = 2.0
                    * (mc as f64 - 1.0)
                    * (bytes / mc as f64 / self.topo.bw(level) + self.topo.latency(level));
                let down =
                    (mc as f64 - 1.0) * (bytes / self.topo.bw(level) + self.topo.latency(level));
                level_secs = level_secs.max(ring + down);
                out.bytes_by_tier[level] += 3.0 * (mc as f64 - 1.0) * bytes;
            }
            out.seconds += level_secs;
            active = next_active;
        }
        out
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §3.3's running example: GPT3-175B layer with E = 64 experts,
    /// N = 2048, s = 2, PCIe 64 GB/s, IB 400 Gbps, G = W = 3.375 GB,
    /// O = 27 GB.
    fn paper_example() -> CommCostModel {
        CommCostModel {
            nodes: 2048,
            expert_classes: 64,
            slots_per_rank: 2,
            grad_bytes: 3.375e9,
            weight_bytes: 3.375e9,
            optimizer_bytes: 27.0e9,
            hw: HardwareSpec::paper_analysis_example(),
        }
    }

    #[test]
    fn footprint_is_1_7tb_per_layer() {
        // §3.3 (I): "~1.7 TB per layer" for both systems.
        let m = paper_example();
        let tb = m.optimizer_footprint_bytes() / 1e12;
        assert!((tb - 1.728).abs() < 0.01, "footprint {tb} TB");
    }

    #[test]
    fn data_volume_is_27tb_total() {
        // §3.3 (II): 2048 nodes × 2 slots × (3.375 + 3.375) GB ≈ 27 TB.
        let m = paper_example();
        let total = (m.grad_data_bytes() + m.weight_data_bytes()) / 1e12;
        assert!((total - 27.648).abs() < 0.1, "total {total} TB");
    }

    #[test]
    fn per_rank_costs_match_paper_numbers() {
        // §3.3 (III): "~0.273 s vs ~0.269 s total communication".
        let m = paper_example();
        let static_total = m.costs(SystemKind::StaticBaseline).total();
        let symi_total = m.costs(SystemKind::Symi).total();
        assert!((static_total - 0.269).abs() < 0.002, "static {static_total}");
        assert!((symi_total - 0.273).abs() < 0.002, "symi {symi_total}");
    }

    #[test]
    fn overhead_ratio_is_1_52_percent() {
        let m = paper_example();
        let ratio = m.symi_overhead_ratio();
        assert!((ratio - 0.0152).abs() < 2e-4, "overhead {ratio}");
        // Closed form must agree with the evaluated costs.
        let static_total = m.costs(SystemKind::StaticBaseline).total();
        let symi_total = m.costs(SystemKind::Symi).total();
        let measured = (symi_total - static_total) / static_total;
        assert!((ratio - measured).abs() < 1e-6);
    }

    #[test]
    fn data_volume_is_system_invariant() {
        // The paper's key claim: rebalancing moves zero extra data.
        let m = paper_example();
        // D_G and D_W do not take the system as a parameter at all — the
        // identity sN·X holds for any replica assignment summing to sN.
        assert_eq!(m.grad_data_bytes(), 2048.0 * 2.0 * 3.375e9);
        assert_eq!(m.weight_data_bytes(), 2048.0 * 2.0 * 3.375e9);
    }

    #[test]
    fn kpart_bound_grows_with_k_and_k1_matches_symi() {
        let m = paper_example();
        let symi = m.costs(SystemKind::Symi);
        let b1 = m.kpart_cost_bound(1, m.grad_bytes);
        assert!((b1 - symi.t_grad).abs() < 1e-9, "k=1 bound equals SYMI cost");
        let mut prev = b1;
        for k in [2usize, 4, 8, 16] {
            let b = m.kpart_cost_bound(k, m.grad_bytes);
            assert!(b > prev, "bound must increase with k");
            prev = b;
        }
    }

    #[test]
    fn kpart_exact_reduces_to_symi_at_k1() {
        let m = paper_example();
        // k = 1: one group owns all E experts; remote instances are sN − s
        // for a representative rank.
        let exact = m.kpart_cost_exact(
            1,
            m.expert_classes,
            m.total_instances() - m.slots_per_rank,
            m.grad_bytes,
        );
        let symi = m.costs(SystemKind::Symi).t_grad;
        assert!((exact - symi).abs() < 1e-9);
    }

    #[test]
    fn static_replicas_divides() {
        assert_eq!(paper_example().static_replicas(), 64);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn static_replicas_panics_when_uneven() {
        let mut m = paper_example();
        m.expert_classes = 63;
        let _ = m.static_replicas();
    }

    #[test]
    fn coupled_migration_matches_intro_example() {
        // §2.2: moving 3.375 GB weights over 400 Gbps ≈ 0.0675 s and 27 GB
        // of optimizer state ≈ 0.54 s.
        let m = paper_example();
        let w = m.weight_bytes / m.hw.bw_net;
        let o = m.optimizer_bytes / m.hw.bw_net;
        assert!((w - 0.0675).abs() < 1e-4);
        assert!((o - 0.54).abs() < 1e-3);
        assert!((m.coupled_migration_seconds() - (w + o)).abs() < 1e-9);
    }

    #[test]
    fn symi_overhead_shrinks_with_cluster_size() {
        let mut m = paper_example();
        let big = m.symi_overhead_ratio();
        m.nodes = 128;
        let small = m.symi_overhead_ratio();
        assert!(big < small, "relative overhead must vanish as N grows");
    }

    // ---- Tiered model. ----

    use crate::placement::SlotPlacement;
    use crate::topology::Topology;

    /// A flat single-tier topology with zero latency reproduces
    /// `CommCostModel::costs` byte-for-byte — the compatibility contract.
    #[test]
    fn tiered_flat_zero_latency_matches_paper_formula() {
        let mut m = paper_example();
        m.hw.net_latency = 0.0;
        let topo = Topology::flat(m.nodes, &m.hw);
        let tiered = TieredCostModel::from_flat(&m, &topo);
        let placement =
            SlotPlacement::symi_contiguous(&vec![m.static_replicas(); 64], m.slots_per_rank);
        let phase = tiered.shard_exchange(&placement, ShardScope::Cluster, m.grad_bytes);
        let flat = m.costs(SystemKind::Symi).t_grad;
        assert!(
            (phase.seconds - flat).abs() / flat < 1e-12,
            "tiered {} vs flat {flat}",
            phase.seconds
        );
        // Global network volume = (N−1)/N · sN·G (the local shard stays put).
        let expect = (m.nodes as f64 - 1.0) / m.nodes as f64 * m.grad_data_bytes();
        assert!((phase.total_bytes() - expect).abs() / expect < 1e-12);
    }

    /// Tier-cell sharding with one cell spanning the whole world IS
    /// cluster-uniform sharding (k = 1 ⇒ SYMI).
    #[test]
    fn tier_cell_k1_equals_cluster_scope() {
        let mut m = paper_example();
        m.nodes = 64;
        m.hw.net_latency = 0.0;
        let topo = Topology::flat(m.nodes, &m.hw);
        let tiered = TieredCostModel::from_flat(&m, &topo);
        let placement = SlotPlacement::symi_contiguous(
            &vec![m.static_replicas(); m.expert_classes],
            m.slots_per_rank,
        );
        let a = tiered.shard_exchange(&placement, ShardScope::Cluster, m.grad_bytes);
        let b = tiered.shard_exchange(&placement, ShardScope::TierCell { level: 0 }, m.grad_bytes);
        assert!((a.seconds - b.seconds).abs() / a.seconds < 1e-9);
        assert!((a.total_bytes() - b.total_bytes()).abs() / a.total_bytes() < 1e-9);
    }

    /// On a hierarchical topology, pod-aligned sharding keeps the shard
    /// exchange inside pods when placement is contiguous — strictly fewer
    /// spine bytes than cluster-uniform sharding.
    #[test]
    fn pod_aligned_sharding_empties_the_spine() {
        let n = 1024;
        let topo = Topology::superpod(n); // 8 × 4 × 8 × 4: pods at level 2
        let m = CommCostModel {
            nodes: n,
            expert_classes: 64,
            slots_per_rank: 4,
            grad_bytes: 1.0e9,
            weight_bytes: 1.0e9,
            optimizer_bytes: 8.0e9,
            hw: HardwareSpec::paper_analysis_example(),
        };
        let tiered = TieredCostModel::from_flat(&m, &topo);
        let placement = SlotPlacement::symi_contiguous(
            &vec![m.static_replicas(); m.expert_classes],
            m.slots_per_rank,
        );
        let uniform = tiered.shard_exchange(&placement, ShardScope::Cluster, m.grad_bytes);
        let pod =
            tiered.shard_exchange(&placement, ShardScope::TierCell { level: 2 }, m.grad_bytes);
        let spine = topo.num_tiers() - 1;
        assert!(uniform.bytes_by_tier[spine] > 0.0, "uniform sharding crosses the spine");
        assert_eq!(pod.bytes_by_tier[spine], 0.0, "pod-aligned contiguous placement does not");
        assert!(pod.seconds < uniform.seconds);
        // Total footprint-preserving identity: both move the same PCIe bytes.
        assert!((pod.pci_bytes_per_rank - uniform.pci_bytes_per_rank).abs() < 1e-6);
    }

    /// The tree collective is member-order-insensitive and keeps its
    /// merges on the fastest containing tier. A ring whose member order
    /// alternates pods crosses the spine on *every* hop — the tree
    /// relocates those bytes inward and, for latency-bound buffers, beats
    /// the ring outright.
    #[test]
    fn tree_relocates_spine_bytes_of_a_hostile_ring_order() {
        let n = 256;
        let topo = Topology::superpod(n); // 8 × 4 × 8, "pod" spine at level 2
        let m = CommCostModel {
            nodes: n,
            expert_classes: 16,
            slots_per_rank: 2,
            grad_bytes: 1.0e9,
            weight_bytes: 1.0e9,
            optimizer_bytes: 8.0e9,
            hw: HardwareSpec::paper_analysis_example(),
        };
        let tiered = TieredCostModel::from_flat(&m, &topo);
        // Interleave two rack-distant node groups: every consecutive ring
        // pair crosses the spine.
        let hosts: Vec<usize> = (0..8).flat_map(|i| [i, 32 + i]).collect();
        let bytes = 1.0e6;
        let ring = tiered.ring_allreduce(&hosts, bytes);
        let tree = tiered.tree_allreduce(&hosts, bytes);
        let top = topo.num_tiers() - 1;
        assert!(ring.bytes_by_tier[top] > 0.9 * ring.total_bytes(), "hostile order: all spine");
        assert!(
            tree.bytes_by_tier[top] < 0.2 * ring.bytes_by_tier[top],
            "tree spine {} vs ring spine {}",
            tree.bytes_by_tier[top],
            ring.bytes_by_tier[top]
        );
        assert!(tree.seconds < ring.seconds, "tree {} vs ring {}", tree.seconds, ring.seconds);
        // A contiguous group never touches the outer tiers at all.
        let packed: Vec<usize> = (0..8).collect();
        let t2 = tiered.tree_allreduce(&packed, bytes);
        assert_eq!(t2.bytes_by_tier[top], 0.0);
        assert!(t2.bytes_by_tier[0] > 0.0);
    }

    /// Flat single-tier ring cost equals the `2(m−1)/m` formula used by the
    /// iteration simulator.
    #[test]
    fn flat_ring_matches_iteration_formula() {
        let hw = HardwareSpec::paper_eval_cluster();
        let topo = Topology::flat(16, &hw);
        let m = CommCostModel {
            nodes: 16,
            expert_classes: 16,
            slots_per_rank: 4,
            grad_bytes: 1.0e8,
            weight_bytes: 1.0e8,
            optimizer_bytes: 8.0e8,
            hw,
        };
        let tiered = TieredCostModel::from_flat(&m, &topo);
        let hosts: Vec<usize> = (0..4).collect();
        let got = tiered.ring_allreduce(&hosts, 1.0e8).seconds;
        let want = 2.0 * 3.0 / 4.0 * 1.0e8 / hw.bw_net + 2.0 * hw.net_latency * 3.0;
        assert!((got - want).abs() / want < 1e-12, "{got} vs {want}");
    }
}
