//! The paper's analytic communication-cost model: §3.3 items (I)–(III),
//! Appendix A.2's full derivation, and Appendix A.1's k-group partitioning
//! bound.
//!
//! Variables follow Table 2/4 of the paper:
//! `N` nodes, `E` expert classes, `s` expert slots per rank, `r` replicas
//! per expert (static baseline), `r_i` replicas of expert *i* (SYMI),
//! `G`/`W` gradient/weight bytes per expert instance, `O` optimizer bytes
//! per expert class.

use crate::topology::HardwareSpec;

/// Which system's cost expression to evaluate.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemKind {
    /// Static uniform replication with the optimizer sharded across each
    /// expert's EDP group (DeepSpeed + ZeRO-1 offload).
    StaticBaseline,
    /// SYMI: optimizer uniformly sharded across all N nodes.
    Symi,
}

/// Inputs of the analytic model.
///
/// ```
/// use symi_netsim::{CommCostModel, SystemKind};
/// use symi_netsim::topology::HardwareSpec;
///
/// // §3.3's GPT3-175B worked example:
/// let m = CommCostModel {
///     nodes: 2048, expert_classes: 64, slots_per_rank: 2,
///     grad_bytes: 3.375e9, weight_bytes: 3.375e9, optimizer_bytes: 27.0e9,
///     hw: HardwareSpec::paper_analysis_example(),
/// };
/// // The adaptive system costs only ~1.52% more communication per rank…
/// assert!((m.symi_overhead_ratio() - 0.0152).abs() < 2e-4);
/// // …while the footprint and data volume are identical by construction.
/// assert_eq!(m.optimizer_footprint_bytes(), 64.0 * 27.0e9);
/// ```
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCostModel {
    /// Nodes in the cluster (`N`). One GPU per node, as in the paper's model.
    pub nodes: usize,
    /// Expert classes (`E`).
    pub expert_classes: usize,
    /// Expert slots per rank (`s`).
    pub slots_per_rank: usize,
    /// Gradient bytes per expert instance (`G`).
    pub grad_bytes: f64,
    /// Weight bytes per expert instance (`W`).
    pub weight_bytes: f64,
    /// Optimizer bytes per expert class (`O`).
    pub optimizer_bytes: f64,
    /// Hardware bandwidths.
    pub hw: HardwareSpec,
}

/// Evaluated per-phase costs, in seconds per rank, plus totals.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct CommCosts {
    /// Grad Communication Phase cost per rank (`T_G`).
    pub t_grad: f64,
    /// Weight Communication Phase cost per rank (`T_W`).
    pub t_weight: f64,
}

impl CommCosts {
    pub fn total(&self) -> f64 {
        self.t_grad + self.t_weight
    }
}

impl CommCostModel {
    /// Total expert instances in the system: `sN` (equations (1)/(2)).
    pub fn total_instances(&self) -> usize {
        self.slots_per_rank * self.nodes
    }

    /// Uniform replication degree of the static baseline: `r = sN / E`.
    ///
    /// # Panics
    /// Panics if `sN` is not divisible by `E` (the static baseline requires
    /// uniform replication).
    pub fn static_replicas(&self) -> usize {
        let total = self.total_instances();
        assert_eq!(
            total % self.expert_classes,
            0,
            "static baseline needs sN divisible by E ({total} vs {})",
            self.expert_classes
        );
        total / self.expert_classes
    }

    /// (I) Total optimizer memory footprint — identical for both systems:
    /// `M = E · O`.
    pub fn optimizer_footprint_bytes(&self) -> f64 {
        self.expert_classes as f64 * self.optimizer_bytes
    }

    /// (II) Total data transferred in the Grad Communication Phase —
    /// `D_G = sNG` for both systems.
    pub fn grad_data_bytes(&self) -> f64 {
        self.total_instances() as f64 * self.grad_bytes
    }

    /// (II) Total data transferred in the Weight Communication Phase —
    /// `D_W = sNW` for both systems.
    pub fn weight_data_bytes(&self) -> f64 {
        self.total_instances() as f64 * self.weight_bytes
    }

    /// (III) Per-rank communication cost of both phases (Appendix A.2).
    ///
    /// Static baseline:
    /// `T_X = (E/N)·X/BW_pci + ((sN−E)/N)·X/BW_net`
    ///
    /// SYMI:
    /// `T_X = (E/N)·X/BW_pci + ((sN−s)/N)·X/BW_net`
    pub fn costs(&self, system: SystemKind) -> CommCosts {
        let n = self.nodes as f64;
        let e = self.expert_classes as f64;
        let s = self.slots_per_rank as f64;
        let net_fraction = match system {
            SystemKind::StaticBaseline => (s * n - e) / n,
            SystemKind::Symi => (s * n - s) / n,
        };
        let pci_fraction = e / n;
        let per_phase =
            |x: f64| pci_fraction * x / self.hw.bw_pci + net_fraction * x / self.hw.bw_net;
        CommCosts { t_grad: per_phase(self.grad_bytes), t_weight: per_phase(self.weight_bytes) }
    }

    /// §3.3's closed-form relative overhead of SYMI over the static
    /// baseline:
    /// `ΔT/T_static = (E − s) / (sN − E(1 − BW_net/BW_pci))`.
    pub fn symi_overhead_ratio(&self) -> f64 {
        let n = self.nodes as f64;
        let e = self.expert_classes as f64;
        let s = self.slots_per_rank as f64;
        (e - s) / (s * n - e * (1.0 - self.hw.bw_net / self.hw.bw_pci))
    }

    /// Appendix A.1's upper bound on the per-rank cost when the optimizer is
    /// partitioned into `k` groups of `N/k` nodes each (each group owning
    /// `E/k` experts):
    /// `T_X ≤ (E/N)·X/BW_pci + k·((sN−s)/N)·X/BW_net`.
    ///
    /// The bound is attained by groups holding maximally popular experts;
    /// SYMI is the `k = 1` point, proving uniform partitioning optimal.
    pub fn kpart_cost_bound(&self, k: usize, phase_bytes: f64) -> f64 {
        assert!(k >= 1 && self.nodes.is_multiple_of(k), "k must divide N");
        let n = self.nodes as f64;
        let e = self.expert_classes as f64;
        let s = self.slots_per_rank as f64;
        e / n * phase_bytes / self.hw.bw_pci
            + k as f64 * (s * n - s) / n * phase_bytes / self.hw.bw_net
    }

    /// Exact k-group per-rank cost for a *given* replica distribution
    /// (Appendix A.1's pre-bound expression), for the group `g` owning
    /// experts `group_experts`, where `remote_instances[i]` is the number of
    /// instances of expert `i` hosted outside the nodes of group `g`.
    ///
    /// `T_X^g = (E/k)·(X/(N/k))/BW_pci + (X/(N/k))·Σ_{e_i∈g} remote_i /BW_net`
    pub fn kpart_cost_exact(
        &self,
        k: usize,
        group_experts: usize,
        remote_instances_sum: usize,
        phase_bytes: f64,
    ) -> f64 {
        assert!(k >= 1 && self.nodes.is_multiple_of(k), "k must divide N");
        let nodes_per_group = (self.nodes / k) as f64;
        let shard = phase_bytes / nodes_per_group;
        group_experts as f64 * shard / self.hw.bw_pci
            + remote_instances_sum as f64 * shard / self.hw.bw_net
    }

    /// Cost of migrating one expert's *coupled* state (weights + optimizer)
    /// across the network — what FlexMoE pays per moved replica (§2.2's
    /// rebalancing-cost discussion).
    pub fn coupled_migration_seconds(&self) -> f64 {
        (self.weight_bytes + self.optimizer_bytes) / self.hw.bw_net
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    /// §3.3's running example: GPT3-175B layer with E = 64 experts,
    /// N = 2048, s = 2, PCIe 64 GB/s, IB 400 Gbps, G = W = 3.375 GB,
    /// O = 27 GB.
    fn paper_example() -> CommCostModel {
        CommCostModel {
            nodes: 2048,
            expert_classes: 64,
            slots_per_rank: 2,
            grad_bytes: 3.375e9,
            weight_bytes: 3.375e9,
            optimizer_bytes: 27.0e9,
            hw: HardwareSpec::paper_analysis_example(),
        }
    }

    #[test]
    fn footprint_is_1_7tb_per_layer() {
        // §3.3 (I): "~1.7 TB per layer" for both systems.
        let m = paper_example();
        let tb = m.optimizer_footprint_bytes() / 1e12;
        assert!((tb - 1.728).abs() < 0.01, "footprint {tb} TB");
    }

    #[test]
    fn data_volume_is_27tb_total() {
        // §3.3 (II): 2048 nodes × 2 slots × (3.375 + 3.375) GB ≈ 27 TB.
        let m = paper_example();
        let total = (m.grad_data_bytes() + m.weight_data_bytes()) / 1e12;
        assert!((total - 27.648).abs() < 0.1, "total {total} TB");
    }

    #[test]
    fn per_rank_costs_match_paper_numbers() {
        // §3.3 (III): "~0.273 s vs ~0.269 s total communication".
        let m = paper_example();
        let static_total = m.costs(SystemKind::StaticBaseline).total();
        let symi_total = m.costs(SystemKind::Symi).total();
        assert!((static_total - 0.269).abs() < 0.002, "static {static_total}");
        assert!((symi_total - 0.273).abs() < 0.002, "symi {symi_total}");
    }

    #[test]
    fn overhead_ratio_is_1_52_percent() {
        let m = paper_example();
        let ratio = m.symi_overhead_ratio();
        assert!((ratio - 0.0152).abs() < 2e-4, "overhead {ratio}");
        // Closed form must agree with the evaluated costs.
        let static_total = m.costs(SystemKind::StaticBaseline).total();
        let symi_total = m.costs(SystemKind::Symi).total();
        let measured = (symi_total - static_total) / static_total;
        assert!((ratio - measured).abs() < 1e-6);
    }

    #[test]
    fn data_volume_is_system_invariant() {
        // The paper's key claim: rebalancing moves zero extra data.
        let m = paper_example();
        // D_G and D_W do not take the system as a parameter at all — the
        // identity sN·X holds for any replica assignment summing to sN.
        assert_eq!(m.grad_data_bytes(), 2048.0 * 2.0 * 3.375e9);
        assert_eq!(m.weight_data_bytes(), 2048.0 * 2.0 * 3.375e9);
    }

    #[test]
    fn kpart_bound_grows_with_k_and_k1_matches_symi() {
        let m = paper_example();
        let symi = m.costs(SystemKind::Symi);
        let b1 = m.kpart_cost_bound(1, m.grad_bytes);
        assert!((b1 - symi.t_grad).abs() < 1e-9, "k=1 bound equals SYMI cost");
        let mut prev = b1;
        for k in [2usize, 4, 8, 16] {
            let b = m.kpart_cost_bound(k, m.grad_bytes);
            assert!(b > prev, "bound must increase with k");
            prev = b;
        }
    }

    #[test]
    fn kpart_exact_reduces_to_symi_at_k1() {
        let m = paper_example();
        // k = 1: one group owns all E experts; remote instances are sN − s
        // for a representative rank.
        let exact = m.kpart_cost_exact(
            1,
            m.expert_classes,
            m.total_instances() - m.slots_per_rank,
            m.grad_bytes,
        );
        let symi = m.costs(SystemKind::Symi).t_grad;
        assert!((exact - symi).abs() < 1e-9);
    }

    #[test]
    fn static_replicas_divides() {
        assert_eq!(paper_example().static_replicas(), 64);
    }

    #[test]
    #[should_panic(expected = "divisible")]
    fn static_replicas_panics_when_uneven() {
        let mut m = paper_example();
        m.expert_classes = 63;
        let _ = m.static_replicas();
    }

    #[test]
    fn coupled_migration_matches_intro_example() {
        // §2.2: moving 3.375 GB weights over 400 Gbps ≈ 0.0675 s and 27 GB
        // of optimizer state ≈ 0.54 s.
        let m = paper_example();
        let w = m.weight_bytes / m.hw.bw_net;
        let o = m.optimizer_bytes / m.hw.bw_net;
        assert!((w - 0.0675).abs() < 1e-4);
        assert!((o - 0.54).abs() < 1e-3);
        assert!((m.coupled_migration_seconds() - (w + o)).abs() < 1e-9);
    }

    #[test]
    fn symi_overhead_shrinks_with_cluster_size() {
        let mut m = paper_example();
        let big = m.symi_overhead_ratio();
        m.nodes = 128;
        let small = m.symi_overhead_ratio();
        assert!(big < small, "relative overhead must vanish as N grows");
    }
}
