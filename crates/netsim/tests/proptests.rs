//! Randomized property tests for the cost model and iteration simulator.
//! Driven by `symi_tensor::rng` with fixed seeds.

use symi_netsim::iteration::{RebalanceSpec, SimSystem};
use symi_netsim::topology::HardwareSpec;
use symi_netsim::{CommCostModel, IterationSim, ModelCostConfig, SystemKind, TaskGraph};
use symi_tensor::rng::{Rng, StdRng};

fn replicas_summing_to(tokens: &[f64], slots: usize) -> Vec<usize> {
    let e = tokens.len();
    let total: f64 = tokens.iter().sum();
    let mut counts: Vec<usize> = tokens
        .iter()
        .map(|&t| ((t / total.max(1.0) * slots as f64).floor() as usize).max(1))
        .collect();
    while counts.iter().sum::<usize>() > slots {
        let i = (0..e).max_by_key(|&i| counts[i]).unwrap();
        counts[i] -= 1;
    }
    while counts.iter().sum::<usize>() < slots {
        let i = (0..e).min_by_key(|&i| counts[i]).unwrap();
        counts[i] += 1;
    }
    counts
}

#[test]
fn simulated_iteration_is_finite_and_positive() {
    let mut rng = StdRng::seed_from_u64(501);
    for _ in 0..48 {
        let raw: Vec<f64> = (0..16).map(|_| rng.gen::<f64>() * 10_000.0).collect();
        let system_sel = rng.gen_range(0..3usize);
        let moved = rng.gen_range(0..4usize);
        let sim = IterationSim::paper_eval(ModelCostConfig::gpt_small());
        let total: f64 = raw.iter().sum();
        let budget = sim.model.tokens_per_batch as f64;
        let tokens: Vec<f64> = if total > 0.0 {
            raw.iter().map(|&t| t / total * budget).collect()
        } else {
            vec![budget / 16.0; 16]
        };
        let replicas = replicas_summing_to(&tokens, 64);
        let system = [SimSystem::DeepSpeedStatic, SimSystem::Symi, SimSystem::FlexMoE][system_sel];
        let b = sim.simulate(
            &tokens,
            &replicas,
            system,
            RebalanceSpec { moved_replicas_per_layer: moved },
        );
        assert!(b.total_seconds().is_finite());
        assert!(b.total_seconds() > 0.0);
        assert!((0.0..=1.0).contains(&b.survived_fraction));
        assert!(b.gpu_peak_bytes > 0.0);
        for c in &b.components {
            assert!(c.seconds >= 0.0, "{} must be nonnegative", c.name);
        }
    }
}

#[test]
fn survival_monotone_in_capacity_factor() {
    let mut rng = StdRng::seed_from_u64(502);
    for _ in 0..12 {
        let raw: Vec<f64> = (0..16).map(|_| 1.0 + rng.gen::<f64>() * 9_999.0).collect();
        let base = IterationSim::paper_eval(ModelCostConfig::gpt_small());
        let total: f64 = raw.iter().sum();
        let budget = base.model.tokens_per_batch as f64;
        let tokens: Vec<f64> = raw.iter().map(|&t| t / total * budget).collect();
        let replicas = base.uniform_replicas();
        let mut prev = 0.0;
        for cf in [0.5, 1.0, 2.0, 4.0, 16.0] {
            let sim = IterationSim { capacity_factor: cf, ..base };
            let b = sim.simulate(
                &tokens,
                &replicas,
                SimSystem::DeepSpeedStatic,
                RebalanceSpec::default(),
            );
            assert!(b.survived_fraction >= prev - 1e-12);
            prev = b.survived_fraction;
        }
    }
}

#[test]
fn analytic_costs_scale_linearly_in_bytes() {
    let mut rng = StdRng::seed_from_u64(503);
    for _ in 0..32 {
        let scale = 1.0 + rng.gen::<f64>() * 99.0;
        let base = CommCostModel {
            nodes: 64,
            expert_classes: 16,
            slots_per_rank: 2,
            grad_bytes: 1.0e6,
            weight_bytes: 1.0e6,
            optimizer_bytes: 8.0e6,
            hw: HardwareSpec::paper_eval_cluster(),
        };
        let scaled = CommCostModel {
            grad_bytes: base.grad_bytes * scale,
            weight_bytes: base.weight_bytes * scale,
            ..base
        };
        for kind in [SystemKind::StaticBaseline, SystemKind::Symi] {
            let a = base.costs(kind).total();
            let b = scaled.costs(kind).total();
            assert!((b / a - scale).abs() < 1e-9);
        }
        // The overhead ratio is scale-free.
        assert!((base.symi_overhead_ratio() - scaled.symi_overhead_ratio()).abs() < 1e-12);
    }
}

#[test]
fn task_graph_makespan_bounds() {
    let mut rng = StdRng::seed_from_u64(504);
    for _ in 0..32 {
        let n = rng.gen_range(1..20usize);
        let durations: Vec<f64> = (0..n).map(|_| rng.gen::<f64>() * 10.0).collect();
        // Serial chain: makespan = sum; parallel: makespan = max.
        let mut serial = TaskGraph::new();
        let mut prev = None;
        for &d in &durations {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(serial.add("t", d, &deps));
        }
        let sum: f64 = durations.iter().sum();
        assert!((serial.schedule().makespan() - sum).abs() < 1e-9);

        let mut parallel = TaskGraph::new();
        for &d in &durations {
            parallel.add("t", d, &[]);
        }
        let max = durations.iter().cloned().fold(0.0, f64::max);
        assert!((parallel.schedule().makespan() - max).abs() < 1e-12);
    }
}
