//! Property-based tests for the cost model and iteration simulator.

use proptest::prelude::*;
use symi_netsim::iteration::{RebalanceSpec, SimSystem};
use symi_netsim::topology::HardwareSpec;
use symi_netsim::{CommCostModel, IterationSim, ModelCostConfig, SystemKind, TaskGraph};

fn replicas_summing_to(tokens: &[f64], slots: usize) -> Vec<usize> {
    let e = tokens.len();
    let total: f64 = tokens.iter().sum();
    let mut counts: Vec<usize> = tokens
        .iter()
        .map(|&t| ((t / total.max(1.0) * slots as f64).floor() as usize).max(1))
        .collect();
    while counts.iter().sum::<usize>() > slots {
        let i = (0..e).max_by_key(|&i| counts[i]).unwrap();
        counts[i] -= 1;
    }
    while counts.iter().sum::<usize>() < slots {
        let i = (0..e).min_by_key(|&i| counts[i]).unwrap();
        counts[i] += 1;
    }
    counts
}

proptest! {
    #![proptest_config(ProptestConfig::with_cases(48))]

    #[test]
    fn simulated_iteration_is_finite_and_positive(
        raw in prop::collection::vec(0.0f64..10_000.0, 16),
        system_sel in 0usize..3,
        moved in 0usize..4,
    ) {
        let sim = IterationSim::paper_eval(ModelCostConfig::gpt_small());
        let total: f64 = raw.iter().sum();
        let budget = sim.model.tokens_per_batch as f64;
        let tokens: Vec<f64> = if total > 0.0 {
            raw.iter().map(|&t| t / total * budget).collect()
        } else {
            vec![budget / 16.0; 16]
        };
        let replicas = replicas_summing_to(&tokens, 64);
        let system = [SimSystem::DeepSpeedStatic, SimSystem::Symi, SimSystem::FlexMoE][system_sel];
        let b = sim.simulate(
            &tokens,
            &replicas,
            system,
            RebalanceSpec { moved_replicas_per_layer: moved },
        );
        prop_assert!(b.total_seconds().is_finite());
        prop_assert!(b.total_seconds() > 0.0);
        prop_assert!((0.0..=1.0).contains(&b.survived_fraction));
        prop_assert!(b.gpu_peak_bytes > 0.0);
        for c in &b.components {
            prop_assert!(c.seconds >= 0.0, "{} must be nonnegative", c.name);
        }
    }

    #[test]
    fn survival_monotone_in_capacity_factor(
        raw in prop::collection::vec(1.0f64..10_000.0, 16),
    ) {
        let base = IterationSim::paper_eval(ModelCostConfig::gpt_small());
        let total: f64 = raw.iter().sum();
        let budget = base.model.tokens_per_batch as f64;
        let tokens: Vec<f64> = raw.iter().map(|&t| t / total * budget).collect();
        let replicas = base.uniform_replicas();
        let mut prev = 0.0;
        for cf in [0.5, 1.0, 2.0, 4.0, 16.0] {
            let sim = IterationSim { capacity_factor: cf, ..base };
            let b = sim.simulate(
                &tokens,
                &replicas,
                SimSystem::DeepSpeedStatic,
                RebalanceSpec::default(),
            );
            prop_assert!(b.survived_fraction >= prev - 1e-12);
            prev = b.survived_fraction;
        }
    }

    #[test]
    fn analytic_costs_scale_linearly_in_bytes(scale in 1.0f64..100.0) {
        let base = CommCostModel {
            nodes: 64,
            expert_classes: 16,
            slots_per_rank: 2,
            grad_bytes: 1.0e6,
            weight_bytes: 1.0e6,
            optimizer_bytes: 8.0e6,
            hw: HardwareSpec::paper_eval_cluster(),
        };
        let scaled = CommCostModel {
            grad_bytes: base.grad_bytes * scale,
            weight_bytes: base.weight_bytes * scale,
            ..base
        };
        for kind in [SystemKind::StaticBaseline, SystemKind::Symi] {
            let a = base.costs(kind).total();
            let b = scaled.costs(kind).total();
            prop_assert!((b / a - scale).abs() < 1e-9);
        }
        // The overhead ratio is scale-free.
        prop_assert!((base.symi_overhead_ratio() - scaled.symi_overhead_ratio()).abs() < 1e-12);
    }

    #[test]
    fn task_graph_makespan_bounds(durations in prop::collection::vec(0.0f64..10.0, 1..20)) {
        // Serial chain: makespan = sum; parallel: makespan = max.
        let mut serial = TaskGraph::new();
        let mut prev = None;
        for &d in &durations {
            let deps: Vec<_> = prev.into_iter().collect();
            prev = Some(serial.add("t", d, &deps));
        }
        let sum: f64 = durations.iter().sum();
        prop_assert!((serial.schedule().makespan() - sum).abs() < 1e-9);

        let mut parallel = TaskGraph::new();
        for &d in &durations {
            parallel.add("t", d, &[]);
        }
        let max = durations.iter().cloned().fold(0.0, f64::max);
        prop_assert!((parallel.schedule().makespan() - max).abs() < 1e-12);
    }
}
