//! The DeepSpeed-style static baseline engine.
//!
//! Differences from the SYMI engine, mirroring §5's experimental setup:
//!
//! - **Static uniform placement**, replicas of each class striped across
//!   *distinct* ranks (DeepSpeed does not support intra-rank expert data
//!   parallelism, §4.1), never re-placed.
//! - **Optimizer coupled to the EDP group**: each of the `r` host ranks of
//!   a class owns a `1/r` ZeRO-1 shard of that class's optimizer state —
//!   host-offloaded, like the paper's DeepSpeed configuration.
//! - Gradient sync is a plain ring all-reduce over the class's (striped,
//!   non-contiguous) host group; weight updates are an all-gather of the
//!   per-shard Adam results within the same group.

use symi_collectives::coll::chunk_range;
use symi_collectives::{CommError, CommGroup, RankCtx, TagSpace, WirePhase};
use symi_model::expert::ExpertFfn;
use symi_telemetry::{Phase, TelemetryHandle};
use symi_tensor::adam::{f16_to_f32, f32_to_f16};
use symi_tensor::ops::softmax_rows;
use symi_tensor::rng::StdRng;
use symi_tensor::{init, AdamConfig, AdamShard, Matrix};

/// Static striped placement: global slot `k` hosts class `k mod E`.
/// With `E` divisible by `s` this lands every replica of a class on a
/// different rank.
#[derive(Clone, Debug)]
pub struct StripedPlacement {
    expert_classes: usize,
    slots_per_rank: usize,
    ranks: usize,
}

impl StripedPlacement {
    pub fn new(expert_classes: usize, ranks: usize, slots_per_rank: usize) -> Self {
        let total = ranks * slots_per_rank;
        assert_eq!(total % expert_classes, 0, "uniform replication must divide");
        assert_eq!(
            expert_classes % slots_per_rank,
            0,
            "striping needs E divisible by s so replicas land on distinct ranks"
        );
        Self { expert_classes, slots_per_rank, ranks }
    }

    pub fn replicas(&self) -> usize {
        self.ranks * self.slots_per_rank / self.expert_classes
    }

    pub fn class_of_slot(&self, slot: usize) -> usize {
        slot % self.expert_classes
    }

    /// Global slots hosting `class`, ascending.
    pub fn slots_of_class(&self, class: usize) -> Vec<usize> {
        (0..self.ranks * self.slots_per_rank).filter(|&k| self.class_of_slot(k) == class).collect()
    }

    /// Host ranks of `class`, ascending (distinct by construction).
    pub fn host_ranks(&self, class: usize) -> Vec<usize> {
        self.slots_of_class(class).iter().map(|&k| k / self.slots_per_rank).collect()
    }

    /// Classes hosted on `rank` with their local slot index.
    pub fn classes_on_rank(&self, rank: usize) -> Vec<(usize, usize)> {
        (0..self.slots_per_rank)
            .map(|local| (self.class_of_slot(rank * self.slots_per_rank + local), local))
            .collect()
    }
}

/// Per-iteration statistics (matches `symi::engine::IterStats` in shape).
#[derive(Clone, Debug)]
pub struct IterStats {
    pub loss: f32,
    pub popularity: Vec<u64>,
    pub survived: usize,
    pub dropped: usize,
    /// Globally aggregated per-class kept assignments.
    pub kept_per_class: Vec<u64>,
}

/// Per-rank DeepSpeed-style engine for one MoE layer.
pub struct DeepSpeedMoeEngine {
    d_model: usize,
    expert_classes: usize,
    slots_per_rank: usize,
    slot_capacity: usize,
    rank: usize,
    nodes: usize,
    placement: StripedPlacement,
    slots: Vec<ExpertFfn>,
    /// ZeRO-1 shard of each *local* class's optimizer (one per local slot),
    /// covering this rank's position within the class's EDP group.
    opt_shards: Vec<AdamShard>,
    router_w: Matrix,
    iteration: u64,
    telemetry: TelemetryHandle,
}

impl DeepSpeedMoeEngine {
    #[allow(clippy::too_many_arguments)]
    pub fn new(
        rank: usize,
        nodes: usize,
        d_model: usize,
        d_ff: usize,
        expert_classes: usize,
        slots_per_rank: usize,
        slot_capacity: usize,
        adam: AdamConfig,
        seed: u64,
    ) -> Self {
        let placement = StripedPlacement::new(expert_classes, nodes, slots_per_rank);
        let class_params: Vec<Vec<f32>> = (0..expert_classes)
            .map(|class| ExpertFfn::new(d_model, d_ff, seed ^ (0xe0 + class as u64)).flat_params())
            .collect();
        let mut slots = Vec::with_capacity(slots_per_rank);
        let mut opt_shards = Vec::with_capacity(slots_per_rank);
        let r = placement.replicas();
        for (class, _local) in placement.classes_on_rank(rank) {
            let mut e = ExpertFfn::new(d_model, d_ff, 0);
            e.load_flat(&class_params[class]);
            slots.push(e);
            // My index within the class's EDP group decides my ZeRO shard.
            let hosts = placement.host_ranks(class);
            let my_idx = hosts.iter().position(|&h| h == rank).expect("I host this class");
            let (a, b) = chunk_range(class_params[class].len(), r, my_idx);
            opt_shards.push(AdamShard::new(adam, a, &class_params[class][a..b]));
        }
        let mut rng = StdRng::seed_from_u64(seed ^ 0x70c7);
        let router_w = init::normal(d_model, expert_classes, 0.3, &mut rng);
        Self {
            d_model,
            expert_classes,
            slots_per_rank,
            slot_capacity,
            rank,
            nodes,
            placement,
            slots,
            opt_shards,
            router_w,
            iteration: 0,
            telemetry: TelemetryHandle::disabled(),
        }
    }

    /// Installs this rank's telemetry handle (same phase taxonomy as the
    /// SYMI engine, so breakdowns are directly comparable).
    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    pub fn placement(&self) -> &StripedPlacement {
        &self.placement
    }

    pub fn slot_weights(&self, local_slot: usize) -> Vec<f32> {
        self.slots[local_slot].flat_params()
    }

    /// One training iteration on this rank's token shard (same contract as
    /// the SYMI engine).
    pub fn iteration(
        &mut self,
        ctx: &mut RankCtx,
        x_local: &Matrix,
        target_local: &Matrix,
    ) -> Result<IterStats, CommError> {
        let e = self.expert_classes;
        let n = self.nodes;
        let s = self.slots_per_rank;
        let d = self.d_model;
        let world = ctx.groups().world();
        let t_loc = x_local.rows();
        let r = self.placement.replicas();
        let tele = self.telemetry.clone();
        let tags = TagSpace::new(0, self.iteration);

        // Route.
        let routing_span = tele.span(Phase::Routing);
        let probs = softmax_rows(&x_local.matmul(&self.router_w));
        let mut assignment = Vec::with_capacity(t_loc);
        let mut gates = Vec::with_capacity(t_loc);
        let mut popularity = vec![0u64; e];
        for t in 0..t_loc {
            let row = probs.row(t);
            let (best, &p) = row
                .iter()
                .enumerate()
                .max_by(|a, b| a.1.partial_cmp(b.1).expect("finite"))
                .expect("non-empty");
            assignment.push(best);
            gates.push(p);
            popularity[best] += 1;
        }
        drop(routing_span);
        {
            let _span = tele.span(Phase::PopularityAllReduce);
            ctx.allreduce_u64_sum(
                &world,
                tags.phase_tag(WirePhase::PopularitySync),
                &mut popularity,
            )?;
        }

        // Static uniform capacity; sender-side even quota.
        let dispatch_span = tele.span(Phase::Dispatch);
        let quota: Vec<usize> = (0..e)
            .map(|_| {
                let cap = self.slot_capacity * r;
                cap / n + usize::from(self.rank < cap % n)
            })
            .collect();
        let mut taken = vec![0usize; e];
        let mut kept = Vec::new();
        let mut kept_slot = Vec::new();
        for (t, &class) in assignment.iter().enumerate().take(t_loc) {
            if taken[class] >= quota[class] {
                continue;
            }
            let class_slots = self.placement.slots_of_class(class);
            let gid = self.rank * t_loc + t;
            kept_slot.push(class_slots[gid % class_slots.len()]);
            kept.push(t);
            taken[class] += 1;
        }
        let survived_local = kept.len();

        // Dispatch.
        let mut row_bufs: Vec<Vec<f32>> = vec![Vec::new(); n];
        let mut meta_bufs: Vec<Vec<u64>> = vec![Vec::new(); n];
        for (i, &t) in kept.iter().enumerate() {
            let dest = kept_slot[i] / s;
            row_bufs[dest].extend_from_slice(x_local.row(t));
            meta_bufs[dest].push(kept_slot[i] as u64);
        }
        let in_rows =
            ctx.alltoallv_f32(&world, tags.phase_tag(WirePhase::DispatchRows), row_bufs)?;
        let in_meta =
            ctx.alltoallv_u64(&world, tags.phase_tag(WirePhase::DispatchMeta), meta_bufs)?;

        let mut slot_inputs: Vec<Vec<f32>> = vec![Vec::new(); s];
        let mut routing_map: Vec<Vec<(usize, usize)>> = vec![Vec::new(); n];
        for src in 0..n {
            for (j, &slot_id) in in_meta[src].iter().enumerate() {
                let local = slot_id as usize - self.rank * s;
                let row = slot_inputs[local].len() / d;
                slot_inputs[local].extend_from_slice(&in_rows[src][j * d..(j + 1) * d]);
                routing_map[src].push((local, row));
            }
        }
        drop(dispatch_span);

        // Forward + return.
        let ffn_span = tele.span(Phase::ExpertFfn);
        let slot_outputs: Vec<Matrix> = self
            .slots
            .iter_mut()
            .zip(&slot_inputs)
            .map(|(expert, flat)| {
                if flat.is_empty() {
                    Matrix::zeros(0, d)
                } else {
                    expert.forward(&Matrix::from_vec(flat.len() / d, d, flat.clone()))
                }
            })
            .collect();
        drop(ffn_span);
        let combine_span = tele.span(Phase::Combine);
        let mut back_bufs: Vec<Vec<f32>> = vec![Vec::new(); n];
        for src in 0..n {
            for &(slot, row) in &routing_map[src] {
                back_bufs[src].extend_from_slice(slot_outputs[slot].row(row));
            }
        }
        let returned =
            ctx.alltoallv_f32(&world, tags.phase_tag(WirePhase::CombineReturn), back_bufs)?;

        let mut y = Matrix::zeros(t_loc, d);
        let mut cursor = vec![0usize; n];
        for (i, &t) in kept.iter().enumerate() {
            let dest = kept_slot[i] / s;
            let j = cursor[dest];
            cursor[dest] += 1;
            let row = &returned[dest][j * d..(j + 1) * d];
            for (c, &v) in row.iter().enumerate() {
                y[(t, c)] += gates[t] * v;
            }
        }

        // Loss + upstream grad.
        let t_global = (t_loc * n) as f32;
        let mut dy = y.clone();
        dy.axpy(-1.0, target_local);
        let mut loss_acc = vec![dy.as_slice().iter().map(|v| v * v).sum::<f32>()];
        // dLoss/dy = 2 (y - target) / (T_global · d), matching the SYMI
        // engine's finite-difference-checked gradient.
        dy.scale(2.0 / (t_global * d as f32));
        ctx.allreduce_sum(&world, tags.phase_tag(WirePhase::LossSync), &mut loss_acc)?;
        let loss = loss_acc[0] / (t_global * d as f32);
        drop(combine_span);

        // Backward.
        let grad_dispatch_span = tele.span(Phase::GradComm);
        let mut gbufs: Vec<Vec<f32>> = vec![Vec::new(); n];
        for (i, &t) in kept.iter().enumerate() {
            let dest = kept_slot[i] / s;
            gbufs[dest].extend(dy.row(t).iter().map(|&v| v * gates[t]));
        }
        let in_grads = ctx.alltoallv_f32(&world, tags.phase_tag(WirePhase::GradReturn), gbufs)?;
        let mut slot_dys: Vec<Vec<f32>> =
            slot_inputs.iter().map(|f| vec![0.0f32; f.len()]).collect();
        for src in 0..n {
            for (j, &(slot, row)) in routing_map[src].iter().enumerate() {
                slot_dys[slot][row * d..(row + 1) * d]
                    .copy_from_slice(&in_grads[src][j * d..(j + 1) * d]);
            }
        }
        drop(grad_dispatch_span);
        {
            let _span = tele.span(Phase::ExpertFfn);
            for (local, expert) in self.slots.iter_mut().enumerate() {
                expert.zero_grad();
                if !slot_dys[local].is_empty() {
                    let rows = slot_dys[local].len() / d;
                    let _ = expert.backward(&Matrix::from_vec(rows, d, slot_dys[local].clone()));
                }
            }
        }

        // EDP gradient all-reduce per local class over the striped
        // (non-contiguous) host group — the group DeepSpeed created at init.
        let gradsync_span = tele.span(Phase::GradComm);
        let classes = self.placement.classes_on_rank(self.rank);
        for &(class, local) in &classes {
            let hosts = self.placement.host_ranks(class);
            let group = CommGroup::new(hosts);
            let mut grads = self.slots[local].flat_grads();
            ctx.allreduce_sum(&group, tags.tag(WirePhase::GradSync, class, 0), &mut grads)?;
            // Write the synchronized gradient back through the flat layout:
            // reuse load/step below, so stash in slot_dys space instead.
            slot_dys[local] = grads;
        }
        drop(gradsync_span);

        // ZeRO-1 optimizer step: each EDP member steps its shard, then the
        // group all-gathers the updated shards into full weights.
        for &(class, local) in &classes {
            let hosts = self.placement.host_ranks(class);
            let group = CommGroup::new(hosts.clone());
            let my_idx = hosts.iter().position(|&h| h == self.rank).expect("hosted");
            let updated = {
                let _span = tele.span(Phase::OptimizerStep);
                let grads = &slot_dys[local];
                let (a, b) = chunk_range(grads.len(), r, my_idx);
                // Staging the fp32 gradient shard to host and the fp16
                // weights back (PCIe).
                ctx.record_host_device_bytes((b - a) as u64 * 4);
                let updated = self.opt_shards[local].step(&grads[a..b]);
                ctx.record_host_device_bytes(updated.len() as u64 * 2);
                updated
            };
            let _span = tele.span(Phase::WeightComm);
            // Adam already emits fp16-representable weights, so the gather
            // travels at 2 B/param with no extra rounding.
            let half: Vec<u16> = updated.iter().map(|&v| f32_to_f16(v)).collect();
            let parts = ctx.all_gather_varsize_f16(
                &group,
                tags.tag(WirePhase::WeightDistribute, class, 0),
                half,
            )?;
            let mut full = self.slots[local].flat_params();
            for (idx, part) in parts.into_iter().enumerate() {
                let (pa, pb) = chunk_range(full.len(), r, idx);
                assert_eq!(part.len(), pb - pa, "shard shape mismatch");
                for (dst, h) in full[pa..pb].iter_mut().zip(part) {
                    *dst = f16_to_f32(h);
                }
            }
            self.slots[local].load_flat(&full);
        }

        self.iteration += 1;
        let mut counts = vec![survived_local as u64, (t_loc - survived_local) as u64];
        counts.extend(taken.iter().map(|&k| k as u64));
        ctx.allreduce_u64_sum(&world, tags.phase_tag(WirePhase::StatsSync), &mut counts)?;
        Ok(IterStats {
            loss,
            popularity,
            survived: counts[0] as usize,
            dropped: counts[1] as usize,
            kept_per_class: counts[2..].to_vec(),
        })
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_collectives::{Cluster, ClusterSpec};

    fn engine(rank: usize, nodes: usize, cap: usize) -> DeepSpeedMoeEngine {
        DeepSpeedMoeEngine::new(rank, nodes, 8, 16, 4, 2, cap, AdamConfig::default(), 31)
    }

    fn token_matrix(rank: usize, t_loc: usize, d: usize) -> Matrix {
        Matrix::from_fn(t_loc, d, |r, c| (((rank * t_loc + r) * d + c) as f32 * 0.137).sin())
    }

    #[test]
    fn striped_placement_spreads_replicas() {
        let p = StripedPlacement::new(4, 4, 2);
        assert_eq!(p.replicas(), 2);
        for class in 0..4 {
            let hosts = p.host_ranks(class);
            assert_eq!(hosts.len(), 2);
            assert_ne!(hosts[0], hosts[1], "replicas must land on distinct ranks");
        }
    }

    #[test]
    fn loss_decreases_over_iterations() {
        let nodes = 4;
        let (results, _) = Cluster::run(ClusterSpec::flat(nodes), |ctx| {
            let mut eng = engine(ctx.rank(), nodes, 1_000_000);
            let x = token_matrix(ctx.rank(), 8, 8);
            let target = Matrix::zeros(8, 8);
            let mut losses = Vec::new();
            for _ in 0..10 {
                losses.push(eng.iteration(ctx, &x, &target).unwrap().loss);
            }
            losses
        });
        for losses in &results {
            assert!(losses.last().unwrap() < &(losses[0] * 0.8), "{losses:?}");
        }
    }

    #[test]
    fn replicas_stay_identical_across_ranks() {
        let nodes = 4;
        let (results, _) = Cluster::run(ClusterSpec::flat(nodes), |ctx| {
            let mut eng = engine(ctx.rank(), nodes, 1_000_000);
            let x = token_matrix(ctx.rank(), 8, 8);
            let target = Matrix::zeros(8, 8);
            for _ in 0..3 {
                let _ = eng.iteration(ctx, &x, &target).unwrap();
            }
            eng.placement()
                .classes_on_rank(ctx.rank())
                .into_iter()
                .map(|(class, local)| (class, eng.slot_weights(local)))
                .collect::<Vec<_>>()
        });
        let mut by_class: std::collections::HashMap<usize, Vec<f32>> = Default::default();
        for per_rank in &results {
            for (class, w) in per_rank {
                match by_class.get(class) {
                    None => {
                        by_class.insert(*class, w.clone());
                    }
                    Some(reference) => {
                        let diff = reference
                            .iter()
                            .zip(w)
                            .map(|(a, b)| (a - b).abs())
                            .fold(0.0f32, f32::max);
                        assert!(diff < 1e-6, "class {class} replicas diverged by {diff}");
                    }
                }
            }
        }
    }

    #[test]
    fn static_capacity_drops_under_skew() {
        let nodes = 2;
        let (results, _) = Cluster::run(ClusterSpec::flat(nodes), |ctx| {
            let mut eng = engine(ctx.rank(), nodes, 1);
            let x = token_matrix(ctx.rank(), 16, 8);
            let target = Matrix::zeros(16, 8);
            eng.iteration(ctx, &x, &target).unwrap()
        });
        assert!(results[0].dropped > 0);
        assert_eq!(results[0].survived + results[0].dropped, 32);
    }
}
