//! # symi-baselines
//!
//! Faithful reimplementations of the two systems the SYMI paper compares
//! against, built on the same substrates (`symi-collectives`,
//! `symi-model`, `symi-tensor`) so every difference in measured bytes,
//! drops, and convergence is attributable to the system design rather than
//! the implementation:
//!
//! - [`deepspeed`] — the *static* baseline: uniform expert replication with
//!   replicas striped across distinct ranks (no intra-rank EDP), the
//!   optimizer ZeRO-1-sharded across each expert's EDP group, classic ring
//!   all-reduce for gradient sync, and an EDP all-gather for weight
//!   updates. No adaptivity.
//! - [`flexmoe`] — the *coarse-grained adaptive* baseline: FlexMoE's
//!   interval-triggered policy (rebalance every `i` iterations, shifting
//!   one replica at a time from the least- to the most-loaded class), with
//!   the optimizer state **coupled** to the expert instances — so every
//!   move physically migrates `W + O` bytes, which [`flexmoe::RebalanceCostHarness`]
//!   measures against SYMI's zero-extra-byte re-placement.

pub mod deepspeed;
pub mod flexmoe;

pub use deepspeed::DeepSpeedMoeEngine;
pub use flexmoe::{FlexMoePolicy, RebalanceCostHarness};
