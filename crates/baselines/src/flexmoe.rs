//! FlexMoE: coarse-grained adaptive replication with coupled optimizer
//! state.
//!
//! Two pieces:
//!
//! - [`FlexMoePolicy`] — the scheduling policy of Nie et al. reimplemented
//!   per §5's description: rebalancing triggers every `interval` iterations
//!   (the paper evaluates i ∈ {10, 50, 100}); each trigger iteratively
//!   shifts one replica from the least-loaded to the most-loaded class
//!   until a cost threshold (load-ratio) is met or the move budget runs
//!   out.
//! - [`RebalanceCostHarness`] — a measured-bytes comparison of what a
//!   placement change *costs*: SYMI re-places experts inside the weight
//!   update it already pays (§3.3 — traffic is invariant in the new
//!   placement), while a coupled design must additionally migrate every
//!   moved replica's weights **and** optimizer state.

use std::collections::HashMap;
use symi::{ExpertPlacement, SymiOptimizer};
use symi_collectives::p2p::{RecvOp, SendOp};
use symi_collectives::{Cluster, ClusterSpec, TagSpace, TrafficReport, WirePhase};
use symi_model::PlacementPolicy;
use symi_telemetry::{Phase, ScopedTimer};
use symi_tensor::adam::f32_to_f16;
use symi_tensor::{AdamConfig, AdamShard};

/// FlexMoE's interval-triggered, one-replica-at-a-time policy.
pub struct FlexMoePolicy {
    pub total_slots: usize,
    /// Rebalance every `interval` iterations (10/50/100 in the paper).
    pub interval: u64,
    /// Stop shifting when max/min load-per-replica falls below this.
    pub load_ratio_threshold: f64,
    /// Safety cap on replica moves per trigger.
    pub max_moves: usize,
    current: HashMap<usize, Vec<usize>>,
    /// Replica moves performed at the last trigger, per layer (what the
    /// coupled migration pays for).
    pub moves_last_trigger: HashMap<usize, usize>,
}

impl FlexMoePolicy {
    pub fn new(total_slots: usize, interval: u64) -> Self {
        Self {
            total_slots,
            interval,
            load_ratio_threshold: 1.5,
            max_moves: 16,
            current: HashMap::new(),
            moves_last_trigger: HashMap::new(),
        }
    }

    fn rebalance(&self, popularity: &[u64], counts: &mut [usize]) -> usize {
        let load = |pop: u64, c: usize| pop as f64 / c as f64;
        let mut moves = 0usize;
        for _ in 0..self.max_moves {
            let hot = (0..counts.len())
                .max_by(|&a, &b| {
                    load(popularity[a], counts[a]).total_cmp(&load(popularity[b], counts[b]))
                })
                .expect("non-empty");
            let cold = (0..counts.len()).filter(|&i| counts[i] > 1 && i != hot).min_by(|&a, &b| {
                load(popularity[a], counts[a]).total_cmp(&load(popularity[b], counts[b]))
            });
            let Some(cold) = cold else { break };
            let hot_load = load(popularity[hot], counts[hot]);
            let cold_load = load(popularity[cold], counts[cold]).max(1e-9);
            if hot_load / cold_load < self.load_ratio_threshold {
                break;
            }
            counts[cold] -= 1;
            counts[hot] += 1;
            moves += 1;
        }
        moves
    }
}

impl PlacementPolicy for FlexMoePolicy {
    fn name(&self) -> &'static str {
        "flexmoe"
    }

    fn next_replicas(&mut self, layer: usize, popularity: &[u64], iteration: u64) -> Vec<usize> {
        let e = popularity.len();
        let uniform = self.total_slots / e;
        assert_eq!(uniform * e, self.total_slots, "slots must divide for the initial layout");
        let counts = self.current.entry(layer).or_insert_with(|| vec![uniform; e]);
        if (iteration + 1).is_multiple_of(self.interval) {
            let mut next = counts.clone();
            let interval_moves = {
                let this = &*self;
                this.rebalance(popularity, &mut next)
            };
            self.moves_last_trigger.insert(layer, interval_moves);
            self.current.insert(layer, next.clone());
            next
        } else {
            counts.clone()
        }
    }
}

/// Measures optimizer-phase traffic for a placement transition under the
/// two state layouts.
#[derive(Clone, Copy, Debug)]
pub struct RebalanceCostHarness {
    pub nodes: usize,
    pub slots_per_rank: usize,
    pub expert_classes: usize,
    /// Scalars per expert (weights are `param_count` f32 in-simulation;
    /// exported optimizer state is `3 × param_count` f32 — master + two
    /// Adam moments).
    pub param_count: usize,
}

impl RebalanceCostHarness {
    /// Total traffic of SYMI's grad-collect → step → weight-distribute
    /// pipeline when transitioning from `old_counts` to `new_counts`.
    /// §3.3-II predicts this is **independent of `new_counts`**.
    pub fn symi_traffic(&self, old_counts: &[usize], new_counts: &[usize]) -> TrafficReport {
        let h = *self;
        let old = ExpertPlacement::from_counts(old_counts, h.slots_per_rank);
        let new = ExpertPlacement::from_counts(new_counts, h.slots_per_rank);
        let (_, report) = Cluster::run(ClusterSpec::flat(h.nodes), move |ctx| {
            let params: Vec<Vec<f32>> =
                (0..h.expert_classes).map(|c| vec![c as f32; h.param_count]).collect();
            let mut opt = SymiOptimizer::new(ctx.rank(), h.nodes, AdamConfig::default(), &params);
            // Fabricated synchronized gradients for locally hosted classes.
            let local_grads: Vec<Option<Vec<f32>>> = (0..h.expert_classes)
                .map(|c| old.rank_hosts(ctx.rank(), c).then(|| vec![0.01f32; h.param_count]))
                .collect();
            let tags = TagSpace::new(0, 0);
            let shards = opt.collect_grads(ctx, &old, &local_grads, tags).unwrap();
            let weights = opt.step(&shards);
            let _ = opt.distribute_weights(ctx, &new, &weights, tags).unwrap();
        });
        report
    }

    /// Total traffic of the coupled design for the same transition: the
    /// ZeRO-style weight all-gather it pays anyway **plus** a physical
    /// migration of `weights + exported optimizer state` for every slot
    /// whose class changes.
    pub fn coupled_traffic(&self, old_counts: &[usize], new_counts: &[usize]) -> TrafficReport {
        let h = *self;
        let old = ExpertPlacement::from_counts(old_counts, h.slots_per_rank);
        let new = ExpertPlacement::from_counts(new_counts, h.slots_per_rank);
        let (_, report) = Cluster::run(ClusterSpec::flat(h.nodes), move |ctx| {
            let rank = ctx.rank();
            let s = h.slots_per_rank;
            // Regular weight update: each class's primary host steps and
            // broadcasts full weights to the other replicas (simplified
            // ZeRO-1 EDP all-gather; the byte volume is the (r−1)·W the
            // static analysis charges). Marker spans attribute the bytes to
            // the same phase taxonomy the engines use.
            let update_span = ScopedTimer::marker(Phase::WeightComm);
            let tags = TagSpace::new(0, 0);
            for class in 0..h.expert_classes {
                let hosts = old.host_ranks(class);
                let primary = hosts[0];
                let tag = tags.tag(WirePhase::WeightDistribute, class, primary);
                if rank == primary {
                    let mut shard =
                        AdamShard::new(AdamConfig::default(), 0, &vec![0.0f32; h.param_count]);
                    let updated = shard.step(&vec![0.01f32; h.param_count]);
                    // Weights travel (and stage over PCIe) at fp16 width.
                    ctx.record_host_device_bytes(updated.len() as u64 * 2);
                    let half: Vec<u16> = updated.iter().map(|&v| f32_to_f16(v)).collect();
                    let sends =
                        hosts[1..].iter().map(|&dst| SendOp::new(dst, tag, half.clone())).collect();
                    ctx.batch_isend_irecv(sends, &[]).unwrap();
                } else if hosts.contains(&rank) {
                    let _ = ctx
                        .batch_isend_irecv(vec![], &[RecvOp::sized(primary, tag, h.param_count)])
                        .unwrap();
                }
            }
            drop(update_span);
            // Migration: every slot whose class changed pulls the new
            // class's weights AND optimizer state from its primary host.
            let _span = ScopedTimer::marker(Phase::Rebalance);
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for slot in 0..new.total_slots() {
                let oldc = old.class_of_slot(slot);
                let newc = new.class_of_slot(slot);
                if oldc == newc {
                    continue;
                }
                let src = old.host_ranks(newc)[0];
                let dst = slot / s;
                // Migration blobs stay fp32: exported optimizer state
                // (master + moments) has no fp16 representation.
                let tag = tags.tag(WirePhase::Control, slot, src);
                if rank == src {
                    let shard =
                        AdamShard::new(AdamConfig::default(), 0, &vec![0.0f32; h.param_count]);
                    let mut blob = shard.export_state();
                    blob.extend(vec![0.0f32; h.param_count]); // + weights
                    sends.push(SendOp::new(dst, tag, blob));
                }
                if rank == dst {
                    recvs.push(RecvOp::new(src, tag));
                }
            }
            let received = ctx.batch_isend_irecv(sends, &recvs).unwrap();
            for blob in &received {
                // The migrated state transits host memory too.
                ctx.record_host_device_bytes(blob.byte_len());
            }
        });
        report
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn harness() -> RebalanceCostHarness {
        RebalanceCostHarness { nodes: 4, slots_per_rank: 2, expert_classes: 4, param_count: 64 }
    }

    #[test]
    fn policy_only_rebalances_on_interval() {
        let mut p = FlexMoePolicy::new(16, 10);
        let skewed = [1000u64, 10, 10, 10];
        for iter in 0..9 {
            let r = p.next_replicas(0, &skewed, iter);
            assert_eq!(r, vec![4, 4, 4, 4], "no rebalance before the interval");
        }
        let r = p.next_replicas(0, &skewed, 9);
        assert!(r[0] > 4, "interval hit: hot class must gain replicas, got {r:?}");
        assert_eq!(r.iter().sum::<usize>(), 16);
    }

    #[test]
    fn policy_respects_min_one_replica() {
        let mut p = FlexMoePolicy::new(8, 1);
        p.max_moves = 100;
        let extreme = [1_000_000u64, 0, 0, 0];
        let r = p.next_replicas(0, &extreme, 0);
        assert!(r.iter().all(|&c| c >= 1));
        assert_eq!(r.iter().sum::<usize>(), 8);
        assert_eq!(r[0], 5);
    }

    #[test]
    fn policy_moves_incrementally_not_all_at_once() {
        let mut p = FlexMoePolicy::new(64, 1);
        p.max_moves = 2;
        let skewed = [1000u64, 10, 10, 10, 10, 10, 10, 10];
        let r = p.next_replicas(0, &skewed, 0);
        // From uniform 8: at most 2 moves happened.
        assert_eq!(r[0], 10, "exactly max_moves replicas shifted, got {r:?}");
        assert_eq!(*p.moves_last_trigger.get(&0).unwrap(), 2);
    }

    #[test]
    fn policy_is_per_layer() {
        let mut p = FlexMoePolicy::new(16, 1);
        let a = p.next_replicas(0, &[100, 1, 1, 1], 0);
        let b = p.next_replicas(1, &[1, 100, 1, 1], 0);
        assert!(a[0] > a[1]);
        assert!(b[1] > b[0]);
    }

    /// Inter-node bytes the SYMI pipeline ships for an `old → new`
    /// transition: Algorithm 2's grad collection over the old placement
    /// plus one fp16 chunk per (class, hosting rank, remote source) of the
    /// new one. Crucially a function of the *host sets* only — never of
    /// how many slots moved.
    fn predicted_symi_inter_bytes(h: &RebalanceCostHarness, old: &[usize], new: &[usize]) -> u64 {
        use symi_collectives::coll::chunk_range;
        let old = ExpertPlacement::from_counts(old, h.slots_per_rank);
        let new = ExpertPlacement::from_counts(new, h.slots_per_rank);
        let mut total = 0u64;
        for dst in 0..h.nodes {
            let (a, b) = chunk_range(h.param_count, h.nodes, dst);
            for class in 0..h.expert_classes {
                if symi::optimizer::get_source(&old.host_ranks(class), dst) != dst {
                    total += ((b - a) * 4) as u64;
                }
            }
        }
        for class in 0..h.expert_classes {
            for &dst in new.host_ranks(class).iter() {
                for src in (0..h.nodes).filter(|&src| src != dst) {
                    let (a, b) = chunk_range(h.param_count, h.nodes, src);
                    total += ((b - a) * 2) as u64;
                }
            }
        }
        total
    }

    #[test]
    fn symi_traffic_is_blind_to_slot_movement() {
        // The paper's central claim, measured in real bytes: a rebalance
        // ships exactly the weight-update traffic the *new* placement's
        // host sets require — zero bytes are attributable to slots having
        // moved, and every transition stays within the static per-slot
        // sN·W weight budget plus grad collection.
        let h = harness();
        let old = vec![2usize, 2, 2, 2];
        for new in [vec![2usize, 2, 2, 2], vec![5, 1, 1, 1], vec![3, 1, 2, 2]] {
            let measured = h.symi_traffic(&old, &new);
            assert_eq!(
                measured.inter_node_bytes,
                predicted_symi_inter_bytes(&h, &old, &new),
                "old {old:?} → new {new:?}: bytes must follow the host sets alone"
            );
        }
    }

    #[test]
    fn coupled_traffic_grows_with_moves() {
        let h = harness();
        let old = vec![2usize, 2, 2, 2];
        let stay = h.coupled_traffic(&old, &old);
        let move2 = h.coupled_traffic(&old, &[3, 1, 2, 2]);
        let move4 = h.coupled_traffic(&old, &[5, 1, 1, 1]);
        assert!(stay.total_bytes() < move2.total_bytes());
        assert!(move2.total_bytes() < move4.total_bytes());
    }

    #[test]
    fn migration_bytes_match_state_size() {
        let h = harness();
        let old = vec![2usize, 2, 2, 2];
        let stay = h.coupled_traffic(&old, &old);
        let moved = h.coupled_traffic(&old, &[3, 1, 2, 2]);
        // Counts [2,2,2,2] → [3,1,2,2] changes exactly 2 slots
        // (contiguous layout: slots 2 and 3 flip classes). Each migrated
        // slot moves 4L floats (3L optimizer + L weights); self-hosted
        // transfers are free, so the measured delta is at most that.
        let delta = moved.total_bytes() - stay.total_bytes();
        let per_slot = (4 * h.param_count * 4) as u64;
        // host-device staging adds 4L floats per received blob as well.
        assert!(delta > 0 && delta <= 2 * 2 * per_slot, "delta {delta}");
    }
}
