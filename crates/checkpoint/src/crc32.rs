//! IEEE CRC-32 (the zlib/PNG polynomial), table-driven and dependency-free.
//!
//! Every checkpoint section (header and payload) carries a CRC so a torn
//! write, a flipped bit, or a truncated file is detected *before* any field
//! is interpreted. The table is built at compile time.

const POLY: u32 = 0xEDB8_8320;

const fn build_table() -> [u32; 256] {
    let mut table = [0u32; 256];
    let mut i = 0;
    while i < 256 {
        let mut crc = i as u32;
        let mut bit = 0;
        while bit < 8 {
            crc = if crc & 1 != 0 { (crc >> 1) ^ POLY } else { crc >> 1 };
            bit += 1;
        }
        table[i] = crc;
        i += 1;
    }
    table
}

static TABLE: [u32; 256] = build_table();

/// CRC-32 of `bytes` (IEEE reflected polynomial, init `!0`, final xor `!0`).
pub fn crc32(bytes: &[u8]) -> u32 {
    let mut crc = !0u32;
    for &b in bytes {
        crc = (crc >> 8) ^ TABLE[((crc ^ b as u32) & 0xFF) as usize];
    }
    !crc
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn known_answer_vector() {
        // The canonical CRC-32 check value.
        assert_eq!(crc32(b"123456789"), 0xCBF4_3926);
    }

    #[test]
    fn empty_input() {
        assert_eq!(crc32(b""), 0);
    }

    #[test]
    fn single_bit_flip_changes_crc() {
        let a = crc32(b"symi checkpoint payload");
        let b = crc32(b"symi checkpoint paylobd");
        assert_ne!(a, b);
    }
}
