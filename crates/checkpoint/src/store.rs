//! Durable checkpoint directory: atomic file writes, per-iteration
//! completeness, and latest-complete restore with fallback.
//!
//! One training run writes into one directory. Engine checkpoints are one
//! file per rank per stamped iteration (`ckpt-it0000000004-rank002.bin`);
//! an iteration is *complete* only when all `world_size` rank files exist
//! and decode cleanly. Restore walks complete sets newest-first and falls
//! back past any set containing a torn or corrupted file, collecting a
//! diagnostic per rejected file — corruption is reported loudly, never
//! silently skipped.
//!
//! Durability protocol per file: write to `*.tmp`, `fsync` the file, rename
//! over the final name, `fsync` the directory. A crash at any point leaves
//! either the complete old state or a stray `*.tmp` that no reader ever
//! opens — never a half-written `.bin`.

use std::fs::File;
use std::io::Write as _;
use std::path::{Path, PathBuf};

use symi::{EngineConfig, EngineSnapshot};
use symi_model::{Checkpoint, ModelConfig};

use crate::error::CkptError;
use crate::format;

fn label(path: &Path) -> String {
    path.display().to_string()
}

/// Writes `bytes` to `path` with the tmp + fsync + rename + dir-fsync
/// protocol. Readers either see the old file or the complete new one.
pub fn write_atomic(path: &Path, bytes: &[u8]) -> Result<(), CkptError> {
    let tmp = path.with_extension("tmp");
    {
        let mut f = File::create(&tmp).map_err(|e| CkptError::io(label(&tmp), e))?;
        f.write_all(bytes).map_err(|e| CkptError::io(label(&tmp), e))?;
        f.sync_all().map_err(|e| CkptError::io(label(&tmp), e))?;
    }
    std::fs::rename(&tmp, path).map_err(|e| CkptError::io(label(path), e))?;
    if let Some(parent) = path.parent() {
        // Persist the rename itself: fsync the directory entry.
        if let Ok(dir) = File::open(parent) {
            let _ = dir.sync_all();
        }
    }
    Ok(())
}

/// `ckpt-it{iteration:010}-rank{rank:03}.bin`
pub fn engine_file_name(iteration: u64, rank: usize) -> String {
    format!("ckpt-it{iteration:010}-rank{rank:03}.bin")
}

/// `trainer-it{iteration:010}.bin`
pub fn trainer_file_name(iteration: u64) -> String {
    format!("trainer-it{iteration:010}.bin")
}

/// Inverse of [`engine_file_name`].
pub fn parse_engine_file_name(name: &str) -> Option<(u64, usize)> {
    let rest = name.strip_prefix("ckpt-it")?.strip_suffix(".bin")?;
    let (it, rank) = rest.split_once("-rank")?;
    Some((it.parse().ok()?, rank.parse().ok()?))
}

/// Inverse of [`trainer_file_name`].
pub fn parse_trainer_file_name(name: &str) -> Option<u64> {
    name.strip_prefix("trainer-it")?.strip_suffix(".bin")?.parse().ok()
}

/// Outcome of a latest-complete restore scan: the newest fully-valid set
/// (if any) plus one diagnostic line per file that forced a fallback.
pub struct LatestEngine {
    pub loaded: Option<(u64, Vec<EngineSnapshot>)>,
    pub rejected: Vec<String>,
}

/// Same shape for the single-file trainer checkpoints.
pub struct LatestTrainer {
    pub loaded: Option<Checkpoint>,
    pub rejected: Vec<String>,
}

/// Handle on one checkpoint directory.
#[derive(Clone)]
pub struct CheckpointStore {
    dir: PathBuf,
}

impl CheckpointStore {
    pub fn new(dir: impl Into<PathBuf>) -> Result<Self, CkptError> {
        let dir = dir.into();
        std::fs::create_dir_all(&dir).map_err(|e| CkptError::io(label(&dir), e))?;
        Ok(Self { dir })
    }

    pub fn dir(&self) -> &Path {
        &self.dir
    }

    pub fn engine_path(&self, iteration: u64, rank: usize) -> PathBuf {
        self.dir.join(engine_file_name(iteration, rank))
    }

    pub fn trainer_path(&self, iteration: u64) -> PathBuf {
        self.dir.join(trainer_file_name(iteration))
    }

    /// Synchronous encode + atomic write of one rank's snapshot. The async
    /// path ([`crate::AsyncCheckpointWriter`]) does the same work off the
    /// training thread. Returns bytes written.
    pub fn write_engine(
        &self,
        cfg: &EngineConfig,
        snap: &EngineSnapshot,
    ) -> Result<u64, CkptError> {
        let bytes = format::encode_engine(cfg, snap);
        write_atomic(&self.engine_path(snap.iteration, snap.logical_rank), &bytes)?;
        Ok(bytes.len() as u64)
    }

    pub fn write_trainer(&self, cfg: &ModelConfig, ckpt: &Checkpoint) -> Result<u64, CkptError> {
        let bytes = format::encode_trainer(cfg, ckpt);
        write_atomic(&self.trainer_path(ckpt.iteration), &bytes)?;
        Ok(bytes.len() as u64)
    }

    fn list_names(&self) -> Result<Vec<String>, CkptError> {
        let rd = std::fs::read_dir(&self.dir).map_err(|e| CkptError::io(label(&self.dir), e))?;
        let mut names = Vec::new();
        for entry in rd {
            let entry = entry.map_err(|e| CkptError::io(label(&self.dir), e))?;
            if let Some(name) = entry.file_name().to_str() {
                names.push(name.to_string());
            }
        }
        names.sort();
        Ok(names)
    }

    /// Iterations for which all `world_size` rank files exist (presence
    /// only — validity is established at load time), ascending.
    pub fn complete_engine_iterations(&self, world_size: usize) -> Result<Vec<u64>, CkptError> {
        let mut by_iter: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
        for name in self.list_names()? {
            if let Some((it, rank)) = parse_engine_file_name(&name) {
                by_iter.entry(it).or_default().push(rank);
            }
        }
        Ok(by_iter
            .into_iter()
            .filter(|(_, ranks)| {
                let mut sorted = ranks.clone();
                sorted.sort_unstable();
                sorted.len() == world_size && sorted.iter().enumerate().all(|(i, &r)| i == r)
            })
            .map(|(it, _)| it)
            .collect())
    }

    /// Loads and validates every rank file of one iteration, in rank order.
    pub fn load_engine_set(
        &self,
        iteration: u64,
        world_size: usize,
        expected: Option<&EngineConfig>,
    ) -> Result<Vec<EngineSnapshot>, CkptError> {
        let mut snaps = Vec::with_capacity(world_size);
        for rank in 0..world_size {
            let path = self.engine_path(iteration, rank);
            let file = label(&path);
            let bytes = std::fs::read(&path).map_err(|e| CkptError::io(file.clone(), e))?;
            let ef = format::decode_engine(&file, &bytes, expected)?;
            if ef.snapshot.iteration != iteration {
                return Err(CkptError::FieldMismatch {
                    file,
                    field: "header.iteration".into(),
                    detail: format!(
                        "file named for iteration {iteration} but stamped {}",
                        ef.snapshot.iteration
                    ),
                });
            }
            if ef.snapshot.world_size != world_size || ef.snapshot.logical_rank != rank {
                return Err(CkptError::FieldMismatch {
                    file,
                    field: "header.logical_rank".into(),
                    detail: format!(
                        "file named for rank {rank}/{world_size} but stamped {}/{}",
                        ef.snapshot.logical_rank, ef.snapshot.world_size
                    ),
                });
            }
            snaps.push(ef.snapshot);
        }
        Ok(snaps)
    }

    /// The restore entry point: newest complete set that validates end to
    /// end. A set with any bad file is rejected (each failure recorded
    /// verbatim in `rejected`) and the scan falls back to the next older
    /// complete set.
    pub fn load_latest_engine(
        &self,
        world_size: usize,
        expected: Option<&EngineConfig>,
    ) -> Result<LatestEngine, CkptError> {
        let mut rejected = Vec::new();
        for &it in self.complete_engine_iterations(world_size)?.iter().rev() {
            match self.load_engine_set(it, world_size, expected) {
                Ok(snaps) => return Ok(LatestEngine { loaded: Some((it, snaps)), rejected }),
                Err(e) => rejected.push(e.to_string()),
            }
        }
        Ok(LatestEngine { loaded: None, rejected })
    }

    /// Newest trainer checkpoint that validates, falling back past bad
    /// files just like the engine path.
    pub fn load_latest_trainer(
        &self,
        expected: Option<&ModelConfig>,
    ) -> Result<LatestTrainer, CkptError> {
        let mut iters: Vec<u64> =
            self.list_names()?.iter().filter_map(|n| parse_trainer_file_name(n)).collect();
        iters.sort_unstable();
        let mut rejected = Vec::new();
        for &it in iters.iter().rev() {
            let path = self.trainer_path(it);
            let file = label(&path);
            let loaded = std::fs::read(&path)
                .map_err(|e| CkptError::io(file.clone(), e))
                .and_then(|bytes| format::decode_trainer(&file, &bytes, expected));
            match loaded {
                Ok(ckpt) => return Ok(LatestTrainer { loaded: Some(ckpt), rejected }),
                Err(e) => rejected.push(e.to_string()),
            }
        }
        Ok(LatestTrainer { loaded: None, rejected })
    }

    /// Retention: keeps the newest `keep` *complete* engine sets, deletes
    /// every engine file older than the oldest kept iteration, and sweeps
    /// stray `*.tmp` files. Files newer than the oldest kept set (e.g. an
    /// in-flight incomplete set) are never touched. Returns files removed.
    pub fn prune_engine(&self, keep: usize, world_size: usize) -> Result<usize, CkptError> {
        let complete = self.complete_engine_iterations(world_size)?;
        if complete.len() <= keep || keep == 0 {
            return Ok(0);
        }
        let oldest_kept = complete[complete.len() - keep];
        let mut removed = 0;
        for name in self.list_names()? {
            let path = self.dir.join(&name);
            let stale_tmp = name.ends_with(".tmp");
            let old_engine = parse_engine_file_name(&name).is_some_and(|(it, _)| it < oldest_kept);
            if stale_tmp || old_engine {
                std::fs::remove_file(&path).map_err(|e| CkptError::io(label(&path), e))?;
                removed += 1;
            }
        }
        Ok(removed)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_tensor::AdamConfig;

    fn cfg() -> EngineConfig {
        EngineConfig {
            d_model: 4,
            d_ff: 8,
            expert_classes: 2,
            slots_per_rank: 2,
            slot_capacity: 64,
            adam: AdamConfig::default(),
            seed: 7,
            layer_id: 0,
        }
    }

    fn snap(c: &EngineConfig, iteration: u64, world: usize, rank: usize) -> EngineSnapshot {
        use symi_collectives::coll::chunk_range;
        let params = format::expert_param_count(c);
        let (start, end) = chunk_range(params, world, rank);
        let len = end - start;
        let shard = |salt: f32| symi::ShardState {
            offset: start,
            master: (0..len).map(|i| i as f32 + salt).collect(),
            m: vec![salt; len],
            v: vec![salt * 0.5; len],
            t: iteration,
        };
        let total = c.slots_per_rank * world;
        EngineSnapshot {
            iteration,
            world_size: world,
            logical_rank: rank,
            replica_counts: vec![total / 2, total - total / 2],
            popularity: None,
            shards: vec![shard(0.0), shard(1.0)],
        }
    }

    fn temp_store(tag: &str) -> CheckpointStore {
        let dir = std::env::temp_dir().join(format!("symi_ckpt_store_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        CheckpointStore::new(dir).unwrap()
    }

    fn write_set(store: &CheckpointStore, c: &EngineConfig, it: u64, world: usize) {
        for rank in 0..world {
            store.write_engine(c, &snap(c, it, world, rank)).unwrap();
        }
    }

    #[test]
    fn latest_complete_set_wins_and_incomplete_sets_are_ignored() {
        let store = temp_store("latest");
        let c = cfg();
        write_set(&store, &c, 2, 2);
        write_set(&store, &c, 4, 2);
        // Iteration 6 is incomplete: only rank 0 made it to disk.
        store.write_engine(&c, &snap(&c, 6, 2, 0)).unwrap();

        assert_eq!(store.complete_engine_iterations(2).unwrap(), vec![2, 4]);
        let latest = store.load_latest_engine(2, Some(&c)).unwrap();
        let (it, snaps) = latest.loaded.unwrap();
        assert_eq!(it, 4);
        assert_eq!(snaps.len(), 2);
        assert!(latest.rejected.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn corrupt_newest_set_falls_back_with_loud_diagnostics() {
        let store = temp_store("fallback");
        let c = cfg();
        write_set(&store, &c, 2, 2);
        write_set(&store, &c, 4, 2);
        // Flip one payload byte in the newest set's rank-1 file.
        let victim = store.engine_path(4, 1);
        let mut bytes = std::fs::read(&victim).unwrap();
        let at = bytes.len() - 20;
        bytes[at] ^= 0x01;
        std::fs::write(&victim, &bytes).unwrap();

        let latest = store.load_latest_engine(2, Some(&c)).unwrap();
        let (it, _) = latest.loaded.unwrap();
        assert_eq!(it, 2, "falls back past the corrupt set");
        assert_eq!(latest.rejected.len(), 1);
        assert!(
            latest.rejected[0].contains("rank001") && latest.rejected[0].contains("CRC"),
            "diagnostic names the file and the failure: {}",
            latest.rejected[0]
        );
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn prune_keeps_newest_complete_sets_and_sweeps_tmp() {
        let store = temp_store("prune");
        let c = cfg();
        for it in [2, 4, 6] {
            write_set(&store, &c, it, 2);
        }
        std::fs::write(store.dir().join("ckpt-it0000000008-rank000.tmp"), b"junk").unwrap();
        let removed = store.prune_engine(2, 2).unwrap();
        assert_eq!(removed, 3, "one stale set (2 files) + one tmp");
        assert_eq!(store.complete_engine_iterations(2).unwrap(), vec![4, 6]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn world_size_changes_keep_checkpoint_sets_separate_and_restorable() {
        // One directory, one elastic run: world 4 history, a post-shrink
        // world-3 set, a post-join world-5 set.
        let store = temp_store("elastic_worlds");
        let c = cfg();
        write_set(&store, &c, 5, 4);
        write_set(&store, &c, 9, 3);
        write_set(&store, &c, 12, 5);

        // Each world sees exactly its own complete sets — other-world sets
        // are neither mixed in nor reported torn.
        assert_eq!(store.complete_engine_iterations(4).unwrap(), vec![5]);
        assert_eq!(store.complete_engine_iterations(3).unwrap(), vec![9]);
        assert_eq!(store.complete_engine_iterations(5).unwrap(), vec![12]);

        // Restore after scale-out picks the consistent grown set, with no
        // rejection noise from the smaller-world history.
        let latest = store.load_latest_engine(5, Some(&c)).unwrap();
        let (it, snaps) = latest.loaded.unwrap();
        assert_eq!(it, 12);
        assert_eq!(snaps.len(), 5);
        assert!(snaps.iter().enumerate().all(|(r, s)| s.world_size == 5 && s.logical_rank == r));
        assert!(latest.rejected.is_empty());

        // The pre-change sets stay restorable at their own world.
        let old = store.load_latest_engine(4, Some(&c)).unwrap();
        assert_eq!(old.loaded.unwrap().0, 5);
        assert!(old.rejected.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn prune_under_one_world_never_touches_newer_other_world_sets() {
        let store = temp_store("elastic_prune");
        let c = cfg();
        write_set(&store, &c, 2, 4);
        write_set(&store, &c, 5, 4);
        write_set(&store, &c, 9, 3); // post-shrink, newer
        write_set(&store, &c, 12, 5); // post-join, newest

        // Pruning with the *old* world keeps its newest set (iteration 5)
        // and only deletes strictly older files — the newer post-change
        // sets survive untouched.
        let removed = store.prune_engine(1, 4).unwrap();
        assert_eq!(removed, 4, "exactly the world-4 set at iteration 2");
        assert_eq!(store.complete_engine_iterations(4).unwrap(), vec![5]);
        assert_eq!(store.complete_engine_iterations(3).unwrap(), vec![9]);
        assert_eq!(store.complete_engine_iterations(5).unwrap(), vec![12]);
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn same_iteration_rewrite_after_join_is_complete_only_for_the_grown_world() {
        // A driver checkpointing at the join boundary rewrites the boundary
        // iteration under the grown world's stamps (ranks 0..3 overwritten,
        // rank 4 added): the result must be complete for world 5 only — the
        // world-4 query neither mixes the superset in nor reports it torn.
        let store = temp_store("elastic_boundary");
        let c = cfg();
        write_set(&store, &c, 7, 4); // pre-join boundary checkpoint
        write_set(&store, &c, 7, 5); // post-join rewrite, same iteration
        assert_eq!(store.complete_engine_iterations(5).unwrap(), vec![7]);
        assert_eq!(store.complete_engine_iterations(4).unwrap(), Vec::<u64>::new());
        let latest = store.load_latest_engine(5, Some(&c)).unwrap();
        assert_eq!(latest.loaded.unwrap().0, 7);
        assert!(latest.rejected.is_empty());
        let _ = std::fs::remove_dir_all(store.dir());
    }

    #[test]
    fn file_name_round_trip() {
        assert_eq!(parse_engine_file_name(&engine_file_name(1234, 56)), Some((1234, 56)));
        assert_eq!(parse_trainer_file_name(&trainer_file_name(9)), Some(9));
        assert_eq!(parse_engine_file_name("trainer-it0000000009.bin"), None);
        assert_eq!(parse_engine_file_name("ckpt-it12-rank1.tmp"), None);
    }
}
