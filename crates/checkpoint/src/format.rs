//! On-disk checkpoint format: versioned, CRC-checked, length-validated.
//!
//! Container layout (all integers little-endian):
//!
//! ```text
//! magic        8 B   "SYMICKPT"
//! version      u32   FORMAT_VERSION
//! kind         u32   1 = engine (per-rank EngineSnapshot), 2 = trainer
//! header_len   u32
//! header       header_len B
//! header_crc   u32   CRC-32 over header bytes
//! payload_len  u64
//! payload      payload_len B
//! payload_crc  u32   CRC-32 over payload bytes
//! ```
//!
//! The header carries the iteration stamp and a geometry fingerprint of the
//! system that wrote the file; the payload carries the state. Headers are
//! tiny, so `symi-ckpt inspect` and the latest-complete scan can classify a
//! file without decoding megabytes of fp32 state. Decoding validates three
//! layers in order: container framing (magic/version/CRC/lengths), header
//! fingerprint against the running system, then payload structure (every
//! length cross-checked against the header geometry). Each failure names
//! the file and the exact field.
//!
//! fp16 replica weights are deliberately *not* stored: they rematerialize
//! bit-exactly from the fp32 masters via `materialize_slots`, which is the
//! same decoupling (§3) that keeps SYMI's optimizer state stationary.

use symi::{valid_replica_counts, EngineConfig, EngineSnapshot, ShardState};
use symi_model::{Checkpoint, ModelConfig, TrainRecord};
use symi_tensor::{AdamConfig, AdamState, Matrix};
use symi_workload::PopularityTrace;

use crate::crc32::crc32;
use crate::error::CkptError;

pub const MAGIC: [u8; 8] = *b"SYMICKPT";
pub const FORMAT_VERSION: u32 = 1;
pub const KIND_ENGINE: u32 = 1;
pub const KIND_TRAINER: u32 = 2;

pub fn kind_name(kind: u32) -> &'static str {
    match kind {
        KIND_ENGINE => "engine",
        KIND_TRAINER => "trainer",
        _ => "unknown",
    }
}

/// Flat parameter count of one expert FFN — the unit the fp32 shards chunk.
pub fn expert_param_count(cfg: &EngineConfig) -> usize {
    cfg.d_model * cfg.d_ff + cfg.d_ff + cfg.d_ff * cfg.d_model + cfg.d_model
}

// ---------------------------------------------------------------------------
// Byte-level writer / reader
// ---------------------------------------------------------------------------

#[derive(Default)]
struct ByteWriter {
    buf: Vec<u8>,
}

impl ByteWriter {
    fn new() -> Self {
        Self::default()
    }

    fn u8(&mut self, v: u8) {
        self.buf.push(v);
    }

    fn u64(&mut self, v: u64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32(&mut self, v: f32) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f64(&mut self, v: f64) {
        self.buf.extend_from_slice(&v.to_le_bytes());
    }

    fn f32_slice(&mut self, vs: &[f32]) {
        self.buf.reserve(vs.len() * 4);
        for &v in vs {
            self.buf.extend_from_slice(&v.to_le_bytes());
        }
    }
}

/// Cursor over a byte slice that names the field being read, so running off
/// the end surfaces as `Truncated { file, field }` rather than a panic.
struct Reader<'f, 'a> {
    file: &'f str,
    buf: &'a [u8],
    pos: usize,
}

impl<'f, 'a> Reader<'f, 'a> {
    fn new(file: &'f str, buf: &'a [u8]) -> Self {
        Self { file, buf, pos: 0 }
    }

    fn take(&mut self, n: usize, field: &str) -> Result<&'a [u8], CkptError> {
        if self.buf.len() - self.pos < n {
            return Err(CkptError::Truncated { file: self.file.into(), field: field.into() });
        }
        let out = &self.buf[self.pos..self.pos + n];
        self.pos += n;
        Ok(out)
    }

    fn u8(&mut self, field: &str) -> Result<u8, CkptError> {
        Ok(self.take(1, field)?[0])
    }

    fn u64(&mut self, field: &str) -> Result<u64, CkptError> {
        let b = self.take(8, field)?;
        Ok(u64::from_le_bytes(b.try_into().unwrap()))
    }

    fn f32(&mut self, field: &str) -> Result<f32, CkptError> {
        let b = self.take(4, field)?;
        Ok(f32::from_le_bytes(b.try_into().unwrap()))
    }

    fn f64(&mut self, field: &str) -> Result<f64, CkptError> {
        let b = self.take(8, field)?;
        Ok(f64::from_le_bytes(b.try_into().unwrap()))
    }

    fn usize(&mut self, field: &str) -> Result<usize, CkptError> {
        let v = self.u64(field)?;
        usize::try_from(v).map_err(|_| CkptError::FieldMismatch {
            file: self.file.into(),
            field: field.into(),
            detail: format!("{v} does not fit usize"),
        })
    }

    /// Length-prefixed count that must also fit in the remaining bytes at
    /// `elem_size` each — so a corrupt length can never drive a huge
    /// allocation before the shortfall is noticed.
    fn count(&mut self, elem_size: usize, field: &str) -> Result<usize, CkptError> {
        let n = self.usize(field)?;
        let need = n.checked_mul(elem_size).ok_or_else(|| CkptError::FieldMismatch {
            file: self.file.into(),
            field: field.into(),
            detail: format!("count {n} overflows"),
        })?;
        if self.buf.len() - self.pos < need {
            return Err(CkptError::Truncated { file: self.file.into(), field: field.into() });
        }
        Ok(n)
    }

    fn f32_vec(&mut self, n: usize, field: &str) -> Result<Vec<f32>, CkptError> {
        let raw = self.take(n * 4, field)?;
        Ok(raw.chunks_exact(4).map(|c| f32::from_le_bytes(c.try_into().unwrap())).collect())
    }

    fn u64_vec(&mut self, n: usize, field: &str) -> Result<Vec<u64>, CkptError> {
        let raw = self.take(n * 8, field)?;
        Ok(raw.chunks_exact(8).map(|c| u64::from_le_bytes(c.try_into().unwrap())).collect())
    }

    fn usize_vec(&mut self, n: usize, field: &str) -> Result<Vec<usize>, CkptError> {
        self.u64_vec(n, field)?
            .into_iter()
            .map(|v| {
                usize::try_from(v).map_err(|_| CkptError::FieldMismatch {
                    file: self.file.into(),
                    field: field.into(),
                    detail: format!("{v} does not fit usize"),
                })
            })
            .collect()
    }

    /// All bytes must be consumed — trailing garbage inside a CRC-valid
    /// section means a writer/reader disagreement, which must be loud.
    fn finish(&self, section: &str) -> Result<(), CkptError> {
        if self.pos != self.buf.len() {
            return Err(CkptError::FieldMismatch {
                file: self.file.into(),
                field: section.into(),
                detail: format!("{} trailing bytes after last field", self.buf.len() - self.pos),
            });
        }
        Ok(())
    }
}

// ---------------------------------------------------------------------------
// Container framing
// ---------------------------------------------------------------------------

/// A parsed container: framing validated (magic, version, CRCs, lengths),
/// contents not yet interpreted.
pub struct RawCheckpoint<'a> {
    pub version: u32,
    pub kind: u32,
    pub header: &'a [u8],
    pub payload: &'a [u8],
}

pub fn encode_container(kind: u32, header: &[u8], payload: &[u8]) -> Vec<u8> {
    let mut out = Vec::with_capacity(8 + 4 + 4 + 4 + header.len() + 4 + 8 + payload.len() + 4);
    out.extend_from_slice(&MAGIC);
    out.extend_from_slice(&FORMAT_VERSION.to_le_bytes());
    out.extend_from_slice(&kind.to_le_bytes());
    out.extend_from_slice(&(header.len() as u32).to_le_bytes());
    out.extend_from_slice(header);
    out.extend_from_slice(&crc32(header).to_le_bytes());
    out.extend_from_slice(&(payload.len() as u64).to_le_bytes());
    out.extend_from_slice(payload);
    out.extend_from_slice(&crc32(payload).to_le_bytes());
    out
}

pub fn decode_container<'a>(file: &str, bytes: &'a [u8]) -> Result<RawCheckpoint<'a>, CkptError> {
    let mut r = Reader::new(file, bytes);
    let magic = r.take(8, "magic").map_err(|_| CkptError::BadMagic { file: file.into() })?;
    if magic != MAGIC {
        return Err(CkptError::BadMagic { file: file.into() });
    }
    let version = u32::from_le_bytes(r.take(4, "version")?.try_into().unwrap());
    if version != FORMAT_VERSION {
        return Err(CkptError::UnsupportedVersion {
            file: file.into(),
            found: version,
            supported: FORMAT_VERSION,
        });
    }
    let kind = u32::from_le_bytes(r.take(4, "kind")?.try_into().unwrap());
    let header_len = u32::from_le_bytes(r.take(4, "header_len")?.try_into().unwrap()) as usize;
    let header = r.take(header_len, "header")?;
    let header_crc = u32::from_le_bytes(r.take(4, "header_crc")?.try_into().unwrap());
    if crc32(header) != header_crc {
        return Err(CkptError::CrcMismatch { file: file.into(), section: "header" });
    }
    let payload_len = u64::from_le_bytes(r.take(8, "payload_len")?.try_into().unwrap());
    let payload_len = usize::try_from(payload_len).map_err(|_| CkptError::FieldMismatch {
        file: file.into(),
        field: "payload_len".into(),
        detail: format!("{payload_len} does not fit usize"),
    })?;
    let payload = r.take(payload_len, "payload")?;
    let payload_crc = u32::from_le_bytes(r.take(4, "payload_crc")?.try_into().unwrap());
    if crc32(payload) != payload_crc {
        return Err(CkptError::CrcMismatch { file: file.into(), section: "payload" });
    }
    r.finish("container")?;
    Ok(RawCheckpoint { version, kind, header, payload })
}

fn expect_kind(file: &str, found: u32, expected: u32) -> Result<(), CkptError> {
    if found != expected {
        return Err(CkptError::WrongKind { file: file.into(), expected, found });
    }
    Ok(())
}

fn check_eq_u64(file: &str, field: &str, stored: u64, live: u64) -> Result<(), CkptError> {
    if stored != live {
        return Err(CkptError::FieldMismatch {
            file: file.into(),
            field: field.into(),
            detail: format!("checkpoint has {stored}, running system has {live}"),
        });
    }
    Ok(())
}

fn check_eq_f32(file: &str, field: &str, stored: f32, live: f32) -> Result<(), CkptError> {
    // Bit compare: restart must be bit-exact, so "close enough" hyperparams
    // are not the same hyperparams.
    if stored.to_bits() != live.to_bits() {
        return Err(CkptError::FieldMismatch {
            file: file.into(),
            field: field.into(),
            detail: format!("checkpoint has {stored}, running system has {live}"),
        });
    }
    Ok(())
}

// ---------------------------------------------------------------------------
// Engine checkpoint (kind 1): one file per rank per stamped iteration
// ---------------------------------------------------------------------------

/// Decoded engine checkpoint: the geometry fingerprint it was written under
/// and the per-rank snapshot.
#[derive(Debug)]
pub struct EngineFile {
    pub config: EngineConfig,
    pub snapshot: EngineSnapshot,
}

pub fn encode_engine(cfg: &EngineConfig, snap: &EngineSnapshot) -> Vec<u8> {
    let mut h = ByteWriter::new();
    h.u64(snap.iteration);
    h.u64(snap.world_size as u64);
    h.u64(snap.logical_rank as u64);
    h.u64(cfg.d_model as u64);
    h.u64(cfg.d_ff as u64);
    h.u64(cfg.expert_classes as u64);
    h.u64(cfg.slots_per_rank as u64);
    h.u64(cfg.slot_capacity as u64);
    h.u64(cfg.seed);
    h.u64(cfg.layer_id as u64);
    h.f32(cfg.adam.lr);
    h.f32(cfg.adam.beta1);
    h.f32(cfg.adam.beta2);
    h.f32(cfg.adam.eps);
    h.f32(cfg.adam.weight_decay);

    let mut p = ByteWriter::new();
    p.u64(snap.replica_counts.len() as u64);
    for &c in &snap.replica_counts {
        p.u64(c as u64);
    }
    match &snap.popularity {
        None => p.u8(0),
        Some(pop) => {
            p.u8(1);
            p.u64(pop.len() as u64);
            for &v in pop {
                p.u64(v);
            }
        }
    }
    p.u64(snap.shards.len() as u64);
    for shard in &snap.shards {
        p.u64(shard.offset as u64);
        p.u64(shard.t);
        p.u64(shard.master.len() as u64);
        p.f32_slice(&shard.master);
        p.f32_slice(&shard.m);
        p.f32_slice(&shard.v);
    }
    encode_container(KIND_ENGINE, &h.buf, &p.buf)
}

/// Decodes and fully validates an engine checkpoint. With
/// `expected = Some(cfg)`, the stored geometry fingerprint must match the
/// running engine's config field-for-field; without it (the `symi-ckpt`
/// tool), only internal consistency is enforced.
pub fn decode_engine(
    file: &str,
    bytes: &[u8],
    expected: Option<&EngineConfig>,
) -> Result<EngineFile, CkptError> {
    let raw = decode_container(file, bytes)?;
    expect_kind(file, raw.kind, KIND_ENGINE)?;

    let mut h = Reader::new(file, raw.header);
    let iteration = h.u64("header.iteration")?;
    let world_size = h.usize("header.world_size")?;
    let logical_rank = h.usize("header.logical_rank")?;
    let d_model = h.usize("header.d_model")?;
    let d_ff = h.usize("header.d_ff")?;
    let expert_classes = h.usize("header.expert_classes")?;
    let slots_per_rank = h.usize("header.slots_per_rank")?;
    let slot_capacity = h.usize("header.slot_capacity")?;
    let seed = h.u64("header.seed")?;
    let layer_id = h.usize("header.layer_id")?;
    let adam = AdamConfig {
        lr: h.f32("header.adam.lr")?,
        beta1: h.f32("header.adam.beta1")?,
        beta2: h.f32("header.adam.beta2")?,
        eps: h.f32("header.adam.eps")?,
        weight_decay: h.f32("header.adam.weight_decay")?,
    };
    h.finish("header")?;
    let config = EngineConfig {
        d_model,
        d_ff,
        expert_classes,
        slots_per_rank,
        slot_capacity,
        adam,
        seed,
        layer_id,
    };

    if world_size == 0 || logical_rank >= world_size {
        return Err(CkptError::FieldMismatch {
            file: file.into(),
            field: "header.logical_rank".into(),
            detail: format!("rank {logical_rank} outside world of {world_size}"),
        });
    }
    if let Some(live) = expected {
        check_eq_u64(file, "header.d_model", d_model as u64, live.d_model as u64)?;
        check_eq_u64(file, "header.d_ff", d_ff as u64, live.d_ff as u64)?;
        check_eq_u64(
            file,
            "header.expert_classes",
            expert_classes as u64,
            live.expert_classes as u64,
        )?;
        check_eq_u64(
            file,
            "header.slots_per_rank",
            slots_per_rank as u64,
            live.slots_per_rank as u64,
        )?;
        check_eq_u64(
            file,
            "header.slot_capacity",
            slot_capacity as u64,
            live.slot_capacity as u64,
        )?;
        check_eq_u64(file, "header.seed", seed, live.seed)?;
        check_eq_u64(file, "header.layer_id", layer_id as u64, live.layer_id as u64)?;
        check_eq_f32(file, "header.adam.lr", adam.lr, live.adam.lr)?;
        check_eq_f32(file, "header.adam.beta1", adam.beta1, live.adam.beta1)?;
        check_eq_f32(file, "header.adam.beta2", adam.beta2, live.adam.beta2)?;
        check_eq_f32(file, "header.adam.eps", adam.eps, live.adam.eps)?;
        check_eq_f32(file, "header.adam.weight_decay", adam.weight_decay, live.adam.weight_decay)?;
    }

    let mut r = Reader::new(file, raw.payload);
    let n_counts = r.count(8, "replica_counts.len")?;
    check_eq_u64(file, "replica_counts.len", n_counts as u64, expert_classes as u64)?;
    let replica_counts = r.usize_vec(n_counts, "replica_counts")?;
    let total_slots = slots_per_rank * world_size;
    if !valid_replica_counts(&replica_counts, total_slots) {
        return Err(CkptError::FieldMismatch {
            file: file.into(),
            field: "replica_counts".into(),
            detail: format!(
                "counts {replica_counts:?} do not cover {total_slots} slots with >=1 replica each"
            ),
        });
    }
    let popularity = match r.u8("popularity.flag")? {
        0 => None,
        1 => {
            let n = r.count(8, "popularity.len")?;
            check_eq_u64(file, "popularity.len", n as u64, expert_classes as u64)?;
            Some(r.u64_vec(n, "popularity")?)
        }
        other => {
            return Err(CkptError::FieldMismatch {
                file: file.into(),
                field: "popularity.flag".into(),
                detail: format!("expected 0 or 1, found {other}"),
            })
        }
    };
    let n_shards = r.count(24, "shards.len")?;
    check_eq_u64(file, "shards.len", n_shards as u64, expert_classes as u64)?;
    let param_count = expert_param_count(&config);
    let mut shards = Vec::with_capacity(n_shards);
    for i in 0..n_shards {
        let offset = r.usize(&format!("shards[{i}].offset"))?;
        let t = r.u64(&format!("shards[{i}].t"))?;
        let len = r.count(12, &format!("shards[{i}].len"))?;
        let master = r.f32_vec(len, &format!("shards[{i}].master"))?;
        let m = r.f32_vec(len, &format!("shards[{i}].m"))?;
        let v = r.f32_vec(len, &format!("shards[{i}].v"))?;
        let shard = ShardState { offset, master, m, v, t };
        if let Err(bad) = shard.check_geometry(param_count, world_size, logical_rank) {
            return Err(CkptError::FieldMismatch {
                file: file.into(),
                field: format!("shards[{i}].{}", bad.trim_start_matches("shard.")),
                detail: format!(
                    "shard geometry disagrees with (params={param_count}, world={world_size}, rank={logical_rank})"
                ),
            });
        }
        shards.push(shard);
    }
    r.finish("payload")?;

    Ok(EngineFile {
        config,
        snapshot: EngineSnapshot {
            iteration,
            world_size,
            logical_rank,
            replica_counts,
            popularity,
            shards,
        },
    })
}

// ---------------------------------------------------------------------------
// Trainer checkpoint (kind 2): whole-model single-process training state
// ---------------------------------------------------------------------------

fn put_adam(p: &mut ByteWriter, st: &AdamState) {
    let cfg = st.config();
    p.f32(cfg.lr);
    p.f32(cfg.beta1);
    p.f32(cfg.beta2);
    p.f32(cfg.eps);
    p.f32(cfg.weight_decay);
    p.u64(st.step_count());
    p.u64(st.len() as u64);
    p.f32_slice(st.master_weights());
    let (m, v) = st.moments();
    p.f32_slice(m);
    p.f32_slice(v);
}

fn get_adam(r: &mut Reader<'_, '_>, field: &str) -> Result<AdamState, CkptError> {
    let cfg = AdamConfig {
        lr: r.f32(&format!("{field}.lr"))?,
        beta1: r.f32(&format!("{field}.beta1"))?,
        beta2: r.f32(&format!("{field}.beta2"))?,
        eps: r.f32(&format!("{field}.eps"))?,
        weight_decay: r.f32(&format!("{field}.weight_decay"))?,
    };
    let t = r.u64(&format!("{field}.t"))?;
    let len = r.count(12, &format!("{field}.len"))?;
    let master = r.f32_vec(len, &format!("{field}.master"))?;
    let m = r.f32_vec(len, &format!("{field}.m"))?;
    let v = r.f32_vec(len, &format!("{field}.v"))?;
    Ok(AdamState::from_parts(cfg, master, m, v, t))
}

pub fn encode_trainer(cfg: &ModelConfig, ckpt: &Checkpoint) -> Vec<u8> {
    let mut h = ByteWriter::new();
    h.u64(ckpt.iteration);
    h.u64(cfg.vocab_size as u64);
    h.u64(cfg.d_model as u64);
    h.u64(cfg.n_heads as u64);
    h.u64(cfg.d_ff as u64);
    h.u64(cfg.layers as u64);
    h.u64(cfg.experts as u64);
    h.u64(cfg.top_k as u64);
    h.u64(cfg.seq_len as u64);
    h.u64(cfg.batch_size as u64);
    h.u64(cfg.total_slots as u64);
    h.f32(cfg.capacity_factor);
    h.f32(cfg.aux_loss_coef);
    h.f32(cfg.lr);
    h.u64(cfg.seed);

    let mut p = ByteWriter::new();
    p.u64(ckpt.dense_params.len() as u64);
    for mat in &ckpt.dense_params {
        p.u64(mat.rows() as u64);
        p.u64(mat.cols() as u64);
        p.f32_slice(mat.as_slice());
    }
    p.u64(ckpt.dense_opt.len() as u64);
    for st in &ckpt.dense_opt {
        put_adam(&mut p, st);
    }
    p.u64(ckpt.expert_params.len() as u64);
    for layer in &ckpt.expert_params {
        p.u64(layer.len() as u64);
        for class in layer {
            p.u64(class.len() as u64);
            p.f32_slice(class);
        }
    }
    p.u64(ckpt.expert_opt.len() as u64);
    for layer in &ckpt.expert_opt {
        p.u64(layer.len() as u64);
        for st in layer {
            put_adam(&mut p, st);
        }
    }
    p.u64(ckpt.replicas.len() as u64);
    for layer in &ckpt.replicas {
        p.u64(layer.len() as u64);
        for &c in layer {
            p.u64(c as u64);
        }
    }
    // TrainRecord
    let rec = &ckpt.record;
    p.u64(rec.losses.len() as u64);
    for &l in &rec.losses {
        p.f32(l);
    }
    p.u64(rec.survival.len() as u64);
    for &s in &rec.survival {
        p.f64(s);
    }
    p.u64(rec.popularity.len() as u64);
    for trace in &rec.popularity {
        let t_len = trace.len();
        let classes = trace.expert_classes();
        p.u64(t_len as u64);
        p.u64(classes as u64);
        let series: Vec<Vec<u64>> = (0..classes).map(|e| trace.series(e)).collect();
        for t in 0..t_len {
            for col in &series {
                p.u64(col[t]);
            }
        }
    }
    p.u64(rec.replicas.len() as u64);
    for it in &rec.replicas {
        p.u64(it.len() as u64);
        for layer in it {
            p.u64(layer.len() as u64);
            for &c in layer {
                p.u64(c as u64);
            }
        }
    }
    p.u64(rec.moved_replicas.len() as u64);
    for &mv in &rec.moved_replicas {
        p.u64(mv as u64);
    }
    encode_container(KIND_TRAINER, &h.buf, &p.buf)
}

pub fn decode_trainer(
    file: &str,
    bytes: &[u8],
    expected: Option<&ModelConfig>,
) -> Result<Checkpoint, CkptError> {
    let raw = decode_container(file, bytes)?;
    expect_kind(file, raw.kind, KIND_TRAINER)?;

    let mut h = Reader::new(file, raw.header);
    let iteration = h.u64("header.iteration")?;
    let vocab_size = h.u64("header.vocab_size")?;
    let d_model = h.u64("header.d_model")?;
    let n_heads = h.u64("header.n_heads")?;
    let d_ff = h.u64("header.d_ff")?;
    let layers = h.u64("header.layers")?;
    let experts = h.u64("header.experts")?;
    let top_k = h.u64("header.top_k")?;
    let seq_len = h.u64("header.seq_len")?;
    let batch_size = h.u64("header.batch_size")?;
    let total_slots = h.u64("header.total_slots")?;
    let capacity_factor = h.f32("header.capacity_factor")?;
    let aux_loss_coef = h.f32("header.aux_loss_coef")?;
    let lr = h.f32("header.lr")?;
    let seed = h.u64("header.seed")?;
    h.finish("header")?;

    if let Some(live) = expected {
        check_eq_u64(file, "header.vocab_size", vocab_size, live.vocab_size as u64)?;
        check_eq_u64(file, "header.d_model", d_model, live.d_model as u64)?;
        check_eq_u64(file, "header.n_heads", n_heads, live.n_heads as u64)?;
        check_eq_u64(file, "header.d_ff", d_ff, live.d_ff as u64)?;
        check_eq_u64(file, "header.layers", layers, live.layers as u64)?;
        check_eq_u64(file, "header.experts", experts, live.experts as u64)?;
        check_eq_u64(file, "header.top_k", top_k, live.top_k as u64)?;
        check_eq_u64(file, "header.seq_len", seq_len, live.seq_len as u64)?;
        check_eq_u64(file, "header.batch_size", batch_size, live.batch_size as u64)?;
        check_eq_u64(file, "header.total_slots", total_slots, live.total_slots as u64)?;
        check_eq_f32(file, "header.capacity_factor", capacity_factor, live.capacity_factor)?;
        check_eq_f32(file, "header.aux_loss_coef", aux_loss_coef, live.aux_loss_coef)?;
        check_eq_f32(file, "header.lr", lr, live.lr)?;
        check_eq_u64(file, "header.seed", seed, live.seed)?;
    }

    let mut r = Reader::new(file, raw.payload);
    let n_dense = r.count(1, "dense_params.len")?;
    let mut dense_params = Vec::with_capacity(n_dense);
    for i in 0..n_dense {
        let rows = r.usize(&format!("dense_params[{i}].rows"))?;
        let cols = r.usize(&format!("dense_params[{i}].cols"))?;
        let elems = rows.checked_mul(cols).ok_or_else(|| CkptError::FieldMismatch {
            file: file.into(),
            field: format!("dense_params[{i}].rows"),
            detail: format!("{rows}x{cols} overflows"),
        })?;
        let data = r.f32_vec(elems, &format!("dense_params[{i}].data"))?;
        dense_params.push(Matrix::from_vec(rows, cols, data));
    }
    let n_dopt = r.count(1, "dense_opt.len")?;
    check_eq_u64(file, "dense_opt.len", n_dopt as u64, n_dense as u64)?;
    let mut dense_opt = Vec::with_capacity(n_dopt);
    for (i, param) in dense_params.iter().enumerate() {
        let st = get_adam(&mut r, &format!("dense_opt[{i}]"))?;
        if st.len() != param.rows() * param.cols() {
            return Err(CkptError::FieldMismatch {
                file: file.into(),
                field: format!("dense_opt[{i}].len"),
                detail: format!(
                    "optimizer covers {} params but matrix has {}",
                    st.len(),
                    param.rows() * param.cols()
                ),
            });
        }
        dense_opt.push(st);
    }
    let n_layers = r.count(1, "expert_params.len")?;
    check_eq_u64(file, "expert_params.len", n_layers as u64, layers)?;
    let mut expert_params = Vec::with_capacity(n_layers);
    for l in 0..n_layers {
        let n_classes = r.count(1, &format!("expert_params[{l}].len"))?;
        check_eq_u64(file, &format!("expert_params[{l}].len"), n_classes as u64, experts)?;
        let mut layer = Vec::with_capacity(n_classes);
        for c in 0..n_classes {
            let len = r.count(4, &format!("expert_params[{l}][{c}].len"))?;
            layer.push(r.f32_vec(len, &format!("expert_params[{l}][{c}]"))?);
        }
        expert_params.push(layer);
    }
    let n_olayers = r.count(1, "expert_opt.len")?;
    check_eq_u64(file, "expert_opt.len", n_olayers as u64, n_layers as u64)?;
    let mut expert_opt = Vec::with_capacity(n_olayers);
    for (l, param_layer) in expert_params.iter().enumerate() {
        let n_classes = r.count(1, &format!("expert_opt[{l}].len"))?;
        check_eq_u64(
            file,
            &format!("expert_opt[{l}].len"),
            n_classes as u64,
            param_layer.len() as u64,
        )?;
        let mut layer = Vec::with_capacity(n_classes);
        for (c, param) in param_layer.iter().enumerate() {
            let st = get_adam(&mut r, &format!("expert_opt[{l}][{c}]"))?;
            if st.len() != param.len() {
                return Err(CkptError::FieldMismatch {
                    file: file.into(),
                    field: format!("expert_opt[{l}][{c}].len"),
                    detail: format!(
                        "optimizer covers {} params but expert has {}",
                        st.len(),
                        param.len()
                    ),
                });
            }
            layer.push(st);
        }
        expert_opt.push(layer);
    }
    let n_rlayers = r.count(1, "replicas.len")?;
    check_eq_u64(file, "replicas.len", n_rlayers as u64, n_layers as u64)?;
    let mut replicas = Vec::with_capacity(n_rlayers);
    for l in 0..n_rlayers {
        let n = r.count(8, &format!("replicas[{l}].len"))?;
        replicas.push(r.usize_vec(n, &format!("replicas[{l}]"))?);
    }

    let n_losses = r.count(4, "record.losses.len")?;
    let losses = r.f32_vec(n_losses, "record.losses")?;
    let n_surv = r.count(8, "record.survival.len")?;
    let mut survival = Vec::with_capacity(n_surv);
    for i in 0..n_surv {
        survival.push(r.f64(&format!("record.survival[{i}]"))?);
    }
    let n_traces = r.count(16, "record.popularity.len")?;
    let mut popularity = Vec::with_capacity(n_traces);
    for tr in 0..n_traces {
        let t_len = r.usize(&format!("record.popularity[{tr}].len"))?;
        let classes = r.usize(&format!("record.popularity[{tr}].classes"))?;
        let mut trace = PopularityTrace::new();
        for t in 0..t_len {
            trace.push(r.u64_vec(classes, &format!("record.popularity[{tr}][{t}]"))?);
        }
        popularity.push(trace);
    }
    let n_rits = r.count(1, "record.replicas.len")?;
    let mut rec_replicas = Vec::with_capacity(n_rits);
    for it in 0..n_rits {
        let nl = r.count(1, &format!("record.replicas[{it}].len"))?;
        let mut per_layer = Vec::with_capacity(nl);
        for l in 0..nl {
            let n = r.count(8, &format!("record.replicas[{it}][{l}].len"))?;
            per_layer.push(r.usize_vec(n, &format!("record.replicas[{it}][{l}]"))?);
        }
        rec_replicas.push(per_layer);
    }
    let n_moved = r.count(8, "record.moved_replicas.len")?;
    let moved_replicas = r.usize_vec(n_moved, "record.moved_replicas")?;
    r.finish("payload")?;

    Ok(Checkpoint {
        iteration,
        dense_params,
        dense_opt,
        expert_params,
        expert_opt,
        replicas,
        record: TrainRecord {
            losses,
            survival,
            popularity,
            replicas: rec_replicas,
            moved_replicas,
        },
    })
}

// ---------------------------------------------------------------------------
// Inspection (symi-ckpt)
// ---------------------------------------------------------------------------

/// Header-level summary of a checkpoint file, for `symi-ckpt inspect`.
pub struct InspectInfo {
    pub kind: u32,
    pub version: u32,
    pub iteration: u64,
    pub world_size: Option<usize>,
    pub logical_rank: Option<usize>,
    pub header_bytes: usize,
    pub payload_bytes: usize,
}

/// Validates framing + full structural decode, returning a summary. This is
/// what `symi-ckpt validate` runs per file.
pub fn inspect(file: &str, bytes: &[u8]) -> Result<InspectInfo, CkptError> {
    let raw = decode_container(file, bytes)?;
    let info = match raw.kind {
        KIND_ENGINE => {
            let ef = decode_engine(file, bytes, None)?;
            InspectInfo {
                kind: raw.kind,
                version: raw.version,
                iteration: ef.snapshot.iteration,
                world_size: Some(ef.snapshot.world_size),
                logical_rank: Some(ef.snapshot.logical_rank),
                header_bytes: raw.header.len(),
                payload_bytes: raw.payload.len(),
            }
        }
        KIND_TRAINER => {
            let ckpt = decode_trainer(file, bytes, None)?;
            InspectInfo {
                kind: raw.kind,
                version: raw.version,
                iteration: ckpt.iteration,
                world_size: None,
                logical_rank: None,
                header_bytes: raw.header.len(),
                payload_bytes: raw.payload.len(),
            }
        }
        other => {
            return Err(CkptError::WrongKind {
                file: file.into(),
                expected: KIND_ENGINE,
                found: other,
            })
        }
    };
    Ok(info)
}

#[cfg(test)]
mod tests {
    use super::*;

    fn tiny_cfg() -> EngineConfig {
        EngineConfig {
            d_model: 4,
            d_ff: 8,
            expert_classes: 2,
            slots_per_rank: 2,
            slot_capacity: 64,
            adam: AdamConfig::default(),
            seed: 7,
            layer_id: 0,
        }
    }

    fn tiny_snapshot(cfg: &EngineConfig, world: usize, rank: usize) -> EngineSnapshot {
        use symi_collectives::coll::chunk_range;
        let params = expert_param_count(cfg);
        let (start, end) = chunk_range(params, world, rank);
        let len = end - start;
        let shard = |salt: f32| ShardState {
            offset: start,
            master: (0..len).map(|i| i as f32 * 0.5 + salt).collect(),
            m: vec![0.25 + salt; len],
            v: vec![0.125 + salt; len],
            t: 3,
        };
        EngineSnapshot {
            iteration: 42,
            world_size: world,
            logical_rank: rank,
            replica_counts: vec![3, 1],
            popularity: Some(vec![100, 20]),
            shards: vec![shard(0.0), shard(1.0)],
        }
    }

    #[test]
    fn engine_round_trip_is_field_exact() {
        let cfg = tiny_cfg();
        let snap = tiny_snapshot(&cfg, 2, 1);
        let bytes = encode_engine(&cfg, &snap);
        let back = decode_engine("t.bin", &bytes, Some(&cfg)).unwrap();
        assert_eq!(back.snapshot.iteration, snap.iteration);
        assert_eq!(back.snapshot.world_size, snap.world_size);
        assert_eq!(back.snapshot.logical_rank, snap.logical_rank);
        assert_eq!(back.snapshot.replica_counts, snap.replica_counts);
        assert_eq!(back.snapshot.popularity, snap.popularity);
        for (a, b) in back.snapshot.shards.iter().zip(&snap.shards) {
            assert_eq!(a.offset, b.offset);
            assert_eq!(a.t, b.t);
            assert_eq!(a.master, b.master);
            assert_eq!(a.m, b.m);
            assert_eq!(a.v, b.v);
        }
    }

    #[test]
    fn corrupt_payload_byte_is_a_crc_mismatch_naming_the_section() {
        let cfg = tiny_cfg();
        let bytes = encode_engine(&cfg, &tiny_snapshot(&cfg, 2, 0));
        let mut bad = bytes.clone();
        let at = bad.len() - 20; // inside payload, before its CRC
        bad[at] ^= 0x40;
        match decode_engine("corrupt.bin", &bad, Some(&cfg)) {
            Err(CkptError::CrcMismatch { file, section }) => {
                assert_eq!(file, "corrupt.bin");
                assert_eq!(section, "payload");
            }
            other => panic!("expected CrcMismatch, got {other:?}"),
        }
    }

    #[test]
    fn truncated_file_names_the_missing_field() {
        let cfg = tiny_cfg();
        let bytes = encode_engine(&cfg, &tiny_snapshot(&cfg, 2, 0));
        let cut = &bytes[..bytes.len() / 2];
        match decode_engine("cut.bin", cut, Some(&cfg)) {
            Err(CkptError::Truncated { file, field }) => {
                assert_eq!(file, "cut.bin");
                assert_eq!(field, "payload");
            }
            other => panic!("expected Truncated, got {other:?}"),
        }
    }

    #[test]
    fn wrong_magic_and_version_are_rejected() {
        let cfg = tiny_cfg();
        let bytes = encode_engine(&cfg, &tiny_snapshot(&cfg, 2, 0));
        let mut bad = bytes.clone();
        bad[0] = b'X';
        assert!(matches!(decode_engine("m.bin", &bad, None), Err(CkptError::BadMagic { .. })));
        let mut vbad = bytes;
        vbad[8] = 99; // version little-endian low byte
        assert!(matches!(
            decode_engine("v.bin", &vbad, None),
            Err(CkptError::UnsupportedVersion { found: 99, .. })
        ));
    }

    #[test]
    fn geometry_fingerprint_mismatch_names_the_field() {
        let cfg = tiny_cfg();
        let bytes = encode_engine(&cfg, &tiny_snapshot(&cfg, 2, 0));
        let mut other = cfg;
        other.d_ff = 16;
        match decode_engine("geom.bin", &bytes, Some(&other)) {
            Err(CkptError::FieldMismatch { field, .. }) => assert_eq!(field, "header.d_ff"),
            res => panic!("expected FieldMismatch, got {:?}", res.err()),
        }
    }

    #[test]
    fn nan_and_denormal_payloads_survive_bit_exactly() {
        let cfg = tiny_cfg();
        let mut snap = tiny_snapshot(&cfg, 2, 0);
        snap.shards[0].master[0] = f32::NAN;
        snap.shards[0].m[1] = f32::from_bits(1); // smallest denormal
        snap.shards[1].v[0] = -0.0;
        let bytes = encode_engine(&cfg, &snap);
        let back = decode_engine("nan.bin", &bytes, Some(&cfg)).unwrap();
        assert_eq!(back.snapshot.shards[0].master[0].to_bits(), f32::NAN.to_bits());
        assert_eq!(back.snapshot.shards[0].m[1].to_bits(), 1);
        assert_eq!(back.snapshot.shards[1].v[0].to_bits(), (-0.0f32).to_bits());
    }

    #[test]
    fn engine_loader_rejects_a_trainer_file_by_kind() {
        let cfg = tiny_cfg();
        let snap = tiny_snapshot(&cfg, 2, 0);
        let mut bytes = encode_engine(&cfg, &snap);
        // Rewrite the kind field (offset 12) and fix nothing else: the kind
        // sits outside both CRCs by design, so this exercises WrongKind.
        bytes[12] = KIND_TRAINER as u8;
        assert!(matches!(
            decode_engine("k.bin", &bytes, None),
            Err(CkptError::WrongKind { expected: KIND_ENGINE, found: KIND_TRAINER, .. })
        ));
    }
}
