//! Cadence-driven checkpoint coordination for the distributed engine.
//!
//! One [`CheckpointManager`] lives on each rank thread, beside its
//! [`MoeLayerEngine`]. After every completed iteration the training loop
//! calls [`CheckpointManager::maybe_checkpoint`]; on cadence boundaries the
//! manager runs one epoch-fenced coordination round so all ranks stamp the
//! *same completed iteration*, copies the engine snapshot on the training
//! thread (bounded, measured), and hands serialization + fsync + atomic
//! rename to the background [`AsyncCheckpointWriter`].
//!
//! The coordination round rides the engine's own tag space on
//! [`WirePhase::Control`] — the one wire phase the engine never uses — so
//! checkpoint traffic can never collide with or reorder training traffic.
//! Each rank contributes its completed-iteration counter to an all-to-all;
//! the stamp is the minimum. In a healthy cluster all counters agree and
//! every rank writes; if any rank lags or died, lagging stamps are skipped
//! (counted) or the collective error propagates to the recovery path.
//!
//! Telemetry (when attached): `ckpt.cadence_hits`, `ckpt.snapshots`,
//! `ckpt.skipped`, `ckpt.copy_ns`, `ckpt.write_ns`, `ckpt.bytes_written`,
//! `ckpt.restores`.

use std::path::PathBuf;
use std::time::Instant;

use symi::{EngineConfig, MoeLayerEngine};
use symi_collectives::{CommError, RankCtx, TagSpace, WirePhase};
use symi_telemetry::TelemetryHandle;

use crate::error::CkptError;
use crate::format;
use crate::store::{CheckpointStore, LatestEngine};
use crate::writer::AsyncCheckpointWriter;

/// Where, how often, and how much to retain.
#[derive(Clone, Debug)]
pub struct CheckpointConfig {
    pub dir: PathBuf,
    /// Stamp a checkpoint every `cadence` completed iterations.
    pub cadence: u64,
    /// Complete sets retained on disk (older ones are pruned).
    pub keep: usize,
}

impl CheckpointConfig {
    pub fn new(dir: impl Into<PathBuf>) -> Self {
        Self { dir: dir.into(), cadence: 10, keep: 2 }
    }

    pub fn with_cadence(mut self, cadence: u64) -> Self {
        assert!(cadence >= 1, "cadence must be at least 1");
        self.cadence = cadence;
        self
    }

    pub fn with_keep(mut self, keep: usize) -> Self {
        assert!(keep >= 1, "must retain at least one checkpoint");
        self.keep = keep;
        self
    }
}

/// Training-thread-side counters, merged with the writer's in
/// [`CheckpointManager::stats`].
#[derive(Clone, Debug, Default)]
pub struct CheckpointStats {
    /// Cadence boundaries reached (coordination rounds run).
    pub cadence_hits: u64,
    /// Checkpoints accepted by the async writer.
    pub snapshots_submitted: u64,
    /// Cadence boundaries skipped: writer busy or cluster disagreed.
    pub skipped: u64,
    /// Training-thread wall-clock spent copying snapshots.
    pub copy_ns: u64,
    /// Restores served through [`CheckpointManager::load_latest`].
    pub restores: u64,
    /// Background writes completed durably.
    pub writes_completed: u64,
    /// Background writes that failed (see writer `last_error`).
    pub writes_failed: u64,
    /// Bytes durably written.
    pub bytes_written: u64,
    /// Background wall-clock spent encoding + writing + fsyncing.
    pub write_ns: u64,
}

pub struct CheckpointManager {
    cfg: CheckpointConfig,
    store: CheckpointStore,
    writer: AsyncCheckpointWriter,
    telemetry: TelemetryHandle,
    last_submitted: Option<u64>,
    cadence_hits: u64,
    skipped: u64,
    copy_ns: u64,
    restores: u64,
}

impl CheckpointManager {
    pub fn new(cfg: CheckpointConfig) -> Result<Self, CkptError> {
        let store = CheckpointStore::new(cfg.dir.clone())?;
        Ok(Self {
            cfg,
            store,
            writer: AsyncCheckpointWriter::new(),
            telemetry: TelemetryHandle::disabled(),
            last_submitted: None,
            cadence_hits: 0,
            skipped: 0,
            copy_ns: 0,
            restores: 0,
        })
    }

    pub fn attach_telemetry(&mut self, handle: TelemetryHandle) {
        self.telemetry = handle;
    }

    pub fn store(&self) -> &CheckpointStore {
        &self.store
    }

    pub fn config(&self) -> &CheckpointConfig {
        &self.cfg
    }

    /// Call after every completed engine iteration. Returns the stamped
    /// iteration when a checkpoint was handed to the background writer,
    /// `Ok(None)` otherwise. Communication errors in the coordination round
    /// propagate — they mean a peer is unreachable, which is the recovery
    /// path's business, not ours.
    pub fn maybe_checkpoint(
        &mut self,
        ctx: &mut RankCtx,
        engine: &MoeLayerEngine,
    ) -> Result<Option<u64>, CommError> {
        let completed = engine.iteration_count();
        if completed == 0 || !completed.is_multiple_of(self.cfg.cadence) {
            return Ok(None);
        }
        if self.last_submitted == Some(completed) {
            return Ok(None);
        }
        self.cadence_hits += 1;
        self.telemetry.counter("ckpt.cadence_hits").inc();

        // Epoch-fenced coordination round: every rank reports how many
        // iterations it has completed; the stamp is the cluster minimum.
        // WirePhase::Control is reserved for out-of-band coordination, so
        // the engine's own (layer, iteration) tag space stays collision-free.
        let group = engine.membership().group();
        ctx.begin_epoch(completed, WirePhase::Control);
        let tag = TagSpace::new(engine.config().layer_id, completed).phase_tag(WirePhase::Control);
        let sends = vec![vec![completed]; group.size()];
        let received = ctx.alltoallv_u64(&group, tag, sends)?;
        let stamp = received.iter().map(|buf| buf[0]).min().unwrap_or(completed);
        if stamp != completed {
            // Some rank hasn't reached this boundary; it will drive its own
            // round when it does. Writing now would stamp an iteration this
            // rank's peers haven't finished — not a consistent cut.
            self.skipped += 1;
            self.telemetry.counter("ckpt.skipped").inc();
            return Ok(None);
        }

        // Training-thread cost: one in-memory copy of the fp32 state.
        let t0 = Instant::now();
        let snap = engine.snapshot();
        let copy_ns = t0.elapsed().as_nanos() as u64;
        self.copy_ns += copy_ns;
        self.telemetry.counter("ckpt.copy_ns").add(copy_ns);

        let engine_cfg = *engine.config();
        let path = self.store.engine_path(completed, snap.logical_rank);
        let keep = self.cfg.keep;
        let world = snap.world_size;
        let prune_store = self.store.clone();
        let accepted = self.writer.try_submit(
            path,
            Box::new(move || format::encode_engine(&engine_cfg, &snap)),
            Some(Box::new(move || {
                let _ = prune_store.prune_engine(keep, world);
            })),
        );
        if accepted {
            self.last_submitted = Some(completed);
            self.telemetry.counter("ckpt.snapshots").inc();
            Ok(Some(completed))
        } else {
            // Writer still busy with the previous checkpoint: skip, don't
            // stall the step. The next cadence boundary tries again.
            self.skipped += 1;
            self.telemetry.counter("ckpt.skipped").inc();
            Ok(None)
        }
    }

    /// Restore entry point: the newest complete, fully-valid set. Rejected
    /// files are reported in the result; see [`CheckpointStore::load_latest_engine`].
    pub fn load_latest(
        &mut self,
        world_size: usize,
        expected: &EngineConfig,
    ) -> Result<LatestEngine, CkptError> {
        let latest = self.store.load_latest_engine(world_size, Some(expected))?;
        if latest.loaded.is_some() {
            self.restores += 1;
            self.telemetry.counter("ckpt.restores").inc();
        }
        latest.rejected.iter().for_each(|_| self.telemetry.counter("ckpt.rejected_files").inc());
        Ok(latest)
    }

    /// Blocks until every accepted checkpoint is durable.
    pub fn flush(&self) {
        self.writer.flush();
    }

    /// Merged training-thread + writer counters. Flush first if you need
    /// `writes_completed` to cover everything submitted.
    pub fn stats(&self) -> CheckpointStats {
        let w = self.writer.stats();
        // Keep the registry counters in sync with the writer's view for
        // scrapes (the writer owns the authoritative values).
        for (name, value) in
            [("ckpt.bytes_written", w.bytes_written), ("ckpt.write_ns", w.write_ns)]
        {
            let counter = self.telemetry.counter(name);
            let delta = value.saturating_sub(counter.get());
            if delta > 0 {
                counter.add(delta);
            }
        }
        CheckpointStats {
            cadence_hits: self.cadence_hits,
            snapshots_submitted: w.submitted,
            skipped: self.skipped,
            copy_ns: self.copy_ns,
            restores: self.restores,
            writes_completed: w.completed,
            writes_failed: w.failed,
            bytes_written: w.bytes_written,
            write_ns: w.write_ns,
        }
    }
}
