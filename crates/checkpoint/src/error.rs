//! Checkpoint error taxonomy.
//!
//! Every variant names the offending *file*, and structural variants name
//! the exact *field* or *section*, so an operator staring at a refused
//! restart knows which artifact is bad and why — a hard requirement of the
//! restart path: corruption is rejected loudly, never silently skipped.

use std::fmt;

#[derive(Debug)]
pub enum CkptError {
    /// An OS-level read/write/rename failure.
    Io { file: String, detail: String },
    /// The file does not start with the `SYMICKPT` magic — not a checkpoint.
    BadMagic { file: String },
    /// A format version this build does not understand.
    UnsupportedVersion { file: String, found: u32, supported: u32 },
    /// An engine loader handed a trainer checkpoint, or vice versa.
    WrongKind { file: String, expected: u32, found: u32 },
    /// A section's stored CRC disagrees with its contents — torn or
    /// bit-flipped on disk.
    CrcMismatch { file: String, section: &'static str },
    /// The file ends in the middle of `field` — an interrupted write that
    /// never reached its atomic rename, or a truncation after the fact.
    Truncated { file: String, field: String },
    /// A field decoded cleanly (CRC-valid) but violates an invariant or
    /// disagrees with the running system's geometry.
    FieldMismatch { file: String, field: String, detail: String },
}

impl fmt::Display for CkptError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CkptError::Io { file, detail } => write!(f, "{file}: io error: {detail}"),
            CkptError::BadMagic { file } => {
                write!(f, "{file}: bad magic — not a SYMI checkpoint")
            }
            CkptError::UnsupportedVersion { file, found, supported } => {
                write!(
                    f,
                    "{file}: unsupported format version {found} (this build reads {supported})"
                )
            }
            CkptError::WrongKind { file, expected, found } => {
                write!(f, "{file}: wrong checkpoint kind {found} (expected {expected})")
            }
            CkptError::CrcMismatch { file, section } => {
                write!(f, "{file}: CRC mismatch in {section} — file is torn or corrupted")
            }
            CkptError::Truncated { file, field } => {
                write!(f, "{file}: truncated while reading field `{field}`")
            }
            CkptError::FieldMismatch { file, field, detail } => {
                write!(f, "{file}: field `{field}` invalid: {detail}")
            }
        }
    }
}

impl std::error::Error for CkptError {}

impl CkptError {
    pub fn io(file: impl Into<String>, err: std::io::Error) -> Self {
        CkptError::Io { file: file.into(), detail: err.to_string() }
    }

    /// The file this error is about.
    pub fn file(&self) -> &str {
        match self {
            CkptError::Io { file, .. }
            | CkptError::BadMagic { file }
            | CkptError::UnsupportedVersion { file, .. }
            | CkptError::WrongKind { file, .. }
            | CkptError::CrcMismatch { file, .. }
            | CkptError::Truncated { file, .. }
            | CkptError::FieldMismatch { file, .. } => file,
        }
    }
}
