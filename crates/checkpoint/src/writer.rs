//! Double-buffered asynchronous checkpoint writer.
//!
//! The training thread pays only for the in-memory snapshot copy; this
//! writer does serialization, `fsync`, and the atomic rename on a
//! background thread. The channel is bounded at one in-flight job — the
//! double buffer: one checkpoint being written while the next is being
//! produced. If the writer is still busy when the next cadence point
//! arrives, [`AsyncCheckpointWriter::try_submit`] refuses and the caller
//! skips that checkpoint (counted, never blocking the step).
//!
//! Dropping the writer flushes and joins, so every accepted job is durable
//! on disk before the owner finishes tearing down — including during panic
//! unwind, which is what makes checkpoints from a rank that subsequently
//! crashed trustworthy.

use std::path::PathBuf;
use std::sync::mpsc::{self, SyncSender, TrySendError};
use std::sync::{Arc, Condvar, Mutex};
use std::thread::JoinHandle;
use std::time::Instant;

use crate::store::write_atomic;

type EncodeFn = Box<dyn FnOnce() -> Vec<u8> + Send>;
type AfterFn = Box<dyn FnOnce() + Send>;

struct Job {
    path: PathBuf,
    encode: EncodeFn,
    /// Runs after a successful write — retention pruning lives here, also
    /// off the training thread.
    after: Option<AfterFn>,
}

/// Cumulative counters, readable at any time via
/// [`AsyncCheckpointWriter::stats`].
#[derive(Clone, Debug, Default)]
pub struct WriterStats {
    pub submitted: u64,
    pub completed: u64,
    pub failed: u64,
    pub bytes_written: u64,
    /// Background wall-clock spent encoding + writing + fsyncing.
    pub write_ns: u64,
    pub last_error: Option<String>,
}

impl WriterStats {
    fn settled(&self) -> bool {
        self.completed + self.failed >= self.submitted
    }
}

struct Shared {
    stats: Mutex<WriterStats>,
    done: Condvar,
    worker_dead: Mutex<bool>,
}

/// Sets `worker_dead` even if the worker loop panics, so a flush waiting on
/// a job the worker will never finish wakes up instead of hanging.
struct WorkerGuard(Arc<Shared>);

impl Drop for WorkerGuard {
    fn drop(&mut self) {
        *self.0.worker_dead.lock().expect("writer poisoned") = true;
        self.0.done.notify_all();
    }
}

pub struct AsyncCheckpointWriter {
    tx: Option<SyncSender<Job>>,
    handle: Option<JoinHandle<()>>,
    shared: Arc<Shared>,
}

impl AsyncCheckpointWriter {
    pub fn new() -> Self {
        let (tx, rx) = mpsc::sync_channel::<Job>(1);
        let shared = Arc::new(Shared {
            stats: Mutex::new(WriterStats::default()),
            done: Condvar::new(),
            worker_dead: Mutex::new(false),
        });
        let worker_shared = shared.clone();
        let handle = std::thread::Builder::new()
            .name("symi-ckpt-writer".into())
            .spawn(move || {
                let _guard = WorkerGuard(worker_shared.clone());
                for job in rx {
                    let t0 = Instant::now();
                    let bytes = (job.encode)();
                    let result = write_atomic(&job.path, &bytes);
                    let elapsed = t0.elapsed().as_nanos() as u64;
                    {
                        let mut stats = worker_shared.stats.lock().expect("writer poisoned");
                        match result {
                            Ok(()) => {
                                stats.completed += 1;
                                stats.bytes_written += bytes.len() as u64;
                            }
                            Err(e) => {
                                stats.failed += 1;
                                stats.last_error = Some(e.to_string());
                            }
                        }
                        stats.write_ns += elapsed;
                    }
                    if let Some(after) = job.after {
                        after();
                    }
                    worker_shared.done.notify_all();
                }
            })
            .expect("spawn checkpoint writer thread");
        Self { tx: Some(tx), handle: Some(handle), shared }
    }

    /// Hands `encode` to the background thread for serialization + durable
    /// write to `path`. Returns `false` (and does nothing) if the previous
    /// checkpoint is still being written — the caller counts a skip.
    pub fn try_submit(&self, path: PathBuf, encode: EncodeFn, after: Option<AfterFn>) -> bool {
        let Some(tx) = &self.tx else { return false };
        // Count the submission before sending: the worker may finish the
        // job before we would otherwise get the lock, and `settled` must
        // never observe completed > submitted.
        {
            let mut stats = self.shared.stats.lock().expect("writer poisoned");
            stats.submitted += 1;
        }
        match tx.try_send(Job { path, encode, after }) {
            Ok(()) => true,
            Err(TrySendError::Full(_)) | Err(TrySendError::Disconnected(_)) => {
                let mut stats = self.shared.stats.lock().expect("writer poisoned");
                stats.submitted -= 1;
                false
            }
        }
    }

    /// Blocks until every accepted job has been written (or failed).
    pub fn flush(&self) {
        let mut stats = self.shared.stats.lock().expect("writer poisoned");
        while !stats.settled() {
            if *self.shared.worker_dead.lock().expect("writer poisoned") {
                return; // worker died; pending jobs will never settle
            }
            let (guard, _) = self
                .shared
                .done
                .wait_timeout(stats, std::time::Duration::from_millis(50))
                .expect("writer poisoned");
            stats = guard;
        }
    }

    pub fn stats(&self) -> WriterStats {
        self.shared.stats.lock().expect("writer poisoned").clone()
    }
}

impl Default for AsyncCheckpointWriter {
    fn default() -> Self {
        Self::new()
    }
}

impl Drop for AsyncCheckpointWriter {
    fn drop(&mut self) {
        self.flush();
        drop(self.tx.take()); // closes the channel; worker loop exits
        if let Some(handle) = self.handle.take() {
            let _ = handle.join();
        }
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    fn temp_dir(tag: &str) -> PathBuf {
        let dir = std::env::temp_dir().join(format!("symi_ckpt_writer_{tag}"));
        let _ = std::fs::remove_dir_all(&dir);
        std::fs::create_dir_all(&dir).unwrap();
        dir
    }

    #[test]
    fn accepted_jobs_are_durable_after_flush() {
        let dir = temp_dir("durable");
        let writer = AsyncCheckpointWriter::new();
        let path = dir.join("a.bin");
        assert!(writer.try_submit(path.clone(), Box::new(|| vec![1, 2, 3]), None));
        writer.flush();
        assert_eq!(std::fs::read(&path).unwrap(), vec![1, 2, 3]);
        let stats = writer.stats();
        assert_eq!(stats.completed, 1);
        assert_eq!(stats.bytes_written, 3);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn drop_flushes_pending_work() {
        let dir = temp_dir("drop");
        let path = dir.join("b.bin");
        {
            let writer = AsyncCheckpointWriter::new();
            assert!(writer.try_submit(path.clone(), Box::new(|| vec![9; 128]), None));
        }
        assert_eq!(std::fs::read(&path).unwrap().len(), 128);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn busy_writer_refuses_rather_than_blocks() {
        let dir = temp_dir("busy");
        let writer = AsyncCheckpointWriter::new();
        let gate = Arc::new((Mutex::new(false), Condvar::new()));
        let gate_w = gate.clone();
        // First job blocks in encode until released.
        assert!(writer.try_submit(
            dir.join("slow.bin"),
            Box::new(move || {
                let (lock, cv) = &*gate_w;
                let mut open = lock.lock().unwrap();
                while !*open {
                    open = cv.wait(open).unwrap();
                }
                vec![0]
            }),
            None,
        ));
        // Fill the 1-deep buffer, then the next submit must refuse.
        let second = writer.try_submit(dir.join("q.bin"), Box::new(|| vec![1]), None);
        let mut refused = false;
        for _ in 0..3 {
            if !writer.try_submit(dir.join("r.bin"), Box::new(|| vec![2]), None) {
                refused = true;
                break;
            }
        }
        assert!(refused || !second, "a stuffed writer must refuse new work");
        {
            let (lock, cv) = &*gate;
            *lock.lock().unwrap() = true;
            cv.notify_all();
        }
        writer.flush();
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn after_hook_runs_post_write() {
        let dir = temp_dir("after");
        let writer = AsyncCheckpointWriter::new();
        let flag = Arc::new(Mutex::new(false));
        let flag_w = flag.clone();
        assert!(writer.try_submit(
            dir.join("c.bin"),
            Box::new(|| vec![7]),
            Some(Box::new(move || *flag_w.lock().unwrap() = true)),
        ));
        writer.flush();
        // flush waits for counter settle which happens before `after`; join
        // via drop to be deterministic.
        drop(writer);
        assert!(*flag.lock().unwrap());
        let _ = std::fs::remove_dir_all(&dir);
    }
}
