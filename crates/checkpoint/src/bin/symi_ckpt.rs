//! `symi-ckpt`: inspect and validate SYMI checkpoint files.
//!
//! ```text
//! symi-ckpt inspect  <file-or-dir>          per-file header summary
//! symi-ckpt validate <dir> [world_size]     full structural validation;
//!                                           exit 0 only if every file is
//!                                           valid AND at least one
//!                                           complete restorable set exists
//! ```
//!
//! `validate` is wired into CI against the checkpoint-restart smoke
//! artifact, so a format regression fails the build, not a 3 a.m. restart.

use std::path::{Path, PathBuf};
use std::process::ExitCode;

use symi_checkpoint::{
    format, inspect, kind_name, parse_engine_file_name, parse_trainer_file_name,
};

fn usage() -> ExitCode {
    eprintln!("usage: symi-ckpt inspect <file-or-dir>");
    eprintln!("       symi-ckpt validate <dir> [world_size]");
    ExitCode::from(2)
}

fn checkpoint_files(dir: &Path) -> Result<Vec<PathBuf>, String> {
    let rd = std::fs::read_dir(dir).map_err(|e| format!("{}: {e}", dir.display()))?;
    let mut files = Vec::new();
    for entry in rd {
        let entry = entry.map_err(|e| format!("{}: {e}", dir.display()))?;
        let name = entry.file_name();
        let Some(name) = name.to_str() else { continue };
        if parse_engine_file_name(name).is_some() || parse_trainer_file_name(name).is_some() {
            files.push(entry.path());
        }
    }
    files.sort();
    Ok(files)
}

fn inspect_one(path: &Path) -> Result<(), String> {
    let file = path.display().to_string();
    let bytes = std::fs::read(path).map_err(|e| format!("{file}: {e}"))?;
    let info = inspect(&file, &bytes).map_err(|e| e.to_string())?;
    let who = match (info.world_size, info.logical_rank) {
        (Some(w), Some(r)) => format!("rank {r}/{w}"),
        _ => "whole model".to_string(),
    };
    println!(
        "{file}: {} v{} iteration {} {who} header {} B payload {} B",
        kind_name(info.kind),
        info.version,
        info.iteration,
        info.header_bytes,
        info.payload_bytes
    );
    Ok(())
}

fn cmd_inspect(target: &Path) -> ExitCode {
    let files = if target.is_dir() {
        match checkpoint_files(target) {
            Ok(f) => f,
            Err(e) => {
                eprintln!("{e}");
                return ExitCode::FAILURE;
            }
        }
    } else {
        vec![target.to_path_buf()]
    };
    if files.is_empty() {
        eprintln!("{}: no checkpoint files", target.display());
        return ExitCode::FAILURE;
    }
    let mut ok = true;
    for path in &files {
        if let Err(e) = inspect_one(path) {
            eprintln!("INVALID {e}");
            ok = false;
        }
    }
    if ok {
        ExitCode::SUCCESS
    } else {
        ExitCode::FAILURE
    }
}

fn cmd_validate(dir: &Path, world_arg: Option<usize>) -> ExitCode {
    let files = match checkpoint_files(dir) {
        Ok(f) => f,
        Err(e) => {
            eprintln!("{e}");
            return ExitCode::FAILURE;
        }
    };
    if files.is_empty() {
        eprintln!("{}: no checkpoint files to validate", dir.display());
        return ExitCode::FAILURE;
    }

    let mut invalid = 0usize;
    let mut trainer_valid = 0usize;
    // (iteration -> valid engine ranks), plus the widest world stamped.
    let mut sets: std::collections::BTreeMap<u64, Vec<usize>> = Default::default();
    let mut stamped_world: Option<usize> = None;
    for path in &files {
        let file = path.display().to_string();
        let decoded = std::fs::read(path)
            .map_err(|e| format!("{file}: {e}"))
            .and_then(|bytes| inspect(&file, &bytes).map_err(|e| e.to_string()));
        match decoded {
            Ok(info) => {
                println!("ok      {file}");
                match (info.world_size, info.logical_rank) {
                    (Some(w), Some(r)) => {
                        sets.entry(info.iteration).or_default().push(r);
                        stamped_world = Some(stamped_world.map_or(w, |p: usize| p.max(w)));
                    }
                    _ => trainer_valid += 1,
                }
            }
            Err(e) => {
                eprintln!("INVALID {e}");
                invalid += 1;
            }
        }
    }

    let world = world_arg.or(stamped_world);
    let complete: Vec<u64> = match world {
        Some(w) => sets
            .iter()
            .filter(|(_, ranks)| {
                let mut sorted = (*ranks).clone();
                sorted.sort_unstable();
                sorted.len() == w && sorted.iter().enumerate().all(|(i, &r)| i == r)
            })
            .map(|(&it, _)| it)
            .collect(),
        None => Vec::new(),
    };

    println!(
        "{} file(s): {} valid, {invalid} invalid; complete engine sets: {complete:?}",
        files.len(),
        files.len() - invalid
    );
    let restorable = !complete.is_empty() || (sets.is_empty() && trainer_valid > 0);
    if invalid == 0 && restorable {
        ExitCode::SUCCESS
    } else {
        if !restorable {
            eprintln!("no complete restorable checkpoint set in {}", dir.display());
        }
        ExitCode::FAILURE
    }
}

fn main() -> ExitCode {
    let args: Vec<String> = std::env::args().collect();
    match args.get(1).map(String::as_str) {
        Some("inspect") => {
            let Some(target) = args.get(2) else { return usage() };
            cmd_inspect(Path::new(target))
        }
        Some("validate") => {
            let Some(dir) = args.get(2) else { return usage() };
            let world = match args.get(3) {
                None => None,
                Some(w) => match w.parse::<usize>() {
                    Ok(n) if n >= 1 => Some(n),
                    _ => return usage(),
                },
            };
            cmd_validate(Path::new(dir), world)
        }
        Some("--version") => {
            println!("symi-ckpt format v{}", format::FORMAT_VERSION);
            ExitCode::SUCCESS
        }
        _ => usage(),
    }
}
