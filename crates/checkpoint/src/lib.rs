//! `symi-checkpoint`: async consistent snapshots and bit-exact restart.
//!
//! SYMI's state decoupling (PAPER §3) makes checkpointing cheap: the fp32
//! masters + Adam moments are uniformly sharded 1/N per rank and *stay put*
//! across placement changes, while the fp16 replica weights rematerialize
//! bit-exactly from the masters via `materialize_slots`. A consistent
//! cluster checkpoint is therefore just each rank's [`symi::EngineSnapshot`]
//! — shards, placement counts, popularity, iteration stamp — with no
//! cross-rank weight gathering and no fp16 payload at all.
//!
//! The subsystem in five pieces:
//!
//! - [`format`]: versioned, CRC-checked, length-validated on-disk container
//!   (engine kind 1, whole-model trainer kind 2). Every decode failure
//!   names the file and the exact field.
//! - [`store`]: one checkpoint directory — atomic tmp/fsync/rename writes,
//!   per-iteration completeness over `world_size` rank files, newest-valid
//!   restore with loud fallback past torn or corrupted sets, retention.
//! - [`writer`]: double-buffered background writer; the training thread
//!   pays only for the snapshot copy.
//! - [`manager`]: cadence + epoch-fenced coordination round on
//!   [`symi_collectives::WirePhase::Control`] so every rank stamps the same
//!   completed iteration; `ckpt.*` telemetry.
//! - `symi-ckpt` (binary): `inspect` and `validate` for operators and CI.
//!
//! Restart contract, proven in `tests/checkpoint_restart.rs`: kill the
//! whole cluster mid-iteration, reload the latest complete set, resume via
//! `MoeLayerEngine::from_snapshot` + `materialize_slots`, and the losses
//! from the resume point match an uninterrupted same-seed oracle `==`
//! bit-for-bit.

pub mod crc32;
pub mod error;
pub mod format;
pub mod manager;
pub mod store;
pub mod writer;

pub use crc32::crc32;
pub use error::CkptError;
pub use format::{
    decode_container, decode_engine, decode_trainer, encode_engine, encode_trainer,
    expert_param_count, inspect, kind_name, EngineFile, InspectInfo, RawCheckpoint, FORMAT_VERSION,
    KIND_ENGINE, KIND_TRAINER, MAGIC,
};
pub use manager::{CheckpointConfig, CheckpointManager, CheckpointStats};
pub use store::{
    engine_file_name, parse_engine_file_name, parse_trainer_file_name, trainer_file_name,
    write_atomic, CheckpointStore, LatestEngine, LatestTrainer,
};
pub use writer::{AsyncCheckpointWriter, WriterStats};
