//! Whole-model trainer checkpoints through the disk format: save mid-run
//! via [`CheckpointStore::write_trainer`], restore into a *fresh* trainer,
//! and the resumed losses equal the uninterrupted run bit for bit. Also
//! pins the loud-rejection behaviour for a damaged trainer file.

use symi::SymiPolicy;
use symi_checkpoint::CheckpointStore;
use symi_model::{ModelConfig, Trainer};
use symi_workload::{CorpusConfig, DriftingCorpus};

const BEFORE: usize = 3;
const AFTER: usize = 3;

fn corpus(cfg: &ModelConfig, seed: u64) -> DriftingCorpus {
    DriftingCorpus::new(CorpusConfig {
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        batch_size: cfg.batch_size,
        topics: 4,
        seed,
        ..CorpusConfig::default()
    })
}

fn temp_dir(tag: &str) -> std::path::PathBuf {
    let dir = std::env::temp_dir().join(format!("symi_trainer_ckpt_{tag}"));
    let _ = std::fs::remove_dir_all(&dir);
    dir
}

#[test]
fn trainer_restored_from_disk_resumes_bit_exact() {
    let dir = temp_dir("roundtrip");
    let cfg = ModelConfig::tiny();

    // Train BEFORE steps, checkpoint to disk, then finish the run — the
    // post-checkpoint losses are the oracle.
    let mut trainer = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    let mut c = corpus(&cfg, 11);
    for _ in 0..BEFORE {
        let batch = c.next_batch();
        trainer.step(&batch);
    }
    let store = CheckpointStore::new(&dir).unwrap();
    let ckpt = trainer.checkpoint();
    assert_eq!(ckpt.iteration, BEFORE as u64);
    let bytes = store.write_trainer(&cfg, &ckpt).unwrap();
    assert!(bytes > 0);
    let mut oracle = Vec::with_capacity(AFTER);
    for _ in 0..AFTER {
        let batch = c.next_batch();
        oracle.push(trainer.step(&batch).ce_loss);
    }

    // Cold restart: fresh process stand-in — new trainer, corpus replayed
    // past the consumed batches, state loaded purely from the file.
    let mut resumed = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    let mut c2 = corpus(&cfg, 11);
    for _ in 0..BEFORE {
        c2.next_batch();
    }
    let latest = store.load_latest_trainer(Some(&cfg)).unwrap();
    assert!(latest.rejected.is_empty());
    let loaded = latest.loaded.expect("trainer checkpoint restores");
    assert_eq!(loaded.iteration, BEFORE as u64);
    resumed.restore(loaded);
    assert_eq!(resumed.iteration_count(), BEFORE as u64);

    let replay: Vec<f32> = (0..AFTER).map(|_| resumed.step(&c2.next_batch()).ce_loss).collect();
    assert_eq!(
        replay.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        oracle.iter().map(|l| l.to_bits()).collect::<Vec<_>>(),
        "resumed trainer must replay the oracle losses bit-for-bit: {replay:?} vs {oracle:?}"
    );
    let _ = std::fs::remove_dir_all(&dir);
}

#[test]
fn damaged_trainer_file_is_rejected_with_file_and_section() {
    let dir = temp_dir("damaged");
    let cfg = ModelConfig::tiny();
    let mut trainer = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    let mut c = corpus(&cfg, 13);
    let batch = c.next_batch();
    trainer.step(&batch);
    let store = CheckpointStore::new(&dir).unwrap();
    store.write_trainer(&cfg, &trainer.checkpoint()).unwrap();

    let path = store.trainer_path(1);
    let mut bytes = std::fs::read(&path).unwrap();
    let mid = bytes.len() / 2;
    bytes[mid] ^= 0xFF;
    std::fs::write(&path, &bytes).unwrap();

    let latest = store.load_latest_trainer(Some(&cfg)).unwrap();
    assert!(latest.loaded.is_none(), "a corrupt lone checkpoint must not restore");
    assert_eq!(latest.rejected.len(), 1);
    assert!(
        latest.rejected[0].contains("trainer-it0000000001.bin")
            && latest.rejected[0].contains("CRC"),
        "rejection names the file and the failure: {}",
        latest.rejected[0]
    );
    let _ = std::fs::remove_dir_all(&dir);
}
