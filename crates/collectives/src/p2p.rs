//! Batched point-to-point transfers — the `batch_isend_irecv` primitive the
//! SYMI optimizer uses for its Grad Communication Phase (gradient shards →
//! optimizer partitions, §4.3) and Weight Communication Phase (updated
//! weight shards → expert slots under the *new* placement, §4.4).
//!
//! All sends are issued before any receive is blocked on, so an arbitrary
//! bipartite transfer schedule completes without deadlock as long as the
//! global send/recv sets match.
//!
//! Receives carry an optional expected element count: a payload of the
//! wrong length is rejected at the wire with a typed
//! [`CommError::LengthMismatch`] naming the decoded tag, instead of being
//! handed to the optimizer as silently corrupt data.
//!
//! Under a `RankCtx::set_retry_policy` + `set_recv_timeout` pair, a
//! starved receive in the batch retries with exponential backoff and, on
//! exhaustion, escalates to [`CommError::Protocol`] carrying the decoded
//! tag/iteration/phase of the missing transfer — the diagnosis path the
//! chaos harness leans on. A `LengthMismatch` is never retried: the data
//! *arrived*, it is simply wrong, and waiting longer cannot fix that.

use crate::ctx::{PendingRecv, RankCtx};
use crate::error::CommError;
use crate::payload::Payload;
use std::time::Instant;

/// One outbound transfer in a batch.
#[derive(Debug, Clone)]
pub struct SendOp {
    pub to: usize,
    pub tag: u64,
    pub data: Payload,
}

impl SendOp {
    pub fn new(to: usize, tag: u64, data: impl Into<Payload>) -> Self {
        Self { to, tag, data: data.into() }
    }
}

/// One inbound transfer in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvOp {
    pub from: usize,
    pub tag: u64,
    /// Expected element count; `None` accepts any length.
    pub expect: Option<usize>,
}

impl RecvOp {
    /// Receive accepting any payload length.
    pub fn new(from: usize, tag: u64) -> Self {
        Self { from, tag, expect: None }
    }

    /// Receive validating the payload's element count at the wire.
    pub fn sized(from: usize, tag: u64, elements: usize) -> Self {
        Self { from, tag, expect: Some(elements) }
    }
}

/// Where a batch's received bytes completed relative to the caller's
/// compute: `hidden` bytes had already arrived when the completing call
/// looked (their latency was covered by work done since the issue half),
/// `exposed` bytes had to be blocked on, for `exposed_ns` of wall-clock.
/// This is the accounting the overlap telemetry reports per iteration.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct OverlapStats {
    pub hidden_bytes: u64,
    pub exposed_bytes: u64,
    pub exposed_ns: u64,
}

impl OverlapStats {
    pub fn absorb(&mut self, other: OverlapStats) {
        self.hidden_bytes += other.hidden_bytes;
        self.exposed_bytes += other.exposed_bytes;
        self.exposed_ns += other.exposed_ns;
    }

    /// Fraction of received bytes that were exposed (blocked on); 0 for an
    /// empty batch.
    pub fn exposed_fraction(&self) -> f64 {
        let total = self.hidden_bytes + self.exposed_bytes;
        if total == 0 {
            0.0
        } else {
            self.exposed_bytes as f64 / total as f64
        }
    }
}

/// One receive slot of a [`PendingBatch`].
enum BatchSlot {
    Pending(PendingRecv),
    Ready(Payload),
}

/// The in-flight half of a split `batch_isend_irecv`: every send issued,
/// every receive posted, none yet required. `poll` makes progress without
/// blocking; `complete` waits out the remainder and returns the payloads
/// in the original receive order.
///
/// Slots are always polled in posting order, so two receives on the same
/// `(from, tag)` stream pair with arrivals in exactly the FIFO order the
/// blocking batch would have used — completion order cannot re-pair
/// messages, which is what keeps any poll/wait interleaving bit-exact.
pub struct PendingBatch {
    slots: Vec<BatchSlot>,
}

impl PendingBatch {
    /// Nonblocking progress over every incomplete slot (in posting order).
    /// Returns `true` once the whole batch is complete.
    pub fn poll(&mut self, ctx: &mut RankCtx) -> Result<bool, CommError> {
        let mut all = true;
        for slot in &mut self.slots {
            let arrived = match slot {
                BatchSlot::Ready(_) => continue,
                BatchSlot::Pending(op) => op.poll(ctx)?,
            };
            if !arrived {
                all = false;
                continue;
            }
            // The payload is parked in the mailbox; this wait cannot block.
            let placeholder = BatchSlot::Ready(Payload::from(Vec::<f32>::new()));
            match std::mem::replace(slot, placeholder) {
                BatchSlot::Pending(op) => *slot = BatchSlot::Ready(op.wait(ctx)?),
                BatchSlot::Ready(_) => unreachable!("matched Pending above"),
            }
        }
        Ok(all)
    }

    /// Whether every slot has completed (no progress attempted).
    pub fn is_complete(&self) -> bool {
        self.slots.iter().all(|s| matches!(s, BatchSlot::Ready(_)))
    }

    /// Outstanding (not yet completed) receive slots.
    pub fn outstanding(&self) -> usize {
        self.slots.iter().filter(|s| matches!(s, BatchSlot::Pending(_))).count()
    }

    /// Blocks out the remainder of the batch, returning the payloads in
    /// receive order plus the hidden/exposed byte accounting: payloads that
    /// were already in (or one nonblocking probe away from) the mailbox
    /// count as hidden, payloads this call had to block for count as
    /// exposed with their measured wait.
    pub fn complete(self, ctx: &mut RankCtx) -> Result<(Vec<Payload>, OverlapStats), CommError> {
        let mut out = Vec::with_capacity(self.slots.len());
        let mut stats = OverlapStats::default();
        for slot in self.slots {
            let payload = match slot {
                BatchSlot::Ready(payload) => {
                    stats.hidden_bytes += payload.byte_len();
                    payload
                }
                BatchSlot::Pending(op) => {
                    if op.poll(ctx)? {
                        let payload = op.wait(ctx)?;
                        stats.hidden_bytes += payload.byte_len();
                        payload
                    } else {
                        let start = Instant::now();
                        let payload = op.wait(ctx)?;
                        stats.exposed_ns += start.elapsed().as_nanos() as u64;
                        stats.exposed_bytes += payload.byte_len();
                        payload
                    }
                }
            };
            out.push(payload);
        }
        Ok((out, stats))
    }

    /// Abandons every incomplete slot (recovery cleanup); completed
    /// payloads are dropped.
    pub fn cancel(self, ctx: &mut RankCtx) {
        for slot in self.slots {
            if let BatchSlot::Pending(op) = slot {
                op.cancel(ctx);
            }
        }
    }
}

impl RankCtx {
    /// The issue half of [`RankCtx::batch_isend_irecv`]: performs every
    /// send and posts every receive, returning immediately with the
    /// in-flight batch. Compute run between this call and
    /// [`PendingBatch::complete`] hides the transfer latency.
    pub fn batch_issue(
        &mut self,
        sends: Vec<SendOp>,
        recvs: &[RecvOp],
    ) -> Result<PendingBatch, CommError> {
        for op in sends {
            self.send(op.to, op.tag, op.data)?;
        }
        let slots = recvs
            .iter()
            .map(|op| {
                BatchSlot::Pending(match op.expect {
                    Some(n) => self.irecv_sized(op.from, op.tag, n),
                    None => self.irecv(op.from, op.tag),
                })
            })
            .collect();
        Ok(PendingBatch { slots })
    }

    /// Issues every send, then completes every receive, returning the
    /// received payloads in the order of `recvs`.
    ///
    /// Implemented as [`RankCtx::batch_issue`] + [`PendingBatch::complete`]
    /// with the overlap accounting discarded — the blocking path and the
    /// overlapped path are the same code, which is half of the
    /// bit-exactness argument.
    ///
    /// Self-transfers (send to own rank) are legal and are delivered through
    /// the local mailbox without touching any link counter.
    pub fn batch_isend_irecv(
        &mut self,
        sends: Vec<SendOp>,
        recvs: &[RecvOp],
    ) -> Result<Vec<Payload>, CommError> {
        let batch = self.batch_issue(sends, recvs)?;
        Ok(batch.complete(self)?.0)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec};

    #[test]
    fn ring_exchange_via_batch() {
        let n = 4;
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let me = ctx.rank();
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let sends = vec![SendOp::new(next, 1, vec![me as f32])];
            let recvs = [RecvOp::sized(prev, 1, 1)];
            ctx.batch_isend_irecv(sends, &recvs).unwrap()[0].clone().into_f32().unwrap()[0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn many_to_one_fan_in() {
        let n = 5;
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let me = ctx.rank();
            if me == 0 {
                let recvs: Vec<RecvOp> = (1..n).map(|r| RecvOp::new(r, r as u64)).collect();
                let got = ctx.batch_isend_irecv(vec![], &recvs).unwrap();
                got.into_iter().map(|b| b.into_f32().unwrap()[0]).sum::<f32>()
            } else {
                let sends = vec![SendOp::new(0, me as u64, vec![me as f32])];
                ctx.batch_isend_irecv(sends, &[]).unwrap();
                0.0
            }
        });
        assert_eq!(results[0], 10.0);
    }

    #[test]
    fn self_transfer_in_batch() {
        let (results, report) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            let me = ctx.rank();
            let sends = vec![SendOp::new(me, 9, vec![me as f32 + 0.5])];
            let recvs = [RecvOp::sized(me, 9, 1)];
            ctx.batch_isend_irecv(sends, &recvs).unwrap()[0].clone().into_f32().unwrap()[0]
        });
        assert_eq!(results, vec![0.5, 1.5]);
        assert_eq!(report.total_bytes(), 0, "self transfers are free");
    }

    #[test]
    fn crossing_transfers_complete() {
        // Both ranks send to each other simultaneously — must not deadlock.
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            let other = 1 - ctx.rank();
            let sends = vec![SendOp::new(other, 2, vec![ctx.rank() as f32; 1000])];
            let recvs = [RecvOp::sized(other, 2, 1000)];
            ctx.batch_isend_irecv(sends, &recvs).unwrap()[0].clone().into_f32().unwrap()[0]
        });
        assert_eq!(results, vec![1.0, 0.0]);
    }

    #[test]
    fn wrong_length_is_rejected_at_the_wire() {
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.batch_isend_irecv(vec![SendOp::new(1, 4, vec![1.0f32; 3])], &[]).unwrap();
                None
            } else {
                Some(ctx.batch_isend_irecv(vec![], &[RecvOp::sized(0, 4, 8)]).unwrap_err())
            }
        });
        match results[1].as_ref().unwrap() {
            CommError::LengthMismatch { from, expected, got, .. } => {
                assert_eq!((*from, *expected, *got), (0, 8, 3));
            }
            other => panic!("expected LengthMismatch, got {other:?}"),
        }
    }

    #[test]
    fn starved_sized_recv_escalates_to_protocol_error_under_retry() {
        use crate::ctx::RetryPolicy;
        use crate::tag::{TagSpace, WirePhase};
        use std::time::Duration;

        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                return None; // never sends: rank 1's receive starves
            }
            ctx.set_recv_timeout(Some(Duration::from_millis(10)));
            ctx.set_retry_policy(Some(RetryPolicy::new(2, 2.0)));
            let tag = TagSpace::new(0, 3).tag(WirePhase::GradCollect, 1, 0);
            Some(ctx.batch_isend_irecv(vec![], &[RecvOp::sized(0, tag, 8)]).unwrap_err())
        });
        match results[1].as_ref().unwrap() {
            CommError::Protocol(fail) => {
                assert_eq!(fail.retries, 2, "both retries spent before escalation");
                assert_eq!(fail.iteration, Some(3));
                assert_eq!(fail.phase.as_deref(), Some("GradCollect"));
                assert_eq!((fail.rank, fail.from), (1, 0));
                // Measured wall clock across attempts: 10 + 20 + 40 ms.
                assert!(fail.waited_ms >= 60, "measured {} ms", fail.waited_ms);
            }
            other => panic!("expected Protocol escalation, got {other:?}"),
        }
        assert!(results[0].is_none());
    }

    #[test]
    fn f16_payloads_travel_at_half_width() {
        let (results, report) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                let half: Vec<u16> = vec![0x3c00; 100]; // fp16 1.0
                ctx.batch_isend_irecv(vec![SendOp::new(1, 6, half)], &[]).unwrap();
                0
            } else {
                let got = ctx.batch_isend_irecv(vec![], &[RecvOp::sized(0, 6, 100)]).unwrap();
                got[0].clone().into_f16().unwrap().len()
            }
        });
        assert_eq!(results[1], 100);
        assert_eq!(report.inter_node_bytes, 200, "2 B per fp16 element");
    }
}
