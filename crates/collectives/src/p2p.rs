//! Batched point-to-point transfers — the `batch_isend_irecv` primitive the
//! SYMI optimizer uses for its Grad Communication Phase (gradient shards →
//! optimizer partitions, §4.3) and Weight Communication Phase (updated
//! weight shards → expert slots under the *new* placement, §4.4).
//!
//! All sends are issued before any receive is blocked on, so an arbitrary
//! bipartite transfer schedule completes without deadlock as long as the
//! global send/recv sets match.

use crate::ctx::RankCtx;
use crate::error::CommError;

/// One outbound transfer in a batch.
#[derive(Debug, Clone)]
pub struct SendOp {
    pub to: usize,
    pub tag: u64,
    pub data: Vec<f32>,
}

/// One inbound transfer in a batch.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct RecvOp {
    pub from: usize,
    pub tag: u64,
}

impl RankCtx {
    /// Issues every send, then completes every receive, returning the
    /// received buffers in the order of `recvs`.
    ///
    /// Self-transfers (send to own rank) are legal and are delivered through
    /// the local mailbox without touching any link counter.
    pub fn batch_isend_irecv(
        &mut self,
        sends: Vec<SendOp>,
        recvs: &[RecvOp],
    ) -> Result<Vec<Vec<f32>>, CommError> {
        for op in sends {
            self.send(op.to, op.tag, op.data)?;
        }
        let mut out = Vec::with_capacity(recvs.len());
        for op in recvs {
            out.push(self.recv_f32(op.from, op.tag)?);
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec};

    #[test]
    fn ring_exchange_via_batch() {
        let n = 4;
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let me = ctx.rank();
            let next = (me + 1) % n;
            let prev = (me + n - 1) % n;
            let sends = vec![SendOp { to: next, tag: 1, data: vec![me as f32] }];
            let recvs = [RecvOp { from: prev, tag: 1 }];
            ctx.batch_isend_irecv(sends, &recvs).unwrap()[0][0]
        });
        assert_eq!(results, vec![3.0, 0.0, 1.0, 2.0]);
    }

    #[test]
    fn many_to_one_fan_in() {
        let n = 5;
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let me = ctx.rank();
            if me == 0 {
                let recvs: Vec<RecvOp> =
                    (1..n).map(|r| RecvOp { from: r, tag: r as u64 }).collect();
                let got = ctx.batch_isend_irecv(vec![], &recvs).unwrap();
                got.iter().map(|b| b[0]).sum::<f32>()
            } else {
                let sends = vec![SendOp { to: 0, tag: me as u64, data: vec![me as f32] }];
                ctx.batch_isend_irecv(sends, &[]).unwrap();
                0.0
            }
        });
        assert_eq!(results[0], 10.0);
    }

    #[test]
    fn self_transfer_in_batch() {
        let (results, report) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            let me = ctx.rank();
            let sends = vec![SendOp { to: me, tag: 9, data: vec![me as f32 + 0.5] }];
            let recvs = [RecvOp { from: me, tag: 9 }];
            ctx.batch_isend_irecv(sends, &recvs).unwrap()[0][0]
        });
        assert_eq!(results, vec![0.5, 1.5]);
        assert_eq!(report.total_bytes(), 0, "self transfers are free");
    }

    #[test]
    fn crossing_transfers_complete() {
        // Both ranks send to each other simultaneously — must not deadlock.
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            let other = 1 - ctx.rank();
            let sends = vec![SendOp { to: other, tag: 2, data: vec![ctx.rank() as f32; 1000] }];
            let recvs = [RecvOp { from: other, tag: 2 }];
            ctx.batch_isend_irecv(sends, &recvs).unwrap()[0][0]
        });
        assert_eq!(results, vec![1.0, 0.0]);
    }
}
