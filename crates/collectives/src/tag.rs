//! Structured wire tags: the non-overlapping bit-field encoding that
//! replaces the ad-hoc XOR tag mixes of the first-generation engine.
//!
//! The old scheme (`tag(phase) = layer<<56 ^ iter<<32 ^ phase<<28`, then
//! `^ class<<20` or `^ slot<<24 ^ src<<8` per message) had silently
//! overlapping fields: `tag(8) ^ tag(9) == 1 << 28`, so the gradient of
//! (class 0, phase 8) aliased the weight shard of (slot 16, src 0,
//! phase 9) exactly — identical-length payloads swapped with no error at
//! any config with ≥ 16 slots. Classes ≥ 256, slots ≥ 16 and iterations
//! ≥ 2²⁴ likewise bled into neighboring fields.
//!
//! Here every component owns exclusive bits of the 64-bit tag:
//!
//! | bits   | width | field     | meaning                                   |
//! |--------|-------|-----------|-------------------------------------------|
//! | 63     | 1     | marker    | 1 = structured; raw legacy tags keep it 0 |
//! | 62..57 | 6     | layer     | transformer layer id                      |
//! | 56..39 | 18    | iteration | training iteration (wraps at 2¹⁸)         |
//! | 38..34 | 5     | phase     | [`WirePhase`] discriminant                |
//! | 33..20 | 14    | entity    | class / slot / token-group id             |
//! | 19..12 | 8     | src       | sending rank (0 when unused)              |
//! | 11..10 | 2     | subop     | sub-collective within one phase           |
//! | 9..0   | 10    | step      | ring step + 1 (0 = no step)               |
//!
//! Field widths are debug-asserted at encode time, so an overflowing
//! class/slot/rank panics in tests instead of corrupting a neighbor field.
//! Iteration wraps modulo 2¹⁸ by design: the popularity all-reduce bounds
//! inter-rank skew to a single iteration, so a 2¹⁸-iteration ambiguity
//! window can never be confused in flight.
//!
//! Raw tags (bit 63 clear) remain first-class citizens — hand-written
//! tests and the legacy regression fixtures use them — but they opt out of
//! structured decoding and rely on the mailbox's rank-local epoch for
//! fencing (see `RankCtx::begin_epoch`).

use std::fmt;

/// Marker bit distinguishing structured tags from raw legacy tags.
pub const STRUCTURED: u64 = 1 << 63;

const LAYER_BITS: u32 = 6;
const ITER_BITS: u32 = 18;
const PHASE_BITS: u32 = 5;
const ENTITY_BITS: u32 = 14;
const SRC_BITS: u32 = 8;
const SUBOP_BITS: u32 = 2;
const STEP_BITS: u32 = 10;

const STEP_SHIFT: u32 = 0;
const SUBOP_SHIFT: u32 = STEP_SHIFT + STEP_BITS;
const SRC_SHIFT: u32 = SUBOP_SHIFT + SUBOP_BITS;
const ENTITY_SHIFT: u32 = SRC_SHIFT + SRC_BITS;
const PHASE_SHIFT: u32 = ENTITY_SHIFT + ENTITY_BITS;
const ITER_SHIFT: u32 = PHASE_SHIFT + PHASE_BITS;
const LAYER_SHIFT: u32 = ITER_SHIFT + ITER_BITS;

const fn mask(bits: u32) -> u64 {
    (1 << bits) - 1
}

/// Communication phases of one engine iteration, in wire order. The
/// discriminant is both the tag's phase field and the phase component of
/// the fencing epoch, so later phases compare greater within an iteration.
#[derive(Clone, Copy, Debug, PartialEq, Eq, PartialOrd, Ord)]
#[repr(u8)]
pub enum WirePhase {
    /// Out-of-band control traffic (checkpoints, probes).
    Control = 0,
    /// Per-class popularity all-reduce (§3.4).
    PopularitySync = 1,
    /// Token rows dispatched to expert slots (all-to-all).
    DispatchRows = 2,
    /// Slot-id metadata accompanying the dispatch.
    DispatchMeta = 3,
    /// Expert outputs returned to token owners.
    CombineReturn = 4,
    /// Global loss accumulation.
    LossSync = 5,
    /// Upstream gradients returned to expert slots.
    GradReturn = 6,
    /// Replica gradient all-reduce (§4.1).
    GradSync = 7,
    /// Gradient shards → static optimizer shards (Algorithm 2).
    GradCollect = 8,
    /// Updated fp16 weight shards → slots of the new placement (§3.3-II).
    WeightDistribute = 9,
    /// End-of-iteration statistics aggregation.
    StatsSync = 10,
}

impl WirePhase {
    /// All phases, in wire order.
    pub const ALL: [WirePhase; 11] = [
        WirePhase::Control,
        WirePhase::PopularitySync,
        WirePhase::DispatchRows,
        WirePhase::DispatchMeta,
        WirePhase::CombineReturn,
        WirePhase::LossSync,
        WirePhase::GradReturn,
        WirePhase::GradSync,
        WirePhase::GradCollect,
        WirePhase::WeightDistribute,
        WirePhase::StatsSync,
    ];

    /// Decodes a phase-field value.
    pub fn from_bits(bits: u8) -> Option<WirePhase> {
        WirePhase::ALL.get(bits as usize).copied()
    }
}

impl fmt::Display for WirePhase {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(f, "{self:?}")
    }
}

/// Per-(layer, iteration) tag factory. Construct one at the top of an
/// engine iteration and derive every phase's tags from it.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagSpace {
    layer: u64,
    iteration: u64,
}

impl TagSpace {
    /// `layer` must fit the 6-bit layer field; `iteration` wraps at 2¹⁸.
    pub fn new(layer: usize, iteration: u64) -> Self {
        debug_assert!(
            (layer as u64) <= mask(LAYER_BITS),
            "layer {layer} overflows the {LAYER_BITS}-bit layer field"
        );
        Self { layer: layer as u64 & mask(LAYER_BITS), iteration: iteration & mask(ITER_BITS) }
    }

    pub fn layer(&self) -> usize {
        self.layer as usize
    }

    /// The (wrapped) iteration this tag space encodes.
    pub fn iteration(&self) -> u64 {
        self.iteration
    }

    /// Full structured tag for `(phase, entity, src)`. `entity` is the
    /// phase's natural addressing unit (expert class, global slot, …);
    /// `src` the sending rank when receivers must distinguish senders.
    pub fn tag(&self, phase: WirePhase, entity: usize, src: usize) -> u64 {
        debug_assert!(
            (entity as u64) <= mask(ENTITY_BITS),
            "entity {entity} overflows the {ENTITY_BITS}-bit entity field"
        );
        debug_assert!(
            (src as u64) <= mask(SRC_BITS),
            "src rank {src} overflows the {SRC_BITS}-bit src field"
        );
        STRUCTURED
            | (self.layer << LAYER_SHIFT)
            | (self.iteration << ITER_SHIFT)
            | ((phase as u64) << PHASE_SHIFT)
            | (((entity as u64) & mask(ENTITY_BITS)) << ENTITY_SHIFT)
            | (((src as u64) & mask(SRC_BITS)) << SRC_SHIFT)
    }

    /// Tag for a phase-wide collective (no entity/src distinction).
    pub fn phase_tag(&self, phase: WirePhase) -> u64 {
        self.tag(phase, 0, 0)
    }

    /// The fencing epoch of `phase` in this tag space — monotone across
    /// (iteration, phase) in wire order.
    pub fn epoch(&self, phase: WirePhase) -> u64 {
        (self.iteration << PHASE_BITS) | phase as u64
    }
}

/// The decoded fields of a structured tag.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct TagFields {
    pub layer: u64,
    pub iteration: u64,
    /// Raw phase-field bits; [`TagFields::phase`] maps to [`WirePhase`].
    pub phase_bits: u8,
    pub entity: u64,
    pub src: u64,
    pub subop: u8,
    /// Ring step, when the tag addresses one hop of a collective.
    pub step: Option<u64>,
}

impl TagFields {
    pub fn phase(&self) -> Option<WirePhase> {
        WirePhase::from_bits(self.phase_bits)
    }

    /// The fencing epoch this tag belongs to: `(iteration, phase)` packed
    /// so that wire order is numeric order.
    pub fn epoch_key(&self) -> u64 {
        (self.iteration << PHASE_BITS) | self.phase_bits as u64
    }
}

impl fmt::Display for TagFields {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self.phase() {
            Some(p) => write!(f, "L{}/it{}/{p}", self.layer, self.iteration)?,
            None => write!(f, "L{}/it{}/phase#{}", self.layer, self.iteration, self.phase_bits)?,
        }
        write!(f, "/e{}/src{}", self.entity, self.src)?;
        if self.subop != 0 {
            write!(f, "/sub{}", self.subop)?;
        }
        if let Some(s) = self.step {
            write!(f, "/step{s}")?;
        }
        Ok(())
    }
}

/// Returns true when `tag` carries the structured marker bit.
pub fn is_structured(tag: u64) -> bool {
    tag & STRUCTURED != 0
}

/// Decodes a structured tag into its fields; `None` for raw tags.
pub fn decode(tag: u64) -> Option<TagFields> {
    if !is_structured(tag) {
        return None;
    }
    let step_raw = (tag >> STEP_SHIFT) & mask(STEP_BITS);
    Some(TagFields {
        layer: (tag >> LAYER_SHIFT) & mask(LAYER_BITS),
        iteration: (tag >> ITER_SHIFT) & mask(ITER_BITS),
        phase_bits: ((tag >> PHASE_SHIFT) & mask(PHASE_BITS)) as u8,
        entity: (tag >> ENTITY_SHIFT) & mask(ENTITY_BITS),
        src: (tag >> SRC_SHIFT) & mask(SRC_BITS),
        subop: ((tag >> SUBOP_SHIFT) & mask(SUBOP_BITS)) as u8,
        step: step_raw.checked_sub(1),
    })
}

/// The fencing epoch a structured tag belongs to; `None` for raw tags.
pub fn epoch_of(tag: u64) -> Option<u64> {
    decode(tag).map(|f| f.epoch_key())
}

/// Rewrites the step field of a structured tag (stores `step + 1`;
/// `step` must fit the 10-bit field less the reserved zero).
pub fn with_step(tag: u64, step: u64) -> u64 {
    debug_assert!(is_structured(tag), "with_step is only defined on structured tags");
    debug_assert!(step < mask(STEP_BITS), "ring step {step} overflows the step field");
    (tag & !(mask(STEP_BITS) << STEP_SHIFT)) | (((step + 1) & mask(STEP_BITS)) << STEP_SHIFT)
}

/// Rewrites the subop field of a structured tag — distinguishes nested
/// sub-collectives (e.g. the all-gather half of an all-reduce, or the
/// ownership-rotate hop of a reduce-scatter) sharing one base tag.
pub fn with_subop(tag: u64, subop: u8) -> u64 {
    debug_assert!(is_structured(tag), "with_subop is only defined on structured tags");
    debug_assert!((subop as u64) <= mask(SUBOP_BITS), "subop {subop} overflows the subop field");
    (tag & !(mask(SUBOP_BITS) << SUBOP_SHIFT))
        | (((subop as u64) & mask(SUBOP_BITS)) << SUBOP_SHIFT)
}

/// Human-readable tag description for diagnostics (timeout stash dumps).
pub fn describe(tag: u64) -> String {
    match decode(tag) {
        Some(fields) => format!("[{fields}]"),
        None => format!("[raw:{tag:#x}]"),
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn round_trips_every_field() {
        let ts = TagSpace::new(5, 1234);
        let t = with_step(with_subop(ts.tag(WirePhase::GradCollect, 301, 17), 2), 9);
        let f = decode(t).expect("structured");
        assert_eq!(f.layer, 5);
        assert_eq!(f.iteration, 1234);
        assert_eq!(f.phase(), Some(WirePhase::GradCollect));
        assert_eq!(f.entity, 301);
        assert_eq!(f.src, 17);
        assert_eq!(f.subop, 2);
        assert_eq!(f.step, Some(9));
    }

    #[test]
    fn raw_tags_do_not_decode() {
        assert_eq!(decode(0x3000), None);
        assert_eq!(decode((1 << 56) ^ (8 << 28)), None, "legacy engine tags stay raw");
        assert!(decode(STRUCTURED).is_some());
    }

    #[test]
    fn the_legacy_grad_weight_alias_is_gone() {
        // Old scheme: tag(8) ^ (0 << 20) == tag(9) ^ (16 << 24) ^ (0 << 8).
        let ts = TagSpace::new(0, 0);
        let grad = ts.tag(WirePhase::GradCollect, 0, 0);
        let weight = ts.tag(WirePhase::WeightDistribute, 16, 0);
        assert_ne!(grad, weight);
        // And no (entity, src) pair of one phase can reach the other phase:
        // the phase field has exclusive bits above both.
        assert_ne!(grad & !mask(PHASE_SHIFT), 0);
        assert_eq!((grad ^ weight) >> PHASE_SHIFT & mask(PHASE_BITS), 8 ^ 9);
    }

    #[test]
    fn epoch_orders_phases_within_and_across_iterations() {
        let it0 = TagSpace::new(0, 7);
        let it1 = TagSpace::new(0, 8);
        assert!(it0.epoch(WirePhase::GradCollect) < it0.epoch(WirePhase::WeightDistribute));
        assert!(it0.epoch(WirePhase::StatsSync) < it1.epoch(WirePhase::Control));
    }

    #[test]
    fn step_zero_is_distinct_from_no_step() {
        let ts = TagSpace::new(0, 0);
        let base = ts.phase_tag(WirePhase::LossSync);
        assert_ne!(with_step(base, 0), base);
        assert_eq!(decode(base).unwrap().step, None);
        assert_eq!(decode(with_step(base, 0)).unwrap().step, Some(0));
    }

    #[test]
    #[should_panic(expected = "overflows")]
    fn entity_overflow_panics_in_debug() {
        let ts = TagSpace::new(0, 0);
        let _ = ts.tag(WirePhase::DispatchRows, 1 << 14, 0);
    }

    #[test]
    fn describe_is_loggable() {
        let ts = TagSpace::new(2, 3);
        let s = describe(ts.tag(WirePhase::WeightDistribute, 16, 1));
        assert!(s.contains("WeightDistribute") && s.contains("e16"), "{s}");
        assert!(describe(0xbeef).contains("raw"), "raw tags print their hex value");
    }
}
