//! Cluster membership for elastic recovery.
//!
//! When a rank dies permanently, its peers' receives starve and escalate
//! (PR 4 made that loud). This module is the next step: the survivors run a
//! small agreement protocol over the wire they already have, converge on
//! the same dead-rank set, and emerge with a new [`MembershipView`] — a
//! bumped **membership epoch** plus the surviving physical-rank set — from
//! which every downstream structure (placement, optimizer shards,
//! communicator groups) is rebuilt over *logical* ranks `0..survivors`.
//!
//! The protocol is deliberately simple (this runtime has reliable FIFO
//! channels and fail-stop ranks, no Byzantine behaviour):
//!
//! 1. Each participant broadcasts its current alive-set belief (a bitmap)
//!    plus an opaque `u64` payload to every rank it believes alive, then
//!    receives the same from each of them. A send into a closed channel or
//!    a timed-out receive marks that peer dead; received bitmaps are merged
//!    (a rank any peer believes dead is dead — deaths only propagate, a
//!    peer can never resurrect a rank).
//! 2. Rounds repeat until a round changes nothing: the belief at the start
//!    of the round survived it, and every received bitmap equals it. With
//!    symmetric death detection (a dead rank sends nothing to anyone) this
//!    converges in one round when the death is already cluster-wide
//!    knowledge and two rounds otherwise.
//!
//! The caller's *suspects* are treated as hints, never as evidence: inside
//! a training iteration a survivor can starve behind another **live**
//! survivor (a ring collective stalls transitively — rank 0 waits on rank 3
//! which waits on the actually-dead rank 2), so the rank named by its error
//! is not necessarily the dead one. Marking suspects dead upfront would let
//! such a mis-suspicion propagate and fork the cluster. Instead every
//! believed-alive rank — suspected or not — gets a full round to answer;
//! only the wire itself (a closed channel, or silence through the round
//! budget, which covers the training protocol's whole retry window several
//! times over) declares death.
//!
//! All membership traffic runs on the reserved [`RECOVERY_LAYER`] tag plane
//! with `WirePhase::Control`, so it can never alias training traffic, and
//! it is fenced by the *new* epoch — a survivor still starving inside the
//! training protocol simply stashes arriving membership messages and finds
//! them the moment it enters recovery itself.

use crate::ctx::RankCtx;
use crate::error::CommError;
use crate::group::CommGroup;
use crate::tag::{TagSpace, WirePhase};
use std::time::{Duration, Instant};

/// Tag-space layer reserved for recovery traffic (membership rounds and
/// state-reconstruction transfers). The layer field is 6 bits, so 63 is the
/// highest encodable layer; engines must keep their `layer_id` below it.
pub const RECOVERY_LAYER: usize = 63;

/// Iteration stamped on join-bootstrap tags: the maximum encodable
/// iteration, so the bootstrap's fencing epoch is above every training
/// epoch and `discard_stale_below` can never purge a bootstrap waiting in
/// a standby rank's stash. The bootstrap payload carries the real
/// membership epoch in-band.
pub const JOIN_BOOT_ITER: u64 = (1 << 18) - 1;

/// An agreed view of cluster membership: which physical ranks are alive,
/// under which membership epoch. Logical ranks `0..size()` are the alive
/// physical ranks in ascending order — all placement and sharding math
/// runs over logical ranks and translates at the wire.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct MembershipView {
    epoch: u64,
    alive: Vec<bool>,
}

impl MembershipView {
    /// The initial view: every rank of a `world`-rank cluster alive,
    /// epoch 0.
    pub fn full(world: usize) -> Self {
        assert!(world > 0, "membership needs at least one rank");
        Self { epoch: 0, alive: vec![true; world] }
    }

    /// A view over a `world`-rank physical cluster with only the first
    /// `active` ranks participating, epoch 0 — the standby model for
    /// scale-out: ranks `active..world` exist (threads, channels) but are
    /// not members until a join admits them.
    pub fn partial(world: usize, active: usize) -> Self {
        assert!(active > 0, "membership needs at least one rank");
        assert!(active <= world, "active {active} exceeds physical world {world}");
        Self { epoch: 0, alive: (0..world).map(|r| r < active).collect() }
    }

    /// The view with `rank` additionally marked alive, **same epoch** —
    /// the pre-agreement grown view both the survivors and the joiner feed
    /// to [`RankCtx::agree_membership`], which bumps the epoch when the
    /// grown membership commits.
    pub fn with_joined(&self, rank: usize) -> Self {
        assert!(rank < self.alive.len(), "rank {rank} out of the {}-rank world", self.alive.len());
        assert!(!self.alive[rank], "rank {rank} is already a member");
        let mut alive = self.alive.clone();
        alive[rank] = true;
        Self { epoch: self.epoch, alive }
    }

    /// Membership epoch (0 = initial full world; +1 per agreement).
    pub fn epoch(&self) -> u64 {
        self.epoch
    }

    /// Physical world size (including dead ranks).
    pub fn world(&self) -> usize {
        self.alive.len()
    }

    /// Number of surviving ranks.
    pub fn size(&self) -> usize {
        self.alive.iter().filter(|&&a| a).count()
    }

    pub fn is_alive(&self, physical: usize) -> bool {
        self.alive[physical]
    }

    /// Surviving physical ranks in ascending order (logical order).
    pub fn survivors(&self) -> Vec<usize> {
        (0..self.alive.len()).filter(|&r| self.alive[r]).collect()
    }

    /// Logical rank of a physical rank, if alive.
    pub fn logical_of(&self, physical: usize) -> Option<usize> {
        if !self.alive[physical] {
            return None;
        }
        Some(self.alive[..physical].iter().filter(|&&a| a).count())
    }

    /// Physical rank of a logical rank.
    ///
    /// # Panics
    /// Panics if `logical >= size()`.
    pub fn physical_of(&self, logical: usize) -> usize {
        self.survivors()
            .get(logical)
            .copied()
            .unwrap_or_else(|| panic!("logical rank {logical} out of {} survivors", self.size()))
    }

    /// Communicator group over all survivors (physical ranks).
    pub fn group(&self) -> CommGroup {
        CommGroup::new(self.survivors())
    }

    /// Communicator group over the logical range `[lstart, lstart + llen)`,
    /// expressed in physical ranks. The logical range is contiguous; the
    /// physical set need not be — [`CommGroup`] and the ring collectives
    /// are index-based, so that is fine.
    pub fn subgroup(&self, lstart: usize, llen: usize) -> CommGroup {
        let surv = self.survivors();
        assert!(
            lstart + llen <= surv.len(),
            "logical range [{lstart}, {}) out of {} survivors",
            lstart + llen,
            surv.len()
        );
        CommGroup::new(surv[lstart..lstart + llen].to_vec())
    }

    /// The view with `dead` additionally marked dead and the epoch bumped.
    pub fn without(&self, dead: &[usize]) -> Self {
        let mut alive = self.alive.clone();
        for &d in dead {
            alive[d] = false;
        }
        assert!(alive.iter().any(|&a| a), "membership view must keep at least one rank");
        Self { epoch: self.epoch + 1, alive }
    }

    fn from_alive(epoch: u64, alive: Vec<bool>) -> Self {
        Self { epoch, alive }
    }
}

fn bitmap_words(world: usize) -> usize {
    world.div_ceil(64)
}

fn encode_alive(alive: &[bool]) -> Vec<u64> {
    let mut words = vec![0u64; bitmap_words(alive.len())];
    for (r, &a) in alive.iter().enumerate() {
        if a {
            words[r / 64] |= 1u64 << (r % 64);
        }
    }
    words
}

fn decode_alive(words: &[u64], world: usize) -> Vec<bool> {
    (0..world).map(|r| words[r / 64] >> (r % 64) & 1 == 1).collect()
}

/// Outcome of a membership agreement: the successor view plus each
/// survivor's opaque payload indexed by physical rank (dead ranks `None`).
pub type MembershipOutcome = (MembershipView, Vec<Option<Vec<u64>>>);

impl RankCtx {
    /// A membership-round receive budget derived from the installed
    /// training patience: a peer that is merely *slow to notice* the death
    /// (still burning its own retries inside the training protocol) must
    /// not be declared dead, so the membership timeout covers the full
    /// retry-with-backoff window several times over, clamped to
    /// `[200 ms, 10 s]`.
    pub fn default_membership_timeout(&self) -> Duration {
        let base = self.recv_timeout().unwrap_or(Duration::from_millis(50));
        let mut patience = base;
        if let Some(policy) = self.retry_policy() {
            let b = policy.backoff.max(1.0);
            for k in 1..=policy.max_retries {
                patience += base.mul_f64(b.powi(k as i32));
            }
        }
        (patience * 5).clamp(Duration::from_millis(200), Duration::from_secs(10))
    }

    /// Runs the membership agreement protocol among the ranks of `view`,
    /// and returns the agreed successor view (epoch bumped by one)
    /// together with each survivor's opaque `u64` payload, indexed by
    /// physical rank (the caller's own `payload` included at its own
    /// index; dead ranks are `None`).
    ///
    /// `suspects` (physical ranks the caller's failed receive pointed at)
    /// are advisory only — a live suspect clears itself by answering the
    /// first round, so a transitively-starved caller naming the wrong rank
    /// is harmless. Death detection inside the protocol is the wire
    /// itself: a send into a closed channel or a starved receive marks the
    /// peer dead. `timeout` bounds each round's receive; pass
    /// [`RankCtx::default_membership_timeout`] unless the test needs a
    /// specific patience. The caller's retry policy and receive timeout
    /// are saved and restored around the protocol.
    ///
    /// # Errors
    /// Only non-death wire errors (payload-type mismatches) propagate;
    /// death-class errors are absorbed into the agreement.
    ///
    /// # Panics
    /// Panics if a peer's bitmap declares *this* rank dead (an eviction
    /// means the cluster has split on timeouts and continuing would fork
    /// the run — a loud stop is the only safe outcome), or if the protocol
    /// fails to converge within `world + 2` rounds.
    pub fn agree_membership(
        &mut self,
        view: &MembershipView,
        suspects: &[usize],
        payload: &[u64],
        timeout: Duration,
    ) -> Result<MembershipOutcome, CommError> {
        let me = self.rank();
        let world = view.world();
        let words = bitmap_words(world);
        assert!(view.is_alive(me), "a dead rank cannot run membership agreement");

        // Suspects are hints, not evidence: a transitively-starved caller
        // (stuck behind a live peer in a ring) can name the wrong rank, so
        // every believed-alive rank keeps its seat until the wire itself
        // says otherwise.
        for &d in suspects {
            assert!(d != me, "a rank cannot suspect itself");
            assert!(d < world, "suspect {d} out of the {world}-rank world");
        }
        let mut alive = (0..world).map(|r| view.is_alive(r)).collect::<Vec<bool>>();

        let saved_timeout = self.recv_timeout();
        let saved_retry = self.retry_policy();
        self.set_recv_timeout(Some(timeout));
        // Starvation must stay a plain RecvTimeout here: the protocol
        // *expects* silence from dead peers and converts it to a death
        // mark, so burning retries on them would only slow agreement.
        self.set_retry_policy(None);

        let ts = TagSpace::new(RECOVERY_LAYER, view.epoch() + 1);
        let mut payloads: Vec<Option<Vec<u64>>> = vec![None; world];
        payloads[me] = Some(payload.to_vec());

        let result = (|| -> Result<Vec<bool>, CommError> {
            let max_rounds = world + 2;
            for round in 0..max_rounds {
                let belief_start = alive.clone();
                let mut msg = encode_alive(&alive);
                msg.extend_from_slice(payload);
                let my_tag = ts.tag(WirePhase::Control, round, me);
                for p in (0..world).filter(|&r| belief_start[r] && r != me) {
                    if let Err(CommError::PeerGone { .. }) = self.send(p, my_tag, msg.clone()) {
                        alive[p] = false;
                    }
                }
                let mut received: Vec<Vec<bool>> = Vec::new();
                for p in (0..world).filter(|&r| belief_start[r] && r != me) {
                    if !alive[p] {
                        continue;
                    }
                    let peer_tag = ts.tag(WirePhase::Control, round, p);
                    match self.recv_u64(p, peer_tag) {
                        Ok(data) => {
                            assert!(
                                data.len() >= words,
                                "membership message from rank {p} too short"
                            );
                            let peer_alive = decode_alive(&data[..words], world);
                            assert!(
                                peer_alive[me],
                                "rank {me} evicted from membership by rank {p}: \
                                 timeouts split the cluster; refusing to fork the run"
                            );
                            for q in 0..world {
                                if !peer_alive[q] {
                                    alive[q] = false;
                                }
                            }
                            payloads[p] = Some(data[words..].to_vec());
                            received.push(peer_alive);
                        }
                        Err(
                            CommError::RecvTimeout { .. }
                            | CommError::Protocol(_)
                            | CommError::PeerGone { .. },
                        ) => {
                            alive[p] = false;
                        }
                        Err(other) => return Err(other),
                    }
                }
                let converged =
                    alive == belief_start && received.iter().all(|bitmap| *bitmap == alive);
                if converged {
                    return Ok(alive.clone());
                }
            }
            panic!("rank {me}: membership agreement failed to converge in {} rounds", world + 2);
        })();

        self.set_recv_timeout(saved_timeout);
        self.set_retry_policy(saved_retry);

        let alive = result?;
        for (r, slot) in payloads.iter_mut().enumerate() {
            if !alive[r] {
                *slot = None;
            }
        }
        Ok((MembershipView::from_alive(view.epoch() + 1, alive), payloads))
    }

    /// Survivor side of the join handshake: hands `joiner` the current
    /// membership view (`[epoch, alive bitmap…]`) so it can enter the
    /// agreement round that admits it. Sent on the reserved
    /// [`JOIN_BOOT_ITER`] tag plane, whose fencing epoch sits above every
    /// training epoch — a standby rank can therefore receive it no matter
    /// how many stale-traffic purges happened while it waited.
    pub fn send_join_bootstrap(
        &mut self,
        joiner: usize,
        view: &MembershipView,
    ) -> Result<(), CommError> {
        let ts = TagSpace::new(RECOVERY_LAYER, JOIN_BOOT_ITER);
        let mut msg = vec![view.epoch()];
        msg.extend_from_slice(&encode_alive(&view.alive));
        self.send(joiner, ts.tag(WirePhase::Control, joiner, self.rank()), msg)
    }

    /// Joiner side of the join handshake: probes every other physical rank
    /// for a [`send_join_bootstrap`] message in short slices until one
    /// lands or `deadline` expires, and returns the decoded pre-join view
    /// plus the rank that sent it. The caller then builds
    /// [`MembershipView::with_joined`] over its own rank and enters
    /// [`agree_membership`] alongside the survivors.
    ///
    /// [`send_join_bootstrap`]: RankCtx::send_join_bootstrap
    /// [`agree_membership`]: RankCtx::agree_membership
    pub fn await_join_bootstrap(
        &mut self,
        deadline: Duration,
    ) -> Result<(MembershipView, usize), CommError> {
        let me = self.rank();
        let world = self.world_size();
        let ts = TagSpace::new(RECOVERY_LAYER, JOIN_BOOT_ITER);
        let saved_timeout = self.recv_timeout();
        let saved_retry = self.retry_policy();
        self.set_retry_policy(None);
        self.set_recv_timeout(Some(Duration::from_millis(50)));
        let start = Instant::now();
        let result = 'probe: loop {
            for p in (0..world).filter(|&p| p != me) {
                match self.recv_u64(p, ts.tag(WirePhase::Control, me, p)) {
                    Ok(data) => break 'probe Ok((data, p)),
                    Err(CommError::RecvTimeout { .. } | CommError::PeerGone { .. }) => continue,
                    Err(other) => break 'probe Err(other),
                }
            }
            if start.elapsed() >= deadline {
                break Err(CommError::RecvTimeout {
                    from: me,
                    tag: "join-bootstrap".to_string(),
                    waited_ms: start.elapsed().as_millis() as u64,
                    fenced: 0,
                    pending: Vec::new(),
                });
            }
        };
        self.set_recv_timeout(saved_timeout);
        self.set_retry_policy(saved_retry);
        let (data, from) = result?;
        let words = bitmap_words(world);
        assert!(data.len() == 1 + words, "join bootstrap from rank {from} has the wrong shape");
        let epoch = data[0];
        let alive = decode_alive(&data[1..], world);
        Ok((MembershipView::from_alive(epoch, alive), from))
    }

    /// Consumes the redundant join bootstraps from `senders` (every
    /// survivor sends one; the joiner acted on the first). They were sent
    /// before each survivor's first agreement message on the same FIFO
    /// channel, so once the agreement has converged they are already in
    /// the stash — this just keeps them from lingering there forever.
    pub fn drain_join_bootstraps(&mut self, senders: &[usize]) -> Result<(), CommError> {
        let me = self.rank();
        let ts = TagSpace::new(RECOVERY_LAYER, JOIN_BOOT_ITER);
        for &p in senders.iter().filter(|&&p| p != me) {
            self.recv_u64(p, ts.tag(WirePhase::Control, me, p))?;
        }
        Ok(())
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn full_view_maps_logical_and_physical_identically() {
        let v = MembershipView::full(4);
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.size(), 4);
        assert_eq!(v.survivors(), vec![0, 1, 2, 3]);
        for r in 0..4 {
            assert_eq!(v.logical_of(r), Some(r));
            assert_eq!(v.physical_of(r), r);
        }
    }

    #[test]
    fn without_compacts_logical_ranks_and_bumps_epoch() {
        let v = MembershipView::full(4).without(&[2]);
        assert_eq!(v.epoch(), 1);
        assert_eq!(v.size(), 3);
        assert!(!v.is_alive(2));
        assert_eq!(v.survivors(), vec![0, 1, 3]);
        assert_eq!(v.logical_of(3), Some(2));
        assert_eq!(v.logical_of(2), None);
        assert_eq!(v.physical_of(2), 3);
        assert_eq!(v.group().ranks(), &[0, 1, 3]);
        assert_eq!(v.subgroup(1, 2).ranks(), &[1, 3]);
    }

    #[test]
    fn bitmap_round_trips() {
        for world in [1usize, 3, 64, 65, 130] {
            let alive: Vec<bool> = (0..world).map(|r| r % 3 != 1).collect();
            assert_eq!(decode_alive(&encode_alive(&alive), world), alive);
        }
    }

    #[test]
    #[should_panic(expected = "at least one rank")]
    fn view_cannot_lose_everyone() {
        let _ = MembershipView::full(2).without(&[0, 1]);
    }

    #[test]
    fn partial_view_activates_a_prefix_of_the_physical_world() {
        let v = MembershipView::partial(5, 3);
        assert_eq!(v.epoch(), 0);
        assert_eq!(v.world(), 5);
        assert_eq!(v.size(), 3);
        assert_eq!(v.survivors(), vec![0, 1, 2]);
        assert_eq!(v.logical_of(2), Some(2));
        assert_eq!(v.logical_of(4), None);
    }

    #[test]
    fn with_joined_marks_alive_without_bumping_the_epoch() {
        let v = MembershipView::partial(5, 4).without(&[2]); // epoch 1, {0,1,3}
        let grown = v.with_joined(4);
        assert_eq!(grown.epoch(), v.epoch(), "the agreement bumps the epoch, not the pre-view");
        assert_eq!(grown.survivors(), vec![0, 1, 3, 4]);
        assert_eq!(grown.logical_of(4), Some(3), "the joiner takes the next logical rank");
        assert!(!v.is_alive(4), "with_joined does not mutate the source view");
    }

    #[test]
    #[should_panic(expected = "already a member")]
    fn with_joined_rejects_a_live_rank() {
        let _ = MembershipView::full(3).with_joined(1);
    }

    #[test]
    fn join_bootstrap_and_agreement_admit_a_standby_rank() {
        use crate::cluster::{Cluster, ClusterSpec};
        const WORLD: usize = 4;
        const ACTIVE: usize = 3;
        let (results, _) = Cluster::run(ClusterSpec::flat(WORLD), |ctx| {
            let me = ctx.rank();
            let view = MembershipView::partial(WORLD, ACTIVE);
            let timeout = Duration::from_millis(500);
            if me < ACTIVE {
                // Survivor: hand the standby rank the current view, then
                // run the admitting agreement over the grown pre-view.
                ctx.send_join_bootstrap(WORLD - 1, &view).unwrap();
                let pre = view.with_joined(WORLD - 1);
                let (new_view, payloads) =
                    ctx.agree_membership(&pre, &[], &[me as u64 + 10], timeout).unwrap();
                ctx.set_membership_gen(new_view.epoch());
                (new_view, payloads)
            } else {
                // Joiner: probe for the bootstrap, then enter the same
                // agreement with its own payload.
                let (boot, from) = ctx.await_join_bootstrap(Duration::from_secs(5)).unwrap();
                assert!(from < ACTIVE);
                assert_eq!(boot.epoch(), 0);
                assert_eq!(boot.survivors(), vec![0, 1, 2]);
                let pre = boot.with_joined(me);
                ctx.set_membership_gen(pre.epoch() + 1);
                let (new_view, payloads) =
                    ctx.agree_membership(&pre, &[], &[me as u64 + 10], timeout).unwrap();
                let others: Vec<usize> =
                    new_view.survivors().into_iter().filter(|&p| p != from && p != me).collect();
                ctx.drain_join_bootstraps(&others).unwrap();
                (new_view, payloads)
            }
        });
        for (rank, (view, payloads)) in results.iter().enumerate() {
            assert_eq!(view.epoch(), 1, "rank {rank}");
            assert_eq!(view.survivors(), vec![0, 1, 2, 3], "rank {rank}");
            for (p, payload) in payloads.iter().enumerate() {
                assert_eq!(
                    payload.as_deref(),
                    Some(&[p as u64 + 10][..]),
                    "rank {rank}: payload of rank {p}"
                );
            }
        }
    }
}
