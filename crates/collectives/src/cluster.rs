//! Thread-per-rank cluster runtime.

use crate::ctx::{Mailbox, RankCtx};
use crate::fault::{FaultInjector, FaultPlan};
use crate::group::GroupRegistry;
use crate::traffic::{TrafficReport, TrafficStats};
use std::any::Any;
use std::sync::mpsc;
use std::sync::{Arc, Barrier};

/// Shape of the simulated cluster: how many ranks (GPUs) exist and how they
/// map onto nodes. The paper's testbed is 16 nodes × 1 GPU; its analytical
/// model generalizes to `s` slots per rank and multiple GPUs per node, which
/// this spec captures.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub struct ClusterSpec {
    /// Total ranks (one rank ≙ one GPU).
    pub ranks: usize,
    /// GPUs co-located per node; ranks `[k·g, (k+1)·g)` share node `k`.
    pub gpus_per_node: usize,
}

impl ClusterSpec {
    /// One GPU per node (the paper's evaluation cluster shape).
    pub fn flat(ranks: usize) -> Self {
        Self { ranks, gpus_per_node: 1 }
    }

    /// Node hosting `rank`.
    pub fn node_of(&self, rank: usize) -> usize {
        rank / self.gpus_per_node
    }

    /// Whether two ranks share a node (→ intra-node link class).
    pub fn same_node(&self, a: usize, b: usize) -> bool {
        self.node_of(a) == self.node_of(b)
    }

    /// Number of nodes.
    pub fn nodes(&self) -> usize {
        self.ranks.div_ceil(self.gpus_per_node)
    }
}

/// What one rank's thread produced: the closure's value, or the payload of
/// the panic that killed it.
type RankResult<T> = Result<T, Box<dyn Any + Send>>;

/// The cluster executor: spawns one OS thread per rank and runs the same
/// SPMD closure on each.
///
/// ```
/// use symi_collectives::{Cluster, ClusterSpec};
///
/// let (sums, traffic) = Cluster::run(ClusterSpec::flat(4), |ctx| {
///     let world = ctx.groups().world();
///     let mut data = vec![ctx.rank() as f32];
///     ctx.allreduce_sum(&world, 1, &mut data).unwrap();
///     data[0]
/// });
/// assert_eq!(sums, vec![6.0; 4]); // 0 + 1 + 2 + 3 on every rank
/// assert!(traffic.inter_node_bytes > 0);
/// ```
pub struct Cluster;

impl Cluster {
    /// Runs `f` on every rank and returns the per-rank results (indexed by
    /// rank) together with the traffic report of the whole execution.
    ///
    /// A panic on any rank propagates to the caller after all threads are
    /// joined, so a failing SPMD test fails loudly instead of deadlocking.
    pub fn run<T, F>(spec: ClusterSpec, f: F) -> (Vec<T>, TrafficReport)
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        let (results, report) = Self::run_inner(spec, None, f);
        let results = results
            .into_iter()
            .map(|r| r.unwrap_or_else(|e| std::panic::resume_unwind(e)))
            .collect();
        (results, report)
    }

    /// Runs `f` on every rank under a chaos [`FaultPlan`]. Unlike
    /// [`Cluster::run`], a rank's panic — notably one injected by
    /// `FaultKind::KillRank` — is captured as `Err(message)` for that rank
    /// instead of propagating, so the caller can assert on *how* the
    /// survivors observed the death. All threads are still joined before
    /// returning; surviving ranks need a recv timeout to guarantee that
    /// join terminates once a peer dies.
    pub fn run_with_faults<T, F>(
        spec: ClusterSpec,
        plan: FaultPlan,
        f: F,
    ) -> (Vec<Result<T, String>>, TrafficReport)
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        let (results, report) = Self::run_inner(spec, Some(Arc::new(plan)), f);
        (results.into_iter().map(|r| r.map_err(panic_message)).collect(), report)
    }

    fn run_inner<T, F>(
        spec: ClusterSpec,
        plan: Option<Arc<FaultPlan>>,
        f: F,
    ) -> (Vec<RankResult<T>>, TrafficReport)
    where
        T: Send,
        F: Fn(&mut RankCtx) -> T + Sync,
    {
        assert!(spec.ranks > 0, "cluster needs at least one rank");
        assert!(spec.gpus_per_node > 0, "need at least one GPU per node");

        let traffic = TrafficStats::new(spec.ranks);
        let groups = Arc::new(GroupRegistry::contiguous(spec.ranks));
        let barrier = Arc::new(Barrier::new(spec.ranks));

        let mut senders = Vec::with_capacity(spec.ranks);
        let mut receivers = Vec::with_capacity(spec.ranks);
        for _ in 0..spec.ranks {
            let (tx, rx) = mpsc::channel();
            senders.push(tx);
            receivers.push(Some(rx));
        }

        let results = std::thread::scope(|scope| {
            let mut handles = Vec::with_capacity(spec.ranks);
            for (rank, rx_slot) in receivers.iter_mut().enumerate() {
                let rx = rx_slot.take().expect("receiver taken once");
                let senders = senders.clone();
                let traffic = Arc::clone(&traffic);
                let groups = Arc::clone(&groups);
                let barrier = Arc::clone(&barrier);
                let injector = plan.as_ref().map(|p| FaultInjector::new(Arc::clone(p), rank));
                let f = &f;
                handles.push(scope.spawn(move || {
                    let mut ctx = RankCtx::new(
                        rank,
                        spec,
                        Mailbox::new(rank, senders, rx, injector),
                        barrier,
                        traffic,
                        groups,
                    );
                    let out = f(&mut ctx);
                    ctx.finish();
                    out
                }));
            }
            // Every handle is joined explicitly, so a panicking rank never
            // re-panics out of the scope on its own.
            handles.into_iter().map(|h| h.join()).collect()
        });

        let report = traffic.report();
        (results, report)
    }
}

/// Best-effort extraction of a panic payload's message.
fn panic_message(e: Box<dyn Any + Send>) -> String {
    if let Some(s) = e.downcast_ref::<&str>() {
        (*s).to_string()
    } else if let Some(s) = e.downcast_ref::<String>() {
        s.clone()
    } else {
        "rank panicked with a non-string payload".to_string()
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn node_mapping_flat() {
        let spec = ClusterSpec::flat(4);
        assert_eq!(spec.node_of(3), 3);
        assert_eq!(spec.nodes(), 4);
        assert!(!spec.same_node(0, 1));
    }

    #[test]
    fn node_mapping_multi_gpu() {
        let spec = ClusterSpec { ranks: 8, gpus_per_node: 4 };
        assert_eq!(spec.nodes(), 2);
        assert!(spec.same_node(0, 3));
        assert!(!spec.same_node(3, 4));
    }

    #[test]
    fn run_collects_results_in_rank_order() {
        let (results, _) = Cluster::run(ClusterSpec::flat(6), |ctx| ctx.rank() * 10);
        assert_eq!(results, vec![0, 10, 20, 30, 40, 50]);
    }

    #[test]
    fn run_single_rank_works() {
        let (results, report) = Cluster::run(ClusterSpec::flat(1), |_| 42);
        assert_eq!(results, vec![42]);
        assert_eq!(report.total_bytes(), 0);
    }

    #[test]
    #[should_panic(expected = "rank 2 says no")]
    fn rank_panic_propagates() {
        let _ = Cluster::run(ClusterSpec::flat(3), |ctx| {
            if ctx.rank() == 2 {
                panic!("rank 2 says no");
            }
        });
    }
}
