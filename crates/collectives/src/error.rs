//! Error type for the cluster runtime.

use std::fmt;

/// Errors surfaced by communication primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer's mailbox was closed (its rank thread exited or panicked).
    PeerGone { rank: usize },
    /// A collective was invoked by a rank that is not a member of the group.
    NotInGroup { rank: usize },
    /// Payload had a different variant or length than the receiver expected.
    PayloadMismatch { expected: &'static str, got: &'static str },
    /// A group lookup failed (range not registered).
    UnknownGroup { start: usize, len: usize },
    /// A received payload carried a different element count than the
    /// receive posted — corrupt or misrouted data caught at the wire
    /// instead of inside the optimizer. `tag` is the decoded tag
    /// description of the offending receive.
    LengthMismatch { from: usize, tag: String, expected: usize, got: usize },
    /// A receive exceeded the configured timeout. `tag` describes the
    /// receive that starved; `pending` is the decoded stash — every
    /// buffered `(from, tag, elems, epoch)` at expiry — and `fenced` the
    /// number of messages the epoch fence has refused so far, which
    /// together make cross-phase deadlocks diagnosable from the error
    /// alone.
    RecvTimeout { from: usize, tag: String, waited_ms: u64, fenced: u64, pending: Vec<String> },
    /// A receive exhausted its bounded retry-with-backoff policy — the
    /// escalated form of [`CommError::RecvTimeout`] produced when a
    /// `RetryPolicy` is installed, carrying the full decoded tag/epoch
    /// context a postmortem needs (boxed: the diagnostics are large and
    /// the happy path should not pay for them).
    Protocol(Box<ProtocolFailure>),
}

/// Full diagnostics of a retry-exhausted receive.
#[derive(Debug, Clone, PartialEq, Eq)]
pub struct ProtocolFailure {
    /// Rank whose receive starved.
    pub rank: usize,
    /// Peer the receive was posted against.
    pub from: usize,
    /// Decoded description of the starved tag.
    pub tag: String,
    /// Training iteration from the structured tag (`None` for raw tags).
    pub iteration: Option<u64>,
    /// Wire-phase name from the structured tag (`None` for raw tags).
    pub phase: Option<String>,
    /// Fencing epoch the receive belonged to.
    pub epoch: u64,
    /// Retry attempts that expired before escalation.
    pub retries: u32,
    /// Measured wall-clock wait across all attempts, in milliseconds.
    pub waited_ms: u64,
    /// Messages the epoch fence has refused on this rank so far.
    pub fenced: u64,
    /// Decoded summary of every message stashed at escalation time.
    pub pending: Vec<String>,
}

impl fmt::Display for ProtocolFailure {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        write!(
            f,
            "rank {} starved receiving from rank {} tagged {}",
            self.rank, self.from, self.tag
        )?;
        if let (Some(it), Some(phase)) = (self.iteration, self.phase.as_deref()) {
            write!(f, " (iteration {it}, phase {phase})")?;
        }
        write!(
            f,
            ": {} retries exhausted over {} ms, epoch {}, {} fenced; {} pending: {}",
            self.retries,
            self.waited_ms,
            self.epoch,
            self.fenced,
            self.pending.len(),
            self.pending.join(", ")
        )
    }
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerGone { rank } => write!(f, "peer rank {rank} is gone"),
            CommError::NotInGroup { rank } => {
                write!(f, "rank {rank} invoked a collective on a group it is not part of")
            }
            CommError::PayloadMismatch { expected, got } => {
                write!(f, "payload mismatch: expected {expected}, got {got}")
            }
            CommError::UnknownGroup { start, len } => {
                write!(f, "communicator group [{start}, {}) was never registered", start + len)
            }
            CommError::LengthMismatch { from, tag, expected, got } => {
                write!(
                    f,
                    "payload from rank {from} tagged {tag} carried {got} elements, \
                     receiver expected {expected}"
                )
            }
            CommError::RecvTimeout { from, tag, waited_ms, fenced, pending } => {
                write!(
                    f,
                    "recv from rank {from} tagged {tag} timed out after {waited_ms} ms \
                     ({fenced} messages fenced; {} pending: {})",
                    pending.len(),
                    pending.join(", ")
                )
            }
            CommError::Protocol(failure) => write!(f, "protocol failure: {failure}"),
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CommError::UnknownGroup { start: 3, len: 4 };
        assert!(e.to_string().contains("[3, 7)"));
        assert!(CommError::PeerGone { rank: 9 }.to_string().contains('9'));
    }

    #[test]
    fn protocol_failure_display_carries_the_decoded_context() {
        let e = CommError::Protocol(Box::new(ProtocolFailure {
            rank: 2,
            from: 1,
            tag: "[L0/it5/GradCollect/e3/src1]".into(),
            iteration: Some(5),
            phase: Some("GradCollect".into()),
            epoch: 168,
            retries: 3,
            waited_ms: 450,
            fenced: 0,
            pending: vec!["from=1 [raw:0x9] elems=4 epoch=0".into()],
        }));
        let s = e.to_string();
        for needle in ["rank 2", "rank 1", "GradCollect", "iteration 5", "3 retries", "450 ms"] {
            assert!(s.contains(needle), "missing {needle:?} in {s}");
        }
    }
}
