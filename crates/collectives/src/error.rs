//! Error type for the cluster runtime.

use std::fmt;

/// Errors surfaced by communication primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer's mailbox was closed (its rank thread exited or panicked).
    PeerGone { rank: usize },
    /// A collective was invoked by a rank that is not a member of the group.
    NotInGroup { rank: usize },
    /// Payload had a different variant or length than the receiver expected.
    PayloadMismatch { expected: &'static str, got: &'static str },
    /// A group lookup failed (range not registered).
    UnknownGroup { start: usize, len: usize },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerGone { rank } => write!(f, "peer rank {rank} is gone"),
            CommError::NotInGroup { rank } => {
                write!(f, "rank {rank} invoked a collective on a group it is not part of")
            }
            CommError::PayloadMismatch { expected, got } => {
                write!(f, "payload mismatch: expected {expected}, got {got}")
            }
            CommError::UnknownGroup { start, len } => {
                write!(f, "communicator group [{start}, {}) was never registered", start + len)
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CommError::UnknownGroup { start: 3, len: 4 };
        assert!(e.to_string().contains("[3, 7)"));
        assert!(CommError::PeerGone { rank: 9 }.to_string().contains('9'));
    }
}
