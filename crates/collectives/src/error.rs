//! Error type for the cluster runtime.

use std::fmt;

/// Errors surfaced by communication primitives.
#[derive(Debug, Clone, PartialEq, Eq)]
pub enum CommError {
    /// The peer's mailbox was closed (its rank thread exited or panicked).
    PeerGone { rank: usize },
    /// A collective was invoked by a rank that is not a member of the group.
    NotInGroup { rank: usize },
    /// Payload had a different variant or length than the receiver expected.
    PayloadMismatch { expected: &'static str, got: &'static str },
    /// A group lookup failed (range not registered).
    UnknownGroup { start: usize, len: usize },
    /// A received payload carried a different element count than the
    /// receive posted — corrupt or misrouted data caught at the wire
    /// instead of inside the optimizer. `tag` is the decoded tag
    /// description of the offending receive.
    LengthMismatch { from: usize, tag: String, expected: usize, got: usize },
    /// A receive exceeded the configured timeout. `tag` describes the
    /// receive that starved; `pending` is the decoded stash — every
    /// buffered `(from, tag, elems, epoch)` at expiry — and `fenced` the
    /// number of messages the epoch fence has refused so far, which
    /// together make cross-phase deadlocks diagnosable from the error
    /// alone.
    RecvTimeout { from: usize, tag: String, waited_ms: u64, fenced: u64, pending: Vec<String> },
}

impl fmt::Display for CommError {
    fn fmt(&self, f: &mut fmt::Formatter<'_>) -> fmt::Result {
        match self {
            CommError::PeerGone { rank } => write!(f, "peer rank {rank} is gone"),
            CommError::NotInGroup { rank } => {
                write!(f, "rank {rank} invoked a collective on a group it is not part of")
            }
            CommError::PayloadMismatch { expected, got } => {
                write!(f, "payload mismatch: expected {expected}, got {got}")
            }
            CommError::UnknownGroup { start, len } => {
                write!(f, "communicator group [{start}, {}) was never registered", start + len)
            }
            CommError::LengthMismatch { from, tag, expected, got } => {
                write!(
                    f,
                    "payload from rank {from} tagged {tag} carried {got} elements, \
                     receiver expected {expected}"
                )
            }
            CommError::RecvTimeout { from, tag, waited_ms, fenced, pending } => {
                write!(
                    f,
                    "recv from rank {from} tagged {tag} timed out after {waited_ms} ms \
                     ({fenced} messages fenced; {} pending: {})",
                    pending.len(),
                    pending.join(", ")
                )
            }
        }
    }
}

impl std::error::Error for CommError {}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn display_is_informative() {
        let e = CommError::UnknownGroup { start: 3, len: 4 };
        assert!(e.to_string().contains("[3, 7)"));
        assert!(CommError::PeerGone { rank: 9 }.to_string().contains('9'));
    }
}
