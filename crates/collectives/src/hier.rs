//! The intra+inter rank all-reduce of §4.1.
//!
//! Stock NCCL all-reduce synchronizes one tensor per *rank*, which forbids
//! placing two replicas of the same expert class on the same GPU — a
//! restriction the paper measured to cost up to 20% extra token drops.
//! SYMI's variant removes it in three steps (Figure 6):
//!
//! 1. each rank elects a *slot representative* for the expert class and sums
//!    its other local replicas into it (HBM-local, no link traffic);
//! 2. a standard ring all-reduce runs across the representative ranks only;
//! 3. the representative writes the reduced (optionally normalized) tensor
//!    back to its co-located replica slots.
//!
//! Besides enabling arbitrary placements, step 2's ring spans fewer ranks
//! than instances, so inter-node traffic shrinks whenever the scheduler
//! packs replicas of one class onto one rank — exactly what Algorithm 1's
//! contiguous assignment does.

use crate::ctx::RankCtx;
use crate::error::CommError;
use crate::group::CommGroup;
use crate::tree::{TierMap, TreeStats};

/// Reduction semantics for replica synchronization.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum ReduceMode {
    /// Plain sum over all instances — correct when each instance's gradient
    /// is already a partial sum over its share of tokens.
    Sum,
    /// Sum divided by the total instance count — classic data-parallel mean.
    Mean,
}

impl RankCtx {
    /// Synchronizes all instances of one expert class.
    ///
    /// `locals` holds this rank's replica tensors for the class (one entry
    /// per local slot hosting it; at least one — ranks without a replica are
    /// not group members and must not call). `group` is the set of ranks
    /// hosting ≥1 replica; `total_instances` is the global replica count
    /// used by [`ReduceMode::Mean`].
    ///
    /// On return every tensor in `locals` holds the synchronized value.
    pub fn expert_allreduce(
        &mut self,
        group: &CommGroup,
        tag: u64,
        locals: &mut [Vec<f32>],
        total_instances: usize,
        mode: ReduceMode,
    ) -> Result<(), CommError> {
        assert!(!locals.is_empty(), "caller must hold at least one local replica");
        let len = locals[0].len();
        assert!(locals.iter().all(|l| l.len() == len), "replica tensors must have equal shape");
        assert!(total_instances >= 1, "total_instances must be positive");

        // Step 1: fold local replicas into the representative (slot 0).
        let (rep, rest) = locals.split_first_mut().expect("non-empty");
        for other in rest.iter() {
            for (r, v) in rep.iter_mut().zip(other) {
                *r += v;
            }
        }

        // Step 2: inter-rank ring all-reduce across representatives.
        self.allreduce_sum(group, tag, rep)?;

        // Step 3: normalize and copy back to the remaining local slots.
        if mode == ReduceMode::Mean {
            let inv = 1.0 / total_instances as f32;
            for v in rep.iter_mut() {
                *v *= inv;
            }
        }
        // `rep` and `rest` are disjoint borrows from `split_first_mut`, so
        // the fan-out is a straight copy — no snapshot allocation on the
        // per-class, per-iteration grad-sync hot path.
        for other in rest.iter_mut() {
            other.copy_from_slice(rep);
        }
        Ok(())
    }

    /// [`RankCtx::expert_allreduce`] with the inter-rank step replaced by
    /// the topology-aware tree collective: local replicas fold into the
    /// slot representative, representatives tree-reduce across tier cells
    /// ([`RankCtx::tree_allreduce_sum`]), and the result fans back to the
    /// local slots. Returns the per-tier byte attribution of this rank's
    /// share of the tree.
    pub fn tree_expert_allreduce(
        &mut self,
        group: &CommGroup,
        map: &TierMap,
        tag: u64,
        locals: &mut [Vec<f32>],
        total_instances: usize,
        mode: ReduceMode,
    ) -> Result<TreeStats, CommError> {
        assert!(!locals.is_empty(), "caller must hold at least one local replica");
        let len = locals[0].len();
        assert!(locals.iter().all(|l| l.len() == len), "replica tensors must have equal shape");
        assert!(total_instances >= 1, "total_instances must be positive");

        let (rep, rest) = locals.split_first_mut().expect("non-empty");
        for other in rest.iter() {
            for (r, v) in rep.iter_mut().zip(other) {
                *r += v;
            }
        }

        let stats = self.tree_allreduce_sum(group, map, tag, rep)?;

        if mode == ReduceMode::Mean {
            let inv = 1.0 / total_instances as f32;
            for v in rep.iter_mut() {
                *v *= inv;
            }
        }
        for other in rest.iter_mut() {
            other.copy_from_slice(rep);
        }
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec};

    /// 4 ranks; expert hosted on ranks 1..3 with 2 replicas on rank 1 and
    /// one each on ranks 2, 3 (4 instances total).
    fn placement(rank: usize) -> usize {
        match rank {
            1 => 2,
            2 | 3 => 1,
            _ => 0,
        }
    }

    #[test]
    fn sums_across_and_within_ranks() {
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            let n_local = placement(ctx.rank());
            if n_local == 0 {
                return vec![];
            }
            let group = ctx.groups().range(1, 3);
            // Instance value = 100*rank + slot.
            let mut locals: Vec<Vec<f32>> =
                (0..n_local).map(|s| vec![(100 * ctx.rank() + s) as f32; 3]).collect();
            ctx.expert_allreduce(&group, 77, &mut locals, 4, ReduceMode::Sum).unwrap();
            locals.into_iter().flatten().collect::<Vec<f32>>()
        });
        // Sum = (100 + 101) + 200 + 300 = 701 in every element of every slot.
        let expect = 701.0f32;
        for (rank, result) in results.iter().enumerate().take(4).skip(1) {
            for v in result {
                assert!((v - expect).abs() < 1e-3, "rank {rank}: {v}");
            }
        }
        assert_eq!(results[1].len(), 6, "two local slots synchronized");
        assert!(results[0].is_empty());
    }

    #[test]
    fn mean_divides_by_instances() {
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            let n_local = placement(ctx.rank());
            if n_local == 0 {
                return 0.0;
            }
            let group = ctx.groups().range(1, 3);
            let mut locals: Vec<Vec<f32>> = (0..n_local).map(|_| vec![8.0f32]).collect();
            ctx.expert_allreduce(&group, 78, &mut locals, 4, ReduceMode::Mean).unwrap();
            locals[0][0]
        });
        for r in results.iter().take(4).skip(1) {
            assert!((r - 8.0).abs() < 1e-4, "mean of equal values is the value");
        }
    }

    #[test]
    fn single_rank_many_slots_needs_no_network() {
        let (results, report) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() != 0 {
                return 0.0;
            }
            let group = ctx.groups().range(0, 1);
            let mut locals = vec![vec![1.0f32], vec![2.0], vec![3.0]];
            ctx.expert_allreduce(&group, 5, &mut locals, 3, ReduceMode::Sum).unwrap();
            locals[2][0]
        });
        assert_eq!(results[0], 6.0);
        assert_eq!(report.total_bytes(), 0, "intra-rank folding must be link-free");
    }

    #[test]
    fn packed_placement_moves_fewer_inter_node_bytes_than_spread() {
        // 4 instances of one expert, tensor of 1024 floats.
        // Packed: 2 ranks x 2 slots -> ring over 2 ranks.
        // Spread: 4 ranks x 1 slot  -> ring over 4 ranks.
        let len = 1024usize;
        let (_, packed) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            if ctx.rank() < 2 {
                let group = ctx.groups().range(0, 2);
                let mut locals = vec![vec![1.0f32; len], vec![2.0f32; len]];
                ctx.expert_allreduce(&group, 1, &mut locals, 4, ReduceMode::Sum).unwrap();
            }
        });
        let (_, spread) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            let group = ctx.groups().range(0, 4);
            let mut locals = vec![vec![1.5f32; len]];
            ctx.expert_allreduce(&group, 1, &mut locals, 4, ReduceMode::Sum).unwrap();
        });
        assert!(
            packed.inter_node_bytes < spread.inter_node_bytes,
            "packed {} should beat spread {}",
            packed.inter_node_bytes,
            spread.inter_node_bytes
        );
        // Ring volume: per rank 2(m-1)/m * len * 4 bytes.
        assert_eq!(packed.inter_node_bytes, 2 * (2 * 1024 * 4 / 2));
        assert_eq!(spread.inter_node_bytes, 4 * (2 * 3 * 1024 * 4 / 4));
    }

    #[test]
    fn result_matches_flat_allreduce() {
        // The hierarchical reduce must produce numerically the same result
        // as a flat sum over all instance tensors.
        let (results, _) = Cluster::run(ClusterSpec::flat(3), |ctx| {
            let n_local = ctx.rank() + 1; // 1, 2, 3 instances
            let group = ctx.groups().range(0, 3);
            let mut locals: Vec<Vec<f32>> =
                (0..n_local).map(|s| vec![(ctx.rank() * 10 + s) as f32 * 0.5; 4]).collect();
            ctx.expert_allreduce(&group, 3, &mut locals, 6, ReduceMode::Sum).unwrap();
            locals[0][0]
        });
        // Instances: 0.0 | 5.0, 5.5 | 10.0, 10.5, 11.0 -> sum 42.0.
        for r in &results {
            assert!((r - 42.0).abs() < 1e-3, "{r}");
        }
    }

    #[test]
    fn single_member_group_mean_divides_by_local_instances() {
        // Degenerate shape: one rank hosts every replica. Mean must divide
        // by the *instance* count even though the ring never runs.
        let (results, report) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() != 0 {
                return vec![];
            }
            let group = ctx.groups().range(0, 1);
            let mut locals = vec![vec![3.0f32, 9.0], vec![6.0, 0.0], vec![0.0, 3.0]];
            ctx.expert_allreduce(&group, 21, &mut locals, 3, ReduceMode::Mean).unwrap();
            locals.into_iter().flatten().collect::<Vec<f32>>()
        });
        // Sums (9, 12) / 3 instances = (3, 4), replicated to all slots.
        assert_eq!(results[0], vec![3.0, 4.0, 3.0, 4.0, 3.0, 4.0]);
        assert_eq!(report.total_bytes(), 0, "single-member sync is link-free");
    }

    /// Per-rank-varying replica counts, checked against a naive all-gather
    /// oracle: every instance tensor is reconstructed independently and
    /// summed sequentially.
    #[test]
    fn varying_replica_counts_match_all_gather_oracle() {
        let replicas_of = |rank: usize| [3usize, 1, 2, 1][rank];
        let value_of =
            |rank: usize, slot: usize, i: usize| (rank * 100 + slot * 10 + i) as f32 * 0.25;
        let len = 5usize;
        for mode in [ReduceMode::Sum, ReduceMode::Mean] {
            let total: usize = (0..4).map(replicas_of).sum();
            let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
                let group = ctx.groups().range(0, 4);
                let mut locals: Vec<Vec<f32>> = (0..replicas_of(ctx.rank()))
                    .map(|s| (0..len).map(|i| value_of(ctx.rank(), s, i)).collect())
                    .collect();
                ctx.expert_allreduce(&group, 22, &mut locals, total, mode).unwrap();
                locals
            });
            // Oracle: gather every instance, sum, normalize.
            let oracle: Vec<f32> = (0..len)
                .map(|i| {
                    let sum: f32 = (0..4)
                        .flat_map(|r| (0..replicas_of(r)).map(move |s| value_of(r, s, i)))
                        .sum();
                    if mode == ReduceMode::Mean {
                        sum / total as f32
                    } else {
                        sum
                    }
                })
                .collect();
            for (rank, per_rank) in results.iter().enumerate() {
                assert_eq!(per_rank.len(), replicas_of(rank), "every slot synchronized");
                for slot in per_rank {
                    for (a, b) in slot.iter().zip(&oracle) {
                        assert!((a - b).abs() < 1e-4, "mode {mode:?} rank {rank}: {a} vs {b}");
                    }
                }
            }
        }
    }

    #[test]
    fn tree_variant_matches_ring_variant_bitwise_on_integer_data() {
        // Same fold → reduce → fan-out pipeline, tree inter-rank step:
        // on exactly-representable data the two must agree bit for bit.
        let map = TierMap::new(vec![2, 2]);
        let map_ref = &map;
        let replicas_of = |rank: usize| rank % 2 + 1;
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            let group = ctx.groups().range(0, 4);
            let total: usize = (0..4).map(replicas_of).sum();
            let mk = |rank: usize| -> Vec<Vec<f32>> {
                (0..replicas_of(rank))
                    .map(|s| (0..7).map(|i| ((rank * 5 + s * 3 + i) % 16) as f32).collect())
                    .collect()
            };
            let mut ring_locals = mk(ctx.rank());
            let mut tree_locals = mk(ctx.rank());
            ctx.expert_allreduce(&group, 23, &mut ring_locals, total, ReduceMode::Sum).unwrap();
            let stats = ctx
                .tree_expert_allreduce(
                    &group,
                    map_ref,
                    24,
                    &mut tree_locals,
                    total,
                    ReduceMode::Sum,
                )
                .unwrap();
            (ring_locals, tree_locals, stats.total_bytes())
        });
        for (rank, (ring, tree, _)) in results.iter().enumerate() {
            for (a, b) in ring.iter().flatten().zip(tree.iter().flatten()) {
                assert_eq!(a.to_bits(), b.to_bits(), "rank {rank}");
            }
        }
        let moved: u64 = results.iter().map(|(_, _, b)| b).sum();
        assert!(moved > 0, "the tree step must actually communicate");
    }
}
