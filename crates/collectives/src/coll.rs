//! Collective operations: ring all-reduce, reduce-scatter, all-gather,
//! broadcast, and all-to-all(v).
//!
//! The ring algorithms are the ones whose volume the paper reasons about:
//! a ring all-reduce over `r` ranks moves `2(r−1)/r` of the buffer per rank
//! (§4.1), a reduce-scatter half of that. All operations are SPMD: every
//! member of the group must call the same operation with the same base tag.

use crate::ctx::RankCtx;
use crate::error::CommError;
use crate::group::CommGroup;

/// Boundaries of chunk `i` when splitting `len` elements into `parts`
/// near-equal contiguous chunks (remainder spread over the first chunks).
pub fn chunk_range(len: usize, parts: usize, i: usize) -> (usize, usize) {
    debug_assert!(i < parts);
    let base = len / parts;
    let rem = len % parts;
    let start = i * base + i.min(rem);
    let size = base + usize::from(i < rem);
    (start, start + size)
}

impl RankCtx {
    /// In-place ring all-reduce (sum) of `data` across `group`.
    ///
    /// # Errors
    /// Returns [`CommError::NotInGroup`] if this rank is not a member.
    pub fn allreduce_sum(
        &mut self,
        group: &CommGroup,
        tag: u64,
        data: &mut [f32],
    ) -> Result<(), CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let m = group.size();
        if m == 1 || data.is_empty() {
            return Ok(());
        }
        self.reduce_scatter_in_place(group, idx, tag, data)?;
        self.all_gather_in_place(group, idx, Self::subop_tag(tag, 1), data)?;
        Ok(())
    }

    /// Ring reduce-scatter over the full buffer: on return, this rank's
    /// owned chunk (`chunk_range(len, m, (idx + 1) % m)`) holds the global
    /// sum; other regions hold partial sums and must be treated as scratch.
    fn reduce_scatter_in_place(
        &mut self,
        group: &CommGroup,
        idx: usize,
        tag: u64,
        data: &mut [f32],
    ) -> Result<(), CommError> {
        let m = group.size();
        let next = group.ranks()[(idx + 1) % m];
        let prev = group.ranks()[(idx + m - 1) % m];
        for step in 0..m - 1 {
            let send_chunk = (idx + m - step) % m;
            let recv_chunk = (idx + m - step - 1) % m;
            let (ss, se) = chunk_range(data.len(), m, send_chunk);
            self.send(next, Self::step_tag(tag, step as u64), data[ss..se].to_vec())?;
            let incoming = self.recv_f32(prev, Self::step_tag(tag, step as u64))?;
            let (rs, re) = chunk_range(data.len(), m, recv_chunk);
            debug_assert_eq!(incoming.len(), re - rs);
            for (d, v) in data[rs..re].iter_mut().zip(&incoming) {
                *d += v;
            }
        }
        Ok(())
    }

    /// Ring all-gather assuming rank `idx` currently owns reduced chunk
    /// `(idx + 1) % m`; on return all chunks are globally reduced.
    fn all_gather_in_place(
        &mut self,
        group: &CommGroup,
        idx: usize,
        tag: u64,
        data: &mut [f32],
    ) -> Result<(), CommError> {
        let m = group.size();
        let next = group.ranks()[(idx + 1) % m];
        let prev = group.ranks()[(idx + m - 1) % m];
        for step in 0..m - 1 {
            let send_chunk = (idx + 1 + m - step) % m;
            let recv_chunk = (idx + m - step) % m;
            let (ss, se) = chunk_range(data.len(), m, send_chunk);
            self.send(next, Self::step_tag(tag, step as u64), data[ss..se].to_vec())?;
            let incoming = self.recv_f32(prev, Self::step_tag(tag, step as u64))?;
            let (rs, re) = chunk_range(data.len(), m, recv_chunk);
            debug_assert_eq!(incoming.len(), re - rs);
            data[rs..re].copy_from_slice(&incoming);
        }
        Ok(())
    }

    /// Reduce-scatter (sum): each member contributes `data` and receives the
    /// globally-summed chunk it owns, `chunk_range(len, m, idx)`, returned
    /// together with its offset.
    pub fn reduce_scatter_sum(
        &mut self,
        group: &CommGroup,
        tag: u64,
        data: &[f32],
    ) -> Result<(usize, Vec<f32>), CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let m = group.size();
        let mut scratch = data.to_vec();
        if m > 1 && !data.is_empty() {
            self.reduce_scatter_in_place(group, idx, tag, &mut scratch)?;
        }
        // reduce_scatter_in_place leaves rank idx owning chunk (idx+1)%m;
        // rotate ownership so the public contract is "rank idx owns chunk idx",
        // which costs one extra hop only when m > 1.
        let owned = (idx + 1) % m;
        let (os, oe) = chunk_range(data.len(), m, owned);
        let owned_data = scratch[os..oe].to_vec();
        if m == 1 {
            return Ok((0, owned_data));
        }
        // Send the chunk we hold to the rank that should own it and receive
        // ours from the rank holding it.
        let holder_of_mine = (idx + m - 1) % m; // that rank reduced chunk idx
        let dest = group.ranks()[owned]; // we reduced chunk `owned`
        let src = group.ranks()[holder_of_mine];
        let t = Self::subop_tag(tag, 2);
        self.send(dest, t, owned_data)?;
        let mine = self.recv_f32(src, t)?;
        let (ms, _) = chunk_range(data.len(), m, idx);
        Ok((ms, mine))
    }

    /// All-gather: each member contributes `chunk`; returns the
    /// concatenation ordered by group index. Chunks may have different
    /// lengths (implemented as a ring of variable-size hops).
    pub fn all_gather_varsize(
        &mut self,
        group: &CommGroup,
        tag: u64,
        chunk: Vec<f32>,
    ) -> Result<Vec<Vec<f32>>, CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let m = group.size();
        let mut parts: Vec<Option<Vec<f32>>> = vec![None; m];
        parts[idx] = Some(chunk);
        let next = group.ranks()[(idx + 1) % m];
        let prev = group.ranks()[(idx + m - 1) % m];
        for step in 0..m - 1 {
            let send_idx = (idx + m - step) % m;
            let recv_idx = (idx + m - step - 1) % m;
            let outgoing = parts[send_idx].clone().expect("ring invariant: chunk present");
            self.send(next, Self::step_tag(tag, step as u64), outgoing)?;
            let incoming = self.recv_f32(prev, Self::step_tag(tag, step as u64))?;
            parts[recv_idx] = Some(incoming);
        }
        Ok(parts.into_iter().map(|p| p.expect("all chunks gathered")).collect())
    }

    /// [`RankCtx::all_gather_varsize`] over raw fp16 bit patterns —
    /// half-width weight shards move 2 B/element on the wire, matching the
    /// fp16 working-weight accounting of the paper's cost model.
    pub fn all_gather_varsize_f16(
        &mut self,
        group: &CommGroup,
        tag: u64,
        chunk: Vec<u16>,
    ) -> Result<Vec<Vec<u16>>, CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let m = group.size();
        let mut parts: Vec<Option<Vec<u16>>> = vec![None; m];
        parts[idx] = Some(chunk);
        let next = group.ranks()[(idx + 1) % m];
        let prev = group.ranks()[(idx + m - 1) % m];
        for step in 0..m - 1 {
            let send_idx = (idx + m - step) % m;
            let recv_idx = (idx + m - step - 1) % m;
            let outgoing = parts[send_idx].clone().expect("ring invariant: chunk present");
            self.send(next, Self::step_tag(tag, step as u64), outgoing)?;
            let incoming = self.recv_f16(prev, Self::step_tag(tag, step as u64))?;
            parts[recv_idx] = Some(incoming);
        }
        Ok(parts.into_iter().map(|p| p.expect("all chunks gathered")).collect())
    }

    /// Broadcast from the group member with global rank `root`.
    /// The root passes `Some(data)`; everyone receives the root's buffer.
    pub fn broadcast(
        &mut self,
        group: &CommGroup,
        root: usize,
        tag: u64,
        data: Option<Vec<f32>>,
    ) -> Result<Vec<f32>, CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let root_idx = group.index_of(root).ok_or(CommError::NotInGroup { rank: root })?;
        let m = group.size();
        // Binomial tree on indices rotated so the root is virtual index 0:
        // in round i, every active node v < 2^i sends to v + 2^i.
        let vidx = (idx + m - root_idx) % m;
        let to_global = |v: usize| group.ranks()[(v + root_idx) % m];
        let buf = if vidx == 0 {
            data.expect("broadcast root must supply data")
        } else {
            // First become active: receive from vidx with its highest bit
            // cleared, at round h = floor(log2(vidx)).
            let h = usize::BITS - 1 - vidx.leading_zeros();
            self.recv_f32(to_global(vidx - (1 << h)), tag)?
        };
        let mut bit = 1usize;
        while bit < m {
            if bit > vidx && vidx + bit < m {
                self.send(to_global(vidx + bit), tag, buf.clone())?;
            }
            bit <<= 1;
        }
        Ok(buf)
    }

    /// All-reduce (sum) of small `u64` counters via gather-to-root +
    /// broadcast. Used for the per-iteration expert-popularity aggregation
    /// (§3.4) whose tensors hold one element per expert class.
    pub fn allreduce_u64_sum(
        &mut self,
        group: &CommGroup,
        tag: u64,
        data: &mut [u64],
    ) -> Result<(), CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let m = group.size();
        if m == 1 {
            return Ok(());
        }
        let root = group.ranks()[0];
        if idx == 0 {
            for &peer in &group.ranks()[1..] {
                let contrib = self.recv_u64(peer, tag)?;
                debug_assert_eq!(contrib.len(), data.len());
                for (d, v) in data.iter_mut().zip(&contrib) {
                    *d += v;
                }
            }
            for &peer in &group.ranks()[1..] {
                self.send(peer, Self::subop_tag(tag, 3), data.to_vec())?;
            }
        } else {
            self.send(root, tag, data.to_vec())?;
            let summed = self.recv_u64(root, Self::subop_tag(tag, 3))?;
            data.copy_from_slice(&summed);
        }
        Ok(())
    }

    /// Gathers every member's buffer at `root` (ordered by group index);
    /// non-root members receive an empty vector.
    pub fn gather_f32(
        &mut self,
        group: &CommGroup,
        root: usize,
        tag: u64,
        data: Vec<f32>,
    ) -> Result<Vec<Vec<f32>>, CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let root_idx = group.index_of(root).ok_or(CommError::NotInGroup { rank: root })?;
        if idx != root_idx {
            self.send(root, Self::step_tag(tag, idx as u64), data)?;
            return Ok(Vec::new());
        }
        let mut out = Vec::with_capacity(group.size());
        for (j, &peer) in group.ranks().iter().enumerate() {
            if j == root_idx {
                out.push(data.clone());
            } else {
                out.push(self.recv_f32(peer, Self::step_tag(tag, j as u64))?);
            }
        }
        Ok(out)
    }

    /// Scatters per-member buffers from `root`: member `i` receives
    /// `bufs[i]`. Only the root passes `Some(bufs)`.
    pub fn scatterv_f32(
        &mut self,
        group: &CommGroup,
        root: usize,
        tag: u64,
        bufs: Option<Vec<Vec<f32>>>,
    ) -> Result<Vec<f32>, CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let root_idx = group.index_of(root).ok_or(CommError::NotInGroup { rank: root })?;
        if idx == root_idx {
            let mut bufs = bufs.expect("scatter root must supply buffers");
            assert_eq!(bufs.len(), group.size(), "one buffer per group member");
            let own = std::mem::take(&mut bufs[root_idx]);
            for (j, buf) in bufs.into_iter().enumerate() {
                if j != root_idx {
                    self.send(group.ranks()[j], Self::step_tag(tag, j as u64), buf)?;
                }
            }
            Ok(own)
        } else {
            self.recv_f32(root, Self::step_tag(tag, idx as u64))
        }
    }

    /// Variable-size all-to-all of `f32` buffers: member `i` of the group
    /// receives `sendbufs[i]` from every member (including its own, moved,
    /// not copied). `sendbufs.len()` must equal the group size.
    pub fn alltoallv_f32(
        &mut self,
        group: &CommGroup,
        tag: u64,
        mut sendbufs: Vec<Vec<f32>>,
    ) -> Result<Vec<Vec<f32>>, CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let m = group.size();
        assert_eq!(sendbufs.len(), m, "one send buffer per group member");
        let own = std::mem::take(&mut sendbufs[idx]);
        for (j, buf) in sendbufs.into_iter().enumerate() {
            if j != idx {
                self.send(group.ranks()[j], tag, buf)?;
            }
        }
        let mut out = Vec::with_capacity(m);
        for (j, &peer) in group.ranks().iter().enumerate() {
            if j == idx {
                out.push(own.clone());
            } else {
                out.push(self.recv_f32(peer, tag)?);
            }
        }
        Ok(out)
    }

    /// Variable-size all-to-all of `u64` metadata buffers.
    pub fn alltoallv_u64(
        &mut self,
        group: &CommGroup,
        tag: u64,
        mut sendbufs: Vec<Vec<u64>>,
    ) -> Result<Vec<Vec<u64>>, CommError> {
        let idx = group.index_of(self.rank()).ok_or(CommError::NotInGroup { rank: self.rank() })?;
        let m = group.size();
        assert_eq!(sendbufs.len(), m, "one send buffer per group member");
        let own = std::mem::take(&mut sendbufs[idx]);
        for (j, buf) in sendbufs.into_iter().enumerate() {
            if j != idx {
                self.send(group.ranks()[j], tag, buf)?;
            }
        }
        let mut out = Vec::with_capacity(m);
        for (j, &peer) in group.ranks().iter().enumerate() {
            if j == idx {
                out.push(own.clone());
            } else {
                out.push(self.recv_u64(peer, tag)?);
            }
        }
        Ok(out)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec};
    use crate::group::CommGroup;

    #[test]
    fn chunk_range_covers_exactly() {
        for (len, parts) in [(10usize, 3usize), (7, 7), (5, 8), (16, 4), (0, 3)] {
            let mut covered = 0;
            for i in 0..parts {
                let (s, e) = chunk_range(len, parts, i);
                assert_eq!(s, covered, "chunks must be contiguous");
                covered = e;
            }
            assert_eq!(covered, len);
        }
    }

    #[test]
    fn allreduce_sums_across_all_ranks() {
        for n in [2usize, 3, 4, 7, 16] {
            let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
                let group = ctx.groups().world();
                let mut data: Vec<f32> = (0..10).map(|i| (ctx.rank() * 10 + i) as f32).collect();
                ctx.allreduce_sum(&group, 42, &mut data).unwrap();
                data
            });
            let expect: Vec<f32> =
                (0..10).map(|i| (0..n).map(|r| (r * 10 + i) as f32).sum()).collect();
            for (r, res) in results.iter().enumerate() {
                for (a, b) in res.iter().zip(&expect) {
                    assert!((a - b).abs() < 1e-3, "n={n} rank={r}: {a} vs {b}");
                }
            }
        }
    }

    #[test]
    fn allreduce_on_subgroup_leaves_others_untouched() {
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            let group = ctx.groups().range(1, 2); // ranks 1,2
            let mut data = vec![ctx.rank() as f32; 4];
            if group.contains(ctx.rank()) {
                ctx.allreduce_sum(&group, 7, &mut data).unwrap();
            }
            data[0]
        });
        assert_eq!(results, vec![0.0, 3.0, 3.0, 3.0]);
    }

    #[test]
    fn allreduce_volume_matches_ring_formula() {
        // Ring all-reduce over m ranks moves 2(m-1)/m * L floats per rank.
        let n = 4;
        let len = 64usize;
        let (_, report) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let mut data = vec![1.0f32; len];
            ctx.allreduce_sum(&group, 3, &mut data).unwrap();
        });
        let expect = (n as u64) * 2 * (n as u64 - 1) / (n as u64) * (len as u64) * 4;
        assert_eq!(report.total_bytes(), expect);
    }

    #[test]
    fn reduce_scatter_returns_owned_chunk() {
        let n = 4;
        let len = 8;
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let data: Vec<f32> = (0..len).map(|i| (i + ctx.rank()) as f32).collect();
            ctx.reduce_scatter_sum(&group, 5, &data).unwrap()
        });
        for (rank, (offset, chunk)) in results.iter().enumerate() {
            let (s, e) = chunk_range(len, n, rank);
            assert_eq!(*offset, s);
            assert_eq!(chunk.len(), e - s);
            for (k, v) in chunk.iter().enumerate() {
                let i = s + k;
                let expect: f32 = (0..n).map(|r| (i + r) as f32).sum();
                assert!((v - expect).abs() < 1e-4, "rank {rank} pos {i}");
            }
        }
    }

    #[test]
    fn all_gather_varsize_concatenates_in_order() {
        let (results, _) = Cluster::run(ClusterSpec::flat(3), |ctx| {
            let group = ctx.groups().world();
            let chunk = vec![ctx.rank() as f32; ctx.rank() + 1];
            ctx.all_gather_varsize(&group, 8, chunk).unwrap()
        });
        for res in &results {
            assert_eq!(res[0], vec![0.0]);
            assert_eq!(res[1], vec![1.0, 1.0]);
            assert_eq!(res[2], vec![2.0, 2.0, 2.0]);
        }
    }

    #[test]
    fn broadcast_delivers_root_buffer() {
        for n in [1usize, 2, 3, 5, 8] {
            for root in [0usize, n - 1, n / 2] {
                let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
                    let group = ctx.groups().world();
                    let data = (ctx.rank() == root).then(|| vec![3.25f32, -1.0, root as f32]);
                    ctx.broadcast(&group, root, 11, data).unwrap()
                });
                for r in results {
                    assert_eq!(r, vec![3.25, -1.0, root as f32], "n={n} root={root}");
                }
            }
        }
    }

    #[test]
    fn broadcast_on_subgroup() {
        let (results, _) = Cluster::run(ClusterSpec::flat(5), |ctx| {
            let group = ctx.groups().range(2, 3); // ranks 2,3,4
            if group.contains(ctx.rank()) {
                let data = (ctx.rank() == 3).then(|| vec![7.0f32]);
                ctx.broadcast(&group, 3, 9, data).unwrap()[0]
            } else {
                -1.0
            }
        });
        assert_eq!(results, vec![-1.0, -1.0, 7.0, 7.0, 7.0]);
    }

    #[test]
    fn u64_allreduce_sums_popularity_counters() {
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            let group = ctx.groups().world();
            let mut counts = vec![ctx.rank() as u64, 1, 0];
            ctx.allreduce_u64_sum(&group, 13, &mut counts).unwrap();
            counts
        });
        for r in results {
            assert_eq!(r, vec![6, 4, 0]);
        }
    }

    #[test]
    fn alltoallv_routes_buffers() {
        let n = 3;
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            // Rank r sends [r*10 + j] to member j.
            let bufs: Vec<Vec<f32>> = (0..n).map(|j| vec![(ctx.rank() * 10 + j) as f32]).collect();
            ctx.alltoallv_f32(&group, 21, bufs).unwrap()
        });
        for (j, res) in results.iter().enumerate() {
            for (r, buf) in res.iter().enumerate() {
                assert_eq!(buf, &vec![(r * 10 + j) as f32], "dest {j} from {r}");
            }
        }
    }

    #[test]
    fn alltoallv_with_empty_buffers() {
        let (results, _) = Cluster::run(ClusterSpec::flat(3), |ctx| {
            let group = ctx.groups().world();
            // Only rank 0 sends anything, and only to rank 2.
            let bufs: Vec<Vec<f32>> = (0..3)
                .map(|j| if ctx.rank() == 0 && j == 2 { vec![5.0] } else { vec![] })
                .collect();
            ctx.alltoallv_f32(&group, 33, bufs).unwrap()
        });
        assert_eq!(results[2][0], vec![5.0]);
        assert!(results[0].iter().all(|b| b.is_empty()));
        assert!(results[1].iter().all(|b| b.is_empty()));
    }

    #[test]
    fn gather_collects_in_group_order() {
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            let group = ctx.groups().world();
            let data = vec![ctx.rank() as f32; ctx.rank() + 1];
            ctx.gather_f32(&group, 2, 17, data).unwrap()
        });
        assert!(results[0].is_empty() && results[1].is_empty() && results[3].is_empty());
        let at_root = &results[2];
        for (r, buf) in at_root.iter().enumerate() {
            assert_eq!(buf, &vec![r as f32; r + 1]);
        }
    }

    #[test]
    fn scatter_delivers_per_member_buffers() {
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            let group = ctx.groups().world();
            let bufs = (ctx.rank() == 1)
                .then(|| (0..4).map(|j| vec![j as f32 * 10.0]).collect::<Vec<_>>());
            ctx.scatterv_f32(&group, 1, 19, bufs).unwrap()
        });
        for (r, buf) in results.iter().enumerate() {
            assert_eq!(buf, &vec![r as f32 * 10.0]);
        }
    }

    #[test]
    fn gather_then_scatter_round_trips() {
        let (results, _) = Cluster::run(ClusterSpec::flat(3), |ctx| {
            let group = ctx.groups().world();
            let mine = vec![ctx.rank() as f32 + 0.5];
            let gathered = ctx.gather_f32(&group, 0, 23, mine.clone()).unwrap();
            let bufs = (ctx.rank() == 0).then_some(gathered);
            ctx.scatterv_f32(&group, 0, 29, bufs).unwrap()
        });
        for (r, buf) in results.iter().enumerate() {
            assert_eq!(buf, &vec![r as f32 + 0.5], "round trip must be identity");
        }
    }

    #[test]
    fn non_member_gets_error() {
        let (results, _) = Cluster::run(ClusterSpec::flat(3), |ctx| {
            let group = CommGroup::range(0, 2);
            let mut data = vec![0.0f32];
            ctx.allreduce_sum(&group, 1, &mut data).is_err()
        });
        assert_eq!(results, vec![false, false, true]);
    }
}
