//! Message payloads carried between ranks.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer (internal stand-in for the
/// `bytes` crate: the collectives only need shared ownership + length).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

/// A typed payload. Collectives carrying tensor data use [`Payload::F32`];
/// fp16-quantized weight shards travel as [`Payload::F16`] (raw half bits,
/// 2 B/element on the wire — the width `adam.rs` documents for working
/// weights); routing metadata (token→expert assignments, popularity counts)
/// as [`Payload::U64`]; opaque blobs as [`Payload::Raw`].
#[derive(Debug, Clone)]
pub enum Payload {
    F32(Vec<f32>),
    F16(Vec<u16>),
    U64(Vec<u64>),
    Raw(Bytes),
}

impl Payload {
    /// Wire size in bytes, used for traffic accounting.
    pub fn byte_len(&self) -> u64 {
        match self {
            Payload::F32(v) => (v.len() * 4) as u64,
            Payload::F16(v) => (v.len() * 2) as u64,
            Payload::U64(v) => (v.len() * 8) as u64,
            Payload::Raw(b) => b.len() as u64,
        }
    }

    /// Element count regardless of width — what wire-level length
    /// validation compares against a receive's expected count.
    pub fn elements(&self) -> usize {
        match self {
            Payload::F32(v) => v.len(),
            Payload::F16(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::Raw(b) => b.len(),
        }
    }

    pub fn variant_name(&self) -> &'static str {
        match self {
            Payload::F32(_) => "F32",
            Payload::F16(_) => "F16",
            Payload::U64(_) => "U64",
            Payload::Raw(_) => "Raw",
        }
    }

    /// Extracts the `F32` payload.
    pub fn into_f32(self) -> Result<Vec<f32>, crate::CommError> {
        match self {
            Payload::F32(v) => Ok(v),
            other => Err(crate::CommError::PayloadMismatch {
                expected: "F32",
                got: other.variant_name(),
            }),
        }
    }

    /// Extracts the `F16` payload (raw half-precision bit patterns).
    pub fn into_f16(self) -> Result<Vec<u16>, crate::CommError> {
        match self {
            Payload::F16(v) => Ok(v),
            other => Err(crate::CommError::PayloadMismatch {
                expected: "F16",
                got: other.variant_name(),
            }),
        }
    }

    /// Extracts the `U64` payload.
    pub fn into_u64(self) -> Result<Vec<u64>, crate::CommError> {
        match self {
            Payload::U64(v) => Ok(v),
            other => Err(crate::CommError::PayloadMismatch {
                expected: "U64",
                got: other.variant_name(),
            }),
        }
    }

    /// Extracts the `Raw` payload.
    pub fn into_raw(self) -> Result<Bytes, crate::CommError> {
        match self {
            Payload::Raw(b) => Ok(b),
            other => Err(crate::CommError::PayloadMismatch {
                expected: "Raw",
                got: other.variant_name(),
            }),
        }
    }
}

/// Elements per worker share below which fp16 conversion stays sequential
/// (the conversion is ~1 ns/element; smaller chunks don't amortize a wake).
const MIN_F16_ELEMS_PER_SHARE: usize = 16 * 1024;

/// Narrows an fp32 buffer to IEEE binary16 wire format (round-to-nearest-
/// even), converting disjoint chunks in parallel on the shared worker pool.
/// Chunking is element-wise, so the result is identical for any worker
/// count.
pub fn encode_f16(src: &[f32]) -> Vec<u16> {
    let mut dst = vec![0u16; src.len()];
    symi_tensor::pool::par_convert(src, &mut dst, MIN_F16_ELEMS_PER_SHARE, |s, d| {
        for (h, &w) in d.iter_mut().zip(s) {
            *h = symi_tensor::adam::f32_to_f16(w);
        }
    });
    dst
}

/// Widens fp16 wire data back to fp32 into `dst` (exact — every binary16
/// value is representable in f32), in parallel chunks on the shared pool.
///
/// # Panics
/// Panics if `src` and `dst` lengths differ.
pub fn decode_f16_into(src: &[u16], dst: &mut [f32]) {
    symi_tensor::pool::par_convert(src, dst, MIN_F16_ELEMS_PER_SHARE, |s, d| {
        for (w, &h) in d.iter_mut().zip(s) {
            *w = symi_tensor::adam::f16_to_f32(h);
        }
    });
}

impl From<Vec<f32>> for Payload {
    fn from(v: Vec<f32>) -> Self {
        Payload::F32(v)
    }
}

impl From<Vec<u16>> for Payload {
    fn from(v: Vec<u16>) -> Self {
        Payload::F16(v)
    }
}

impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload::Raw(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_len_accounts_element_width() {
        assert_eq!(Payload::F32(vec![0.0; 10]).byte_len(), 40);
        assert_eq!(Payload::F16(vec![0; 10]).byte_len(), 20, "fp16 is 2 B/param on the wire");
        assert_eq!(Payload::U64(vec![0; 10]).byte_len(), 80);
        assert_eq!(Payload::Raw(Bytes::from_static(b"abc")).byte_len(), 3);
    }

    #[test]
    fn elements_ignore_width() {
        assert_eq!(Payload::F32(vec![0.0; 7]).elements(), 7);
        assert_eq!(Payload::F16(vec![0; 7]).elements(), 7);
        assert_eq!(Payload::U64(vec![0; 7]).elements(), 7);
    }

    #[test]
    fn wrong_variant_is_an_error() {
        let p = Payload::U64(vec![1, 2]);
        assert!(p.into_f32().is_err());
    }

    #[test]
    fn round_trip_preserves_data() {
        let v = vec![1.5f32, -2.5];
        assert_eq!(Payload::from(v.clone()).into_f32().unwrap(), v);
    }

    #[test]
    fn f16_helpers_match_scalar_conversion() {
        // Large enough to split across pool shares.
        let src: Vec<f32> = (0..40_000).map(|i| (i as f32 * 0.37).sin() * 3.0).collect();
        let enc = encode_f16(&src);
        let expect: Vec<u16> = src.iter().map(|&w| symi_tensor::adam::f32_to_f16(w)).collect();
        assert_eq!(enc, expect);

        let mut dec = vec![0.0f32; enc.len()];
        decode_f16_into(&enc, &mut dec);
        let expect: Vec<f32> = enc.iter().map(|&h| symi_tensor::adam::f16_to_f32(h)).collect();
        assert_eq!(dec, expect);
    }

    #[test]
    fn f16_encode_is_worker_count_invariant() {
        let src: Vec<f32> = (0..70_000).map(|i| ((i * 7) as f32 * 0.013).cos()).collect();
        let before = symi_tensor::pool::current_threads();
        symi_tensor::pool::set_threads(1);
        let one = encode_f16(&src);
        symi_tensor::pool::set_threads(4);
        let four = encode_f16(&src);
        symi_tensor::pool::set_threads(before);
        assert_eq!(one, four);
    }
}
