//! Message payloads carried between ranks.

use std::ops::Deref;
use std::sync::Arc;

/// Cheaply-cloneable immutable byte buffer (internal stand-in for the
/// `bytes` crate: the collectives only need shared ownership + length).
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct Bytes(Arc<[u8]>);

impl Bytes {
    pub fn from_static(data: &'static [u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn copy_from_slice(data: &[u8]) -> Self {
        Bytes(Arc::from(data))
    }

    pub fn len(&self) -> usize {
        self.0.len()
    }

    pub fn is_empty(&self) -> bool {
        self.0.is_empty()
    }
}

impl Deref for Bytes {
    type Target = [u8];
    fn deref(&self) -> &[u8] {
        &self.0
    }
}

impl From<Vec<u8>> for Bytes {
    fn from(v: Vec<u8>) -> Self {
        Bytes(Arc::from(v))
    }
}

impl From<&[u8]> for Bytes {
    fn from(v: &[u8]) -> Self {
        Bytes(Arc::from(v))
    }
}

/// A typed payload. Collectives carrying tensor data use [`Payload::F32`];
/// fp16-quantized weight shards travel as [`Payload::F16`] (raw half bits,
/// 2 B/element on the wire — the width `adam.rs` documents for working
/// weights); routing metadata (token→expert assignments, popularity counts)
/// as [`Payload::U64`]; opaque blobs as [`Payload::Raw`].
#[derive(Debug, Clone)]
pub enum Payload {
    F32(Vec<f32>),
    F16(Vec<u16>),
    U64(Vec<u64>),
    Raw(Bytes),
}

impl Payload {
    /// Wire size in bytes, used for traffic accounting.
    pub fn byte_len(&self) -> u64 {
        match self {
            Payload::F32(v) => (v.len() * 4) as u64,
            Payload::F16(v) => (v.len() * 2) as u64,
            Payload::U64(v) => (v.len() * 8) as u64,
            Payload::Raw(b) => b.len() as u64,
        }
    }

    /// Element count regardless of width — what wire-level length
    /// validation compares against a receive's expected count.
    pub fn elements(&self) -> usize {
        match self {
            Payload::F32(v) => v.len(),
            Payload::F16(v) => v.len(),
            Payload::U64(v) => v.len(),
            Payload::Raw(b) => b.len(),
        }
    }

    pub fn variant_name(&self) -> &'static str {
        match self {
            Payload::F32(_) => "F32",
            Payload::F16(_) => "F16",
            Payload::U64(_) => "U64",
            Payload::Raw(_) => "Raw",
        }
    }

    /// Extracts the `F32` payload.
    pub fn into_f32(self) -> Result<Vec<f32>, crate::CommError> {
        match self {
            Payload::F32(v) => Ok(v),
            other => Err(crate::CommError::PayloadMismatch {
                expected: "F32",
                got: other.variant_name(),
            }),
        }
    }

    /// Extracts the `F16` payload (raw half-precision bit patterns).
    pub fn into_f16(self) -> Result<Vec<u16>, crate::CommError> {
        match self {
            Payload::F16(v) => Ok(v),
            other => Err(crate::CommError::PayloadMismatch {
                expected: "F16",
                got: other.variant_name(),
            }),
        }
    }

    /// Extracts the `U64` payload.
    pub fn into_u64(self) -> Result<Vec<u64>, crate::CommError> {
        match self {
            Payload::U64(v) => Ok(v),
            other => Err(crate::CommError::PayloadMismatch {
                expected: "U64",
                got: other.variant_name(),
            }),
        }
    }

    /// Extracts the `Raw` payload.
    pub fn into_raw(self) -> Result<Bytes, crate::CommError> {
        match self {
            Payload::Raw(b) => Ok(b),
            other => Err(crate::CommError::PayloadMismatch {
                expected: "Raw",
                got: other.variant_name(),
            }),
        }
    }
}

impl From<Vec<f32>> for Payload {
    fn from(v: Vec<f32>) -> Self {
        Payload::F32(v)
    }
}

impl From<Vec<u16>> for Payload {
    fn from(v: Vec<u16>) -> Self {
        Payload::F16(v)
    }
}

impl From<Vec<u64>> for Payload {
    fn from(v: Vec<u64>) -> Self {
        Payload::U64(v)
    }
}

impl From<Bytes> for Payload {
    fn from(b: Bytes) -> Self {
        Payload::Raw(b)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn byte_len_accounts_element_width() {
        assert_eq!(Payload::F32(vec![0.0; 10]).byte_len(), 40);
        assert_eq!(Payload::F16(vec![0; 10]).byte_len(), 20, "fp16 is 2 B/param on the wire");
        assert_eq!(Payload::U64(vec![0; 10]).byte_len(), 80);
        assert_eq!(Payload::Raw(Bytes::from_static(b"abc")).byte_len(), 3);
    }

    #[test]
    fn elements_ignore_width() {
        assert_eq!(Payload::F32(vec![0.0; 7]).elements(), 7);
        assert_eq!(Payload::F16(vec![0; 7]).elements(), 7);
        assert_eq!(Payload::U64(vec![0; 7]).elements(), 7);
    }

    #[test]
    fn wrong_variant_is_an_error() {
        let p = Payload::U64(vec![1, 2]);
        assert!(p.into_f32().is_err());
    }

    #[test]
    fn round_trip_preserves_data() {
        let v = vec![1.5f32, -2.5];
        assert_eq!(Payload::from(v.clone()).into_f32().unwrap(), v);
    }
}
