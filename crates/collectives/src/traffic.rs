//! Per-link-class traffic accounting with per-phase attribution.
//!
//! Every byte a rank sends is attributed to a [`LinkClass`] based on whether
//! the destination rank lives on the same node, *and* to the telemetry phase
//! active on the sending thread (see `symi_telemetry::current_phase`) — so a
//! dispatch all-to-all and a weight-distribution transfer of the same size
//! are distinguishable in the `IterationReport`. `symi-netsim` prices these
//! counters with the paper's bandwidth parameters; the counters are also how
//! the test suite verifies the paper's data-volume identities (e.g.
//! `D_G = sNG` for both SYMI and the static baseline, §3.3-II).

use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use symi_telemetry::{current_phase, Phase, NUM_LINK_CLASSES, NUM_PHASES};

// Canonical definition lives in symi-telemetry (the bottom of the workspace
// graph); re-exported here so existing imports keep working.
pub use symi_telemetry::LinkClass;

/// Shared, thread-safe traffic counters for one cluster execution.
#[derive(Debug, Default)]
pub struct TrafficStats {
    intra_bytes: AtomicU64,
    inter_bytes: AtomicU64,
    host_dev_bytes: AtomicU64,
    intra_msgs: AtomicU64,
    inter_msgs: AtomicU64,
    /// `phase_bytes[phase][class]`, attributed via the sender thread's
    /// active telemetry span.
    phase_bytes: [[AtomicU64; NUM_LINK_CLASSES]; NUM_PHASES],
    per_rank_sent: Mutex<Vec<u64>>,
    per_rank_recv: Mutex<Vec<u64>>,
}

impl TrafficStats {
    pub fn new(ranks: usize) -> Arc<Self> {
        Arc::new(Self {
            per_rank_sent: Mutex::new(vec![0; ranks]),
            per_rank_recv: Mutex::new(vec![0; ranks]),
            ..Default::default()
        })
    }

    #[inline]
    fn attribute(&self, class: LinkClass, bytes: u64) {
        self.phase_bytes[current_phase().index()][class.index()]
            .fetch_add(bytes, Ordering::Relaxed);
    }

    /// Records a point-to-point transfer of `bytes` from `from` to `to`.
    pub fn record(&self, class: LinkClass, from: usize, to: usize, bytes: u64) {
        match class {
            LinkClass::IntraNode => {
                self.intra_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.intra_msgs.fetch_add(1, Ordering::Relaxed);
            }
            LinkClass::InterNode => {
                self.inter_bytes.fetch_add(bytes, Ordering::Relaxed);
                self.inter_msgs.fetch_add(1, Ordering::Relaxed);
            }
            LinkClass::HostDevice => {
                self.host_dev_bytes.fetch_add(bytes, Ordering::Relaxed);
            }
        }
        self.attribute(class, bytes);
        self.per_rank_sent.lock().expect("traffic poisoned")[from] += bytes;
        self.per_rank_recv.lock().expect("traffic poisoned")[to] += bytes;
    }

    /// Records a host↔device staging transfer on `rank` (optimizer offload
    /// traffic; does not involve a peer).
    pub fn record_host_device(&self, rank: usize, bytes: u64) {
        self.host_dev_bytes.fetch_add(bytes, Ordering::Relaxed);
        self.attribute(LinkClass::HostDevice, bytes);
        self.per_rank_sent.lock().expect("traffic poisoned")[rank] += bytes;
    }

    fn phase_bytes_snapshot(&self) -> [[u64; NUM_LINK_CLASSES]; NUM_PHASES] {
        std::array::from_fn(|p| {
            std::array::from_fn(|c| self.phase_bytes[p][c].load(Ordering::Relaxed))
        })
    }

    /// Snapshot and reset only the per-phase attribution matrix — what the
    /// engines drain once per iteration to fill `IterationReport`.
    pub fn drain_phase_bytes(&self) -> [[u64; NUM_LINK_CLASSES]; NUM_PHASES] {
        std::array::from_fn(|p| {
            std::array::from_fn(|c| self.phase_bytes[p][c].swap(0, Ordering::Relaxed))
        })
    }

    /// Snapshot of the counters.
    pub fn report(&self) -> TrafficReport {
        TrafficReport {
            intra_node_bytes: self.intra_bytes.load(Ordering::Relaxed),
            inter_node_bytes: self.inter_bytes.load(Ordering::Relaxed),
            host_device_bytes: self.host_dev_bytes.load(Ordering::Relaxed),
            intra_node_msgs: self.intra_msgs.load(Ordering::Relaxed),
            inter_node_msgs: self.inter_msgs.load(Ordering::Relaxed),
            phase_bytes: self.phase_bytes_snapshot(),
            per_rank_sent_bytes: self.per_rank_sent.lock().expect("traffic poisoned").clone(),
            per_rank_recv_bytes: self.per_rank_recv.lock().expect("traffic poisoned").clone(),
        }
    }

    /// Resets all counters (used between measured phases).
    pub fn reset(&self) {
        self.intra_bytes.store(0, Ordering::Relaxed);
        self.inter_bytes.store(0, Ordering::Relaxed);
        self.host_dev_bytes.store(0, Ordering::Relaxed);
        self.intra_msgs.store(0, Ordering::Relaxed);
        self.inter_msgs.store(0, Ordering::Relaxed);
        for row in &self.phase_bytes {
            for cell in row {
                cell.store(0, Ordering::Relaxed);
            }
        }
        self.per_rank_sent.lock().expect("traffic poisoned").iter_mut().for_each(|v| *v = 0);
        self.per_rank_recv.lock().expect("traffic poisoned").iter_mut().for_each(|v| *v = 0);
    }
}

/// Immutable snapshot of traffic counters.
#[derive(Clone, Debug, Default, PartialEq)]
pub struct TrafficReport {
    pub intra_node_bytes: u64,
    pub inter_node_bytes: u64,
    pub host_device_bytes: u64,
    pub intra_node_msgs: u64,
    pub inter_node_msgs: u64,
    /// `phase_bytes[phase][class]` as attributed by active telemetry spans.
    /// Bytes recorded outside any span land in `Phase::Other`.
    pub phase_bytes: [[u64; NUM_LINK_CLASSES]; NUM_PHASES],
    pub per_rank_sent_bytes: Vec<u64>,
    pub per_rank_recv_bytes: Vec<u64>,
}

impl TrafficReport {
    /// Total bytes moved over any link.
    pub fn total_bytes(&self) -> u64 {
        self.intra_node_bytes + self.inter_node_bytes + self.host_device_bytes
    }

    /// Bytes attributed to one phase, summed over link classes.
    pub fn bytes_in_phase(&self, phase: Phase) -> u64 {
        self.phase_bytes[phase.index()].iter().sum()
    }

    /// Maximum bytes sent by any single rank — a hotspot indicator used by
    /// the gradient-collection load-balance ablation (§4.3).
    pub fn max_rank_sent(&self) -> u64 {
        self.per_rank_sent_bytes.iter().copied().max().unwrap_or(0)
    }

    /// Ratio of the busiest sender to the mean sender (1.0 = perfectly
    /// balanced).
    pub fn send_imbalance(&self) -> f64 {
        let n = self.per_rank_sent_bytes.len();
        if n == 0 {
            return 1.0;
        }
        let total: u64 = self.per_rank_sent_bytes.iter().sum();
        if total == 0 {
            return 1.0;
        }
        self.max_rank_sent() as f64 / (total as f64 / n as f64)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use symi_telemetry::ScopedTimer;

    #[test]
    fn record_splits_by_class() {
        let t = TrafficStats::new(4);
        t.record(LinkClass::IntraNode, 0, 1, 100);
        t.record(LinkClass::InterNode, 1, 2, 250);
        t.record_host_device(3, 42);
        let r = t.report();
        assert_eq!(r.intra_node_bytes, 100);
        assert_eq!(r.inter_node_bytes, 250);
        assert_eq!(r.host_device_bytes, 42);
        assert_eq!(r.total_bytes(), 392);
        assert_eq!(r.per_rank_sent_bytes, vec![100, 250, 0, 42]);
        assert_eq!(r.per_rank_recv_bytes, vec![0, 100, 250, 0]);
    }

    #[test]
    fn imbalance_of_uniform_traffic_is_one() {
        let t = TrafficStats::new(4);
        for r in 0..4 {
            t.record(LinkClass::InterNode, r, (r + 1) % 4, 10);
        }
        assert!((t.report().send_imbalance() - 1.0).abs() < 1e-9);
    }

    #[test]
    fn reset_clears_everything() {
        let t = TrafficStats::new(2);
        t.record(LinkClass::InterNode, 0, 1, 99);
        t.reset();
        assert_eq!(t.report().total_bytes(), 0);
        assert_eq!(t.report().per_rank_sent_bytes, vec![0, 0]);
        assert_eq!(t.report().bytes_in_phase(Phase::Other), 0);
    }

    #[test]
    fn bytes_attribute_to_active_phase() {
        let t = TrafficStats::new(2);
        t.record(LinkClass::InterNode, 0, 1, 10); // no span -> Other
        {
            let _span = ScopedTimer::marker(Phase::Dispatch);
            t.record(LinkClass::InterNode, 0, 1, 100);
            t.record(LinkClass::IntraNode, 0, 1, 7);
        }
        {
            let _span = ScopedTimer::marker(Phase::WeightComm);
            t.record_host_device(1, 1000);
        }
        let r = t.report();
        assert_eq!(r.bytes_in_phase(Phase::Other), 10);
        assert_eq!(r.bytes_in_phase(Phase::Dispatch), 107);
        assert_eq!(r.phase_bytes[Phase::Dispatch.index()][LinkClass::InterNode.index()], 100);
        assert_eq!(r.phase_bytes[Phase::WeightComm.index()][LinkClass::HostDevice.index()], 1000);
        // Drain returns the matrix and zeroes it; aggregate counters stay.
        let drained = t.drain_phase_bytes();
        assert_eq!(drained[Phase::Dispatch.index()][LinkClass::IntraNode.index()], 7);
        assert_eq!(t.report().bytes_in_phase(Phase::Dispatch), 0);
        assert_eq!(t.report().total_bytes(), 1117);
    }
}
