//! Communicator groups and the contiguous-range registry of §4.2.
//!
//! NCCL requires collectives to run over explicitly constructed communicator
//! groups, and constructing one is a blocking, cluster-wide operation — the
//! paper cites >1000 s for N=2048. Because SYMI's placement scheduler assigns
//! each expert's replicas to *consecutive* ranks (Algorithm 1), only
//! contiguous rank ranges can ever be needed, and there are just
//! `N(N−1)/2 + N` of those. [`GroupRegistry::contiguous`] registers them
//! **lazily**: a range is materialized and cached on first lookup, so
//! per-iteration re-grouping still costs a map hit, startup no longer pays
//! the quadratic sweep, and — crucially for elasticity — the registry's
//! world bound can *grow* when a membership epoch admits a joiner
//! ([`GroupRegistry::register_epoch`]), instead of being frozen at
//! construction.

use std::collections::HashMap;
use std::sync::atomic::{AtomicUsize, Ordering};
use std::sync::{Arc, Mutex};

/// An ordered set of ranks participating in a collective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommGroup {
    ranks: Vec<usize>,
}

impl CommGroup {
    /// A group over an explicit rank list (must be non-empty, sorted,
    /// duplicate-free).
    pub fn new(ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty(), "empty communicator group");
        assert!(ranks.windows(2).all(|w| w[0] < w[1]), "ranks must be sorted and unique");
        Self { ranks }
    }

    /// Contiguous range `[start, start + len)`.
    pub fn range(start: usize, len: usize) -> Self {
        Self::new((start..start + len).collect())
    }

    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Position of `rank` inside the group, if a member.
    pub fn index_of(&self, rank: usize) -> Option<usize> {
        self.ranks.binary_search(&rank).ok()
    }

    pub fn contains(&self, rank: usize) -> bool {
        self.index_of(rank).is_some()
    }

    /// Whether the group is a contiguous rank range.
    pub fn is_contiguous(&self) -> bool {
        self.ranks.windows(2).all(|w| w[1] == w[0] + 1)
    }
}

/// Lazily registered communicator groups for contiguous rank ranges, with
/// a world bound that can grow across membership epochs.
///
/// Shared read-mostly across every rank thread (each holds it through an
/// `Arc`), so lookups go through a mutex-guarded cache — one uncontended
/// lock plus a map hit, versus NCCL's cluster-wide construction round.
#[derive(Debug)]
pub struct GroupRegistry {
    /// Current world bound: the largest world any registered epoch has
    /// declared. Monotone — a shrink never invalidates smaller ranges.
    world: AtomicUsize,
    /// Materialized ranges, keyed by `(start, len)`.
    cache: Mutex<HashMap<(usize, usize), Arc<CommGroup>>>,
    /// Membership epochs whose world bound has been registered, as
    /// `(epoch, world)` in registration order.
    epochs: Mutex<Vec<(u64, usize)>>,
}

impl GroupRegistry {
    /// A registry bounded by a world of `n` ranks (epoch 0). Ranges are
    /// materialized on first lookup, not here.
    pub fn contiguous(n: usize) -> Self {
        Self {
            world: AtomicUsize::new(n),
            cache: Mutex::new(HashMap::new()),
            epochs: Mutex::new(vec![(0, n)]),
        }
    }

    /// Declares the world bound of a membership `epoch`, growing the
    /// registry's bound if the epoch's world is larger (a join) and
    /// leaving it in place otherwise (a shrink — smaller ranges stay
    /// valid, and stale larger lookups are fenced by the caller's view,
    /// not the registry). Idempotent per epoch; safe from every rank
    /// concurrently.
    pub fn register_epoch(&self, epoch: u64, world: usize) {
        self.world.fetch_max(world, Ordering::SeqCst);
        let mut epochs = self.epochs.lock().expect("registry lock");
        if !epochs.iter().any(|&(e, _)| e == epoch) {
            epochs.push((epoch, world));
        }
    }

    /// The world bound a registered membership epoch declared, if any.
    pub fn world_of_epoch(&self, epoch: u64) -> Option<usize> {
        self.epochs
            .lock()
            .expect("registry lock")
            .iter()
            .find(|&&(e, _)| e == epoch)
            .map(|&(_, w)| w)
    }

    /// Number of ranges materialized so far (grows on demand; a full sweep
    /// of a `n`-rank world tops out at `n(n+1)/2`).
    pub fn count(&self) -> usize {
        self.cache.lock().expect("registry lock").len()
    }

    /// Looks up the group `[start, start + len)`, materializing and
    /// caching it on first use.
    pub fn range(&self, start: usize, len: usize) -> Arc<CommGroup> {
        let world = self.world.load(Ordering::SeqCst);
        assert!(
            len >= 1 && start + len <= world,
            "range [{start}, {}) out of world {world}",
            start + len,
        );
        let mut cache = self.cache.lock().expect("registry lock");
        Arc::clone(
            cache.entry((start, len)).or_insert_with(|| Arc::new(CommGroup::range(start, len))),
        )
    }

    /// The all-ranks group over the current world bound.
    pub fn world(&self) -> Arc<CommGroup> {
        self.range(0, self.world.load(Ordering::SeqCst))
    }

    pub fn world_size(&self) -> usize {
        self.world.load(Ordering::SeqCst)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_materializes_lazily_and_dedups_to_the_triangular_count() {
        // Construction registers nothing; a full sweep materializes the
        // n singletons + n(n-1)/2 longer ranges = n(n+1)/2 total, and a
        // second sweep hits the cache without growing it.
        for n in [1usize, 2, 5, 16] {
            let reg = GroupRegistry::contiguous(n);
            assert_eq!(reg.count(), 0, "n = {n}: construction is lazy");
            for _ in 0..2 {
                for start in 0..n {
                    for len in 1..=(n - start) {
                        assert_eq!(reg.range(start, len).ranks().len(), len);
                    }
                }
                assert_eq!(reg.count(), n * (n + 1) / 2, "n = {n}");
            }
        }
    }

    #[test]
    fn post_shrink_lookups_still_resolve() {
        // After a shrink (epoch 1, world 3 of an initial 4) every range of
        // the smaller world must keep resolving — nothing is invalidated.
        let reg = GroupRegistry::contiguous(4);
        reg.register_epoch(1, 3);
        assert_eq!(reg.range(0, 3).ranks(), &[0, 1, 2]);
        assert_eq!(reg.range(1, 2).ranks(), &[1, 2]);
        assert_eq!(reg.world_size(), 4, "a shrink never lowers the bound");
        assert_eq!(reg.world_of_epoch(1), Some(3));
    }

    #[test]
    fn post_join_epoch_grows_the_world_bound() {
        // A join grows the world: ranges covering the new rank resolve
        // only after the grown epoch is registered.
        let reg = GroupRegistry::contiguous(3);
        let out_of_bound = std::panic::catch_unwind(std::panic::AssertUnwindSafe(|| {
            reg.range(2, 2);
        }));
        assert!(out_of_bound.is_err(), "the joiner's range must not resolve before the epoch");
        reg.register_epoch(1, 4);
        assert_eq!(reg.range(2, 2).ranks(), &[2, 3]);
        assert_eq!(reg.range(3, 1).ranks(), &[3]);
        assert_eq!(reg.world().size(), 4);
        assert_eq!(reg.world_of_epoch(1), Some(4));
        // Idempotent re-registration (every rank registers the epoch).
        reg.register_epoch(1, 4);
        assert_eq!(reg.world_of_epoch(1), Some(4));
    }

    #[test]
    fn range_lookup_matches_construction() {
        let reg = GroupRegistry::contiguous(8);
        let g = reg.range(2, 3);
        assert_eq!(g.ranks(), &[2, 3, 4]);
        assert!(g.is_contiguous());
    }

    #[test]
    fn world_covers_all_ranks() {
        let reg = GroupRegistry::contiguous(4);
        assert_eq!(reg.world().size(), 4);
    }

    #[test]
    fn index_of_finds_members_only() {
        let g = CommGroup::range(3, 4); // ranks 3,4,5,6
        assert_eq!(g.index_of(5), Some(2));
        assert_eq!(g.index_of(7), None);
        assert!(g.contains(3));
        assert!(!g.contains(0));
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn unsorted_group_rejected() {
        let _ = CommGroup::new(vec![3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of world")]
    fn out_of_range_lookup_panics() {
        let reg = GroupRegistry::contiguous(4);
        let _ = reg.range(2, 3);
    }

    #[test]
    fn non_contiguous_group_is_detectable() {
        let g = CommGroup::new(vec![0, 2, 4]);
        assert!(!g.is_contiguous());
    }
}
