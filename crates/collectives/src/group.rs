//! Communicator groups and the contiguous-range registry of §4.2.
//!
//! NCCL requires collectives to run over explicitly constructed communicator
//! groups, and constructing one is a blocking, cluster-wide operation — the
//! paper cites >1000 s for N=2048. Because SYMI's placement scheduler assigns
//! each expert's replicas to *consecutive* ranks (Algorithm 1), only
//! contiguous rank ranges can ever be needed, and there are just
//! `N(N−1)/2 + N` of those. [`GroupRegistry::contiguous`] pre-registers all
//! of them at startup so that per-iteration re-grouping costs nothing.

use std::sync::Arc;

/// An ordered set of ranks participating in a collective.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct CommGroup {
    ranks: Vec<usize>,
}

impl CommGroup {
    /// A group over an explicit rank list (must be non-empty, sorted,
    /// duplicate-free).
    pub fn new(ranks: Vec<usize>) -> Self {
        assert!(!ranks.is_empty(), "empty communicator group");
        assert!(ranks.windows(2).all(|w| w[0] < w[1]), "ranks must be sorted and unique");
        Self { ranks }
    }

    /// Contiguous range `[start, start + len)`.
    pub fn range(start: usize, len: usize) -> Self {
        Self::new((start..start + len).collect())
    }

    pub fn size(&self) -> usize {
        self.ranks.len()
    }

    pub fn ranks(&self) -> &[usize] {
        &self.ranks
    }

    /// Position of `rank` inside the group, if a member.
    pub fn index_of(&self, rank: usize) -> Option<usize> {
        self.ranks.binary_search(&rank).ok()
    }

    pub fn contains(&self, rank: usize) -> bool {
        self.index_of(rank).is_some()
    }

    /// Whether the group is a contiguous rank range.
    pub fn is_contiguous(&self) -> bool {
        self.ranks.windows(2).all(|w| w[1] == w[0] + 1)
    }
}

/// Pre-registered communicator groups for all contiguous rank ranges.
#[derive(Debug)]
pub struct GroupRegistry {
    world: usize,
    /// `groups[start]` holds ranges starting at `start`, indexed by `len-1`.
    groups: Vec<Vec<Arc<CommGroup>>>,
}

impl GroupRegistry {
    /// Registers every contiguous range within a world of `n` ranks:
    /// `n` singletons plus `n(n−1)/2` longer ranges.
    pub fn contiguous(n: usize) -> Self {
        let mut groups = Vec::with_capacity(n);
        for start in 0..n {
            let mut per_start = Vec::with_capacity(n - start);
            for len in 1..=(n - start) {
                per_start.push(Arc::new(CommGroup::range(start, len)));
            }
            groups.push(per_start);
        }
        Self { world: n, groups }
    }

    /// Total number of registered groups.
    pub fn count(&self) -> usize {
        self.groups.iter().map(Vec::len).sum()
    }

    /// Looks up the pre-registered group `[start, start + len)`.
    pub fn range(&self, start: usize, len: usize) -> Arc<CommGroup> {
        assert!(
            len >= 1 && start + len <= self.world,
            "range [{start}, {}) out of world {}",
            start + len,
            self.world
        );
        Arc::clone(&self.groups[start][len - 1])
    }

    /// The all-ranks group.
    pub fn world(&self) -> Arc<CommGroup> {
        self.range(0, self.world)
    }

    pub fn world_size(&self) -> usize {
        self.world
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn registry_has_triangular_count() {
        // n singletons + n(n-1)/2 longer ranges = n(n+1)/2 total.
        for n in [1usize, 2, 5, 16] {
            let reg = GroupRegistry::contiguous(n);
            assert_eq!(reg.count(), n * (n + 1) / 2, "n = {n}");
        }
    }

    #[test]
    fn range_lookup_matches_construction() {
        let reg = GroupRegistry::contiguous(8);
        let g = reg.range(2, 3);
        assert_eq!(g.ranks(), &[2, 3, 4]);
        assert!(g.is_contiguous());
    }

    #[test]
    fn world_covers_all_ranks() {
        let reg = GroupRegistry::contiguous(4);
        assert_eq!(reg.world().size(), 4);
    }

    #[test]
    fn index_of_finds_members_only() {
        let g = CommGroup::range(3, 4); // ranks 3,4,5,6
        assert_eq!(g.index_of(5), Some(2));
        assert_eq!(g.index_of(7), None);
        assert!(g.contains(3));
        assert!(!g.contains(0));
    }

    #[test]
    #[should_panic(expected = "sorted and unique")]
    fn unsorted_group_rejected() {
        let _ = CommGroup::new(vec![3, 1, 2]);
    }

    #[test]
    #[should_panic(expected = "out of world")]
    fn out_of_range_lookup_panics() {
        let reg = GroupRegistry::contiguous(4);
        let _ = reg.range(2, 3);
    }

    #[test]
    fn non_contiguous_group_is_detectable() {
        let g = CommGroup::new(vec![0, 2, 4]);
        assert!(!g.is_contiguous());
    }
}
