//! Deterministic fault injection for the cluster runtime.
//!
//! Real MoE clusters lose, delay and duplicate messages, and whole ranks
//! stall or die mid-iteration (MegaScale reports fault handling as the
//! dominant operational cost of large MoE training). The thread-per-rank
//! runtime is too well-behaved to exhibit any of that on its own, so this
//! module injects the misbehavior *on purpose*: a [`FaultPlan`] is a
//! seeded, declarative list of rules the mailbox consults on every send
//! and receive.
//!
//! Two properties make the plans usable in tests:
//!
//! - **Determinism.** Every probabilistic decision hashes
//!   `(seed, rule, from, to, tag, seq)` through splitmix64 — it depends
//!   only on the message's identity, never on thread scheduling, so a
//!   failing chaos seed replays exactly.
//! - **Locality.** Faults act at the sender's edge of the channel (drop,
//!   duplicate, hold-back) or as rank events (stall, kill); the receiving
//!   mailbox stays oblivious, which is exactly the position a NIC fault
//!   puts a real receiver in.
//!
//! What each kind models:
//!
//! | kind         | models                                              |
//! |--------------|-----------------------------------------------------|
//! | `Drop`       | lost packet with no retransmission layer            |
//! | `Duplicate`  | link-level retransmit delivering twice              |
//! | `Delay`      | congestion: message overtaken by later traffic      |
//! | `StallRank`  | straggler (GC pause, thermal throttle, page fault)  |
//! | `KillRank`   | hard failure: the rank's process dies mid-iteration |
//!
//! Held-back messages are released after the sender issues the configured
//! number of subsequent sends, and are force-flushed at every epoch
//! boundary (`RankCtx::begin_epoch`) and at closure exit, so a delay can
//! reorder traffic within a phase but can never leak a message out of the
//! run entirely (that would be a drop, a different fault).

use crate::tag::{self, WirePhase};
use std::sync::Arc;
use std::time::Duration;

/// What to do with a matched message or rank event.
#[derive(Clone, Copy, Debug, PartialEq)]
pub enum FaultKind {
    /// Discard the message at the sender's edge; the receiver never sees
    /// it. With no retransmission layer below the mailbox this is only
    /// recoverable by the *application* degrading, so chaos tests expect
    /// drops to surface as a loud `ProtocolError`/degraded iteration.
    Drop,
    /// Deliver the message twice under the same wire sequence number —
    /// the receiver's dedup watermark must absorb the second copy.
    Duplicate,
    /// Hold the message back until the sender has issued `after_sends`
    /// further sends (min 1), then deliver it late — later traffic
    /// overtakes it, exercising the stash/reorder path.
    Delay {
        /// How many subsequent sends overtake the held message.
        after_sends: u64,
    },
    /// Sleep `millis` on the first matching event at `rank` — a
    /// straggler, not a failure; everything still completes.
    StallRank { rank: usize, millis: u64 },
    /// Panic at the first matching event at `rank`, simulating a hard
    /// rank death mid-protocol. Use [`crate::Cluster::run_with_faults`]
    /// to observe the death instead of propagating it.
    KillRank { rank: usize },
    /// Panic at the first matching event at *every* rank — a full-cluster
    /// crash (power loss, coordinated preemption). Each rank dies at its
    /// own first matching event, so with a phase/iteration matcher the
    /// whole cluster goes down inside one protocol step; checkpoint
    /// restart scenarios are built on this.
    KillAll,
}

/// Selector deciding which messages (or rank events) a rule applies to.
/// Unset fields match everything; `layer`/`iteration`/`phase` constraints
/// only ever match structured tags (raw tags carry no such fields).
#[derive(Clone, Copy, Debug)]
pub struct MsgMatch {
    from: Option<usize>,
    to: Option<usize>,
    layer: Option<u64>,
    iteration: Option<u64>,
    phase: Option<WirePhase>,
    probability: f64,
}

impl MsgMatch {
    /// Matches every message with probability 1.
    pub fn any() -> Self {
        Self { from: None, to: None, layer: None, iteration: None, phase: None, probability: 1.0 }
    }

    /// Restrict to messages sent by `rank`.
    pub fn from(mut self, rank: usize) -> Self {
        self.from = Some(rank);
        self
    }

    /// Restrict to messages addressed to `rank`.
    pub fn to(mut self, rank: usize) -> Self {
        self.to = Some(rank);
        self
    }

    /// Restrict to structured tags of `layer`.
    pub fn layer(mut self, layer: u64) -> Self {
        self.layer = Some(layer);
        self
    }

    /// Restrict to structured tags of training `iteration` (pre-wrap
    /// value; compared against the tag's 18-bit field).
    pub fn iteration(mut self, iteration: u64) -> Self {
        self.iteration = Some(iteration & ((1 << 18) - 1));
        self
    }

    /// Restrict to structured tags of `phase`.
    pub fn phase(mut self, phase: WirePhase) -> Self {
        self.phase = Some(phase);
        self
    }

    /// Fire on a matching message only with probability `p` (deterministic
    /// per message identity; see module docs).
    pub fn probability(mut self, p: f64) -> Self {
        self.probability = p.clamp(0.0, 1.0);
        self
    }

    fn matches(&self, from: usize, to: usize, tag: u64) -> bool {
        if self.from.is_some_and(|r| r != from) || self.to.is_some_and(|r| r != to) {
            return false;
        }
        if self.layer.is_none() && self.iteration.is_none() && self.phase.is_none() {
            return true;
        }
        let Some(fields) = tag::decode(tag) else {
            // Structured-field constraints can never match a raw tag.
            return false;
        };
        self.layer.is_none_or(|l| l == fields.layer)
            && self.iteration.is_none_or(|i| i == fields.iteration)
            && self.phase.is_none_or(|p| Some(p) == fields.phase())
    }
}

/// One (kind, selector) pair of a [`FaultPlan`].
#[derive(Clone, Copy, Debug)]
pub struct FaultRule {
    pub kind: FaultKind,
    pub matcher: MsgMatch,
}

/// A seeded, declarative chaos schedule. Rules are evaluated in insertion
/// order; the first matching message rule wins, so put specific rules
/// before broad ones.
#[derive(Clone, Debug, Default)]
pub struct FaultPlan {
    seed: u64,
    rules: Vec<FaultRule>,
}

impl FaultPlan {
    pub fn new(seed: u64) -> Self {
        Self { seed, rules: Vec::new() }
    }

    /// Append a rule.
    pub fn with(mut self, kind: FaultKind, matcher: MsgMatch) -> Self {
        self.rules.push(FaultRule { kind, matcher });
        self
    }

    /// Drop matching messages.
    pub fn drop_msgs(self, matcher: MsgMatch) -> Self {
        self.with(FaultKind::Drop, matcher)
    }

    /// Deliver matching messages twice.
    pub fn duplicate(self, matcher: MsgMatch) -> Self {
        self.with(FaultKind::Duplicate, matcher)
    }

    /// Hold matching messages back behind `after_sends` later sends.
    pub fn delay(self, matcher: MsgMatch, after_sends: u64) -> Self {
        self.with(FaultKind::Delay { after_sends: after_sends.max(1) }, matcher)
    }

    /// Sleep `millis` at `rank`'s first event matching `matcher`.
    pub fn stall(self, rank: usize, matcher: MsgMatch, millis: u64) -> Self {
        self.with(FaultKind::StallRank { rank, millis }, matcher)
    }

    /// Kill `rank` (panic) at its first event matching `matcher`.
    pub fn kill(self, rank: usize, matcher: MsgMatch) -> Self {
        self.with(FaultKind::KillRank { rank }, matcher)
    }

    /// Kill *every* rank at its first event matching `matcher` — the
    /// full-cluster crash of the checkpoint/restart scenarios.
    pub fn kill_all(self, matcher: MsgMatch) -> Self {
        self.with(FaultKind::KillAll, matcher)
    }

    pub fn is_empty(&self) -> bool {
        self.rules.is_empty()
    }
}

/// Per-rank injection counters, surfaced through `RankCtx::fault_stats`.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct FaultStats {
    /// Messages discarded by a `Drop` rule.
    pub dropped: u64,
    /// Messages delivered twice by a `Duplicate` rule.
    pub duplicated: u64,
    /// Messages held back by a `Delay` rule.
    pub delayed: u64,
    /// `StallRank` sleeps taken on this rank.
    pub stalled: u64,
}

impl FaultStats {
    /// Total injected message faults (excludes stalls, which delay but do
    /// not alter traffic).
    pub fn message_faults(&self) -> u64 {
        self.dropped + self.duplicated + self.delayed
    }
}

/// The sender-side verdict for one message.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub(crate) enum SendAction {
    Deliver,
    Drop,
    Duplicate,
    Hold { after_sends: u64 },
}

/// Per-rank evaluator of a shared [`FaultPlan`]. Owned by the mailbox;
/// single-threaded like everything else rank-local.
pub(crate) struct FaultInjector {
    plan: Arc<FaultPlan>,
    rank: usize,
    /// Per-rule once-latch for `StallRank` (a straggler stalls once, not
    /// on every subsequent message).
    stall_fired: Vec<bool>,
    stats: FaultStats,
}

impl FaultInjector {
    pub(crate) fn new(plan: Arc<FaultPlan>, rank: usize) -> Self {
        let n = plan.rules.len();
        Self { plan, rank, stall_fired: vec![false; n], stats: FaultStats::default() }
    }

    pub(crate) fn stats(&self) -> FaultStats {
        self.stats
    }

    /// Sender-side hook: may panic (kill), sleep (stall), and returns the
    /// verdict for this message.
    pub(crate) fn on_send(&mut self, to: usize, tag: u64, seq: u64) -> SendAction {
        let from = self.rank;
        self.rank_event(from, to, tag);
        let plan = Arc::clone(&self.plan);
        for (i, rule) in plan.rules.iter().enumerate() {
            let action = match rule.kind {
                FaultKind::Drop => SendAction::Drop,
                FaultKind::Duplicate => SendAction::Duplicate,
                FaultKind::Delay { after_sends } => SendAction::Hold { after_sends },
                FaultKind::StallRank { .. } | FaultKind::KillRank { .. } | FaultKind::KillAll => {
                    continue
                }
            };
            if rule.matcher.matches(from, to, tag) && self.fires(i, rule, from, to, tag, seq) {
                match action {
                    SendAction::Drop => self.stats.dropped += 1,
                    SendAction::Duplicate => self.stats.duplicated += 1,
                    SendAction::Hold { .. } => self.stats.delayed += 1,
                    SendAction::Deliver => {}
                }
                return action;
            }
        }
        SendAction::Deliver
    }

    /// Receiver-side hook: stall/kill triggers only (a receiver cannot
    /// retroactively fault a message that was already sent).
    pub(crate) fn on_recv(&mut self, from: usize, tag: u64) {
        self.rank_event(from, self.rank, tag);
    }

    /// Fires stall/kill rules whose matcher covers this event at this rank.
    fn rank_event(&mut self, from: usize, to: usize, tag: u64) {
        let plan = Arc::clone(&self.plan);
        for (i, rule) in plan.rules.iter().enumerate() {
            match rule.kind {
                FaultKind::StallRank { rank, millis }
                    if rank == self.rank
                        && !self.stall_fired[i]
                        && rule.matcher.matches(from, to, tag) =>
                {
                    self.stall_fired[i] = true;
                    self.stats.stalled += 1;
                    std::thread::sleep(Duration::from_millis(millis));
                }
                FaultKind::KillRank { rank }
                    if rank == self.rank && rule.matcher.matches(from, to, tag) =>
                {
                    panic!("fault injection: rank {} killed at {}", self.rank, tag::describe(tag));
                }
                FaultKind::KillAll if rule.matcher.matches(from, to, tag) => {
                    panic!(
                        "fault injection: rank {} killed at {} (cluster-wide kill)",
                        self.rank,
                        tag::describe(tag)
                    );
                }
                _ => {}
            }
        }
    }

    /// Deterministic per-message bernoulli: hashes the message identity so
    /// the decision is independent of thread scheduling.
    fn fires(
        &self,
        rule_idx: usize,
        rule: &FaultRule,
        from: usize,
        to: usize,
        tag: u64,
        seq: u64,
    ) -> bool {
        let p = rule.matcher.probability;
        if p >= 1.0 {
            return true;
        }
        if p <= 0.0 {
            return false;
        }
        let mut h = self.plan.seed ^ (rule_idx as u64).wrapping_mul(0xa076_1d64_78bd_642f);
        h = splitmix64(h ^ ((from as u64) << 32) ^ to as u64);
        h = splitmix64(h ^ tag);
        h = splitmix64(h ^ seq);
        let unit = (h >> 11) as f64 / (1u64 << 53) as f64;
        unit < p
    }
}

fn splitmix64(x: u64) -> u64 {
    let mut z = x.wrapping_add(0x9e37_79b9_7f4a_7c15);
    z = (z ^ (z >> 30)).wrapping_mul(0xbf58_476d_1ce4_e5b9);
    z = (z ^ (z >> 27)).wrapping_mul(0x94d0_49bb_1331_11eb);
    z ^ (z >> 31)
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::tag::TagSpace;

    #[test]
    fn matcher_fields_constrain_and_raw_tags_skip_structured_rules() {
        let ts = TagSpace::new(2, 5);
        let t = ts.tag(WirePhase::GradCollect, 3, 1);
        let m = MsgMatch::any().from(1).phase(WirePhase::GradCollect).iteration(5);
        assert!(m.matches(1, 0, t));
        assert!(!m.matches(2, 0, t), "wrong sender");
        assert!(!m.matches(1, 0, ts.tag(WirePhase::LossSync, 3, 1)), "wrong phase");
        assert!(!m.matches(1, 0, 0x1234), "raw tag cannot satisfy a phase constraint");
        assert!(MsgMatch::any().matches(1, 0, 0x1234), "unconstrained matches raw");
    }

    #[test]
    fn probability_is_deterministic_per_message_identity() {
        let plan = Arc::new(FaultPlan::new(42).drop_msgs(MsgMatch::any().probability(0.5)));
        let mut a = FaultInjector::new(Arc::clone(&plan), 0);
        let mut b = FaultInjector::new(plan, 0);
        let verdicts_a: Vec<_> = (0..64).map(|s| a.on_send(1, 7, s)).collect();
        let verdicts_b: Vec<_> = (0..64).map(|s| b.on_send(1, 7, s)).collect();
        assert_eq!(verdicts_a, verdicts_b, "same identity, same verdict");
        let drops = verdicts_a.iter().filter(|v| **v == SendAction::Drop).count();
        assert!(drops > 8 && drops < 56, "p=0.5 over 64 messages, got {drops}");
    }

    #[test]
    fn first_matching_rule_wins() {
        let plan =
            Arc::new(FaultPlan::new(1).duplicate(MsgMatch::any().to(1)).drop_msgs(MsgMatch::any()));
        let mut inj = FaultInjector::new(plan, 0);
        assert_eq!(inj.on_send(1, 7, 0), SendAction::Duplicate);
        assert_eq!(inj.on_send(2, 7, 1), SendAction::Drop);
        assert_eq!(inj.stats().duplicated, 1);
        assert_eq!(inj.stats().dropped, 1);
    }

    #[test]
    fn stall_fires_once_and_only_on_its_rank() {
        let plan = Arc::new(FaultPlan::new(0).stall(1, MsgMatch::any(), 1));
        let mut wrong_rank = FaultInjector::new(Arc::clone(&plan), 0);
        wrong_rank.on_send(1, 7, 0);
        assert_eq!(wrong_rank.stats().stalled, 0);
        let mut right_rank = FaultInjector::new(plan, 1);
        right_rank.on_send(0, 7, 0);
        right_rank.on_send(0, 7, 1);
        assert_eq!(right_rank.stats().stalled, 1, "straggler stalls once");
    }

    #[test]
    #[should_panic(expected = "cluster-wide kill")]
    fn kill_all_fires_on_any_rank() {
        let ts = TagSpace::new(0, 5);
        let plan =
            Arc::new(FaultPlan::new(0).kill_all(MsgMatch::any().phase(WirePhase::DispatchRows)));
        // A rank the rule names nowhere still dies at its first matching
        // event: the kill is cluster-wide by construction.
        let mut inj = FaultInjector::new(plan, 7);
        inj.on_send(0, ts.phase_tag(WirePhase::LossSync), 0); // does not match
        inj.on_send(0, ts.phase_tag(WirePhase::DispatchRows), 1); // kills
    }

    #[test]
    #[should_panic(expected = "fault injection: rank 3 killed")]
    fn kill_panics_with_decoded_context() {
        let ts = TagSpace::new(0, 2);
        let plan =
            Arc::new(FaultPlan::new(0).kill(3, MsgMatch::any().phase(WirePhase::DispatchRows)));
        let mut inj = FaultInjector::new(plan, 3);
        inj.on_recv(0, ts.phase_tag(WirePhase::LossSync)); // does not match
        inj.on_recv(0, ts.phase_tag(WirePhase::DispatchRows)); // kills
    }
}
