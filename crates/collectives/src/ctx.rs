//! Per-rank execution context: tagged point-to-point messaging and barriers.

use crate::cluster::ClusterSpec;
use crate::error::{CommError, ProtocolFailure};
use crate::fault::{FaultInjector, FaultStats, SendAction};
use crate::group::GroupRegistry;
use crate::payload::Payload;
use crate::tag::{self, WirePhase};
use crate::traffic::{LinkClass, TrafficStats};
use std::collections::{BTreeSet, HashMap, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

#[derive(Clone)]
pub(crate) struct Message {
    pub from: usize,
    pub tag: u64,
    /// Fencing epoch stamped at send time: the tag's own `(iteration,
    /// phase)` for structured tags, the sender's current epoch for raw
    /// ones.
    pub epoch: u64,
    /// Membership generation the sender was in when it stamped `seq`.
    /// Sequence numbers restart at 0 on every generation bump, so the
    /// generation namespaces the seq space: a joiner (or rejoiner) reusing
    /// a physical rank id sends `(gen+1, seq 0)` and is *not* mistaken for
    /// a duplicate of the old incarnation's `(gen, seq 0)`.
    pub gen: u64,
    /// Per-(sender → receiver) wire sequence number, stamped once per
    /// logical send. An injected duplicate re-sends the *same* seq, which
    /// is exactly what makes it detectable at the receiver.
    pub seq: u64,
    pub payload: Payload,
}

/// A message held back by a `Delay` fault, released after `remaining`
/// further sends by this rank.
struct Held {
    to: usize,
    msg: Message,
    remaining: u64,
}

/// Per-sender duplicate filter: a watermark below which every seq has been
/// delivered, plus the out-of-order seqs seen above it. Distinct logical
/// messages always carry distinct seqs, so FIFO same-tag streams are
/// untouched; only a re-delivery of an already-admitted seq is absorbed.
///
/// The watermark is namespaced by the sender's membership generation: a
/// higher-generation message resets the filter (the sender legitimately
/// restarted its seq stream after a membership change), while a
/// lower-generation straggler is dropped as stale. Without this, a rank id
/// reused by a joiner would start at seq 0 and every one of its messages
/// would be swallowed as a "duplicate echo" of the previous incarnation.
#[derive(Default)]
struct SeqTracker {
    /// Generation the watermark belongs to, adopted from received traffic.
    gen: u64,
    /// All seqs `< watermark` (within `gen`) have been admitted.
    watermark: u64,
    /// Admitted seqs `> watermark` (sparse, drained as the watermark
    /// advances).
    ahead: BTreeSet<u64>,
}

/// Verdict of the generation-aware duplicate filter.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
enum SeqAdmit {
    /// First delivery — deliver it.
    Fresh,
    /// Re-delivery of an already-admitted seq — absorb it.
    Duplicate,
    /// Straggler from a pre-bump generation — drop it as stale.
    Stale,
}

impl SeqTracker {
    /// Admits `seq` under the sender's membership generation `gen`.
    fn admit_at(&mut self, gen: u64, seq: u64) -> SeqAdmit {
        if gen > self.gen {
            // The sender moved to a new membership generation and restarted
            // its seq stream; the old watermark no longer applies.
            self.gen = gen;
            self.watermark = 0;
            self.ahead.clear();
        } else if gen < self.gen {
            return SeqAdmit::Stale;
        }
        if self.admit(seq) {
            SeqAdmit::Fresh
        } else {
            SeqAdmit::Duplicate
        }
    }

    /// Returns `true` for a first delivery, `false` for a duplicate.
    fn admit(&mut self, seq: u64) -> bool {
        if seq < self.watermark || self.ahead.contains(&seq) {
            return false;
        }
        if seq == self.watermark {
            self.watermark += 1;
            while self.ahead.remove(&self.watermark) {
                self.watermark += 1;
            }
        } else {
            self.ahead.insert(seq);
        }
        true
    }
}

/// Bounded retry-with-backoff for timed-out receives. Attempt `k`
/// (1-based) waits `timeout · backoff^k` before expiring; after
/// `max_retries` extra attempts the receive escalates to
/// [`CommError::Protocol`] carrying the full decoded diagnostics instead
/// of the plain [`CommError::RecvTimeout`].
///
/// Only meaningful together with `RankCtx::set_recv_timeout` — with no
/// timeout a receive blocks forever and the policy never engages.
#[derive(Clone, Copy, Debug, PartialEq)]
pub struct RetryPolicy {
    /// Additional attempts after the first timeout (0 = escalate at once).
    pub max_retries: u32,
    /// Per-attempt budget multiplier (≥ 1.0; clamped at use).
    pub backoff: f64,
}

impl RetryPolicy {
    pub fn new(max_retries: u32, backoff: f64) -> Self {
        Self { max_retries, backoff }
    }
}

impl Default for RetryPolicy {
    /// Three retries at 2× growth: total patience 15× the base timeout.
    fn default() -> Self {
        Self { max_retries: 3, backoff: 2.0 }
    }
}

/// A buffered out-of-order arrival.
struct Stashed {
    payload: Payload,
    epoch: u64,
    /// Whether this message was already counted as fenced (counted once,
    /// the first time the epoch fence refuses to deliver it).
    fence_counted: bool,
}

/// A posted-but-incomplete nonblocking receive in the mailbox's pending
/// table. The payload is parked here once it arrives (via `poll` progress)
/// until the owning [`PendingRecv`] is waited on.
struct PendingEntry {
    from: usize,
    tag: u64,
    /// Expected element count; a completed payload of the wrong length
    /// fails the op with [`CommError::LengthMismatch`].
    expect: Option<usize>,
    /// The matched payload, once progress has found it.
    ready: Option<Payload>,
}

/// Handle to a nonblocking send issued with [`RankCtx::isend`].
///
/// Sends complete eagerly in this runtime (the mpsc channel buffers
/// unboundedly), so the handle exists for schedule symmetry with
/// [`PendingRecv`]: `poll` is always `true` and `wait` returns
/// immediately. Overlap schedulers treat it uniformly anyway, which keeps
/// them correct on a transport where sends *can* block.
#[derive(Debug, Clone, Copy, PartialEq, Eq)]
pub struct PendingSend {
    pub to: usize,
    pub tag: u64,
}

impl PendingSend {
    /// Whether the send has completed (always, on this transport).
    pub fn poll(&self, _ctx: &mut RankCtx) -> bool {
        true
    }

    /// Blocks until the send completes (a no-op on this transport).
    pub fn wait(self, _ctx: &mut RankCtx) {}
}

/// Handle to a nonblocking receive posted with [`RankCtx::irecv`].
///
/// The op is matched exactly like a blocking receive — same `(from, tag)`
/// pairing, same FIFO order per channel, same epoch fence — so completing
/// it via any interleaving of `poll` and `wait` yields the byte-identical
/// payload the blocking path would have returned. Progress is made
/// opportunistically: every `poll`/`wait` on the owning rank drains the
/// inbound channel into the tag-matched stash, so compute running between
/// polls is exactly the window in which communication is hidden.
///
/// Dropping the handle without `wait`/`cancel` leaks the table entry until
/// a stale-epoch purge collects it; schedulers should always consume their
/// handles.
#[derive(Debug, PartialEq, Eq)]
pub struct PendingRecv {
    pub(crate) id: u64,
    pub from: usize,
    pub tag: u64,
}

impl PendingRecv {
    /// Nonblocking completion check. Drains the inbound channel, then
    /// probes the stash under the op's fencing epoch. Returns `Ok(true)`
    /// once the payload has arrived (parked in the mailbox until `wait`).
    /// A wrong-length arrival fails here with
    /// [`CommError::LengthMismatch`], exactly as the blocking batch path
    /// would report it.
    pub fn poll(&self, ctx: &mut RankCtx) -> Result<bool, CommError> {
        ctx.poll_pending(self.id)
    }

    /// Blocks until the op completes and returns its payload, with the
    /// same timeout/retry/escalation behavior as a blocking receive. A
    /// starved wait names every other posted-but-incomplete op in its
    /// diagnostics.
    pub fn wait(self, ctx: &mut RankCtx) -> Result<Payload, CommError> {
        ctx.wait_pending(self)
    }

    /// Abandons the op, removing it (and any parked payload) from the
    /// pending table — the cleanup path recovery takes for in-flight
    /// overlapped traffic of an aborted iteration.
    pub fn cancel(self, ctx: &mut RankCtx) {
        ctx.cancel_pending(self.id);
    }
}

/// Wire-protocol health counters, surfaced per rank through
/// `RankCtx::protocol_stats` and from there into symi-telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Messages the epoch fence refused to deliver at least once.
    pub fenced_messages: u64,
    /// High-water mark of buffered out-of-order messages.
    pub stash_peak: usize,
    /// Currently buffered messages.
    pub stash_depth: usize,
    /// Receives that expired their configured timeout (each retry attempt
    /// that expires counts once).
    pub recv_timeouts: u64,
    /// Timed-out receive attempts that were retried under a
    /// [`RetryPolicy`] instead of erroring out.
    pub retries: u64,
    /// Re-deliveries absorbed by the per-sender sequence filter.
    pub duplicates_dropped: u64,
    /// Pre-bump-generation stragglers dropped by the sequence filter after
    /// a membership-generation bump.
    pub stale_gen_dropped: u64,
}

/// Tagged mailbox: messages are matched on `(from, tag)`; out-of-order
/// arrivals are buffered. This is what lets independent collectives on
/// disjoint (or even overlapping) communicator groups proceed concurrently
/// without cross-talk, the way NCCL streams do.
///
/// On top of tag matching the mailbox enforces **epoch fencing**: every
/// message is stamped with the `(iteration, phase)` epoch it was sent
/// under, and a receive only accepts messages of its own epoch. For
/// structured tags the epoch is derived from the tag itself (so the fence
/// is consistent by construction); raw tags fall back to the rank-local
/// epoch advanced by `RankCtx::begin_epoch`, which turns cross-phase tag
/// aliasing — the bug class where a later phase's payload silently
/// satisfies an earlier phase's receive — into a loud, diagnosable stall
/// instead of corrupt data.
pub(crate) struct Mailbox {
    rank: usize,
    senders: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    stash: HashMap<(usize, u64), VecDeque<Stashed>>,
    /// Rank-local epoch: stamped on raw-tag sends, required of raw-tag
    /// receives. Stays 0 unless `begin_epoch` is used, so plain tag-only
    /// code keeps its historical semantics.
    epoch: u64,
    recv_timeout: Option<Duration>,
    retry: Option<RetryPolicy>,
    stats: ProtocolStats,
    /// This rank's membership generation, stamped on every send. Bumped by
    /// `RankCtx::set_membership_gen` when a membership agreement lands;
    /// the bump restarts `next_seq` so the generation namespaces the seq
    /// space end to end.
    gen: u64,
    /// Next wire seq per destination rank.
    next_seq: Vec<u64>,
    /// Per-sender duplicate filters.
    seen: Vec<SeqTracker>,
    /// Fault evaluator when running under a `FaultPlan`.
    faults: Option<FaultInjector>,
    /// Messages held back by `Delay` faults, in hold order.
    held: Vec<Held>,
    /// Posted nonblocking receives, by handle id.
    pending: HashMap<u64, PendingEntry>,
    /// Next pending-op handle id.
    next_pending: u64,
}

impl Mailbox {
    pub(crate) fn new(
        rank: usize,
        senders: Vec<Sender<Message>>,
        rx: Receiver<Message>,
        faults: Option<FaultInjector>,
    ) -> Self {
        let world = senders.len();
        Self {
            rank,
            senders,
            rx,
            stash: HashMap::new(),
            epoch: 0,
            recv_timeout: None,
            retry: None,
            stats: ProtocolStats::default(),
            gen: 0,
            next_seq: vec![0; world],
            seen: std::iter::repeat_with(SeqTracker::default).take(world).collect(),
            faults,
            held: Vec::new(),
            pending: HashMap::new(),
            next_pending: 0,
        }
    }

    /// Drains every message already sitting in the inbound channel into the
    /// stash, admitting seqs through the duplicate filter exactly as a
    /// blocking receive would. This is the nonblocking progress engine: any
    /// `poll` makes progress for *every* posted op, not just its own.
    fn drain_channel(&mut self) {
        while let Ok(msg) = self.rx.try_recv() {
            if !self.admit_msg(&msg) {
                continue;
            }
            self.stash_push(msg);
        }
    }

    /// Runs a message through the generation-aware duplicate filter,
    /// counting duplicates and stale-generation drops. `true` means
    /// deliver.
    fn admit_msg(&mut self, msg: &Message) -> bool {
        match self.seen[msg.from].admit_at(msg.gen, msg.seq) {
            SeqAdmit::Fresh => true,
            SeqAdmit::Duplicate => {
                self.stats.duplicates_dropped += 1;
                false
            }
            SeqAdmit::Stale => {
                self.stats.stale_gen_dropped += 1;
                false
            }
        }
    }

    /// Nonblocking stash probe under the epoch fence: pops the front of the
    /// `(from, tag)` queue iff its epoch matches the receive's allowed
    /// epoch — identical matching (including fence accounting) to the
    /// blocking receive's stash fast path, so poll-completion and blocking
    /// completion deliver the same message.
    fn take_from_stash(&mut self, from: usize, tag: u64) -> Option<Payload> {
        let allowed = tag::epoch_of(tag).unwrap_or(self.epoch);
        let queue = self.stash.get_mut(&(from, tag))?;
        match queue.front_mut() {
            Some(front) if front.epoch == allowed => {
                let s = queue.pop_front().expect("front exists");
                if queue.is_empty() {
                    self.stash.remove(&(from, tag));
                }
                self.stats.stash_depth -= 1;
                Some(s.payload)
            }
            Some(front) => {
                if !front.fence_counted {
                    front.fence_counted = true;
                    self.stats.fenced_messages += 1;
                }
                None
            }
            None => None,
        }
    }

    fn post_recv(&mut self, from: usize, tag: u64, expect: Option<usize>) -> u64 {
        let id = self.next_pending;
        self.next_pending += 1;
        self.pending.insert(id, PendingEntry { from, tag, expect, ready: None });
        id
    }

    /// Validates a completed payload's length against the op's expectation.
    fn check_length(&self, entry: &PendingEntry, payload: &Payload) -> Result<(), CommError> {
        if let Some(expected) = entry.expect {
            if payload.elements() != expected {
                return Err(CommError::LengthMismatch {
                    from: entry.from,
                    tag: tag::describe(entry.tag),
                    expected,
                    got: payload.elements(),
                });
            }
        }
        Ok(())
    }

    /// One progress + completion attempt for a posted op. `Ok(true)` means
    /// the payload is parked in the entry, ready for `wait_pending`.
    fn poll_pending(&mut self, id: u64) -> Result<bool, CommError> {
        let entry = self.pending.get(&id).expect("polled a consumed or unknown pending op");
        if entry.ready.is_some() {
            return Ok(true);
        }
        let (from, tagv) = (entry.from, entry.tag);
        self.drain_channel();
        let Some(payload) = self.take_from_stash(from, tagv) else {
            return Ok(false);
        };
        let entry = self.pending.get_mut(&id).expect("entry still present");
        if let Some(expected) = entry.expect {
            if payload.elements() != expected {
                let err = CommError::LengthMismatch {
                    from,
                    tag: tag::describe(tagv),
                    expected,
                    got: payload.elements(),
                };
                self.pending.remove(&id);
                return Err(err);
            }
        }
        entry.ready = Some(payload);
        Ok(true)
    }

    /// Blocking completion of a posted op: returns the parked payload if a
    /// poll already matched it, otherwise falls through to the blocking
    /// receive loop (same timeout/retry/escalation). Consumes the entry on
    /// every outcome.
    fn wait_pending(&mut self, id: u64) -> Result<Payload, CommError> {
        match self.poll_pending(id) {
            Ok(true) => {
                let entry = self.pending.remove(&id).expect("ready entry present");
                return Ok(entry.ready.expect("poll parked the payload"));
            }
            Ok(false) => {}
            Err(e) => return Err(e),
        }
        let entry = self.pending.remove(&id).expect("pending entry present");
        let payload = self.recv(entry.from, entry.tag)?;
        self.check_length(&entry, &payload)?;
        Ok(payload)
    }

    /// Removes every pending op whose structured tag is fenced strictly
    /// below `epoch_threshold`, dropping any parked payload with it.
    /// Returns the number of ops cancelled.
    fn cancel_pending_below(&mut self, epoch_threshold: u64) -> u64 {
        let before = self.pending.len();
        self.pending.retain(|_, entry| match tag::epoch_of(entry.tag) {
            Some(epoch) => epoch >= epoch_threshold,
            None => true,
        });
        (before - self.pending.len()) as u64
    }

    fn send(&mut self, to: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        let epoch = tag::epoch_of(tag).unwrap_or(self.epoch);
        let seq = self.next_seq[to];
        self.next_seq[to] += 1;
        let msg = Message { from: self.rank, tag, payload, epoch, gen: self.gen, seq };
        let action = match &mut self.faults {
            Some(inj) => inj.on_send(to, tag, seq),
            None => SendAction::Deliver,
        };
        let result = match action {
            SendAction::Deliver => self.deliver(to, msg),
            SendAction::Drop => Ok(()),
            SendAction::Duplicate => {
                let first = self.deliver(to, msg.clone());
                // The echo is best-effort: the receiver may consume the
                // first copy, finish its run and drop its channel before
                // this copy lands — a race, not a protocol error.
                self.deliver_lossy(to, msg);
                first
            }
            // `+ 1` because this very send immediately ages the queue
            // below; net effect is `after_sends` *later* messages overtake
            // the held one.
            SendAction::Hold { after_sends } => {
                self.held.push(Held { to, msg, remaining: after_sends + 1 });
                Ok(())
            }
        };
        self.age_held();
        result
    }

    fn deliver(&self, to: usize, msg: Message) -> Result<(), CommError> {
        self.senders[to].send(msg).map_err(|_| CommError::PeerGone { rank: to })
    }

    /// Delivery for fault-injected extras (duplicate echoes, released
    /// holds): a closed channel means the receiver already finished
    /// without the message, so the copy simply evaporates. A receiver
    /// that genuinely needed it would still be alive waiting, and a dead
    /// peer still surfaces loudly through the next strict send or the
    /// starving receive.
    fn deliver_lossy(&self, to: usize, msg: Message) {
        let _ = self.senders[to].send(msg);
    }

    /// One send event elapsed: age every held message, releasing the ripe
    /// ones in hold order.
    fn age_held(&mut self) {
        if self.held.is_empty() {
            return;
        }
        for h in &mut self.held {
            h.remaining -= 1;
        }
        let mut i = 0;
        while i < self.held.len() {
            if self.held[i].remaining == 0 {
                let h = self.held.remove(i);
                self.deliver_lossy(h.to, h.msg);
            } else {
                i += 1;
            }
        }
    }

    /// Force-deliver every held message — called at epoch boundaries and
    /// closure exit so a `Delay` fault reorders within a phase but never
    /// swallows a message outright.
    fn flush_held(&mut self) {
        while !self.held.is_empty() {
            let h = self.held.remove(0);
            self.deliver_lossy(h.to, h.msg);
        }
    }

    fn stash_push(&mut self, msg: Message) {
        self.stash.entry((msg.from, msg.tag)).or_default().push_back(Stashed {
            payload: msg.payload,
            epoch: msg.epoch,
            fence_counted: false,
        });
        self.stats.stash_depth += 1;
        self.stats.stash_peak = self.stats.stash_peak.max(self.stats.stash_depth);
    }

    /// Decoded summary of every stashed message plus every
    /// posted-but-incomplete nonblocking receive, sorted for determinism —
    /// the payload of [`CommError::RecvTimeout`]. Naming the outstanding
    /// overlapped ops is what turns a starved fence into a readable
    /// diagnosis instead of a bare timeout.
    fn pending_summary(&self) -> Vec<String> {
        let mut entries: Vec<(&(usize, u64), &VecDeque<Stashed>)> = self.stash.iter().collect();
        entries.sort_by_key(|((from, tag), _)| (*from, *tag));
        let mut out: Vec<String> = entries
            .iter()
            .flat_map(|((from, tagv), queue)| {
                queue.iter().map(move |s| {
                    format!(
                        "from={from} {} elems={} epoch={}",
                        tag::describe(*tagv),
                        s.payload.elements(),
                        s.epoch
                    )
                })
            })
            .collect();
        let mut posted: Vec<&PendingEntry> =
            self.pending.values().filter(|e| e.ready.is_none()).collect();
        posted.sort_by_key(|e| (e.from, e.tag));
        out.extend(posted.iter().map(|e| {
            let expect = e.expect.map_or_else(|| "any".to_string(), |n| n.to_string());
            format!("posted irecv from={} {} expect={expect}", e.from, tag::describe(e.tag))
        }));
        out
    }

    fn recv(&mut self, from: usize, tag: u64) -> Result<Payload, CommError> {
        if let Some(inj) = &mut self.faults {
            inj.on_recv(from, tag);
        }
        // A receive belongs to exactly one epoch: the tag's own for
        // structured tags, the rank-local epoch for raw ones. Only a
        // message stamped with that epoch may satisfy it — a colliding tag
        // from any other phase is fenced, never silently delivered.
        let allowed = tag::epoch_of(tag).unwrap_or(self.epoch);
        let start = Instant::now();
        let mut attempt: u32 = 0;
        let mut deadline = self.recv_timeout.map(|t| start + t);
        loop {
            if let Some(queue) = self.stash.get_mut(&(from, tag)) {
                match queue.front_mut() {
                    Some(front) if front.epoch == allowed => {
                        let s = queue.pop_front().expect("front exists");
                        if queue.is_empty() {
                            self.stash.remove(&(from, tag));
                        }
                        self.stats.stash_depth -= 1;
                        return Ok(s.payload);
                    }
                    Some(front) if !front.fence_counted => {
                        front.fence_counted = true;
                        self.stats.fenced_messages += 1;
                    }
                    _ => {}
                }
            }
            let msg = match deadline {
                None => self.rx.recv().map_err(|_| CommError::PeerGone { rank: from })?,
                Some(d) => {
                    let budget = d.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(budget) {
                        Ok(msg) => msg,
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(CommError::PeerGone { rank: from });
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            self.stats.recv_timeouts += 1;
                            let base = self.recv_timeout.expect("deadline implies timeout");
                            if let Some(policy) = self.retry {
                                if attempt < policy.max_retries {
                                    attempt += 1;
                                    self.stats.retries += 1;
                                    let grown =
                                        base.mul_f64(policy.backoff.max(1.0).powi(attempt as i32));
                                    deadline = Some(Instant::now() + grown);
                                    continue;
                                }
                            }
                            // Measured wall-clock wait across all attempts
                            // — not the configured timeout.
                            let waited_ms = start.elapsed().as_millis() as u64;
                            return Err(self.starved(from, tag, allowed, attempt, waited_ms));
                        }
                    }
                }
            };
            if !self.admit_msg(&msg) {
                continue;
            }
            // Fast path: the awaited message, same epoch, nothing queued
            // ahead of it on this (from, tag) channel.
            if msg.from == from
                && msg.tag == tag
                && msg.epoch == allowed
                && self.stash.get(&(from, tag)).is_none_or(VecDeque::is_empty)
            {
                return Ok(msg.payload);
            }
            self.stash_push(msg);
        }
    }

    /// The terminal error of a starved receive. Under a retry policy the
    /// exhausted receive escalates to [`CommError::Protocol`] with full
    /// decoded context; without one it stays the historical
    /// [`CommError::RecvTimeout`].
    fn starved(
        &self,
        from: usize,
        tag: u64,
        epoch: u64,
        retries: u32,
        waited_ms: u64,
    ) -> CommError {
        if self.retry.is_none() {
            return CommError::RecvTimeout {
                from,
                tag: tag::describe(tag),
                waited_ms,
                fenced: self.stats.fenced_messages,
                pending: self.pending_summary(),
            };
        }
        let fields = tag::decode(tag);
        CommError::Protocol(Box::new(ProtocolFailure {
            rank: self.rank,
            from,
            tag: tag::describe(tag),
            iteration: fields.map(|f| f.iteration),
            phase: fields.and_then(|f| f.phase()).map(|p| p.to_string()),
            epoch,
            retries,
            waited_ms,
            fenced: self.stats.fenced_messages,
            pending: self.pending_summary(),
        }))
    }
}

/// Handle a rank's SPMD closure uses to communicate.
pub struct RankCtx {
    rank: usize,
    spec: ClusterSpec,
    mailbox: Mailbox,
    barrier: Arc<Barrier>,
    traffic: Arc<TrafficStats>,
    groups: Arc<GroupRegistry>,
}

impl RankCtx {
    pub(crate) fn new(
        rank: usize,
        spec: ClusterSpec,
        mailbox: Mailbox,
        barrier: Arc<Barrier>,
        traffic: Arc<TrafficStats>,
        groups: Arc<GroupRegistry>,
    ) -> Self {
        Self { rank, spec, mailbox, barrier, traffic, groups }
    }

    /// This rank's id in `[0, world_size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.spec.ranks
    }

    /// The cluster shape.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// The pre-registered contiguous communicator groups (§4.2).
    pub fn groups(&self) -> &GroupRegistry {
        &self.groups
    }

    /// Sends `payload` to `to` under `tag`, recording its bytes against the
    /// link class connecting the two ranks. Self-sends are legal (delivered
    /// through the mailbox) and are counted as intra-node traffic with zero
    /// cost downstream.
    pub fn send(
        &mut self,
        to: usize,
        tag: u64,
        payload: impl Into<Payload>,
    ) -> Result<(), CommError> {
        let payload = payload.into();
        let class = if self.spec.same_node(self.rank, to) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        };
        if to != self.rank {
            self.traffic.record(class, self.rank, to, payload.byte_len());
        }
        self.mailbox.send(to, tag, payload)
    }

    /// Blocks until a message from `from` with `tag` arrives.
    pub fn recv(&mut self, from: usize, tag: u64) -> Result<Payload, CommError> {
        self.mailbox.recv(from, tag)
    }

    /// Convenience: receive and unwrap an `F32` payload.
    pub fn recv_f32(&mut self, from: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        self.recv(from, tag)?.into_f32()
    }

    /// Convenience: receive and unwrap a `U64` payload.
    pub fn recv_u64(&mut self, from: usize, tag: u64) -> Result<Vec<u64>, CommError> {
        self.recv(from, tag)?.into_u64()
    }

    /// Convenience: receive and unwrap an `F16` payload (raw half bits).
    pub fn recv_f16(&mut self, from: usize, tag: u64) -> Result<Vec<u16>, CommError> {
        self.recv(from, tag)?.into_f16()
    }

    /// Issues a nonblocking send. On this transport the send completes
    /// eagerly, so the returned [`PendingSend`] is already done; the handle
    /// keeps overlap schedules transport-agnostic.
    pub fn isend(
        &mut self,
        to: usize,
        tag: u64,
        payload: impl Into<Payload>,
    ) -> Result<PendingSend, CommError> {
        self.send(to, tag, payload)?;
        Ok(PendingSend { to, tag })
    }

    /// Posts a nonblocking receive accepting any payload length. Complete
    /// it with [`PendingRecv::poll`] / [`PendingRecv::wait`].
    pub fn irecv(&mut self, from: usize, tag: u64) -> PendingRecv {
        let id = self.mailbox.post_recv(from, tag, None);
        PendingRecv { id, from, tag }
    }

    /// Posts a nonblocking receive validating the payload's element count
    /// on completion (poll or wait), like [`RecvOp::sized`].
    ///
    /// [`RecvOp::sized`]: crate::p2p::RecvOp::sized
    pub fn irecv_sized(&mut self, from: usize, tag: u64, elements: usize) -> PendingRecv {
        let id = self.mailbox.post_recv(from, tag, Some(elements));
        PendingRecv { id, from, tag }
    }

    pub(crate) fn poll_pending(&mut self, id: u64) -> Result<bool, CommError> {
        self.mailbox.poll_pending(id)
    }

    pub(crate) fn wait_pending(&mut self, op: PendingRecv) -> Result<Payload, CommError> {
        self.mailbox.wait_pending(op.id)
    }

    pub(crate) fn cancel_pending(&mut self, id: u64) {
        self.mailbox.pending.remove(&id);
    }

    /// Advances this rank's fencing epoch to `(iteration, phase)` (epochs
    /// are monotone: an older epoch never rewinds a newer one). The epoch
    /// is stamped on every raw-tag send and required of every raw-tag
    /// receive; structured tags carry their epoch in the tag itself and
    /// ignore this. Code that never calls `begin_epoch` stays at epoch 0
    /// on both sides of every raw exchange, preserving plain tag-matching
    /// semantics.
    pub fn begin_epoch(&mut self, iteration: u64, phase: WirePhase) {
        let key = tag::TagSpace::new(0, iteration).epoch(phase);
        self.mailbox.epoch = self.mailbox.epoch.max(key);
        // An epoch boundary force-releases messages held back by `Delay`
        // faults: reordering stays confined to a phase. A delivery failure
        // here means the peer died — its receivers will diagnose that
        // loudly; nothing useful to do on the sender.
        self.mailbox.flush_held();
    }

    /// Installs (or clears) the receive timeout. On expiry the receive
    /// returns [`CommError::RecvTimeout`] carrying the decoded pending
    /// stash — the deadlock diagnosis the fence makes possible.
    pub fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.mailbox.recv_timeout = timeout;
    }

    /// Installs (or clears) the bounded retry-with-backoff policy applied
    /// to timed-out receives. With a policy installed, an exhausted
    /// receive escalates to [`CommError::Protocol`] carrying the decoded
    /// tag/epoch diagnostics; without one it keeps returning the plain
    /// [`CommError::RecvTimeout`]. Requires a recv timeout to engage.
    pub fn set_retry_policy(&mut self, policy: Option<RetryPolicy>) {
        self.mailbox.retry = policy;
    }

    /// The installed retry policy, if any.
    pub fn retry_policy(&self) -> Option<RetryPolicy> {
        self.mailbox.retry
    }

    /// The installed receive timeout, if any.
    pub fn recv_timeout(&self) -> Option<Duration> {
        self.mailbox.recv_timeout
    }

    /// Discards every buffered and in-flight message whose structured
    /// fencing epoch is strictly below `epoch_threshold` — the cleanup a
    /// membership change needs: after survivors agree on a new epoch, any
    /// half-delivered traffic from the aborted iteration (a dead rank's
    /// last sends, a survivor's pre-recovery sends) must never satisfy a
    /// post-recovery receive. Raw-tag (unstructured) messages are kept —
    /// they carry no iteration and are not part of the training protocol's
    /// fenced stream. Returns the number of messages discarded.
    ///
    /// Sound because channels are per-sender FIFO: once a rank has
    /// received a peer's recovery-protocol message, everything that peer
    /// sent before it has already been drained into the stash, so a single
    /// post-agreement purge observes all stale traffic that will ever
    /// arrive from a live peer. (A dead rank's traffic is either already
    /// buffered or lost with its channel.)
    pub fn discard_stale_below(&mut self, epoch_threshold: u64) -> u64 {
        let mb = &mut self.mailbox;
        // Pull everything already sitting in the channel into the stash so
        // the purge below sees it, admitting seqs through the duplicate
        // filter exactly as a normal receive would.
        mb.drain_channel();
        let mut discarded = 0u64;
        mb.stash.retain(|(_, tagv), queue| {
            if tag::epoch_of(*tagv).is_none() {
                return true; // raw-tag traffic is outside the fenced stream
            }
            let before = queue.len();
            queue.retain(|s| s.epoch >= epoch_threshold);
            discarded += (before - queue.len()) as u64;
            !queue.is_empty()
        });
        mb.stats.stash_depth -= discarded as usize;
        // Posted nonblocking receives of the aborted epochs are cancelled
        // with their parked payloads: a recovered protocol must never be
        // satisfied by a pre-recovery overlapped op.
        discarded + mb.cancel_pending_below(epoch_threshold)
    }

    /// Moves this rank's *send side* to membership generation `gen`
    /// (monotone; an older generation never rewinds a newer one). The bump
    /// restarts the per-destination wire sequence numbers at 0 — receivers
    /// namespace their duplicate-filter watermarks by the generation
    /// carried on each message, so the restarted stream is admitted
    /// instead of being swallowed as duplicate echoes of the previous
    /// incarnation. Call this the moment a membership agreement commits a
    /// new epoch, *before* any post-agreement send.
    pub fn set_membership_gen(&mut self, gen: u64) {
        if gen > self.mailbox.gen {
            self.mailbox.gen = gen;
            self.mailbox.next_seq = vec![0; self.mailbox.next_seq.len()];
        }
    }

    /// This rank's current send-side membership generation.
    pub fn membership_gen(&self) -> u64 {
        self.mailbox.gen
    }

    /// This rank's wire-protocol health counters (fenced messages, stash
    /// depth/peak, receive timeouts, retries, absorbed duplicates).
    pub fn protocol_stats(&self) -> ProtocolStats {
        self.mailbox.stats
    }

    /// Counters of the faults injected *by this rank's sender side* (plus
    /// its own stalls) when running under a `FaultPlan`; all-zero
    /// otherwise.
    pub fn fault_stats(&self) -> FaultStats {
        self.mailbox.faults.as_ref().map(FaultInjector::stats).unwrap_or_default()
    }

    /// End-of-closure hook: releases any still-held delayed messages so a
    /// `Delay` fault can never swallow a message outright.
    pub(crate) fn finish(&mut self) {
        self.mailbox.flush_held();
    }

    /// Global barrier across all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Records optimizer host↔device staging traffic on this rank (the PCIe
    /// leg of the paper's Grad/Weight Communication Phases).
    pub fn record_host_device_bytes(&self, bytes: u64) {
        self.traffic.record_host_device(self.rank, bytes);
    }

    /// The cluster-shared traffic counters. A telemetry driver drains
    /// `traffic().drain_phase_bytes()` once per iteration (on one rank,
    /// behind a barrier) to attribute bytes to phases in its
    /// `IterationReport`.
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        &self.traffic
    }

    /// Derives a per-step tag from a collective's base tag. Structured
    /// tags get the step written into their dedicated step field; raw tags
    /// keep the historical splitmix-style mix (with the structured marker
    /// bit masked off so a mixed raw tag can never masquerade as
    /// structured).
    pub(crate) fn step_tag(base: u64, step: u64) -> u64 {
        if tag::is_structured(base) {
            tag::with_step(base, step)
        } else {
            Self::raw_step_tag(base, step)
        }
    }

    /// Derives a sub-collective tag from a collective's base tag —
    /// distinguishes e.g. the all-gather half of an all-reduce from its
    /// reduce-scatter half when both run ring steps over one base tag.
    pub(crate) fn subop_tag(base: u64, subop: u8) -> u64 {
        if tag::is_structured(base) {
            tag::with_subop(base, subop)
        } else {
            // Historical raw salts, kept for tag-value stability of
            // hand-tagged test traffic.
            let salt = match subop {
                1 => 0x5151,
                2 => 0xa11c,
                s => s as u64,
            };
            Self::raw_step_tag(base, salt)
        }
    }

    fn raw_step_tag(base: u64, step: u64) -> u64 {
        (base ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(step.wrapping_add(1)))) & !tag::STRUCTURED
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::{Cluster, ClusterSpec};

    #[test]
    fn send_recv_round_trip() {
        let (results, report) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0f32, 2.0, 3.0]).unwrap();
                Vec::new()
            } else {
                ctx.recv_f32(0, 7).unwrap()
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
        assert_eq!(report.inter_node_bytes, 12);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0f32]).unwrap();
                ctx.send(1, 2, vec![2.0f32]).unwrap();
                ctx.send(1, 3, vec![3.0f32]).unwrap();
                0.0
            } else {
                // Receive in reverse order of sending.
                let a = ctx.recv_f32(0, 3).unwrap()[0];
                let b = ctx.recv_f32(0, 2).unwrap()[0];
                let c = ctx.recv_f32(0, 1).unwrap()[0];
                a * 100.0 + b * 10.0 + c
            }
        });
        assert_eq!(results[1], 321.0);
    }

    #[test]
    fn same_tag_messages_are_fifo() {
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..5 {
                    ctx.send(1, 9, vec![i as f32]).unwrap();
                }
                Vec::new()
            } else {
                (0..5).map(|_| ctx.recv_f32(0, 9).unwrap()[0]).collect()
            }
        });
        assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn intra_node_traffic_is_classified() {
        let spec = ClusterSpec { ranks: 4, gpus_per_node: 2 };
        let (_, report) = Cluster::run(spec, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0.0f32; 10]).unwrap(); // same node
                ctx.send(2, 1, vec![0.0f32; 10]).unwrap(); // other node
            } else if ctx.rank() == 1 {
                ctx.recv(0, 0).unwrap();
            } else if ctx.rank() == 2 {
                ctx.recv(0, 1).unwrap();
            }
        });
        assert_eq!(report.intra_node_bytes, 40);
        assert_eq!(report.inter_node_bytes, 40);
    }

    #[test]
    fn self_send_is_free() {
        let (_, report) = Cluster::run(ClusterSpec::flat(1), |ctx| {
            ctx.send(0, 5, vec![9.0f32; 100]).unwrap();
            assert_eq!(ctx.recv_f32(0, 5).unwrap().len(), 100);
        });
        assert_eq!(report.total_bytes(), 0);
    }

    #[test]
    fn recv_timeout_reports_measured_wall_clock_wait() {
        use crate::error::CommError;
        use std::time::Duration;
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                return 0;
            }
            ctx.set_recv_timeout(Some(Duration::from_millis(25)));
            match ctx.recv(0, 7).unwrap_err() {
                CommError::RecvTimeout { waited_ms, .. } => waited_ms,
                other => panic!("expected RecvTimeout, got {other:?}"),
            }
        });
        assert!(results[1] >= 25, "measured wait {} ms < configured 25 ms", results[1]);
    }

    #[test]
    fn injected_duplicates_are_absorbed_and_fifo_is_preserved() {
        use crate::fault::{FaultPlan, MsgMatch};
        let plan = FaultPlan::new(7).duplicate(MsgMatch::any().to(1));
        let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(2), plan, |ctx| {
            if ctx.rank() == 0 {
                for i in 0..5 {
                    ctx.send(1, 9, vec![i as f32]).unwrap();
                }
                (Vec::new(), 0, 0)
            } else {
                let vals: Vec<f32> = (0..5).map(|_| ctx.recv_f32(0, 9).unwrap()[0]).collect();
                let stats = ctx.protocol_stats();
                (vals, stats.duplicates_dropped, stats.fenced_messages)
            }
        });
        let (vals, dups, fenced) = results[1].as_ref().unwrap();
        assert_eq!(*vals, vec![0.0, 1.0, 2.0, 3.0, 4.0], "duplicates must not corrupt FIFO");
        // The 5th duplicate is still in the channel when the closure ends.
        assert_eq!(*dups, 4, "one duplicate absorbed per extra pull");
        assert_eq!(*fenced, 0);
    }

    #[test]
    fn a_delayed_message_is_overtaken_and_still_delivered() {
        use crate::fault::{FaultPlan, MsgMatch};
        use crate::tag::{TagSpace, WirePhase};
        let ts = TagSpace::new(0, 0);
        let plan = FaultPlan::new(0).delay(MsgMatch::any().phase(WirePhase::DispatchRows), 1);
        let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(2), plan, |ctx| {
            let ts = TagSpace::new(0, 0);
            if ctx.rank() == 0 {
                ctx.send(1, ts.phase_tag(WirePhase::DispatchRows), vec![1.0f32]).unwrap();
                ctx.send(1, ts.phase_tag(WirePhase::DispatchMeta), vec![2.0f32]).unwrap();
                (ctx.fault_stats().delayed, 0.0, 0.0)
            } else {
                let rows = ctx.recv_f32(0, ts.phase_tag(WirePhase::DispatchRows)).unwrap()[0];
                let meta = ctx.recv_f32(0, ts.phase_tag(WirePhase::DispatchMeta)).unwrap()[0];
                (0, rows, meta)
            }
        });
        let _ = ts;
        assert_eq!(results[0].as_ref().unwrap().0, 1, "the rows message was held back");
        let (_, rows, meta) = results[1].as_ref().unwrap();
        assert_eq!((*rows, *meta), (1.0, 2.0), "reordered traffic still matches by tag");
    }

    #[test]
    fn dropped_message_turns_into_a_loud_timeout() {
        use crate::error::CommError;
        use crate::fault::{FaultPlan, MsgMatch};
        use crate::tag::{TagSpace, WirePhase};
        use std::time::Duration;
        let plan = FaultPlan::new(0).drop_msgs(MsgMatch::any().phase(WirePhase::LossSync));
        let (results, _) = Cluster::run_with_faults(ClusterSpec::flat(2), plan, |ctx| {
            let tag = TagSpace::new(0, 1).phase_tag(WirePhase::LossSync);
            if ctx.rank() == 0 {
                ctx.send(1, tag, vec![3.0f32]).unwrap();
                (ctx.fault_stats().dropped, true)
            } else {
                ctx.set_recv_timeout(Some(Duration::from_millis(20)));
                let timed_out =
                    matches!(ctx.recv(0, tag).unwrap_err(), CommError::RecvTimeout { .. });
                (0, timed_out)
            }
        });
        assert_eq!(results[0].as_ref().unwrap().0, 1, "the send was swallowed");
        assert!(results[1].as_ref().unwrap().1, "the receiver starved loudly, not silently");
    }

    #[test]
    fn rejoined_rank_first_message_is_delivered_after_gen_bump() {
        // A rank that sends, bumps its membership generation (as a joiner
        // reusing a rank id does), and sends again restarts at seq 0. The
        // receiver's generation-namespaced watermark must admit the new
        // stream instead of dropping it as a duplicate echo of the old
        // incarnation.
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..3 {
                    ctx.send(1, 9, vec![i as f32]).unwrap();
                }
                ctx.send(1, 11, vec![0.0f32]).unwrap(); // release the receiver
                ctx.recv(1, 12).unwrap(); // old-gen traffic fully consumed
                ctx.set_membership_gen(1);
                ctx.send(1, 9, vec![42.0f32]).unwrap(); // gen 1, seq 0
                (0.0, 0, 0)
            } else {
                for i in 0..3 {
                    assert_eq!(ctx.recv_f32(0, 9).unwrap()[0], i as f32);
                }
                ctx.recv(0, 11).unwrap();
                ctx.send(0, 12, vec![0.0f32]).unwrap();
                let rejoined = ctx.recv_f32(0, 9).unwrap()[0];
                let stats = ctx.protocol_stats();
                (rejoined, stats.duplicates_dropped, stats.stale_gen_dropped)
            }
        });
        let (rejoined, dups, stale) = results[1];
        assert_eq!(rejoined, 42.0, "the rejoined rank's first message must be delivered");
        assert_eq!(dups, 0, "a generation bump is not a duplicate");
        assert_eq!(stale, 0, "no pre-bump stragglers were in flight");
    }

    #[test]
    fn stale_generation_stragglers_are_dropped_not_replayed() {
        use super::{SeqAdmit, SeqTracker};
        let mut t = SeqTracker::default();
        assert_eq!(t.admit_at(0, 0), SeqAdmit::Fresh);
        assert_eq!(t.admit_at(0, 1), SeqAdmit::Fresh);
        assert_eq!(t.admit_at(0, 1), SeqAdmit::Duplicate);
        // Generation bump restarts the seq space.
        assert_eq!(t.admit_at(1, 0), SeqAdmit::Fresh);
        // A delayed gen-0 straggler (seq the new space has not reached)
        // must not leak into the new generation.
        assert_eq!(t.admit_at(0, 2), SeqAdmit::Stale);
        assert_eq!(t.admit_at(1, 1), SeqAdmit::Fresh);
    }

    #[test]
    fn membership_gen_is_monotone_and_restarts_seqs() {
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.set_membership_gen(3);
                ctx.set_membership_gen(1); // older gen must not rewind
                assert_eq!(ctx.membership_gen(), 3);
                ctx.send(1, 5, vec![7.0f32]).unwrap();
                0.0
            } else {
                ctx.recv_f32(0, 5).unwrap()[0]
            }
        });
        assert_eq!(results[1], 7.0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            counter.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }
}
