//! Per-rank execution context: tagged point-to-point messaging and barriers.

use crate::cluster::ClusterSpec;
use crate::error::CommError;
use crate::group::GroupRegistry;
use crate::payload::Payload;
use crate::traffic::{LinkClass, TrafficStats};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, Sender};
use std::sync::{Arc, Barrier};

pub(crate) struct Message {
    pub from: usize,
    pub tag: u64,
    pub payload: Payload,
}

/// Tagged mailbox: messages are matched on `(from, tag)`; out-of-order
/// arrivals are buffered. This is what lets independent collectives on
/// disjoint (or even overlapping) communicator groups proceed concurrently
/// without cross-talk, the way NCCL streams do.
pub(crate) struct Mailbox {
    rank: usize,
    senders: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    stash: HashMap<(usize, u64), VecDeque<Payload>>,
}

impl Mailbox {
    pub(crate) fn new(rank: usize, senders: Vec<Sender<Message>>, rx: Receiver<Message>) -> Self {
        Self { rank, senders, rx, stash: HashMap::new() }
    }

    fn send(&self, to: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        self.senders[to]
            .send(Message { from: self.rank, tag, payload })
            .map_err(|_| CommError::PeerGone { rank: to })
    }

    fn recv(&mut self, from: usize, tag: u64) -> Result<Payload, CommError> {
        if let Some(queue) = self.stash.get_mut(&(from, tag)) {
            if let Some(p) = queue.pop_front() {
                return Ok(p);
            }
        }
        loop {
            let msg = self.rx.recv().map_err(|_| CommError::PeerGone { rank: from })?;
            if msg.from == from && msg.tag == tag {
                return Ok(msg.payload);
            }
            self.stash.entry((msg.from, msg.tag)).or_default().push_back(msg.payload);
        }
    }
}

/// Handle a rank's SPMD closure uses to communicate.
pub struct RankCtx {
    rank: usize,
    spec: ClusterSpec,
    mailbox: Mailbox,
    barrier: Arc<Barrier>,
    traffic: Arc<TrafficStats>,
    groups: Arc<GroupRegistry>,
}

impl RankCtx {
    pub(crate) fn new(
        rank: usize,
        spec: ClusterSpec,
        mailbox: Mailbox,
        barrier: Arc<Barrier>,
        traffic: Arc<TrafficStats>,
        groups: Arc<GroupRegistry>,
    ) -> Self {
        Self { rank, spec, mailbox, barrier, traffic, groups }
    }

    /// This rank's id in `[0, world_size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.spec.ranks
    }

    /// The cluster shape.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// The pre-registered contiguous communicator groups (§4.2).
    pub fn groups(&self) -> &GroupRegistry {
        &self.groups
    }

    /// Sends `payload` to `to` under `tag`, recording its bytes against the
    /// link class connecting the two ranks. Self-sends are legal (delivered
    /// through the mailbox) and are counted as intra-node traffic with zero
    /// cost downstream.
    pub fn send(&self, to: usize, tag: u64, payload: impl Into<Payload>) -> Result<(), CommError> {
        let payload = payload.into();
        let class = if self.spec.same_node(self.rank, to) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        };
        if to != self.rank {
            self.traffic.record(class, self.rank, to, payload.byte_len());
        }
        self.mailbox.send(to, tag, payload)
    }

    /// Blocks until a message from `from` with `tag` arrives.
    pub fn recv(&mut self, from: usize, tag: u64) -> Result<Payload, CommError> {
        self.mailbox.recv(from, tag)
    }

    /// Convenience: receive and unwrap an `F32` payload.
    pub fn recv_f32(&mut self, from: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        self.recv(from, tag)?.into_f32()
    }

    /// Convenience: receive and unwrap a `U64` payload.
    pub fn recv_u64(&mut self, from: usize, tag: u64) -> Result<Vec<u64>, CommError> {
        self.recv(from, tag)?.into_u64()
    }

    /// Global barrier across all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Records optimizer host↔device staging traffic on this rank (the PCIe
    /// leg of the paper's Grad/Weight Communication Phases).
    pub fn record_host_device_bytes(&self, bytes: u64) {
        self.traffic.record_host_device(self.rank, bytes);
    }

    /// The cluster-shared traffic counters. A telemetry driver drains
    /// `traffic().drain_phase_bytes()` once per iteration (on one rank,
    /// behind a barrier) to attribute bytes to phases in its
    /// `IterationReport`.
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        &self.traffic
    }

    /// Derives a per-step tag from a collective's base tag. Mixes with a
    /// splitmix-style constant so steps of nested/consecutive collectives
    /// sharing a base tag cannot collide in practice.
    pub(crate) fn step_tag(base: u64, step: u64) -> u64 {
        base ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(step.wrapping_add(1)))
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::{Cluster, ClusterSpec};

    #[test]
    fn send_recv_round_trip() {
        let (results, report) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0f32, 2.0, 3.0]).unwrap();
                Vec::new()
            } else {
                ctx.recv_f32(0, 7).unwrap()
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
        assert_eq!(report.inter_node_bytes, 12);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0f32]).unwrap();
                ctx.send(1, 2, vec![2.0f32]).unwrap();
                ctx.send(1, 3, vec![3.0f32]).unwrap();
                0.0
            } else {
                // Receive in reverse order of sending.
                let a = ctx.recv_f32(0, 3).unwrap()[0];
                let b = ctx.recv_f32(0, 2).unwrap()[0];
                let c = ctx.recv_f32(0, 1).unwrap()[0];
                a * 100.0 + b * 10.0 + c
            }
        });
        assert_eq!(results[1], 321.0);
    }

    #[test]
    fn same_tag_messages_are_fifo() {
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..5 {
                    ctx.send(1, 9, vec![i as f32]).unwrap();
                }
                Vec::new()
            } else {
                (0..5).map(|_| ctx.recv_f32(0, 9).unwrap()[0]).collect()
            }
        });
        assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn intra_node_traffic_is_classified() {
        let spec = ClusterSpec { ranks: 4, gpus_per_node: 2 };
        let (_, report) = Cluster::run(spec, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0.0f32; 10]).unwrap(); // same node
                ctx.send(2, 1, vec![0.0f32; 10]).unwrap(); // other node
            } else if ctx.rank() == 1 {
                ctx.recv(0, 0).unwrap();
            } else if ctx.rank() == 2 {
                ctx.recv(0, 1).unwrap();
            }
        });
        assert_eq!(report.intra_node_bytes, 40);
        assert_eq!(report.inter_node_bytes, 40);
    }

    #[test]
    fn self_send_is_free() {
        let (_, report) = Cluster::run(ClusterSpec::flat(1), |ctx| {
            ctx.send(0, 5, vec![9.0f32; 100]).unwrap();
            assert_eq!(ctx.recv_f32(0, 5).unwrap().len(), 100);
        });
        assert_eq!(report.total_bytes(), 0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            counter.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }
}
