//! Per-rank execution context: tagged point-to-point messaging and barriers.

use crate::cluster::ClusterSpec;
use crate::error::CommError;
use crate::group::GroupRegistry;
use crate::payload::Payload;
use crate::tag::{self, WirePhase};
use crate::traffic::{LinkClass, TrafficStats};
use std::collections::{HashMap, VecDeque};
use std::sync::mpsc::{Receiver, RecvTimeoutError, Sender};
use std::sync::{Arc, Barrier};
use std::time::{Duration, Instant};

pub(crate) struct Message {
    pub from: usize,
    pub tag: u64,
    /// Fencing epoch stamped at send time: the tag's own `(iteration,
    /// phase)` for structured tags, the sender's current epoch for raw
    /// ones.
    pub epoch: u64,
    pub payload: Payload,
}

/// A buffered out-of-order arrival.
struct Stashed {
    payload: Payload,
    epoch: u64,
    /// Whether this message was already counted as fenced (counted once,
    /// the first time the epoch fence refuses to deliver it).
    fence_counted: bool,
}

/// Wire-protocol health counters, surfaced per rank through
/// `RankCtx::protocol_stats` and from there into symi-telemetry.
#[derive(Clone, Copy, Debug, Default, PartialEq, Eq)]
pub struct ProtocolStats {
    /// Messages the epoch fence refused to deliver at least once.
    pub fenced_messages: u64,
    /// High-water mark of buffered out-of-order messages.
    pub stash_peak: usize,
    /// Currently buffered messages.
    pub stash_depth: usize,
    /// Receives that expired their configured timeout.
    pub recv_timeouts: u64,
}

/// Tagged mailbox: messages are matched on `(from, tag)`; out-of-order
/// arrivals are buffered. This is what lets independent collectives on
/// disjoint (or even overlapping) communicator groups proceed concurrently
/// without cross-talk, the way NCCL streams do.
///
/// On top of tag matching the mailbox enforces **epoch fencing**: every
/// message is stamped with the `(iteration, phase)` epoch it was sent
/// under, and a receive only accepts messages of its own epoch. For
/// structured tags the epoch is derived from the tag itself (so the fence
/// is consistent by construction); raw tags fall back to the rank-local
/// epoch advanced by `RankCtx::begin_epoch`, which turns cross-phase tag
/// aliasing — the bug class where a later phase's payload silently
/// satisfies an earlier phase's receive — into a loud, diagnosable stall
/// instead of corrupt data.
pub(crate) struct Mailbox {
    rank: usize,
    senders: Vec<Sender<Message>>,
    rx: Receiver<Message>,
    stash: HashMap<(usize, u64), VecDeque<Stashed>>,
    /// Rank-local epoch: stamped on raw-tag sends, required of raw-tag
    /// receives. Stays 0 unless `begin_epoch` is used, so plain tag-only
    /// code keeps its historical semantics.
    epoch: u64,
    recv_timeout: Option<Duration>,
    stats: ProtocolStats,
}

impl Mailbox {
    pub(crate) fn new(rank: usize, senders: Vec<Sender<Message>>, rx: Receiver<Message>) -> Self {
        Self {
            rank,
            senders,
            rx,
            stash: HashMap::new(),
            epoch: 0,
            recv_timeout: None,
            stats: ProtocolStats::default(),
        }
    }

    fn send(&self, to: usize, tag: u64, payload: Payload) -> Result<(), CommError> {
        let epoch = tag::epoch_of(tag).unwrap_or(self.epoch);
        self.senders[to]
            .send(Message { from: self.rank, tag, payload, epoch })
            .map_err(|_| CommError::PeerGone { rank: to })
    }

    fn stash_push(&mut self, msg: Message) {
        self.stash.entry((msg.from, msg.tag)).or_default().push_back(Stashed {
            payload: msg.payload,
            epoch: msg.epoch,
            fence_counted: false,
        });
        self.stats.stash_depth += 1;
        self.stats.stash_peak = self.stats.stash_peak.max(self.stats.stash_depth);
    }

    /// Decoded summary of every stashed message, sorted for determinism —
    /// the payload of [`CommError::RecvTimeout`].
    fn pending_summary(&self) -> Vec<String> {
        let mut entries: Vec<(&(usize, u64), &VecDeque<Stashed>)> = self.stash.iter().collect();
        entries.sort_by_key(|((from, tag), _)| (*from, *tag));
        entries
            .iter()
            .flat_map(|((from, tagv), queue)| {
                queue.iter().map(move |s| {
                    format!(
                        "from={from} {} elems={} epoch={}",
                        tag::describe(*tagv),
                        s.payload.elements(),
                        s.epoch
                    )
                })
            })
            .collect()
    }

    fn recv(&mut self, from: usize, tag: u64) -> Result<Payload, CommError> {
        // A receive belongs to exactly one epoch: the tag's own for
        // structured tags, the rank-local epoch for raw ones. Only a
        // message stamped with that epoch may satisfy it — a colliding tag
        // from any other phase is fenced, never silently delivered.
        let allowed = tag::epoch_of(tag).unwrap_or(self.epoch);
        let deadline = self.recv_timeout.map(|t| Instant::now() + t);
        loop {
            if let Some(queue) = self.stash.get_mut(&(from, tag)) {
                match queue.front_mut() {
                    Some(front) if front.epoch == allowed => {
                        let s = queue.pop_front().expect("front exists");
                        if queue.is_empty() {
                            self.stash.remove(&(from, tag));
                        }
                        self.stats.stash_depth -= 1;
                        return Ok(s.payload);
                    }
                    Some(front) if !front.fence_counted => {
                        front.fence_counted = true;
                        self.stats.fenced_messages += 1;
                    }
                    _ => {}
                }
            }
            let msg = match deadline {
                None => self.rx.recv().map_err(|_| CommError::PeerGone { rank: from })?,
                Some(deadline) => {
                    let budget = deadline.saturating_duration_since(Instant::now());
                    match self.rx.recv_timeout(budget) {
                        Ok(msg) => msg,
                        Err(RecvTimeoutError::Disconnected) => {
                            return Err(CommError::PeerGone { rank: from });
                        }
                        Err(RecvTimeoutError::Timeout) => {
                            self.stats.recv_timeouts += 1;
                            return Err(CommError::RecvTimeout {
                                from,
                                tag: tag::describe(tag),
                                waited_ms: self.recv_timeout.unwrap_or_default().as_millis() as u64,
                                fenced: self.stats.fenced_messages,
                                pending: self.pending_summary(),
                            });
                        }
                    }
                }
            };
            // Fast path: the awaited message, same epoch, nothing queued
            // ahead of it on this (from, tag) channel.
            if msg.from == from
                && msg.tag == tag
                && msg.epoch == allowed
                && self.stash.get(&(from, tag)).is_none_or(VecDeque::is_empty)
            {
                return Ok(msg.payload);
            }
            self.stash_push(msg);
        }
    }
}

/// Handle a rank's SPMD closure uses to communicate.
pub struct RankCtx {
    rank: usize,
    spec: ClusterSpec,
    mailbox: Mailbox,
    barrier: Arc<Barrier>,
    traffic: Arc<TrafficStats>,
    groups: Arc<GroupRegistry>,
}

impl RankCtx {
    pub(crate) fn new(
        rank: usize,
        spec: ClusterSpec,
        mailbox: Mailbox,
        barrier: Arc<Barrier>,
        traffic: Arc<TrafficStats>,
        groups: Arc<GroupRegistry>,
    ) -> Self {
        Self { rank, spec, mailbox, barrier, traffic, groups }
    }

    /// This rank's id in `[0, world_size)`.
    pub fn rank(&self) -> usize {
        self.rank
    }

    /// Total number of ranks.
    pub fn world_size(&self) -> usize {
        self.spec.ranks
    }

    /// The cluster shape.
    pub fn spec(&self) -> ClusterSpec {
        self.spec
    }

    /// The pre-registered contiguous communicator groups (§4.2).
    pub fn groups(&self) -> &GroupRegistry {
        &self.groups
    }

    /// Sends `payload` to `to` under `tag`, recording its bytes against the
    /// link class connecting the two ranks. Self-sends are legal (delivered
    /// through the mailbox) and are counted as intra-node traffic with zero
    /// cost downstream.
    pub fn send(&self, to: usize, tag: u64, payload: impl Into<Payload>) -> Result<(), CommError> {
        let payload = payload.into();
        let class = if self.spec.same_node(self.rank, to) {
            LinkClass::IntraNode
        } else {
            LinkClass::InterNode
        };
        if to != self.rank {
            self.traffic.record(class, self.rank, to, payload.byte_len());
        }
        self.mailbox.send(to, tag, payload)
    }

    /// Blocks until a message from `from` with `tag` arrives.
    pub fn recv(&mut self, from: usize, tag: u64) -> Result<Payload, CommError> {
        self.mailbox.recv(from, tag)
    }

    /// Convenience: receive and unwrap an `F32` payload.
    pub fn recv_f32(&mut self, from: usize, tag: u64) -> Result<Vec<f32>, CommError> {
        self.recv(from, tag)?.into_f32()
    }

    /// Convenience: receive and unwrap a `U64` payload.
    pub fn recv_u64(&mut self, from: usize, tag: u64) -> Result<Vec<u64>, CommError> {
        self.recv(from, tag)?.into_u64()
    }

    /// Convenience: receive and unwrap an `F16` payload (raw half bits).
    pub fn recv_f16(&mut self, from: usize, tag: u64) -> Result<Vec<u16>, CommError> {
        self.recv(from, tag)?.into_f16()
    }

    /// Advances this rank's fencing epoch to `(iteration, phase)` (epochs
    /// are monotone: an older epoch never rewinds a newer one). The epoch
    /// is stamped on every raw-tag send and required of every raw-tag
    /// receive; structured tags carry their epoch in the tag itself and
    /// ignore this. Code that never calls `begin_epoch` stays at epoch 0
    /// on both sides of every raw exchange, preserving plain tag-matching
    /// semantics.
    pub fn begin_epoch(&mut self, iteration: u64, phase: WirePhase) {
        let key = tag::TagSpace::new(0, iteration).epoch(phase);
        self.mailbox.epoch = self.mailbox.epoch.max(key);
    }

    /// Installs (or clears) the receive timeout. On expiry the receive
    /// returns [`CommError::RecvTimeout`] carrying the decoded pending
    /// stash — the deadlock diagnosis the fence makes possible.
    pub fn set_recv_timeout(&mut self, timeout: Option<Duration>) {
        self.mailbox.recv_timeout = timeout;
    }

    /// This rank's wire-protocol health counters (fenced messages, stash
    /// depth/peak, receive timeouts).
    pub fn protocol_stats(&self) -> ProtocolStats {
        self.mailbox.stats
    }

    /// Global barrier across all ranks.
    pub fn barrier(&self) {
        self.barrier.wait();
    }

    /// Records optimizer host↔device staging traffic on this rank (the PCIe
    /// leg of the paper's Grad/Weight Communication Phases).
    pub fn record_host_device_bytes(&self, bytes: u64) {
        self.traffic.record_host_device(self.rank, bytes);
    }

    /// The cluster-shared traffic counters. A telemetry driver drains
    /// `traffic().drain_phase_bytes()` once per iteration (on one rank,
    /// behind a barrier) to attribute bytes to phases in its
    /// `IterationReport`.
    pub fn traffic(&self) -> &Arc<TrafficStats> {
        &self.traffic
    }

    /// Derives a per-step tag from a collective's base tag. Structured
    /// tags get the step written into their dedicated step field; raw tags
    /// keep the historical splitmix-style mix (with the structured marker
    /// bit masked off so a mixed raw tag can never masquerade as
    /// structured).
    pub(crate) fn step_tag(base: u64, step: u64) -> u64 {
        if tag::is_structured(base) {
            tag::with_step(base, step)
        } else {
            Self::raw_step_tag(base, step)
        }
    }

    /// Derives a sub-collective tag from a collective's base tag —
    /// distinguishes e.g. the all-gather half of an all-reduce from its
    /// reduce-scatter half when both run ring steps over one base tag.
    pub(crate) fn subop_tag(base: u64, subop: u8) -> u64 {
        if tag::is_structured(base) {
            tag::with_subop(base, subop)
        } else {
            // Historical raw salts, kept for tag-value stability of
            // hand-tagged test traffic.
            let salt = match subop {
                1 => 0x5151,
                2 => 0xa11c,
                s => s as u64,
            };
            Self::raw_step_tag(base, salt)
        }
    }

    fn raw_step_tag(base: u64, step: u64) -> u64 {
        (base ^ (0x9e37_79b9_7f4a_7c15u64.wrapping_mul(step.wrapping_add(1)))) & !tag::STRUCTURED
    }
}

#[cfg(test)]
mod tests {
    use crate::cluster::{Cluster, ClusterSpec};

    #[test]
    fn send_recv_round_trip() {
        let (results, report) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 7, vec![1.0f32, 2.0, 3.0]).unwrap();
                Vec::new()
            } else {
                ctx.recv_f32(0, 7).unwrap()
            }
        });
        assert_eq!(results[1], vec![1.0, 2.0, 3.0]);
        assert_eq!(report.inter_node_bytes, 12);
    }

    #[test]
    fn out_of_order_tags_are_buffered() {
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 1, vec![1.0f32]).unwrap();
                ctx.send(1, 2, vec![2.0f32]).unwrap();
                ctx.send(1, 3, vec![3.0f32]).unwrap();
                0.0
            } else {
                // Receive in reverse order of sending.
                let a = ctx.recv_f32(0, 3).unwrap()[0];
                let b = ctx.recv_f32(0, 2).unwrap()[0];
                let c = ctx.recv_f32(0, 1).unwrap()[0];
                a * 100.0 + b * 10.0 + c
            }
        });
        assert_eq!(results[1], 321.0);
    }

    #[test]
    fn same_tag_messages_are_fifo() {
        let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
            if ctx.rank() == 0 {
                for i in 0..5 {
                    ctx.send(1, 9, vec![i as f32]).unwrap();
                }
                Vec::new()
            } else {
                (0..5).map(|_| ctx.recv_f32(0, 9).unwrap()[0]).collect()
            }
        });
        assert_eq!(results[1], vec![0.0, 1.0, 2.0, 3.0, 4.0]);
    }

    #[test]
    fn intra_node_traffic_is_classified() {
        let spec = ClusterSpec { ranks: 4, gpus_per_node: 2 };
        let (_, report) = Cluster::run(spec, |ctx| {
            if ctx.rank() == 0 {
                ctx.send(1, 0, vec![0.0f32; 10]).unwrap(); // same node
                ctx.send(2, 1, vec![0.0f32; 10]).unwrap(); // other node
            } else if ctx.rank() == 1 {
                ctx.recv(0, 0).unwrap();
            } else if ctx.rank() == 2 {
                ctx.recv(0, 1).unwrap();
            }
        });
        assert_eq!(report.intra_node_bytes, 40);
        assert_eq!(report.inter_node_bytes, 40);
    }

    #[test]
    fn self_send_is_free() {
        let (_, report) = Cluster::run(ClusterSpec::flat(1), |ctx| {
            ctx.send(0, 5, vec![9.0f32; 100]).unwrap();
            assert_eq!(ctx.recv_f32(0, 5).unwrap().len(), 100);
        });
        assert_eq!(report.total_bytes(), 0);
    }

    #[test]
    fn barrier_synchronizes() {
        use std::sync::atomic::{AtomicUsize, Ordering};
        let counter = AtomicUsize::new(0);
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            counter.fetch_add(1, Ordering::SeqCst);
            ctx.barrier();
            counter.load(Ordering::SeqCst)
        });
        assert!(results.iter().all(|&v| v == 4));
    }
}
