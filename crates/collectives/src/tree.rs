//! Topology-aware tree all-reduce.
//!
//! The flat ring in [`crate::coll`] spans the whole group regardless of where
//! ranks physically sit, so one hop across an oversubscribed tier gates every
//! step. This module composes the §4.1 idea — elect a representative, reduce
//! beneath it, recurse — over an arbitrary tier hierarchy ([`TierMap`]):
//!
//! 1. partition the group's ranks by their innermost-tier cell and ring
//!    all-reduce within each cell (fast links only);
//! 2. each cell's lowest rank becomes its *representative* and recurses into
//!    the next tier up, until one ring covers all remaining representatives;
//! 3. representatives fan the reduced buffer back down, level by level, to
//!    the ranks they represented.
//!
//! The result is **deterministic and identical on every rank**: reduction
//! order depends only on the sorted member list and the tier map, never on
//! message timing. On data whose sums are exactly representable (integers
//! within f32's 2^24 window) it is bit-identical to the flat ring oracle;
//! for general floats the two differ only by association order.
//!
//! Every send is attributed to the tier it crosses ([`TreeStats`]), which is
//! how the runtime's per-tier byte telemetry is fed.

use crate::coll::chunk_range;
use crate::ctx::RankCtx;
use crate::error::CommError;
use crate::group::CommGroup;
use symi_telemetry::MetricRegistry;

/// A pure-arithmetic description of where ranks sit in the tier hierarchy:
/// `arities[t]` children per tier-`t` cell, innermost first. Rank `r`'s
/// tier-`t` cell is `r / (arities[0] · … · arities[t])` — the same addressing
/// `symi-netsim`'s `Topology` uses, minus the bandwidth numbers the runtime
/// doesn't need.
#[derive(Clone, Debug, PartialEq, Eq)]
pub struct TierMap {
    arities: Vec<usize>,
}

impl TierMap {
    /// A map with the given per-tier arities (innermost first).
    pub fn new(arities: Vec<usize>) -> Self {
        assert!(!arities.is_empty(), "a tier map needs at least one tier");
        assert!(arities.iter().all(|&a| a >= 1), "every tier needs arity >= 1");
        Self { arities }
    }

    /// Single-tier map: the whole world is one cell (tree degenerates to
    /// one flat ring).
    pub fn flat(ranks: usize) -> Self {
        Self::new(vec![ranks.max(1)])
    }

    pub fn num_tiers(&self) -> usize {
        self.arities.len()
    }

    /// Ranks covered: the product of all arities.
    pub fn ranks(&self) -> usize {
        self.arities.iter().product()
    }

    /// Ranks per tier-`level` cell (product of arities up to and including
    /// `level`).
    pub fn cell_size(&self, level: usize) -> usize {
        self.arities[..=level].iter().product()
    }

    /// Which tier-`level` cell `rank` belongs to.
    pub fn cell_of(&self, rank: usize, level: usize) -> usize {
        rank / self.cell_size(level)
    }

    /// Innermost tier whose cells contain both ranks (`None` for `a == b`).
    pub fn tier_between(&self, a: usize, b: usize) -> Option<usize> {
        if a == b {
            return None;
        }
        (0..self.num_tiers()).find(|&t| self.cell_of(a, t) == self.cell_of(b, t))
    }
}

/// Per-tier accounting of what one rank sent during a tree collective.
/// Aggregate across ranks for the cluster-wide per-tier volume.
#[derive(Clone, Debug, Default, PartialEq, Eq)]
pub struct TreeStats {
    /// Bytes this rank sent across each tier (innermost first).
    pub sent_bytes_by_tier: Vec<u64>,
    /// Messages this rank sent across each tier.
    pub messages_by_tier: Vec<u64>,
}

impl TreeStats {
    fn zero(tiers: usize) -> Self {
        Self { sent_bytes_by_tier: vec![0; tiers], messages_by_tier: vec![0; tiers] }
    }

    fn record(&mut self, tier: usize, bytes: u64, messages: u64) {
        self.sent_bytes_by_tier[tier] += bytes;
        self.messages_by_tier[tier] += messages;
    }

    pub fn total_bytes(&self) -> u64 {
        self.sent_bytes_by_tier.iter().sum()
    }

    /// Folds another rank's stats into this one (cluster-wide aggregation).
    pub fn merge(&mut self, other: &TreeStats) {
        assert_eq!(self.sent_bytes_by_tier.len(), other.sent_bytes_by_tier.len());
        for (a, b) in self.sent_bytes_by_tier.iter_mut().zip(&other.sent_bytes_by_tier) {
            *a += b;
        }
        for (a, b) in self.messages_by_tier.iter_mut().zip(&other.messages_by_tier) {
            *a += b;
        }
    }

    /// Publishes per-tier gauges (`tree.tier{t}.sent_bytes`,
    /// `tree.tier{t}.messages`) to a metric registry.
    pub fn publish(&self, metrics: &MetricRegistry) {
        for (t, (&b, &m)) in self.sent_bytes_by_tier.iter().zip(&self.messages_by_tier).enumerate()
        {
            metrics.gauge(&format!("tree.tier{t}.sent_bytes")).set(b as f64);
            metrics.gauge(&format!("tree.tier{t}.messages")).set(m as f64);
        }
    }
}

/// Elements a member at ring index `idx` sends during a ring all-reduce of
/// `len` elements over `m` members (reduce-scatter + all-gather halves).
fn ring_sent_elems(len: usize, m: usize, idx: usize) -> usize {
    if m <= 1 || len == 0 {
        return 0;
    }
    let mut total = 0;
    for step in 0..m - 1 {
        let rs_chunk = (idx + m - step) % m;
        let ag_chunk = (idx + 1 + m - step) % m;
        let (a, b) = chunk_range(len, m, rs_chunk);
        let (c, d) = chunk_range(len, m, ag_chunk);
        total += (b - a) + (d - c);
    }
    total
}

/// The up-phase plan: for each executed level, the cells (each a sorted
/// rank list) that were active there. Identical on every rank.
fn plan_levels(map: &TierMap, members: &[usize]) -> Vec<Vec<Vec<usize>>> {
    let mut plan = Vec::new();
    let mut active: Vec<usize> = members.to_vec();
    for level in 0..map.num_tiers() {
        if active.len() <= 1 {
            break;
        }
        let mut cells: Vec<Vec<usize>> = Vec::new();
        let mut cur = usize::MAX;
        for &r in &active {
            let c = map.cell_of(r, level);
            if cells.is_empty() || c != cur {
                cells.push(Vec::new());
                cur = c;
            }
            cells.last_mut().expect("just pushed").push(r);
        }
        active = cells.iter().map(|c| c[0]).collect();
        plan.push(cells);
    }
    assert!(active.len() <= 1, "outermost tier must contain the whole group");
    plan
}

impl RankCtx {
    /// In-place topology-aware tree all-reduce (sum) of `data` across
    /// `group`, attributing every sent byte to the tier it crossed.
    ///
    /// All members must call with the same `group`, `map`, `tag`, and data
    /// length. The reduction is deterministic and every member returns the
    /// identical buffer (see module docs for the bit-exactness contract).
    ///
    /// # Errors
    /// Returns [`CommError::NotInGroup`] if this rank is not a member.
    pub fn tree_allreduce_sum(
        &mut self,
        group: &CommGroup,
        map: &TierMap,
        tag: u64,
        data: &mut [f32],
    ) -> Result<TreeStats, CommError> {
        let me = self.rank();
        if !group.contains(me) {
            return Err(CommError::NotInGroup { rank: me });
        }
        assert!(
            *group.ranks().last().expect("non-empty group") < map.ranks(),
            "group rank beyond the tier map's {}-rank world",
            map.ranks(),
        );
        let mut stats = TreeStats::zero(map.num_tiers());
        if group.size() == 1 || data.is_empty() {
            return Ok(stats);
        }
        let plan = plan_levels(map, group.ranks());

        // Up phase: ring within my cell at each level while I remain the
        // representative. `my_drop` records the level at which a higher-
        // indexed... rather, at which my cell's lowest rank took over.
        let mut my_drop: Option<(usize, usize)> = None; // (level, rep)
        for (level, cells) in plan.iter().enumerate() {
            let Some(cell) = cells.iter().find(|c| c.contains(&me)) else {
                break; // no longer active at this level
            };
            if cell.len() > 1 {
                let ring_tag = Self::subop_tag(tag, (2 * level + 3) as u8);
                let cell_group = CommGroup::new(cell.clone());
                let idx = cell_group.index_of(me).expect("member of own cell");
                self.allreduce_sum(&cell_group, ring_tag, data)?;
                let elems = ring_sent_elems(data.len(), cell.len(), idx) as u64;
                stats.record(level, elems * 4, 2 * (cell.len() as u64 - 1));
            }
            if cell[0] != me {
                my_drop = Some((level, cell[0]));
                break;
            }
        }
        // The final level is always a single cell (the plan only ends once
        // one ring covers every remaining representative), and that ring
        // leaves *all* its members — not just the lowest — with the global
        // sum. A member "dropped" there is already synchronized and must
        // still fan down to the cells it represents at inner levels.
        if let Some((level, _)) = my_drop {
            if level + 1 == plan.len() {
                my_drop = None;
            }
        }

        // Down phase, outermost level first. The final level's ring covered
        // every remaining representative in one cell, so its members already
        // hold the global sum and need no fan-down.
        for level in (0..plan.len().saturating_sub(1)).rev() {
            if let Some((drop_level, rep)) = my_drop {
                if drop_level == level {
                    let down_tag = Self::subop_tag(tag, (2 * level + 4) as u8);
                    let incoming = self.recv_f32(rep, down_tag)?;
                    debug_assert_eq!(incoming.len(), data.len());
                    data.copy_from_slice(&incoming);
                    my_drop = None;
                }
                continue; // not yet re-synchronized: nothing to send below
            }
            let Some(cell) = plan[level].iter().find(|c| c.first() == Some(&me)) else {
                continue;
            };
            let down_tag = Self::subop_tag(tag, (2 * level + 4) as u8);
            for &member in &cell[1..] {
                self.send(member, down_tag, data.to_vec())?;
                stats.record(level, data.len() as u64 * 4, 1);
            }
        }
        debug_assert!(my_drop.is_none(), "every dropped rank is re-synchronized");
        Ok(stats)
    }
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::cluster::{Cluster, ClusterSpec};

    /// Integer-valued payload: f32 addition over these is exact, so the
    /// tree and the flat ring must agree *bitwise* no matter how either
    /// associates the sum.
    fn int_payload(rank: usize, len: usize) -> Vec<f32> {
        (0..len).map(|i| ((rank * 13 + i * 7) % 32) as f32 - 16.0).collect()
    }

    #[test]
    fn tier_map_addressing() {
        let map = TierMap::new(vec![2, 2, 2]);
        assert_eq!(map.ranks(), 8);
        assert_eq!(map.cell_size(0), 2);
        assert_eq!(map.cell_size(2), 8);
        assert_eq!(map.cell_of(5, 0), 2);
        assert_eq!(map.cell_of(5, 1), 1);
        assert_eq!(map.tier_between(0, 1), Some(0));
        assert_eq!(map.tier_between(0, 2), Some(1));
        assert_eq!(map.tier_between(0, 7), Some(2));
        assert_eq!(map.tier_between(3, 3), None);
        assert_eq!(TierMap::flat(6).tier_between(0, 5), Some(0));
    }

    #[test]
    fn matches_flat_ring_bitwise_on_integer_data() {
        let map = TierMap::new(vec![2, 2, 2]);
        let map_ref = &map;
        let len = 23; // not divisible by any cell size: uneven chunks
        let (results, _) = Cluster::run(ClusterSpec::flat(8), |ctx| {
            let world = ctx.groups().world();
            let mut tree_data = int_payload(ctx.rank(), len);
            let mut ring_data = tree_data.clone();
            let stats = ctx.tree_allreduce_sum(&world, map_ref, 101, &mut tree_data).unwrap();
            ctx.allreduce_sum(&world, 102, &mut ring_data).unwrap();
            (tree_data, ring_data, stats)
        });
        let (first_tree, _, _) = &results[0];
        for (rank, (tree, ring, _)) in results.iter().enumerate() {
            for (i, (a, b)) in tree.iter().zip(ring).enumerate() {
                assert_eq!(a.to_bits(), b.to_bits(), "rank {rank} elem {i}: {a} vs {b}");
            }
            assert_eq!(tree, first_tree, "rank {rank}: results must be rank-identical");
        }
    }

    #[test]
    fn per_tier_byte_attribution_is_exact() {
        // 8 ranks as 2×2×2; full world; len divisible by every cell size so
        // the ring volumes are exact. Per level ℓ the rings move
        // 2(m−1)/m·len·4 bytes per member; every dropped member later
        // receives one full buffer from its representative.
        let map = TierMap::new(vec![2, 2, 2]);
        let map_ref = &map;
        let len = 64;
        let (results, _) = Cluster::run(ClusterSpec::flat(8), |ctx| {
            let world = ctx.groups().world();
            let mut data = int_payload(ctx.rank(), len);
            ctx.tree_allreduce_sum(&world, map_ref, 33, &mut data).unwrap()
        });
        let mut total = TreeStats::zero(3);
        for s in &results {
            total.merge(s);
        }
        let buf = (len * 4) as u64; // 256 bytes
                                    // Level 0: 4 cells × 2 members ring (len bytes×4 each... 2(m−1)/m = 1
                                    // buffer per member) + 4 fan-down sends of one buffer.
        assert_eq!(total.sent_bytes_by_tier[0], 8 * buf + 4 * buf);
        // Level 1: 2 cells × 2 reps + 2 fan-down sends.
        assert_eq!(total.sent_bytes_by_tier[1], 4 * buf + 2 * buf);
        // Level 2 (final ring over 2 reps): no fan-down needed.
        assert_eq!(total.sent_bytes_by_tier[2], 2 * buf);
        // Message counts: rings send 2(m−1) messages per member.
        assert_eq!(total.messages_by_tier[0], 8 * 2 + 4);
        assert_eq!(total.messages_by_tier[2], 2 * 2);
        // Publishing exposes the same numbers as gauges.
        let metrics = MetricRegistry::new();
        total.publish(&metrics);
        assert_eq!(metrics.gauge("tree.tier0.sent_bytes").get(), (8 * buf + 4 * buf) as f64);
    }

    #[test]
    fn sparse_subgroup_reduces_correctly() {
        // Only ranks {0, 3, 5, 6} of a 2×2×2 world participate; cells are
        // partial and some are singletons at level 0.
        let map = TierMap::new(vec![2, 2, 2]);
        let map_ref = &map;
        let members = [0usize, 3, 5, 6];
        let (results, _) = Cluster::run(ClusterSpec::flat(8), |ctx| {
            if !members.contains(&ctx.rank()) {
                return Vec::new();
            }
            let group = CommGroup::new(members.to_vec());
            let mut data = int_payload(ctx.rank(), 9);
            ctx.tree_allreduce_sum(&group, map_ref, 55, &mut data).unwrap();
            data
        });
        let expect: Vec<f32> =
            (0..9).map(|i| members.iter().map(|&r| int_payload(r, 9)[i]).sum()).collect();
        for &r in &members {
            assert_eq!(results[r], expect, "rank {r}");
        }
    }

    #[test]
    fn degenerate_shapes_are_no_ops() {
        let map = TierMap::new(vec![2, 2]);
        let map_ref = &map;
        let (results, report) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            // Single-member group: nothing moves.
            if ctx.rank() == 2 {
                let lone = CommGroup::new(vec![2]);
                let mut data = vec![4.25f32; 3];
                let stats = ctx.tree_allreduce_sum(&lone, map_ref, 9, &mut data).unwrap();
                assert_eq!(stats.total_bytes(), 0);
                assert_eq!(data, vec![4.25f32; 3]);
            }
            // Empty buffer across the full world: also nothing.
            let world = ctx.groups().world();
            let mut empty: Vec<f32> = Vec::new();
            let stats = ctx.tree_allreduce_sum(&world, map_ref, 10, &mut empty).unwrap();
            stats.total_bytes()
        });
        assert_eq!(results, vec![0, 0, 0, 0]);
        assert_eq!(report.total_bytes(), 0);
    }

    #[test]
    fn non_member_call_is_rejected() {
        let map = TierMap::new(vec![2, 2]);
        let map_ref = &map;
        let (results, _) = Cluster::run(ClusterSpec::flat(4), |ctx| {
            if ctx.rank() != 3 {
                return None;
            }
            let group = CommGroup::new(vec![0, 1]);
            let mut data = vec![1.0f32];
            Some(ctx.tree_allreduce_sum(&group, map_ref, 11, &mut data).unwrap_err())
        });
        assert_eq!(results[3], Some(CommError::NotInGroup { rank: 3 }));
    }
}
