//! # symi-collectives
//!
//! A from-scratch, thread-per-rank SPMD cluster runtime with the collective
//! communication primitives the SYMI paper builds on — the stand-in for
//! NCCL/`torch.distributed` in this reproduction (the paper's cluster is
//! 16 A100 GPUs; here every rank is an OS thread and every link is a typed
//! channel, but the *algorithms* and therefore the data-volume formulas are
//! the real ones).
//!
//! What this crate provides:
//!
//! - [`cluster::Cluster`]: spawns one thread per rank and runs an SPMD
//!   closure on each, with panic propagation and deterministic teardown.
//! - [`ctx::RankCtx`]: per-rank handle with tagged point-to-point `send` /
//!   `recv`, barriers, and the collectives below.
//! - Ring all-reduce, reduce-scatter, all-gather, broadcast, gather,
//!   all-to-all(v) ([`coll`]), matching the volume formulas in §3.3/A.2 of
//!   the paper (e.g. ring all-reduce moves `2(r−1)/r · G` per rank).
//! - Batched point-to-point transfers ([`p2p`]) — the paper's
//!   `batch_isend_irecv` used by the SYMI optimizer's gradient-collection
//!   and weight-materialization phases (§4.3–4.4), split into nonblocking
//!   issue/complete halves ([`ctx::PendingRecv`], [`p2p::PendingBatch`])
//!   so an overlap scheduler can hide the transfer latency behind compute
//!   without breaking epoch fencing.
//! - The **intra+inter rank all-reduce** of §4.1 ([`hier`]): elect a slot
//!   representative inside each rank, all-reduce across representative
//!   ranks only, then fan back out to local slots.
//! - A contiguous-range communicator registry ([`group`]) — §4.2's
//!   `N(N−1)/2` pre-registered groups that make per-iteration regrouping
//!   free.
//! - Deterministic chaos ([`fault`]): seeded [`FaultPlan`]s that drop,
//!   duplicate, delay or reorder tagged messages and stall or kill ranks,
//!   paired with the mailbox's bounded retry-with-backoff and
//!   [`ProtocolFailure`] escalation so recovery is testable.
//! - Per-link-class traffic accounting ([`traffic`]): every payload byte is
//!   attributed to the intra-node (PCIe/NVLink-class) or inter-node
//!   (network-class) link it crossed, so `symi-netsim` can price a real
//!   execution with the paper's α–β model.

pub mod cluster;
pub mod coll;
pub mod ctx;
pub mod error;
pub mod fault;
pub mod group;
pub mod hier;
pub mod membership;
pub mod p2p;
pub mod payload;
pub mod tag;
pub mod traffic;
pub mod tree;

pub use cluster::{Cluster, ClusterSpec};
pub use ctx::{PendingRecv, PendingSend, ProtocolStats, RankCtx, RetryPolicy};
pub use error::{CommError, ProtocolFailure};
pub use fault::{FaultKind, FaultPlan, FaultRule, FaultStats, MsgMatch};
pub use group::{CommGroup, GroupRegistry};
pub use membership::{MembershipView, JOIN_BOOT_ITER, RECOVERY_LAYER};
pub use p2p::{OverlapStats, PendingBatch, RecvOp, SendOp};
pub use payload::{decode_f16_into, encode_f16, Payload};
pub use tag::{TagFields, TagSpace, WirePhase};
pub use traffic::{LinkClass, TrafficReport, TrafficStats};
pub use tree::{TierMap, TreeStats};
