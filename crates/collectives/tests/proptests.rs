//! Randomized property tests for the collective algorithms: for random world
//! sizes, buffer lengths, and contents, every collective must agree with its
//! sequential specification. Driven by `symi_tensor::rng` with fixed seeds.

use symi_collectives::hier::ReduceMode;
use symi_collectives::{Cluster, ClusterSpec};
use symi_tensor::rng::{Rng, StdRng};

#[test]
fn allreduce_equals_sequential_sum() {
    let mut rng = StdRng::seed_from_u64(201);
    for _ in 0..24 {
        let n = rng.gen_range(1..9usize);
        let len = rng.gen_range(0..40usize);
        let seedv: Vec<f32> = (0..8 * 40).map(|_| rng.gen::<f32>() * 200.0 - 100.0).collect();
        let seedv_ref = &seedv;
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let mut data: Vec<f32> = (0..len).map(|i| seedv_ref[ctx.rank() * 40 + i]).collect();
            ctx.allreduce_sum(&group, 1, &mut data).unwrap();
            data
        });
        let expect: Vec<f32> = (0..len).map(|i| (0..n).map(|r| seedv[r * 40 + i]).sum()).collect();
        for res in &results {
            for (a, b) in res.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-2 * (1.0 + b.abs()));
            }
        }
    }
}

#[test]
fn broadcast_from_any_root() {
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..24 {
        let n = rng.gen_range(1..9usize);
        let root = rng.gen_range(0..n);
        let len = rng.gen_range(1..30usize);
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let data = (ctx.rank() == root)
                .then(|| (0..len).map(|i| i as f32 * 1.5).collect::<Vec<f32>>());
            ctx.broadcast(&group, root, 2, data).unwrap()
        });
        for res in results {
            assert_eq!(res.len(), len);
            for (i, v) in res.iter().enumerate() {
                assert_eq!(*v, i as f32 * 1.5);
            }
        }
    }
}

#[test]
fn alltoallv_is_a_transpose() {
    let mut rng = StdRng::seed_from_u64(203);
    for _ in 0..24 {
        let n = rng.gen_range(1..7usize);
        // out[dest][src] must equal in[src][dest] for arbitrary sizes.
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let bufs: Vec<Vec<f32>> =
                (0..n).map(|j| vec![(ctx.rank() * 100 + j) as f32; (ctx.rank() + j) % 3]).collect();
            ctx.alltoallv_f32(&group, 3, bufs).unwrap()
        });
        for (dest, inbox) in results.iter().enumerate() {
            for (src, buf) in inbox.iter().enumerate() {
                assert_eq!(buf.len(), (src + dest) % 3);
                for v in buf {
                    assert_eq!(*v, (src * 100 + dest) as f32);
                }
            }
        }
    }
}

#[test]
fn reduce_scatter_chunks_reassemble_allreduce() {
    let mut rng = StdRng::seed_from_u64(204);
    for _ in 0..24 {
        let n = rng.gen_range(1..7usize);
        let len = rng.gen_range(1..50usize);
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let data: Vec<f32> = (0..len).map(|i| (i * (ctx.rank() + 1)) as f32).collect();
            ctx.reduce_scatter_sum(&group, 4, &data).unwrap()
        });
        let total_rank_weight: usize = (1..=n).sum();
        let mut assembled = vec![f32::NAN; len];
        for (offset, chunk) in results {
            for (k, v) in chunk.iter().enumerate() {
                assembled[offset + k] = *v;
            }
        }
        for (i, v) in assembled.iter().enumerate() {
            assert!((v - (i * total_rank_weight) as f32).abs() < 1e-2);
        }
    }
}

#[test]
fn hierarchical_allreduce_matches_flat_sum() {
    let mut rng = StdRng::seed_from_u64(205);
    for _ in 0..24 {
        let n = rng.gen_range(1..5usize);
        let slots: Vec<usize> = (0..4).map(|_| rng.gen_range(1..4usize)).collect();
        let len = rng.gen_range(1..16usize);
        let slots_ref = &slots;
        let slots_for = |rank: usize| slots_ref[rank];
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().range(0, n);
            let total: usize = (0..n).map(slots_for).sum();
            let mut locals: Vec<Vec<f32>> = (0..slots_for(ctx.rank()))
                .map(|s| vec![(ctx.rank() * 7 + s) as f32; len])
                .collect();
            ctx.expert_allreduce(&group, 5, &mut locals, total, ReduceMode::Sum).unwrap();
            locals
        });
        let expect: f32 =
            (0..n).flat_map(|r| (0..slots_for(r)).map(move |s| (r * 7 + s) as f32)).sum();
        for per_rank in &results {
            for slot in per_rank {
                for v in slot {
                    assert!((v - expect).abs() < 1e-2);
                }
            }
        }
    }
}
