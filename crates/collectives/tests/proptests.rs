//! Randomized property tests for the collective algorithms: for random world
//! sizes, buffer lengths, and contents, every collective must agree with its
//! sequential specification. Driven by `symi_tensor::rng` with fixed seeds.

use symi_collectives::hier::ReduceMode;
use symi_collectives::{tag, Cluster, ClusterSpec, TagSpace, WirePhase};
use symi_tensor::rng::{Rng, StdRng};

#[test]
fn allreduce_equals_sequential_sum() {
    let mut rng = StdRng::seed_from_u64(201);
    for _ in 0..24 {
        let n = rng.gen_range(1..9usize);
        let len = rng.gen_range(0..40usize);
        let seedv: Vec<f32> = (0..8 * 40).map(|_| rng.gen::<f32>() * 200.0 - 100.0).collect();
        let seedv_ref = &seedv;
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let mut data: Vec<f32> = (0..len).map(|i| seedv_ref[ctx.rank() * 40 + i]).collect();
            ctx.allreduce_sum(&group, 1, &mut data).unwrap();
            data
        });
        let expect: Vec<f32> = (0..len).map(|i| (0..n).map(|r| seedv[r * 40 + i]).sum()).collect();
        for res in &results {
            for (a, b) in res.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-2 * (1.0 + b.abs()));
            }
        }
    }
}

#[test]
fn broadcast_from_any_root() {
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..24 {
        let n = rng.gen_range(1..9usize);
        let root = rng.gen_range(0..n);
        let len = rng.gen_range(1..30usize);
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let data = (ctx.rank() == root)
                .then(|| (0..len).map(|i| i as f32 * 1.5).collect::<Vec<f32>>());
            ctx.broadcast(&group, root, 2, data).unwrap()
        });
        for res in results {
            assert_eq!(res.len(), len);
            for (i, v) in res.iter().enumerate() {
                assert_eq!(*v, i as f32 * 1.5);
            }
        }
    }
}

#[test]
fn alltoallv_is_a_transpose() {
    let mut rng = StdRng::seed_from_u64(203);
    for _ in 0..24 {
        let n = rng.gen_range(1..7usize);
        // out[dest][src] must equal in[src][dest] for arbitrary sizes.
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let bufs: Vec<Vec<f32>> =
                (0..n).map(|j| vec![(ctx.rank() * 100 + j) as f32; (ctx.rank() + j) % 3]).collect();
            ctx.alltoallv_f32(&group, 3, bufs).unwrap()
        });
        for (dest, inbox) in results.iter().enumerate() {
            for (src, buf) in inbox.iter().enumerate() {
                assert_eq!(buf.len(), (src + dest) % 3);
                for v in buf {
                    assert_eq!(*v, (src * 100 + dest) as f32);
                }
            }
        }
    }
}

#[test]
fn reduce_scatter_chunks_reassemble_allreduce() {
    let mut rng = StdRng::seed_from_u64(204);
    for _ in 0..24 {
        let n = rng.gen_range(1..7usize);
        let len = rng.gen_range(1..50usize);
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let data: Vec<f32> = (0..len).map(|i| (i * (ctx.rank() + 1)) as f32).collect();
            ctx.reduce_scatter_sum(&group, 4, &data).unwrap()
        });
        let total_rank_weight: usize = (1..=n).sum();
        let mut assembled = vec![f32::NAN; len];
        for (offset, chunk) in results {
            for (k, v) in chunk.iter().enumerate() {
                assembled[offset + k] = *v;
            }
        }
        for (i, v) in assembled.iter().enumerate() {
            assert!((v - (i * total_rank_weight) as f32).abs() < 1e-2);
        }
    }
}

fn random_fields(rng: &mut StdRng) -> (usize, u64, WirePhase, usize, usize) {
    let layer = rng.gen_range(0..64usize);
    let iteration = rng.gen::<u64>() & ((1 << 18) - 1);
    let phase = WirePhase::ALL[rng.gen_range(0..WirePhase::ALL.len())];
    let entity = rng.gen_range(0..(1usize << 14));
    let src = rng.gen_range(0..256usize);
    (layer, iteration, phase, entity, src)
}

#[test]
fn tag_decode_inverts_encode() {
    let mut rng = StdRng::seed_from_u64(206);
    for _ in 0..2000 {
        let (layer, iteration, phase, entity, src) = random_fields(&mut rng);
        let mut t = TagSpace::new(layer, iteration).tag(phase, entity, src);
        let step = if rng.gen::<bool>() {
            let s = rng.gen_range(0..1023u64);
            t = tag::with_step(t, s);
            Some(s)
        } else {
            None
        };
        let subop = if rng.gen::<bool>() {
            let s = rng.gen_range(0..4u64) as u8;
            t = tag::with_subop(t, s);
            s
        } else {
            0
        };
        let f = tag::decode(t).expect("structured tags must decode");
        assert_eq!(
            (f.layer, f.iteration, f.phase(), f.entity, f.src, f.step, f.subop),
            (layer as u64, iteration, Some(phase), entity as u64, src as u64, step, subop),
            "round-trip failed for tag {t:#x}"
        );
    }
}

#[test]
fn tag_fields_are_disjoint() {
    // Changing exactly one field must leave every other decoded field
    // untouched — the whole point of positional bit fields over XOR mixing.
    let mut rng = StdRng::seed_from_u64(207);
    for _ in 0..2000 {
        let (layer, iteration, phase, entity, src) = random_fields(&mut rng);
        let base = TagSpace::new(layer, iteration).tag(phase, entity, src);
        let b = tag::decode(base).unwrap();
        let entity2 = (entity + 1 + rng.gen_range(0..100usize)) & ((1 << 14) - 1);
        let varied = TagSpace::new(layer, iteration).tag(phase, entity2, src);
        assert_ne!(base, varied, "distinct entities must produce distinct tags");
        let v = tag::decode(varied).unwrap();
        assert_eq!(
            (v.layer, v.iteration, v.phase(), v.src),
            (b.layer, b.iteration, b.phase(), b.src),
            "entity change leaked into sibling fields"
        );
        assert_eq!(v.entity, entity2 as u64);
    }
}

#[test]
fn structured_tags_never_collide_across_distinct_fields() {
    let mut rng = StdRng::seed_from_u64(208);
    let mut seen = std::collections::HashMap::new();
    for _ in 0..4000 {
        let key = random_fields(&mut rng);
        let (layer, iteration, phase, entity, src) = key;
        let t = TagSpace::new(layer, iteration).tag(phase, entity, src);
        if let Some(prev) = seen.insert(t, key) {
            assert_eq!(prev, key, "two field tuples mapped to one tag {t:#x}");
        }
    }
}

#[test]
fn legacy_xor_scheme_aliased_grad_and_weight_phases() {
    // Regression fixture for the silent-corruption bug: the retired tag
    // scheme mixed `(iteration << 32) ^ (phase << 28)` bases with
    // class/slot/src XOR salts, so a GradCollect message for class 0 and a
    // WeightDistribute message for slot 16 from src 0 differed by
    // `(8 << 28) ^ (9 << 28) == 1 << 28` — exactly the bit slot 16's
    // `<< 24` salt lands on. Same iteration, same wire tag.
    let legacy_base = |iteration: u64, phase: u64| (iteration << 32) ^ (phase << 28);
    let legacy_grad = |it: u64, class: u64| legacy_base(it, 8) ^ (class << 20);
    let legacy_weight =
        |it: u64, slot: u64, src: u64| legacy_base(it, 9) ^ (slot << 24) ^ (src << 8);
    assert_eq!(
        legacy_grad(3, 0),
        legacy_weight(3, 16, 0),
        "fixture must reproduce the historical collision"
    );

    // The structured space keeps the same coordinates apart — for every
    // (slot, src) in range, not just the historical (16, 0).
    let tags = TagSpace::new(0, 3);
    for slot in 0..64 {
        for src in 0..8 {
            assert_ne!(
                tags.tag(WirePhase::GradCollect, 0, 0),
                tags.tag(WirePhase::WeightDistribute, slot, src),
                "slot {slot} src {src}"
            );
        }
    }
}

#[test]
fn hierarchical_allreduce_matches_flat_sum() {
    let mut rng = StdRng::seed_from_u64(205);
    for _ in 0..24 {
        let n = rng.gen_range(1..5usize);
        let slots: Vec<usize> = (0..4).map(|_| rng.gen_range(1..4usize)).collect();
        let len = rng.gen_range(1..16usize);
        let slots_ref = &slots;
        let slots_for = |rank: usize| slots_ref[rank];
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().range(0, n);
            let total: usize = (0..n).map(slots_for).sum();
            let mut locals: Vec<Vec<f32>> = (0..slots_for(ctx.rank()))
                .map(|s| vec![(ctx.rank() * 7 + s) as f32; len])
                .collect();
            ctx.expert_allreduce(&group, 5, &mut locals, total, ReduceMode::Sum).unwrap();
            locals
        });
        let expect: f32 =
            (0..n).flat_map(|r| (0..slots_for(r)).map(move |s| (r * 7 + s) as f32)).sum();
        for per_rank in &results {
            for slot in per_rank {
                for v in slot {
                    assert!((v - expect).abs() < 1e-2);
                }
            }
        }
    }
}
