//! Randomized property tests for the collective algorithms: for random world
//! sizes, buffer lengths, and contents, every collective must agree with its
//! sequential specification. Driven by `symi_tensor::rng` with fixed seeds.

use symi_collectives::hier::ReduceMode;
use symi_collectives::{
    tag, Cluster, ClusterSpec, CommError, CommGroup, RecvOp, SendOp, TagSpace, TierMap, WirePhase,
};
use symi_tensor::rng::{Rng, StdRng};

#[test]
fn allreduce_equals_sequential_sum() {
    let mut rng = StdRng::seed_from_u64(201);
    for _ in 0..24 {
        let n = rng.gen_range(1..9usize);
        let len = rng.gen_range(0..40usize);
        let seedv: Vec<f32> = (0..8 * 40).map(|_| rng.gen::<f32>() * 200.0 - 100.0).collect();
        let seedv_ref = &seedv;
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let mut data: Vec<f32> = (0..len).map(|i| seedv_ref[ctx.rank() * 40 + i]).collect();
            ctx.allreduce_sum(&group, 1, &mut data).unwrap();
            data
        });
        let expect: Vec<f32> = (0..len).map(|i| (0..n).map(|r| seedv[r * 40 + i]).sum()).collect();
        for res in &results {
            for (a, b) in res.iter().zip(&expect) {
                assert!((a - b).abs() < 1e-2 * (1.0 + b.abs()));
            }
        }
    }
}

#[test]
fn allreduce_grid_covers_buffers_shorter_than_the_group() {
    // Deterministic (len, group size) grid with len < m prominently
    // included: short buffers make `chunk_range` hand out *empty* chunks,
    // which every ring step must ship and apply without slipping an index.
    // Both the world group and a non-contiguous subgroup are exercised.
    for n in 1..=6usize {
        for len in [0usize, 1, 2, 3, n.saturating_sub(1), n, n + 1, 17] {
            let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
                let group = ctx.groups().world();
                let mut data: Vec<f32> =
                    (0..len).map(|i| ((ctx.rank() * 31 + i * 7) % 23) as f32).collect();
                ctx.allreduce_sum(&group, 40, &mut data).unwrap();
                data
            });
            let expect: Vec<f32> =
                (0..len).map(|i| (0..n).map(|r| ((r * 31 + i * 7) % 23) as f32).sum()).collect();
            for (rank, res) in results.iter().enumerate() {
                // Integer-valued data: the sums are exact, compare bitwise.
                assert_eq!(res, &expect, "world n={n} len={len} rank={rank}");
            }
        }
    }
    // Sparse subgroup {0, 2, 5} of 6: same grid of short buffers.
    let members = [0usize, 2, 5];
    for len in [0usize, 1, 2, 4, 9] {
        let (results, _) = Cluster::run(ClusterSpec::flat(6), |ctx| {
            if !members.contains(&ctx.rank()) {
                return Vec::new();
            }
            let group = CommGroup::new(members.to_vec());
            let mut data: Vec<f32> = (0..len).map(|i| (ctx.rank() * 10 + i) as f32).collect();
            ctx.allreduce_sum(&group, 41, &mut data).unwrap();
            data
        });
        let expect: Vec<f32> =
            (0..len).map(|i| members.iter().map(|&r| (r * 10 + i) as f32).sum()).collect();
        for &r in &members {
            assert_eq!(results[r], expect, "subgroup len={len} rank={r}");
        }
    }
}

#[test]
fn tree_allreduce_is_bit_exact_vs_flat_ring_on_random_topologies() {
    // The acceptance contract: on randomized tier maps, group subsets, and
    // buffer lengths, the tree collective must agree with the flat ring
    // oracle *bitwise*. Data is integer-valued so every partial sum is
    // exactly representable and association order cannot matter.
    let mut rng = StdRng::seed_from_u64(210);
    for trial in 0..20u64 {
        let tiers = rng.gen_range(1..4usize);
        let arities: Vec<usize> = (0..tiers).map(|_| rng.gen_range(1..4usize)).collect();
        let map = TierMap::new(arities.clone());
        let world = map.ranks();
        // Random non-empty member subset of the world.
        let mut members: Vec<usize> = (0..world).filter(|_| rng.gen::<bool>()).collect();
        if members.is_empty() {
            members.push(rng.gen_range(0..world));
        }
        let len = rng.gen_range(0..30usize);
        let members_ref = &members;
        let map_ref = &map;
        let (results, _) = Cluster::run(ClusterSpec::flat(world), |ctx| {
            if !members_ref.contains(&ctx.rank()) {
                return None;
            }
            let group = CommGroup::new(members_ref.clone());
            let mut tree_data: Vec<f32> =
                (0..len).map(|i| (((ctx.rank() + 1) * 17 + i * 5) % 64) as f32 - 32.0).collect();
            let mut ring_data = tree_data.clone();
            let stats = ctx.tree_allreduce_sum(&group, map_ref, 42, &mut tree_data).unwrap();
            ctx.allreduce_sum(&group, 43, &mut ring_data).unwrap();
            assert_eq!(stats.sent_bytes_by_tier.len(), map_ref.num_tiers());
            Some((tree_data, ring_data))
        });
        for (rank, res) in results.iter().enumerate() {
            let Some((tree, ring)) = res else { continue };
            for (i, (a, b)) in tree.iter().zip(ring).enumerate() {
                assert_eq!(
                    a.to_bits(),
                    b.to_bits(),
                    "trial {trial} arities {arities:?} members {members_ref:?} \
                     rank {rank} elem {i}: tree {a} vs ring {b}"
                );
            }
        }
    }
}

#[test]
fn broadcast_from_any_root() {
    let mut rng = StdRng::seed_from_u64(202);
    for _ in 0..24 {
        let n = rng.gen_range(1..9usize);
        let root = rng.gen_range(0..n);
        let len = rng.gen_range(1..30usize);
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let data = (ctx.rank() == root)
                .then(|| (0..len).map(|i| i as f32 * 1.5).collect::<Vec<f32>>());
            ctx.broadcast(&group, root, 2, data).unwrap()
        });
        for res in results {
            assert_eq!(res.len(), len);
            for (i, v) in res.iter().enumerate() {
                assert_eq!(*v, i as f32 * 1.5);
            }
        }
    }
}

#[test]
fn alltoallv_is_a_transpose() {
    let mut rng = StdRng::seed_from_u64(203);
    for _ in 0..24 {
        let n = rng.gen_range(1..7usize);
        // out[dest][src] must equal in[src][dest] for arbitrary sizes.
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let bufs: Vec<Vec<f32>> =
                (0..n).map(|j| vec![(ctx.rank() * 100 + j) as f32; (ctx.rank() + j) % 3]).collect();
            ctx.alltoallv_f32(&group, 3, bufs).unwrap()
        });
        for (dest, inbox) in results.iter().enumerate() {
            for (src, buf) in inbox.iter().enumerate() {
                assert_eq!(buf.len(), (src + dest) % 3);
                for v in buf {
                    assert_eq!(*v, (src * 100 + dest) as f32);
                }
            }
        }
    }
}

#[test]
fn reduce_scatter_chunks_reassemble_allreduce() {
    let mut rng = StdRng::seed_from_u64(204);
    for _ in 0..24 {
        let n = rng.gen_range(1..7usize);
        let len = rng.gen_range(1..50usize);
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().world();
            let data: Vec<f32> = (0..len).map(|i| (i * (ctx.rank() + 1)) as f32).collect();
            ctx.reduce_scatter_sum(&group, 4, &data).unwrap()
        });
        let total_rank_weight: usize = (1..=n).sum();
        let mut assembled = vec![f32::NAN; len];
        for (offset, chunk) in results {
            for (k, v) in chunk.iter().enumerate() {
                assembled[offset + k] = *v;
            }
        }
        for (i, v) in assembled.iter().enumerate() {
            assert!((v - (i * total_rank_weight) as f32).abs() < 1e-2);
        }
    }
}

fn random_fields(rng: &mut StdRng) -> (usize, u64, WirePhase, usize, usize) {
    let layer = rng.gen_range(0..64usize);
    let iteration = rng.gen::<u64>() & ((1 << 18) - 1);
    let phase = WirePhase::ALL[rng.gen_range(0..WirePhase::ALL.len())];
    let entity = rng.gen_range(0..(1usize << 14));
    let src = rng.gen_range(0..256usize);
    (layer, iteration, phase, entity, src)
}

#[test]
fn tag_decode_inverts_encode() {
    let mut rng = StdRng::seed_from_u64(206);
    for _ in 0..2000 {
        let (layer, iteration, phase, entity, src) = random_fields(&mut rng);
        let mut t = TagSpace::new(layer, iteration).tag(phase, entity, src);
        let step = if rng.gen::<bool>() {
            let s = rng.gen_range(0..1023u64);
            t = tag::with_step(t, s);
            Some(s)
        } else {
            None
        };
        let subop = if rng.gen::<bool>() {
            let s = rng.gen_range(0..4u64) as u8;
            t = tag::with_subop(t, s);
            s
        } else {
            0
        };
        let f = tag::decode(t).expect("structured tags must decode");
        assert_eq!(
            (f.layer, f.iteration, f.phase(), f.entity, f.src, f.step, f.subop),
            (layer as u64, iteration, Some(phase), entity as u64, src as u64, step, subop),
            "round-trip failed for tag {t:#x}"
        );
    }
}

#[test]
fn tag_fields_are_disjoint() {
    // Changing exactly one field must leave every other decoded field
    // untouched — the whole point of positional bit fields over XOR mixing.
    let mut rng = StdRng::seed_from_u64(207);
    for _ in 0..2000 {
        let (layer, iteration, phase, entity, src) = random_fields(&mut rng);
        let base = TagSpace::new(layer, iteration).tag(phase, entity, src);
        let b = tag::decode(base).unwrap();
        let entity2 = (entity + 1 + rng.gen_range(0..100usize)) & ((1 << 14) - 1);
        let varied = TagSpace::new(layer, iteration).tag(phase, entity2, src);
        assert_ne!(base, varied, "distinct entities must produce distinct tags");
        let v = tag::decode(varied).unwrap();
        assert_eq!(
            (v.layer, v.iteration, v.phase(), v.src),
            (b.layer, b.iteration, b.phase(), b.src),
            "entity change leaked into sibling fields"
        );
        assert_eq!(v.entity, entity2 as u64);
    }
}

#[test]
fn structured_tags_never_collide_across_distinct_fields() {
    let mut rng = StdRng::seed_from_u64(208);
    let mut seen = std::collections::HashMap::new();
    for _ in 0..4000 {
        let key = random_fields(&mut rng);
        let (layer, iteration, phase, entity, src) = key;
        let t = TagSpace::new(layer, iteration).tag(phase, entity, src);
        if let Some(prev) = seen.insert(t, key) {
            assert_eq!(prev, key, "two field tuples mapped to one tag {t:#x}");
        }
    }
}

#[test]
fn legacy_xor_scheme_aliased_grad_and_weight_phases() {
    // Regression fixture for the silent-corruption bug: the retired tag
    // scheme mixed `(iteration << 32) ^ (phase << 28)` bases with
    // class/slot/src XOR salts, so a GradCollect message for class 0 and a
    // WeightDistribute message for slot 16 from src 0 differed by
    // `(8 << 28) ^ (9 << 28) == 1 << 28` — exactly the bit slot 16's
    // `<< 24` salt lands on. Same iteration, same wire tag.
    let legacy_base = |iteration: u64, phase: u64| (iteration << 32) ^ (phase << 28);
    let legacy_grad = |it: u64, class: u64| legacy_base(it, 8) ^ (class << 20);
    let legacy_weight =
        |it: u64, slot: u64, src: u64| legacy_base(it, 9) ^ (slot << 24) ^ (src << 8);
    assert_eq!(
        legacy_grad(3, 0),
        legacy_weight(3, 16, 0),
        "fixture must reproduce the historical collision"
    );

    // The structured space keeps the same coordinates apart — for every
    // (slot, src) in range, not just the historical (16, 0).
    let tags = TagSpace::new(0, 3);
    for slot in 0..64 {
        for src in 0..8 {
            assert_ne!(
                tags.tag(WirePhase::GradCollect, 0, 0),
                tags.tag(WirePhase::WeightDistribute, slot, src),
                "slot {slot} src {src}"
            );
        }
    }
}

/// Deterministic payload for message `i` of the `(src, dst)` stream — both
/// endpoints (and the oracle) compute it independently.
fn stream_payload(src: usize, dst: usize, i: usize) -> Vec<f32> {
    let len = (src * 3 + dst + i) % 7 + 1;
    (0..len).map(|k| (src * 10_000 + dst * 1_000 + i * 100 + k) as f32 * 0.251).collect()
}

/// Messages on the `(src, dst)` stream — fixed by the endpoints so every
/// rank agrees without communicating.
fn stream_depth(src: usize, dst: usize) -> usize {
    (src + dst) % 3 + 1
}

#[test]
fn any_poll_interleaving_of_a_pending_batch_is_bit_exact_vs_blocking() {
    // Every rank sends a multi-message stream to every other rank, with
    // several messages reusing one (from, tag) pair so FIFO pairing is
    // actually load-bearing. One run completes the batch through
    // `batch_isend_irecv` (the blocking oracle); the others drive the same
    // batch through randomized poll / sleep / complete interleavings. The
    // received payloads must be bit-identical in every schedule, and the
    // hidden/exposed accounting must cover exactly the received bytes.
    let mut rng = StdRng::seed_from_u64(209);
    for trial in 0..12u64 {
        let n = rng.gen_range(2..5usize);
        let plan = |me: usize| -> (Vec<SendOp>, Vec<RecvOp>) {
            let mut sends = Vec::new();
            let mut recvs = Vec::new();
            for other in 0..n {
                if other == me {
                    continue;
                }
                for i in 0..stream_depth(me, other) {
                    // All messages of a stream share one tag: ordering
                    // within the stream comes from FIFO pairing alone.
                    sends.push(SendOp::new(other, 11, stream_payload(me, other, i)));
                }
                for i in 0..stream_depth(other, me) {
                    recvs.push(RecvOp::sized(other, 11, stream_payload(other, me, i).len()));
                }
            }
            (sends, recvs)
        };
        let expect = |me: usize| -> Vec<Vec<f32>> {
            let mut out = Vec::new();
            for other in 0..n {
                if other == me {
                    continue;
                }
                for i in 0..stream_depth(other, me) {
                    out.push(stream_payload(other, me, i));
                }
            }
            out
        };

        let (oracle, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let (sends, recvs) = plan(ctx.rank());
            let payloads = ctx.batch_isend_irecv(sends, &recvs).unwrap();
            payloads.into_iter().map(|p| p.into_f32().unwrap()).collect::<Vec<_>>()
        });
        for (rank, got) in oracle.iter().enumerate() {
            assert_eq!(got, &expect(rank), "blocking oracle wrong for rank {rank}");
        }

        for round in 0..3u64 {
            let (overlapped, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
                let mut local =
                    StdRng::seed_from_u64(trial * 1_000 + round * 100 + ctx.rank() as u64);
                let (sends, recvs) = plan(ctx.rank());
                let mut batch = ctx.batch_issue(sends, &recvs).unwrap();
                // Random schedule: poll, stall, or give up and block.
                loop {
                    match local.gen_range(0..4u32) {
                        0 => {
                            if batch.poll(ctx).unwrap() {
                                assert!(batch.is_complete());
                                assert_eq!(batch.outstanding(), 0);
                                break;
                            }
                        }
                        1 => std::thread::sleep(std::time::Duration::from_micros(
                            local.gen_range(0..200u64),
                        )),
                        2 => std::thread::yield_now(),
                        _ => break,
                    }
                }
                let (payloads, stats) = batch.complete(ctx).unwrap();
                let byte_total: u64 = payloads.iter().map(|p| p.byte_len()).sum();
                assert_eq!(
                    stats.hidden_bytes + stats.exposed_bytes,
                    byte_total,
                    "overlap accounting must cover every received byte"
                );
                payloads.into_iter().map(|p| p.into_f32().unwrap()).collect::<Vec<_>>()
            });
            assert_eq!(
                overlapped, oracle,
                "trial {trial} round {round}: a poll/wait schedule changed the received data"
            );
        }
    }
}

#[test]
fn recv_timeout_diagnostic_names_pending_overlapped_ops() {
    // A starved blocking receive that times out while overlapped irecvs
    // are still posted must name those in-flight ops — that listing is how
    // a wedged fence is diagnosed as "waiting on the wrong iteration's
    // scatter" instead of a bare timeout.
    use std::time::Duration;

    let (results, _) = Cluster::run(ClusterSpec::flat(2), |ctx| {
        if ctx.rank() == 0 {
            return None; // never sends anything: rank 1 starves
        }
        let tags = TagSpace::new(0, 7);
        let scatter = RecvOp::sized(0, tags.tag(WirePhase::WeightDistribute, 3, 0), 16);
        let batch = ctx.batch_issue(vec![], &[scatter]).unwrap();
        ctx.set_recv_timeout(Some(Duration::from_millis(10)));
        let err = ctx.recv_f32(0, tags.tag(WirePhase::GradCollect, 1, 0)).unwrap_err();
        batch.cancel(ctx);
        Some(err)
    });
    match results[1].as_ref().unwrap() {
        CommError::RecvTimeout { pending, .. } => {
            let posted: Vec<&String> =
                pending.iter().filter(|line| line.starts_with("posted irecv from=0")).collect();
            assert!(
                posted
                    .iter()
                    .any(|line| line.contains("WeightDistribute") && line.contains("expect=16")),
                "timeout must name the posted overlapped irecv: {pending:?}"
            );
        }
        other => panic!("expected RecvTimeout with pending listing, got {other:?}"),
    }
}

#[test]
fn hierarchical_allreduce_matches_flat_sum() {
    let mut rng = StdRng::seed_from_u64(205);
    for _ in 0..24 {
        let n = rng.gen_range(1..5usize);
        let slots: Vec<usize> = (0..4).map(|_| rng.gen_range(1..4usize)).collect();
        let len = rng.gen_range(1..16usize);
        let slots_ref = &slots;
        let slots_for = |rank: usize| slots_ref[rank];
        let (results, _) = Cluster::run(ClusterSpec::flat(n), |ctx| {
            let group = ctx.groups().range(0, n);
            let total: usize = (0..n).map(slots_for).sum();
            let mut locals: Vec<Vec<f32>> = (0..slots_for(ctx.rank()))
                .map(|s| vec![(ctx.rank() * 7 + s) as f32; len])
                .collect();
            ctx.expert_allreduce(&group, 5, &mut locals, total, ReduceMode::Sum).unwrap();
            locals
        });
        let expect: f32 =
            (0..n).flat_map(|r| (0..slots_for(r)).map(move |s| (r * 7 + s) as f32)).sum();
        for per_rank in &results {
            for slot in per_rank {
                for v in slot {
                    assert!((v - expect).abs() < 1e-2);
                }
            }
        }
    }
}
