//! Steady-state allocation regression test for the grad-sync hot path.
//!
//! `expert_allreduce` used to snapshot the representative tensor with
//! `rep.to_vec()` before fanning it back out to the co-located replica
//! slots — one heap allocation per expert class per iteration, exactly the
//! kind of steady-state churn the training loop is engineered to avoid.
//! The fix fans out through the disjoint borrows `split_first_mut` already
//! provides. This test pins the property: after warm-up, repeated
//! `expert_allreduce` calls perform **zero** heap allocations on the
//! calling thread.
//!
//! The counter is thread-local so the measuring rank thread only observes
//! its own allocations, keeping the assertion exact even if the test
//! harness runs other tests concurrently.

use std::alloc::{GlobalAlloc, Layout, System};
use std::cell::Cell;

use symi_collectives::cluster::{Cluster, ClusterSpec};
use symi_collectives::hier::ReduceMode;

struct CountingAlloc;

thread_local! {
    static ALLOCS: Cell<u64> = const { Cell::new(0) };
}

fn allocs_on_this_thread() -> u64 {
    ALLOCS.with(|c| c.get())
}

// SAFETY: defers all real work to `System`; the counter bump touches only a
// const-initialized thread-local `Cell`, which never allocates.
unsafe impl GlobalAlloc for CountingAlloc {
    unsafe fn alloc(&self, layout: Layout) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.alloc(layout)
    }

    unsafe fn dealloc(&self, ptr: *mut u8, layout: Layout) {
        System.dealloc(ptr, layout)
    }

    unsafe fn realloc(&self, ptr: *mut u8, layout: Layout, new_size: usize) -> *mut u8 {
        ALLOCS.with(|c| c.set(c.get() + 1));
        System.realloc(ptr, layout, new_size)
    }
}

#[global_allocator]
static ALLOCATOR: CountingAlloc = CountingAlloc;

#[test]
fn expert_allreduce_steady_state_allocates_nothing() {
    // A single-rank group takes the HBM-local path (fold into the
    // representative, normalize, fan back out) with no link traffic —
    // precisely the code that held the `to_vec` snapshot.
    let (deltas, _) = Cluster::run(ClusterSpec::flat(1), |ctx| {
        let group = ctx.groups().range(0, 1);
        let mut locals: Vec<Vec<f32>> = (0..3).map(|s| vec![s as f32 + 1.0; 256]).collect();

        // Warm-up: first call may lazily initialize runtime state.
        ctx.expert_allreduce(&group, 1, &mut locals, 3, ReduceMode::Mean).unwrap();

        let before = allocs_on_this_thread();
        for step in 0..8u64 {
            ctx.expert_allreduce(&group, 2 + step, &mut locals, 3, ReduceMode::Mean).unwrap();
        }
        let after = allocs_on_this_thread();
        after - before
    });
    // Before the fix this measured one allocation per call (8 total).
    assert_eq!(deltas[0], 0, "expert_allreduce must be allocation-free in steady state");
}
