//! Plain-text table and CSV output for the experiment binaries.

use std::fmt::Write as _;
use std::path::Path;

/// A simple aligned text table (markdown-flavoured).
#[derive(Clone, Debug, Default)]
pub struct Table {
    header: Vec<String>,
    rows: Vec<Vec<String>>,
}

impl Table {
    pub fn new(header: &[&str]) -> Self {
        Self { header: header.iter().map(|s| s.to_string()).collect(), rows: Vec::new() }
    }

    pub fn row(&mut self, cells: Vec<String>) -> &mut Self {
        assert_eq!(cells.len(), self.header.len(), "row width must match header");
        self.rows.push(cells);
        self
    }

    /// Renders as a markdown table with aligned columns.
    pub fn render(&self) -> String {
        let mut widths: Vec<usize> = self.header.iter().map(String::len).collect();
        for row in &self.rows {
            for (w, cell) in widths.iter_mut().zip(row) {
                *w = (*w).max(cell.len());
            }
        }
        let mut out = String::new();
        let fmt_row = |cells: &[String], widths: &[usize], out: &mut String| {
            out.push('|');
            for (cell, w) in cells.iter().zip(widths) {
                let _ = write!(out, " {cell:<w$} |");
            }
            out.push('\n');
        };
        fmt_row(&self.header, &widths, &mut out);
        out.push('|');
        for w in &widths {
            let _ = write!(out, "{:-<width$}|", "", width = w + 2);
        }
        out.push('\n');
        for row in &self.rows {
            fmt_row(row, &widths, &mut out);
        }
        out
    }
}

/// Writes rows as CSV under `dir/name`, creating the directory.
pub fn write_csv(dir: &Path, name: &str, header: &[&str], rows: &[Vec<String>]) {
    std::fs::create_dir_all(dir).expect("output dir must be creatable");
    let mut text = header.join(",");
    text.push('\n');
    for row in rows {
        text.push_str(&row.join(","));
        text.push('\n');
    }
    let path = dir.join(name);
    std::fs::write(&path, text).expect("csv write");
    eprintln!("[csv] wrote {}", path.display());
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn table_renders_aligned_markdown() {
        let mut t = Table::new(&["sys", "value"]);
        t.row(vec!["SYMI".into(), "1.0".into()]);
        t.row(vec!["DeepSpeed".into(), "2.25".into()]);
        let s = t.render();
        assert!(s.contains("| SYMI      | 1.0   |"));
        assert!(s.lines().count() == 4);
        assert!(s.lines().nth(1).unwrap().starts_with("|--"));
    }

    #[test]
    #[should_panic(expected = "row width")]
    fn mismatched_row_rejected() {
        let mut t = Table::new(&["a", "b"]);
        t.row(vec!["only-one".into()]);
    }

    #[test]
    fn csv_round_trips_through_fs() {
        let dir = std::env::temp_dir().join(format!("symi_csv_test_{}", std::process::id()));
        write_csv(&dir, "x.csv", &["a", "b"], &[vec!["1".into(), "2".into()]]);
        let text = std::fs::read_to_string(dir.join("x.csv")).unwrap();
        assert_eq!(text, "a,b\n1,2\n");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
