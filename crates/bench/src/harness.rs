//! Minimal wall-clock micro-benchmark harness.
//!
//! The workspace is dependency-free, so instead of criterion the bench
//! binaries share this ~80-line timer: calibrate a batch size against a
//! per-sample time budget, take several samples, report mean and min
//! ns/iter. The `[[bench]]` targets keep `harness = false` and call
//! [`bench`] from a plain `main`.

use std::time::Instant;

/// Result of one measured benchmark.
#[derive(Clone, Debug)]
pub struct BenchResult {
    pub name: String,
    /// Mean ns per iteration across samples.
    pub mean_ns: f64,
    /// Fastest sample's ns per iteration (least-noise estimate).
    pub min_ns: f64,
    /// Iterations per sample after calibration.
    pub batch: u64,
    pub samples: u64,
}

impl BenchResult {
    pub fn print(&self) {
        println!(
            "{:<44} {:>14}/iter   (min {:>12}, {} x {} iters)",
            self.name,
            fmt_ns(self.mean_ns),
            fmt_ns(self.min_ns),
            self.samples,
            self.batch,
        );
    }
}

fn fmt_ns(ns: f64) -> String {
    if ns >= 1e9 {
        format!("{:.3} s", ns / 1e9)
    } else if ns >= 1e6 {
        format!("{:.2} ms", ns / 1e6)
    } else if ns >= 1e3 {
        format!("{:.2} us", ns / 1e3)
    } else {
        format!("{ns:.0} ns")
    }
}

/// Per-sample time budget: long enough to dominate timer resolution, short
/// enough that a full bench binary finishes in seconds.
const SAMPLE_BUDGET_NS: u64 = 20_000_000;
const SAMPLES: u64 = 5;

/// Measures `f`, prints a criterion-style line, and returns the numbers.
/// One warmup call doubles as batch calibration.
pub fn bench<T>(name: &str, mut f: impl FnMut() -> T) -> BenchResult {
    let t0 = Instant::now();
    std::hint::black_box(f());
    let once_ns = (t0.elapsed().as_nanos() as u64).max(1);
    let batch = (SAMPLE_BUDGET_NS / once_ns).clamp(1, 1 << 20);

    let mut mean_ns = 0.0f64;
    let mut min_ns = f64::INFINITY;
    for _ in 0..SAMPLES {
        let t = Instant::now();
        for _ in 0..batch {
            std::hint::black_box(f());
        }
        let per_iter = t.elapsed().as_nanos() as f64 / batch as f64;
        mean_ns += per_iter / SAMPLES as f64;
        min_ns = min_ns.min(per_iter);
    }
    let result = BenchResult { name: name.to_string(), mean_ns, min_ns, batch, samples: SAMPLES };
    result.print();
    result
}

/// Section header so multi-group bench binaries read like criterion output.
pub fn group(title: &str) {
    println!("\n== {title} ==");
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn bench_measures_something() {
        let r = bench("noop_sum", || (0..100u64).sum::<u64>());
        assert!(r.mean_ns > 0.0);
        assert!(r.min_ns <= r.mean_ns * 1.0001);
        assert!(r.batch >= 1);
    }
}
