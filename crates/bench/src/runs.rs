//! Training-run management: one convergence run per system, cached on disk
//! so the seven figure/table binaries that share the same five runs don't
//! retrain.

use std::path::{Path, PathBuf};
use std::sync::Arc;
use symi::SymiPolicy;
use symi_baselines::FlexMoePolicy;
use symi_model::{ModelConfig, PlacementPolicy, Trainer, UniformPolicy};
use symi_telemetry::{ClusterTelemetry, IterationReport, JsonlSink, RingBufferSink};
use symi_workload::{CorpusConfig, DriftingCorpus, PopularityTrace};

/// The five systems of §5.
#[derive(Clone, Copy, Debug, PartialEq, Eq)]
pub enum SystemChoice {
    DeepSpeed,
    FlexMoe100,
    FlexMoe50,
    FlexMoe10,
    Symi,
}

impl SystemChoice {
    pub const ALL: [SystemChoice; 5] = [
        SystemChoice::DeepSpeed,
        SystemChoice::FlexMoe100,
        SystemChoice::FlexMoe50,
        SystemChoice::FlexMoe10,
        SystemChoice::Symi,
    ];

    pub fn name(&self) -> &'static str {
        match self {
            SystemChoice::DeepSpeed => "DeepSpeed",
            SystemChoice::FlexMoe100 => "FlexMoE-100",
            SystemChoice::FlexMoe50 => "FlexMoE-50",
            SystemChoice::FlexMoe10 => "FlexMoE-10",
            SystemChoice::Symi => "SYMI",
        }
    }

    /// FlexMoE rebalancing interval, if this is a FlexMoE variant.
    pub fn flexmoe_interval(&self) -> Option<u64> {
        match self {
            SystemChoice::FlexMoe100 => Some(100),
            SystemChoice::FlexMoe50 => Some(50),
            SystemChoice::FlexMoe10 => Some(10),
            _ => None,
        }
    }

    pub fn policy(&self, cfg: &ModelConfig) -> Box<dyn PlacementPolicy> {
        match self {
            SystemChoice::DeepSpeed => {
                Box::new(UniformPolicy { experts: cfg.experts, total_slots: cfg.total_slots })
            }
            SystemChoice::Symi => Box::new(SymiPolicy { total_slots: cfg.total_slots }),
            flex => Box::new(FlexMoePolicy::new(
                cfg.total_slots,
                flex.flexmoe_interval().expect("flexmoe variant"),
            )),
        }
    }
}

/// A serializable training-run result (mirror of `TrainRecord` plus the
/// config fingerprint used for cache validation).
#[derive(Clone, Debug)]
pub struct RunResult {
    pub system: String,
    pub iterations: usize,
    pub seed: u64,
    pub losses: Vec<f32>,
    pub survival: Vec<f64>,
    /// Per layer: popularity trace.
    pub popularity: Vec<PopularityTrace>,
    /// Per layer, per iteration: replica counts.
    pub replicas: Vec<Vec<Vec<usize>>>,
    /// Per iteration: replica moves summed over layers.
    pub moved_replicas: Vec<usize>,
}

impl RunResult {
    pub fn to_json(&self) -> String {
        use symi_telemetry::json::{Obj, Value};
        let mut o = Obj::new();
        o.set("system", Value::str(&self.system));
        o.set("iterations", Value::u64(self.iterations as u64));
        o.set("seed", Value::u64(self.seed));
        o.set("losses", Value::Arr(self.losses.iter().map(|&l| Value::Num(l as f64)).collect()));
        o.set("survival", Value::arr_f64(&self.survival));
        o.set(
            "popularity",
            Value::Arr(self.popularity.iter().map(|t| t.to_json_value()).collect()),
        );
        o.set(
            "replicas",
            Value::Arr(
                self.replicas
                    .iter()
                    .map(|layer| {
                        Value::Arr(
                            layer
                                .iter()
                                .map(|iter| {
                                    Value::Arr(iter.iter().map(|&r| Value::u64(r as u64)).collect())
                                })
                                .collect(),
                        )
                    })
                    .collect(),
            ),
        );
        o.set(
            "moved_replicas",
            Value::Arr(self.moved_replicas.iter().map(|&m| Value::u64(m as u64)).collect()),
        );
        Value::Obj(o).to_string()
    }

    pub fn from_json(s: &str) -> Result<Self, String> {
        use symi_telemetry::Value;
        let v = Value::parse(s)?;
        let system = v.get("system").as_str().ok_or("missing system")?.to_string();
        let popularity = v
            .get("popularity")
            .as_arr()
            .ok_or("missing popularity")?
            .iter()
            .map(PopularityTrace::from_json_value)
            .collect::<Result<Vec<_>, _>>()?;
        let replicas = v
            .get("replicas")
            .as_arr()
            .ok_or("missing replicas")?
            .iter()
            .map(|layer| {
                layer
                    .as_arr()
                    .unwrap_or(&[])
                    .iter()
                    .map(|iter| iter.u64_vec().into_iter().map(|r| r as usize).collect())
                    .collect()
            })
            .collect();
        Ok(RunResult {
            system,
            iterations: v.get("iterations").as_usize().ok_or("missing iterations")?,
            seed: v.get("seed").as_u64().ok_or("missing seed")?,
            losses: v.get("losses").f64_vec().into_iter().map(|l| l as f32).collect(),
            survival: v.get("survival").f64_vec(),
            popularity,
            replicas,
            moved_replicas: v
                .get("moved_replicas")
                .u64_vec()
                .into_iter()
                .map(|m| m as usize)
                .collect(),
        })
    }

    /// First iteration whose `window`-smoothed loss reaches `target`.
    pub fn iterations_to_loss(&self, target: f32, window: usize) -> Option<usize> {
        let w = window.max(1);
        for i in 0..self.losses.len() {
            let lo = i.saturating_sub(w - 1);
            let mean: f32 = self.losses[lo..=i].iter().sum::<f32>() / (i - lo + 1) as f32;
            if mean <= target {
                return Some(i + 1);
            }
        }
        None
    }

    pub fn mean_survival(&self) -> f64 {
        if self.survival.is_empty() {
            return 1.0;
        }
        self.survival.iter().sum::<f64>() / self.survival.len() as f64
    }
}

/// The corpus every convergence experiment shares.
pub fn experiment_corpus(cfg: &ModelConfig) -> DriftingCorpus {
    DriftingCorpus::new(CorpusConfig {
        vocab_size: cfg.vocab_size,
        seq_len: cfg.seq_len,
        batch_size: cfg.batch_size,
        topics: 8,
        coherence: 0.85,
        topic_zipf: 1.1,
        drift_sigma: 0.15,
        jolt_prob: 0.02,
        seed: 0x5e_ed,
    })
}

/// Trains `system` for `iterations` on the shared corpus and model config.
pub fn run_system(system: SystemChoice, cfg: ModelConfig, iterations: usize) -> RunResult {
    let mut corpus = experiment_corpus(&cfg);
    let mut trainer = Trainer::new(cfg, system.policy(&cfg));
    trainer.train(&mut corpus, iterations);
    let rec = trainer.record;
    RunResult {
        system: system.name().to_string(),
        iterations,
        seed: cfg.seed,
        losses: rec.losses,
        survival: rec.survival,
        popularity: rec.popularity,
        replicas: rec.replicas,
        moved_replicas: rec.moved_replicas,
    }
}

/// Trains `system` with telemetry enabled, emitting one `IterationReport`
/// per step. Reports go to an in-memory ring (returned) and, when
/// `jsonl_path` is given, to a JSONL file `symi-top` can tail. The figure
/// binaries that reconstruct phase shares / drop rates / churn consume
/// these reports instead of re-deriving them from `TrainRecord`.
pub fn run_system_with_telemetry(
    system: SystemChoice,
    cfg: ModelConfig,
    iterations: usize,
    jsonl_path: Option<&Path>,
) -> Vec<IterationReport> {
    let mut corpus = experiment_corpus(&cfg);
    let mut trainer = Trainer::new(cfg, system.policy(&cfg));
    let telemetry = ClusterTelemetry::new(1);
    let ring = Arc::new(RingBufferSink::new(iterations.max(1)));
    telemetry.add_sink(ring.clone());
    if let Some(path) = jsonl_path {
        let sink = JsonlSink::create(path).expect("telemetry jsonl must be creatable");
        telemetry.add_sink(Arc::new(sink));
    }
    trainer.attach_telemetry(telemetry.clone());
    trainer.train(&mut corpus, iterations);
    telemetry.flush();
    ring.contents()
}

/// Canonical JSONL location for one system's telemetry run.
pub fn telemetry_jsonl_path(dir: &Path, system: SystemChoice) -> PathBuf {
    dir.join(format!("telemetry_{}.jsonl", system.name().to_lowercase().replace('-', "_")))
}

/// Parses back a telemetry JSONL file written by
/// [`run_system_with_telemetry`] (or any `JsonlSink`).
pub fn read_telemetry_jsonl(path: &Path) -> Result<Vec<IterationReport>, String> {
    let text = std::fs::read_to_string(path).map_err(|e| e.to_string())?;
    text.lines().filter(|l| !l.trim().is_empty()).map(IterationReport::parse_jsonl).collect()
}

/// Cached variant: reuses `telemetry_<system>.jsonl` in `dir` when it holds
/// exactly `iterations` reports for the right geometry (the JSONL itself is
/// the cache — there is no second serialization format).
pub fn load_or_run_telemetry(
    dir: &Path,
    system: SystemChoice,
    cfg: ModelConfig,
    iterations: usize,
) -> Vec<IterationReport> {
    std::fs::create_dir_all(dir).expect("results dir must be creatable");
    let path = telemetry_jsonl_path(dir, system);
    if let Ok(reports) = read_telemetry_jsonl(&path) {
        if reports.len() == iterations && reports.iter().all(|r| r.popularity.len() == cfg.experts)
        {
            eprintln!("[cache] telemetry {} from {}", system.name(), path.display());
            return reports;
        }
    }
    eprintln!("[train] {} for {iterations} iterations (telemetry on)…", system.name());
    run_system_with_telemetry(system, cfg, iterations, Some(&path))
}

fn cache_path(dir: &Path, system: SystemChoice, cfg: &ModelConfig, iterations: usize) -> PathBuf {
    // The key carries everything that changes the run: geometry, capacity,
    // horizon, and seed — so e.g. Figure 2's 32-expert runs never collide
    // with Figure 7's 16-expert runs.
    dir.join(format!(
        "run_{}_e{}k{}cf{}_{iterations}_{}.json",
        system.name().to_lowercase().replace('-', "_"),
        cfg.experts,
        cfg.top_k,
        (cfg.capacity_factor * 100.0).round() as u32,
        cfg.seed
    ))
}

/// Loads a cached run if present (same system/iterations/seed), otherwise
/// trains and caches.
pub fn load_or_run(
    dir: &Path,
    system: SystemChoice,
    cfg: ModelConfig,
    iterations: usize,
) -> RunResult {
    std::fs::create_dir_all(dir).expect("results dir must be creatable");
    let path = cache_path(dir, system, &cfg, iterations);
    if let Ok(text) = std::fs::read_to_string(&path) {
        if let Ok(run) = RunResult::from_json(&text) {
            if run.iterations == iterations && run.seed == cfg.seed {
                eprintln!("[cache] {} from {}", system.name(), path.display());
                return run;
            }
        }
    }
    eprintln!("[train] {} for {iterations} iterations…", system.name());
    let run = run_system(system, cfg, iterations);
    std::fs::write(&path, run.to_json()).expect("cache write");
    run
}

/// Runs all five systems (in parallel threads) with caching.
pub fn load_or_run_all(dir: &Path, cfg: ModelConfig, iterations: usize) -> Vec<RunResult> {
    std::thread::scope(|scope| {
        let handles: Vec<_> = SystemChoice::ALL
            .iter()
            .map(|&system| scope.spawn(move || load_or_run(dir, system, cfg, iterations)))
            .collect();
        handles.into_iter().map(|h| h.join().expect("run thread")).collect()
    })
}

/// Standard CLI: `--iters N` and `--out DIR` (defaults: 400, ./results).
pub fn cli_args() -> (usize, PathBuf) {
    let mut iters = 400usize;
    let mut out = PathBuf::from("results");
    let args: Vec<String> = std::env::args().collect();
    let mut i = 1;
    while i < args.len() {
        match args[i].as_str() {
            "--iters" => {
                iters = args
                    .get(i + 1)
                    .and_then(|v| v.parse().ok())
                    .unwrap_or_else(|| panic!("--iters needs a number"));
                i += 2;
            }
            "--out" => {
                out = PathBuf::from(args.get(i + 1).expect("--out needs a path"));
                i += 2;
            }
            other => panic!("unknown argument {other} (supported: --iters N, --out DIR)"),
        }
    }
    (iters, out)
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn policies_match_systems() {
        let cfg = ModelConfig::tiny();
        assert_eq!(SystemChoice::Symi.policy(&cfg).name(), "symi");
        assert_eq!(SystemChoice::DeepSpeed.policy(&cfg).name(), "deepspeed-static");
        assert_eq!(SystemChoice::FlexMoe50.policy(&cfg).name(), "flexmoe");
        assert_eq!(SystemChoice::FlexMoe50.flexmoe_interval(), Some(50));
        assert_eq!(SystemChoice::Symi.flexmoe_interval(), None);
    }

    #[test]
    fn run_system_produces_complete_record() {
        let cfg = ModelConfig::tiny();
        let run = run_system(SystemChoice::Symi, cfg, 4);
        assert_eq!(run.losses.len(), 4);
        assert_eq!(run.survival.len(), 4);
        assert_eq!(run.replicas[0].len(), 4);
        assert_eq!(run.popularity.len(), cfg.layers);
    }

    #[test]
    fn telemetry_run_emits_complete_reports() {
        let cfg = ModelConfig::tiny();
        let dir = std::env::temp_dir().join(format!("symi_tele_run_{}", std::process::id()));
        let path = telemetry_jsonl_path(&dir, SystemChoice::Symi);
        let reports = run_system_with_telemetry(SystemChoice::Symi, cfg, 3, Some(&path));
        assert_eq!(reports.len(), 3);
        let r = &reports[2];
        assert_eq!(r.system, "symi");
        assert_eq!(r.popularity.len(), cfg.experts);
        assert!(r.iteration_ns() > 0, "phase spans must have been recorded");
        // The JSONL on disk round-trips to the same reports.
        let back = read_telemetry_jsonl(&path).unwrap();
        assert_eq!(back, reports);
        let _ = std::fs::remove_dir_all(&dir);
    }

    #[test]
    fn cache_round_trip() {
        let dir = std::env::temp_dir().join(format!("symi_bench_test_{}", std::process::id()));
        let cfg = ModelConfig::tiny();
        let first = load_or_run(&dir, SystemChoice::DeepSpeed, cfg, 3);
        let second = load_or_run(&dir, SystemChoice::DeepSpeed, cfg, 3);
        assert_eq!(first.losses, second.losses, "second call must hit the cache");
        let _ = std::fs::remove_dir_all(&dir);
    }
}
