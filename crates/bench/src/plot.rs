//! Terminal plotting: line charts and heatmaps for the figure binaries.
//!
//! The paper's artifacts are plots; a reproduction that only prints tables
//! makes shapes hard to eyeball. These render compact ASCII charts so
//! `fig7_loss` and friends show the curve, not just summary statistics.

/// Renders one or more series as an ASCII line chart of the given size.
/// Series are downsampled by bucket-averaging; each gets a distinct glyph.
pub fn line_chart(series: &[(&str, &[f32])], width: usize, height: usize) -> String {
    assert!(width >= 8 && height >= 3, "chart too small");
    assert!(!series.is_empty(), "need at least one series");
    let glyphs = ['*', 'o', '+', 'x', '#', '@', '%', '&'];

    // Downsample each series to `width` buckets.
    let sampled: Vec<Vec<f32>> = series
        .iter()
        .map(|(_, data)| {
            assert!(!data.is_empty(), "empty series");
            (0..width)
                .map(|i| {
                    let lo = i * data.len() / width;
                    let hi = (((i + 1) * data.len()) / width).max(lo + 1).min(data.len());
                    data[lo..hi].iter().sum::<f32>() / (hi - lo) as f32
                })
                .collect()
        })
        .collect();

    let min = sampled.iter().flatten().cloned().fold(f32::INFINITY, f32::min);
    let max = sampled.iter().flatten().cloned().fold(f32::NEG_INFINITY, f32::max);
    let span = (max - min).max(1e-9);

    let mut grid = vec![vec![' '; width]; height];
    for (s, data) in sampled.iter().enumerate() {
        let glyph = glyphs[s % glyphs.len()];
        for (x, &v) in data.iter().enumerate() {
            let y = ((max - v) / span * (height - 1) as f32).round() as usize;
            grid[y.min(height - 1)][x] = glyph;
        }
    }

    let mut out = String::new();
    for (i, row) in grid.iter().enumerate() {
        let label = if i == 0 {
            format!("{max:>9.3} ")
        } else if i == height - 1 {
            format!("{min:>9.3} ")
        } else {
            " ".repeat(10)
        };
        out.push_str(&label);
        out.push('|');
        out.extend(row.iter());
        out.push('\n');
    }
    out.push_str(&" ".repeat(10));
    out.push('+');
    out.push_str(&"-".repeat(width));
    out.push('\n');
    // Legend.
    out.push_str(&" ".repeat(11));
    let legend: Vec<String> = series
        .iter()
        .enumerate()
        .map(|(s, (name, _))| format!("{} {}", glyphs[s % glyphs.len()], name))
        .collect();
    out.push_str(&legend.join("   "));
    out.push('\n');
    out
}

/// Renders a matrix of values in `[0, 1]` as a shaded heatmap (rows =
/// series, columns = downsampled time).
pub fn heatmap(rows: &[(&str, Vec<f64>)], width: usize) -> String {
    assert!(width >= 4, "heatmap too narrow");
    let shades = [' ', '.', ':', '-', '=', '+', '*', '#', '%', '@'];
    let mut out = String::new();
    for (name, data) in rows {
        assert!(!data.is_empty(), "empty heatmap row");
        let sampled: Vec<f64> = (0..width)
            .map(|i| {
                let lo = i * data.len() / width;
                let hi = (((i + 1) * data.len()) / width).max(lo + 1).min(data.len());
                data[lo..hi].iter().sum::<f64>() / (hi - lo) as f64
            })
            .collect();
        out.push_str(&format!("{name:>12} |"));
        for v in sampled {
            let idx = (v.clamp(0.0, 1.0) * (shades.len() - 1) as f64).round() as usize;
            out.push(shades[idx]);
        }
        out.push_str("|\n");
    }
    out
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn line_chart_places_extremes_on_edges() {
        let data: Vec<f32> = (0..100).map(|i| i as f32).collect();
        let chart = line_chart(&[("ramp", &data)], 40, 10);
        let lines: Vec<&str> = chart.lines().collect();
        // Buckets average 100 points into 40 columns, so the extremes are
        // the top/bottom bucket means (~98 and ~1), not the raw 99 and 0.
        let top: f32 = lines[0].split('|').next().unwrap().trim().parse().unwrap();
        let bottom: f32 = lines[9].split('|').next().unwrap().trim().parse().unwrap();
        assert!(top > 95.0, "max labels the top row: {top}");
        assert!(bottom < 5.0, "min labels the bottom row: {bottom}");
        // Monotone ramp: top-right and bottom-left populated.
        assert!(lines[0].trim_end().ends_with('*'));
    }

    #[test]
    fn line_chart_multi_series_legend() {
        let a: Vec<f32> = vec![1.0; 20];
        let b: Vec<f32> = vec![2.0; 20];
        let chart = line_chart(&[("alpha", &a), ("beta", &b)], 20, 5);
        assert!(chart.contains("* alpha"));
        assert!(chart.contains("o beta"));
    }

    #[test]
    fn heatmap_shades_by_value() {
        let rows = vec![("hot", vec![1.0; 8]), ("cold", vec![0.0; 8])];
        let map = heatmap(&rows, 8);
        let lines: Vec<&str> = map.lines().collect();
        assert!(lines[0].contains("@@@@@@@@"));
        assert!(lines[1].contains("|        |"));
    }

    #[test]
    #[should_panic(expected = "chart too small")]
    fn tiny_chart_rejected() {
        let _ = line_chart(&[("x", &[1.0f32][..])], 2, 2);
    }
}
