//! # symi-bench
//!
//! The experiment harness: shared machinery for regenerating every table
//! and figure of the paper (see DESIGN.md's experiment index). Each
//! `src/bin/*.rs` binary reproduces one artifact; this library holds the
//! pieces they share — system selection, training-run caching, latency
//! composition, and plain-text table/CSV output.

pub mod harness;
pub mod latency;
pub mod output;
pub mod plot;
pub mod runs;

pub use harness::{bench, group, BenchResult};
pub use latency::{average_iteration_latency, LatencyInputs};
pub use output::{write_csv, Table};
pub use runs::{load_or_run, run_system, run_system_with_telemetry, SystemChoice};
