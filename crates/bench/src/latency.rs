//! Latency composition: turns a convergence run's measured popularity,
//! replica history, and FlexMoE move counts into per-iteration latencies at
//! paper scale via `symi-netsim`'s iteration simulator.

use crate::runs::{RunResult, SystemChoice};
use symi_netsim::iteration::{RebalanceSpec, SimSystem};
use symi_netsim::{IterationSim, ModelCostConfig};

/// What the latency model consumes for one system.
#[derive(Clone, Debug)]
pub struct LatencyInputs {
    pub sim: IterationSim,
    pub system: SystemChoice,
}

impl LatencyInputs {
    pub fn paper_eval(model: ModelCostConfig, system: SystemChoice) -> Self {
        Self { sim: IterationSim::paper_eval(model), system }
    }

    /// The simulator geometry adapted to the run's expert-class count
    /// (training runs may use fewer classes than the paper's 16).
    fn sim_for(&self, expert_classes: usize) -> IterationSim {
        IterationSim { expert_classes, ..self.sim }
    }

    fn sim_system(&self) -> SimSystem {
        match self.system {
            SystemChoice::DeepSpeed => SimSystem::DeepSpeedStatic,
            SystemChoice::Symi => SimSystem::Symi,
            _ => SimSystem::FlexMoE,
        }
    }

    /// Scales a small-model popularity vector onto the cost model's token
    /// budget, preserving shape.
    fn scale_tokens(&self, popularity: &[u64]) -> Vec<f64> {
        let total: u64 = popularity.iter().sum();
        let budget = self.sim.model.tokens_per_batch as f64;
        if total == 0 {
            return vec![budget / popularity.len() as f64; popularity.len()];
        }
        popularity.iter().map(|&p| p as f64 / total as f64 * budget).collect()
    }

    /// Latency of iteration `t` of the given run (layer 0 drives the
    /// per-class shape; all layers share the same simulated geometry).
    pub fn iteration_latency(&self, run: &RunResult, t: usize) -> f64 {
        let popularity = &run.popularity[0].iterations[t];
        let sim = self.sim_for(popularity.len());
        let tokens = self.scale_tokens(popularity);
        let replicas = match self.system {
            SystemChoice::DeepSpeed => sim.uniform_replicas(),
            _ => normalize_replicas(&run.replicas[0][t], sim.nodes * sim.slots_per_rank),
        };
        let moved = if self.system.flexmoe_interval().is_some() {
            // Moves are recorded summed over model layers; express per layer.
            let layers = run.popularity.len().max(1);
            RebalanceSpec { moved_replicas_per_layer: run.moved_replicas[t].div_ceil(layers) }
        } else {
            RebalanceSpec::default()
        };
        sim.simulate(&tokens, &replicas, self.sim_system(), moved).total_seconds()
    }

    /// Per-component breakdown of iteration `t` (Figure 12).
    pub fn iteration_breakdown(
        &self,
        run: &RunResult,
        t: usize,
    ) -> symi_netsim::IterationBreakdown {
        let sim = self.sim_for(run.popularity[0].iterations[t].len());
        let tokens = self.scale_tokens(&run.popularity[0].iterations[t]);
        let replicas = match self.system {
            SystemChoice::DeepSpeed => sim.uniform_replicas(),
            _ => normalize_replicas(&run.replicas[0][t], sim.nodes * sim.slots_per_rank),
        };
        let layers = run.popularity.len().max(1);
        let moved = if self.system.flexmoe_interval().is_some() {
            RebalanceSpec { moved_replicas_per_layer: run.moved_replicas[t].div_ceil(layers) }
        } else {
            RebalanceSpec::default()
        };
        sim.simulate(&tokens, &replicas, self.sim_system(), moved)
    }
}

/// Rescales replica counts from the training geometry to the cost-model
/// geometry (both fill all slots; shapes are preserved, floors respected).
fn normalize_replicas(counts: &[usize], target_slots: usize) -> Vec<usize> {
    let total: usize = counts.iter().sum();
    if total == target_slots {
        return counts.to_vec();
    }
    let goal: Vec<f64> =
        counts.iter().map(|&c| c as f64 / total as f64 * target_slots as f64).collect();
    let mut out: Vec<usize> = goal.iter().map(|&g| g.max(1.0).floor() as usize).collect();
    let mut diff: Vec<f64> = out.iter().zip(&goal).map(|(&c, &g)| c as f64 - g).collect();
    while out.iter().sum::<usize>() > target_slots {
        let i = (0..out.len())
            .filter(|&i| out[i] > 1)
            .max_by(|&a, &b| diff[a].total_cmp(&diff[b]))
            .expect("shrinkable class");
        out[i] -= 1;
        diff[i] -= 1.0;
    }
    while out.iter().sum::<usize>() < target_slots {
        let i = (0..out.len()).min_by(|&a, &b| diff[a].total_cmp(&diff[b])).expect("non-empty");
        out[i] += 1;
        diff[i] += 1.0;
    }
    out
}

/// Mean per-iteration latency of a run under the cost model.
pub fn average_iteration_latency(inputs: &LatencyInputs, run: &RunResult) -> f64 {
    let n = run.popularity[0].iterations.len();
    assert!(n > 0, "run has no iterations");
    (0..n).map(|t| inputs.iteration_latency(run, t)).sum::<f64>() / n as f64
}

#[cfg(test)]
mod tests {
    use super::*;
    use crate::runs::run_system;
    use symi_model::ModelConfig;

    #[test]
    fn normalize_preserves_totals_and_floors() {
        let out = normalize_replicas(&[6, 1, 1], 64);
        assert_eq!(out.iter().sum::<usize>(), 64);
        assert!(out.iter().all(|&c| c >= 1));
        assert!(out[0] > out[1]);
    }

    #[test]
    fn flexmoe_pays_migration_in_composed_latency() {
        let cfg = ModelConfig::tiny();
        let run10 = run_system(SystemChoice::FlexMoe10, cfg, 25);
        let li = LatencyInputs::paper_eval(ModelCostConfig::gpt_small(), SystemChoice::FlexMoe10);
        // Find a rebalancing iteration (moves > 0) and a quiet one.
        let hot = (0..25).find(|&t| run10.moved_replicas[t] > 0);
        let cold = (0..25).find(|&t| run10.moved_replicas[t] == 0).expect("quiet iter");
        if let Some(hot) = hot {
            assert!(
                li.iteration_latency(&run10, hot) > li.iteration_latency(&run10, cold),
                "rebalancing iterations must be slower"
            );
        }
    }

    #[test]
    fn symi_latency_is_stable_across_iterations() {
        let cfg = ModelConfig::tiny();
        let run = run_system(SystemChoice::Symi, cfg, 10);
        let li = LatencyInputs::paper_eval(ModelCostConfig::gpt_small(), SystemChoice::Symi);
        let lats: Vec<f64> = (0..10).map(|t| li.iteration_latency(&run, t)).collect();
        let max = lats.iter().cloned().fold(0.0, f64::max);
        let min = lats.iter().cloned().fold(f64::MAX, f64::min);
        assert!(max / min < 1.6, "no migration spikes for SYMI: {lats:?}");
    }
}
