//! The paper's core claim measured in real bytes: sweeping the number of
//! moved replicas, SYMI's optimizer-phase traffic stays flat while a
//! coupled (FlexMoE-style) design pays per-move migration of weights +
//! optimizer state.

use symi_baselines::RebalanceCostHarness;
use symi_bench::output::{write_csv, Table};

fn main() {
    let harness = RebalanceCostHarness {
        nodes: 8,
        slots_per_rank: 4,
        expert_classes: 8,
        param_count: 4096,
    };
    let uniform = vec![4usize; 8];

    println!("# Rebalance traffic sweep — decoupled (SYMI) vs coupled state\n");
    let mut t = Table::new(&[
        "replicas moved",
        "SYMI total bytes",
        "coupled total bytes",
        "coupled / SYMI",
    ]);
    let mut rows = Vec::new();
    for moved in [0usize, 1, 2, 4, 8, 12] {
        // Move `moved` replicas from the tail classes to class 0.
        let mut counts = uniform.clone();
        let mut left = moved;
        for c in (1..8).rev() {
            let take = left.min(counts[c] - 1);
            counts[c] -= take;
            counts[0] += take;
            left -= take;
            if left == 0 {
                break;
            }
        }
        let symi = harness.symi_traffic(&uniform, &counts);
        let coupled = harness.coupled_traffic(&uniform, &counts);
        let row = vec![
            moved.to_string(),
            symi.total_bytes().to_string(),
            coupled.total_bytes().to_string(),
            format!("{:.2}", coupled.total_bytes() as f64 / symi.total_bytes() as f64),
        ];
        t.row(row.clone());
        rows.push(row);
    }
    write_csv(
        &std::path::PathBuf::from("results"),
        "rebalance_traffic.csv",
        &["moved", "symi_bytes", "coupled_bytes", "ratio"],
        &rows,
    );
    println!("{}", t.render());
    println!(
        "SYMI's column is constant — adaptive re-placement rides the weight\n\
         update it already pays. The coupled column grows linearly with moves\n\
         (each move drags weights + 3x-weights of Adam state across the\n\
         network), which is why FlexMoE must rebalance rarely."
    );
}
