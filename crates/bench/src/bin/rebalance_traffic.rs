//! The paper's core claim measured in real bytes: sweeping the number of
//! moved replicas, SYMI's optimizer-phase traffic stays flat while a
//! coupled (FlexMoE-style) design pays per-move migration of weights +
//! optimizer state. The harness engines run under phase markers, so the
//! byte totals here are read back per phase from `IterationReport`s.

use std::sync::Arc;
use symi_baselines::RebalanceCostHarness;
use symi_bench::output::{write_csv, Table};
use symi_telemetry::{IterationReport, JsonlSink, Phase, Sink};

fn main() {
    let harness =
        RebalanceCostHarness { nodes: 8, slots_per_rank: 4, expert_classes: 8, param_count: 4096 };
    let uniform = vec![4usize; 8];
    let out_dir = std::path::PathBuf::from("results");
    let jsonl: Arc<dyn Sink> = Arc::new(
        JsonlSink::create(out_dir.join("rebalance_traffic.jsonl"))
            .expect("results dir must be writable"),
    );

    println!("# Rebalance traffic sweep — decoupled (SYMI) vs coupled state\n");
    let mut t = Table::new(&[
        "replicas moved",
        "SYMI total",
        "SYMI weight_comm",
        "SYMI rebalance",
        "coupled total",
        "coupled rebalance",
        "coupled / SYMI",
    ]);
    let mut rows = Vec::new();
    for moved in [0usize, 1, 2, 4, 8, 12] {
        // Move `moved` replicas from the tail classes to class 0.
        let mut counts = uniform.clone();
        let mut left = moved;
        for c in (1..8).rev() {
            let take = left.min(counts[c] - 1);
            counts[c] -= take;
            counts[0] += take;
            left -= take;
            if left == 0 {
                break;
            }
        }
        let symi = harness.symi_traffic(&uniform, &counts);
        let coupled = harness.coupled_traffic(&uniform, &counts);

        // Phase-attributed reports — the same schema the trainer emits, so
        // symi-top and the plot scripts can read this sweep too.
        for (system, report) in [("symi-decoupled", &symi), ("coupled-migration", &coupled)] {
            let mut r = IterationReport::new(system, moved as u64);
            r.placement_churn = moved as u64;
            r.phase_bytes = report.phase_bytes;
            jsonl.emit(&r);
        }

        let row = vec![
            moved.to_string(),
            symi.total_bytes().to_string(),
            symi.bytes_in_phase(Phase::WeightComm).to_string(),
            symi.bytes_in_phase(Phase::Rebalance).to_string(),
            coupled.total_bytes().to_string(),
            coupled.bytes_in_phase(Phase::Rebalance).to_string(),
            format!("{:.2}", coupled.total_bytes() as f64 / symi.total_bytes() as f64),
        ];
        t.row(row.clone());
        rows.push(row);
    }
    jsonl.flush();
    write_csv(
        &out_dir,
        "rebalance_traffic.csv",
        &[
            "moved",
            "symi_bytes",
            "symi_weight_comm_bytes",
            "symi_rebalance_bytes",
            "coupled_bytes",
            "coupled_rebalance_bytes",
            "ratio",
        ],
        &rows,
    );
    println!("{}", t.render());
    println!(
        "SYMI's bytes live entirely in weight_comm — the re-placement rides\n\
         the weight update it already pays (rebalance bytes stay 0), and the\n\
         de-duplicated schedule ships one copy per (class, hosting rank), so\n\
         the column wobbles only with the placement's host sets, never with\n\
         how many replicas moved. The coupled column grows linearly with\n\
         moves, all of it in the rebalance phase (each move drags weights +\n\
         3x-weights of Adam state across the network), which is why FlexMoE\n\
         must rebalance rarely."
    );
}
