//! The 1k–4k-rank scaling sweep the paper's 16-node testbed could not run.
//!
//! Drives the hierarchical cost model (`symi-netsim::TieredCostModel` via
//! `IterationSim::simulate_hier`) from 16 to 4096 ranks across topology
//! presets and systems:
//!
//! - `symi` — decoupled optimizer, contiguous packing, cluster-uniform
//!   N-way sharding (the paper's k = 1 point, §3.3/A.1);
//! - `symi_pod` — same, but the shard domain is aligned to the pod tier
//!   (Appendix A.1's k-group partitioning, k = #pods);
//! - `deepspeed` — static stripe, coupled ZeRO-1 shard inside the EDP group;
//! - `flexmoe` — greedy spread, coupled state, pays a migration iteration.
//!
//! Emits `BENCH_scaling.json` at the repo root plus a markdown table, and
//! under `SYMI_SCALING_SMOKE=1` shrinks the grid and asserts the invariants
//! CI gates on: every cost finite, total traffic monotone in world size.

use std::path::Path;
use symi_netsim::topology::ModelCostConfig;
use symi_netsim::{HardwareSpec, IterationSim, RebalanceSpec, ShardScope, SimSystem, Topology};
use symi_telemetry::json::{Obj, Value};

struct SystemSpec {
    name: &'static str,
    system: SimSystem,
    pod_aligned: bool,
}

const SYSTEMS: [SystemSpec; 4] = [
    SystemSpec { name: "symi", system: SimSystem::Symi, pod_aligned: false },
    SystemSpec { name: "symi_pod", system: SimSystem::Symi, pod_aligned: true },
    SystemSpec { name: "deepspeed", system: SimSystem::DeepSpeedStatic, pod_aligned: false },
    SystemSpec { name: "flexmoe", system: SimSystem::FlexMoE, pod_aligned: false },
];

/// The pod-aligned shard scope: cells of the second-outermost tier (the
/// innermost tier on a flat topology, where it degenerates to k = 1).
fn pod_scope(topo: &Topology) -> ShardScope {
    ShardScope::TierCell { level: topo.num_tiers().saturating_sub(2) }
}

fn main() {
    let smoke = std::env::var("SYMI_SCALING_SMOKE").is_ok_and(|v| v == "1");
    let worlds: &[usize] = if smoke { &[16, 64, 256] } else { &[16, 64, 256, 1024, 4096] };
    let presets: &[&str] = &["flat", "superpod"];
    let hw = HardwareSpec::paper_eval_cluster();
    let model = ModelCostConfig::gpt_medium();
    let expert_classes = 64usize;
    let slots_per_rank = 4usize;

    let mut results: Vec<Value> = Vec::new();
    let mut table_rows: Vec<String> = Vec::new();

    for &preset in presets {
        // traffic[system] from the previous (smaller) world, for the
        // monotonicity gate.
        let mut prev_traffic = vec![0.0f64; SYSTEMS.len()];
        for &n in worlds {
            let topo = match preset {
                "flat" => Topology::flat(n, &hw),
                "superpod" => Topology::superpod(n),
                other => unreachable!("unknown preset {other}"),
            };
            let sim = IterationSim {
                model,
                hw,
                nodes: n,
                slots_per_rank,
                expert_classes,
                capacity_factor: 1.0,
                seq_len: 512,
            };
            let tokens =
                vec![model.tokens_per_batch as f64 / expert_classes as f64; expert_classes];
            let replicas = sim.uniform_replicas();

            let mut row_cells: Vec<String> = vec![preset.into(), n.to_string()];
            let mut totals = Vec::new();
            let mut rebal_penalties = Vec::new();
            for (si, spec) in SYSTEMS.iter().enumerate() {
                let scope = if spec.pod_aligned { pod_scope(&topo) } else { ShardScope::Cluster };
                let b = sim.simulate_hier(
                    &topo,
                    &tokens,
                    &replicas,
                    spec.system,
                    RebalanceSpec::default(),
                    scope,
                );
                // A placement-change iteration: SYMI's sN·W materialization
                // already rebuilds every slot each step, so moving replicas
                // is free; coupled systems drag weights + optimizer state.
                let rb = sim.simulate_hier(
                    &topo,
                    &tokens,
                    &replicas,
                    spec.system,
                    RebalanceSpec { moved_replicas_per_layer: 2 },
                    scope,
                );
                let total_s = b.total_seconds();
                let rebal_s = rb.total_seconds();
                let traffic: f64 = b.comm_bytes_by_tier.iter().sum();
                let spine = *b.comm_bytes_by_tier.last().expect("at least one tier");

                if smoke {
                    assert!(
                        total_s.is_finite() && total_s > 0.0,
                        "smoke: {preset}/{n}/{} produced a non-finite iteration time",
                        spec.name
                    );
                    assert!(
                        b.comm_bytes_by_tier.iter().all(|v| v.is_finite() && *v >= 0.0),
                        "smoke: {preset}/{n}/{} produced bad tier bytes",
                        spec.name
                    );
                    assert!(
                        traffic > prev_traffic[si],
                        "smoke: {preset}/{} traffic not monotone in world size \
                         ({} -> {} bytes at n={n})",
                        spec.name,
                        prev_traffic[si],
                        traffic,
                    );
                }
                prev_traffic[si] = traffic;

                let mut o = Obj::new();
                o.set("preset", Value::str(preset));
                o.set("world", Value::u64(n as u64));
                o.set("system", Value::str(spec.name));
                o.set(
                    "tiers",
                    Value::Arr(topo.levels().iter().map(|t| Value::str(t.name)).collect()),
                );
                o.set("total_seconds", Value::Num(total_s));
                o.set("rebalance_seconds", Value::Num(rebal_s));
                o.set("edp_sync_s", Value::Num(b.component("edp_sync")));
                o.set("grad_comm_s", Value::Num(b.component("grad_comm")));
                o.set("weight_comm_s", Value::Num(b.component("weight_comm")));
                o.set("comm_bytes_by_tier", Value::arr_f64(&b.comm_bytes_by_tier));
                o.set("total_comm_bytes", Value::Num(traffic));
                o.set("spine_bytes", Value::Num(spine));
                results.push(Value::Obj(o));

                totals.push(total_s);
                rebal_penalties.push((rebal_s / total_s - 1.0) * 100.0);
                row_cells.push(format!("{total_s:.3}"));
            }
            // symi vs deepspeed, the k-group inversion (symi_pod vs symi),
            // and the placement-change premium each system pays.
            row_cells.push(format!("{:+.1}%", (totals[2] / totals[0] - 1.0) * 100.0));
            row_cells.push(if totals[1] < totals[0] * 0.999 { "pod" } else { "k=1" }.into());
            row_cells.push(format!("{:+.1}%", rebal_penalties[0]));
            row_cells.push(format!("{:+.1}%", rebal_penalties[3]));
            table_rows.push(format!("| {} |", row_cells.join(" | ")));
        }
    }

    println!("# Scaling sweep: 16 → 4096 ranks\n");
    println!(
        "| preset | ranks | symi s | symi_pod s | deepspeed s | flexmoe s | ds vs symi | best shard | symi rebal Δ | flexmoe rebal Δ |"
    );
    println!("|--------|-------|--------|------------|-------------|-----------|------------|------------|--------------|-----------------|");
    for row in &table_rows {
        println!("{row}");
    }

    let mut root = Obj::new();
    root.set("expert_classes", Value::u64(expert_classes as u64));
    root.set("slots_per_rank", Value::u64(slots_per_rank as u64));
    root.set("model", Value::str(model.name));
    root.set("smoke", Value::Bool(smoke));
    root.set("worlds", Value::Arr(worlds.iter().map(|&w| Value::u64(w as u64)).collect()));
    root.set("presets", Value::Arr(presets.iter().map(|&p| Value::str(p)).collect()));
    root.set("results", Value::Arr(results));

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_scaling.json");
    std::fs::write(&path, Value::Obj(root).to_string()).expect("write scaling json");
    println!("\nwrote {}", path.display());
    if smoke {
        println!("scaling smoke passed: finite costs, traffic monotone in world size");
    }
}
