//! Table 3: total training time (minutes) to reach the target loss —
//! iterations-to-target (measured from the convergence runs) × average
//! iteration latency (composed at GPT-Small scale from the same runs'
//! popularity/replica/migration traces).

use symi_bench::latency::{average_iteration_latency, LatencyInputs};
use symi_bench::output::{write_csv, Table};
use symi_bench::runs::{cli_args, load_or_run_all, SystemChoice};
use symi_model::ModelConfig;
use symi_netsim::ModelCostConfig;

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::small_sim();
    let runs = load_or_run_all(&out, cfg, iters);

    // Common target: loosest tail mean across systems.
    // Target: the slowest system's smoothed loss at 80% of the run — every
    // system reaches it, and it sits in the steep region where convergence
    // differences are visible (not in the flat tail).
    let target = runs
        .iter()
        .map(|r| {
            let at = (r.losses.len() as f64 * 0.8) as usize;
            let lo = at.saturating_sub(9);
            r.losses[lo..=at].iter().sum::<f32>() / (at - lo + 1) as f32
        })
        .fold(f32::MIN, f32::max);

    println!("# Table 3 — total training time to target loss (minutes)\n");
    let mut table = Table::new(&[
        "system",
        "iters to target",
        "avg iteration (s)",
        "time to target (min)",
        "vs DeepSpeed",
    ]);
    let mut rows = Vec::new();
    let mut ds_minutes = None;
    for (i, system) in SystemChoice::ALL.iter().enumerate() {
        let run = &runs[i];
        let li = LatencyInputs::paper_eval(ModelCostConfig::gpt_small(), *system);
        let avg = average_iteration_latency(&li, run);
        let its = run.iterations_to_loss(target, 10);
        let minutes = its.map(|n| n as f64 * avg / 60.0);
        if *system == SystemChoice::DeepSpeed {
            ds_minutes = minutes;
        }
        let vs = match (minutes, ds_minutes) {
            (Some(m), Some(d)) => format!("{:+.1}%", (m / d - 1.0) * 100.0),
            _ => "n/a".to_string(),
        };
        let row = vec![
            system.name().to_string(),
            its.map(|n| n.to_string()).unwrap_or_else(|| format!(">{iters}")),
            format!("{avg:.3}"),
            minutes.map(|m| format!("{m:.2}")).unwrap_or_else(|| "n/a".to_string()),
            vs,
        ];
        table.row(row.clone());
        rows.push(row);
    }
    write_csv(
        &out,
        "table3_convergence_time.csv",
        &["system", "iters_to_target", "avg_iter_s", "minutes", "vs_deepspeed"],
        &rows,
    );
    println!("{}", table.render());
    println!("Target loss used: {target:.3}.");
    println!(
        "\nPaper's shape (target loss 4.0, GPT-Small): DeepSpeed 147.8 min,\n\
         FlexMoE-100 145.4, FlexMoE-50 141.6, FlexMoE-10 138.6, SYMI 102.7\n\
         (SYMI 30.5% faster than DeepSpeed, 25.9% faster than FlexMoE-10)."
    );
}
