//! Figure 11: average iteration latency across GPT-Small/Medium/Large for
//! every system, including FlexMoE's out-of-memory failure on GPT-Large
//! (its migration transiently co-locates current and future coupled
//! optimizer state in the slot, §5.3).

use symi_bench::latency::{average_iteration_latency, LatencyInputs};
use symi_bench::output::{write_csv, Table};
use symi_bench::runs::{cli_args, load_or_run_all, SystemChoice};
use symi_model::ModelConfig;
use symi_netsim::ModelCostConfig;

/// Effective per-rank HBM budget for the OOM check: A100-80GB minus the
/// framework reserve/fragmentation the paper's setup exhibits (calibrated;
/// see DESIGN.md and EXPERIMENTS.md).
const HBM_BUDGET_BYTES: f64 = 16.0e9;

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::small_sim();
    let runs = load_or_run_all(&out, cfg, iters);

    println!("# Figure 11 — average iteration latency by model size\n");
    let models =
        [ModelCostConfig::gpt_small(), ModelCostConfig::gpt_medium(), ModelCostConfig::gpt_large()];
    let mut table = Table::new(&["system", "GPT-Small (s)", "GPT-Medium (s)", "GPT-Large (s)"]);
    let mut csv_rows = Vec::new();
    for (i, system) in SystemChoice::ALL.iter().enumerate() {
        let run = &runs[i];
        let mut cells = vec![system.name().to_string()];
        let mut csv = vec![system.name().to_string()];
        for model in models {
            let li = LatencyInputs::paper_eval(model, *system);
            // OOM check: peak GPU bytes on any simulated iteration.
            let peak = (0..run.popularity[0].len())
                .map(|t| li.iteration_breakdown(run, t).gpu_peak_bytes)
                .fold(0.0f64, f64::max);
            if peak > HBM_BUDGET_BYTES {
                cells.push("OOM".to_string());
                csv.push("OOM".to_string());
                continue;
            }
            let avg = average_iteration_latency(&li, run);
            cells.push(format!("{avg:.3}"));
            csv.push(format!("{avg:.4}"));
        }
        table.row(cells);
        csv_rows.push(csv);
    }
    write_csv(
        &out,
        "fig11_latency.csv",
        &["system", "gpt_small_s", "gpt_medium_s", "gpt_large_s"],
        &csv_rows,
    );
    println!("{}", table.render());
    println!(
        "Paper's shape: SYMI is slightly faster than DeepSpeed (2.8/3.2/9.3% on\n\
         S/M/L); FlexMoE's average latency grows with rebalancing frequency and\n\
         FlexMoE goes OOM on GPT-Large."
    );
}
