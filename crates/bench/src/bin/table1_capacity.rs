//! Table 1: the convergence–latency tradeoff of expert capacity for the
//! static system (GPT-Small stand-in, 32 experts, 16-rank geometry).
//!
//! Columns reproduced: average token survival, iterations to target loss,
//! and forward-pass latency (from the cost model at GPT-Small scale).

use symi_bench::output::Table;
use symi_bench::runs::{cli_args, load_or_run, run_system, SystemChoice};
use symi_model::ModelConfig;
use symi_netsim::iteration::{RebalanceSpec, SimSystem};
use symi_netsim::{IterationSim, ModelCostConfig};

fn main() {
    let (iters, out) = cli_args();
    let base = ModelConfig::fig2_sim(); // 32 experts, as in Table 1

    println!("# Table 1 — convergence-latency tradeoff (capacity x1 / x2 / x4)\n");
    let mut results = Vec::new();
    for cf in [1.0f32, 2.0, 4.0] {
        let cfg = ModelConfig { capacity_factor: cf, seed: base.seed + cf as u64, ..base };
        // Capacity variants differ in config, so cache under distinct seeds.
        let run = if cf == 1.0 {
            load_or_run(&out, SystemChoice::DeepSpeed, cfg, iters)
        } else {
            run_system(SystemChoice::DeepSpeed, cfg, iters)
        };
        results.push((cf, run));
    }

    // Target loss: the slowest variant's smoothed loss at 80% of the run —
    // in the steep region, reachable by every capacity setting.
    let target = results
        .iter()
        .map(|(_, run)| {
            let at = (run.losses.len() as f64 * 0.8) as usize;
            let lo = at.saturating_sub(9);
            run.losses[lo..=at].iter().sum::<f32>() / (at - lo + 1) as f32
        })
        .fold(f32::MIN, f32::max);

    let mut table = Table::new(&[
        "Expert Capacity",
        "Avg. Token Survival (%)",
        "Iters to Target Loss",
        "Forward Pass Latency (ms)",
    ]);
    for (cf, run) in &results {
        // Forward latency at GPT-Small scale under this capacity factor,
        // averaged over the run's measured popularity.
        let sim = IterationSim {
            capacity_factor: *cf as f64,
            expert_classes: run.popularity[0].expert_classes(),
            ..IterationSim::paper_eval(ModelCostConfig::gpt_small())
        };
        let trace = &run.popularity[0];
        let uniform = sim.uniform_replicas();
        let fwd_ms: f64 = (0..trace.len())
            .map(|t| {
                let total: u64 = trace.iterations[t].iter().sum();
                let tokens: Vec<f64> = trace.iterations[t]
                    .iter()
                    .map(|&p| p as f64 / total.max(1) as f64 * sim.model.tokens_per_batch as f64)
                    .collect();
                sim.simulate(
                    &tokens,
                    &uniform,
                    SimSystem::DeepSpeedStatic,
                    RebalanceSpec::default(),
                )
                .forward_seconds()
            })
            .sum::<f64>()
            / trace.len() as f64
            * 1e3;

        table.row(vec![
            format!("x{cf}"),
            format!("{:.2}", run.mean_survival() * 100.0),
            run.iterations_to_loss(target, 10)
                .map(|i| i.to_string())
                .unwrap_or_else(|| format!(">{iters}")),
            format!("{fwd_ms:.2}"),
        ]);
    }
    println!("{}", table.render());
    println!("Target loss used: {target:.3} (slowest variant's smoothed loss at 80% of the run).");
    println!(
        "\nPaper's shape: higher capacity -> higher survival, fewer iterations,\n\
         higher forward latency (x1: 44.9% / 618 it / 455 ms ... x4: 74.9% / 478 it / 571 ms)."
    );
}
