//! §4.1 ablation: the intra+inter rank all-reduce.
//!
//! Two effects are quantified with the *real* collectives:
//! 1. packing replicas of one class onto few ranks shrinks the EDP ring
//!    and the inter-node bytes it moves;
//! 2. forbidding intra-rank replication (stock NCCL semantics) constrains
//!    the scheduler — each class can hold at most N replicas instead of
//!    sN — which costs token survival under skew (the paper measured up to
//!    20% more drops).

use symi::compute_placement;
use symi_bench::output::Table;
use symi_collectives::hier::ReduceMode;
use symi_collectives::{Cluster, ClusterSpec};

/// Measured inter-node bytes to synchronize `instances` replicas of one
/// expert-class tensor of `len` floats, packed onto `ranks_used` ranks.
fn sync_bytes(nodes: usize, ranks_used: usize, instances: usize, len: usize) -> u64 {
    assert!(ranks_used <= nodes && ranks_used >= 1);
    let per_rank = instances / ranks_used;
    let remainder = instances % ranks_used;
    let (_, report) = Cluster::run(ClusterSpec::flat(nodes), move |ctx| {
        let rank = ctx.rank();
        if rank >= ranks_used {
            return;
        }
        let local_count = per_rank + usize::from(rank < remainder);
        if local_count == 0 {
            return;
        }
        let group = ctx.groups().range(0, ranks_used);
        let mut locals: Vec<Vec<f32>> =
            (0..local_count).map(|s| vec![(rank * 10 + s) as f32; len]).collect();
        ctx.expert_allreduce(&group, 1, &mut locals, instances, ReduceMode::Sum).unwrap();
    });
    report.inter_node_bytes
}

fn main() {
    let nodes = 8usize;
    let slots_per_rank = 4usize;
    let instances = 8usize;
    let len = 4096usize;

    println!("# §4.1 ablation — intra+inter rank all-reduce\n");
    println!("## (1) Inter-node bytes vs packing (8 replicas of one class, 16 KiB tensor)\n");
    let mut t = Table::new(&["ranks used", "replicas per rank", "inter-node bytes", "vs spread"]);
    let spread = sync_bytes(nodes, 8, instances, len);
    for ranks_used in [8usize, 4, 2, 1] {
        let bytes = sync_bytes(nodes, ranks_used, instances, len);
        t.row(vec![
            ranks_used.to_string(),
            format!("{}", instances / ranks_used),
            bytes.to_string(),
            format!("{:.2}x", bytes as f64 / spread.max(1) as f64),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Packing all replicas on one rank eliminates inter-node traffic\n\
         entirely; Algorithm 1's contiguous assignment exploits exactly this.\n"
    );

    // (2) Scheduling constraint: cap replicas at N (no intra-rank EDP).
    println!("## (2) Token survival: unconstrained vs replicas-capped-at-N scheduling\n");
    let total_slots = nodes * slots_per_rank; // 32
    let e = 8usize;
    let slot_capacity = 1000.0f64 / total_slots as f64 * 1.0; // cf = 1.0, 1000 tokens
    let mut t2 = Table::new(&[
        "skew",
        "survival unconstrained (%)",
        "survival capped (%)",
        "drop increase (%)",
    ]);
    for (label, hot_share) in [("mild (2x)", 0.25), ("strong (8x)", 0.5), ("extreme", 0.8)] {
        let mut pop = vec![((1.0 - hot_share) * 1000.0 / (e as f64 - 1.0)) as u64; e];
        pop[0] = (hot_share * 1000.0) as u64;

        let survival = |counts: &[usize]| -> f64 {
            let survived: f64 = pop
                .iter()
                .zip(counts)
                .map(|(&p, &r)| (p as f64).min(slot_capacity * r as f64))
                .sum();
            survived / pop.iter().sum::<u64>() as f64
        };

        // Unconstrained: Algorithm 1.
        let free = compute_placement(&pop, total_slots);
        // Constrained: replicas per class can't exceed N; surplus is
        // redistributed to the next-most-popular classes.
        let mut capped = free.clone();
        let mut surplus = 0usize;
        for c in capped.iter_mut() {
            if *c > nodes {
                surplus += *c - nodes;
                *c = nodes;
            }
        }
        while surplus > 0 {
            let i = (0..e)
                .filter(|&i| capped[i] < nodes)
                .max_by_key(|&i| pop[i])
                .expect("capacity remains");
            capped[i] += 1;
            surplus -= 1;
        }

        let s_free = survival(&free) * 100.0;
        let s_capped = survival(&capped) * 100.0;
        let drop_increase = ((100.0 - s_capped) / (100.0 - s_free).max(1e-9) - 1.0) * 100.0;
        t2.row(vec![
            label.to_string(),
            format!("{s_free:.1}"),
            format!("{s_capped:.1}"),
            format!("{drop_increase:.0}"),
        ]);
    }
    println!("{}", t2.render());
    println!(
        "The paper reports the N-replica constraint can increase token drops by\n\
         up to 20%; removing it is what the intra+inter rank all-reduce buys."
    );
}
