//! Diagnostic: how much do token drops actually cost convergence in this
//! setup? Trains the static system at several capacity factors and prints
//! the loss trajectory. Used to calibrate the experiment configuration
//! (documented in EXPERIMENTS.md); not part of the paper's artifact set.

use symi_bench::runs::{cli_args, run_system, SystemChoice};
use symi_model::ModelConfig;

fn main() {
    let (iters, _) = cli_args();
    let base = ModelConfig::small_sim();
    for cf in [0.5f32, 1.0, 4.0, 100.0] {
        let cfg = ModelConfig { capacity_factor: cf, ..base };
        let run = run_system(SystemChoice::DeepSpeed, cfg, iters);
        let n = run.losses.len();
        let tail = &run.losses[n.saturating_sub(20)..];
        let quarters: Vec<String> = [0.25, 0.5, 0.75]
            .iter()
            .map(|f| format!("{:.3}", run.losses[((n as f64 * f) as usize).min(n - 1)]))
            .collect();
        println!(
            "cf={cf:<5} survival={:5.1}%  loss@[25,50,75]%=[{}]  final={:.3}",
            run.mean_survival() * 100.0,
            quarters.join(", "),
            tail.iter().sum::<f32>() / tail.len() as f32
        );
    }
}
