//! Figure 10: zoomed popularity-vs-replication view on the spikiest window
//! of the SYMI run — validating that previous-iteration popularity is a
//! good replica-count proxy even through spikes.

use symi_bench::output::{write_csv, Table};
use symi_bench::runs::{cli_args, load_or_run, SystemChoice};
use symi_model::ModelConfig;

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::small_sim();
    let run = load_or_run(&out, SystemChoice::Symi, cfg, iters);
    let trace = &run.popularity[0];
    let n = trace.len();
    let e = trace.expert_classes();
    let total_slots = run.replicas[0][0].iter().sum::<usize>();

    // Find the spikiest (expert, window-start): largest one-step popularity
    // jump anywhere in the run.
    let mut best = (0usize, 0usize, 0.0f64);
    for exp in 0..e {
        for t in 1..n {
            let a = trace.normalized(t - 1)[exp];
            let b = trace.normalized(t)[exp];
            let jump = (b - a).abs();
            if jump > best.2 {
                best = (exp, t, jump);
            }
        }
    }
    let (exp, center, jump) = best;
    let lo = center.saturating_sub(10);
    let hi = (center + 10).min(n);

    println!("# Figure 10 — zoomed popularity vs replication (spiky expert)\n");
    println!(
        "Spikiest expert: {exp}, iteration {center} (popularity share jumped {:.1} pp)\n",
        jump * 100.0
    );

    let header = ["iteration", "popularity_share", "replica_share", "lag_error"];
    let mut rows = Vec::new();
    let mut table = Table::new(&header.iter().map(|s| &**s).collect::<Vec<_>>());
    let mut total_err = 0.0f64;
    for t in lo..hi {
        let pop = trace.normalized(t)[exp];
        let rep = run.replicas[0][t][exp] as f64 / total_slots as f64;
        // replicas[t] were derived FROM popularity[t] and serve t+1, so the
        // realized lag error compares them against popularity at t+1.
        let realized = if t + 1 < n { trace.normalized(t + 1)[exp] } else { pop };
        let err = (rep - realized).abs();
        total_err += err;
        let row =
            vec![t.to_string(), format!("{pop:.4}"), format!("{rep:.4}"), format!("{err:.4}")];
        table.row(row.clone());
        rows.push(row);
    }
    write_csv(
        &out,
        "fig10_zoom.csv",
        &["iteration", "popularity_share", "replica_share", "lag_error"],
        &rows,
    );
    println!("{}", table.render());
    println!(
        "Mean |replica share − next-iteration popularity| over the window: {:.4}\n\
         (small values mean the previous-iteration proxy tracks even spikes).",
        total_err / (hi - lo) as f64
    );
}
