//! Figure 7: training-loss curves for DeepSpeed, FlexMoE-100/50/10 and
//! SYMI. SYMI converges fastest per iteration; FlexMoE-10 approaches it.

use symi_bench::output::{write_csv, Table};
use symi_bench::runs::{cli_args, load_or_run_all};
use symi_model::ModelConfig;

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::small_sim();
    let runs = load_or_run_all(&out, cfg, iters);

    let header: Vec<String> = std::iter::once("iteration".to_string())
        .chain(runs.iter().map(|r| r.system.clone()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..iters)
        .map(|t| {
            std::iter::once(t.to_string())
                .chain(runs.iter().map(|r| format!("{:.4}", r.losses[t])))
                .collect()
        })
        .collect();
    write_csv(&out, "fig7_loss.csv", &header_refs, &rows);

    println!("# Figure 7 — training loss per system ({iters} iterations)\n");
    let series: Vec<(&str, &[f32])> =
        runs.iter().map(|r| (r.system.as_str(), r.losses.as_slice())).collect();
    println!("{}", symi_bench::plot::line_chart(&series, 72, 16));
    let mut t =
        Table::new(&["system", "loss @25%", "loss @50%", "loss @75%", "final (20-it mean)"]);
    for run in &runs {
        let at = |f: f64| run.losses[((iters as f64 * f) as usize).min(iters - 1)];
        let n = run.losses.len();
        let tail = &run.losses[n.saturating_sub(20)..];
        t.row(vec![
            run.system.clone(),
            format!("{:.3}", at(0.25)),
            format!("{:.3}", at(0.5)),
            format!("{:.3}", at(0.75)),
            format!("{:.3}", tail.iter().sum::<f32>() / tail.len() as f32),
        ]);
    }
    println!("{}", t.render());

    // Iterations-to-target comparison (the paper: SYMI needs 28.5% fewer
    // iterations than DeepSpeed to loss 4.0).
    // Target: the slowest system's smoothed loss at 80% of the run — every
    // system reaches it, and it sits in the steep region where convergence
    // differences are visible (not in the flat tail).
    let target = runs
        .iter()
        .map(|r| {
            let at = (r.losses.len() as f64 * 0.8) as usize;
            let lo = at.saturating_sub(9);
            r.losses[lo..=at].iter().sum::<f32>() / (at - lo + 1) as f32
        })
        .fold(f32::MIN, f32::max);
    let mut t2 = Table::new(&["system", "iterations to target", "vs DeepSpeed"]);
    let ds_iters = runs[0].iterations_to_loss(target, 10);
    for run in &runs {
        let it = run.iterations_to_loss(target, 10);
        let vs = match (it, ds_iters) {
            (Some(i), Some(d)) => format!("{:+.1}%", (i as f64 / d as f64 - 1.0) * 100.0),
            _ => "n/a".to_string(),
        };
        t2.row(vec![
            run.system.clone(),
            it.map(|i| i.to_string()).unwrap_or_else(|| format!(">{iters}")),
            vs,
        ]);
    }
    println!("{}", t2.render());
    println!("Target loss used: {target:.3}.");
}
