//! Figure 2: expert popularity distribution during training of the
//! GPT-Small stand-in extended with 32 experts per layer. Shows the
//! normalized popularity heat over iterations and the largest
//! within-k-iterations swing (the paper highlights >16× within 3
//! iterations, e.g. iterations 72–75).

use symi_bench::output::{write_csv, Table};
use symi_bench::runs::{cli_args, load_or_run, SystemChoice};
use symi_model::ModelConfig;

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::fig2_sim(); // 32 experts per layer
    let run = load_or_run(&out, SystemChoice::DeepSpeed, cfg, iters);
    let trace = &run.popularity[0];

    // CSV: per-iteration normalized popularity for every expert.
    let header: Vec<String> = std::iter::once("iteration".to_string())
        .chain((0..trace.expert_classes()).map(|e| format!("expert_{e}")))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..trace.len())
        .map(|t| {
            std::iter::once(t.to_string())
                .chain(trace.normalized(t).iter().map(|p| format!("{p:.5}")))
                .collect()
        })
        .collect();
    write_csv(&out, "fig2_popularity.csv", &header_refs, &rows);

    println!(
        "# Figure 2 — expert popularity dynamics ({} experts, {iters} iterations)\n",
        trace.expert_classes()
    );
    // Heatmap of normalized popularity (a subset of experts), scaled so the
    // busiest expert saturates the shade ramp.
    let norm_max =
        (0..trace.len()).flat_map(|t| trace.normalized(t)).fold(0.0f64, f64::max).max(1e-9);
    let labels: Vec<String> =
        (0..trace.expert_classes().min(12)).map(|e| format!("expert {e}")).collect();
    let hrows: Vec<(&str, Vec<f64>)> = labels
        .iter()
        .enumerate()
        .map(|(e, label)| {
            let series: Vec<f64> =
                (0..trace.len()).map(|t| trace.normalized(t)[e] / norm_max).collect();
            (label.as_str(), series)
        })
        .collect();
    println!("{}", symi_bench::plot::heatmap(&hrows, 72));
    let mut t = Table::new(&["window (iters)", "max popularity swing (x)"]);
    for k in [2usize, 3, 5, 10, 50] {
        t.row(vec![k.to_string(), format!("{:.1}", trace.max_shift_within(k))]);
    }
    println!("{}", t.render());
    println!(
        "Paper's observation: swings exceeding 16x within 3 iterations.\n\
         Measured here (synthetic drifting-topic corpus): {:.1}x within 3.",
        trace.max_shift_within(3)
    );

    // Show the skew at a few snapshots.
    let mut snap = Table::new(&["iteration", "max share", "min share", "skew (max/min)"]);
    for &t_at in &[0usize, iters / 4, iters / 2, iters.saturating_sub(1)] {
        if t_at >= trace.len() {
            continue;
        }
        let norm = trace.normalized(t_at);
        let max = norm.iter().cloned().fold(0.0, f64::max);
        let min = norm.iter().cloned().fold(1.0, f64::min).max(1e-9);
        snap.row(vec![
            t_at.to_string(),
            format!("{max:.3}"),
            format!("{min:.3}"),
            format!("{:.1}", max / min),
        ]);
    }
    println!("{}", snap.render());
}
