//! Figure 12: per-phase breakdown of one training iteration for every
//! system, reconstructed from measured telemetry (`IterationReport` JSONL)
//! rather than the analytic latency model. For FlexMoE the breakdown shows
//! a rebalancing iteration — the one with the most placement churn — where
//! migration (the rebalance phase) dominates.

use symi_bench::output::{write_csv, Table};
use symi_bench::runs::{cli_args, load_or_run_telemetry, SystemChoice};
use symi_model::ModelConfig;
use symi_telemetry::{IterationReport, Phase, PHASES};

/// Mean phase shares over a slice of reports (critical-path convention).
fn mean_shares(reports: &[&IterationReport]) -> Vec<f64> {
    let mut acc = vec![0.0f64; PHASES.len()];
    for r in reports {
        for (a, s) in acc.iter_mut().zip(r.phase_shares()) {
            *a += s;
        }
    }
    if !reports.is_empty() {
        for a in &mut acc {
            *a /= reports.len() as f64;
        }
    }
    acc
}

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::small_sim();

    // One telemetry-on training run per system (parallel, JSONL-cached).
    let all: Vec<Vec<IterationReport>> = std::thread::scope(|scope| {
        let handles: Vec<_> = SystemChoice::ALL
            .iter()
            .map(|&system| {
                let out = &out;
                scope.spawn(move || load_or_run_telemetry(out, system, cfg, iters))
            })
            .collect();
        handles.into_iter().map(|h| h.join().expect("run thread")).collect()
    });

    println!("# Figure 12 — measured per-phase iteration breakdown\n");
    let mut header = vec!["system".to_string(), "iter (ms)".to_string()];
    header.extend(PHASES.iter().map(|p| format!("{}%", p.name())));
    header.push("drop%".to_string());
    header.push("churn".to_string());
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut csv_rows = Vec::new();

    for (system, reports) in SystemChoice::ALL.iter().zip(&all) {
        // FlexMoE: break down a rebalancing iteration (the paper does);
        // others: average over the whole run.
        let picked: Vec<&IterationReport> = if system.flexmoe_interval().is_some() {
            let hot = reports.iter().max_by_key(|r| r.placement_churn).expect("non-empty run");
            vec![hot]
        } else {
            reports.iter().collect()
        };
        let shares = mean_shares(&picked);
        let mean_ns: f64 =
            picked.iter().map(|r| r.iteration_ns() as f64).sum::<f64>() / picked.len() as f64;
        let mean_drop: f64 =
            picked.iter().map(|r| r.total_drop_rate()).sum::<f64>() / picked.len() as f64;
        let churn: u64 = picked.iter().map(|r| r.placement_churn).max().unwrap_or(0);

        let mut cells = vec![system.name().to_string(), format!("{:.3}", mean_ns / 1e6)];
        cells.extend(shares.iter().map(|s| format!("{:.2}", s * 100.0)));
        cells.push(format!("{:.2}", mean_drop * 100.0));
        cells.push(churn.to_string());
        table.row(cells.clone());
        csv_rows.push(cells);
    }
    write_csv(&out, "fig12_breakdown.csv", &header_refs, &csv_rows);
    println!("{}", table.render());
    println!(
        "Measured shape: compute ({}) dominates every system and SYMI's new\n\
         {} phase stays well under 1% of the iteration. The FlexMoE rows\n\
         are max-churn (rebalancing) iterations; the churn column shows the\n\
         slot moves whose traffic cost the rebalance_traffic binary prices.\n\
         (The distributed engines additionally time routing/dispatch/\n\
         combine/comm phases — see tests/telemetry_pipeline.rs.)",
        Phase::ExpertFfn.name(),
        Phase::Rebalance.name(),
    );
}
