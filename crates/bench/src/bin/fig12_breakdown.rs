//! Figure 12: per-component latency breakdown of one training iteration
//! for every system (GPT-Small scale). For FlexMoE the breakdown shows a
//! rebalancing iteration, where migration dominates.

use symi_bench::latency::LatencyInputs;
use symi_bench::output::{write_csv, Table};
use symi_bench::runs::{cli_args, load_or_run_all, SystemChoice};
use symi_model::ModelConfig;
use symi_netsim::ModelCostConfig;

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::small_sim();
    let runs = load_or_run_all(&out, cfg, iters);

    println!("# Figure 12 — iteration latency breakdown (GPT-Small)\n");
    let component_names = [
        "dense_fwd",
        "router_meta",
        "a2a_fwd",
        "expert_fwd",
        "dense_bwd",
        "a2a_bwd",
        "expert_bwd",
        "edp_sync",
        "grad_comm",
        "opt_step",
        "weight_comm",
        "migration",
    ];
    let mut header = vec!["system".to_string(), "total (s)".to_string()];
    header.extend(component_names.iter().map(|s| s.to_string()));
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let mut table = Table::new(&header_refs);
    let mut csv_rows = Vec::new();

    for (i, system) in SystemChoice::ALL.iter().enumerate() {
        let run = &runs[i];
        let li = LatencyInputs::paper_eval(ModelCostConfig::gpt_small(), *system);
        // FlexMoE: pick a rebalancing iteration (the paper breaks those
        // down); others: the median iteration.
        let t = if system.flexmoe_interval().is_some() {
            (0..iters)
                .max_by_key(|&t| run.moved_replicas[t])
                .expect("non-empty run")
        } else {
            iters / 2
        };
        let b = li.iteration_breakdown(run, t);
        let mut cells = vec![system.name().to_string(), format!("{:.3}", b.total_seconds())];
        for name in component_names {
            cells.push(format!("{:.4}", b.component(name)));
        }
        table.row(cells.clone());
        csv_rows.push(cells);
    }
    write_csv(&out, "fig12_breakdown.csv", &header_refs, &csv_rows);
    println!("{}", table.render());
    println!(
        "Paper's shape: SYMI's new components (router_meta) are ~1% of the\n\
         iteration; FlexMoE's rebalancing iterations are dominated by the\n\
         migration column (2.46x–4.10x latency inflation)."
    );
}
