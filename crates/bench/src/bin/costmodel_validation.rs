//! §3.3 validation: instantiates the analytic model with the paper's
//! GPT3-175B worked example (E=64, N=2048, s=2, G=W=3.375 GB, O=27 GB,
//! PCIe 64 GB/s, IB 400 Gbps) and reproduces every number the section
//! reports: the 1.7 TB/layer footprint, the 27 TB invariant data volume,
//! the 0.269 s vs 0.273 s per-rank costs, and the 1.52% overhead ratio —
//! and cross-checks them against bytes *measured* from the real collectives
//! at reduced scale.

use symi::{ExpertPlacement, SymiOptimizer};
use symi_baselines::RebalanceCostHarness;
use symi_bench::output::Table;
use symi_collectives::{Cluster, ClusterSpec};
use symi_netsim::topology::HardwareSpec;
use symi_netsim::{CommCostModel, SystemKind};
use symi_tensor::AdamConfig;

fn main() {
    let gb = 1.0e9f64; // the paper's worked example uses decimal GB
    let model = CommCostModel {
        nodes: 2048,
        expert_classes: 64,
        slots_per_rank: 2,
        grad_bytes: 3.375 * gb,
        weight_bytes: 3.375 * gb,
        optimizer_bytes: 27.0 * gb,
        hw: HardwareSpec::paper_analysis_example(),
    };

    println!("# §3.3 analytic model validation (GPT3-175B worked example)\n");
    let mut t = Table::new(&["quantity", "computed", "paper"]);
    t.row(vec![
        "(I) optimizer footprint per layer".into(),
        format!("{:.2} TB", model.optimizer_footprint_bytes() / 1e12),
        "~1.7 TB".into(),
    ]);
    t.row(vec![
        "(II) total data per iteration (G+W phases)".into(),
        format!("{:.1} TB", (model.grad_data_bytes() + model.weight_data_bytes()) / 1e12),
        "27 TB".into(),
    ]);
    let static_costs = model.costs(SystemKind::StaticBaseline);
    let symi_costs = model.costs(SystemKind::Symi);
    t.row(vec![
        "(III) static per-rank comm cost".into(),
        format!("{:.4} s", static_costs.total()),
        "~0.269 s".into(),
    ]);
    t.row(vec![
        "(III) SYMI per-rank comm cost".into(),
        format!("{:.4} s", symi_costs.total()),
        "~0.273 s".into(),
    ]);
    t.row(vec![
        "(III) SYMI overhead ratio".into(),
        format!("{:.2}%", model.symi_overhead_ratio() * 100.0),
        "1.52%".into(),
    ]);
    t.row(vec![
        "§2.2 single-expert weight migration".into(),
        format!("{:.4} s", model.weight_bytes / model.hw.bw_net),
        "0.0675 s".into(),
    ]);
    t.row(vec![
        "§2.2 single-expert optimizer migration".into(),
        format!("{:.3} s", model.optimizer_bytes / model.hw.bw_net),
        "0.54 s".into(),
    ]);
    println!("{}", t.render());

    // ---- Measured cross-check at executable scale: the (II) identity. ----
    println!("## Measured data-volume invariance (real collectives, 8 ranks)\n");
    let harness =
        RebalanceCostHarness { nodes: 8, slots_per_rank: 2, expert_classes: 4, param_count: 1024 };
    let uniform = vec![4usize; 4];
    let skewed = vec![13usize, 1, 1, 1];
    let same = harness.symi_traffic(&uniform, &uniform);
    let rebalanced = harness.symi_traffic(&uniform, &skewed);
    let coupled_same = harness.coupled_traffic(&uniform, &uniform);
    let coupled_moved = harness.coupled_traffic(&uniform, &skewed);

    let mut m = Table::new(&["transition", "SYMI bytes", "coupled bytes"]);
    m.row(vec![
        "uniform -> uniform (no rebalance)".into(),
        same.total_bytes().to_string(),
        coupled_same.total_bytes().to_string(),
    ]);
    m.row(vec![
        "uniform -> [13,1,1,1] (9 slots moved)".into(),
        rebalanced.total_bytes().to_string(),
        coupled_moved.total_bytes().to_string(),
    ]);
    println!("{}", m.render());
    assert_eq!(
        same.total_bytes(),
        rebalanced.total_bytes(),
        "SYMI re-placement must move zero extra bytes"
    );
    println!(
        "SYMI's traffic is byte-identical across transitions (the §3.3-II\n\
         invariance); the coupled design pays {:.1}x more when rebalancing.\n",
        coupled_moved.total_bytes() as f64 / coupled_same.total_bytes() as f64
    );

    // ---- Measured uniform-footprint check (§3.3-I). ----
    let (footprints, _) = Cluster::run(ClusterSpec::flat(8), |ctx| {
        let params: Vec<Vec<f32>> = (0..4).map(|_| vec![0.0f32; 1024]).collect();
        let opt = SymiOptimizer::new(ctx.rank(), 8, AdamConfig::default(), &params);
        opt.state_bytes()
    });
    let total: u64 = footprints.iter().sum();
    println!("## Measured optimizer footprint (8 ranks, 4 classes x 1024 params)\n");
    println!(
        "total = {} bytes (= E·O = 4 x 1024 x 16 = {}), per-rank spread max-min = {} bytes\n",
        total,
        4 * 1024 * 16,
        footprints.iter().max().unwrap() - footprints.iter().min().unwrap()
    );
    assert_eq!(total, 4 * 1024 * 16);

    // Sanity: a placement object agrees with the model's instance identity.
    let p = ExpertPlacement::from_counts(&[13, 1, 1, 1], 2);
    assert_eq!(p.total_slots(), 16);
    println!("All §3.3 identities validated.");
}
