//! Appendix A.1 ablation: partitioning the optimizer into k groups of N/k
//! nodes. The per-rank cost bound grows linearly in k; k = 1 (SYMI's
//! uniform partitioning) is optimal and, crucially, *independent of the
//! expert popularity distribution*.

use symi_bench::output::{write_csv, Table};
use symi_netsim::topology::HardwareSpec;
use symi_netsim::{CommCostModel, SystemKind};

fn main() {
    let gb = 1.0e9f64; // the paper's worked example uses decimal GB
    let model = CommCostModel {
        nodes: 2048,
        expert_classes: 64,
        slots_per_rank: 2,
        grad_bytes: 3.375 * gb,
        weight_bytes: 3.375 * gb,
        optimizer_bytes: 27.0 * gb,
        hw: HardwareSpec::paper_analysis_example(),
    };

    println!("# Appendix A.1 — k-group optimizer partitioning ablation\n");
    let mut t = Table::new(&[
        "k (groups)",
        "worst-group T_G bound (s)",
        "worst-group T_W bound (s)",
        "vs k=1",
    ]);
    let mut rows = Vec::new();
    let base =
        model.kpart_cost_bound(1, model.grad_bytes) + model.kpart_cost_bound(1, model.weight_bytes);
    for k in [1usize, 2, 4, 8, 16, 32] {
        let tg = model.kpart_cost_bound(k, model.grad_bytes);
        let tw = model.kpart_cost_bound(k, model.weight_bytes);
        let row = vec![
            k.to_string(),
            format!("{tg:.4}"),
            format!("{tw:.4}"),
            format!("{:.2}x", (tg + tw) / base),
        ];
        t.row(row.clone());
        rows.push(row);
    }
    write_csv(
        &std::path::PathBuf::from("results"),
        "ablation_partitioning.csv",
        &["k", "t_grad_s", "t_weight_s", "vs_k1"],
        &rows,
    );
    println!("{}", t.render());

    // k = 1 must coincide with the SYMI closed form.
    let symi = model.costs(SystemKind::Symi);
    assert!((model.kpart_cost_bound(1, model.grad_bytes) - symi.t_grad).abs() < 1e-9);

    // Exact per-group cost under a popularity skew: the group owning the
    // hot experts pays the bound; a cold group pays less — the imbalance
    // k = 1 eliminates.
    println!("## Exact group costs under skew (k = 4, hot group hosts the popular experts)\n");
    let mut t2 = Table::new(&["group", "remote instances", "T_G (s)"]);
    // 4 groups x 512 nodes; sN = 4096 instances. Hot group's experts hold
    // most replicas; remote instances for its nodes are near the (sN - s)
    // worst case; the cold group's experts are barely replicated.
    for (label, remote) in [("hot", 4096 - 2 - 64), ("warm", 2048), ("cool", 512), ("cold", 64)] {
        let cost = model.kpart_cost_exact(4, 64 / 4, remote, model.grad_bytes);
        t2.row(vec![label.to_string(), remote.to_string(), format!("{cost:.4}")]);
    }
    println!("{}", t2.render());
    println!(
        "The iteration completes at the *slowest* group's pace, so k > 1 loses\n\
         even before the k-factor bound; SYMI (k = 1) keeps every rank at the\n\
         same constant cost regardless of the popularity distribution."
    );
}
