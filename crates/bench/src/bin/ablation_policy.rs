//! Placement-policy ablation (§3.4 / §6): replays a measured popularity
//! trace under different replica policies and scores token survival.
//! Quantifies how close the paper's simple previous-iteration proxy gets
//! to the unattainable same-iteration oracle, and what smoothing or peak
//! provisioning would change.

use symi::policies::evaluate_policy_on_trace;
use symi::TracePolicy;
use symi_bench::output::{write_csv, Table};
use symi_bench::runs::{cli_args, load_or_run, SystemChoice};
use symi_model::ModelConfig;

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::small_sim();
    // Use the SYMI run's trace — adaptive routing dynamics included.
    let run = load_or_run(&out, SystemChoice::Symi, cfg, iters);
    let trace = &run.popularity[0];
    let slot_capacity = cfg.slot_capacity() as f64;

    println!("# Policy ablation — mean token survival on the measured trace\n");
    let policies = [
        TracePolicy::Static,
        TracePolicy::PrevIteration,
        TracePolicy::EmaPercent(30),
        TracePolicy::EmaPercent(70),
        TracePolicy::WindowMax(3),
        TracePolicy::WindowMax(10),
        TracePolicy::Oracle,
    ];
    let mut table = Table::new(&["policy", "mean survival (%)", "gap to oracle (pp)"]);
    let oracle =
        evaluate_policy_on_trace(trace, TracePolicy::Oracle, cfg.total_slots, slot_capacity);
    let mut rows = Vec::new();
    for policy in policies {
        let s = evaluate_policy_on_trace(trace, policy, cfg.total_slots, slot_capacity);
        let row = vec![
            policy.label(),
            format!("{:.2}", s * 100.0),
            format!("{:.2}", (oracle - s) * 100.0),
        ];
        table.row(row.clone());
        rows.push(row);
    }
    write_csv(&out, "ablation_policy.csv", &["policy", "survival_pct", "oracle_gap_pp"], &rows);
    println!("{}", table.render());
    println!(
        "The paper's takeaway (§3.4): previous-iteration popularity is already\n\
         a reliable proxy — the gap to the same-iteration oracle is small, and\n\
         fancier estimators buy little. Static replication leaves the most on\n\
         the table."
    );
}
