//! Figure 8: fraction of survived (not dropped) tokens over training, per
//! system, plus the paper's headline "SYMI dropped X% fewer tokens"
//! comparisons.

use symi_bench::output::{write_csv, Table};
use symi_bench::runs::{cli_args, load_or_run_all};
use symi_model::ModelConfig;

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::small_sim();
    let runs = load_or_run_all(&out, cfg, iters);

    let header: Vec<String> = std::iter::once("iteration".to_string())
        .chain(runs.iter().map(|r| r.system.clone()))
        .collect();
    let header_refs: Vec<&str> = header.iter().map(String::as_str).collect();
    let rows: Vec<Vec<String>> = (0..iters)
        .map(|t| {
            std::iter::once(t.to_string())
                .chain(runs.iter().map(|r| format!("{:.4}", r.survival[t])))
                .collect()
        })
        .collect();
    write_csv(&out, "fig8_survival.csv", &header_refs, &rows);

    println!("# Figure 8 — token survival per system ({iters} iterations)\n");
    let as_f32: Vec<Vec<f32>> =
        runs.iter().map(|r| r.survival.iter().map(|&v| v as f32).collect()).collect();
    let series: Vec<(&str, &[f32])> =
        runs.iter().zip(&as_f32).map(|(r, s)| (r.system.as_str(), s.as_slice())).collect();
    println!("{}", symi_bench::plot::line_chart(&series, 72, 12));
    let mut t = Table::new(&["system", "mean survival (%)", "total dropped (%)"]);
    for run in &runs {
        t.row(vec![
            run.system.clone(),
            format!("{:.2}", run.mean_survival() * 100.0),
            format!("{:.2}", (1.0 - run.mean_survival()) * 100.0),
        ]);
    }
    println!("{}", t.render());

    // "SYMI dropped N% fewer tokens than <system>" (paper: 69/64/62/43%).
    let symi = runs.iter().find(|r| r.system == "SYMI").expect("symi run");
    let symi_drop = 1.0 - symi.mean_survival();
    let mut t2 = Table::new(&["vs system", "SYMI drops fewer tokens by (%)", "paper"]);
    let paper =
        [("DeepSpeed", 69.0), ("FlexMoE-100", 64.0), ("FlexMoE-50", 62.0), ("FlexMoE-10", 43.0)];
    for (name, paper_pct) in paper {
        let other = runs.iter().find(|r| r.system == name).expect("run");
        let other_drop = 1.0 - other.mean_survival();
        let fewer = (1.0 - symi_drop / other_drop.max(1e-9)) * 100.0;
        t2.row(vec![name.to_string(), format!("{fewer:.1}"), format!("{paper_pct:.0}")]);
    }
    println!("{}", t2.render());
}
