//! Figure 9: normalized expert popularity vs replication degree for three
//! expert archetypes (shrinking, growing, spiky), under DeepSpeed (flat
//! replication) and SYMI (adaptive).

use symi_bench::output::write_csv;
use symi_bench::runs::{cli_args, load_or_run, RunResult, SystemChoice};
use symi_model::ModelConfig;

/// Picks the experts whose popularity best matches the three archetypes.
fn archetypes(run: &RunResult) -> (usize, usize, usize) {
    let trace = &run.popularity[0];
    let e = trace.expert_classes();
    let n = trace.len();
    let half = n / 2;
    let mut shrink = (0usize, f64::MAX);
    let mut grow = (0usize, f64::MIN);
    let mut spiky = (0usize, f64::MIN);
    for exp in 0..e {
        let series = trace.series(exp);
        let first: f64 = series[..half].iter().map(|&v| v as f64).sum::<f64>() / half as f64;
        let second: f64 = series[half..].iter().map(|&v| v as f64).sum::<f64>() / (n - half) as f64;
        let trend = second - first;
        if trend < shrink.1 {
            shrink = (exp, trend);
        }
        if trend > grow.1 {
            grow = (exp, trend);
        }
        let mean: f64 = series.iter().map(|&v| v as f64).sum::<f64>() / n as f64;
        let var: f64 = series.iter().map(|&v| (v as f64 - mean).powi(2)).sum::<f64>() / n as f64;
        let cv = var.sqrt() / mean.max(1.0);
        if cv > spiky.1 {
            spiky = (exp, cv);
        }
    }
    (shrink.0, grow.0, spiky.0)
}

fn dump(run: &RunResult, label: &str, experts: (usize, usize, usize), out: &std::path::Path) {
    let trace = &run.popularity[0];
    let n = trace.len();
    let header = vec![
        "iteration",
        "shrink_pop",
        "shrink_replicas",
        "grow_pop",
        "grow_replicas",
        "spiky_pop",
        "spiky_replicas",
    ];
    let rows: Vec<Vec<String>> = (0..n)
        .map(|t| {
            let norm = trace.normalized(t);
            let reps = &run.replicas[0][t];
            vec![
                t.to_string(),
                format!("{:.4}", norm[experts.0]),
                reps[experts.0].to_string(),
                format!("{:.4}", norm[experts.1]),
                reps[experts.1].to_string(),
                format!("{:.4}", norm[experts.2]),
                reps[experts.2].to_string(),
            ]
        })
        .collect();
    write_csv(out, &format!("fig9_{label}.csv"), &header, &rows);
}

/// Correlation between normalized popularity and replica share for one
/// expert over the run.
fn tracking_correlation(run: &RunResult, expert: usize) -> f64 {
    let trace = &run.popularity[0];
    let n = trace.len();
    let xs: Vec<f64> = (0..n).map(|t| trace.normalized(t)[expert]).collect();
    // Replicas were computed FROM iteration t for t+1, so align r[t] with
    // popularity at t.
    let ys: Vec<f64> = (0..n).map(|t| run.replicas[0][t][expert] as f64).collect();
    let mx = xs.iter().sum::<f64>() / n as f64;
    let my = ys.iter().sum::<f64>() / n as f64;
    let cov: f64 = xs.iter().zip(&ys).map(|(x, y)| (x - mx) * (y - my)).sum();
    let vx: f64 = xs.iter().map(|x| (x - mx).powi(2)).sum();
    let vy: f64 = ys.iter().map(|y| (y - my).powi(2)).sum();
    if vx <= 0.0 || vy <= 0.0 {
        return 0.0;
    }
    cov / (vx * vy).sqrt()
}

fn main() {
    let (iters, out) = cli_args();
    let cfg = ModelConfig::small_sim();
    let ds = load_or_run(&out, SystemChoice::DeepSpeed, cfg, iters);
    let symi = load_or_run(&out, SystemChoice::Symi, cfg, iters);

    let picks = archetypes(&symi);
    dump(&ds, "deepspeed", picks, &out);
    dump(&symi, "symi", picks, &out);

    println!("# Figure 9 — popularity vs replication degree\n");
    println!(
        "Archetype experts (from the SYMI run): shrinking = expert {}, growing = expert {}, spiky = expert {}\n",
        picks.0, picks.1, picks.2
    );
    let mut t = symi_bench::output::Table::new(&[
        "system",
        "corr(popularity, replicas) shrink",
        "grow",
        "spiky",
    ]);
    for (label, run) in [("DeepSpeed", &ds), ("SYMI", &symi)] {
        t.row(vec![
            label.to_string(),
            format!("{:.3}", tracking_correlation(run, picks.0)),
            format!("{:.3}", tracking_correlation(run, picks.1)),
            format!("{:.3}", tracking_correlation(run, picks.2)),
        ]);
    }
    println!("{}", t.render());
    println!(
        "Paper's shape: DeepSpeed's replication is flat (correlation ~0, large\n\
         popularity-replication divergence); SYMI tracks popularity closely\n\
         under all three behaviours (correlation near 1)."
    );
}
