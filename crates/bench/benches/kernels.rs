//! Micro-benchmarks for the numeric kernels underlying the training stack.

use symi_bench::{bench, group};
use symi_tensor::adam::quantize_f16;
use symi_tensor::ops::{cross_entropy, gelu, layernorm, softmax_rows};
use symi_tensor::{AdamConfig, AdamState, Matrix};

fn bench_matmul() {
    group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Matrix::from_fn(n, n, |r, cc| ((r * n + cc) as f32 * 0.001).sin());
        let b = Matrix::from_fn(n, n, |r, cc| ((r + cc) as f32 * 0.002).cos());
        bench(&format!("matmul/nn/{n}"), || a.matmul(&b));
        bench(&format!("matmul/nt/{n}"), || a.matmul_nt(&b));
        bench(&format!("matmul/tn/{n}"), || a.matmul_tn(&b));
    }
}

fn bench_activations() {
    group("activations");
    let x = Matrix::from_fn(256, 256, |r, cc| ((r * 7 + cc) as f32 * 0.01).sin());
    bench("softmax_rows_256x256", || softmax_rows(&x));
    bench("gelu_256x256", || gelu(&x));
    let gamma = Matrix::from_vec(1, 256, vec![1.0; 256]);
    let beta = Matrix::zeros(1, 256);
    bench("layernorm_256x256", || layernorm(&x, &gamma, &beta, 1e-5));
    let targets: Vec<usize> = (0..256).map(|i| i % 256).collect();
    bench("cross_entropy_256x256", || cross_entropy(&x, &targets));
}

fn bench_adam() {
    group("optimizer kernels");
    let params = vec![0.1f32; 1 << 16];
    let grads = vec![0.01f32; 1 << 16];
    let mut out = vec![0.0f32; 1 << 16];
    let mut state = AdamState::new(AdamConfig::default(), &params);
    bench("adam_step_64k", || {
        state.step(&grads, &mut out);
        out[0]
    });
    bench("f16_quantize_64k", || {
        let mut acc = 0u32;
        for v in &params {
            acc = acc.wrapping_add(quantize_f16(*v) as u32);
        }
        acc
    });
}

fn main() {
    bench_matmul();
    bench_activations();
    bench_adam();
}
