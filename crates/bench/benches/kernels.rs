//! Micro-benchmarks for the GEMM kernels against the naive oracle.
//!
//! Shapes follow the training stack's real GEMMs: the `small_sim`
//! simulation config (d_model 64, d_ff 128) and the paper's GPT-Small
//! geometry (d_model 768, d_ff 3072), plus a d256 midpoint where the
//! acceptance criterion (≥3× single-thread speedup over naive) is
//! checked. Each shape runs the naive i-j-k kernel once, then an
//! **interleaved** sweep (each rep measures every configuration once, mins
//! accumulate per configuration, so a throttled window on a shared runner
//! degrades all configurations equally): the active-path kernel at
//! 1/2/4/8 worker threads, the forced-scalar family at 1 thread (the
//! `simd_uplift` ratio), and the f16-storage/f32-accumulate kernel at
//! 1 thread. Results (ns/iter, GFLOP/s, speedups, the active SIMD path)
//! land in `BENCH_kernels.json` at the repo root.
//!
//! With `SYMI_KERNEL_SMOKE=1` the binary instead runs the CI gate:
//! every shape at 1 thread and at max threads (min-of-reps), asserting
//!   1. the blocked kernel beats naive on the d256 shape,
//!   2. results match the oracle within the ULP/error-bound gate
//!      (the active path may use FMA, so bitwise equality only holds
//!      on the forced-scalar path), and
//!   3. **scaling**: no shape is >10% slower at max threads than at
//!      1 thread (plus a small absolute grace for timer noise) — the
//!      regression this PR fixes must stay fixed.

use std::path::Path;
use std::time::Instant;

use symi_bench::{bench, group};
use symi_telemetry::json::{Obj, Value};
use symi_tensor::kernels::{self, naive};
use symi_tensor::{pool, HalfMatrix, Matrix};

/// (label, m, k, n): `out[m×n] = a[m×k] · b[k×n]`.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("small_sim_ffn_up/64x64x128", 64, 64, 128),
    ("d256/128x256x256", 128, 256, 256),
    ("gpt_small_attn_proj/128x768x768", 128, 768, 768),
    ("gpt_small_ffn_up/128x768x3072", 128, 768, 3072),
    ("gpt_small_ffn_down/128x3072x768", 128, 3072, 768),
];

const THREADS: &[usize] = &[1, 2, 4, 8];

fn inputs(m: usize, k: usize, n: usize) -> (Matrix, Matrix) {
    let a = Matrix::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.001).sin());
    let b = Matrix::from_fn(k, n, |r, c| ((r + 2 * c) as f32 * 0.002).cos());
    (a, b)
}

fn gflops(m: usize, k: usize, n: usize, ns: f64) -> f64 {
    (2 * m * n * k) as f64 / ns
}

fn bench_shapes() -> Value {
    let mut rows = Vec::new();
    for &(label, m, k, n) in SHAPES {
        group(label);
        let (a, b) = inputs(m, k, n);
        let bh = HalfMatrix::from_matrix(&b);
        let mut out = Matrix::zeros(m, n);

        let naive_ns = bench(&format!("{label}/naive"), || naive::matmul(&a, &b)[(0, 0)]).min_ns;

        let mut row = Obj::new();
        row.set("shape", Value::str(label));
        row.set("m", Value::u64(m as u64));
        row.set("k", Value::u64(k as u64));
        row.set("n", Value::u64(n as u64));
        row.set("naive_ns", Value::Num(naive_ns));
        row.set("naive_gflops", Value::Num(gflops(m, k, n, naive_ns)));

        // The thread sweep, the forced-scalar run, and the f16 run are
        // INTERLEAVED: each rep measures every configuration once before
        // moving on, and mins accumulate per configuration. On a shared
        // (frequency-throttled) runner a slow window then degrades all
        // configurations equally instead of whichever one it landed on,
        // so the speedup/uplift ratios stay meaningful.
        const REPS: usize = 7;
        let active = kernels::active_path();
        let mut thread_ns = vec![f64::INFINITY; THREADS.len()];
        let mut scalar_ns = f64::INFINITY;
        let mut f16_ns = f64::INFINITY;
        a.matmul_into(&b, &mut out); // warm caches and the pool
        for _ in 0..REPS {
            for (i, &t) in THREADS.iter().enumerate() {
                pool::set_threads(t);
                let t0 = Instant::now();
                a.matmul_into(&b, &mut out);
                thread_ns[i] = thread_ns[i].min(t0.elapsed().as_nanos() as f64);
            }
            pool::set_threads(1);
            kernels::force_simd_path(kernels::SimdPath::Scalar);
            let t0 = Instant::now();
            a.matmul_into(&b, &mut out);
            scalar_ns = scalar_ns.min(t0.elapsed().as_nanos() as f64);
            kernels::force_simd_path(active);
            let t0 = Instant::now();
            a.matmul_f16_into(&bh, &mut out);
            f16_ns = f16_ns.min(t0.elapsed().as_nanos() as f64);
        }

        let single_ns = thread_ns[0];
        let mut by_threads = Vec::new();
        for (i, &t) in THREADS.iter().enumerate() {
            let mut tr = Obj::new();
            tr.set("threads", Value::u64(t as u64));
            tr.set("blocked_ns", Value::Num(thread_ns[i]));
            tr.set("gflops", Value::Num(gflops(m, k, n, thread_ns[i])));
            tr.set("speedup_vs_naive", Value::Num(naive_ns / thread_ns[i]));
            by_threads.push(Value::Obj(tr));
        }
        row.set("blocked", Value::Arr(by_threads));
        row.set("single_thread_speedup", Value::Num(naive_ns / single_ns));

        // Forced-scalar run of the same blocked kernel (1 thread) — the
        // SIMD uplift is measured within one run so a throttled shared
        // runner can't skew the ratio.
        row.set("scalar_ns", Value::Num(scalar_ns));
        row.set("scalar_gflops", Value::Num(gflops(m, k, n, scalar_ns)));
        row.set("simd_uplift", Value::Num(scalar_ns / single_ns));

        // f16-storage / f32-accumulate path (1 thread): weight matrix B is
        // binary16 so the kernel streams half the bytes per k-step.
        row.set("f16_ns", Value::Num(f16_ns));
        row.set("f16_gflops", Value::Num(gflops(m, k, n, f16_ns)));
        row.set("f16_speedup_vs_f32", Value::Num(single_ns / f16_ns));

        println!(
            "{label}: naive {:.2} GFLOP/s, scalar(1t) {:.2} GFLOP/s, blocked(1t) {:.2} GFLOP/s \
             ({:.2}x naive, {:.2}x scalar), f16(1t) {:.2} GFLOP/s",
            gflops(m, k, n, naive_ns),
            gflops(m, k, n, scalar_ns),
            gflops(m, k, n, single_ns),
            naive_ns / single_ns,
            scalar_ns / single_ns,
            gflops(m, k, n, f16_ns),
        );
        rows.push(Value::Obj(row));
    }
    Value::Arr(rows)
}

/// Assert `got` matches the naive oracle within the kernel tolerance gate:
/// per element, ≤ 8 ULPs apart or within `4·k·ε` of the magnitude bound
/// `|A|·|B|`. The active path may reassociate via FMA; bitwise equality is
/// only promised on the forced-scalar path.
fn assert_oracle(got: &Matrix, oracle: &Matrix, absbound: &Matrix, k: usize, label: &str) {
    let scale = 4.0 * (k.max(1) as f32) * f32::EPSILON;
    for (i, ((&g, &o), &ab)) in
        got.as_slice().iter().zip(oracle.as_slice()).zip(absbound.as_slice()).enumerate()
    {
        let ulps = kernels::ulp_diff(g, o);
        let tol = scale * ab + f32::MIN_POSITIVE;
        assert!(
            ulps <= 8 || (g - o).abs() <= tol,
            "{label}: element {i} off oracle: got {g:e} want {o:e} ({ulps} ulps, tol {tol:e})"
        );
    }
}

/// Min-of-reps wall time of one blocked GEMM at the current thread count.
fn time_gemm(a: &Matrix, b: &Matrix, out: &mut Matrix, reps: usize) -> f64 {
    let mut best = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        a.matmul_into(b, out);
        best = best.min(t.elapsed().as_nanos() as f64);
    }
    best
}

/// CI gate. Three checks, all cheap enough for every PR:
///   correctness — tolerance-gated oracle comparison on the d256 shape;
///   throughput — blocked beats naive on d256;
///   scaling — for every benchmark shape, max-threads must not be >10%
///   slower than 1 thread (min over reps, plus 150 µs absolute grace for
///   scheduler noise on shared runners). The cost-model gate makes small
///   shapes run sequentially regardless of the pool size, so this holds
///   even on single-core runners.
fn smoke() {
    let reps = 5;
    let max_t = *THREADS.last().unwrap();
    println!("simd path: {}", kernels::simd_path_name());

    // Correctness + throughput on the midpoint shape.
    {
        let (label, m, k, n) = ("d256/128x256x256", 128usize, 256usize, 256usize);
        let (a, b) = inputs(m, k, n);
        let mut out = Matrix::zeros(m, n);
        pool::set_threads(1);
        let mut naive_ns = f64::INFINITY;
        let mut naive_out = Matrix::zeros(m, n);
        for _ in 0..reps {
            let t = Instant::now();
            naive_out = naive::matmul(&a, &b);
            naive_ns = naive_ns.min(t.elapsed().as_nanos() as f64);
        }
        let blocked_ns = time_gemm(&a, &b, &mut out, reps);
        let absbound = naive::abs_matmul(&a, &b);
        assert_oracle(&out, &naive_out, &absbound, k, label);
        println!(
            "smoke {label}: naive {:.2} GFLOP/s, blocked {:.2} GFLOP/s ({:.2}x)",
            gflops(m, k, n, naive_ns),
            gflops(m, k, n, blocked_ns),
            naive_ns / blocked_ns
        );
        assert!(
            blocked_ns <= naive_ns,
            "blocked GEMM slower than naive: {blocked_ns:.0} ns vs {naive_ns:.0} ns"
        );
    }

    // Scaling regression gate over every benchmark shape.
    const GRACE_NS: f64 = 150_000.0;
    let mut failures = Vec::new();
    for &(label, m, k, n) in SHAPES {
        let (a, b) = inputs(m, k, n);
        let mut out = Matrix::zeros(m, n);
        pool::set_threads(1);
        let t1 = time_gemm(&a, &b, &mut out, reps);
        pool::set_threads(max_t);
        let tmax = time_gemm(&a, &b, &mut out, reps);
        pool::set_threads(1);
        let verdict = if tmax <= 1.10 * t1 + GRACE_NS { "ok" } else { "REGRESSION" };
        println!(
            "scaling {label}: 1t {:.0} ns, {max_t}t {:.0} ns ({:+.1}%) {verdict}",
            t1,
            tmax,
            (tmax / t1 - 1.0) * 100.0
        );
        if verdict != "ok" {
            failures.push(format!("{label}: {t1:.0} ns → {tmax:.0} ns at {max_t} threads"));
        }
    }
    assert!(
        failures.is_empty(),
        "shapes >10% slower at {max_t} threads than at 1 thread:\n  {}",
        failures.join("\n  ")
    );
}

fn main() {
    if std::env::var("SYMI_KERNEL_SMOKE").is_ok() {
        smoke();
        return;
    }

    let shapes = bench_shapes();

    let mut o = Obj::new();
    o.set("bench", Value::str("gemm_kernels"));
    o.set("simd_path", Value::str(kernels::simd_path_name()));
    o.set("threads_swept", Value::arr_u64(&THREADS.iter().map(|&t| t as u64).collect::<Vec<_>>()));
    o.set("shapes", shapes);
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_kernels.json");
    std::fs::write(&out, Value::Obj(o).to_string()).expect("write kernels json");
    println!("wrote {}", out.display());
}
