//! Micro-benchmarks for the blocked GEMM kernels against the naive oracle.
//!
//! Shapes follow the training stack's real GEMMs: the `small_sim`
//! simulation config (d_model 64, d_ff 128) and the paper's GPT-Small
//! geometry (d_model 768, d_ff 3072), plus a d256 midpoint where the
//! acceptance criterion (≥3× single-thread speedup over naive) is
//! checked. Each shape runs the naive i-j-k kernel once and the blocked
//! kernel at 1/2/4/8 worker threads; results (ns/iter, GFLOP/s, speedup)
//! land in `BENCH_kernels.json` at the repo root.
//!
//! With `SYMI_KERNEL_SMOKE=1` the binary instead runs a single-iteration
//! smoke check (CI): one small shape, asserting the blocked kernel's
//! throughput is at least the naive kernel's.

use std::path::Path;
use std::time::Instant;

use symi_bench::{bench, group};
use symi_telemetry::json::{Obj, Value};
use symi_tensor::kernels::naive;
use symi_tensor::{pool, Matrix};

/// (label, m, k, n): `out[m×n] = a[m×k] · b[k×n]`.
const SHAPES: &[(&str, usize, usize, usize)] = &[
    ("small_sim_ffn_up/64x64x128", 64, 64, 128),
    ("d256/128x256x256", 128, 256, 256),
    ("gpt_small_attn_proj/128x768x768", 128, 768, 768),
    ("gpt_small_ffn_up/128x768x3072", 128, 768, 3072),
    ("gpt_small_ffn_down/128x3072x768", 128, 3072, 768),
];

const THREADS: &[usize] = &[1, 2, 4, 8];

fn inputs(m: usize, k: usize, n: usize) -> (Matrix, Matrix) {
    let a = Matrix::from_fn(m, k, |r, c| ((r * k + c) as f32 * 0.001).sin());
    let b = Matrix::from_fn(k, n, |r, c| ((r + 2 * c) as f32 * 0.002).cos());
    (a, b)
}

fn gflops(m: usize, k: usize, n: usize, ns: f64) -> f64 {
    (2 * m * n * k) as f64 / ns
}

fn bench_shapes() -> Value {
    let mut rows = Vec::new();
    for &(label, m, k, n) in SHAPES {
        group(label);
        let (a, b) = inputs(m, k, n);
        let mut out = Matrix::zeros(m, n);

        let naive_ns = bench(&format!("{label}/naive"), || naive::matmul(&a, &b)[(0, 0)]).min_ns;

        let mut row = Obj::new();
        row.set("shape", Value::str(label));
        row.set("m", Value::u64(m as u64));
        row.set("k", Value::u64(k as u64));
        row.set("n", Value::u64(n as u64));
        row.set("naive_ns", Value::Num(naive_ns));
        row.set("naive_gflops", Value::Num(gflops(m, k, n, naive_ns)));

        let mut by_threads = Vec::new();
        let mut single_ns = f64::NAN;
        for &t in THREADS {
            pool::set_threads(t);
            let r = bench(&format!("{label}/blocked/t{t}"), || {
                a.matmul_into(&b, &mut out);
                out[(0, 0)]
            });
            if t == 1 {
                single_ns = r.min_ns;
            }
            let mut tr = Obj::new();
            tr.set("threads", Value::u64(t as u64));
            tr.set("blocked_ns", Value::Num(r.min_ns));
            tr.set("gflops", Value::Num(gflops(m, k, n, r.min_ns)));
            tr.set("speedup_vs_naive", Value::Num(naive_ns / r.min_ns));
            by_threads.push(Value::Obj(tr));
        }
        pool::set_threads(1);
        row.set("blocked", Value::Arr(by_threads));
        row.set("single_thread_speedup", Value::Num(naive_ns / single_ns));
        println!(
            "{label}: naive {:.2} GFLOP/s, blocked(1t) {:.2} GFLOP/s, speedup {:.2}x",
            gflops(m, k, n, naive_ns),
            gflops(m, k, n, single_ns),
            naive_ns / single_ns
        );
        rows.push(Value::Obj(row));
    }
    Value::Arr(rows)
}

/// CI smoke: single-digit iterations of one mid-size shape; asserts the
/// blocked kernel is at least as fast as the naive oracle (min over a few
/// repeats to duck scheduler noise on shared runners).
fn smoke() {
    let (label, m, k, n) = ("d256/128x256x256", 128usize, 256usize, 256usize);
    let (a, b) = inputs(m, k, n);
    let mut out = Matrix::zeros(m, n);
    let mut naive_out = Matrix::zeros(m, n);
    let reps = 5;

    pool::set_threads(1);
    let mut naive_ns = f64::INFINITY;
    let mut blocked_ns = f64::INFINITY;
    for _ in 0..reps {
        let t = Instant::now();
        naive_out = naive::matmul(&a, &b);
        naive_ns = naive_ns.min(t.elapsed().as_nanos() as f64);
        let t = Instant::now();
        a.matmul_into(&b, &mut out);
        blocked_ns = blocked_ns.min(t.elapsed().as_nanos() as f64);
    }
    assert_eq!(out.as_slice(), naive_out.as_slice(), "blocked kernel must match oracle");
    println!(
        "smoke {label}: naive {:.2} GFLOP/s, blocked {:.2} GFLOP/s ({:.2}x)",
        gflops(m, k, n, naive_ns),
        gflops(m, k, n, blocked_ns),
        naive_ns / blocked_ns
    );
    assert!(
        blocked_ns <= naive_ns,
        "blocked GEMM slower than naive: {blocked_ns:.0} ns vs {naive_ns:.0} ns"
    );
}

fn main() {
    if std::env::var("SYMI_KERNEL_SMOKE").is_ok() {
        smoke();
        return;
    }

    let shapes = bench_shapes();

    let mut o = Obj::new();
    o.set("bench", Value::str("gemm_kernels"));
    o.set("threads_swept", Value::arr_u64(&THREADS.iter().map(|&t| t as u64).collect::<Vec<_>>()));
    o.set("shapes", shapes);
    let out = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_kernels.json");
    std::fs::write(&out, Value::Obj(o).to_string()).expect("write kernels json");
    println!("wrote {}", out.display());
}
