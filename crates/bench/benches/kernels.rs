//! Micro-benchmarks for the numeric kernels underlying the training stack.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symi_tensor::adam::quantize_f16;
use symi_tensor::ops::{cross_entropy, gelu, layernorm, softmax_rows};
use symi_tensor::{AdamConfig, AdamState, Matrix};

fn bench_matmul(c: &mut Criterion) {
    let mut g = c.benchmark_group("matmul");
    for &n in &[32usize, 64, 128] {
        let a = Matrix::from_fn(n, n, |r, cc| ((r * n + cc) as f32 * 0.001).sin());
        let b = Matrix::from_fn(n, n, |r, cc| ((r + cc) as f32 * 0.002).cos());
        g.bench_with_input(BenchmarkId::new("nn", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul(&b)))
        });
        g.bench_with_input(BenchmarkId::new("nt", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul_nt(&b)))
        });
        g.bench_with_input(BenchmarkId::new("tn", n), &n, |bench, _| {
            bench.iter(|| std::hint::black_box(a.matmul_tn(&b)))
        });
    }
    g.finish();
}

fn bench_activations(c: &mut Criterion) {
    let x = Matrix::from_fn(256, 256, |r, cc| ((r * 7 + cc) as f32 * 0.01).sin());
    c.bench_function("softmax_rows_256x256", |b| {
        b.iter(|| std::hint::black_box(softmax_rows(&x)))
    });
    c.bench_function("gelu_256x256", |b| b.iter(|| std::hint::black_box(gelu(&x))));
    let gamma = Matrix::from_vec(1, 256, vec![1.0; 256]);
    let beta = Matrix::zeros(1, 256);
    c.bench_function("layernorm_256x256", |b| {
        b.iter(|| std::hint::black_box(layernorm(&x, &gamma, &beta, 1e-5)))
    });
    let targets: Vec<usize> = (0..256).map(|i| i % 256).collect();
    c.bench_function("cross_entropy_256x256", |b| {
        b.iter(|| std::hint::black_box(cross_entropy(&x, &targets)))
    });
}

fn bench_adam(c: &mut Criterion) {
    let params = vec![0.1f32; 1 << 16];
    let grads = vec![0.01f32; 1 << 16];
    let mut out = vec![0.0f32; 1 << 16];
    let mut state = AdamState::new(AdamConfig::default(), &params);
    c.bench_function("adam_step_64k", |b| {
        b.iter(|| {
            state.step(&grads, &mut out);
            std::hint::black_box(&out);
        })
    });
    c.bench_function("f16_quantize_64k", |b| {
        b.iter(|| {
            for v in &params {
                std::hint::black_box(quantize_f16(*v));
            }
        })
    });
}

criterion_group!(benches, bench_matmul, bench_activations, bench_adam);
criterion_main!(benches);
