//! Wire-protocol benchmarks: tag encode/decode throughput and the
//! overlapped batched-exchange smoke the protocol fuzzer stresses for
//! correctness — here timed, with epoch fencing and wire-length validation
//! on the hot path.

use symi_bench::{bench, group};
use symi_collectives::coll::chunk_range;
use symi_collectives::p2p::{RecvOp, SendOp};
use symi_collectives::{tag, Cluster, ClusterSpec, FaultPlan, TagSpace, WirePhase};

fn bench_tag_codec() {
    group("structured tag codec");
    bench("encode_decode_4096_tags", || {
        let mut acc = 0u64;
        for it in 0..64u64 {
            let tags = TagSpace::new(3, std::hint::black_box(it));
            for entity in 0..64usize {
                let t =
                    tags.tag(WirePhase::WeightDistribute, std::hint::black_box(entity), entity % 8);
                acc ^= tag::decode(t).expect("structured").entity;
            }
        }
        std::hint::black_box(acc)
    });
}

fn bench_overlapped_exchange() {
    // The fused Grad+Weight schedule: all sends of both phases leave
    // before any receive, weight receives posted first. Every receive is
    // length-validated and epoch-checked.
    group("overlapped grad+weight exchange (includes cluster spawn)");
    for &(ranks, slots, len) in &[(4usize, 4usize, 1usize << 10), (8, 2, 1 << 10)] {
        bench(&format!("exchange/{ranks}r_{slots}s_{len}f"), || {
            Cluster::run(ClusterSpec::flat(ranks), |ctx| {
                let me = ctx.rank();
                let tags = TagSpace::new(0, 1);
                let chunk = |r: usize| chunk_range(len, ranks, r);
                let mut sends = Vec::new();
                for dst in 0..ranks {
                    let (a, b) = chunk(dst);
                    sends.push(SendOp::new(
                        dst,
                        tags.tag(WirePhase::GradCollect, 0, me),
                        vec![0.25f32; b - a],
                    ));
                }
                let (ma, mb) = chunk(me);
                let half = vec![0x3c00u16; mb - ma];
                for slot in 0..ranks * slots {
                    sends.push(SendOp::new(
                        slot / slots,
                        tags.tag(WirePhase::WeightDistribute, slot, me),
                        half.clone(),
                    ));
                }
                let mut recvs = Vec::new();
                for local in 0..slots {
                    let slot = me * slots + local;
                    for src in 0..ranks {
                        let (a, b) = chunk(src);
                        recvs.push(RecvOp::sized(
                            src,
                            tags.tag(WirePhase::WeightDistribute, slot, src),
                            b - a,
                        ));
                    }
                }
                for src in 0..ranks {
                    recvs.push(RecvOp::sized(
                        src,
                        tags.tag(WirePhase::GradCollect, 0, src),
                        mb - ma,
                    ));
                }
                ctx.batch_isend_irecv(sends, &recvs).unwrap().len()
            })
        });
    }
}

fn bench_fault_plan_overhead() {
    // The fault-injection hook sits on the physical send path even when no
    // plan is armed; this smoke times an 8-rank ring of sized receives under
    // an *empty* plan so regressions in the no-fault fast path show up here
    // rather than in training throughput.
    group("empty fault plan overhead (includes cluster spawn)");
    let ranks = 8usize;
    let len = 1usize << 10;
    bench(&format!("ring/{ranks}r_{len}f_empty_plan"), || {
        let (results, _) =
            Cluster::run_with_faults(ClusterSpec::flat(ranks), FaultPlan::new(0), move |ctx| {
                let me = ctx.rank();
                let tags = TagSpace::new(0, 1);
                let next = (me + 1) % ranks;
                let prev = (me + ranks - 1) % ranks;
                let sends = vec![SendOp::new(
                    next,
                    tags.tag(WirePhase::GradCollect, 0, me),
                    vec![0.5f32; len],
                )];
                let recvs =
                    vec![RecvOp::sized(prev, tags.tag(WirePhase::GradCollect, 0, prev), len)];
                ctx.batch_isend_irecv(sends, &recvs).unwrap().len()
            });
        results.into_iter().map(|r| r.expect("no faults injected")).sum::<usize>()
    });
}

fn main() {
    bench_tag_codec();
    bench_overlapped_exchange();
    bench_fault_plan_overhead();
}
