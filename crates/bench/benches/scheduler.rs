//! Expert Placement Scheduler benchmarks: Algorithm 1 must stay negligible
//! next to an iteration (§5.3 attributes <0.1% of iteration time to it).

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion};
use symi::{compute_placement, ExpertPlacement};
use symi_workload::SyntheticTraceConfig;

fn bench_compute_placement(c: &mut Criterion) {
    let mut g = c.benchmark_group("compute_placement");
    for &e in &[16usize, 64, 256] {
        let trace = SyntheticTraceConfig {
            expert_classes: e,
            iterations: 1,
            ..Default::default()
        }
        .generate();
        let popularity = trace.iterations[0].clone();
        let slots = 4 * e;
        g.bench_with_input(BenchmarkId::from_parameter(e), &e, |b, _| {
            b.iter(|| std::hint::black_box(compute_placement(&popularity, slots)))
        });
    }
    g.finish();
}

fn bench_placement_ops(c: &mut Criterion) {
    let counts = compute_placement(
        &SyntheticTraceConfig { expert_classes: 64, iterations: 1, ..Default::default() }
            .generate()
            .iterations[0],
        256,
    );
    let p = ExpertPlacement::from_counts(&counts, 4);
    c.bench_function("placement_from_counts_64c_256s", |b| {
        b.iter(|| std::hint::black_box(ExpertPlacement::from_counts(&counts, 4)))
    });
    c.bench_function("placement_host_ranks_all_classes", |b| {
        b.iter(|| {
            for class in 0..64 {
                std::hint::black_box(p.host_ranks(class));
            }
        })
    });
    let q = ExpertPlacement::uniform(64, 64, 4);
    c.bench_function("placement_diff", |b| {
        b.iter(|| std::hint::black_box(p.diff_slots(&q)))
    });
}

criterion_group!(benches, bench_compute_placement, bench_placement_ops);
criterion_main!(benches);
