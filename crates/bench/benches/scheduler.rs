//! Expert Placement Scheduler benchmarks: Algorithm 1 must stay negligible
//! next to an iteration (§5.3 attributes <0.1% of iteration time to it).

use symi::{compute_placement, ExpertPlacement};
use symi_bench::{bench, group};
use symi_workload::SyntheticTraceConfig;

fn bench_compute_placement() {
    group("compute_placement");
    for &e in &[16usize, 64, 256] {
        let trace = SyntheticTraceConfig { expert_classes: e, iterations: 1, ..Default::default() }
            .generate();
        let popularity = trace.iterations[0].clone();
        let slots = 4 * e;
        bench(&format!("compute_placement/{e}e_{slots}s"), || {
            compute_placement(&popularity, slots)
        });
    }
}

fn bench_placement_ops() {
    group("placement ops");
    let counts = compute_placement(
        &SyntheticTraceConfig { expert_classes: 64, iterations: 1, ..Default::default() }
            .generate()
            .iterations[0],
        256,
    );
    let p = ExpertPlacement::from_counts(&counts, 4);
    bench("placement_from_counts_64c_256s", || ExpertPlacement::from_counts(&counts, 4));
    bench("placement_host_ranks_all_classes", || {
        let mut total = 0usize;
        for class in 0..64 {
            total += p.host_ranks(class).len();
        }
        total
    });
    let q = ExpertPlacement::uniform(64, 64, 4);
    bench("placement_diff", || p.diff_slots(&q));
}

fn main() {
    bench_compute_placement();
    bench_placement_ops();
}
