//! Compute/communication overlap: the sequential iteration vs the
//! overlapped scheduler on one multi-rank engine, same shapes as the
//! fig12 breakdown (d_model 64, d_ff 256, 8 expert classes), interleaved
//! round-for-round so both modes see the same machine state. Rank 0 also
//! samples the per-iteration hidden/exposed byte gauges the overlapped
//! engine publishes, so the JSON reports *how much* of the transfer
//! latency the schedule actually hid. Results land in
//! `BENCH_overlap.json` at the repo root.
//!
//! With `SYMI_OVERLAP_SMOKE=1` (the CI leg) the run additionally gates:
//! the overlapped mean step time must not exceed the sequential one
//! beyond the measured noise floor, and some bytes must have been hidden.

use std::path::Path;
use std::time::Instant;

use symi::{EngineConfig, MoeLayerEngine};
use symi_collectives::{Cluster, ClusterSpec, RankCtx};
use symi_telemetry::json::{Obj, Value};
use symi_telemetry::ClusterTelemetry;
use symi_tensor::{AdamConfig, Matrix};

const NODES: usize = 4;
const D: usize = 64;
const DFF: usize = 256;
const E: usize = 8;
const S: usize = 2;
const T: usize = 64;
const WARMUP_ROUNDS: usize = 2;
const ROUNDS: usize = 16;
const STEPS: usize = 8;
const KEEP: usize = 8;

/// Distinct layer ids keep the two engines' wire tags disjoint even though
/// they share one rank context.
fn engine_cfg(layer_id: usize) -> EngineConfig {
    EngineConfig {
        d_model: D,
        d_ff: DFF,
        expert_classes: E,
        slots_per_rank: S,
        slot_capacity: 1_000_000,
        adam: AdamConfig::default(),
        seed: 97,
        layer_id,
    }
}

/// Rank-skewed tokens so popularity shifts and the placement rebalances —
/// the overlapped scatter then carries changing assignments.
fn tokens(rank: usize) -> Matrix {
    Matrix::from_fn(T, D, |r, c| {
        (c as f32 * 0.7).sin() + 0.05 * (((rank * T + r) * D + c) as f32 * 0.613).sin()
    })
}

/// Mean ns/step over one round of `STEPS` iterations.
fn time_round(ctx: &mut RankCtx, engine: &mut MoeLayerEngine, x: &Matrix, target: &Matrix) -> f64 {
    let t = Instant::now();
    for _ in 0..STEPS {
        std::hint::black_box(engine.iteration(ctx, x, target).expect("bench iteration").loss);
    }
    t.elapsed().as_nanos() as f64 / STEPS as f64
}

#[derive(Default)]
struct OverlapTotals {
    hidden_bytes: f64,
    exposed_bytes: f64,
    exposed_ms: f64,
    steps: u64,
}

struct BenchOut {
    seq_rounds: Vec<f64>,
    ovl_rounds: Vec<f64>,
    totals: OverlapTotals,
}

fn run() -> BenchOut {
    let telemetry = ClusterTelemetry::new(NODES);
    let tele = telemetry.clone();
    let (results, _) = Cluster::run(ClusterSpec::flat(NODES), move |ctx| {
        let x = tokens(ctx.rank());
        let target = Matrix::zeros(T, D);
        let mut seq = MoeLayerEngine::new(ctx.rank(), NODES, engine_cfg(0));
        seq.set_overlap(false);
        let mut ovl = MoeLayerEngine::new(ctx.rank(), NODES, engine_cfg(1));
        ovl.set_overlap(true);
        // Only rank 0's overlapped engine publishes gauges, so the samples
        // below are never clobbered by a sibling rank.
        if ctx.rank() == 0 {
            ovl.attach_telemetry(tele.handle(0));
        }

        for _ in 0..WARMUP_ROUNDS {
            time_round(ctx, &mut seq, &x, &target);
            time_round(ctx, &mut ovl, &x, &target);
        }
        let mut seq_rounds = Vec::with_capacity(ROUNDS);
        let mut ovl_rounds = Vec::with_capacity(ROUNDS);
        let mut totals = OverlapTotals::default();
        let registry = tele.registry().clone();
        for _ in 0..ROUNDS {
            seq_rounds.push(time_round(ctx, &mut seq, &x, &target));
            // Sample the per-iteration overlap gauges once per step: each
            // engine iteration overwrites them, so accumulate step by step.
            let t = Instant::now();
            for _ in 0..STEPS {
                std::hint::black_box(ovl.iteration(ctx, &x, &target).expect("bench iteration"));
                if ctx.rank() == 0 {
                    totals.hidden_bytes += registry.gauge("overlap_hidden_bytes").get();
                    totals.exposed_bytes += registry.gauge("overlap_exposed_bytes").get();
                    totals.exposed_ms += registry.gauge("overlap_exposed_ms").get();
                    totals.steps += 1;
                }
            }
            ovl_rounds.push(t.elapsed().as_nanos() as f64 / STEPS as f64);
        }
        ovl.drain(ctx).expect("drain the in-flight scatter");
        BenchOut { seq_rounds, ovl_rounds, totals }
    });
    results.into_iter().next().expect("rank 0 result")
}

fn tail_mean(rounds: &[f64]) -> f64 {
    let mut s = rounds.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    s[..KEEP].iter().sum::<f64>() / KEEP as f64
}

fn spread(rounds: &[f64]) -> f64 {
    let mut s = rounds.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    (s[s.len() / 2] - s[0]) / s[0]
}

fn main() {
    println!("== compute/communication overlap (sequential vs overlapped engine) ==");
    let out = run();

    let seq = tail_mean(&out.seq_rounds);
    let ovl = tail_mean(&out.ovl_rounds);
    let noise = spread(&out.seq_rounds).max(spread(&out.ovl_rounds));
    let reduction = (seq - ovl) / seq;
    let total_bytes = out.totals.hidden_bytes + out.totals.exposed_bytes;
    let exposed_fraction =
        if total_bytes > 0.0 { out.totals.exposed_bytes / total_bytes } else { 0.0 };
    let steps = out.totals.steps.max(1) as f64;

    println!(
        "sequential {:.0} ns/step   overlapped {:.0} ns/step   reduction {:+.2}% (noise floor {:.2}%)",
        seq,
        ovl,
        reduction * 100.0,
        noise * 100.0
    );
    println!(
        "per step: hidden {:.0} B   exposed {:.0} B   exposed fraction {:.4}   exposed wait {:.4} ms",
        out.totals.hidden_bytes / steps,
        out.totals.exposed_bytes / steps,
        exposed_fraction,
        out.totals.exposed_ms / steps
    );

    let mut o = Obj::new();
    o.set("bench", Value::str("overlap"));
    o.set("model", Value::str("engine_d64_ff256_e8"));
    o.set("nodes", Value::u64(NODES as u64));
    o.set("rounds", Value::u64(ROUNDS as u64));
    o.set("steps_per_round", Value::u64(STEPS as u64));
    o.set("sequential_ns_per_step", Value::Num(seq));
    o.set("overlapped_ns_per_step", Value::Num(ovl));
    o.set("step_time_reduction_fraction", Value::Num(reduction));
    o.set("step_time_reduction_percent", Value::Num(reduction * 100.0));
    o.set("noise_floor_percent", Value::Num(noise * 100.0));
    o.set("hidden_bytes_per_step", Value::Num(out.totals.hidden_bytes / steps));
    o.set("exposed_bytes_per_step", Value::Num(out.totals.exposed_bytes / steps));
    o.set("exposed_comm_fraction", Value::Num(exposed_fraction));
    o.set("exposed_wait_ms_per_step", Value::Num(out.totals.exposed_ms / steps));
    o.set("overlapped_not_slower", Value::Bool(ovl <= seq * (1.0 + noise)));

    let path = Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_overlap.json");
    std::fs::write(&path, Value::Obj(o).to_string()).expect("write overlap json");
    println!("wrote {}", path.display());

    if std::env::var("SYMI_OVERLAP_SMOKE").is_ok_and(|v| v == "1") {
        assert!(out.totals.hidden_bytes > 0.0, "overlap smoke: the scheduler hid no bytes at all");
        assert!(
            ovl <= seq * (1.0 + noise),
            "overlap smoke: overlapped step time {ovl:.0} ns exceeds sequential {seq:.0} ns \
             beyond the {:.2}% noise floor",
            noise * 100.0
        );
    }
}
