//! Collective-communication benchmarks over the thread-per-rank runtime.
//!
//! Each measured iteration includes cluster spawn/teardown — these numbers
//! characterize the simulation substrate (useful when sizing experiments),
//! not real NIC performance.

use symi_bench::{bench, group};
use symi_collectives::hier::ReduceMode;
use symi_collectives::{Cluster, ClusterSpec};

fn bench_allreduce() {
    group("allreduce (includes cluster spawn)");
    for &(ranks, len) in &[(4usize, 1usize << 12), (8, 1 << 12), (8, 1 << 16)] {
        bench(&format!("allreduce/{ranks}r_{len}f"), || {
            Cluster::run(ClusterSpec::flat(ranks), |ctx| {
                let group = ctx.groups().world();
                let mut data = vec![1.0f32; len];
                ctx.allreduce_sum(&group, 1, &mut data).unwrap();
                data[0]
            })
        });
    }
}

fn bench_alltoall() {
    group("alltoallv (includes cluster spawn)");
    for &ranks in &[4usize, 8] {
        let per_peer = 1usize << 10;
        bench(&format!("alltoallv/{ranks}r_{per_peer}f_per_peer"), || {
            Cluster::run(ClusterSpec::flat(ranks), |ctx| {
                let group = ctx.groups().world();
                let bufs: Vec<Vec<f32>> = (0..ranks).map(|_| vec![0.5f32; per_peer]).collect();
                ctx.alltoallv_f32(&group, 2, bufs).unwrap().len()
            })
        });
    }
}

fn bench_hierarchical_vs_flat() {
    // §4.1: packed intra-rank replicas vs spread; same 8 instances.
    group("expert_allreduce, 8 instances");
    let len = 1usize << 14;
    bench("packed_2ranks_x4slots", || {
        Cluster::run(ClusterSpec::flat(8), |ctx| {
            if ctx.rank() < 2 {
                let group = ctx.groups().range(0, 2);
                let mut locals: Vec<Vec<f32>> = (0..4).map(|_| vec![1.0f32; len]).collect();
                ctx.expert_allreduce(&group, 1, &mut locals, 8, ReduceMode::Sum).unwrap();
            }
        })
    });
    bench("spread_8ranks_x1slot", || {
        Cluster::run(ClusterSpec::flat(8), |ctx| {
            let group = ctx.groups().range(0, 8);
            let mut locals = vec![vec![1.0f32; len]];
            ctx.expert_allreduce(&group, 1, &mut locals, 8, ReduceMode::Sum).unwrap();
        })
    });
}

fn main() {
    bench_allreduce();
    bench_alltoall();
    bench_hierarchical_vs_flat();
}
