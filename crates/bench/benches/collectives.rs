//! Collective-communication benchmarks over the thread-per-rank runtime.
//!
//! Each measured iteration includes cluster spawn/teardown — these numbers
//! characterize the simulation substrate (useful when sizing experiments),
//! not real NIC performance.

use criterion::{criterion_group, criterion_main, BenchmarkId, Criterion, Throughput};
use symi_collectives::hier::ReduceMode;
use symi_collectives::{Cluster, ClusterSpec};

fn bench_allreduce(c: &mut Criterion) {
    let mut g = c.benchmark_group("allreduce");
    g.sample_size(20);
    for &(ranks, len) in &[(4usize, 1usize << 12), (8, 1 << 12), (8, 1 << 16)] {
        g.throughput(Throughput::Bytes((ranks * len * 4) as u64));
        g.bench_with_input(
            BenchmarkId::from_parameter(format!("{ranks}r_{len}f")),
            &(ranks, len),
            |b, &(ranks, len)| {
                b.iter(|| {
                    Cluster::run(ClusterSpec::flat(ranks), |ctx| {
                        let group = ctx.groups().world();
                        let mut data = vec![1.0f32; len];
                        ctx.allreduce_sum(&group, 1, &mut data).unwrap();
                        std::hint::black_box(data[0]);
                    })
                })
            },
        );
    }
    g.finish();
}

fn bench_alltoall(c: &mut Criterion) {
    let mut g = c.benchmark_group("alltoallv");
    g.sample_size(20);
    for &ranks in &[4usize, 8] {
        let per_peer = 1usize << 10;
        g.bench_with_input(BenchmarkId::from_parameter(ranks), &ranks, |b, &ranks| {
            b.iter(|| {
                Cluster::run(ClusterSpec::flat(ranks), |ctx| {
                    let group = ctx.groups().world();
                    let bufs: Vec<Vec<f32>> =
                        (0..ranks).map(|_| vec![0.5f32; per_peer]).collect();
                    let out = ctx.alltoallv_f32(&group, 2, bufs).unwrap();
                    std::hint::black_box(out.len());
                })
            })
        });
    }
    g.finish();
}

fn bench_hierarchical_vs_flat(c: &mut Criterion) {
    // §4.1: packed intra-rank replicas vs spread; same 8 instances.
    let mut g = c.benchmark_group("expert_allreduce_8_instances");
    g.sample_size(20);
    let len = 1usize << 14;
    g.bench_function("packed_2ranks_x4slots", |b| {
        b.iter(|| {
            Cluster::run(ClusterSpec::flat(8), |ctx| {
                if ctx.rank() < 2 {
                    let group = ctx.groups().range(0, 2);
                    let mut locals: Vec<Vec<f32>> =
                        (0..4).map(|_| vec![1.0f32; len]).collect();
                    ctx.expert_allreduce(&group, 1, &mut locals, 8, ReduceMode::Sum).unwrap();
                }
            })
        })
    });
    g.bench_function("spread_8ranks_x1slot", |b| {
        b.iter(|| {
            Cluster::run(ClusterSpec::flat(8), |ctx| {
                let group = ctx.groups().range(0, 8);
                let mut locals = vec![vec![1.0f32; len]];
                ctx.expert_allreduce(&group, 1, &mut locals, 8, ReduceMode::Sum).unwrap();
            })
        })
    });
    g.finish();
}

criterion_group!(benches, bench_allreduce, bench_alltoall, bench_hierarchical_vs_flat);
criterion_main!(benches);
