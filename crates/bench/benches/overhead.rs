//! §5.3 overhead benchmark: SYMI's newly introduced components (popularity
//! all-reduce, Expert Placement Scheduler, metadata update) against a full
//! training iteration — the paper reports they aggregate to ~1% of
//! iteration time.

use criterion::{criterion_group, criterion_main, Criterion};
use symi::{compute_placement, LayerMetadataStore, SymiPolicy};
use symi_bench::runs::experiment_corpus;
use symi_model::{ModelConfig, Trainer};
use symi_workload::SyntheticTraceConfig;

fn bench_symi_components(c: &mut Criterion) {
    let trace = SyntheticTraceConfig { expert_classes: 16, iterations: 8, ..Default::default() }
        .generate();
    let popularity = trace.iterations[0].clone();

    c.bench_function("component/scheduler_16e_64s", |b| {
        b.iter(|| std::hint::black_box(compute_placement(&popularity, 64)))
    });

    c.bench_function("component/metadata_record", |b| {
        let mut store = LayerMetadataStore::new(2, 64);
        b.iter(|| {
            store.record(0, popularity.clone());
            std::hint::black_box(store.latest(0));
        })
    });

    // The popularity "all-reduce" payload is one u64 per class — benchmark
    // the local reduction work the collective performs per rank.
    c.bench_function("component/popularity_fold_16e", |b| {
        let contributions: Vec<Vec<u64>> = (0..16).map(|_| popularity.clone()).collect();
        b.iter(|| {
            let mut acc = vec![0u64; 16];
            for contrib in &contributions {
                for (a, v) in acc.iter_mut().zip(contrib) {
                    *a += v;
                }
            }
            std::hint::black_box(acc)
        })
    });
}

fn bench_full_iteration(c: &mut Criterion) {
    // A full training step of the small model, for the ratio the paper
    // reports. Components above are microseconds; this is milliseconds+.
    let cfg = ModelConfig::tiny();
    let mut corpus = experiment_corpus(&cfg);
    let mut trainer = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    let batch = corpus.next_batch();
    let mut g = c.benchmark_group("iteration");
    g.sample_size(20);
    g.bench_function("full_training_step_tiny", |b| {
        b.iter(|| std::hint::black_box(trainer.step(&batch).ce_loss))
    });
    g.finish();
}

criterion_group!(benches, bench_symi_components, bench_full_iteration);
criterion_main!(benches);
