//! §5.3 overhead benchmark, two parts:
//!
//! 1. SYMI's newly introduced components (popularity all-reduce, Expert
//!    Placement Scheduler, metadata update) against a full training
//!    iteration — the paper reports they aggregate to ~1% of iteration
//!    time.
//! 2. The telemetry subsystem itself: a full training step with the
//!    registry + spans + sinks enabled vs the disabled twin. The measured
//!    relative overhead lands in `BENCH_telemetry_overhead.json` at the
//!    repo root; the acceptance budget is <1%.

use std::path::Path;
use std::sync::Arc;
use std::time::Instant;

use symi::{compute_placement, LayerMetadataStore, SymiPolicy};
use symi_bench::runs::experiment_corpus;
use symi_bench::{bench, group};
use symi_model::{ModelConfig, Trainer};
use symi_telemetry::json::{Obj, Value};
use symi_telemetry::{ClusterTelemetry, RingBufferSink};
use symi_workload::{DriftingCorpus, SyntheticTraceConfig};

fn bench_symi_components() {
    group("SYMI components (§5.3)");
    let trace =
        SyntheticTraceConfig { expert_classes: 16, iterations: 8, ..Default::default() }.generate();
    let popularity = trace.iterations[0].clone();

    bench("component/scheduler_16e_64s", || compute_placement(&popularity, 64));

    let mut store = LayerMetadataStore::new(2, 64);
    bench("component/metadata_record", || {
        store.record(0, popularity.clone());
        store.latest(0).map(|p| p.len())
    });

    // The popularity "all-reduce" payload is one u64 per class — benchmark
    // the local reduction work the collective performs per rank.
    let contributions: Vec<Vec<u64>> = (0..16).map(|_| popularity.clone()).collect();
    bench("component/popularity_fold_16e", || {
        let mut acc = vec![0u64; 16];
        for contrib in &contributions {
            for (a, v) in acc.iter_mut().zip(contrib) {
                *a += v;
            }
        }
        acc
    });
}

fn bench_full_iteration() {
    group("full iteration (for the component ratio)");
    let cfg = ModelConfig::tiny();
    let mut corpus = experiment_corpus(&cfg);
    let mut trainer = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    let batch = corpus.next_batch();
    bench("full_training_step_tiny", || trainer.step(&batch).ce_loss);
}

/// Mean ns/step over `steps` consecutive training steps.
fn time_steps(trainer: &mut Trainer, corpus: &mut DriftingCorpus, steps: usize) -> f64 {
    let t = Instant::now();
    for _ in 0..steps {
        let batch = corpus.next_batch();
        std::hint::black_box(trainer.step(&batch).ce_loss);
    }
    t.elapsed().as_nanos() as f64 / steps as f64
}

fn bench_telemetry_overhead() {
    group("telemetry overhead (on vs off)");
    // Measured at the paper's evaluation scale (GPT-Small stand-in): the
    // per-step telemetry cost is a few microseconds, so the *fraction*
    // depends on iteration length — `tiny` (~0.4 ms steps) would overstate
    // it by an order of magnitude vs any realistic model.
    let cfg = ModelConfig::small_sim();

    let mut corpus_off = experiment_corpus(&cfg);
    let mut off = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    // Trainer starts with telemetry disabled; make that explicit anyway.
    off.attach_telemetry(ClusterTelemetry::disabled(1));

    let mut corpus_on = experiment_corpus(&cfg);
    let mut on = Trainer::new(cfg, Box::new(SymiPolicy { total_slots: cfg.total_slots }));
    let telemetry = ClusterTelemetry::new(1);
    telemetry.add_sink(Arc::new(RingBufferSink::new(64)));
    on.attach_telemetry(telemetry.clone());

    const WARMUP: usize = 2;
    const ROUNDS: usize = 60;
    const STEPS: usize = 1;
    const KEEP: usize = 10;
    time_steps(&mut off, &mut corpus_off, WARMUP);
    time_steps(&mut on, &mut corpus_on, WARMUP);

    // Interleave the two trainers step-by-step so drift (cache state, CPU
    // frequency, co-tenant load) hits both alike, then score each variant
    // by the mean of its KEEP quietest steps: on a shared machine external
    // interference only ever adds time, so the lower tail approximates the
    // uncontended cost, and averaging several tail samples is less
    // chance-sensitive than the single minimum.
    let mut off_rounds = Vec::with_capacity(ROUNDS);
    let mut on_rounds = Vec::with_capacity(ROUNDS);
    for _ in 0..ROUNDS {
        off_rounds.push(time_steps(&mut off, &mut corpus_off, STEPS));
        on_rounds.push(time_steps(&mut on, &mut corpus_on, STEPS));
    }
    assert!(telemetry.iterations_emitted() > 0, "the enabled trainer must have emitted reports");

    let tail_mean = |rounds: &[f64]| {
        let mut s = rounds.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        s[..KEEP].iter().sum::<f64>() / KEEP as f64
    };
    let spread = |rounds: &[f64]| {
        let mut s = rounds.to_vec();
        s.sort_by(|a, b| a.total_cmp(b));
        (s[s.len() / 2] - s[0]) / s[0]
    };
    let off_min = tail_mean(&off_rounds);
    let on_min = tail_mean(&on_rounds);
    // Median-over-min step spread: how much interference the run saw.
    // When |overhead| is below this, the telemetry cost is under the
    // measurement floor (a negative overhead just means noise, not a
    // speedup).
    let noise = spread(&off_rounds).max(spread(&on_rounds));

    let overhead = (on_min - off_min) / off_min;
    println!(
        "telemetry_off {:.0} ns/step   telemetry_on {:.0} ns/step   overhead {:+.3}% (noise floor {:.2}%)",
        off_min,
        on_min,
        overhead * 100.0,
        noise * 100.0
    );

    let mut o = Obj::new();
    o.set("bench", Value::str("telemetry_overhead"));
    o.set("model", Value::str("small_sim"));
    o.set("system", Value::str("symi"));
    o.set("telemetry_off_ns_per_step", Value::Num(off_min));
    o.set("telemetry_on_ns_per_step", Value::Num(on_min));
    o.set("overhead_fraction", Value::Num(overhead));
    o.set("overhead_percent", Value::Num(overhead * 100.0));
    o.set("noise_floor_percent", Value::Num(noise * 100.0));
    o.set("budget_percent", Value::Num(1.0));
    o.set("within_budget", Value::Bool(overhead < 0.01));
    o.set("rounds", Value::u64(ROUNDS as u64));
    o.set("steps_per_round", Value::u64(STEPS as u64));
    o.set("reports_emitted", Value::u64(telemetry.iterations_emitted()));

    let out =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_telemetry_overhead.json");
    std::fs::write(&out, Value::Obj(o).to_string()).expect("write overhead json");
    println!("wrote {}", out.display());
}

fn main() {
    bench_symi_components();
    bench_full_iteration();
    bench_telemetry_overhead();
}
