//! Checkpoint cadence overhead: a training loop with the async checkpoint
//! manager enabled vs its checkpoint-free twin, same seed, interleaved
//! round-for-round. Only the on-training-thread work is in the measured
//! path — the cadence gate every iteration, and on cadence hits the
//! coordination round plus the snapshot copy; serialization and fsync run
//! on the writer thread. Rounds span a whole cadence cycle so each "on"
//! round amortizes exactly one checkpoint. The measured relative overhead
//! lands in `BENCH_checkpoint_overhead.json` at the repo root; the
//! acceptance budget is <1%.

use std::path::Path;
use std::time::Instant;

use symi::{EngineConfig, MoeLayerEngine};
use symi_checkpoint::{CheckpointConfig, CheckpointManager, CheckpointStats};
use symi_collectives::{Cluster, ClusterSpec, RankCtx};
use symi_telemetry::json::{Obj, Value};
use symi_tensor::{AdamConfig, Matrix};

const D: usize = 64;
const DFF: usize = 256;
const E: usize = 8;
const T: usize = 128;
const CADENCE: u64 = 32;
const WARMUP_ROUNDS: usize = 2;
const ROUNDS: usize = 30;
const STEPS: usize = CADENCE as usize; // one cadence hit per "on" round
const KEEP: usize = 10;

/// Distinct layer ids keep the two engines' wire tags disjoint even though
/// they share one rank context.
fn engine_cfg(layer_id: usize) -> EngineConfig {
    EngineConfig {
        d_model: D,
        d_ff: DFF,
        expert_classes: E,
        slots_per_rank: E,
        slot_capacity: 1_000_000,
        adam: AdamConfig::default(),
        seed: 97,
        layer_id,
    }
}

fn tokens() -> Matrix {
    Matrix::from_fn(T, D, |r, c| (c as f32 * 0.7).sin() + 0.05 * ((r * D + c) as f32 * 0.613).sin())
}

/// Mean ns/step over one round of `STEPS` iterations.
fn time_round(
    ctx: &mut RankCtx,
    engine: &mut MoeLayerEngine,
    manager: Option<&mut CheckpointManager>,
    x: &Matrix,
    target: &Matrix,
) -> f64 {
    let mut manager = manager;
    let t = Instant::now();
    for _ in 0..STEPS {
        std::hint::black_box(engine.iteration(ctx, x, target).expect("bench iteration").loss);
        if let Some(m) = manager.as_deref_mut() {
            m.maybe_checkpoint(ctx, engine).expect("cadence check");
        }
    }
    t.elapsed().as_nanos() as f64 / STEPS as f64
}

struct BenchOut {
    off_rounds: Vec<f64>,
    on_rounds: Vec<f64>,
    stats: CheckpointStats,
}

fn run(dir: &Path) -> BenchOut {
    let dir = dir.to_path_buf();
    let (mut results, _) = Cluster::run(ClusterSpec::flat(1), move |ctx| {
        let x = tokens();
        let target = Matrix::zeros(T, D);
        let mut off = MoeLayerEngine::new(ctx.rank(), 1, engine_cfg(0));
        let mut on = MoeLayerEngine::new(ctx.rank(), 1, engine_cfg(1));
        let mut manager =
            CheckpointManager::new(CheckpointConfig::new(&dir).with_cadence(CADENCE).with_keep(2))
                .expect("checkpoint dir");

        for _ in 0..WARMUP_ROUNDS {
            time_round(ctx, &mut off, None, &x, &target);
            time_round(ctx, &mut on, Some(&mut manager), &x, &target);
        }
        let mut off_rounds = Vec::with_capacity(ROUNDS);
        let mut on_rounds = Vec::with_capacity(ROUNDS);
        for _ in 0..ROUNDS {
            off_rounds.push(time_round(ctx, &mut off, None, &x, &target));
            on_rounds.push(time_round(ctx, &mut on, Some(&mut manager), &x, &target));
        }
        manager.flush();
        BenchOut { off_rounds, on_rounds, stats: manager.stats() }
    });
    results.pop().expect("single-rank result")
}

fn tail_mean(rounds: &[f64]) -> f64 {
    let mut s = rounds.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    s[..KEEP].iter().sum::<f64>() / KEEP as f64
}

fn spread(rounds: &[f64]) -> f64 {
    let mut s = rounds.to_vec();
    s.sort_by(|a, b| a.total_cmp(b));
    (s[s.len() / 2] - s[0]) / s[0]
}

fn main() {
    println!("== checkpoint cadence overhead (on vs off) ==");
    let dir = std::env::temp_dir().join("symi_ckpt_bench");
    let _ = std::fs::remove_dir_all(&dir);
    let out = run(&dir);
    let _ = std::fs::remove_dir_all(&dir);

    let hits = (WARMUP_ROUNDS + ROUNDS) as u64;
    assert_eq!(out.stats.cadence_hits, hits, "every round must cross one cadence boundary");
    assert!(out.stats.snapshots_submitted > 0, "the writer must have accepted snapshots");
    assert_eq!(out.stats.writes_failed, 0);

    let off = tail_mean(&out.off_rounds);
    let on = tail_mean(&out.on_rounds);
    let noise = spread(&out.off_rounds).max(spread(&out.on_rounds));
    let overhead = (on - off) / off;
    println!(
        "ckpt_off {:.0} ns/step   ckpt_on {:.0} ns/step   overhead {:+.3}% (noise floor {:.2}%)",
        off,
        on,
        overhead * 100.0,
        noise * 100.0
    );
    println!(
        "cadence {} hits {} submitted {} skipped {} bytes_written {} copy {:.0} ns/snapshot",
        CADENCE,
        out.stats.cadence_hits,
        out.stats.snapshots_submitted,
        out.stats.skipped,
        out.stats.bytes_written,
        out.stats.copy_ns as f64 / out.stats.snapshots_submitted.max(1) as f64
    );

    let mut o = Obj::new();
    o.set("bench", Value::str("checkpoint_overhead"));
    o.set("model", Value::str("engine_d64_ff256_e8"));
    o.set("system", Value::str("symi"));
    o.set("ckpt_off_ns_per_step", Value::Num(off));
    o.set("ckpt_on_ns_per_step", Value::Num(on));
    o.set("overhead_fraction", Value::Num(overhead));
    o.set("overhead_percent", Value::Num(overhead * 100.0));
    o.set("noise_floor_percent", Value::Num(noise * 100.0));
    o.set("budget_percent", Value::Num(1.0));
    o.set("within_budget", Value::Bool(overhead < 0.01));
    o.set("rounds", Value::u64(ROUNDS as u64));
    o.set("steps_per_round", Value::u64(STEPS as u64));
    o.set("cadence", Value::u64(CADENCE));
    o.set("cadence_hits", Value::u64(out.stats.cadence_hits));
    o.set("snapshots_submitted", Value::u64(out.stats.snapshots_submitted));
    o.set("snapshots_skipped_writer_busy", Value::u64(out.stats.skipped));
    o.set("bytes_written", Value::u64(out.stats.bytes_written));
    o.set(
        "snapshot_copy_ns_mean",
        Value::Num(out.stats.copy_ns as f64 / out.stats.snapshots_submitted.max(1) as f64),
    );

    let path =
        Path::new(env!("CARGO_MANIFEST_DIR")).join("../..").join("BENCH_checkpoint_overhead.json");
    std::fs::write(&path, Value::Obj(o).to_string()).expect("write overhead json");
    println!("wrote {}", path.display());
}
