//! Randomized property tests for the telemetry primitives:
//! - histogram merge is associative and commutative
//! - counter aggregation across ranks equals the per-rank sum
//! - `IterationReport` JSONL round-trips exactly
//!
//! Driven by a local SplitMix64 so the crate stays dependency-free; seeds
//! are fixed for reproducibility.

use std::sync::Arc;

use symi_telemetry::{
    ClusterTelemetry, Histogram, IterationReport, MetricRegistry, Phase, NUM_LINK_CLASSES,
    NUM_PHASES,
};

struct SplitMix64(u64);

impl SplitMix64 {
    fn next(&mut self) -> u64 {
        self.0 = self.0.wrapping_add(0x9e3779b97f4a7c15);
        let mut z = self.0;
        z = (z ^ (z >> 30)).wrapping_mul(0xbf58476d1ce4e5b9);
        z = (z ^ (z >> 27)).wrapping_mul(0x94d049bb133111eb);
        z ^ (z >> 31)
    }

    fn below(&mut self, n: u64) -> u64 {
        self.next() % n.max(1)
    }
}

fn random_samples(rng: &mut SplitMix64, n: usize) -> Vec<u64> {
    // Spread samples across many octaves so multiple buckets fill.
    (0..n).map(|_| rng.next() >> rng.below(64) as u32).collect()
}

fn hist_of(samples: &[u64]) -> Histogram {
    let h = Histogram::new();
    for &s in samples {
        h.record(s);
    }
    h
}

fn hist_eq(a: &Histogram, b: &Histogram) -> bool {
    a.count() == b.count() && a.sum() == b.sum() && a.bucket_counts() == b.bucket_counts()
}

#[test]
fn histogram_merge_is_commutative() {
    let mut rng = SplitMix64(0xfeed);
    for _ in 0..32 {
        let xs = {
            let n = rng.below(200) as usize;
            random_samples(&mut rng, n)
        };
        let ys = {
            let n = rng.below(200) as usize;
            random_samples(&mut rng, n)
        };
        let ab = hist_of(&xs);
        ab.merge_from(&hist_of(&ys));
        let ba = hist_of(&ys);
        ba.merge_from(&hist_of(&xs));
        assert!(hist_eq(&ab, &ba), "merge must be commutative");
    }
}

#[test]
fn histogram_merge_is_associative() {
    let mut rng = SplitMix64(0xbeef);
    for _ in 0..32 {
        let xs = {
            let n = rng.below(150) as usize;
            random_samples(&mut rng, n)
        };
        let ys = {
            let n = rng.below(150) as usize;
            random_samples(&mut rng, n)
        };
        let zs = {
            let n = rng.below(150) as usize;
            random_samples(&mut rng, n)
        };
        // (x ⊕ y) ⊕ z
        let left = hist_of(&xs);
        left.merge_from(&hist_of(&ys));
        left.merge_from(&hist_of(&zs));
        // x ⊕ (y ⊕ z)
        let yz = hist_of(&ys);
        yz.merge_from(&hist_of(&zs));
        let right = hist_of(&xs);
        right.merge_from(&yz);
        assert!(hist_eq(&left, &right), "merge must be associative");
    }
}

#[test]
fn histogram_merge_matches_concatenated_stream() {
    let mut rng = SplitMix64(0xabc);
    for _ in 0..16 {
        let xs = {
            let n = rng.below(100) as usize;
            random_samples(&mut rng, n)
        };
        let ys = {
            let n = rng.below(100) as usize;
            random_samples(&mut rng, n)
        };
        let merged = hist_of(&xs);
        merged.merge_from(&hist_of(&ys));
        let mut all = xs.clone();
        all.extend_from_slice(&ys);
        assert!(hist_eq(&merged, &hist_of(&all)));
    }
}

#[test]
fn counter_aggregation_across_ranks_equals_per_rank_sum() {
    let mut rng = SplitMix64(0x5ca1e);
    for _ in 0..16 {
        let ranks = 1 + rng.below(8) as usize;
        let registry = MetricRegistry::new();
        let per_rank: Vec<Vec<u64>> =
            (0..ranks).map(|_| (0..rng.below(64)).map(|_| rng.below(1 << 20)).collect()).collect();
        let expected: u64 = per_rank.iter().flatten().sum();

        // Each rank increments the shared counter from its own thread.
        std::thread::scope(|scope| {
            for contributions in &per_rank {
                let counter = registry.counter("bytes_sent");
                scope.spawn(move || {
                    for &v in contributions {
                        counter.add(v);
                    }
                });
            }
        });
        assert_eq!(registry.counter("bytes_sent").get(), expected);
    }
}

#[test]
fn cluster_phase_accumulation_equals_per_rank_sum() {
    let ct = ClusterTelemetry::new(4);
    let mut rng = SplitMix64(0x7777);
    let mut expected = vec![[0u64; NUM_PHASES]; 4];
    for (rank, row) in expected.iter_mut().enumerate() {
        let handle = ct.handle(rank);
        for _ in 0..rng.below(32) {
            // Spans measure wall time; we only assert that whatever was
            // recorded per rank is exactly what drain returns, so record a
            // deterministic quantum through the accumulator-facing span API.
            let phase = Phase::from_index(rng.below(NUM_PHASES as u64) as usize);
            let _guard = handle.span(phase);
            row[phase.index()] += 1; // count spans per phase
        }
    }
    let drained = ct.drain_phase_ns();
    for (rank, row) in expected.iter().enumerate() {
        for (i, &spans) in row.iter().enumerate() {
            if spans > 0 {
                assert!(drained[rank][i] > 0, "rank {} phase {} recorded no time", rank, i);
            } else {
                assert_eq!(drained[rank][i], 0);
            }
        }
    }
}

fn random_report(rng: &mut SplitMix64, iteration: u64) -> IterationReport {
    let classes = 1 + rng.below(16) as usize;
    let ranks = 1 + rng.below(8) as usize;
    let mut r = IterationReport::new(
        ["symi", "deepspeed", "flexmoe-100"][rng.below(3) as usize],
        iteration,
    );
    // Keep loss to values that print/parse exactly.
    r.loss = rng.below(1 << 20) as f64 / 1024.0;
    r.popularity = (0..classes).map(|_| rng.below(1 << 24)).collect();
    r.kept_per_class = r.popularity.iter().map(|&p| p - rng.below(p + 1)).collect();
    r.replicas = (0..classes).map(|_| 1 + rng.below(8)).collect();
    r.placement_churn = rng.below(64);
    r.phase_ns = (0..ranks).map(|_| std::array::from_fn(|_| rng.below(1 << 40))).collect();
    for row in r.phase_bytes.iter_mut() {
        for cell in row.iter_mut() {
            *cell = rng.below(1 << 40);
        }
    }
    r
}

#[test]
fn iteration_report_jsonl_round_trips() {
    let mut rng = SplitMix64(0xd15c0);
    for i in 0..64 {
        let r = random_report(&mut rng, i);
        let line = r.to_jsonl();
        assert!(!line.contains('\n'), "JSONL records must be single-line");
        let back = IterationReport::parse_jsonl(&line)
            .unwrap_or_else(|e| panic!("parse failed: {} in {}", e, line));
        assert_eq!(back, r, "round-trip mismatch for iteration {}", i);
    }
}

#[test]
fn jsonl_stream_round_trips_through_ring_sink() {
    use symi_telemetry::{RingBufferSink, Sink};
    let mut rng = SplitMix64(0x99);
    let ring = Arc::new(RingBufferSink::new(64));
    let mut originals = Vec::new();
    for i in 0..32 {
        let r = random_report(&mut rng, i);
        ring.emit(&r);
        originals.push(r);
    }
    let stream: String = ring.contents().iter().map(|r| format!("{}\n", r.to_jsonl())).collect();
    let parsed: Vec<IterationReport> =
        stream.lines().map(|l| IterationReport::parse_jsonl(l).unwrap()).collect();
    assert_eq!(parsed, originals);
}

#[test]
fn phase_bytes_dims_match_constants() {
    let r = IterationReport::new("symi", 0);
    assert_eq!(r.phase_bytes.len(), NUM_PHASES);
    assert_eq!(r.phase_bytes[0].len(), NUM_LINK_CLASSES);
}
