//! Lock-free metric primitives and the `MetricRegistry`.
//!
//! The registry lives on the iteration hot path, so the design rule is:
//! name lookup (which takes a mutex) happens once at setup when a handle is
//! cloned out, and every subsequent update is a relaxed atomic op on a
//! pre-resolved `Arc`. Counters and gauges are single `AtomicU64`s;
//! histograms are 64 fixed log₂ buckets so merging across ranks is a
//! straight element-wise add with no allocation or rebinning.

use std::collections::HashMap;
use std::sync::atomic::{AtomicU64, Ordering};
use std::sync::{Arc, Mutex};

use crate::json::{Obj, Value};

/// Monotonically increasing counter.
#[derive(Debug, Default)]
pub struct Counter(AtomicU64);

impl Counter {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn add(&self, v: u64) {
        self.0.fetch_add(v, Ordering::Relaxed);
    }

    #[inline]
    pub fn inc(&self) {
        self.add(1);
    }

    #[inline]
    pub fn get(&self) -> u64 {
        self.0.load(Ordering::Relaxed)
    }

    pub fn reset(&self) -> u64 {
        self.0.swap(0, Ordering::Relaxed)
    }
}

/// Last-write-wins f64 gauge stored as raw bits in an `AtomicU64`.
#[derive(Debug, Default)]
pub struct Gauge(AtomicU64);

impl Gauge {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn set(&self, v: f64) {
        self.0.store(v.to_bits(), Ordering::Relaxed);
    }

    #[inline]
    pub fn get(&self) -> f64 {
        f64::from_bits(self.0.load(Ordering::Relaxed))
    }
}

pub const HISTOGRAM_BUCKETS: usize = 64;

/// Fixed-bucket log₂ histogram over `u64` samples.
///
/// Bucket `i` holds samples whose value `v` satisfies `floor(log2(v)) == i`
/// (bucket 0 additionally holds `v == 0`). With 64 buckets the full `u64`
/// range is covered, so merge never rebins.
#[derive(Debug)]
pub struct Histogram {
    buckets: [AtomicU64; HISTOGRAM_BUCKETS],
    count: AtomicU64,
    sum: AtomicU64,
}

impl Default for Histogram {
    fn default() -> Self {
        Self {
            buckets: std::array::from_fn(|_| AtomicU64::new(0)),
            count: AtomicU64::new(0),
            sum: AtomicU64::new(0),
        }
    }
}

#[inline]
pub fn bucket_index(v: u64) -> usize {
    if v == 0 {
        0
    } else {
        63 - v.leading_zeros() as usize
    }
}

impl Histogram {
    pub fn new() -> Self {
        Self::default()
    }

    #[inline]
    pub fn record(&self, v: u64) {
        self.buckets[bucket_index(v)].fetch_add(1, Ordering::Relaxed);
        self.count.fetch_add(1, Ordering::Relaxed);
        self.sum.fetch_add(v, Ordering::Relaxed);
    }

    pub fn count(&self) -> u64 {
        self.count.load(Ordering::Relaxed)
    }

    pub fn sum(&self) -> u64 {
        self.sum.load(Ordering::Relaxed)
    }

    pub fn mean(&self) -> f64 {
        let n = self.count();
        if n == 0 {
            0.0
        } else {
            self.sum() as f64 / n as f64
        }
    }

    pub fn bucket_counts(&self) -> [u64; HISTOGRAM_BUCKETS] {
        std::array::from_fn(|i| self.buckets[i].load(Ordering::Relaxed))
    }

    /// Element-wise merge of `other` into `self`; associative and
    /// commutative because buckets are fixed.
    pub fn merge_from(&self, other: &Histogram) {
        for i in 0..HISTOGRAM_BUCKETS {
            let v = other.buckets[i].load(Ordering::Relaxed);
            if v != 0 {
                self.buckets[i].fetch_add(v, Ordering::Relaxed);
            }
        }
        self.count.fetch_add(other.count(), Ordering::Relaxed);
        self.sum.fetch_add(other.sum(), Ordering::Relaxed);
    }

    /// Upper edge (exclusive-ish representative) of bucket `i`: 2^(i+1)-1.
    pub fn bucket_upper(i: usize) -> u64 {
        if i >= 63 {
            u64::MAX
        } else {
            (2u64 << i) - 1
        }
    }

    /// Approximate quantile from bucket upper edges; q in [0,1].
    pub fn quantile(&self, q: f64) -> u64 {
        let total = self.count();
        if total == 0 {
            return 0;
        }
        let target = ((q.clamp(0.0, 1.0)) * total as f64).ceil().max(1.0) as u64;
        let mut seen = 0u64;
        for i in 0..HISTOGRAM_BUCKETS {
            seen += self.buckets[i].load(Ordering::Relaxed);
            if seen >= target {
                return Self::bucket_upper(i);
            }
        }
        Self::bucket_upper(HISTOGRAM_BUCKETS - 1)
    }
}

#[derive(Default)]
struct Registered {
    counters: HashMap<String, Arc<Counter>>,
    gauges: HashMap<String, Arc<Gauge>>,
    histograms: HashMap<String, Arc<Histogram>>,
}

/// Named metric registry. `counter`/`gauge`/`histogram` are get-or-create and
/// return cached `Arc` handles; hold the handle across the hot loop rather
/// than re-looking it up per event.
#[derive(Default)]
pub struct MetricRegistry {
    inner: Mutex<Registered>,
}

impl MetricRegistry {
    pub fn new() -> Arc<Self> {
        Arc::new(Self::default())
    }

    pub fn counter(&self, name: &str) -> Arc<Counter> {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.counters.entry(name.to_string()).or_default().clone()
    }

    pub fn gauge(&self, name: &str) -> Arc<Gauge> {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.gauges.entry(name.to_string()).or_default().clone()
    }

    pub fn histogram(&self, name: &str) -> Arc<Histogram> {
        let mut g = self.inner.lock().expect("registry poisoned");
        g.histograms.entry(name.to_string()).or_default().clone()
    }

    /// Snapshot every metric into a JSON object (sorted by name).
    pub fn snapshot(&self) -> Value {
        let g = self.inner.lock().expect("registry poisoned");
        let mut counters: Vec<_> = g.counters.iter().collect();
        counters.sort_by(|a, b| a.0.cmp(b.0));
        let mut gauges: Vec<_> = g.gauges.iter().collect();
        gauges.sort_by(|a, b| a.0.cmp(b.0));
        let mut hists: Vec<_> = g.histograms.iter().collect();
        hists.sort_by(|a, b| a.0.cmp(b.0));

        let mut co = Obj::new();
        for (name, c) in counters {
            co.set(name, Value::u64(c.get()));
        }
        let mut go = Obj::new();
        for (name, gauge) in gauges {
            go.set(name, Value::Num(gauge.get()));
        }
        let mut ho = Obj::new();
        for (name, h) in hists {
            let mut entry = Obj::new();
            entry.set("count", Value::u64(h.count()));
            entry.set("sum", Value::u64(h.sum()));
            entry.set("p50", Value::u64(h.quantile(0.5)));
            entry.set("p99", Value::u64(h.quantile(0.99)));
            ho.set(name, Value::Obj(entry));
        }
        let mut root = Obj::new();
        root.set("counters", Value::Obj(co));
        root.set("gauges", Value::Obj(go));
        root.set("histograms", Value::Obj(ho));
        Value::Obj(root)
    }
}

#[cfg(test)]
mod tests {
    use super::*;

    #[test]
    fn counter_and_gauge_basics() {
        let reg = MetricRegistry::new();
        let c = reg.counter("iters");
        c.add(3);
        c.inc();
        assert_eq!(reg.counter("iters").get(), 4);
        let g = reg.gauge("loss");
        g.set(2.5);
        assert_eq!(reg.gauge("loss").get(), 2.5);
    }

    #[test]
    fn histogram_buckets_are_log2() {
        assert_eq!(bucket_index(0), 0);
        assert_eq!(bucket_index(1), 0);
        assert_eq!(bucket_index(2), 1);
        assert_eq!(bucket_index(3), 1);
        assert_eq!(bucket_index(4), 2);
        assert_eq!(bucket_index(u64::MAX), 63);
        let h = Histogram::new();
        h.record(5);
        h.record(7);
        h.record(1);
        assert_eq!(h.count(), 3);
        assert_eq!(h.sum(), 13);
        let b = h.bucket_counts();
        assert_eq!(b[2], 2);
        assert_eq!(b[0], 1);
    }

    #[test]
    fn histogram_merge_adds_buckets() {
        let a = Histogram::new();
        let b = Histogram::new();
        a.record(10);
        b.record(10);
        b.record(1000);
        a.merge_from(&b);
        assert_eq!(a.count(), 3);
        assert_eq!(a.sum(), 1020);
        assert_eq!(a.bucket_counts()[bucket_index(10)], 2);
    }

    #[test]
    fn quantile_is_monotone() {
        let h = Histogram::new();
        for v in [1u64, 2, 4, 8, 16, 1024] {
            h.record(v);
        }
        assert!(h.quantile(0.5) <= h.quantile(0.99));
        assert!(h.quantile(0.99) >= 1024);
    }
}
