//! symi-telemetry: unified per-iteration observability for the SYMI
//! workspace.
//!
//! Zero external dependencies by design — this crate sits at the bottom of
//! the workspace graph so every other crate (collectives, core engine,
//! model trainer, baselines, benches) reports through the same registry and
//! the same `IterationReport` schema.
//!
//! Pieces:
//! - [`metrics`]: `MetricRegistry` with lock-free counters, gauges, and
//!   fixed-bucket log₂ histograms.
//! - [`phase`]: the paper's phase taxonomy ([`Phase`]), thread-local span
//!   tracking ([`current_phase`]), and the [`ScopedTimer`] RAII guard.
//!   Also the canonical [`LinkClass`] (re-exported by `symi-collectives`).
//! - [`cluster`]: [`ClusterTelemetry`] shared across ranks and the per-rank
//!   [`TelemetryHandle`].
//! - [`report`]: the cluster-wide [`IterationReport`] with derived metrics
//!   (popularity entropy, per-class drop rate, placement churn, straggler
//!   spread) and JSONL round-tripping.
//! - [`sink`]: JSONL / CSV / ring-buffer sinks; `symi-top` tails the JSONL
//!   form.
//! - [`json`]: the minimal JSON model the above are built on.

pub mod cluster;
pub mod json;
pub mod metrics;
pub mod phase;
pub mod report;
pub mod sink;

pub use cluster::{ClusterTelemetry, TelemetryHandle};
pub use json::Value;
pub use metrics::{Counter, Gauge, Histogram, MetricRegistry, HISTOGRAM_BUCKETS};
pub use phase::{
    current_phase, LinkClass, Phase, PhaseAccumulator, ScopedTimer, LINK_CLASSES, NUM_LINK_CLASSES,
    NUM_PHASES, PHASES,
};
pub use report::IterationReport;
pub use sink::{CsvSink, JsonlSink, RingBufferSink, Sink};
